#!/usr/bin/env python3
"""Self-tests for the bench regression gate (scripts/bench_compare.py).

The gate is the only thing standing between a perf/correctness regression
and a green checkmark, so its failure modes are pinned here: a bench
without a committed baseline must fail (not silently skip), metric drift
must respect the rtol and the timing/speedup/throughput exemptions, the
wall budget must rescale with the measured machine-speed ratio, and the
parallel-efficiency and batch-throughput gates must bite.

Run directly (CI lint job): python3 scripts/bench_compare_test.py
"""

import json
import subprocess
import sys
import tempfile
import unittest
from pathlib import Path

SCRIPT = Path(__file__).resolve().parent / "bench_compare.py"


def record(name, wall=1.0, days_per_sec=1000.0, metrics=None):
    """A minimal valid BENCH record."""
    return {
        "bench": name,
        "threads": 2,
        "wall_seconds": wall,
        "cells": 10,
        "cells_per_sec": 10.0,
        "simulated_days": 100,
        "days_per_sec": days_per_sec,
        "metrics": metrics or {},
    }


class GateHarness(unittest.TestCase):
    """Writes baseline/current trees into a tempdir and runs the gate."""

    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        root = Path(self._tmp.name)
        self.baseline_dir = root / "baselines"
        self.current_dir = root / "current"
        self.baseline_dir.mkdir()
        self.current_dir.mkdir()

    def tearDown(self):
        self._tmp.cleanup()

    def write(self, directory, rec):
        path = directory / f"BENCH_{rec['bench']}.json"
        path.write_text(json.dumps(rec))

    def run_gate(self, *extra_args):
        result = subprocess.run(
            [sys.executable, str(SCRIPT), str(self.baseline_dir),
             str(self.current_dir), *extra_args],
            capture_output=True,
            text=True,
        )
        return result.returncode, result.stdout + result.stderr


class IdenticalRecordsTest(GateHarness):
    def test_identical_records_pass(self):
        rec = record("alpha", metrics={"sr_mean": 0.25, "steps_us": 12.0})
        self.write(self.baseline_dir, rec)
        self.write(self.current_dir, rec)
        code, out = self.run_gate()
        self.assertEqual(code, 0, out)
        self.assertIn("all benches within tolerance", out)


class MissingRecordTest(GateHarness):
    def test_unbaselined_current_bench_fails(self):
        rec = record("alpha")
        self.write(self.baseline_dir, rec)
        self.write(self.current_dir, rec)
        self.write(self.current_dir, record("newbench"))
        code, out = self.run_gate()
        self.assertNotEqual(code, 0)
        self.assertIn("missing baseline", out)
        self.assertIn("BENCH_newbench.json", out)

    def test_missing_current_record_fails(self):
        self.write(self.baseline_dir, record("alpha"))
        code, out = self.run_gate()
        self.assertNotEqual(code, 0)
        self.assertIn("no current BENCH record", out)

    def test_empty_baseline_dir_errors(self):
        self.write(self.current_dir, record("alpha"))
        code, out = self.run_gate()
        self.assertEqual(code, 2)
        self.assertIn("no BENCH_*.json baselines", out)


class MetricDriftTest(GateHarness):
    def test_drift_beyond_rtol_fails(self):
        self.write(self.baseline_dir, record("alpha", metrics={"sr": 0.50}))
        self.write(self.current_dir, record("alpha", metrics={"sr": 0.60}))
        code, out = self.run_gate("--metric-rtol", "0.10", "--no-wall")
        self.assertNotEqual(code, 0)
        self.assertIn("drifted", out)

    def test_drift_within_rtol_passes(self):
        self.write(self.baseline_dir, record("alpha", metrics={"sr": 0.50}))
        self.write(self.current_dir, record("alpha", metrics={"sr": 0.52}))
        code, out = self.run_gate("--metric-rtol", "0.10", "--no-wall")
        self.assertEqual(code, 0, out)

    def test_new_metric_without_baseline_fails(self):
        self.write(self.baseline_dir, record("alpha", metrics={"sr": 0.5}))
        self.write(
            self.current_dir, record("alpha", metrics={"sr": 0.5, "cc": 0.1})
        )
        code, out = self.run_gate("--no-wall")
        self.assertNotEqual(code, 0)
        self.assertIn("new metric", out)

    def test_measurement_keys_exempt_from_drift(self):
        # Timing (_us/_ms), speedup ratios, and per_sec/per_core throughput
        # rates move with the machine; only true simulation outputs are
        # strictly gated.
        base = record(
            "serve",
            metrics={
                "step_latency_p99_us": 10.0,
                "dp_solve_ms_L16": 5.0,
                "batch_speedup_w8": 3.0,
                "serve_households_per_core": 100.0,
                "serve_intervals_per_sec": 50000.0,
            },
        )
        cur = record(
            "serve",
            metrics={
                "step_latency_p99_us": 900.0,
                "dp_solve_ms_L16": 500.0,
                "batch_speedup_w8": 0.3,
                "serve_households_per_core": 2.0,
                "serve_intervals_per_sec": 400.0,
            },
        )
        self.write(self.baseline_dir, base)
        self.write(self.current_dir, cur)
        code, out = self.run_gate("--no-wall")
        self.assertEqual(code, 0, out)


class WallBudgetTest(GateHarness):
    def seed_peers(self, ratio):
        """Three well-behaved benches that pin the machine-speed ratio."""
        for name in ("peer1", "peer2", "peer3"):
            self.write(
                self.baseline_dir, record(name, wall=1.0, days_per_sec=1000.0)
            )
            self.write(
                self.current_dir,
                record(name, wall=1.0 / ratio, days_per_sec=1000.0 * ratio),
            )

    def test_budget_rescales_on_slower_machine(self):
        # Machine is 0.5x: every wall doubles. A bench whose wall doubled
        # too is within the rescaled budget (2.0 <= 1.0 / 0.5 * 1.25).
        self.seed_peers(0.5)
        self.write(
            self.baseline_dir, record("alpha", wall=1.0, days_per_sec=1000.0)
        )
        self.write(
            self.current_dir, record("alpha", wall=2.0, days_per_sec=500.0)
        )
        code, out = self.run_gate("--wall-tolerance", "0.25")
        self.assertEqual(code, 0, out)
        self.assertIn("machine speed ratio 0.50x", out)

    def test_relative_wall_regression_still_fails(self):
        # Same slow machine, but this bench regressed beyond its rescaled
        # budget (2.6 > 2.5): the peers prove the machine is only 2x slower.
        self.seed_peers(0.5)
        self.write(
            self.baseline_dir, record("alpha", wall=1.0, days_per_sec=1000.0)
        )
        self.write(
            self.current_dir, record("alpha", wall=2.6, days_per_sec=500.0)
        )
        code, out = self.run_gate("--wall-tolerance", "0.25")
        self.assertNotEqual(code, 0)
        self.assertIn("wall_seconds regressed", out)

    def test_no_wall_skips_the_budget(self):
        self.seed_peers(0.5)
        self.write(self.baseline_dir, record("alpha", wall=1.0))
        self.write(self.current_dir, record("alpha", wall=50.0))
        code, out = self.run_gate("--no-wall")
        self.assertEqual(code, 0, out)


class ScalingGateTest(GateHarness):
    def scaling_record(self, t1, t8):
        return record(
            "fleet",
            metrics={
                "days_per_sec_per_core_t1_h1000": t1,
                "days_per_sec_per_core_t8_h1000": t8,
            },
        )

    def test_efficiency_drop_beyond_tolerance_fails(self):
        # Baseline t8/t1 ratio 0.50; current 0.20 < floor 0.50 * (1-0.35).
        self.write(self.baseline_dir, self.scaling_record(100.0, 50.0))
        self.write(self.current_dir, self.scaling_record(100.0, 20.0))
        code, out = self.run_gate("--no-wall", "--scaling-tolerance", "0.35")
        self.assertNotEqual(code, 0)
        self.assertIn("parallel efficiency regressed", out)

    def test_efficiency_within_tolerance_passes(self):
        self.write(self.baseline_dir, self.scaling_record(100.0, 50.0))
        self.write(self.current_dir, self.scaling_record(100.0, 40.0))
        code, out = self.run_gate("--no-wall", "--scaling-tolerance", "0.35")
        self.assertEqual(code, 0, out)

    def test_missing_scaling_family_fails(self):
        self.write(self.baseline_dir, self.scaling_record(100.0, 50.0))
        self.write(
            self.current_dir,
            record("fleet",
                   metrics={"days_per_sec_per_core_t1_h1000": 100.0}),
        )
        code, out = self.run_gate("--no-wall")
        self.assertNotEqual(code, 0)
        self.assertIn("scaling ratio", out)

    def test_no_scaling_skips_the_gate(self):
        self.write(self.baseline_dir, self.scaling_record(100.0, 50.0))
        self.write(self.current_dir, self.scaling_record(100.0, 5.0))
        code, out = self.run_gate("--no-wall", "--no-scaling")
        self.assertEqual(code, 0, out)

    def test_single_core_baseline_skips_loudly(self):
        # A baseline recorded on a single-core machine cannot express
        # parallel scaling; the gate must skip it (with a visible line)
        # instead of failing a healthy multi-core run.
        base = self.scaling_record(100.0, 12.0)
        base["hardware_concurrency"] = 1
        self.write(self.baseline_dir, base)
        self.write(self.current_dir, self.scaling_record(100.0, 50.0))
        code, out = self.run_gate("--no-wall")
        self.assertEqual(code, 0, out)
        self.assertIn("SKIPPED scaling gate", out)

    def test_multi_core_baseline_still_gates(self):
        base = self.scaling_record(100.0, 50.0)
        base["hardware_concurrency"] = 8
        self.write(self.baseline_dir, base)
        self.write(self.current_dir, self.scaling_record(100.0, 20.0))
        code, out = self.run_gate("--no-wall")
        self.assertNotEqual(code, 0)
        self.assertIn("parallel efficiency regressed", out)


class BatchGateTest(GateHarness):
    def test_batch_below_speedup_floor_fails(self):
        self.write(
            self.baseline_dir,
            record(
                "engine",
                metrics={
                    "scalar_days_per_sec": 1000.0,
                    "batch_days_per_sec_w8": 2500.0,
                },
            ),
        )
        self.write(
            self.current_dir,
            record(
                "engine",
                metrics={
                    "scalar_days_per_sec": 1000.0,
                    "batch_days_per_sec_w8": 1500.0,
                },
            ),
        )
        code, out = self.run_gate("--no-wall", "--batch-speedup", "2.0")
        self.assertNotEqual(code, 0)
        self.assertIn("batch throughput below floor", out)

    def test_batch_above_floor_passes(self):
        self.write(
            self.baseline_dir,
            record(
                "engine",
                metrics={
                    "scalar_days_per_sec": 1000.0,
                    "batch_days_per_sec_w8": 2500.0,
                },
            ),
        )
        self.write(
            self.current_dir,
            record(
                "engine",
                metrics={
                    "scalar_days_per_sec": 1000.0,
                    "batch_days_per_sec_w8": 2500.0,
                },
            ),
        )
        code, out = self.run_gate("--no-wall", "--batch-speedup", "2.0")
        self.assertEqual(code, 0, out)

    def test_batch_below_in_run_anchor_fails(self):
        # The cross-machine floor passes (2.5x the committed scalar rate),
        # but the same-run anchor says batching is slower than scalar.
        rec_base = record(
            "engine",
            metrics={
                "scalar_days_per_sec": 1000.0,
                "batch_days_per_sec_w8": 2500.0,
            },
        )
        rec_cur = record(
            "engine",
            metrics={
                "scalar_days_per_sec": 1000.0,
                "batch_scalar_days_per_sec": 3000.0,
                "batch_days_per_sec_w8": 2500.0,
            },
        )
        self.write(self.baseline_dir, rec_base)
        self.write(self.current_dir, rec_cur)
        code, out = self.run_gate("--no-wall", "--batch-speedup", "2.0",
                                  "--batch-anchor-speedup", "1.2")
        self.assertNotEqual(code, 0)
        self.assertIn("in-run anchor floor", out)

    def test_batch_above_in_run_anchor_passes(self):
        rec = record(
            "engine",
            metrics={
                "scalar_days_per_sec": 1000.0,
                "batch_scalar_days_per_sec": 2000.0,
                "batch_days_per_sec_w8": 2500.0,
            },
        )
        self.write(self.baseline_dir, rec)
        self.write(self.current_dir, rec)
        code, out = self.run_gate("--no-wall", "--batch-speedup", "2.0",
                                  "--batch-anchor-speedup", "1.2")
        self.assertEqual(code, 0, out)
        self.assertIn("in-run scalar anchor", out)


class ServeGateTest(GateHarness):
    def serve_record(self, el_conns=384.0, tpc_conns=32.0, el_p99=0.05,
                     batch=900.0, stream=500.0, hardware=8):
        rec = record(
            "serve",
            metrics={
                "serve_conns_sustained_eventloop": el_conns,
                "serve_conns_sustained_threadperconn": tpc_conns,
                "serve_conn_p99_ms_eventloop": el_p99,
                "serve_conn_p99_ms_threadperconn": 0.02,
                "serve_households_per_core_batch": batch,
                "serve_households_per_core_stream": stream,
            },
        )
        rec["hardware_concurrency"] = hardware
        return rec

    def both(self, rec):
        self.write(self.baseline_dir, rec)
        self.write(self.current_dir, rec)

    def test_healthy_serve_record_passes(self):
        self.both(self.serve_record())
        code, out = self.run_gate("--no-wall")
        self.assertEqual(code, 0, out)
        self.assertIn("12.0x thread-per-conn", out)

    def test_conn_ratio_below_floor_fails(self):
        self.both(self.serve_record(el_conns=128.0))
        code, out = self.run_gate("--no-wall")
        self.assertNotEqual(code, 0)
        self.assertIn("serve capacity below floor", out)

    def test_conn_p99_over_bound_fails(self):
        # 12x the connections, but the latency claim behind the count no
        # longer holds.
        self.both(self.serve_record(el_p99=400.0))
        code, out = self.run_gate("--no-wall")
        self.assertNotEqual(code, 0)
        self.assertIn("serve capacity p99 over bound", out)

    def test_batch_speedup_below_floor_fails(self):
        self.both(self.serve_record(batch=600.0, stream=500.0))
        code, out = self.run_gate("--no-wall")
        self.assertNotEqual(code, 0)
        self.assertIn("serve batch speedup below floor", out)

    def test_single_core_run_skips_batch_gate_but_not_conn_gate(self):
        # One core serializes the reactor, the shard, and the client, so
        # the lane-batching ratio is noise — but sustained connections are
        # a capacity measure and must still gate.
        self.both(self.serve_record(batch=500.0, stream=500.0, hardware=1))
        code, out = self.run_gate("--no-wall")
        self.assertEqual(code, 0, out)
        self.assertIn("SKIPPED batch-close gate", out)
        self.both(self.serve_record(el_conns=64.0, hardware=1))
        code, out = self.run_gate("--no-wall")
        self.assertNotEqual(code, 0)
        self.assertIn("serve capacity below floor", out)

    def test_custom_floors_apply(self):
        rec = self.serve_record(el_conns=160.0, batch=600.0)
        self.both(rec)
        code, out = self.run_gate("--no-wall", "--serve-conn-ratio", "4",
                                  "--serve-batch-speedup", "1.1")
        self.assertEqual(code, 0, out)

    def test_no_serve_skips_the_gate(self):
        self.both(self.serve_record(el_conns=32.0, batch=100.0))
        code, out = self.run_gate("--no-wall", "--no-serve")
        self.assertEqual(code, 0, out)


class MalformedInputTest(GateHarness):
    def test_unreadable_record_fails_not_crashes(self):
        rec = record("alpha")
        self.write(self.baseline_dir, rec)
        self.write(self.current_dir, rec)
        (self.current_dir / "BENCH_broken.json").write_text("{not json")
        code, out = self.run_gate("--no-wall")
        self.assertNotEqual(code, 0)
        self.assertIn("unreadable BENCH record", out)


if __name__ == "__main__":
    unittest.main(verbosity=2)
