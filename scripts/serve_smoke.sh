#!/usr/bin/env bash
# CI smoke for the online metering daemon (rlblh_serve + load_gen).
#
# Proves the deployment-shaped version of the repo's bitwise-resume
# guarantee: a daemon SIGKILLed mid-run and restarted from its checkpoint
# directory must end a fleet run with checkpoint files byte-identical to a
# daemon that was never interrupted. Also exercises the graceful SIGTERM
# drain (checkpoint-then-exit, clean exit code) on both daemons.
#
# Usage: scripts/serve_smoke.sh [BUILD_DIR] [HOUSEHOLDS] [DAYS]
set -euo pipefail

BUILD_DIR="${1:-build}"
HOUSEHOLDS="${2:-50}"
DAYS="${3:-2}"
SEED_BASE=500
THREADS=4

SERVE="$BUILD_DIR/src/serve/rlblh_serve"
LOAD_GEN="$BUILD_DIR/src/serve/load_gen"
for bin in "$SERVE" "$LOAD_GEN"; do
  [ -x "$bin" ] || { echo "error: $bin not built" >&2; exit 2; }
done

WORK="$(mktemp -d)"
DAEMON_PID=""
cleanup() {
  [ -n "$DAEMON_PID" ] && kill -9 "$DAEMON_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

# Starts a daemon named $1 over checkpoint dir $2 and waits for its listen
# line. Sets DAEMON_PID and SOCK.
start_daemon() {
  SOCK="$WORK/$1.sock"
  "$SERVE" --listen "unix:$SOCK" --checkpoint-dir "$2" \
    > "$WORK/$1.log" 2>&1 &
  DAEMON_PID=$!
  for _ in $(seq 1 200); do
    grep -q "rlblh_serve listening" "$WORK/$1.log" 2>/dev/null && return 0
    kill -0 "$DAEMON_PID" 2>/dev/null || break
    sleep 0.05
  done
  echo "error: daemon $1 failed to start" >&2
  cat "$WORK/$1.log" >&2
  exit 1
}

run_fleet() {
  "$LOAD_GEN" --endpoint "unix:$SOCK" --households "$HOUSEHOLDS" \
    --days "$DAYS" --seed-base "$SEED_BASE" --threads "$THREADS"
}

echo "== reference run: $HOUSEHOLDS households x $DAYS days, no interruption"
start_daemon ref "$WORK/ref_ckpt"
run_fleet
kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID" || { echo "error: reference daemon drain failed" >&2; exit 1; }
grep -q "stopped cleanly" "$WORK/ref.log" || {
  echo "error: reference daemon did not drain cleanly" >&2
  cat "$WORK/ref.log" >&2
  exit 1
}
DAEMON_PID=""

echo "== interrupted run: SIGKILL the daemon mid-fleet, restart, resume"
start_daemon victim "$WORK/victim_ckpt"
run_fleet > "$WORK/leg1_load_gen.log" 2>&1 &
LOADGEN_PID=$!
# Kill once half the fleet has its first day-close checkpoint on disk: the
# daemon dies with some households done, some mid-day, some unstarted —
# independent of machine speed.
want=$(( (HOUSEHOLDS + 1) / 2 ))
for _ in $(seq 1 1000); do
  n=$(ls "$WORK/victim_ckpt" 2>/dev/null | wc -l)
  [ "$n" -ge "$want" ] && break
  sleep 0.01
done
kill -9 "$DAEMON_PID"
DAEMON_PID=""
# The generator is doomed (its daemon is gone mid-backoff); reap it.
kill "$LOADGEN_PID" 2>/dev/null || true
wait "$LOADGEN_PID" 2>/dev/null || true

start_daemon victim2 "$WORK/victim_ckpt"
# Resume: re-Hello, pick up each household's checkpoint cursor, replay the
# lost tail. The JSON record proves the leg actually had work to redo.
"$LOAD_GEN" --endpoint "unix:$SOCK" --households "$HOUSEHOLDS" \
  --days "$DAYS" --seed-base "$SEED_BASE" --threads "$THREADS" \
  --json "$WORK/resume.json"
python3 - "$WORK/resume.json" <<'EOF'
import json, sys
record = json.load(open(sys.argv[1]))
assert record["days_completed"] > 0, \
    "resume leg replayed nothing - the kill landed after the fleet finished"
print(f"resume leg replayed {record['days_completed']} household-days")
EOF
kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID" || { echo "error: restarted daemon drain failed" >&2; exit 1; }
DAEMON_PID=""

echo "== comparing checkpoint files byte for byte"
fail=0
for ((h = 0; h < HOUSEHOLDS; ++h)); do
  id=$((SEED_BASE + h))
  ref="$WORK/ref_ckpt/h$id.ckpt"
  got="$WORK/victim_ckpt/h$id.ckpt"
  [ -f "$ref" ] || { echo "missing reference checkpoint h$id" >&2; fail=1; continue; }
  [ -f "$got" ] || { echo "missing resumed checkpoint h$id" >&2; fail=1; continue; }
  cmp -s "$ref" "$got" || { echo "household $id checkpoint DIFFERS" >&2; fail=1; }
done
if [ "$fail" -ne 0 ]; then
  echo "serve_smoke: FAILED — resumed state is not bitwise-identical" >&2
  exit 1
fi
echo "serve_smoke: OK — $HOUSEHOLDS households bitwise-identical after kill/restart"
