#!/usr/bin/env bash
# CI smoke for the online metering daemon (rlblh_serve + load_gen).
#
# Proves the deployment-shaped version of the repo's bitwise-resume
# guarantee, once per threading mode (event-loop reactor and the
# thread-per-connection compat model): a daemon SIGKILLed mid-run and
# restarted from its checkpoint directory must end a fleet run with
# checkpoint files byte-identical to a daemon that was never interrupted.
# Also exercises the graceful SIGTERM drain (checkpoint-then-exit, clean
# exit code) on every daemon, and finally compares the two modes' reference
# checkpoints byte for byte against EACH OTHER — the two serving models
# must be indistinguishable on disk.
#
# Usage: scripts/serve_smoke.sh [BUILD_DIR] [HOUSEHOLDS] [DAYS]
set -euo pipefail

BUILD_DIR="${1:-build}"
HOUSEHOLDS="${2:-50}"
DAYS="${3:-2}"
SEED_BASE=500
THREADS=4

SERVE="$BUILD_DIR/src/serve/rlblh_serve"
LOAD_GEN="$BUILD_DIR/src/serve/load_gen"
for bin in "$SERVE" "$LOAD_GEN"; do
  [ -x "$bin" ] || { echo "error: $bin not built" >&2; exit 2; }
done

WORK="$(mktemp -d)"
DAEMON_PID=""
cleanup() {
  [ -n "$DAEMON_PID" ] && kill -9 "$DAEMON_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

# Starts a daemon named $1 in threading mode $2 over checkpoint dir $3 and
# waits for its listen line. Sets DAEMON_PID and SOCK.
start_daemon() {
  SOCK="$WORK/$1.sock"
  "$SERVE" --listen "unix:$SOCK" --threading "$2" --checkpoint-dir "$3" \
    > "$WORK/$1.log" 2>&1 &
  DAEMON_PID=$!
  for _ in $(seq 1 200); do
    grep -q "rlblh_serve listening" "$WORK/$1.log" 2>/dev/null && return 0
    kill -0 "$DAEMON_PID" 2>/dev/null || break
    sleep 0.05
  done
  echo "error: daemon $1 failed to start" >&2
  cat "$WORK/$1.log" >&2
  exit 1
}

run_fleet() {
  "$LOAD_GEN" --endpoint "unix:$SOCK" --households "$HOUSEHOLDS" \
    --days "$DAYS" --seed-base "$SEED_BASE" --threads "$THREADS"
}

# The full reference + kill/restart differential for one threading mode.
run_mode() {
  local mode="$1"

  echo "== [$mode] reference run: $HOUSEHOLDS households x $DAYS days, no interruption"
  start_daemon "${mode}_ref" "$mode" "$WORK/${mode}_ref_ckpt"
  run_fleet
  kill -TERM "$DAEMON_PID"
  wait "$DAEMON_PID" || { echo "error: [$mode] reference daemon drain failed" >&2; exit 1; }
  grep -q "stopped cleanly" "$WORK/${mode}_ref.log" || {
    echo "error: [$mode] reference daemon did not drain cleanly" >&2
    cat "$WORK/${mode}_ref.log" >&2
    exit 1
  }
  DAEMON_PID=""

  echo "== [$mode] interrupted run: SIGKILL the daemon mid-fleet, restart, resume"
  start_daemon "${mode}_victim" "$mode" "$WORK/${mode}_victim_ckpt"
  run_fleet > "$WORK/${mode}_leg1_load_gen.log" 2>&1 &
  LOADGEN_PID=$!
  # Kill once half the fleet has its first day-close checkpoint on disk:
  # the daemon dies with some households done, some mid-day, some
  # unstarted — independent of machine speed.
  local want n
  want=$(( (HOUSEHOLDS + 1) / 2 ))
  for _ in $(seq 1 1000); do
    n=$(ls "$WORK/${mode}_victim_ckpt" 2>/dev/null | wc -l)
    [ "$n" -ge "$want" ] && break
    sleep 0.01
  done
  kill -9 "$DAEMON_PID"
  DAEMON_PID=""
  # The generator is doomed (its daemon is gone mid-backoff); reap it.
  kill "$LOADGEN_PID" 2>/dev/null || true
  wait "$LOADGEN_PID" 2>/dev/null || true

  start_daemon "${mode}_victim2" "$mode" "$WORK/${mode}_victim_ckpt"
  # Resume: re-Hello, pick up each household's checkpoint cursor, replay
  # the lost tail. The JSON record proves the leg actually had work to
  # redo.
  "$LOAD_GEN" --endpoint "unix:$SOCK" --households "$HOUSEHOLDS" \
    --days "$DAYS" --seed-base "$SEED_BASE" --threads "$THREADS" \
    --json "$WORK/${mode}_resume.json"
  python3 - "$WORK/${mode}_resume.json" <<'EOF'
import json, sys
record = json.load(open(sys.argv[1]))
assert record["days_completed"] > 0, \
    "resume leg replayed nothing - the kill landed after the fleet finished"
print(f"resume leg replayed {record['days_completed']} household-days "
      f"({record['reconnects']} reconnects, "
      f"{record['draining_waits']} draining waits)")
EOF
  kill -TERM "$DAEMON_PID"
  wait "$DAEMON_PID" || { echo "error: [$mode] restarted daemon drain failed" >&2; exit 1; }
  DAEMON_PID=""

  echo "== [$mode] comparing checkpoint files byte for byte"
  compare_ckpt_dirs "$WORK/${mode}_ref_ckpt" "$WORK/${mode}_victim_ckpt" \
    "[$mode] kill/restart"
}

# Byte-compares checkpoint dirs $1 and $2 for every household; label $3.
compare_ckpt_dirs() {
  local fail=0 h id ref got
  for ((h = 0; h < HOUSEHOLDS; ++h)); do
    id=$((SEED_BASE + h))
    ref="$1/h$id.ckpt"
    got="$2/h$id.ckpt"
    [ -f "$ref" ] || { echo "$3: missing checkpoint h$id in $1" >&2; fail=1; continue; }
    [ -f "$got" ] || { echo "$3: missing checkpoint h$id in $2" >&2; fail=1; continue; }
    cmp -s "$ref" "$got" || { echo "$3: household $id checkpoint DIFFERS" >&2; fail=1; }
  done
  if [ "$fail" -ne 0 ]; then
    echo "serve_smoke: FAILED — $3 state is not bitwise-identical" >&2
    exit 1
  fi
}

run_mode event-loop
run_mode thread-per-conn

echo "== comparing event-loop vs thread-per-conn reference checkpoints"
compare_ckpt_dirs "$WORK/event-loop_ref_ckpt" "$WORK/thread-per-conn_ref_ckpt" \
  "cross-mode"

echo "serve_smoke: OK — $HOUSEHOLDS households bitwise-identical after kill/restart in both threading modes, and across modes"
