#!/usr/bin/env python3
"""Compare BENCH_*.json records against committed baselines.

CI regression gate: for every baseline record under bench/baselines/ the
current run must provide a matching BENCH_<name>.json whose

  * headline "metrics" object agrees with the baseline within a relative
    tolerance (the benches are deterministic, so drift means the simulation
    changed — a correctness signal, not noise), and
  * "wall_seconds" has not regressed by more than the allowed fraction
    (default 25%). Wall time is only compared when the current machine is
    not slower overall than the baseline machine, which is estimated from
    the records themselves (see --wall-tolerance / --no-wall below), and
  * for benches that emit days_per_sec_per_core_t<N>_<workload> families,
    the tN/t1 per-core throughput ratio (parallel efficiency, a
    machine-relative quantity) has not dropped more than the allowed
    fraction below the baseline's ratio (see --scaling-tolerance /
    --no-scaling below), and
  * for benches that emit batch_days_per_sec_w<W> records, the W=8 figure
    is at least --batch-speedup times the baseline's overall scalar
    days_per_sec, rescaled by the machine-speed ratio (see --no-batch), and
  * when the current record also carries an in-run scalar anchor
    (batch_scalar_days_per_sec: the identical replay workload through the
    scalar engine, measured in the same run), the W=8 figure is at least
    --batch-anchor-speedup times that anchor. Both numbers come from one
    process on one machine, so no machine rescaling applies — this is the
    sharp "is batching worth it" gate; the baseline-relative gate above is
    the coarse cross-machine one, and
  * for the serving bench's in-run capacity pairs, the event-loop daemon
    must sustain --serve-conn-ratio times the connections of the
    thread-per-conn daemon with its ping p99 inside --serve-p99-bound-ms,
    and the batch-stepped close rate must be --serve-batch-speedup times
    the same run's stream-close rate (see --no-serve). Like the in-run
    batch anchor, both halves of each ratio come from one process on one
    machine, so no rescaling applies.

Baselines recorded on a single-core machine carry
"hardware_concurrency": 1; the parallel-efficiency gate skips (loudly)
rather than failing healthy multi-core runs against ratios that machine
could never express.

Exit status is non-zero on any failure. A summary table is printed to
stdout and, when the GITHUB_STEP_SUMMARY environment variable points at a
file, appended there as a Markdown table.

Refreshing baselines after an intentional change:

  1. Download the `bench-json` artifact from a green CI run on main
     (or regenerate locally: `<bench> --quick --threads 2 --out ...`).
  2. Copy the BENCH_*.json files over bench/baselines/.
  3. Commit them together with the change that moved the numbers, and say
     why in the commit message.

Usage:
  bench_compare.py BASELINE_DIR CURRENT_DIR [--wall-tolerance F]
                   [--metric-rtol F] [--no-wall]
                   [--scaling-tolerance F] [--no-scaling]
"""

import argparse
import json
import math
import os
import re
import sys
from pathlib import Path

# Metric keys with a time-unit token (dp_solve_ms_L16, rl_us_per_day) are
# measurements, not simulation outputs: they move with the machine, so they
# are exempt from the strict drift check and only gated — like wall time —
# by the machine-ratio-scaled budget in main().
TIMING_METRIC = re.compile(r"(^|_)(ns|us|ms|sec|seconds)(_|$)")

# Speedup metrics (batch_speedup_w8) are ratios of two timings from the
# same run: machine-relative but still noisy between runs, so they are
# exempt from the strict drift check like the raw timings they divide.
SPEEDUP_METRIC = re.compile(r"(^|_)speedup(_|$)")

# Throughput-rate metrics (serve_households_per_core, intervals_per_sec)
# are measurements like the timing metrics: they move with the machine, so
# they are exempt from the strict drift check and covered by the wall
# budget. (days_per_sec families are already exempt via the "sec" token.)
THROUGHPUT_METRIC = re.compile(r"(^|_)per_(sec|core)(_|$)")

# Lockstep-batch throughput records emitted by micro_engine
# (batch_days_per_sec_w8). The W=8 figure is gated against the committed
# scalar baseline: the batch engine must keep a multiple of the scalar
# per-day rate or the SoA path has stopped paying for itself.
BATCH_METRIC = re.compile(r"^batch_days_per_sec_w(\d+)$")

# Per-core throughput metrics emitted by the scaling benches
# (days_per_sec_per_core_t8_h10000). Absolute values move with the machine,
# but the RATIO between the tN and t1 figure of the same workload is a
# machine-relative measure of parallel efficiency — comparing that ratio
# against the baseline's catches scaling regressions (lock contention,
# false sharing, serialization) without pinning absolute speed.
PER_CORE_METRIC = re.compile(r"^days_per_sec_per_core_t(\d+)_(.+)$")


def per_core_scales(metrics: dict) -> dict:
    """Maps workload suffix -> {threads: per-core throughput ratio vs t1}
    for every days_per_sec_per_core_t<N>_<suffix> family with a t1 anchor."""
    families = {}
    for key, value in metrics.items():
        match = PER_CORE_METRIC.match(key)
        if match:
            families.setdefault(match.group(2), {})[int(match.group(1))] = (
                float(value)
            )
    scales = {}
    for suffix, by_threads in families.items():
        anchor = by_threads.get(1, 0.0)
        if anchor <= 0.0:
            continue
        scales[suffix] = {
            threads: value / anchor
            for threads, value in by_threads.items()
            if threads != 1 and value > 0.0
        }
    return scales


def compare_scaling(name: str, base: dict, cur: dict, tolerance: float):
    """Gates parallel efficiency: the current tN/t1 per-core ratio must not
    fall more than `tolerance` below the baseline's ratio for the same
    workload. Returns (failures, info_lines)."""
    failures, info = [], []
    # A baseline recorded on a single-core machine cannot express parallel
    # scaling: every tN/t1 ratio in it is ~1/N noise, and gating against it
    # would fail any healthy multi-core run. Skip loudly instead.
    base_hw = base.get("hardware_concurrency")
    if base_hw is not None and int(base_hw) <= 1:
        info.append(
            f"{name}: SKIPPED scaling gate — committed baseline was "
            f"recorded on a single-core machine "
            f"(hardware_concurrency={base_hw})"
        )
        return failures, info
    base_scales = per_core_scales(base.get("metrics", {}))
    cur_scales = per_core_scales(cur.get("metrics", {}))
    for suffix in sorted(base_scales):
        for threads in sorted(base_scales[suffix]):
            base_scale = base_scales[suffix][threads]
            cur_scale = cur_scales.get(suffix, {}).get(threads)
            if cur_scale is None:
                failures.append(
                    f"{name}: scaling ratio t{threads}/t1 for '{suffix}' "
                    f"missing from current run"
                )
                continue
            floor = base_scale * (1.0 - tolerance)
            status = "ok" if cur_scale >= floor else "FAIL"
            info.append(
                f"{name} {suffix}: t{threads}/t1 per-core scale "
                f"{cur_scale:.2f} (baseline {base_scale:.2f}, floor "
                f"{floor:.2f}) {status}"
            )
            if cur_scale < floor:
                failures.append(
                    f"{name}: parallel efficiency regressed for '{suffix}': "
                    f"t{threads}/t1 per-core scale {cur_scale:.2f} vs "
                    f"baseline {base_scale:.2f} (floor {floor:.2f}, "
                    f"tolerance {tolerance:.0%})"
                )
    return failures, info


def compare_batch(name: str, base: dict, cur: dict, min_speedup: float,
                  machine_speedup: float, min_anchor_speedup: float):
    """Gates lockstep-batch throughput two ways. Cross-machine: the current
    batch_days_per_sec_w8 must be at least `min_speedup` times the committed
    baseline's overall scalar day-loop rate (the scalar_days_per_sec metric;
    the record-level days_per_sec is the fallback for old records), rescaled
    to this machine's speed. In-run: when the current record carries a
    batch_scalar_days_per_sec anchor (the same replay workload through the
    scalar engine, same run, same machine), the W=8 figure must be at least
    `min_anchor_speedup` times that anchor — no rescaling, because both
    numbers share the run. Other widths are reported but not gated. Returns
    (failures, info_lines)."""
    failures, info = [], []
    scalar = float(
        base.get("metrics", {}).get(
            "scalar_days_per_sec", base.get("days_per_sec", 0.0)
        )
    )
    anchor = float(cur.get("metrics", {}).get("batch_scalar_days_per_sec", 0.0))
    if (scalar <= 0.0 or machine_speedup <= 0.0) and anchor <= 0.0:
        return failures, info
    for key in sorted(cur.get("metrics", {})):
        match = BATCH_METRIC.match(key)
        if not match:
            continue
        width = int(match.group(1))
        batch = float(cur["metrics"][key])
        gated = width == 8
        if scalar > 0.0 and machine_speedup > 0.0:
            floor = min_speedup * scalar * machine_speedup
            ratio = batch / (scalar * machine_speedup)
            status = "ok" if batch >= floor else ("FAIL" if gated else "info")
            info.append(
                f"{name} W={width}: batch {batch:.0f} days/s = {ratio:.2f}x "
                f"the scalar baseline ({scalar:.0f} x machine "
                f"{machine_speedup:.2f}x; floor {min_speedup:.1f}x) {status}"
            )
            if gated and batch < floor:
                failures.append(
                    f"{name}: batch throughput below floor: '{key}' = "
                    f"{batch:.0f} days/s, need >= {min_speedup:.1f}x the "
                    f"baseline scalar rate ({floor:.0f} days/s on this "
                    f"machine)"
                )
        if anchor > 0.0:
            anchor_ratio = batch / anchor
            anchor_ok = anchor_ratio >= min_anchor_speedup
            status = "ok" if anchor_ok else ("FAIL" if gated else "info")
            info.append(
                f"{name} W={width}: batch {batch:.0f} days/s = "
                f"{anchor_ratio:.2f}x the in-run scalar anchor "
                f"({anchor:.0f} days/s; floor {min_anchor_speedup:.1f}x) "
                f"{status}"
            )
            if gated and not anchor_ok:
                failures.append(
                    f"{name}: batch throughput below the in-run anchor "
                    f"floor: '{key}' = {batch:.0f} days/s is only "
                    f"{anchor_ratio:.2f}x the same-run scalar rate "
                    f"({anchor:.0f} days/s), need >= "
                    f"{min_anchor_speedup:.1f}x"
                )
    return failures, info


def compare_serve(name: str, cur: dict, min_conn_ratio: float,
                  p99_bound_ms: float, min_batch_speedup: float):
    """Gates the serving-path capacity claims, both from in-run pairs (the
    two numbers of each ratio come from the same process on the same
    machine, so no baseline rescaling applies). Capacity: the event-loop
    daemon must sustain at least `min_conn_ratio` times the connections of
    the thread-per-conn daemon, with the event-loop ping p99 inside
    `p99_bound_ms` — "10x the connections at bounded p99". Batching: the
    batch-stepped household-days/sec figure must be at least
    `min_batch_speedup` times the same run's stream-close figure — except
    on a single-core machine, where every serving design serializes and
    the ratio is skipped loudly (the compare_scaling rationale). Records
    without the serve metrics are skipped. Returns (failures, info_lines)."""
    failures, info = [], []
    metrics = cur.get("metrics", {})
    el_conns = float(metrics.get("serve_conns_sustained_eventloop", 0.0))
    tpc_conns = float(metrics.get("serve_conns_sustained_threadperconn", 0.0))
    if el_conns > 0.0 and tpc_conns > 0.0:
        ratio = el_conns / tpc_conns
        el_p99 = float(metrics.get("serve_conn_p99_ms_eventloop", 0.0))
        ratio_ok = ratio >= min_conn_ratio
        p99_ok = el_p99 <= p99_bound_ms
        status = "ok" if (ratio_ok and p99_ok) else "FAIL"
        info.append(
            f"{name}: event loop sustains {el_conns:.0f} conns = "
            f"{ratio:.1f}x thread-per-conn ({tpc_conns:.0f}; floor "
            f"{min_conn_ratio:.0f}x) at ping p99 {el_p99:.3f} ms (bound "
            f"{p99_bound_ms:.0f} ms) {status}"
        )
        if not ratio_ok:
            failures.append(
                f"{name}: serve capacity below floor: event loop sustained "
                f"{el_conns:.0f} conns, only {ratio:.1f}x the "
                f"thread-per-conn daemon ({tpc_conns:.0f}), need >= "
                f"{min_conn_ratio:.0f}x"
            )
        if not p99_ok:
            failures.append(
                f"{name}: serve capacity p99 over bound: event-loop ping "
                f"p99 {el_p99:.3f} ms exceeds {p99_bound_ms:.0f} ms — the "
                f"sustained-connection count does not hold at bounded "
                f"latency"
            )
    batch = float(metrics.get("serve_households_per_core_batch", 0.0))
    stream = float(metrics.get("serve_households_per_core_stream", 0.0))
    if batch > 0.0 and stream > 0.0:
        speedup = batch / stream
        cur_hw = cur.get("hardware_concurrency")
        if cur_hw is not None and int(cur_hw) <= 1:
            # On one core the reactor, the shard, and the client serialize,
            # so the daemon's lane-batching payoff cannot be expressed —
            # the same reasoning as the single-core skip in
            # compare_scaling. Report the measured ratio but do not gate.
            info.append(
                f"{name}: SKIPPED batch-close gate — this run is on a "
                f"single-core machine (hardware_concurrency={cur_hw}); "
                f"measured {speedup:.2f}x"
            )
            return failures, info
        ok = speedup >= min_batch_speedup
        info.append(
            f"{name}: batch-stepped closes {batch:.0f} household-days/s = "
            f"{speedup:.2f}x the in-run stream figure ({stream:.0f}; floor "
            f"{min_batch_speedup:.1f}x) {'ok' if ok else 'FAIL'}"
        )
        if not ok:
            failures.append(
                f"{name}: serve batch speedup below floor: "
                f"{batch:.0f} household-days/s is only {speedup:.2f}x the "
                f"same-run stream-close rate ({stream:.0f}), need >= "
                f"{min_batch_speedup:.1f}x"
            )
    return failures, info


def load_records(directory: Path, problems: list) -> dict:
    """Loads every BENCH_*.json in `directory`; unreadable or malformed
    files become failure strings in `problems` instead of tracebacks."""
    records = {}
    for path in sorted(directory.glob("BENCH_*.json")):
        try:
            with open(path) as handle:
                record = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            problems.append(f"{path}: unreadable BENCH record ({error})")
            continue
        if not isinstance(record, dict):
            problems.append(f"{path}: BENCH record is not a JSON object")
            continue
        records[record.get("bench", path.stem)] = record
    return records


def close(a: float, b: float, rtol: float) -> bool:
    if math.isnan(a) and math.isnan(b):
        return True
    return math.isclose(a, b, rel_tol=rtol, abs_tol=1e-12)


def compare_metrics(name: str, base: dict, cur: dict, rtol: float) -> list:
    """Returns a list of failure strings for one bench's metrics object."""
    failures = []
    base_metrics = base.get("metrics", {})
    cur_metrics = cur.get("metrics", {})
    for key in sorted(base_metrics):
        if key not in cur_metrics:
            failures.append(f"{name}: metric '{key}' missing from current run")
            continue
        if (TIMING_METRIC.search(key) or SPEEDUP_METRIC.search(key)
                or THROUGHPUT_METRIC.search(key)):
            continue  # machine measurement: gated by the wall budget instead
        b, c = base_metrics[key], cur_metrics[key]
        if not close(float(b), float(c), rtol):
            failures.append(
                f"{name}: metric '{key}' drifted: baseline {b!r} vs "
                f"current {c!r} (rtol {rtol})"
            )
    for key in sorted(set(cur_metrics) - set(base_metrics)):
        failures.append(
            f"{name}: new metric '{key}' not in baseline "
            f"(refresh bench/baselines/ to accept it)"
        )
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("baseline_dir", type=Path)
    parser.add_argument("current_dir", type=Path)
    parser.add_argument(
        "--wall-tolerance",
        type=float,
        default=0.25,
        help="allowed fractional wall_seconds regression (default 0.25)",
    )
    parser.add_argument(
        "--metric-rtol",
        type=float,
        default=0.10,
        help="relative tolerance for headline metric drift (default 0.10)",
    )
    parser.add_argument(
        "--no-wall",
        action="store_true",
        help="skip the wall-clock comparison (metrics only)",
    )
    parser.add_argument(
        "--scaling-tolerance",
        type=float,
        default=0.35,
        help="allowed fractional drop in tN/t1 per-core throughput ratio "
        "vs the baseline's ratio (default 0.35)",
    )
    parser.add_argument(
        "--no-scaling",
        action="store_true",
        help="skip the parallel-efficiency comparison",
    )
    parser.add_argument(
        "--batch-speedup",
        type=float,
        default=2.0,
        help="required batch_days_per_sec_w8 multiple of the baseline's "
        "scalar days_per_sec, machine-ratio scaled (default 2.0)",
    )
    parser.add_argument(
        "--batch-anchor-speedup",
        type=float,
        default=1.2,
        help="required batch_days_per_sec_w8 multiple of the same run's "
        "batch_scalar_days_per_sec anchor, unscaled (default 1.2)",
    )
    parser.add_argument(
        "--no-batch",
        action="store_true",
        help="skip the lockstep-batch throughput comparison",
    )
    parser.add_argument(
        "--serve-conn-ratio",
        type=float,
        default=10.0,
        help="required serve_conns_sustained_eventloop multiple of the "
        "same run's thread-per-conn figure (default 10)",
    )
    parser.add_argument(
        "--serve-p99-bound-ms",
        type=float,
        default=250.0,
        help="event-loop ping p99 ceiling for the sustained-connection "
        "claim, in milliseconds (default 250)",
    )
    parser.add_argument(
        "--serve-batch-speedup",
        type=float,
        default=1.5,
        help="required serve_households_per_core_batch multiple of the "
        "same run's stream-close figure (default 1.5)",
    )
    parser.add_argument(
        "--no-serve",
        action="store_true",
        help="skip the serving-path capacity comparison",
    )
    args = parser.parse_args()

    failures = []
    baselines = load_records(args.baseline_dir, failures)
    currents = load_records(args.current_dir, failures)
    if not baselines:
        print(f"error: no BENCH_*.json baselines in {args.baseline_dir}")
        return 2

    # A current record with no committed counterpart cannot be gated, which
    # silently exempts exactly the benches most likely to regress (the new
    # ones). Fail loudly instead, with the command that creates the baseline.
    unbaselined = sorted(set(currents) - set(baselines))
    for name in unbaselined:
        failures.append(
            f"{name}: missing baseline — run the bench and commit "
            f"{args.baseline_dir}/BENCH_{name}.json (e.g. copy it from "
            f"this run's bench-json artifact)"
        )

    # Wall-clock comparisons are meaningful only when the current machine is
    # at least as fast as the one that produced the baselines. Estimate the
    # machine-speed ratio from the median per-bench throughput ratio; when
    # the current machine is slower overall, scale the budget accordingly so
    # the gate still catches a bench that regressed relative to its peers.
    ratios = []
    for name, base in baselines.items():
        cur = currents.get(name)
        if cur is None:
            continue
        b, c = base.get("days_per_sec", 0.0), cur.get("days_per_sec", 0.0)
        if b > 0.0 and c > 0.0:
            ratios.append(c / b)
    ratios.sort()
    machine_speedup = ratios[len(ratios) // 2] if ratios else 1.0

    rows = []
    scaling_lines = []
    batch_lines = []
    serve_lines = []
    for name in unbaselined:
        rows.append((name, "NO BASELINE", "-", "-"))
    for name, base in sorted(baselines.items()):
        cur = currents.get(name)
        if cur is None:
            failures.append(f"{name}: no current BENCH record (bench removed?)")
            rows.append((name, "MISSING", "-", "-"))
            continue

        failures.extend(compare_metrics(name, base, cur, args.metric_rtol))
        if not args.no_scaling:
            scaling_failures, info = compare_scaling(
                name, base, cur, args.scaling_tolerance
            )
            failures.extend(scaling_failures)
            scaling_lines.extend(info)
        if not args.no_batch:
            batch_failures, info = compare_batch(
                name, base, cur, args.batch_speedup, machine_speedup,
                args.batch_anchor_speedup
            )
            failures.extend(batch_failures)
            batch_lines.extend(info)
        if not args.no_serve:
            serve_failures, info = compare_serve(
                name, cur, args.serve_conn_ratio, args.serve_p99_bound_ms,
                args.serve_batch_speedup
            )
            failures.extend(serve_failures)
            serve_lines.extend(info)

        base_wall = float(base.get("wall_seconds", 0.0))
        cur_wall = float(cur.get("wall_seconds", 0.0))
        # Budget in current-machine seconds: baseline wall rescaled by the
        # overall machine ratio, plus the allowed regression fraction.
        budget = (
            base_wall / machine_speedup * (1.0 + args.wall_tolerance)
            if machine_speedup > 0.0
            else float("inf")
        )
        wall_ok = args.no_wall or base_wall <= 0.0 or cur_wall <= budget
        if not wall_ok:
            failures.append(
                f"{name}: wall_seconds regressed: {cur_wall:.3f}s vs budget "
                f"{budget:.3f}s (baseline {base_wall:.3f}s, machine ratio "
                f"{machine_speedup:.2f}x, tolerance "
                f"{args.wall_tolerance:.0%})"
            )
        metrics_ok = not any(f.startswith(f"{name}: metric") or
                             f.startswith(f"{name}: new metric")
                             for f in failures)
        scaling_ok = not any(f.startswith(f"{name}: parallel efficiency") or
                             f.startswith(f"{name}: scaling ratio")
                             for f in failures)
        batch_ok = not any(f.startswith(f"{name}: batch throughput")
                           for f in failures)
        serve_ok = not any(f.startswith(f"{name}: serve")
                           for f in failures)
        rows.append(
            (
                name,
                "ok" if (wall_ok and metrics_ok and scaling_ok and batch_ok
                         and serve_ok)
                else "FAIL",
                f"{base_wall:.3f}s -> {cur_wall:.3f}s",
                "ok" if metrics_ok else "drift",
            )
        )

    header = ("bench", "status", "wall", "metrics")
    widths = [
        max(len(str(row[i])) for row in rows + [header]) for i in range(4)
    ]
    print(f"bench_compare: machine speed ratio {machine_speedup:.2f}x "
          f"(current vs baseline)")
    for row in [header] + rows:
        print("  ".join(str(cell).ljust(w) for cell, w in zip(row, widths)))
    if scaling_lines:
        print("\nparallel efficiency (tN/t1 per-core throughput ratios):")
        for line in scaling_lines:
            print(f"  {line}")
    if batch_lines:
        print("\nlockstep-batch throughput (vs scalar baseline):")
        for line in batch_lines:
            print(f"  {line}")
    if serve_lines:
        print("\nserving-path capacity (in-run pairs):")
        for line in serve_lines:
            print(f"  {line}")

    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a") as summary:
            summary.write("## Bench regression gate\n\n")
            summary.write(
                f"Machine speed ratio: {machine_speedup:.2f}x, wall "
                f"tolerance {args.wall_tolerance:.0%}, metric rtol "
                f"{args.metric_rtol}\n\n"
            )
            summary.write("| " + " | ".join(header) + " |\n")
            summary.write("|" + "---|" * 4 + "\n")
            for row in rows:
                summary.write("| " + " | ".join(str(c) for c in row) + " |\n")
            if scaling_lines:
                summary.write(
                    "\n**Parallel efficiency** (tN/t1 per-core ratio, "
                    f"tolerance {args.scaling_tolerance:.0%})\n\n"
                )
                for line in scaling_lines:
                    summary.write(f"- {line}\n")
            if batch_lines:
                summary.write(
                    "\n**Lockstep-batch throughput** (W=8 gated at "
                    f"{args.batch_speedup:.1f}x the scalar baseline and "
                    f"{args.batch_anchor_speedup:.1f}x the in-run scalar "
                    "anchor)\n\n"
                )
                for line in batch_lines:
                    summary.write(f"- {line}\n")
            if serve_lines:
                summary.write(
                    "\n**Serving-path capacity** (event loop gated at "
                    f"{args.serve_conn_ratio:.0f}x thread-per-conn "
                    f"connections under {args.serve_p99_bound_ms:.0f} ms "
                    f"ping p99; batch closes at "
                    f"{args.serve_batch_speedup:.1f}x the stream rate)\n\n"
                )
                for line in serve_lines:
                    summary.write(f"- {line}\n")
            if unbaselined:
                summary.write(
                    "\n**Benches skipped by the gate (no committed "
                    "baseline)**\n\n"
                )
                for name in unbaselined:
                    summary.write(
                        f"- `{name}` — commit "
                        f"`{args.baseline_dir}/BENCH_{name}.json`\n"
                    )
            if failures:
                summary.write("\n**Failures**\n\n")
                for failure in failures:
                    summary.write(f"- {failure}\n")
                summary.write(
                    "\nTo refresh baselines after an intentional change: "
                    "download the `bench-json` artifact from a green main "
                    "run, copy its BENCH_*.json over `bench/baselines/`, "
                    "and commit them with the change.\n"
                )

    if failures:
        print("\nbench_compare: FAILED")
        for failure in failures:
            print(f"  - {failure}")
        print(
            "\nIf the change is intentional, refresh bench/baselines/ "
            "(see the module docstring) and commit the new records."
        )
        return 1
    print("\nbench_compare: all benches within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
