// Figure 8 reproduction: privacy and cost savings as the decision interval
// n_D varies over {10, 15, 20}, at b_M = 5 kWh.
//
// Paper values: SR {15.8, 15.4, 13.1}%, MI {0.015, 0.012, 0.009},
// CC {~0.0199, ~0.0214} (flat). The shapes to reproduce: SR decreases in
// n_D (longer pulses = less battery controllability), MI decreases in n_D
// (longer flat stretches hide high-frequency variation better), CC roughly
// flat — n_D is the privacy/cost knob.
#include "bench_main.h"
#include "common.h"
#include "util/table.h"

#include <iostream>
#include <vector>

namespace rlblh::bench {

const char* const kBenchName = "fig8_decision_interval";

void bench_body(BenchContext& ctx) {
  print_header("Figure 8: effect of the decision interval n_D (b_M = 5 kWh)");

  struct PaperRow {
    std::size_t n_d;
    double sr, mi;
  };
  const std::vector<PaperRow> paper = {{10, 15.8, 0.015},
                                       {15, 15.4, 0.012},
                                       {20, 13.1, 0.009}};

  const int kTrainDays = ctx.days(110, 6);
  const int kEvalDays = ctx.days(120, 4);
  const std::vector<unsigned> seeds = {7, 8, 9};

  const std::vector<EvaluationResult> cells = ctx.sweep().run_grid(
      paper, seeds, [&](const PaperRow& row, unsigned seed) {
        Scenario s =
            build_scenario(paper_spec("rlblh", row.n_d, 5.0, seed, 500 + seed));
        auto& policy = *s.policy_as<RlBlhPolicy>();
        s.simulator.run_days(policy, static_cast<std::size_t>(kTrainDays));
        return measure_full(s.simulator, policy, kEvalDays);
      });
  ctx.count_cells(cells.size());
  ctx.count_days(cells.size() *
                 static_cast<std::size_t>(kTrainDays + kEvalDays));

  TablePrinter table({"n_D", "SR %", "MI", "CC", "paper SR %", "paper MI"});
  for (std::size_t r = 0; r < paper.size(); ++r) {
    const PaperRow& row = paper[r];
    const EvaluationStats mean =
        mean_over_cells(cells, r * seeds.size(), seeds.size());
    table.add_row({std::to_string(row.n_d),
                   TablePrinter::num(100.0 * mean.saving_ratio.mean(), 1),
                   TablePrinter::num(mean.normalized_mi.mean(), 4),
                   TablePrinter::num(mean.mean_cc.mean(), 4),
                   TablePrinter::num(row.sr, 1),
                   TablePrinter::num(row.mi, 3)});
    ctx.metric("sr_nD" + std::to_string(row.n_d), mean.saving_ratio.mean());
    ctx.metric("mi_nD" + std::to_string(row.n_d), mean.normalized_mi.mean());
  }
  table.print(std::cout);
  std::printf("\nshape checks: SR drops at the long pulse (n_D = 20, least "
              "controllability);\nMI decreases monotonically as n_D grows; "
              "CC stays roughly flat.\nn_D trades cost savings against "
              "high-frequency privacy, as in the paper.\n");
}

}  // namespace rlblh::bench
