// Figure 8 reproduction: privacy and cost savings as the decision interval
// n_D varies over {10, 15, 20}, at b_M = 5 kWh.
//
// Paper values: SR {15.8, 15.4, 13.1}%, MI {0.015, 0.012, 0.009},
// CC {~0.0199, ~0.0214} (flat). The shapes to reproduce: SR decreases in
// n_D (longer pulses = less battery controllability), MI decreases in n_D
// (longer flat stretches hide high-frequency variation better), CC roughly
// flat — n_D is the privacy/cost knob.
#include "common.h"
#include "util/table.h"

#include <iostream>

int main() {
  using namespace rlblh;
  using namespace rlblh::bench;

  print_header("Figure 8: effect of the decision interval n_D (b_M = 5 kWh)");

  const TouSchedule prices = TouSchedule::srp_plan();
  struct PaperRow {
    std::size_t n_d;
    double sr, mi;
  };
  const PaperRow paper[] = {{10, 15.8, 0.015}, {15, 15.4, 0.012},
                            {20, 13.1, 0.009}};

  const int kTrainDays = 110;
  const int kEvalDays = 120;

  TablePrinter table({"n_D", "SR %", "MI", "CC", "paper SR %", "paper MI"});
  for (const PaperRow& row : paper) {
    Metrics mean;
    const unsigned seeds[] = {7, 8, 9};
    for (const unsigned seed : seeds) {
      RlBlhPolicy policy(paper_config(row.n_d, 5.0, seed));
      Simulator sim = make_household_simulator(HouseholdConfig{}, prices, 5.0,
                                               500 + seed);
      sim.run_days(policy, kTrainDays);
      const Metrics m = measure(sim, policy, kEvalDays);
      mean.sr += m.sr / 3.0;
      mean.cc += m.cc / 3.0;
      mean.mi += m.mi / 3.0;
    }
    table.add_row({std::to_string(row.n_d),
                   TablePrinter::num(100.0 * mean.sr, 1),
                   TablePrinter::num(mean.mi, 4),
                   TablePrinter::num(mean.cc, 4),
                   TablePrinter::num(row.sr, 1),
                   TablePrinter::num(row.mi, 3)});
  }
  table.print(std::cout);
  std::printf("\nshape checks: SR drops at the long pulse (n_D = 20, least "
              "controllability);\nMI decreases monotonically as n_D grows; "
              "CC stays roughly flat.\nn_D trades cost savings against "
              "high-frequency privacy, as in the paper.\n");
  return 0;
}
