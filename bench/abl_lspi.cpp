// Ablation: why the paper rejected LSPI (Section V, footnote 4).
//
// "The LSPI requires to compute the difference in features between two
// consecutive states (k, B_k) and (k+1, B_{k+1}), which is the same or can
// be very similar across k. This characteristic reduces the LSPI to an
// under-determined system of linear equations."
//
// We collect real transitions from the running controller, accumulate the
// per-action LSTD-Q normal equations, and report how close to singular each
// action's system is — measured, not cited. Actions that are only taken in
// the forced guard bands see almost no battery-level variation, which is
// exactly the rank deficiency the footnote describes.
#include <iostream>
#include <vector>

#include "bench_main.h"
#include "common.h"
#include "rl/lspi.h"
#include "util/table.h"

namespace rlblh::bench {

const char* const kBenchName = "abl_lspi";

void bench_body(BenchContext& ctx) {
  print_header("Ablation: LSTD-Q (LSPI core) near-singularity, footnote 4");

  Scenario scenario =
      build_scenario(paper_spec("rlblh", 15, 5.0, /*seed=*/7, /*hseed=*/900));
  auto& policy = *scenario.policy_as<RlBlhPolicy>();
  Simulator& sim = scenario.simulator;
  const TouSchedule& prices = sim.prices();
  const RlBlhConfig& config = policy.config();
  const int kWarmupDays = ctx.days(30, 5);
  sim.run_days(policy, static_cast<std::size_t>(kWarmupDays));

  // Re-run days, recording (features, action, reward, next max features)
  // transitions by replaying the recorded day through the policy's own
  // decision structure: we reconstruct decisions from the readings. This
  // is one long serial chain (each day depends on the learner's state), so
  // it stays off the sweep pool; the harness still times and records it.
  const FeatureBasis basis(config.decisions_per_day(),
                           config.battery_capacity);
  std::vector<LstdSolver> solvers;
  for (std::size_t a = 0; a < config.num_actions; ++a) {
    solvers.emplace_back(FeatureBasis::kDim, 1.0);
  }

  const int kDays = ctx.days(40, 5);
  for (int d = 0; d < kDays; ++d) {
    const DayResult& day = sim.run_day(policy);
    const std::size_t n_d = config.decision_interval;
    for (std::size_t k = 0; k < config.decisions_per_day(); ++k) {
      const double level = day.battery_levels[k * n_d];
      const double magnitude = day.readings.at(k * n_d);
      // Recover the action index from the pulse magnitude.
      const auto action = static_cast<std::size_t>(
          magnitude / config.usage_cap *
              static_cast<double>(config.num_actions - 1) +
          0.5);
      double reward = 0.0;
      for (std::size_t i = 0; i < n_d; ++i) {
        const std::size_t n = k * n_d + i;
        reward += prices.rate(n) * (day.usage.at(n) - day.readings.at(n));
      }
      const auto phi = basis.at(k, level);
      std::vector<double> phi_next(FeatureBasis::kDim, 0.0);
      if (k + 1 < config.decisions_per_day()) {
        const double next_level = day.battery_levels[(k + 1) * n_d];
        const std::size_t greedy = policy.q().argmax(
            basis.at(k + 1, next_level),
            policy.allowed_actions(next_level));
        (void)greedy;  // LSTD-Q under the current policy's greedy successor
        const auto next = basis.at(k + 1, next_level);
        phi_next.assign(next.begin(), next.end());
      }
      solvers[action].add_sample({phi.begin(), phi.end()}, phi_next, reward);
    }
  }
  ctx.count_cells(1);
  ctx.count_days(static_cast<std::size_t>(kWarmupDays + kDays));

  TablePrinter table({"action", "samples", "min pivot", "solvable",
                      "solvable w/ ridge"});
  std::size_t singular = 0;
  for (std::size_t a = 0; a < solvers.size(); ++a) {
    const SolveResult plain = solvers[a].solve();
    const SolveResult ridged = solvers[a].solve(/*ridge=*/1e-3);
    if (!plain.solution.has_value()) ++singular;
    table.add_row({std::to_string(a), std::to_string(solvers[a].samples()),
                   TablePrinter::num(plain.min_pivot, 6),
                   plain.solution.has_value() ? "yes" : "NO",
                   ridged.solution.has_value() ? "yes" : "NO"});
  }
  table.print(std::cout);
  ctx.metric("singular_systems", static_cast<double>(singular));
  std::printf("\n%zu of %zu per-action systems are near-singular without "
              "regularization\n(collected from %d days of real operation); "
              "the paper drew the same conclusion\nand used the SGD update "
              "of Eq. (18) instead.\n", singular, solvers.size(), kDays);
}

}  // namespace rlblh::bench
