// Micro-benchmarks of the evaluation machinery: privacy metrics, the NALM
// attack, and the household trace generator. These bound how long the
// figure benches spend measuring (as opposed to simulating).
#include <benchmark/benchmark.h>

#include "bench_main.h"
#include "meter/household.h"
#include "meter/household_registry.h"
#include "privacy/correlation.h"
#include "privacy/mutual_information.h"
#include "privacy/nalm.h"

namespace {

using namespace rlblh;

DayTrace sample_day(unsigned seed) {
  HouseholdModel household(make_household_config("default", {}), seed);
  return household.generate_day();
}

void BM_HouseholdGenerateDay(benchmark::State& state) {
  HouseholdModel household(make_household_config("default", {}), 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(household.generate_day().total());
  }
}
BENCHMARK(BM_HouseholdGenerateDay);

void BM_PearsonDay(benchmark::State& state) {
  const DayTrace x = sample_day(1);
  const DayTrace y = sample_day(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pearson_correlation(x, y));
  }
}
BENCHMARK(BM_PearsonDay);

void BM_MiObserveDay(benchmark::State& state) {
  PairwiseMiEstimator mi(kIntervalsPerDay, 8, kDefaultUsageCap,
                         kDefaultUsageCap);
  const DayTrace x = sample_day(3);
  const DayTrace y = sample_day(4);
  for (auto _ : state) {
    mi.observe_day(x, y);
  }
  benchmark::DoNotOptimize(mi.days());
}
BENCHMARK(BM_MiObserveDay);

void BM_MiQuery(benchmark::State& state) {
  PairwiseMiEstimator mi(kIntervalsPerDay, 8, kDefaultUsageCap,
                         kDefaultUsageCap);
  HouseholdModel household(make_household_config("default", {}), 5);
  for (int d = 0; d < 50; ++d) {
    const DayTrace x = household.generate_day();
    mi.observe_day(x, x);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(mi.normalized_mi());
  }
}
BENCHMARK(BM_MiQuery);

void BM_NalmDetectDay(benchmark::State& state) {
  const DayTrace day = sample_day(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nalm_detect(day).size());
  }
}
BENCHMARK(BM_NalmDetectDay);

}  // namespace

namespace rlblh::bench {

const char* const kBenchName = "micro_privacy";

// The harness supplies main(); google-benchmark gets the passthrough args
// and the harness records total wall time into BENCH_micro_privacy.json.
void bench_body(BenchContext& ctx) {
  int argc = ctx.passthrough_argc();
  benchmark::Initialize(&argc, ctx.passthrough_argv());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
}

}  // namespace rlblh::bench
