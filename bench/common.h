// Shared plumbing for the figure-reproduction benches.
//
// Each bench binary reproduces one table or figure from the paper's
// evaluation section: it trains the policies involved, measures the same
// statistic the paper plots, and prints the series next to the paper's
// reported values so the shape comparison is immediate.
#pragma once

#include <cstdio>

#include "core/rlblh_policy.h"
#include "privacy/correlation.h"
#include "privacy/metrics.h"
#include "privacy/mutual_information.h"
#include "sim/experiment.h"
#include "sim/scenario.h"

namespace rlblh::bench {

/// Metrics of one evaluation window.
struct Metrics {
  double sr = 0.0;
  double cc = 0.0;
  double mi = 0.0;
  double daily_savings_cents = 0.0;
};

/// Evaluates a policy over `days` with learning and exploration untouched
/// (matching the paper's measure-while-running protocol).
inline EvaluationResult measure_full(Simulator& sim, BlhPolicy& policy,
                                     int days, std::size_t mi_levels = 8) {
  EvaluationConfig config;
  config.train_days = 0;
  config.eval_days = static_cast<std::size_t>(days);
  config.mi_levels = mi_levels;
  return evaluate_policy(sim, policy, config);
}

/// Same, projected to the fields the figure tables print.
inline Metrics measure(Simulator& sim, BlhPolicy& policy, int days,
                       std::size_t mi_levels = 8) {
  const EvaluationResult r = measure_full(sim, policy, days, mi_levels);
  return {r.saving_ratio, r.mean_cc, r.normalized_mi,
          r.mean_daily_savings_cents};
}

/// Greedy (exploration- and learning-frozen) saving ratio; used where the
/// paper reports the quality of the *learned* policy. Restores the flags
/// the caller had set rather than force-enabling them.
inline double greedy_sr(Simulator& sim, RlBlhPolicy& policy, int days) {
  const bool learning_before = policy.learning_enabled();
  const bool exploration_before = policy.exploration_enabled();
  policy.set_learning_enabled(false);
  policy.set_exploration_enabled(false);
  SavingRatioAccumulator sr;
  sim.run_days(policy, static_cast<std::size_t>(days),
               [&](std::size_t, const DayResult& day) {
                 sr.observe_day(day.usage, day.readings, sim.prices());
               });
  policy.set_learning_enabled(learning_before);
  policy.set_exploration_enabled(exploration_before);
  return sr.saving_ratio();
}

/// The paper's experiment-wide defaults (Section VII-A) as a scenario spec:
/// the named policy with n_D, b_M and the two seed streams set, household
/// and pricing at their registry defaults (default synthetic household,
/// SRP two-zone plan). Benches tune variants via spec.policy_params.
inline ScenarioSpec paper_spec(const char* policy, std::size_t nd,
                               double battery_capacity, std::uint64_t seed,
                               std::uint64_t household_seed) {
  ScenarioSpec spec;
  spec.policy = policy;
  spec.nd = nd;
  spec.battery_kwh = battery_capacity;
  spec.seed = seed;
  spec.hseed = household_seed;
  return spec;
}

inline void print_header(const char* what) {
  std::printf("================================================================\n");
  std::printf("%s\n", what);
  std::printf("================================================================\n");
}

}  // namespace rlblh::bench
