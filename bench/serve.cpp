// Serving-path benchmark: in-process rlblh_serve daemons on unix sockets,
// driven by the same clients CI's serve-smoke job runs out of process.
// Three legs:
//
//   1. Metering throughput — the load generator drives a fleet against the
//      default (event-loop) daemon: end-to-end household-days/sec through
//      the frame protocol, engine stepping, and per-day checkpoint writes,
//      plus per-interval step latency.
//   2. Batch vs stream close — a pipelined fleet of >= 8 same-blueprint
//      co-resident households (one shard, whole-day frames written before
//      acks are read) measured twice: batch_width 32 (day closes stepped
//      through BatchEngine lanes) vs batch_width 1 (every close streams).
//      The ratio is the server-side batching payoff bench_compare.py gates.
//   3. Connection sweep — how many concurrently-open connections each
//      threading mode sustains with a bounded ping p99: thread-per-conn up
//      to its admission cap, then the event loop at a multiple of that.
//
// Headline metrics:
//   serve_households_per_core           leg 1 household-days/sec per thread
//   serve_intervals_per_sec             leg 1 intervals ingested per second
//   step_latency_p50_us / _p99_us       leg 1 frame RTT / intervals-per-frame
//   serve_households_per_core_batch     leg 2, batch_width 32 (lanes engaged)
//   serve_households_per_core_stream    leg 2, batch_width 1 (stream closes)
//   serve_batch_speedup                 leg 2 ratio (batch / stream)
//   serve_conns_sustained_threadperconn leg 3 conns admitted + answering
//   serve_conns_sustained_eventloop     leg 3, event-loop daemon
//   serve_conn_p99_ms_threadperconn     leg 3 ping p99 across open conns
//   serve_conn_p99_ms_eventloop         leg 3, event-loop daemon
//
// Throughput/timing/speedup figures are machine measurements, exempt from
// the strict drift gate and covered by the wall budget; the two sustained
// connection counts are capacity measurements gated by compare_serve in
// bench_compare.py (event loop >= --serve-conn-ratio x thread-per-conn at
// p99 <= --serve-p99-bound-ms).
#include "bench_main.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "meter/trace.h"
#include "serve/client.h"
#include "serve/load_gen.h"
#include "serve/net.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "sim/scenario.h"
#include "util/error.h"

namespace rlblh::bench {

const char* const kBenchName = "serve";

namespace {

namespace fs = std::filesystem;
using namespace rlblh::serve;

/// Nearest-rank p-quantile of an unsorted sample; 0 when empty.
double quantile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const std::size_t rank = std::min(
      values.size() - 1,
      static_cast<std::size_t>(q * static_cast<double>(values.size())));
  return values[rank];
}

// --- leg 2: pipelined same-blueprint fleet ------------------------------

struct PipelinedResult {
  double wall_seconds = 0.0;
  std::size_t days = 0;
};

/// Drives `width` same-blueprint households for `days` days over ONE
/// connection, writing every household's whole-day frame before reading
/// that day's acks — the traffic shape that lands co-resident day closes
/// in a shared shard drain, where the event-loop daemon batch-steps them.
/// Every frame is encoded before the clock starts, so the timed window is
/// the daemon's ingest + close path, not client-side trace generation.
PipelinedResult drive_pipelined_fleet(const std::string& endpoint,
                                      std::size_t width, std::size_t days,
                                      std::uint64_t seed_base) {
  std::vector<std::uint8_t> hello_blob;
  std::vector<std::vector<std::uint8_t>> day_blobs(days);
  {
    std::vector<std::unique_ptr<TraceSource>> sources;
    for (std::size_t h = 0; h < width; ++h) {
      // Steady-state serving workload: the REUSE/SYN replay bursts only
      // exist for a household's first weeks and swamp the close cost with
      // per-lane Q replays; a metering daemon's long-run cost is the real
      // day itself, which is what the batch lanes accelerate.
      const std::string spec =
          "policy=rlblh;policy.reuse=0;policy.syn=0;seed=" +
          std::to_string(seed_base + h);
      sources.push_back(make_scenario_source(ScenarioSpec::parse(spec)));
      encode_hello(hello_blob, HelloMsg{h, spec});
    }
    for (std::size_t d = 0; d < days; ++d) {
      for (std::size_t h = 0; h < width; ++h) {
        const DayTrace trace = sources[h]->next_day();
        encode_readings(day_blobs[d],
                        ReadingsMsg{h, static_cast<std::uint32_t>(d), 0,
                                    trace.values()});
      }
    }
  }

  const int fd = connect_endpoint(endpoint);
  FrameReader reader;
  std::vector<std::uint8_t> payload;
  std::uint8_t buffer[65536];
  const auto read_acks = [&](std::size_t expected) {
    std::size_t got_acks = 0;
    while (got_acks < expected) {
      while (got_acks < expected && reader.take(payload)) {
        ++got_acks;
        payload.clear();
      }
      if (got_acks >= expected) break;
      const std::size_t got = recv_some(fd, buffer, sizeof(buffer));
      if (got == 0) {
        throw DataError("serve bench: daemon closed mid-fleet");
      }
      reader.append(buffer, got);
    }
  };

  const auto start = std::chrono::steady_clock::now();
  send_all(fd, hello_blob.data(), hello_blob.size());
  read_acks(width);
  for (std::size_t d = 0; d < days; ++d) {
    send_all(fd, day_blobs[d].data(), day_blobs[d].size());
    read_acks(width);
  }
  PipelinedResult result;
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  result.days = width * days;
  close_quietly(fd);
  return result;
}

// --- leg 3: connection sweep --------------------------------------------

struct SweepResult {
  std::size_t sustained = 0;  ///< conns admitted AND answering a ping
  double p99_ms = 0.0;        ///< ping p99 with all conns held open
};

/// Opens up to `target` connections against `endpoint`, each completing a
/// Hello, then pings every open connection (Stats round-trip) while all of
/// them are held open. A connection past the daemon's admission cap is
/// closed without a reply, which surfaces as a transport error and ends
/// the ramp — so `sustained` measures the daemon, not the target.
SweepResult sweep_connections(const std::string& endpoint,
                              std::size_t target) {
  constexpr std::uint64_t kHousehold = 1;
  const std::string spec = "policy=rlblh;seed=1";
  std::vector<std::unique_ptr<ServeClient>> conns;
  conns.reserve(target);
  for (std::size_t i = 0; i < target; ++i) {
    auto client = std::make_unique<ServeClient>(
        endpoint, /*backoff_seed=*/0x5eedu + i);
    try {
      client->connect(/*max_attempts=*/1);
      client->hello(kHousehold, spec);
    } catch (const DataError&) {
      break;  // admission cap reached (or the daemon is saturated)
    }
    conns.push_back(std::move(client));
  }

  SweepResult result;
  std::vector<double> rtt_ms;
  rtt_ms.reserve(conns.size());
  for (auto& client : conns) {
    try {
      client->stats(kHousehold);
    } catch (const DataError&) {
      continue;  // admitted but unable to answer: not sustained
    }
    rtt_ms.push_back(
        std::chrono::duration<double, std::milli>(client->last_rtt())
            .count());
  }
  result.sustained = rtt_ms.size();
  result.p99_ms = quantile(std::move(rtt_ms), 0.99);
  return result;
}

ServeConfig daemon_config(const fs::path& scratch, const std::string& tag) {
  ServeConfig config;
  config.listen = "unix:" + (scratch / (tag + ".sock")).string();
  config.checkpoint_dir = (scratch / (tag + "_ckpt")).string();
  return config;
}

}  // namespace

void bench_body(BenchContext& ctx) {
  std::printf("Serving path: in-process daemons + clients over unix "
              "sockets\n\n");
  raise_fd_limit();

  const fs::path scratch = fs::absolute("serve_bench_scratch");
  fs::remove_all(scratch);
  fs::create_directories(scratch);

  // --- leg 1: load_gen metering throughput (event-loop daemon) ----------
  {
    ServeConfig server_config = daemon_config(scratch, "throughput");
    ServeServer server(server_config);
    server.start();

    LoadGenConfig load;
    load.endpoint = server.endpoint();
    load.households = static_cast<std::size_t>(ctx.days(16, 6));
    load.days = static_cast<std::size_t>(ctx.days(4, 2));
    load.seed_base = 1;
    load.threads = std::max<std::size_t>(ctx.threads(), 1);
    const LoadGenResult result = run_load(load);
    server.stop();

    ctx.count_cells(result.households);
    ctx.count_days(result.days_completed);

    const double wall = result.wall_seconds > 0.0 ? result.wall_seconds : 1e-9;
    const double intervals_per_sec =
        static_cast<double>(result.intervals_sent) / wall;
    const double household_days_per_sec =
        static_cast<double>(result.days_completed) / wall;
    const double per_core =
        household_days_per_sec / static_cast<double>(load.threads);
    // Frame RTT divided by the frame's interval count: the per-reading cost
    // of the full path (protocol, socket, engine step, ack).
    const double batch = static_cast<double>(load.batch_intervals);
    const double p50_us = result.rtt_quantile(0.50) / batch;
    const double p99_us = result.rtt_quantile(0.99) / batch;

    std::printf("[throughput] %zu households x %zu days, %zu client "
                "threads\n", result.households, load.days, load.threads);
    std::printf("[throughput] intervals/sec %.0f, household-days/s/core "
                "%.1f, step p50 %.3f us, p99 %.3f us\n\n",
                intervals_per_sec, per_core, p50_us, p99_us);

    ctx.metric("serve_households_per_core", per_core);
    ctx.metric("serve_intervals_per_sec", intervals_per_sec);
    ctx.metric("step_latency_p50_us", p50_us);
    ctx.metric("step_latency_p99_us", p99_us);
  }

  // --- leg 2: batch vs stream day closes (pipelined fleet, one shard) ---
  {
    const std::size_t width = static_cast<std::size_t>(ctx.days(32, 32));
    const std::size_t days = static_cast<std::size_t>(ctx.days(24, 4));

    // Stream reference: batch_width 1 disables lane staging, every close
    // runs the per-interval stream finalizer. The checkpoint period sits
    // past the horizon in both legs so the measured difference is the
    // close path itself, not the (identical) per-day checkpoint writes.
    ServeConfig stream_config = daemon_config(scratch, "stream");
    stream_config.shards = 1;
    stream_config.batch_width = 1;
    stream_config.checkpoint_period_days = days + 1;
    ServeServer stream_server(stream_config);
    stream_server.start();
    const PipelinedResult stream = drive_pipelined_fleet(
        stream_server.endpoint(), width, days, /*seed_base=*/100);
    stream_server.stop();
    ctx.count_days(stream.days);

    // Batch candidate: same traffic, batch_width 32. Batch engagement
    // needs >= 2 closes inside one queue drain; the pipelined whole-day
    // writes make that overwhelmingly likely, but drain timing is
    // scheduler-dependent, so retry rather than record a stream-shaped
    // number under a batch label.
    PipelinedResult batch;
    std::size_t batch_days_stepped = 0;
    for (int attempt = 0; attempt < 5 && batch_days_stepped == 0; ++attempt) {
      ServeConfig batch_config = daemon_config(
          scratch, "batch_" + std::to_string(attempt));
      batch_config.shards = 1;
      batch_config.batch_width = 32;
      batch_config.checkpoint_period_days = days + 1;
      ServeServer batch_server(batch_config);
      batch_server.start();
      batch = drive_pipelined_fleet(batch_server.endpoint(), width, days,
                                    /*seed_base=*/100);
      batch_server.stop();
      batch_days_stepped = batch_server.batch_days_completed();
      ctx.count_days(batch.days);
    }
    if (batch_days_stepped == 0) {
      throw DataError(
          "serve bench: batch stepping never engaged across 5 pipelined "
          "attempts — the batch leg would mislabel stream numbers");
    }

    const double stream_rate =
        static_cast<double>(stream.days) /
        (stream.wall_seconds > 0.0 ? stream.wall_seconds : 1e-9);
    const double batch_rate =
        static_cast<double>(batch.days) /
        (batch.wall_seconds > 0.0 ? batch.wall_seconds : 1e-9);
    const double speedup = stream_rate > 0.0 ? batch_rate / stream_rate : 0.0;

    std::printf("[batch] %zu co-resident households x %zu days, one shard, "
                "%zu closes lane-stepped\n", width, days, batch_days_stepped);
    std::printf("[batch] household-days/s: stream %.1f, batch %.1f "
                "(%.2fx)\n\n", stream_rate, batch_rate, speedup);

    // One pipelined connection = one client core for both legs.
    ctx.metric("serve_households_per_core_batch", batch_rate);
    ctx.metric("serve_households_per_core_stream", stream_rate);
    ctx.metric("serve_batch_speedup", speedup);
  }

  // --- leg 3: sustained connections per threading mode ------------------
  {
    // Thread-per-conn first, capped explicitly so quick runs do not spawn
    // hundreds of blocking threads on a CI box. Its sustained count then
    // sizes the event-loop target: 12x leaves headroom over the 10x gate.
    const std::size_t tpc_cap = static_cast<std::size_t>(ctx.days(256, 32));

    ServeConfig tpc_config = daemon_config(scratch, "tpc_sweep");
    tpc_config.threading = ThreadingMode::kThreadPerConn;
    tpc_config.max_connections = tpc_cap;
    ServeServer tpc_server(tpc_config);
    tpc_server.start();
    const SweepResult tpc = sweep_connections(tpc_server.endpoint(),
                                              tpc_cap + 16);
    tpc_server.stop();

    const std::size_t el_target = std::max<std::size_t>(tpc.sustained, 1) * 12;
    ServeConfig el_config = daemon_config(scratch, "el_sweep");
    el_config.threading = ThreadingMode::kEventLoop;
    ServeServer el_server(el_config);
    el_server.start();
    const SweepResult el = sweep_connections(el_server.endpoint(), el_target);
    el_server.stop();

    std::printf("[conns] thread-per-conn: %zu sustained (cap %zu), ping "
                "p99 %.3f ms\n", tpc.sustained, tpc_cap, tpc.p99_ms);
    std::printf("[conns] event-loop:      %zu sustained (target %zu), ping "
                "p99 %.3f ms\n\n", el.sustained, el_target, el.p99_ms);

    ctx.metric("serve_conns_sustained_threadperconn",
               static_cast<double>(tpc.sustained));
    ctx.metric("serve_conns_sustained_eventloop",
               static_cast<double>(el.sustained));
    ctx.metric("serve_conn_p99_ms_threadperconn", tpc.p99_ms);
    ctx.metric("serve_conn_p99_ms_eventloop", el.p99_ms);
  }

  fs::remove_all(scratch);
}

}  // namespace rlblh::bench
