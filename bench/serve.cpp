// Serving-path benchmark: an in-process rlblh_serve daemon on a unix
// socket, driven by the load generator — the same client CI's serve-smoke
// job runs out of process. Measures end-to-end metering throughput
// (households x days through the frame protocol, StreamEngine, and the
// per-day checkpoint write) and per-interval step latency.
//
// Headline metrics:
//   serve_households_per_core   household-days/sec per client thread
//   serve_intervals_per_sec     usage intervals ingested per second
//   step_latency_p50_us         per-interval latency, frame RTT / batch
//   step_latency_p99_us         tail of the same distribution
//
// All four are machine measurements (throughput/timing), exempt from the
// strict drift gate and covered by the wall budget in bench_compare.py.
#include "bench_main.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>

#include "serve/load_gen.h"
#include "serve/server.h"

namespace rlblh::bench {

const char* const kBenchName = "serve";

void bench_body(BenchContext& ctx) {
  std::printf("Serving path: in-process daemon + load_gen over a unix "
              "socket\n\n");

  const std::filesystem::path scratch =
      std::filesystem::absolute("serve_bench_scratch");
  std::filesystem::remove_all(scratch);
  std::filesystem::create_directories(scratch);

  serve::ServeConfig server_config;
  server_config.listen = "unix:" + (scratch / "sock").string();
  server_config.checkpoint_dir = (scratch / "ckpt").string();
  serve::ServeServer server(server_config);
  server.start();

  serve::LoadGenConfig load;
  load.endpoint = server.endpoint();
  load.households = static_cast<std::size_t>(ctx.days(16, 6));
  load.days = static_cast<std::size_t>(ctx.days(4, 2));
  load.seed_base = 1;
  load.threads = std::max<std::size_t>(ctx.threads(), 1);
  const serve::LoadGenResult result = serve::run_load(load);
  server.stop();

  ctx.count_cells(result.households);
  ctx.count_days(result.days_completed);

  const double wall = result.wall_seconds > 0.0 ? result.wall_seconds : 1e-9;
  const double intervals_per_sec =
      static_cast<double>(result.intervals_sent) / wall;
  const double household_days_per_sec =
      static_cast<double>(result.days_completed) / wall;
  const double per_core =
      household_days_per_sec / static_cast<double>(load.threads);
  // Frame RTT divided by the frame's interval count: the per-reading cost
  // of the full path (protocol, socket, StreamEngine step, ack).
  const double batch = static_cast<double>(load.batch_intervals);
  const double p50_us = result.rtt_quantile(0.50) / batch;
  const double p99_us = result.rtt_quantile(0.99) / batch;

  std::printf("households            %zu\n", result.households);
  std::printf("days per household    %zu\n", load.days);
  std::printf("client threads        %zu\n", load.threads);
  std::printf("intervals ingested    %zu\n", result.intervals_sent);
  std::printf("frames                %zu\n", result.frames_sent);
  std::printf("checkpoints written   %zu\n", server.checkpoints_written());
  std::printf("intervals/sec         %.0f\n", intervals_per_sec);
  std::printf("household-days/s/core %.1f\n", per_core);
  std::printf("step latency p50      %.3f us\n", p50_us);
  std::printf("step latency p99      %.3f us\n", p99_us);

  ctx.metric("serve_households_per_core", per_core);
  ctx.metric("serve_intervals_per_sec", intervals_per_sec);
  ctx.metric("step_latency_p50_us", p50_us);
  ctx.metric("step_latency_p99_us", p99_us);

  std::filesystem::remove_all(scratch);
}

}  // namespace rlblh::bench
