#include "bench_main.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>

namespace rlblh::bench {

BenchContext::BenchContext(SweepOptions sweep_options, bool quick,
                           std::vector<char*> passthrough)
    : sweep_(sweep_options), quick_(quick), args_(std::move(passthrough)) {}

void BenchContext::metric(const std::string& key, double value) {
  metrics_.emplace_back(key, value);
}

namespace {

void print_usage(const char* program) {
  std::printf(
      "usage: %s [--threads N] [--quick] [--out PATH] [--no-json]\n"
      "  --threads N  sweep worker threads (default: RLBLH_THREADS env or "
      "hardware)\n"
      "  --quick      reduced day counts for CI smoke runs\n"
      "  --out PATH   JSON record path (default: BENCH_<name>.json)\n"
      "  --no-json    do not write the JSON record\n"
      "unrecognized arguments are passed through to the bench body.\n",
      program);
}

/// Writes a double as JSON; non-finite values become null so the record
/// always parses.
void write_number(std::FILE* out, double value) {
  if (std::isfinite(value)) {
    std::fprintf(out, "%.17g", value);
  } else {
    std::fputs("null", out);
  }
}

/// Keys are harness- or bench-chosen identifiers; escape the JSON special
/// characters anyway so a stray quote cannot corrupt the record.
void write_string(std::FILE* out, const std::string& s) {
  std::fputc('"', out);
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      std::fputc('\\', out);
      std::fputc(c, out);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      std::fprintf(out, "\\u%04x", c);
    } else {
      std::fputc(c, out);
    }
  }
  std::fputc('"', out);
}

bool write_json(const std::string& path, const BenchContext& context,
                bool quick, double wall_seconds) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
    return false;
  }
  const auto cells = static_cast<double>(context.total_cells());
  const auto days = static_cast<double>(context.total_days());
  std::fputs("{\n  \"bench\": ", out);
  write_string(out, kBenchName);
  std::fprintf(out, ",\n  \"threads\": %zu", context.threads());
  std::fprintf(out, ",\n  \"quick\": %s", quick ? "true" : "false");
  std::fputs(",\n  \"wall_seconds\": ", out);
  write_number(out, wall_seconds);
  std::fprintf(out, ",\n  \"cells\": %zu", context.total_cells());
  std::fputs(",\n  \"cells_per_sec\": ", out);
  write_number(out, wall_seconds > 0.0 ? cells / wall_seconds : 0.0);
  std::fprintf(out, ",\n  \"simulated_days\": %zu", context.total_days());
  std::fputs(",\n  \"days_per_sec\": ", out);
  write_number(out, wall_seconds > 0.0 ? days / wall_seconds : 0.0);
  std::fputs(",\n  \"metrics\": {", out);
  bool first = true;
  for (const auto& [key, value] : context.metrics()) {
    std::fputs(first ? "\n    " : ",\n    ", out);
    first = false;
    write_string(out, key);
    std::fputs(": ", out);
    write_number(out, value);
  }
  std::fputs(first ? "}\n}\n" : "\n  }\n}\n", out);
  std::fclose(out);
  return true;
}

}  // namespace

}  // namespace rlblh::bench

int main(int argc, char** argv) {
  using namespace rlblh::bench;

  rlblh::SweepOptions sweep_options;
  bool quick = false;
  bool json = true;
  std::string out_path = std::string("BENCH_") + kBenchName + ".json";
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--threads") == 0 && i + 1 < argc) {
      const long parsed = std::strtol(argv[++i], nullptr, 10);
      if (parsed < 1) {
        std::fprintf(stderr, "bench: --threads needs a positive integer\n");
        return 2;
      }
      sweep_options.threads = static_cast<std::size_t>(parsed);
    } else if (std::strcmp(arg, "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(arg, "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(arg, "--no-json") == 0) {
      json = false;
    } else if (std::strcmp(arg, "--help") == 0 ||
               std::strcmp(arg, "-h") == 0) {
      print_usage(argv[0]);
      return 0;
    } else {
      passthrough.push_back(argv[i]);
    }
  }

  BenchContext context(sweep_options, quick, std::move(passthrough));
  const auto start = std::chrono::steady_clock::now();
  try {
    bench_body(context);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "bench %s failed: %s\n", kBenchName, error.what());
    return 1;
  }
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  const std::size_t cells = context.total_cells();
  const std::size_t days = context.total_days();
  std::printf(
      "\n[bench %s] %zu cells, %zu simulated days in %.2f s wall "
      "(%.2f cells/s, %.0f days/s) with %zu thread%s%s\n",
      kBenchName, cells, days, wall_seconds,
      wall_seconds > 0.0 ? static_cast<double>(cells) / wall_seconds : 0.0,
      wall_seconds > 0.0 ? static_cast<double>(days) / wall_seconds : 0.0,
      context.threads(), context.threads() == 1 ? "" : "s",
      quick ? " (quick mode)" : "");

  if (json) {
    if (!write_json(out_path, context, quick, wall_seconds)) return 1;
    std::printf("[bench %s] wrote %s\n", kBenchName, out_path.c_str());
  }
  return 0;
}
