#include "bench_main.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>

#include "obs/json_writer.h"
#include "obs/manifest.h"
#include "obs/metrics.h"
#include "obs/metrics_dump.h"
#include "obs/obs.h"
#include "obs/trace.h"

namespace rlblh::bench {

BenchContext::BenchContext(SweepOptions sweep_options, bool quick,
                           std::vector<char*> passthrough)
    : sweep_(sweep_options), quick_(quick), args_(std::move(passthrough)) {}

void BenchContext::metric(const std::string& key, double value) {
  metrics_.emplace_back(key, value);
}

namespace {

void print_usage(const char* program) {
  std::printf(
      "usage: %s [--threads N] [--quick] [--out PATH] [--no-json]\n"
      "          [--obs] [--obs-out PATH]\n"
      "  --threads N   sweep worker threads (default: RLBLH_THREADS env or "
      "hardware)\n"
      "  --quick       reduced day counts for CI smoke runs\n"
      "  --out PATH    JSON record path (default: BENCH_<name>.json)\n"
      "  --no-json     do not write the JSON record\n"
      "  --obs         record metrics + spans, write RUN_<name>.json and\n"
      "                print the metrics_dump tables (also enabled by a\n"
      "                non-empty RLBLH_OBS_OUT environment variable)\n"
      "  --obs-out P   manifest path (implies --obs; default: RLBLH_OBS_OUT\n"
      "                env or RUN_<name>.json)\n"
      "unrecognized arguments are passed through to the bench body.\n",
      program);
}

/// The "obs" sub-object embedded into BENCH_<name>.json when recording:
/// counters and gauges verbatim, histograms as summary statistics. Timing
/// values vary run to run, which is why this lives beside — never inside —
/// the deterministic "metrics" object the regression gate compares.
void write_obs_section(obs::JsonWriter& json) {
  json.key("obs");
  json.begin_object();

  json.key("counters");
  json.begin_object();
  for (const auto& [name, value] : obs::registry().counter_values()) {
    json.member(name, static_cast<long long>(value));
  }
  json.end_object();

  json.key("gauges");
  json.begin_object();
  for (const auto& [name, value] : obs::registry().gauge_values()) {
    json.member(name, value);
  }
  json.end_object();

  json.key("histograms");
  json.begin_object();
  for (const auto& [name, snap] : obs::registry().histogram_values()) {
    json.key(name);
    json.begin_object();
    json.member("count", static_cast<unsigned long long>(snap.count));
    json.member("mean", snap.mean());
    json.member("p50", snap.quantile(0.50));
    json.member("p90", snap.quantile(0.90));
    json.member("p99", snap.quantile(0.99));
    json.member("max", snap.max);
    json.end_object();
  }
  json.end_object();

  json.end_object();
}

bool write_json(const std::string& path, const BenchContext& context,
                bool quick, double wall_seconds, bool obs_recording) {
  std::ofstream file(path);
  if (!file) {
    std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
    return false;
  }
  const auto cells = static_cast<double>(context.total_cells());
  const auto days = static_cast<double>(context.total_days());

  obs::JsonWriter json(file);
  json.begin_object();
  json.member("bench", kBenchName);
  json.member("threads", context.threads());
  // Where the numbers came from: lets the comparer spot baselines recorded
  // on machines that cannot show parallel scaling (e.g. single-core CI).
  json.member("hardware_concurrency",
              static_cast<std::size_t>(std::thread::hardware_concurrency()));
  json.member("quick", quick);
  json.member("wall_seconds", wall_seconds);
  json.member("cells", context.total_cells());
  json.member("cells_per_sec", wall_seconds > 0.0 ? cells / wall_seconds : 0.0);
  json.member("simulated_days", context.total_days());
  json.member("days_per_sec", wall_seconds > 0.0 ? days / wall_seconds : 0.0);
  json.key("metrics");
  json.begin_object();
  for (const auto& [key, value] : context.metrics()) {
    json.member(key, value);
  }
  json.end_object();
  if (obs_recording) {
    write_obs_section(json);
  }
  json.end_object();
  json.finish();
  return file.good();
}

}  // namespace

}  // namespace rlblh::bench

int main(int argc, char** argv) {
  using namespace rlblh::bench;

  rlblh::SweepOptions sweep_options;
  bool quick = false;
  bool json = true;
  bool obs_requested = false;
  std::string out_path = std::string("BENCH_") + kBenchName + ".json";
  std::string obs_out_path;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--threads") == 0 && i + 1 < argc) {
      const long parsed = std::strtol(argv[++i], nullptr, 10);
      if (parsed < 1) {
        std::fprintf(stderr, "bench: --threads needs a positive integer\n");
        return 2;
      }
      sweep_options.threads = static_cast<std::size_t>(parsed);
    } else if (std::strcmp(arg, "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(arg, "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(arg, "--no-json") == 0) {
      json = false;
    } else if (std::strcmp(arg, "--obs") == 0) {
      obs_requested = true;
    } else if (std::strcmp(arg, "--obs-out") == 0 && i + 1 < argc) {
      obs_requested = true;
      obs_out_path = argv[++i];
    } else if (std::strcmp(arg, "--help") == 0 ||
               std::strcmp(arg, "-h") == 0) {
      print_usage(argv[0]);
      return 0;
    } else {
      passthrough.push_back(argv[i]);
    }
  }

  if (const char* env = std::getenv("RLBLH_OBS_OUT")) {
    if (env[0] != '\0') obs_requested = true;
  }
  if (obs_requested) {
    if (!rlblh::obs::compiled_in()) {
      std::fprintf(stderr,
                   "bench %s: observability compiled out (RLBLH_OBS=OFF); "
                   "manifest will carry build info only\n",
                   kBenchName);
    }
    rlblh::obs::registry().reset();
    rlblh::obs::Tracer::instance().reset();
    rlblh::obs::set_enabled(true);
    if (obs_out_path.empty()) {
      obs_out_path = rlblh::obs::default_manifest_path(kBenchName);
    }
  }

  BenchContext context(sweep_options, quick, std::move(passthrough));
  const auto start = std::chrono::steady_clock::now();
  try {
    RLBLH_OBS_SPAN("bench.body");
    bench_body(context);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "bench %s failed: %s\n", kBenchName, error.what());
    return 1;
  }
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (obs_requested) {
    // Join the sweep workers so every worker-side metric write is visible
    // to the snapshots below (the join is the synchronization point).
    context.sweep().shutdown();
  }

  const std::size_t cells = context.total_cells();
  const std::size_t days = context.total_days();
  std::printf(
      "\n[bench %s] %zu cells, %zu simulated days in %.2f s wall "
      "(%.2f cells/s, %.0f days/s) with %zu thread%s%s\n",
      kBenchName, cells, days, wall_seconds,
      wall_seconds > 0.0 ? static_cast<double>(cells) / wall_seconds : 0.0,
      wall_seconds > 0.0 ? static_cast<double>(days) / wall_seconds : 0.0,
      context.threads(), context.threads() == 1 ? "" : "s",
      quick ? " (quick mode)" : "");

  if (json) {
    if (!write_json(out_path, context, quick, wall_seconds, obs_requested)) {
      return 1;
    }
    std::printf("[bench %s] wrote %s\n", kBenchName, out_path.c_str());
  }

  if (obs_requested) {
    rlblh::obs::RunInfo info;
    info.name = kBenchName;
    info.command.assign(argv, argv + argc);
    info.config = {
        {"threads", std::to_string(context.threads())},
        {"quick", quick ? "true" : "false"},
        {"wall_seconds", std::to_string(wall_seconds)},
    };
    if (!rlblh::obs::write_manifest_file(obs_out_path, info)) return 1;
    std::printf("[bench %s] wrote %s\n", kBenchName, obs_out_path.c_str());
    rlblh::obs::dump_all(std::cout);
  }
  return 0;
}
