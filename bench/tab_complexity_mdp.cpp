// Section VIII reproduction: the complexity comparison against the
// quantized-MDP scheme of reference [9].
//
// The paper argues: [9]'s decision table is O(L^2 N + L N^2) entries
// (~1.67e7 at L = 8, N = 1440), recomputed from scratch whenever the usage
// model changes, while RL-BLH learns only a_M * 6 = 48 weights online.
// Here we *measure* our DP baseline's table size and solve time across
// quantization granularities, next to RL-BLH's parameter count and
// per-day update cost, and print the paper's formula-based entries for [9].
#include <chrono>
#include <iostream>
#include <vector>

#include "baselines/mdp.h"
#include "bench_main.h"
#include "common.h"
#include "meter/household.h"
#include "meter/household_registry.h"
#include "pricing/pricing_registry.h"
#include "util/table.h"

namespace rlblh::bench {

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct DpCell {
  std::size_t levels = 0;
  std::size_t table_entries = 0;
  double solve_ms = 0.0;
  double expected_savings = 0.0;
};

}  // namespace

const char* const kBenchName = "tab_complexity_mdp";

void bench_body(BenchContext& ctx) {
  print_header("Section VIII: decision-table complexity, DP vs RL-BLH");

  const TouSchedule prices = make_pricing("srp", {});
  HouseholdModel household(make_household_config("default", {}), /*seed=*/17);

  // Shared training data for every DP variant: generated once up front,
  // read-only from the sweep cells.
  const int kTrainingDays = ctx.days(60, 10);
  std::vector<DayTrace> training;
  for (int d = 0; d < kTrainingDays; ++d) {
    training.push_back(household.generate_day());
  }
  ctx.count_days(static_cast<std::size_t>(kTrainingDays));

  std::vector<std::size_t> level_grid = {16, 32, 64, 128, 256, 512};
  if (ctx.quick()) level_grid = {16, 32, 64};

  std::printf("(a) our DP baseline at growing battery quantization "
              "(n_D = 15, b_M = 5)\n");
  // Note: per-cell solve times are measured inside concurrently running
  // cells, so under --threads > 1 they include scheduling noise; the table
  // *sizes* and savings are exact, and the solve-time ordering across
  // granularities is preserved on an unloaded machine.
  const std::vector<DpCell> dp_cells = ctx.sweep().run(
      level_grid.size(), [&](std::size_t cell) {
        ScenarioSpec spec;
        spec.policy = "mdp";
        spec.nd = 15;
        spec.battery_kwh = 5.0;
        spec.policy_params.set("levels", level_grid[cell]);
        spec.policy_params.set("usage_levels", 32);
        auto built = make_scenario_policy(spec);
        auto& policy = dynamic_cast<MdpBlhPolicy&>(*built);
        for (const auto& day : training) {
          policy.observe_training_day(day, prices);
        }
        const auto start = std::chrono::steady_clock::now();
        policy.solve();
        DpCell result;
        result.levels = level_grid[cell];
        result.table_entries = policy.table_entries();
        result.solve_ms = 1e3 * seconds_since(start);
        result.expected_savings = policy.expected_savings(2.5);
        return result;
      });
  ctx.count_cells(dp_cells.size());

  TablePrinter dp_table({"battery levels", "table entries", "solve time ms",
                         "expected savings c/day"});
  for (const DpCell& cell : dp_cells) {
    dp_table.add_row({std::to_string(cell.levels),
                      std::to_string(cell.table_entries),
                      TablePrinter::num(cell.solve_ms, 2),
                      TablePrinter::num(cell.expected_savings, 1)});
    ctx.metric("dp_solve_ms_L" + std::to_string(cell.levels), cell.solve_ms);
  }
  dp_table.print(std::cout);

  std::printf("\n(b) the paper's formula for [9]'s state space at L usage "
              "levels, N = 1440\n");
  TablePrinter paper_table({"L", "basic O(LN)", "advanced O(L^2 N + L N^2)"});
  for (const std::size_t levels : {4u, 8u, 16u}) {
    const auto l = static_cast<unsigned long long>(levels);
    paper_table.add_row(
        {std::to_string(levels), std::to_string(l * 1440ull),
         std::to_string(l * l * 1440ull + l * 1440ull * 1440ull)});
  }
  paper_table.print(std::cout);

  // RL-BLH's footprint: weights plus one day of updates, measured serially
  // (a timing microcosm; keep it off the pool so nothing runs beside it).
  ScenarioSpec rl_spec = paper_spec("rlblh", 15, 5.0, /*seed=*/7, /*hseed=*/18);
  rl_spec.policy_params.set("reuse", false);
  rl_spec.policy_params.set("syn", false);
  Scenario rl_scenario = build_scenario(rl_spec);
  auto& rl = *rl_scenario.policy_as<RlBlhPolicy>();
  Simulator& sim = rl_scenario.simulator;
  const int kWarmupDays = 3;
  sim.run_days(rl, kWarmupDays);
  const auto start = std::chrono::steady_clock::now();
  const int kDays = ctx.days(50, 5);
  sim.run_days(rl, static_cast<std::size_t>(kDays));
  const double us_per_day = 1e6 * seconds_since(start) / kDays;
  ctx.count_cells(1);
  ctx.count_days(static_cast<std::size_t>(kWarmupDays + kDays));
  ctx.metric("rl_us_per_day", us_per_day);

  std::printf("\n(c) RL-BLH: %zu learned parameters (a_M = %zu actions x 6 "
              "features);\n    one full day of decisions + Q updates costs "
              "%.0f us (%.2f us per interval).\n",
              rl.q().parameter_count(), rl.config().num_actions, us_per_day,
              us_per_day / 1440.0);
  std::printf("\npaper: ~1.67e7 table entries for [9]'s advanced version at "
              "L = 8 vs ~40 weights\nfor RL-BLH — our measured DP baseline "
              "shows the same orders-of-magnitude gap,\nand the per-day "
              "update cost fits a small embedded controller.\n");
}

}  // namespace rlblh::bench
