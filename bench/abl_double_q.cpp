// Extension bench: Double Q-learning (paper future work: "further reduce
// the convergence time of reinforcement learning").
//
// The max operator in the Q-learning target overestimates noisy values;
// Double Q-learning (van Hasselt) decorrelates action selection from
// evaluation with two weight tables. This bench compares plain Q vs
// double-Q on convergence speed and final savings under otherwise
// identical settings.
#include "common.h"
#include "util/table.h"

#include <iostream>

namespace {

using namespace rlblh;
using namespace rlblh::bench;

struct Outcome {
  double sr20 = 0.0, sr60 = 0.0, err60 = 0.0;
};

Outcome run(bool double_q, unsigned seed) {
  RlBlhConfig config = paper_config(15, 5.0, seed);
  config.double_q = double_q;
  RlBlhPolicy policy(config);
  Simulator sim = make_household_simulator(HouseholdConfig{},
                                           TouSchedule::srp_plan(), 5.0,
                                           1400 + seed);
  Outcome out;
  sim.run_days(policy, 20);
  out.sr20 = greedy_sr(sim, policy, 15);
  sim.run_days(policy, 40);
  out.sr60 = greedy_sr(sim, policy, 25);
  out.err60 = policy.day_stats().back().mean_abs_td_error;
  return out;
}

}  // namespace

int main() {
  using namespace rlblh::bench;

  print_header("Extension: plain Q-learning vs Double Q-learning "
               "(n_D = 15, b_M = 5)");

  TablePrinter table({"learner", "SR % @20d", "SR % @60d",
                      "TD error @60d"});
  for (const bool double_q : {false, true}) {
    Outcome mean;
    for (const unsigned seed : {7u, 8u, 9u}) {
      const Outcome o = run(double_q, seed);
      mean.sr20 += o.sr20 / 3.0;
      mean.sr60 += o.sr60 / 3.0;
      mean.err60 += o.err60 / 3.0;
    }
    table.add_row({double_q ? "double Q (extension)" : "plain Q (paper)",
                   TablePrinter::num(100.0 * mean.sr20, 1),
                   TablePrinter::num(100.0 * mean.sr60, 1),
                   TablePrinter::num(mean.err60, 3)});
  }
  table.print(std::cout);
  std::printf("\nmeasured result: plain Q converges faster and higher here — "
              "each double-Q table\nsees only half the updates, and the "
              "day-reward noise this problem feeds the max\noperator is "
              "apparently not the bottleneck. The extension is kept as a "
              "config knob\n(still embedded-class state) but the paper's "
              "plain Q-learning is the right default.\n");
  return 0;
}
