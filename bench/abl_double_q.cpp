// Extension bench: Double Q-learning (paper future work: "further reduce
// the convergence time of reinforcement learning").
//
// The max operator in the Q-learning target overestimates noisy values;
// Double Q-learning (van Hasselt) decorrelates action selection from
// evaluation with two weight tables. This bench compares plain Q vs
// double-Q on convergence speed and final savings under otherwise
// identical settings.
#include "bench_main.h"
#include "common.h"
#include "util/table.h"

#include <iostream>
#include <vector>

namespace rlblh::bench {

namespace {

struct Outcome {
  double sr20 = 0.0, sr60 = 0.0, err60 = 0.0;
};

Outcome run_learner(bool double_q, unsigned seed, int phase1, int eval1,
                    int phase2, int eval2) {
  ScenarioSpec spec = paper_spec("rlblh", 15, 5.0, seed, 1400 + seed);
  spec.policy_params.set("double_q", double_q);
  Scenario scenario = build_scenario(spec);
  auto& policy = *scenario.policy_as<RlBlhPolicy>();
  Simulator& sim = scenario.simulator;
  Outcome out;
  sim.run_days(policy, static_cast<std::size_t>(phase1));
  out.sr20 = greedy_sr(sim, policy, eval1);
  sim.run_days(policy, static_cast<std::size_t>(phase2));
  out.sr60 = greedy_sr(sim, policy, eval2);
  out.err60 = policy.day_stats().back().mean_abs_td_error;
  return out;
}

}  // namespace

const char* const kBenchName = "abl_double_q";

void bench_body(BenchContext& ctx) {
  print_header("Extension: plain Q-learning vs Double Q-learning "
               "(n_D = 15, b_M = 5)");

  const int kPhase1 = ctx.days(20, 4);
  const int kEval1 = ctx.days(15, 3);
  const int kPhase2 = ctx.days(40, 4);
  const int kEval2 = ctx.days(25, 3);
  const std::vector<bool> learners = {false, true};
  const std::vector<unsigned> seeds = {7, 8, 9};

  const std::vector<Outcome> cells = ctx.sweep().run_grid(
      learners, seeds, [&](const bool& double_q, unsigned seed) {
        return run_learner(double_q, seed, kPhase1, kEval1, kPhase2, kEval2);
      });
  ctx.count_cells(cells.size());
  ctx.count_days(cells.size() * static_cast<std::size_t>(kPhase1 + kEval1 +
                                                         kPhase2 + kEval2));

  TablePrinter table({"learner", "SR % @20d", "SR % @60d",
                      "TD error @60d"});
  for (std::size_t l = 0; l < learners.size(); ++l) {
    Outcome mean;
    for (std::size_t s = 0; s < seeds.size(); ++s) {
      const Outcome& o = cells[l * seeds.size() + s];
      mean.sr20 += o.sr20 / static_cast<double>(seeds.size());
      mean.sr60 += o.sr60 / static_cast<double>(seeds.size());
      mean.err60 += o.err60 / static_cast<double>(seeds.size());
    }
    table.add_row({learners[l] ? "double Q (extension)" : "plain Q (paper)",
                   TablePrinter::num(100.0 * mean.sr20, 1),
                   TablePrinter::num(100.0 * mean.sr60, 1),
                   TablePrinter::num(mean.err60, 3)});
    ctx.metric(learners[l] ? "double_q_sr60" : "plain_q_sr60", mean.sr60);
  }
  table.print(std::cout);
  std::printf("\nmeasured result: plain Q converges faster and higher here — "
              "each double-Q table\nsees only half the updates, and the "
              "day-reward noise this problem feeds the max\noperator is "
              "apparently not the bottleneck. The extension is kept as a "
              "config knob\n(still embedded-class state) but the paper's "
              "plain Q-learning is the right default.\n");
}

}  // namespace rlblh::bench
