// Fleet-scaling benchmark: throughput of FleetSimulator as the worker
// count grows, over a heterogeneous household mix.
//
// Times the same fleet at 1 worker and at 8 workers and reports simulated
// days per second for each (timing metrics, exempt from the drift gate),
// plus the fleet's aggregate SR/CC/MI (deterministic, drift-gated — the
// same numbers whichever thread count produced them, per FleetSimulator's
// bitwise-determinism contract, which this bench also asserts).
#include "bench_main.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common.h"
#include "sim/fleet.h"
#include "util/table.h"

#include <iostream>

namespace rlblh::bench {

const char* const kBenchName = "fleet_scaling";

namespace {

/// A deterministic heterogeneous fleet: cycles through the registered
/// policy/household/pricing mix, `size` households total.
std::vector<ScenarioSpec> build_fleet(std::size_t size, std::size_t train_days,
                                      std::size_t eval_days) {
  const char* const mixes[] = {
      "policy=rlblh;household=default;pricing=srp;battery=5",
      "policy=lowpass;household=weekday_heavy;pricing=tou2;battery=3",
      "policy=stepping;household=night_owl;pricing=tou3;battery=5",
      "policy=rlblh;household=ev_owner;pricing=srp;battery=7",
      "policy=none;household=apartment;pricing=flat",
      "policy=random_pulse;household=vacationer;pricing=srp;battery=4",
      "policy=rlblh;household=weekday_heavy;pricing=rtp;battery=5;"
      "pricing.seed=5",
      "policy=mdp;household=default;pricing=srp;battery=3;"
      "policy.levels=16;policy.usage_levels=8",
  };
  const std::size_t n_mixes = sizeof(mixes) / sizeof(mixes[0]);
  std::vector<ScenarioSpec> fleet;
  fleet.reserve(size);
  for (std::size_t index = 0; index < size; ++index) {
    ScenarioSpec spec = ScenarioSpec::parse(mixes[index % n_mixes]);
    spec.train_days = train_days;
    spec.eval_days = eval_days;
    fleet.push_back(std::move(spec));
  }
  return fleet;
}

}  // namespace

void bench_body(BenchContext& ctx) {
  print_header("Fleet scaling: heterogeneous households over worker threads");

  const std::size_t kHouseholds = static_cast<std::size_t>(ctx.days(48, 8));
  const std::size_t kTrainDays = static_cast<std::size_t>(ctx.days(20, 2));
  const std::size_t kEvalDays = static_cast<std::size_t>(ctx.days(20, 2));
  const std::uint64_t kFleetSeed = 7;
  const std::vector<ScenarioSpec> specs =
      build_fleet(kHouseholds, kTrainDays, kEvalDays);
  const std::size_t days_per_run = kHouseholds * (kTrainDays + kEvalDays);

  TablePrinter table({"threads", "seconds", "days/sec", "SR mean %",
                      "SR p95 %", "CC mean", "MI mean"});
  FleetResult reference;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    FleetSimulator fleet(specs, FleetOptions{threads});
    const auto start = std::chrono::steady_clock::now();
    FleetResult result = fleet.run(kFleetSeed);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    const double days_per_sec =
        seconds > 0.0 ? static_cast<double>(days_per_run) / seconds : 0.0;
    ctx.count_cells(kHouseholds);
    ctx.count_days(days_per_run);
    table.add_row({std::to_string(threads), TablePrinter::num(seconds, 3),
                   TablePrinter::num(days_per_sec, 1),
                   TablePrinter::num(100.0 * result.saving_ratio.mean, 1),
                   TablePrinter::num(100.0 * result.saving_ratio.p95, 1),
                   TablePrinter::num(result.mean_cc.mean, 4),
                   TablePrinter::num(result.normalized_mi.mean, 4)});
    ctx.metric("days_per_sec_t" + std::to_string(threads), days_per_sec);
    if (threads == 1) {
      reference = std::move(result);
    } else if (result.saving_ratio.mean != reference.saving_ratio.mean ||
               result.mean_cc.mean != reference.mean_cc.mean ||
               result.normalized_mi.mean != reference.normalized_mi.mean) {
      std::fprintf(stderr,
                   "fleet determinism violated: %zu-thread aggregates "
                   "differ from the 1-thread run\n",
                   threads);
      std::exit(1);
    }
  }
  table.print(std::cout);

  // Aggregates are thread-count independent; gate them once.
  ctx.metric("sr_mean", reference.saving_ratio.mean);
  ctx.metric("sr_p95", reference.saving_ratio.p95);
  ctx.metric("cc_mean", reference.mean_cc.mean);
  ctx.metric("mi_mean", reference.normalized_mi.mean);

  std::printf("\n%zu households, %zu simulated days per run; identical "
              "aggregates at every thread count (bitwise determinism "
              "contract, asserted above).\n",
              kHouseholds, days_per_run);
}

}  // namespace rlblh::bench
