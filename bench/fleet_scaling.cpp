// Fleet-scaling benchmark: throughput of the chunked FleetSimulator as the
// fleet size and worker count grow, over a heterogeneous household mix.
//
// Sweeps fleet sizes (1k/10k in quick mode, plus 100k full) and times each
// at 1 worker and at 8 workers, reporting simulated days per second and
// days per second per core (timing metrics, exempt from the drift gate;
// the per-core figure is what bench_compare.py's scaling gate watches).
// The fleet aggregates SR/CC/MI are deterministic and drift-gated — the
// same numbers whichever thread count or chunk size produced them, per
// FleetSimulator's bitwise-determinism contract, which this bench also
// asserts at every size.
#include "bench_main.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common.h"
#include "sim/fleet.h"
#include "util/table.h"

#include <iostream>

namespace rlblh::bench {

const char* const kBenchName = "fleet_scaling";

namespace {

/// A deterministic heterogeneous fleet: cycles through the registered
/// policy/household/pricing mix, `size` households total.
std::vector<ScenarioSpec> build_fleet(std::size_t size, std::size_t train_days,
                                      std::size_t eval_days) {
  const char* const mixes[] = {
      "policy=rlblh;household=default;pricing=srp;battery=5",
      "policy=lowpass;household=weekday_heavy;pricing=tou2;battery=3",
      "policy=stepping;household=night_owl;pricing=tou3;battery=5",
      "policy=rlblh;household=ev_owner;pricing=srp;battery=7",
      "policy=none;household=apartment;pricing=flat",
      "policy=random_pulse;household=vacationer;pricing=srp;battery=4",
      "policy=rlblh;household=weekday_heavy;pricing=rtp;battery=5;"
      "pricing.seed=5",
      "policy=mdp;household=default;pricing=srp;battery=3;"
      "policy.levels=16;policy.usage_levels=8",
  };
  const std::size_t n_mixes = sizeof(mixes) / sizeof(mixes[0]);
  std::vector<ScenarioSpec> fleet;
  fleet.reserve(size);
  for (std::size_t index = 0; index < size; ++index) {
    ScenarioSpec spec = ScenarioSpec::parse(mixes[index % n_mixes]);
    spec.train_days = train_days;
    spec.eval_days = eval_days;
    fleet.push_back(std::move(spec));
  }
  return fleet;
}

}  // namespace

void bench_body(BenchContext& ctx) {
  print_header(
      "Fleet scaling: heterogeneous households over size x worker threads");

  const std::size_t kTrainDays = static_cast<std::size_t>(ctx.days(2, 1));
  const std::size_t kEvalDays = static_cast<std::size_t>(ctx.days(2, 1));
  const std::uint64_t kFleetSeed = 7;
  std::vector<std::size_t> sizes = {1000, 10000};
  if (!ctx.quick()) sizes.push_back(100000);

  TablePrinter table({"households", "threads", "seconds", "days/sec",
                      "days/sec/core", "SR mean %", "CC mean", "MI mean"});
  for (const std::size_t households : sizes) {
    const std::vector<ScenarioSpec> specs =
        build_fleet(households, kTrainDays, kEvalDays);
    const std::size_t days_per_run = households * (kTrainDays + kEvalDays);
    const std::string suffix = "_h" + std::to_string(households);

    FleetResult reference;
    for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
      FleetOptions options;
      options.threads = threads;
      options.keep_households = false;  // aggregates only: O(1) result memory
      FleetSimulator fleet(specs, options);
      const auto start = std::chrono::steady_clock::now();
      FleetResult result = fleet.run(kFleetSeed);
      const double seconds = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - start)
                                 .count();
      const double days_per_sec =
          seconds > 0.0 ? static_cast<double>(days_per_run) / seconds : 0.0;
      const double per_core = days_per_sec / static_cast<double>(threads);
      ctx.count_cells(households);
      ctx.count_days(days_per_run);
      table.add_row({std::to_string(households), std::to_string(threads),
                     TablePrinter::num(seconds, 3),
                     TablePrinter::num(days_per_sec, 1),
                     TablePrinter::num(per_core, 1),
                     TablePrinter::num(100.0 * result.saving_ratio.mean, 1),
                     TablePrinter::num(result.mean_cc.mean, 4),
                     TablePrinter::num(result.normalized_mi.mean, 4)});
      const std::string t = "_t" + std::to_string(threads);
      ctx.metric("days_per_sec" + t + suffix, days_per_sec);
      ctx.metric("days_per_sec_per_core" + t + suffix, per_core);
      if (threads == 1) {
        reference = std::move(result);
      } else if (result.saving_ratio.mean != reference.saving_ratio.mean ||
                 result.saving_ratio.p95 != reference.saving_ratio.p95 ||
                 result.mean_cc.mean != reference.mean_cc.mean ||
                 result.normalized_mi.mean != reference.normalized_mi.mean ||
                 result.battery_violations != reference.battery_violations) {
        std::fprintf(stderr,
                     "fleet determinism violated: %zu households, %zu-thread "
                     "aggregates differ from the 1-thread run\n",
                     households, threads);
        std::exit(1);
      }
    }

    // Lockstep-batched run: same fleet, 8 workers, batch_width=8 so
    // same-blueprint households in a chunk share one SoA BatchEngine pass.
    // Batching is bitwise invisible by contract, so the aggregates must
    // match the scalar reference exactly — asserted below like the thread
    // sweep. The days/sec delta vs days_per_sec_t8 is the fleet-level
    // batching win (timing metric, exempt from the drift gate).
    {
      FleetOptions options;
      options.threads = 8;
      options.batch_width = 8;
      options.keep_households = false;
      FleetSimulator fleet(specs, options);
      const auto start = std::chrono::steady_clock::now();
      const FleetResult result = fleet.run(kFleetSeed);
      const double seconds = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - start)
                                 .count();
      const double days_per_sec =
          seconds > 0.0 ? static_cast<double>(days_per_run) / seconds : 0.0;
      ctx.count_cells(households);
      ctx.count_days(days_per_run);
      table.add_row({std::to_string(households), "8 (batched)",
                     TablePrinter::num(seconds, 3),
                     TablePrinter::num(days_per_sec, 1),
                     TablePrinter::num(days_per_sec / 8.0, 1),
                     TablePrinter::num(100.0 * result.saving_ratio.mean, 1),
                     TablePrinter::num(result.mean_cc.mean, 4),
                     TablePrinter::num(result.normalized_mi.mean, 4)});
      ctx.metric("days_per_sec_batched_t8" + suffix, days_per_sec);
      if (result.saving_ratio.mean != reference.saving_ratio.mean ||
          result.saving_ratio.p95 != reference.saving_ratio.p95 ||
          result.mean_cc.mean != reference.mean_cc.mean ||
          result.normalized_mi.mean != reference.normalized_mi.mean ||
          result.battery_violations != reference.battery_violations) {
        std::fprintf(stderr,
                     "fleet determinism violated: %zu households, batched "
                     "aggregates differ from the 1-thread scalar run\n",
                     households);
        std::exit(1);
      }
    }

    // Aggregates are thread-count independent; gate them once per size.
    ctx.metric("sr_mean" + suffix, reference.saving_ratio.mean);
    ctx.metric("sr_p95" + suffix, reference.saving_ratio.p95);
    ctx.metric("cc_mean" + suffix, reference.mean_cc.mean);
    ctx.metric("mi_mean" + suffix, reference.normalized_mi.mean);
  }
  table.print(std::cout);

  std::printf("\n%zu train + %zu eval days per household; identical "
              "aggregates at every thread count and batch width (bitwise "
              "determinism contract, asserted above at every fleet size).\n",
              kTrainDays, kEvalDays);
}

}  // namespace rlblh::bench
