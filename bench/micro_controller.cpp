// Micro-benchmarks backing the paper's embedded-feasibility argument
// (Sections I, VIII): the controller must run on "a small embedded device".
// Measures the hot paths of the RL-BLH control loop.
#include <benchmark/benchmark.h>

#include "baselines/policy_registry.h"
#include "bench_main.h"
#include "core/features.h"
#include "core/qfunction.h"
#include "core/rlblh_policy.h"
#include "meter/household.h"
#include "meter/household_registry.h"
#include "pricing/pricing_registry.h"
#include "sim/experiment.h"

namespace {

using namespace rlblh;

RlBlhConfig bench_config() {
  SpecParams params;
  params.set("nd", 15);
  params.set("battery", 5.0);
  params.set("reuse", false);
  params.set("syn", false);
  params.set("seed", 7);
  return make_rlblh_config(params);
}

void BM_FeatureBasisAt(benchmark::State& state) {
  const FeatureBasis basis(96, 5.0);
  double level = 0.0;
  for (auto _ : state) {
    level += 0.001;
    if (level > 5.0) level = 0.0;
    benchmark::DoNotOptimize(basis.at(42, level));
  }
}
BENCHMARK(BM_FeatureBasisAt);

void BM_QValue(benchmark::State& state) {
  const FeatureBasis basis(96, 5.0);
  PerActionLinearQ q(8, FeatureBasis::kDim);
  const auto features = basis.at(42, 2.5);
  std::size_t a = 0;
  for (auto _ : state) {
    a = (a + 1) % 8;
    benchmark::DoNotOptimize(q.value(features, a));
  }
}
BENCHMARK(BM_QValue);

void BM_QArgmaxAllActions(benchmark::State& state) {
  const FeatureBasis basis(96, 5.0);
  PerActionLinearQ q(8, FeatureBasis::kDim);
  const auto features = basis.at(42, 2.5);
  std::vector<std::size_t> all(8);
  for (std::size_t i = 0; i < 8; ++i) all[i] = i;
  for (auto _ : state) {
    benchmark::DoNotOptimize(q.argmax(features, all));
  }
}
BENCHMARK(BM_QArgmaxAllActions);

void BM_SgdUpdate(benchmark::State& state) {
  const FeatureBasis basis(96, 5.0);
  PerActionLinearQ q(8, FeatureBasis::kDim);
  const auto features = basis.at(42, 2.5);
  for (auto _ : state) {
    q.sgd_update(3, features, 0.25, 0.005);
  }
  benchmark::DoNotOptimize(q.function(3).weights().front());
}
BENCHMARK(BM_SgdUpdate);

void BM_ControllerInterval(benchmark::State& state) {
  // One measurement interval of the full controller (decision boundaries
  // amortized in), i.e. the work per meter tick on the embedded device.
  RlBlhPolicy policy(bench_config());
  const TouSchedule prices = make_pricing("srp", {});
  HouseholdModel household(make_household_config("default", {}), 5);
  DayTrace day = household.generate_day();
  std::size_t n = 0;
  double level = 2.5;
  policy.begin_day(prices);
  for (auto _ : state) {
    const double y = policy.reading(n, level);
    const double x = day.at(n);
    level = std::min(5.0, std::max(0.0, level + y - x));
    policy.observe_usage(n, x);
    ++n;
    if (n == kIntervalsPerDay) {
      policy.end_day();
      day = household.generate_day();
      policy.begin_day(prices);
      n = 0;
    }
  }
}
BENCHMARK(BM_ControllerInterval);

void BM_TrainVirtualDay(benchmark::State& state) {
  // One replayed training day (the unit of the REUSE/SYN heuristics).
  RlBlhPolicy policy(bench_config());
  const TouSchedule prices = make_pricing("srp", {});
  Simulator sim = make_household_simulator("default", {}, prices, 5.0, 6);
  sim.run_days(policy, 1);  // establishes the price schedule
  HouseholdModel household(make_household_config("default", {}), 7);
  const DayTrace day = household.generate_day();
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.train_virtual_day(day.values(), 2.5));
  }
}
BENCHMARK(BM_TrainVirtualDay);

void BM_FullSimulatedDay(benchmark::State& state) {
  // A whole simulated day end to end (trace generation + control + battery).
  RlBlhPolicy policy(bench_config());
  Simulator sim =
      make_household_simulator("default", {}, make_pricing("srp", {}), 5.0, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.run_day(policy).savings_cents);
  }
}
BENCHMARK(BM_FullSimulatedDay);

}  // namespace

namespace rlblh::bench {

const char* const kBenchName = "micro_controller";

// The harness supplies main(); google-benchmark gets the passthrough args
// (e.g. --benchmark_filter=...) and the harness records total wall time
// into BENCH_micro_controller.json.
void bench_body(BenchContext& ctx) {
  int argc = ctx.passthrough_argc();
  benchmark::Initialize(&argc, ctx.passthrough_argv());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
}

}  // namespace rlblh::bench
