// Figure 6 reproduction: convergence of the learning error (paper Eq. 23)
// with and without the heuristics, at n_D = 15 and b_M = 5 kWh.
//
// The paper's claim: without heuristics convergence takes ~1500 days; with
// both heuristics it finishes within ~10 days. We print the normalized
// error (each series scaled by its own initial value, as the paper's plots
// start at ~1.0) on the paper's two time scales, plus the measured
// convergence day of each learner and its greedy saving ratio at selected
// checkpoints (convergence in error must translate into converged savings).
#include "bench_main.h"
#include "common.h"
#include "obs/obs.h"
#include "util/table.h"

#include <algorithm>
#include <iostream>
#include <vector>

namespace rlblh::bench {

namespace {

/// Runs `days` real days and returns the per-day mean |TD error| series.
std::vector<double> error_series(bool heuristics, int days, unsigned seed) {
  ScenarioSpec spec = paper_spec("rlblh", 15, 5.0, seed, 300 + seed);
  spec.policy_params.set("reuse", heuristics);
  spec.policy_params.set("syn", heuristics);
  Scenario scenario = build_scenario(spec);
  auto& policy = *scenario.policy_as<RlBlhPolicy>();
  scenario.simulator.run_days(policy, static_cast<std::size_t>(days));
  std::vector<double> series;
  series.reserve(policy.day_stats().size());
  for (const auto& day : policy.day_stats()) {
    series.push_back(day.mean_abs_td_error);
  }
  return series;
}

/// Normalizes by the series' own early level and smooths with a trailing
/// window, mirroring how the paper's curves read.
std::vector<double> normalize(const std::vector<double>& raw) {
  std::vector<double> out(raw.size(), 0.0);
  const double scale = raw.empty() ? 1.0 : std::max(raw.front(), 1e-9);
  double acc = 0.0;
  std::size_t window = 0;
  for (std::size_t d = 0; d < raw.size(); ++d) {
    acc += raw[d];
    ++window;
    if (window > 10) {
      acc -= raw[d - 10];
      window = 10;
    }
    out[d] = (acc / static_cast<double>(window)) / scale;
  }
  return out;
}

/// First day whose smoothed normalized error stays below `threshold`.
int convergence_day(const std::vector<double>& normalized, double threshold) {
  for (std::size_t d = 0; d < normalized.size(); ++d) {
    if (normalized[d] < threshold) return static_cast<int>(d + 1);
  }
  return -1;
}

/// Table cell for 1-based `day`, "-" when the series is shorter.
std::string at_day(const std::vector<double>& series, int day) {
  const auto i = static_cast<std::size_t>(day - 1);
  return i < series.size() ? TablePrinter::num(series[i], 3) : "-";
}

}  // namespace

const char* const kBenchName = "fig6_convergence";

void bench_body(BenchContext& ctx) {
  print_header("Figure 6: learning error vs days, n_D = 15, b_M = 5 kWh");

  const int kLongDays = ctx.days(1600, 30);
  const int kShortDays = ctx.days(60, 10);

  // Two cells: the no-heuristic learner over the long horizon and the
  // all-heuristics learner over the zoomed one. The 1600-day serial chain
  // dominates this bench's wall-clock (the parallel win here is only the
  // overlap of the two cells; the seed sweeps are where threads shine).
  std::vector<std::vector<double>> series;
  {
    RLBLH_OBS_SPAN("fig6.sweep");
    series = ctx.sweep().run(2, [&](std::size_t cell) {
      return cell == 0 ? error_series(/*heuristics=*/false, kLongDays, 7)
                       : error_series(/*heuristics=*/true, kShortDays, 7);
    });
  }
  RLBLH_OBS_SPAN("fig6.reduce");
  const std::vector<double> plain = normalize(series[0]);
  const std::vector<double> boosted = normalize(series[1]);
  ctx.count_cells(2);
  ctx.count_days(static_cast<std::size_t>(kLongDays + kShortDays));

  std::printf("(a) first %d days, normalized smoothed error\n", kLongDays);
  TablePrinter long_table({"day", "no heuristic", "all heuristics"});
  for (int day : {1, 5, 10, 20, 50, 100, 200, 400, 800, 1200, 1600}) {
    if (day > kLongDays) break;
    long_table.add_row(
        {std::to_string(day), at_day(plain, day), at_day(boosted, day)});
  }
  long_table.print(std::cout);

  std::printf("\n(b) zoomed: first %d days\n", kShortDays);
  TablePrinter short_table({"day", "no heuristic", "all heuristics"});
  for (int day : {1, 2, 4, 6, 8, 10, 15, 20, 30, 40, 60}) {
    if (day > kShortDays) break;
    short_table.add_row(
        {std::to_string(day), at_day(plain, day), at_day(boosted, day)});
  }
  short_table.print(std::cout);

  const double kThreshold = 0.5;
  const int boosted_day = convergence_day(boosted, kThreshold);
  const int plain_day = convergence_day(plain, kThreshold);
  std::printf("\nconvergence day (smoothed error < %.1fx initial): "
              "all-heuristics %d, no-heuristic %d\n",
              kThreshold, boosted_day, plain_day);
  ctx.metric("convergence_day_heuristics", boosted_day);
  ctx.metric("convergence_day_plain", plain_day);
  std::printf("paper: ~10 days with all heuristics vs ~1500 days without.\n");
}

}  // namespace rlblh::bench
