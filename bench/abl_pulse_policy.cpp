// Ablation: what the pulse structure buys vs what the learning buys.
//
// RL-BLH's privacy argument rests on the pulse *shape* (magnitudes driven
// by battery level and chance, held for n_D intervals); its cost argument
// rests on the *learned choice* of magnitudes. Swapping the learned choice
// for a uniformly random feasible one (RandomPulsePolicy) keeps the shape
// and drops the learning; the stepping baseline keeps neither. Expect:
// random pulses match RL-BLH's MI and CC but forfeit the savings; stepping
// flattens well (low MI) but its battery-driven step changes track usage.
#include "baselines/random_pulse.h"
#include "baselines/stepping.h"
#include "common.h"
#include "util/table.h"

#include <iostream>

int main() {
  using namespace rlblh;
  using namespace rlblh::bench;

  print_header("Ablation: learned vs random pulses vs stepping "
               "(n_D = 15, b_M = 5)");

  const TouSchedule prices = TouSchedule::srp_plan();
  const int kTrainDays = 70;
  const int kEvalDays = 120;

  TablePrinter table({"policy", "SR %", "CC", "MI", "cents/day"});

  {
    RlBlhPolicy rl(paper_config(15, 5.0, /*seed=*/7));
    Simulator sim = make_household_simulator(HouseholdConfig{}, prices, 5.0,
                                             1300);
    sim.run_days(rl, kTrainDays);
    const Metrics m = measure(sim, rl, kEvalDays);
    table.add_row({"rl-blh (learned pulses)", TablePrinter::num(100 * m.sr, 1),
                   TablePrinter::num(m.cc, 4), TablePrinter::num(m.mi, 4),
                   TablePrinter::num(m.daily_savings_cents, 1)});
  }
  {
    RandomPulsePolicy random_pulse(paper_config(15, 5.0, /*seed=*/7));
    Simulator sim = make_household_simulator(HouseholdConfig{}, prices, 5.0,
                                             1300);
    const Metrics m = measure(sim, random_pulse, kEvalDays);
    table.add_row({"random feasible pulses", TablePrinter::num(100 * m.sr, 1),
                   TablePrinter::num(m.cc, 4), TablePrinter::num(m.mi, 4),
                   TablePrinter::num(m.daily_savings_cents, 1)});
  }
  {
    SteppingConfig config;
    config.battery_capacity = 5.0;
    SteppingPolicy stepping(config);
    Simulator sim = make_household_simulator(HouseholdConfig{}, prices, 5.0,
                                             1300);
    sim.run_days(stepping, 10);  // settle the demand estimate
    const Metrics m = measure(sim, stepping, kEvalDays);
    table.add_row({"stepping (Yang et al. style)",
                   TablePrinter::num(100 * m.sr, 1),
                   TablePrinter::num(m.cc, 4), TablePrinter::num(m.mi, 4),
                   TablePrinter::num(m.daily_savings_cents, 1)});
  }

  table.print(std::cout);
  std::printf("\nrandom pulses inherit RL-BLH's privacy but not its savings "
              "— the learning is\npurely a cost feature; the paper's privacy "
              "mechanism is the pulse structure itself.\n");
  return 0;
}
