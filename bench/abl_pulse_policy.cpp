// Ablation: what the pulse structure buys vs what the learning buys.
//
// RL-BLH's privacy argument rests on the pulse *shape* (magnitudes driven
// by battery level and chance, held for n_D intervals); its cost argument
// rests on the *learned choice* of magnitudes. Swapping the learned choice
// for a uniformly random feasible one (RandomPulsePolicy) keeps the shape
// and drops the learning; the stepping baseline keeps neither. Expect:
// random pulses match RL-BLH's MI and CC but forfeit the savings; stepping
// flattens well (low MI) but its battery-driven step changes track usage.
#include "bench_main.h"
#include "common.h"
#include "util/table.h"

#include <iostream>
#include <vector>

namespace rlblh::bench {

const char* const kBenchName = "abl_pulse_policy";

void bench_body(BenchContext& ctx) {
  print_header("Ablation: learned vs random pulses vs stepping "
               "(n_D = 15, b_M = 5)");

  const int kTrainDays = ctx.days(70, 5);
  const int kSettleDays = ctx.days(10, 3);
  const int kEvalDays = ctx.days(120, 4);

  // Three independent cells, one per policy family.
  const std::vector<EvaluationResult> cells =
      ctx.sweep().run(3, [&](std::size_t cell) {
        const char* const policies[] = {"rlblh", "random_pulse", "stepping"};
        Scenario s = build_scenario(
            paper_spec(policies[cell], 15, 5.0, /*seed=*/7, /*hseed=*/1300));
        if (cell == 0) {
          s.simulator.run_days(*s.policy,
                               static_cast<std::size_t>(kTrainDays));
        } else if (cell == 2) {
          s.simulator.run_days(*s.policy,
                               static_cast<std::size_t>(kSettleDays));
        }
        return measure_full(s.simulator, *s.policy, kEvalDays);
      });
  ctx.count_cells(cells.size());
  ctx.count_days(static_cast<std::size_t>(kTrainDays + kSettleDays +
                                          3 * kEvalDays));

  const char* names[] = {"rl-blh (learned pulses)", "random feasible pulses",
                         "stepping (Yang et al. style)"};
  const char* keys[] = {"rl_sr", "random_sr", "stepping_sr"};
  TablePrinter table({"policy", "SR %", "CC", "MI", "cents/day"});
  for (std::size_t c = 0; c < cells.size(); ++c) {
    const EvaluationResult& m = cells[c];
    table.add_row({names[c], TablePrinter::num(100 * m.saving_ratio, 1),
                   TablePrinter::num(m.mean_cc, 4),
                   TablePrinter::num(m.normalized_mi, 4),
                   TablePrinter::num(m.mean_daily_savings_cents, 1)});
    ctx.metric(keys[c], m.saving_ratio);
  }

  table.print(std::cout);
  std::printf("\nrandom pulses inherit RL-BLH's privacy but not its savings "
              "— the learning is\npurely a cost feature; the paper's privacy "
              "mechanism is the pulse structure itself.\n");
}

}  // namespace rlblh::bench
