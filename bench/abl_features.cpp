// Ablation: feature parametrization of the Table-I function space
// (DESIGN.md "documented deviations").
//
// The paper's Table I lists the raw monomials [1, K, B, KB, K^2, B^2]; the
// library evaluates the same space in its shifted-Legendre parametrization.
// Both span identical functions, but SGD behaves very differently on them:
// the monomial Gram matrix over [0,1]^2 is Hilbert-like ill-conditioned, so
// the semi-gradient iteration mixes slowly along stiff directions and the
// learned policy oscillates. This bench trains the same Q-learning loop on
// three parametrizations and reports the achieved saving ratio.
#include <algorithm>
#include <array>
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_main.h"
#include "common.h"
#include "core/qfunction.h"
#include "meter/household.h"
#include "meter/household_registry.h"
#include "meter/usage_stats.h"
#include "pricing/pricing_registry.h"
#include "privacy/metrics.h"
#include "rl/egreedy.h"
#include "util/table.h"

namespace rlblh::bench {

namespace {

enum class Basis { kLegendre, kMonomial, kLinearOnly };

std::array<double, 6> features(Basis basis, double kk, double bb) {
  switch (basis) {
    case Basis::kMonomial:
      return {1.0, kk, bb, kk * bb, kk * kk, bb * bb};
    case Basis::kLinearOnly:
      return {1.0, kk, bb, 0.0, 0.0, 0.0};
    case Basis::kLegendre:
    default: {
      const double p1k = 2.0 * kk - 1.0;
      const double p1b = 2.0 * bb - 1.0;
      return {1.0, p1k, p1b, p1k * p1b, 6.0 * kk * kk - 6.0 * kk + 1.0,
              6.0 * bb * bb - 6.0 * bb + 1.0};
    }
  }
}

/// Self-contained Q-learning loop identical to RlBlhPolicy's inner loop but
/// with a pluggable basis (the library type fixes the basis by design).
struct Learner {
  static constexpr double kCapacity = 5.0;
  static constexpr double kUsageCap = 0.08;
  static constexpr std::size_t kDecision = 15;
  static constexpr std::size_t kDecisions = 96;
  static constexpr std::size_t kActions = 8;

  Basis basis;
  PerActionLinearQ q{kActions, 6};
  double alpha = 0.01;
  double epsilon = 0.05;

  std::vector<std::size_t> allowed(double level) const {
    const double guard = kUsageCap * static_cast<double>(kDecision);
    if (level > kCapacity - guard) return {0};
    if (level < guard) return {kActions - 1};
    std::vector<std::size_t> all(kActions);
    for (std::size_t a = 0; a < kActions; ++a) all[a] = a;
    return all;
  }

  static double magnitude(std::size_t a) {
    return static_cast<double>(a) * kUsageCap /
           static_cast<double>(kActions - 1);
  }

  std::array<double, 6> at(std::size_t k, double level) const {
    return features(basis, static_cast<double>(k) / kDecisions,
                    std::clamp(level / kCapacity, 0.0, 1.0));
  }

  /// One day; returns the end-of-day battery level.
  double day(const std::vector<double>& usage, const TouSchedule& prices,
             double level, bool learn, Rng& rng,
             std::vector<double>* readings) {
    for (std::size_t k = 0; k < kDecisions; ++k) {
      const auto f = at(k, level);
      const auto al = allowed(level);
      std::size_t a = q.argmax(f, al);
      if (learn) a = epsilon_greedy(al, a, epsilon, rng);
      double savings = 0.0;
      for (std::size_t i = 0; i < kDecision; ++i) {
        const std::size_t n = k * kDecision + i;
        savings += prices.rate(n) * (usage[n] - magnitude(a));
        level += magnitude(a) - usage[n];
        if (readings != nullptr) readings->push_back(magnitude(a));
      }
      level = std::clamp(level, 0.0, kCapacity);
      double target = savings;
      if (k + 1 < kDecisions) {
        target += q.max_value(at(k + 1, level), allowed(level));
      }
      if (learn) q.sgd_update(a, f, target - q.value(f, a), alpha);
    }
    return level;
  }
};

double run_basis(Basis basis, unsigned seed, int train_days, int syn_repeats,
                 int eval_days) {
  const TouSchedule prices = make_pricing("srp", {});
  Learner learner;
  learner.basis = basis;
  HouseholdModel household(make_household_config("default", {}), 800 + seed);
  UsageStatsTracker stats(kIntervalsPerDay, kDefaultUsageCap);
  Rng rng(seed);
  double level = 2.5;
  for (int d = 1; d <= train_days; ++d) {
    const DayTrace day = household.generate_day();
    stats.observe_day(day, rng);
    level = learner.day(day.values(), prices, level, true, rng, nullptr);
    if (d % 10 == 0 && d <= 50) {  // the paper's synthetic schedule
      for (int v = 0; v < syn_repeats; ++v) {
        const DayTrace synthetic = stats.sample_day(rng);
        learner.day(synthetic.values(), prices,
                    rng.uniform(0.0, Learner::kCapacity), true, rng, nullptr);
      }
    }
  }
  SavingRatioAccumulator sr;
  for (int d = 0; d < eval_days; ++d) {
    const DayTrace day = household.generate_day();
    std::vector<double> readings;
    level = learner.day(day.values(), prices, level, false, rng, &readings);
    sr.observe_day(day, DayTrace(readings), prices);
  }
  return sr.saving_ratio();
}

}  // namespace

const char* const kBenchName = "abl_features";

void bench_body(BenchContext& ctx) {
  print_header("Ablation: feature parametrization of the Table-I space");

  struct Row {
    const char* name;
    Basis basis;
  };
  const std::vector<Row> rows = {
      {"shifted Legendre (library)", Basis::kLegendre},
      {"raw Table-I monomials", Basis::kMonomial},
      {"linear only [1, K, B]", Basis::kLinearOnly},
  };
  const std::vector<unsigned> seeds = {7, 8, 9};
  const int kTrainDays = ctx.days(60, 10);
  const int kSynRepeats = ctx.days(500, 20);
  const int kEvalDays = ctx.days(30, 3);

  const std::vector<double> results = ctx.sweep().run_grid(
      rows, seeds, [&](const Row& row, unsigned seed) {
        return run_basis(row.basis, seed, kTrainDays, kSynRepeats, kEvalDays);
      });
  ctx.count_cells(results.size());
  ctx.count_days(results.size() *
                 static_cast<std::size_t>(kTrainDays + kEvalDays));

  TablePrinter table({"basis", "SR seed7 %", "SR seed8 %", "SR seed9 %"});
  for (std::size_t r = 0; r < rows.size(); ++r) {
    std::vector<std::string> cells{rows[r].name};
    for (std::size_t s = 0; s < seeds.size(); ++s) {
      cells.push_back(
          TablePrinter::num(100.0 * results[r * seeds.size() + s], 1));
    }
    table.add_row(cells);
    ctx.metric(std::string("sr_seed7_") + rows[r].name,
               results[r * seeds.size()]);
  }
  table.print(std::cout);
  std::printf("\nall three parametrizations can represent the same Q "
              "functions (the first two\nexactly so); only the conditioning "
              "differs — which decides whether the paper's\nEq. (18) "
              "iteration actually converges.\n");
}

}  // namespace rlblh::bench
