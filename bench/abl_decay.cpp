// Ablation: hyper-parameter decay schedule (DESIGN.md "documented
// deviations").
//
// The paper decays alpha and epsilon by 1/sqrt(d) across days. The library
// additionally keeps small floors under both values and offers
// decay-by-episode as an alternative. With the exploring-start replays in
// place (the main stabilizer; see DESIGN.md), the literal day-based decay
// and the floored variant perform alike on a stationary household — the
// floors matter for *online re-adaptation* after a behaviour change, where
// a fully decayed learner cannot move its weights any more (see the
// behaviour_shift example). Decay-by-episode is measurably worse: the
// replay bursts burn through the exploration budget within days.
#include "bench_main.h"
#include "common.h"
#include "util/table.h"

#include <iostream>
#include <vector>

namespace rlblh::bench {

namespace {

struct Variant {
  const char* name;
  bool decay;
  bool by_episodes;
  double alpha_floor;
  double epsilon_floor;
};

double run_schedule(const Variant& v, unsigned seed, int train_days,
                    int eval_days) {
  ScenarioSpec spec = paper_spec("rlblh", 15, 5.0, seed, 700 + seed);
  spec.policy_params.set("decay", v.decay);
  spec.policy_params.set("decay_by_episodes", v.by_episodes);
  spec.policy_params.set("alpha_floor", v.alpha_floor);
  spec.policy_params.set("epsilon_floor", v.epsilon_floor);
  Scenario scenario = build_scenario(spec);
  auto& policy = *scenario.policy_as<RlBlhPolicy>();
  scenario.simulator.run_days(policy, static_cast<std::size_t>(train_days));
  return greedy_sr(scenario.simulator, policy, eval_days);
}

}  // namespace

const char* const kBenchName = "abl_decay";

void bench_body(BenchContext& ctx) {
  print_header("Ablation: alpha/epsilon decay schedule (n_D = 15, b_M = 5)");

  const std::vector<Variant> variants = {
      {"paper-literal 1/sqrt(day), no floor", true, false, 0.0, 0.0},
      {"1/sqrt(day) with floors (default)", true, false, 0.005, 0.05},
      {"1/sqrt(episode) with floors", true, true, 0.005, 0.05},
      {"no decay (constant 0.05 / 0.1)", false, false, 0.0, 0.0},
  };
  const int kShortTrain = ctx.days(60, 5);
  const int kLongTrain = ctx.days(150, 10);
  const int kEvalDays = ctx.days(30, 3);
  const std::vector<unsigned> seeds = {7, 8, 9};

  // Grid: variant-major, then seed, then the two horizons — every
  // (variant, seed, horizon) triple is one independent cell.
  struct CellResult {
    double sr60 = 0.0, sr150 = 0.0;
  };
  const std::vector<CellResult> cells = ctx.sweep().run_grid(
      variants, seeds, [&](const Variant& v, unsigned seed) {
        CellResult result;
        result.sr60 = run_schedule(v, seed, kShortTrain, kEvalDays);
        result.sr150 = run_schedule(v, seed, kLongTrain, kEvalDays);
        return result;
      });
  ctx.count_cells(cells.size());
  ctx.count_days(cells.size() * static_cast<std::size_t>(
                                    kShortTrain + kLongTrain + 2 * kEvalDays));

  TablePrinter table({"schedule", "SR % @60d", "SR % @150d"});
  for (std::size_t v = 0; v < variants.size(); ++v) {
    double sr60 = 0.0, sr150 = 0.0;
    for (std::size_t s = 0; s < seeds.size(); ++s) {
      const CellResult& cell = cells[v * seeds.size() + s];
      sr60 += cell.sr60 / static_cast<double>(seeds.size());
      sr150 += cell.sr150 / static_cast<double>(seeds.size());
    }
    table.add_row({variants[v].name, TablePrinter::num(100.0 * sr60, 1),
                   TablePrinter::num(100.0 * sr150, 1)});
    ctx.metric(std::string("sr60_") + variants[v].name, sr60);
  }
  table.print(std::cout);
  std::printf("\nday-based decay (with or without floors) converges alike "
              "on a stationary\nhousehold; episode-based decay starves "
              "exploration during the replay bursts.\nFloors earn their keep "
              "when the household's behaviour changes mid-run.\n");
}

}  // namespace rlblh::bench
