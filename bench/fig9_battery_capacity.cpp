// Figure 9 reproduction: privacy and cost savings as the battery capacity
// b_M varies over {3..7} kWh, at n_D = 15.
//
// Paper values: SR {2.58, 11.31, 15.54, 18.02, 22.43}%,
// CC {0.058, 0.046, 0.022, 0.014, -0.006}, MI ~flat {0.011..0.014}.
// Shapes to reproduce: SR increases with b_M, CC decreases with b_M
// (a bigger battery decouples the pulses from usage), MI roughly flat.
#include "common.h"
#include "util/table.h"

#include <iostream>

int main() {
  using namespace rlblh;
  using namespace rlblh::bench;

  print_header("Figure 9: effect of the battery capacity b_M (n_D = 15)");

  const TouSchedule prices = TouSchedule::srp_plan();
  struct PaperRow {
    double capacity, sr, cc;
  };
  const PaperRow paper[] = {{3.0, 2.58, 0.058},
                            {4.0, 11.31, 0.046},
                            {5.0, 15.54, 0.022},
                            {6.0, 18.02, 0.014},
                            {7.0, 22.43, -0.006}};

  const int kTrainDays = 110;
  const int kEvalDays = 120;

  TablePrinter table({"b_M", "SR %", "MI", "CC", "cents/day", "paper SR %",
                      "paper CC"});
  for (const PaperRow& row : paper) {
    Metrics mean;
    const unsigned seeds[] = {7, 8, 9};
    for (const unsigned seed : seeds) {
      RlBlhPolicy policy(paper_config(15, row.capacity, seed));
      Simulator sim = make_household_simulator(HouseholdConfig{}, prices,
                                               row.capacity, 600 + seed);
      sim.run_days(policy, kTrainDays);
      const Metrics m = measure(sim, policy, kEvalDays);
      mean.sr += m.sr / 3.0;
      mean.cc += m.cc / 3.0;
      mean.mi += m.mi / 3.0;
      mean.daily_savings_cents += m.daily_savings_cents / 3.0;
    }
    table.add_row({TablePrinter::num(row.capacity, 0),
                   TablePrinter::num(100.0 * mean.sr, 1),
                   TablePrinter::num(mean.mi, 4),
                   TablePrinter::num(mean.cc, 4),
                   TablePrinter::num(mean.daily_savings_cents, 1),
                   TablePrinter::num(row.sr, 1),
                   TablePrinter::num(row.cc, 3)});
  }
  table.print(std::cout);
  std::printf("\nshape checks: SR grows with b_M; CC falls with b_M; MI is "
              "roughly flat.\nA larger battery helps both goals; the paper's "
              "sizing argument follows.\n");
  return 0;
}
