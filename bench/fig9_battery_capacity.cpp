// Figure 9 reproduction: privacy and cost savings as the battery capacity
// b_M varies over {3..7} kWh, at n_D = 15.
//
// Paper values: SR {2.58, 11.31, 15.54, 18.02, 22.43}%,
// CC {0.058, 0.046, 0.022, 0.014, -0.006}, MI ~flat {0.011..0.014}.
// Shapes to reproduce: SR increases with b_M, CC decreases with b_M
// (a bigger battery decouples the pulses from usage), MI roughly flat.
#include "bench_main.h"
#include "common.h"
#include "util/table.h"

#include <iostream>
#include <vector>

namespace rlblh::bench {

const char* const kBenchName = "fig9_battery_capacity";

void bench_body(BenchContext& ctx) {
  print_header("Figure 9: effect of the battery capacity b_M (n_D = 15)");

  struct PaperRow {
    double capacity, sr, cc;
  };
  const std::vector<PaperRow> paper = {{3.0, 2.58, 0.058},
                                       {4.0, 11.31, 0.046},
                                       {5.0, 15.54, 0.022},
                                       {6.0, 18.02, 0.014},
                                       {7.0, 22.43, -0.006}};

  const int kTrainDays = ctx.days(110, 6);
  const int kEvalDays = ctx.days(120, 4);
  const std::vector<unsigned> seeds = {7, 8, 9};

  // One sweep cell per (capacity, seed): train then measure, in isolation.
  const std::vector<EvaluationResult> cells = ctx.sweep().run_grid(
      paper, seeds, [&](const PaperRow& row, unsigned seed) {
        Scenario s = build_scenario(
            paper_spec("rlblh", 15, row.capacity, seed, 600 + seed));
        auto& policy = *s.policy_as<RlBlhPolicy>();
        s.simulator.run_days(policy, static_cast<std::size_t>(kTrainDays));
        return measure_full(s.simulator, policy, kEvalDays);
      });
  ctx.count_cells(cells.size());
  ctx.count_days(cells.size() *
                 static_cast<std::size_t>(kTrainDays + kEvalDays));

  TablePrinter table({"b_M", "SR %", "MI", "CC", "cents/day", "paper SR %",
                      "paper CC"});
  for (std::size_t r = 0; r < paper.size(); ++r) {
    const PaperRow& row = paper[r];
    const EvaluationStats mean =
        mean_over_cells(cells, r * seeds.size(), seeds.size());
    table.add_row({TablePrinter::num(row.capacity, 0),
                   TablePrinter::num(100.0 * mean.saving_ratio.mean(), 1),
                   TablePrinter::num(mean.normalized_mi.mean(), 4),
                   TablePrinter::num(mean.mean_cc.mean(), 4),
                   TablePrinter::num(mean.mean_daily_savings_cents.mean(), 1),
                   TablePrinter::num(row.sr, 1),
                   TablePrinter::num(row.cc, 3)});
    ctx.metric("sr_bM" + std::to_string(static_cast<int>(row.capacity)),
               mean.saving_ratio.mean());
    ctx.metric("cc_bM" + std::to_string(static_cast<int>(row.capacity)),
               mean.mean_cc.mean());
  }
  table.print(std::cout);
  std::printf("\nshape checks: SR grows with b_M; CC falls with b_M; MI is "
              "roughly flat.\nA larger battery helps both goals; the paper's "
              "sizing argument follows.\n");
}

}  // namespace rlblh::bench
