// Figure 5 reproduction: RL-BLH vs the low-pass scheme across battery
// capacities b_M in {3, 4, 5} kWh at n_D = 10.
//
//  (5a) CC  — RL-BLH hides the low-frequency shape better (paper: by about
//             an order of magnitude; here the margin is smaller, see
//             EXPERIMENTS.md).
//  (5b) MI  — both schemes leak little pairwise information; low-pass is
//             slightly better at the high-frequency metric (paper agrees:
//             "the MI of RL-BLH is slightly higher").
//  (5c) SR  — RL-BLH's savings grow with b_M by design; the low-pass
//             scheme's savings are incidental (whatever the usage/tariff
//             covariance happens to give).
#include "bench_main.h"
#include "common.h"
#include "util/table.h"

#include <iostream>
#include <vector>

namespace rlblh::bench {

const char* const kBenchName = "fig5_compare_lowpass";

void bench_body(BenchContext& ctx) {
  print_header("Figure 5: RL-BLH vs low-pass across b_M (n_D = 10)");

  const int kTrainDays = ctx.days(70, 5);
  const int kLpSettleDays = ctx.days(10, 3);
  const int kEvalDays = ctx.days(120, 4);

  struct PaperRow {
    double capacity, rl_cc, lp_cc, rl_mi, lp_mi, rl_sr, lp_sr;
  };
  // Values read off the paper's Figure 5 plots (approximate).
  const std::vector<PaperRow> paper = {
      {3.0, 0.02, 0.16, 0.03, 0.015, 0.02, -0.02},
      {4.0, 0.02, 0.12, 0.02, 0.012, 0.09, 0.00},
      {5.0, 0.02, 0.09, 0.015, 0.010, 0.15, 0.02},
  };

  // Grid: capacity-major, scheme-minor — cell 2r is RL-BLH, 2r+1 low-pass.
  const std::vector<EvaluationResult> cells =
      ctx.sweep().run(paper.size() * 2, [&](std::size_t cell) {
        const PaperRow& row = paper[cell / 2];
        const double capacity = row.capacity;
        if (cell % 2 == 0) {
          // RL-BLH, trained online with the paper's heuristics.
          Scenario s = build_scenario(
              paper_spec("rlblh", 10, capacity, /*seed=*/7, /*hseed=*/200));
          auto& rl = *s.policy_as<RlBlhPolicy>();
          s.simulator.run_days(rl, static_cast<std::size_t>(kTrainDays));
          return measure_full(s.simulator, rl, kEvalDays);
        }
        Scenario s = build_scenario(
            paper_spec("lowpass", 10, capacity, /*seed=*/7, /*hseed=*/200));
        s.simulator.run_days(*s.policy,
                             static_cast<std::size_t>(kLpSettleDays));
        return measure_full(s.simulator, *s.policy, kEvalDays);
      });
  ctx.count_cells(cells.size());
  ctx.count_days(paper.size() *
                 static_cast<std::size_t>(kTrainDays + kLpSettleDays +
                                          2 * kEvalDays));

  TablePrinter table({"b_M", "scheme", "CC", "MI", "SR %", "cents/day",
                      "paper CC", "paper SR %"});
  for (std::size_t r = 0; r < paper.size(); ++r) {
    const PaperRow& row = paper[r];
    const EvaluationResult& rl = cells[2 * r];
    const EvaluationResult& lp = cells[2 * r + 1];
    table.add_row({TablePrinter::num(row.capacity, 0), "rl-blh",
                   TablePrinter::num(rl.mean_cc, 4),
                   TablePrinter::num(rl.normalized_mi, 4),
                   TablePrinter::num(100.0 * rl.saving_ratio, 1),
                   TablePrinter::num(rl.mean_daily_savings_cents, 1),
                   TablePrinter::num(row.rl_cc, 3),
                   TablePrinter::num(100.0 * row.rl_sr, 1)});
    table.add_row({TablePrinter::num(row.capacity, 0), "low-pass",
                   TablePrinter::num(lp.mean_cc, 4),
                   TablePrinter::num(lp.normalized_mi, 4),
                   TablePrinter::num(100.0 * lp.saving_ratio, 1),
                   TablePrinter::num(lp.mean_daily_savings_cents, 1),
                   TablePrinter::num(row.lp_cc, 3),
                   TablePrinter::num(100.0 * row.lp_sr, 1)});
    const std::string suffix =
        "_bM" + std::to_string(static_cast<int>(row.capacity));
    ctx.metric("rl_cc" + suffix, rl.mean_cc);
    ctx.metric("lp_cc" + suffix, lp.mean_cc);
  }
  table.print(std::cout);
  std::printf("\nshape checks: rl CC < lp CC at every capacity; rl SR grows "
              "with b_M;\nlp MI < rl MI (low-pass is the better pure "
              "high-frequency flattener).\n");
}

}  // namespace rlblh::bench
