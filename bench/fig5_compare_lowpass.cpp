// Figure 5 reproduction: RL-BLH vs the low-pass scheme across battery
// capacities b_M in {3, 4, 5} kWh at n_D = 10.
//
//  (5a) CC  — RL-BLH hides the low-frequency shape better (paper: by about
//             an order of magnitude; here the margin is smaller, see
//             EXPERIMENTS.md).
//  (5b) MI  — both schemes leak little pairwise information; low-pass is
//             slightly better at the high-frequency metric (paper agrees:
//             "the MI of RL-BLH is slightly higher").
//  (5c) SR  — RL-BLH's savings grow with b_M by design; the low-pass
//             scheme's savings are incidental (whatever the usage/tariff
//             covariance happens to give).
#include "baselines/lowpass.h"
#include "common.h"
#include "util/table.h"

#include <iostream>

int main() {
  using namespace rlblh;
  using namespace rlblh::bench;

  print_header("Figure 5: RL-BLH vs low-pass across b_M (n_D = 10)");

  const TouSchedule prices = TouSchedule::srp_plan();
  const int kTrainDays = 70;
  const int kEvalDays = 120;

  struct PaperRow {
    double capacity, rl_cc, lp_cc, rl_mi, lp_mi, rl_sr, lp_sr;
  };
  // Values read off the paper's Figure 5 plots (approximate).
  const PaperRow paper[] = {
      {3.0, 0.02, 0.16, 0.03, 0.015, 0.02, -0.02},
      {4.0, 0.02, 0.12, 0.02, 0.012, 0.09, 0.00},
      {5.0, 0.02, 0.09, 0.015, 0.010, 0.15, 0.02},
  };

  TablePrinter table({"b_M", "scheme", "CC", "MI", "SR %", "cents/day",
                      "paper CC", "paper SR %"});
  for (const PaperRow& row : paper) {
    const double capacity = row.capacity;
    // RL-BLH, trained online with the paper's heuristics.
    RlBlhPolicy rl(paper_config(10, capacity, /*seed=*/7));
    Simulator rl_sim = make_household_simulator(HouseholdConfig{}, prices,
                                                capacity, /*seed=*/200);
    rl_sim.run_days(rl, kTrainDays);
    const Metrics rl_metrics = measure(rl_sim, rl, kEvalDays);

    LowPassConfig lp_config;
    lp_config.battery_capacity = capacity;
    LowPassPolicy lp(lp_config);
    Simulator lp_sim = make_household_simulator(HouseholdConfig{}, prices,
                                                capacity, /*seed=*/200);
    lp_sim.run_days(lp, 10);
    const Metrics lp_metrics = measure(lp_sim, lp, kEvalDays);

    table.add_row({TablePrinter::num(capacity, 0), "rl-blh",
                   TablePrinter::num(rl_metrics.cc, 4),
                   TablePrinter::num(rl_metrics.mi, 4),
                   TablePrinter::num(100.0 * rl_metrics.sr, 1),
                   TablePrinter::num(rl_metrics.daily_savings_cents, 1),
                   TablePrinter::num(row.rl_cc, 3),
                   TablePrinter::num(100.0 * row.rl_sr, 1)});
    table.add_row({TablePrinter::num(capacity, 0), "low-pass",
                   TablePrinter::num(lp_metrics.cc, 4),
                   TablePrinter::num(lp_metrics.mi, 4),
                   TablePrinter::num(100.0 * lp_metrics.sr, 1),
                   TablePrinter::num(lp_metrics.daily_savings_cents, 1),
                   TablePrinter::num(row.lp_cc, 3),
                   TablePrinter::num(100.0 * row.lp_sr, 1)});
  }
  table.print(std::cout);
  std::printf("\nshape checks: rl CC < lp CC at every capacity; rl SR grows "
              "with b_M;\nlp MI < rl MI (low-pass is the better pure "
              "high-frequency flattener).\n");
  return 0;
}
