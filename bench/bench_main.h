// Timed benchmark harness shared by every bench binary.
//
// bench_main.cc owns main(): it parses the harness flags, hands a
// BenchContext (thread count, --quick scaling, the parallel SweepRunner and
// throughput counters) to the bench body, times the body wall-clock, prints
// a summary line and emits a machine-readable BENCH_<name>.json record —
// the perf-trajectory artifact CI uploads per run.
//
// Flags understood by every bench binary:
//   --threads N   worker threads for the sweep engine (overrides the
//                 RLBLH_THREADS environment variable; default: hardware)
//   --quick       CI smoke mode: benches scale their day counts down
//   --out PATH    where to write the JSON record
//                 (default: BENCH_<name>.json in the working directory)
//   --no-json     skip the JSON record
//   --obs         turn on the observability layer for the run: metrics and
//                 spans are recorded, a RUN_<name>.json manifest is written
//                 (see src/obs/manifest.h for the schema), an "obs" section
//                 is embedded in BENCH_<name>.json and the metrics_dump
//                 tables are printed. A non-empty RLBLH_OBS_OUT environment
//                 variable implies --obs and names the manifest path.
//   --obs-out P   manifest path (implies --obs)
// Unrecognized arguments are passed through to the bench body (the
// google-benchmark micro benches forward them to benchmark::Initialize).
#pragma once

#include <atomic>
#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "sim/sweep.h"

namespace rlblh::bench {

/// Harness state handed to a bench body.
class BenchContext {
 public:
  BenchContext(SweepOptions sweep_options, bool quick,
               std::vector<char*> passthrough);

  /// The bench's parallel sweep engine (see sim/sweep.h for the
  /// determinism contract cells must obey).
  SweepRunner& sweep() { return sweep_; }

  /// Worker threads in effect.
  std::size_t threads() const { return sweep_.threads(); }

  /// True in --quick (CI smoke) mode.
  bool quick() const { return quick_; }

  /// Selects the full-run or the --quick day count.
  int days(int full, int quick_days) const {
    return quick_ ? quick_days : full;
  }

  /// Adds to the simulated-day counter behind the days/sec throughput
  /// figure. Thread-safe: cells call it from pool workers.
  void count_days(std::size_t days) {
    days_.fetch_add(days, std::memory_order_relaxed);
  }

  /// Adds to the completed-cell counter. Thread-safe.
  void count_cells(std::size_t cells) {
    cells_.fetch_add(cells, std::memory_order_relaxed);
  }

  /// Records a headline result into the JSON record's "metrics" object.
  /// Main thread only (call it after the sweep, in grid order, so the JSON
  /// is independent of thread scheduling).
  void metric(const std::string& key, double value);

  /// Arguments the harness did not consume; argv[0] is preserved.
  int passthrough_argc() const { return static_cast<int>(args_.size()); }
  char** passthrough_argv() { return args_.data(); }

  // --- harness internals (bench_main.cc) -------------------------------
  std::size_t total_days() const { return days_.load(); }
  std::size_t total_cells() const { return cells_.load(); }
  const std::vector<std::pair<std::string, double>>& metrics() const {
    return metrics_;
  }

 private:
  SweepRunner sweep_;
  bool quick_;
  std::vector<char*> args_;
  std::atomic<std::size_t> days_{0};
  std::atomic<std::size_t> cells_{0};
  std::vector<std::pair<std::string, double>> metrics_;
};

/// Each bench translation unit defines these two symbols; bench_main.cc
/// supplies main().
extern const char* const kBenchName;
void bench_body(BenchContext& context);

}  // namespace rlblh::bench
