// Figure 4 reproduction: one typical day of usage x_n, meter readings y_n
// and battery level b_n for RL-BLH (4a) and the low-pass scheme (4b), with
// n_D = 10 and b_M = 3 kWh under the SRP two-zone prices.
//
// The paper's visual claims to check in the printed series:
//  * RL-BLH's y_n is a train of rectangular pulses whose magnitudes do not
//    track the usage envelope; the battery charges while n <= 1020 (cheap)
//    and drains afterwards (dear).
//  * The low-pass y_n is nearly flat but its slow envelope follows the
//    usage envelope (activity bumps leak through).
#include "bench_main.h"
#include "common.h"
#include "pricing/pricing_registry.h"
#include "util/table.h"

#include <iostream>
#include <vector>

namespace rlblh::bench {

const char* const kBenchName = "fig4_traces";

void bench_body(BenchContext& ctx) {
  print_header("Figure 4: typical day traces, n_D = 10, b_M = 3 kWh");

  const TouSchedule prices = make_pricing("srp", {});
  const double capacity = 3.0;
  const int kRlTrainDays = ctx.days(60, 5);
  const int kLpSettleDays = ctx.days(10, 3);

  // Two independent cells: the trained RL-BLH day and the settled low-pass
  // day (paper: traces shown after learning).
  const std::vector<DayResult> days =
      ctx.sweep().run(2, [&](std::size_t cell) -> DayResult {
        if (cell == 0) {
          Scenario s = build_scenario(
              paper_spec("rlblh", 10, capacity, /*seed=*/7, /*hseed=*/101));
          auto& rl = *s.policy_as<RlBlhPolicy>();
          s.simulator.run_days(rl, static_cast<std::size_t>(kRlTrainDays));
          rl.set_exploration_enabled(false);
          // Copies out of the simulator's scratch.
          return s.simulator.run_day(rl);
        }
        Scenario s = build_scenario(
            paper_spec("lowpass", 10, capacity, /*seed=*/7, /*hseed=*/101));
        s.simulator.run_days(*s.policy,
                             static_cast<std::size_t>(kLpSettleDays));
        return s.simulator.run_day(*s.policy);
      });
  const DayResult& rl_day = days[0];
  const DayResult& lp_day = days[1];
  ctx.count_cells(2);
  ctx.count_days(static_cast<std::size_t>(kRlTrainDays + kLpSettleDays + 2));

  TablePrinter table({"n", "rate", "x_n", "rl: y_n", "rl: b_n",
                      "lp: y_n", "lp: b_n"});
  for (std::size_t n = 0; n < kIntervalsPerDay; n += 30) {
    table.add_row({std::to_string(n), TablePrinter::num(prices.rate(n), 2),
                   TablePrinter::num(rl_day.usage.at(n), 4),
                   TablePrinter::num(rl_day.readings.at(n), 4),
                   TablePrinter::num(rl_day.battery_levels[n], 2),
                   TablePrinter::num(lp_day.readings.at(n), 4),
                   TablePrinter::num(lp_day.battery_levels[n], 2)});
  }
  table.print(std::cout);

  // Quantified versions of the figure's visual claims.
  const double rl_cc = pearson_correlation(rl_day.usage, rl_day.readings);
  const double lp_cc = pearson_correlation(lp_day.usage, lp_day.readings);
  std::printf("\nthis day's usage/reading correlation: rl-blh %.4f, "
              "low-pass %.4f\n", rl_cc, lp_cc);

  double charged_cheap = 0.0, drained_dear = 0.0;
  for (std::size_t n = 0; n < kIntervalsPerDay; ++n) {
    const double net = rl_day.readings.at(n) - rl_day.usage.at(n);
    if (n < 1020) {
      charged_cheap += net;
    } else {
      drained_dear -= net;
    }
  }
  std::printf("rl-blh energy shifted: %.2f kWh charged in the cheap zone, "
              "%.2f kWh drained in the dear zone\n", charged_cheap,
              drained_dear);
  std::printf("rl-blh savings this day: %.1f cents (low-pass: %.1f)\n",
              rl_day.savings_cents, lp_day.savings_cents);
  ctx.metric("rl_day_cc", rl_cc);
  ctx.metric("lp_day_cc", lp_cc);
  ctx.metric("rl_day_savings_cents", rl_day.savings_cents);
  std::printf("\npaper: Fig. 4a shows aperiodic rectangular pulses with the "
              "battery filled\nby the end of the cheap zone; Fig. 4b shows a "
              "flat reading whose envelope\nstill leaks the activity bumps.\n");
}

}  // namespace rlblh::bench
