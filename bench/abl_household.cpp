// Ablation: sensitivity of the 6-feature approximator to lumpy cheap-zone
// loads (a limitation the paper does not explore).
//
// Adding a large timer-driven overnight load (an EV charger) leaves the DP
// baseline — which sweeps the whole quantized state space — nearly
// unaffected, but visibly degrades the learned linear-Q policy: the value
// structure it must represent develops sharp features the quadratic basis
// cannot fit. This quantifies how far the paper's "40 unknowns" approach
// can be pushed before a richer approximator is needed (the paper's
// future-work direction).
#include <iostream>

#include "baselines/mdp.h"
#include "common.h"
#include "meter/household.h"
#include "util/table.h"

namespace {

using namespace rlblh;
using namespace rlblh::bench;

struct Row {
  double rl_sr = 0.0;
  double dp_sr = 0.0;
};

Row run(const HouseholdConfig& home, unsigned seed) {
  const TouSchedule prices = TouSchedule::srp_plan();
  Row row;
  {
    RlBlhPolicy policy(paper_config(15, 5.0, seed));
    Simulator sim = make_household_simulator(home, prices, 5.0, 1000 + seed);
    sim.run_days(policy, 60);
    row.rl_sr = greedy_sr(sim, policy, 30);
  }
  {
    MdpConfig config;
    config.decision_interval = 15;
    config.battery_capacity = 5.0;
    config.battery_levels = 128;
    MdpBlhPolicy policy(config);
    HouseholdModel trainer(home, 1100 + seed);
    for (int d = 0; d < 100; ++d) {
      policy.observe_training_day(trainer.generate_day(), prices);
    }
    policy.solve();
    Simulator sim = make_household_simulator(home, prices, 5.0, 1200 + seed);
    SavingRatioAccumulator sr;
    for (int d = 0; d < 30; ++d) {
      const DayResult day = sim.run_day(policy);
      sr.observe_day(day.usage, day.readings, prices);
    }
    row.dp_sr = sr.saving_ratio();
  }
  return row;
}

}  // namespace

int main() {
  using namespace rlblh;
  using namespace rlblh::bench;

  print_header("Ablation: lumpy cheap-zone loads (overnight EV charging)");

  HouseholdConfig plain;  // default: no EV
  HouseholdConfig with_ev;
  with_ev.ev_probability = 0.9;

  TablePrinter table({"household", "RL-BLH SR %", "DP (known dist.) SR %",
                      "RL / DP"});
  for (const auto& [name, home] :
       {std::pair<const char*, HouseholdConfig>{"default", plain},
        std::pair<const char*, HouseholdConfig>{"with EV charger", with_ev}}) {
    Row mean;
    for (const unsigned seed : {7u, 8u, 9u}) {
      const Row r = run(home, seed);
      mean.rl_sr += r.rl_sr / 3.0;
      mean.dp_sr += r.dp_sr / 3.0;
    }
    table.add_row({name, TablePrinter::num(100.0 * mean.rl_sr, 1),
                   TablePrinter::num(100.0 * mean.dp_sr, 1),
                   TablePrinter::num(mean.rl_sr / mean.dp_sr, 2)});
  }
  table.print(std::cout);
  std::printf("\nthe DP ceiling barely moves; the linear-Q policy loses a "
              "large share of it.\nRicher function approximation (the "
              "paper's future work) would close the gap.\n");
  return 0;
}
