// Ablation: sensitivity of the 6-feature approximator to lumpy cheap-zone
// loads (a limitation the paper does not explore).
//
// Adding a large timer-driven overnight load (an EV charger) leaves the DP
// baseline — which sweeps the whole quantized state space — nearly
// unaffected, but visibly degrades the learned linear-Q policy: the value
// structure it must represent develops sharp features the quadratic basis
// cannot fit. This quantifies how far the paper's "40 unknowns" approach
// can be pushed before a richer approximator is needed (the paper's
// future-work direction).
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "baselines/mdp.h"
#include "bench_main.h"
#include "common.h"
#include "meter/household_registry.h"
#include "util/table.h"

namespace rlblh::bench {

namespace {

struct Row {
  double rl_sr = 0.0;
  double dp_sr = 0.0;
};

Row run_household(const std::string& home, unsigned seed, int rl_train,
                  int rl_eval, int dp_train, int dp_eval) {
  Row row;
  {
    ScenarioSpec spec = paper_spec("rlblh", 15, 5.0, seed, 1000 + seed);
    spec.household = home;
    Scenario s = build_scenario(spec);
    auto& policy = *s.policy_as<RlBlhPolicy>();
    s.simulator.run_days(policy, static_cast<std::size_t>(rl_train));
    row.rl_sr = greedy_sr(s.simulator, policy, rl_eval);
  }
  {
    ScenarioSpec spec = paper_spec("mdp", 15, 5.0, seed, 1200 + seed);
    spec.household = home;
    spec.policy_params.set("levels", 128);
    Scenario s = build_scenario(spec);
    auto& policy = *s.policy_as<MdpBlhPolicy>();
    const TouSchedule& prices = s.simulator.prices();
    auto trainer = make_trace_source(home, {}, 1100 + seed);
    for (int d = 0; d < dp_train; ++d) {
      policy.observe_training_day(trainer->next_day(), prices);
    }
    policy.solve();
    SavingRatioAccumulator sr;
    s.simulator.run_days(policy, static_cast<std::size_t>(dp_eval),
                         [&](std::size_t, const DayResult& day) {
                           sr.observe_day(day.usage, day.readings, prices);
                         });
    row.dp_sr = sr.saving_ratio();
  }
  return row;
}

}  // namespace

const char* const kBenchName = "abl_household";

void bench_body(BenchContext& ctx) {
  print_header("Ablation: lumpy cheap-zone loads (overnight EV charging)");

  // Registry presets: "ev_owner" is the default household plus the
  // 0.9-probability overnight EV charger.
  const std::vector<std::pair<const char*, const char*>> homes = {
      {"default", "default"}, {"with EV charger", "ev_owner"}};
  const std::vector<unsigned> seeds = {7, 8, 9};
  const int kRlTrain = ctx.days(60, 5);
  const int kRlEval = ctx.days(30, 3);
  const int kDpTrain = ctx.days(100, 10);
  const int kDpEval = ctx.days(30, 3);

  const std::vector<Row> cells = ctx.sweep().run_grid(
      homes, seeds,
      [&](const std::pair<const char*, const char*>& home, unsigned seed) {
        return run_household(home.second, seed, kRlTrain, kRlEval, kDpTrain,
                             kDpEval);
      });
  ctx.count_cells(cells.size());
  ctx.count_days(cells.size() * static_cast<std::size_t>(
                                    kRlTrain + kRlEval + kDpTrain + kDpEval));

  TablePrinter table({"household", "RL-BLH SR %", "DP (known dist.) SR %",
                      "RL / DP"});
  for (std::size_t h = 0; h < homes.size(); ++h) {
    Row mean;
    for (std::size_t s = 0; s < seeds.size(); ++s) {
      const Row& r = cells[h * seeds.size() + s];
      mean.rl_sr += r.rl_sr / static_cast<double>(seeds.size());
      mean.dp_sr += r.dp_sr / static_cast<double>(seeds.size());
    }
    table.add_row({homes[h].first, TablePrinter::num(100.0 * mean.rl_sr, 1),
                   TablePrinter::num(100.0 * mean.dp_sr, 1),
                   TablePrinter::num(mean.rl_sr / mean.dp_sr, 2)});
    ctx.metric(std::string("rl_sr_") + homes[h].first, mean.rl_sr);
    ctx.metric(std::string("dp_sr_") + homes[h].first, mean.dp_sr);
  }
  table.print(std::cout);
  std::printf("\nthe DP ceiling barely moves; the linear-Q policy loses a "
              "large share of it.\nRicher function approximation (the "
              "paper's future work) would close the gap.\n");
}

}  // namespace rlblh::bench
