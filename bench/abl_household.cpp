// Ablation: sensitivity of the 6-feature approximator to lumpy cheap-zone
// loads (a limitation the paper does not explore).
//
// Adding a large timer-driven overnight load (an EV charger) leaves the DP
// baseline — which sweeps the whole quantized state space — nearly
// unaffected, but visibly degrades the learned linear-Q policy: the value
// structure it must represent develops sharp features the quadratic basis
// cannot fit. This quantifies how far the paper's "40 unknowns" approach
// can be pushed before a richer approximator is needed (the paper's
// future-work direction).
#include <iostream>
#include <utility>
#include <vector>

#include "baselines/mdp.h"
#include "bench_main.h"
#include "common.h"
#include "meter/household.h"
#include "util/table.h"

namespace rlblh::bench {

namespace {

struct Row {
  double rl_sr = 0.0;
  double dp_sr = 0.0;
};

Row run_household(const HouseholdConfig& home, unsigned seed, int rl_train,
                  int rl_eval, int dp_train, int dp_eval) {
  const TouSchedule prices = TouSchedule::srp_plan();
  Row row;
  {
    RlBlhPolicy policy(paper_config(15, 5.0, seed));
    Simulator sim = make_household_simulator(home, prices, 5.0, 1000 + seed);
    sim.run_days(policy, static_cast<std::size_t>(rl_train));
    row.rl_sr = greedy_sr(sim, policy, rl_eval);
  }
  {
    MdpConfig config;
    config.decision_interval = 15;
    config.battery_capacity = 5.0;
    config.battery_levels = 128;
    MdpBlhPolicy policy(config);
    HouseholdModel trainer(home, 1100 + seed);
    for (int d = 0; d < dp_train; ++d) {
      policy.observe_training_day(trainer.generate_day(), prices);
    }
    policy.solve();
    Simulator sim = make_household_simulator(home, prices, 5.0, 1200 + seed);
    SavingRatioAccumulator sr;
    sim.run_days(policy, static_cast<std::size_t>(dp_eval),
                 [&](std::size_t, const DayResult& day) {
                   sr.observe_day(day.usage, day.readings, prices);
                 });
    row.dp_sr = sr.saving_ratio();
  }
  return row;
}

}  // namespace

const char* const kBenchName = "abl_household";

void bench_body(BenchContext& ctx) {
  print_header("Ablation: lumpy cheap-zone loads (overnight EV charging)");

  HouseholdConfig plain;  // default: no EV
  HouseholdConfig with_ev;
  with_ev.ev_probability = 0.9;

  const std::vector<std::pair<const char*, HouseholdConfig>> homes = {
      {"default", plain}, {"with EV charger", with_ev}};
  const std::vector<unsigned> seeds = {7, 8, 9};
  const int kRlTrain = ctx.days(60, 5);
  const int kRlEval = ctx.days(30, 3);
  const int kDpTrain = ctx.days(100, 10);
  const int kDpEval = ctx.days(30, 3);

  const std::vector<Row> cells = ctx.sweep().run_grid(
      homes, seeds,
      [&](const std::pair<const char*, HouseholdConfig>& home, unsigned seed) {
        return run_household(home.second, seed, kRlTrain, kRlEval, kDpTrain,
                             kDpEval);
      });
  ctx.count_cells(cells.size());
  ctx.count_days(cells.size() * static_cast<std::size_t>(
                                    kRlTrain + kRlEval + kDpTrain + kDpEval));

  TablePrinter table({"household", "RL-BLH SR %", "DP (known dist.) SR %",
                      "RL / DP"});
  for (std::size_t h = 0; h < homes.size(); ++h) {
    Row mean;
    for (std::size_t s = 0; s < seeds.size(); ++s) {
      const Row& r = cells[h * seeds.size() + s];
      mean.rl_sr += r.rl_sr / static_cast<double>(seeds.size());
      mean.dp_sr += r.dp_sr / static_cast<double>(seeds.size());
    }
    table.add_row({homes[h].first, TablePrinter::num(100.0 * mean.rl_sr, 1),
                   TablePrinter::num(100.0 * mean.dp_sr, 1),
                   TablePrinter::num(mean.rl_sr / mean.dp_sr, 2)});
    ctx.metric(std::string("rl_sr_") + homes[h].first, mean.rl_sr);
    ctx.metric(std::string("dp_sr_") + homes[h].first, mean.dp_sr);
  }
  table.print(std::cout);
  std::printf("\nthe DP ceiling barely moves; the linear-Q policy loses a "
              "large share of it.\nRicher function approximation (the "
              "paper's future work) would close the gap.\n");
}

}  // namespace rlblh::bench
