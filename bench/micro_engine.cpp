// Single-core hot-path benchmark: raw SimEngine day-loop throughput.
//
// Unlike fleet_scaling (which measures the parallel fleet driver), this
// bench pins the per-core days/sec of the measurement-interval loop itself
// — trace synthesis, policy dispatch, battery stepping and cost accounting
// — one policy at a time on a single thread. Per-core day rate is the
// multiplier under every sweep and fleet number, so this is the figure the
// pulse-blocked hot path is gated on.
//
// Per policy it reports:
//   <name>_days_per_sec   timing metric (exempt from the drift gate)
//   <name>_savings_cents  deterministic total over the timed window
//                         (drift-gated: the blocked engine must reproduce
//                         the per-interval engine bit for bit)
#include "bench_main.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <span>
#include <memory>
#include <string>
#include <vector>

#include "baselines/lowpass.h"
#include "baselines/random_pulse.h"
#include "baselines/stepping.h"
#include "common.h"
#include "core/rlblh_policy.h"
#include "meter/household.h"
#include "sim/batch_engine.h"
#include "sim/engine.h"
#include "sim/experiment.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/table.h"

#include <iostream>

namespace rlblh::bench {

const char* const kBenchName = "micro_engine";

namespace {

/// One timed scenario: a policy factory plus the battery it expects.
struct Scenario {
  const char* name;
  double battery_kwh;
  std::function<std::unique_ptr<BlhPolicy>()> make_policy;
};

std::vector<Scenario> build_scenarios() {
  std::vector<Scenario> scenarios;
  scenarios.push_back({"rlblh", 5.0, [] {
                         RlBlhConfig config;
                         config.decision_interval = 15;
                         config.battery_capacity = 5.0;
                         config.seed = 2024;
                         // Isolate the engine loop: the REUSE/SYN replay
                         // heuristics train on virtual days outside it.
                         config.enable_reuse = false;
                         config.enable_synthetic = false;
                         return std::make_unique<RlBlhPolicy>(config);
                       }});
  scenarios.push_back({"random_pulse", 5.0, [] {
                         RlBlhConfig config;
                         config.decision_interval = 15;
                         config.battery_capacity = 5.0;
                         config.seed = 2025;
                         return std::make_unique<RandomPulsePolicy>(config);
                       }});
  scenarios.push_back({"stepping", 5.0, [] {
                         SteppingConfig config;
                         config.battery_capacity = 5.0;
                         return std::make_unique<SteppingPolicy>(config);
                       }});
  scenarios.push_back({"lowpass", 5.0, [] {
                         LowPassConfig config;
                         config.battery_capacity = 5.0;
                         return std::make_unique<LowPassPolicy>(config);
                       }});
  scenarios.push_back(
      {"none", 5.0, [] { return std::make_unique<PassthroughPolicy>(); }});
  return scenarios;
}

// ---- lockstep batch section ---------------------------------------------
//
// The batch engine's win is the per-interval arithmetic, so the batch
// record replays pre-synthesized usage: trace synthesis (~9 us/day) would
// otherwise dominate and hide the loop speedup behind Amdahl. The scalar
// anchor `batch_scalar_days_per_sec` runs the *identical* replay workload
// through SimEngine, making `batch_speedup_w8` an apples-to-apples loop
// ratio — that ratio is what scripts/bench_compare.py gates (>= 2x).
// The random-pulse policy is the measured workload: real 15-interval
// pulse blocks with one RNG draw per block, so the per-interval segment
// math — what the batch engine vectorizes — carries the day. Seeds are
// per lane and fixed, so per-lane cents are bitwise reproducible and
// drift-gated, and the bench asserts every batch lane's total equals its
// scalar twin's bit for bit.

/// Replays a fixed day pool cyclically; identical values on every pass.
/// Overrides both into-variants to copy straight out of the pool, so
/// neither engine pays a per-day DayTrace allocation for the replay.
class ReplaySource final : public TraceSource {
 public:
  explicit ReplaySource(const std::vector<DayTrace>* days)
      : days_(days) {}

  DayTrace next_day() override { return (*days_)[next_++ % days_->size()]; }
  void next_day_into(DayTrace& out) override {
    const DayTrace& day = (*days_)[next_++ % days_->size()];
    out.assign_zero(day.intervals());
    next_--;  // rewind: delegate the copy to the lane path
    next_day_into_lane(TraceLane(out));
  }
  void next_day_into_lane(TraceLane out) override {
    const DayTrace& day = (*days_)[next_++ % days_->size()];
    const double* src = day.values().data();
    if (out.stride() == 1) {
      std::memcpy(out.data(), src, day.intervals() * sizeof(double));
    } else {
      for (std::size_t n = 0; n < day.intervals(); ++n) out[n] = src[n];
    }
  }
  // Lane-native replay: the pool days are already contiguous, so the block
  // fills tile by tile — inside a tile the lane loop rewrites the same few
  // cache lines, so each line of the interval-major block is filled once
  // instead of once per lane. Values per lane are the strided default's.
  void next_days_into_lanes(std::span<TraceSource* const> sources,
                            double* data, std::size_t intervals) override {
    const std::size_t width = sources.size();
    constexpr std::size_t kTile = 32;
    for (std::size_t t = 0; t < intervals; t += kTile) {
      const std::size_t tile_end = std::min(intervals, t + kTile);
      for (std::size_t k = 0; k < width; ++k) {
        auto& lane = static_cast<ReplaySource&>(*sources[k]);
        const DayTrace& day = (*lane.days_)[lane.next_ % lane.days_->size()];
        const double* src = day.values().data();
        double* out = data + k;
        for (std::size_t n = t; n < tile_end; ++n) out[n * width] = src[n];
      }
    }
    for (std::size_t k = 0; k < width; ++k) {
      ++static_cast<ReplaySource&>(*sources[k]).next_;
    }
  }
  std::size_t intervals() const override {
    return days_->front().intervals();
  }
  double usage_cap() const override { return HouseholdConfig{}.usage_cap; }

 private:
  const std::vector<DayTrace>* days_;
  std::size_t next_ = 0;
};

std::unique_ptr<RandomPulsePolicy> make_batch_policy(std::size_t lane) {
  RlBlhConfig config;
  config.decision_interval = 15;
  config.battery_capacity = 5.0;
  config.seed = 2025 + lane;
  return std::make_unique<RandomPulsePolicy>(config);
}

/// Scalar reference over one lane's replay: total savings cents.
double run_batch_lane_scalar(SimEngine& engine,
                             const std::vector<DayTrace>* days,
                             const TouSchedule& prices, std::size_t lane,
                             int day_count) {
  ReplaySource source(days);
  Battery battery(5.0, 2.5);
  std::unique_ptr<RandomPulsePolicy> policy = make_batch_policy(lane);
  double cents = 0.0;
  engine.run_days(source, prices, battery, *policy,
                  static_cast<std::size_t>(day_count),
                  [&](std::size_t, const DayResult& day) {
                    cents += day.savings_cents;
                  });
  return cents;
}

void run_batch_section(BenchContext& ctx) {
  print_header("Lockstep batch engine vs scalar engine on replayed usage");
  TablePrinter table({"workload", "seconds", "days/sec", "savings cents"});
  constexpr std::size_t kMaxWidth = 16;
  const int kPoolDays = 32;
  const int kTimedDays = ctx.days(2000, 400);

  // Per-lane day pools, synthesized once outside every timed window.
  std::vector<std::vector<DayTrace>> pools(kMaxWidth);
  for (std::size_t k = 0; k < kMaxWidth; ++k) {
    HouseholdModel model(HouseholdConfig{},
                         derive_stream_seed(424242, k));
    pools[k].reserve(static_cast<std::size_t>(kPoolDays));
    for (int d = 0; d < kPoolDays; ++d) {
      pools[k].push_back(model.generate_day());
    }
  }
  const TouSchedule prices = TouSchedule::srp_plan();

  // Both sides of the speedup ratio are timed best-of-kReps: each
  // repetition restarts from fresh per-lane state (so its cents are
  // bitwise the first repetition's — asserted below), and the fastest
  // repetition stands. The ratio gates CI at a fixed floor, so a single
  // frequency dip on either side must not be able to fail (or pass) the
  // gate; the minimum over repetitions is the standard estimator for
  // that. The first repetition also pre-faults every engine buffer, so
  // the surviving windows time steady-state work only.
  constexpr int kReps = 3;

  // Scalar anchor: every lane's replay through SimEngine, one at a time.
  SimEngine scalar_engine;
  std::vector<double> scalar_cents(kMaxWidth);
  double scalar_seconds = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    std::vector<double> rep_cents(kMaxWidth);
    const auto scalar_start = std::chrono::steady_clock::now();
    for (std::size_t k = 0; k < kMaxWidth; ++k) {
      rep_cents[k] =
          run_batch_lane_scalar(scalar_engine, &pools[k], prices, k,
                                kTimedDays);
    }
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      scalar_start)
            .count();
    if (rep == 0) {
      scalar_cents = rep_cents;
      scalar_seconds = seconds;
    } else {
      RLBLH_REQUIRE(rep_cents == scalar_cents,
                    "micro_engine: scalar replay not deterministic");
      scalar_seconds = std::min(scalar_seconds, seconds);
    }
    ctx.count_days(static_cast<std::size_t>(kTimedDays) * kMaxWidth);
  }
  const double scalar_total_days =
      static_cast<double>(kTimedDays) * static_cast<double>(kMaxWidth);
  const double scalar_days_per_sec =
      scalar_seconds > 0.0 ? scalar_total_days / scalar_seconds : 0.0;
  ctx.metric("batch_scalar_days_per_sec", scalar_days_per_sec);
  double scalar_cents_total = 0.0;
  for (const double cents : scalar_cents) scalar_cents_total += cents;
  table.add_row({"scalar x16 (replay)", TablePrinter::num(scalar_seconds, 3),
                 TablePrinter::num(scalar_days_per_sec, 1),
                 TablePrinter::num(scalar_cents_total, 3)});

  std::size_t lane_mismatches = 0;
  for (const std::size_t width : {std::size_t{8}, kMaxWidth}) {
    BatchEngine engine;
    std::vector<double> batch_cents(width, 0.0);
    double seconds = 0.0;
    for (int rep = 0; rep < kReps; ++rep) {
      std::vector<ReplaySource> sources;
      std::vector<std::unique_ptr<RandomPulsePolicy>> policies;
      std::vector<TraceSource*> source_ptrs;
      std::vector<BlhPolicy*> policy_ptrs;
      sources.reserve(width);
      for (std::size_t k = 0; k < width; ++k) {
        sources.emplace_back(&pools[k]);
        policies.push_back(make_batch_policy(k));
        policy_ptrs.push_back(policies.back().get());
      }
      for (ReplaySource& source : sources) source_ptrs.push_back(&source);
      BatteryLanes batteries;
      batteries.reset(width, 5.0, 2.5);
      std::vector<double> rep_cents(width, 0.0);
      const auto start = std::chrono::steady_clock::now();
      for (int d = 0; d < kTimedDays; ++d) {
        const BatchDay& day =
            engine.run_day(source_ptrs, prices, batteries, policy_ptrs);
        for (std::size_t k = 0; k < width; ++k) {
          rep_cents[k] += day.savings_cents[k];
        }
      }
      const double rep_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      if (rep == 0) {
        batch_cents = rep_cents;
        seconds = rep_seconds;
      } else {
        RLBLH_REQUIRE(rep_cents == batch_cents,
                      "micro_engine: batch replay not deterministic");
        seconds = std::min(seconds, rep_seconds);
      }
      ctx.count_days(static_cast<std::size_t>(kTimedDays) * width);
    }
    const double total_days =
        static_cast<double>(kTimedDays) * static_cast<double>(width);
    const double days_per_sec = seconds > 0.0 ? total_days / seconds : 0.0;
    ctx.count_cells(width);

    // Lane-level bit check against the scalar anchor: per-lane cents sum in
    // day order on both sides, so any engine divergence shows up here.
    double cents_total = 0.0;
    for (std::size_t k = 0; k < width; ++k) {
      cents_total += batch_cents[k];
      if (batch_cents[k] != scalar_cents[k]) ++lane_mismatches;
    }
    const std::string w = "_w" + std::to_string(width);
    ctx.metric("batch_days_per_sec" + w, days_per_sec);
    ctx.metric("batch_savings_cents" + w, cents_total);
    ctx.metric("batch_speedup" + w,
               scalar_days_per_sec > 0.0 ? days_per_sec / scalar_days_per_sec
                                         : 0.0);
    table.add_row({"batch W=" + std::to_string(width),
                   TablePrinter::num(seconds, 3),
                   TablePrinter::num(days_per_sec, 1),
                   TablePrinter::num(cents_total, 3)});
  }
  ctx.metric("batch_lane_mismatches",
             static_cast<double>(lane_mismatches));
  if (lane_mismatches != 0) {
    std::fprintf(stderr,
                 "batch engine bit-identity violated: %zu lanes diverged "
                 "from their scalar twins\n",
                 lane_mismatches);
    std::exit(1);
  }
  table.print(std::cout);
  std::printf("\nReplayed usage (%d timed days per lane from a %d-day pool); "
              "synthesis excluded from every timed window; every batch "
              "lane's cents bitwise equal its scalar twin's.\n",
              kTimedDays, kPoolDays);
}

}  // namespace

void bench_body(BenchContext& ctx) {
  print_header("Single-core SimEngine day-loop throughput per policy");

  const int kWarmupDays = ctx.days(20, 2);
  const int kTimedDays = ctx.days(3000, 60);

  TablePrinter table({"policy", "seconds", "days/sec", "savings cents"});
  double scalar_section_days = 0.0;
  double scalar_section_seconds = 0.0;
  for (const Scenario& scenario : build_scenarios()) {
    std::unique_ptr<BlhPolicy> policy = scenario.make_policy();
    Simulator sim = make_household_simulator(HouseholdConfig{},
                                             TouSchedule::srp_plan(),
                                             scenario.battery_kwh, 9001);
    sim.run_days(*policy, static_cast<std::size_t>(kWarmupDays));

    double savings_cents = 0.0;
    const auto start = std::chrono::steady_clock::now();
    sim.run_days(*policy, static_cast<std::size_t>(kTimedDays),
                 [&](std::size_t, const DayResult& day) {
                   savings_cents += day.savings_cents;
                 });
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    const double days_per_sec =
        seconds > 0.0 ? static_cast<double>(kTimedDays) / seconds : 0.0;

    ctx.count_cells(1);
    ctx.count_days(static_cast<std::size_t>(kTimedDays));
    scalar_section_days += static_cast<double>(kTimedDays);
    scalar_section_seconds += seconds;
    table.add_row({scenario.name, TablePrinter::num(seconds, 3),
                   TablePrinter::num(days_per_sec, 1),
                   TablePrinter::num(savings_cents, 3)});
    ctx.metric(std::string(scenario.name) + "_days_per_sec", days_per_sec);
    ctx.metric(std::string(scenario.name) + "_savings_cents", savings_cents);
  }
  table.print(std::cout);

  // Overall scalar day-loop rate across the policy mix — the anchor
  // bench_compare.py's batch gate multiplies (batch W=8 must hold a
  // multiple of this committed figure).
  ctx.metric("scalar_days_per_sec",
             scalar_section_seconds > 0.0
                 ? scalar_section_days / scalar_section_seconds
                 : 0.0);

  std::printf("\nSingle-threaded day loop (%d timed days per policy after "
              "%d warm-up days); savings totals are deterministic and "
              "drift-gated.\n",
              kTimedDays, kWarmupDays);

  run_batch_section(ctx);
}

}  // namespace rlblh::bench
