// Single-core hot-path benchmark: raw SimEngine day-loop throughput.
//
// Unlike fleet_scaling (which measures the parallel fleet driver), this
// bench pins the per-core days/sec of the measurement-interval loop itself
// — trace synthesis, policy dispatch, battery stepping and cost accounting
// — one policy at a time on a single thread. Per-core day rate is the
// multiplier under every sweep and fleet number, so this is the figure the
// pulse-blocked hot path is gated on.
//
// Per policy it reports:
//   <name>_days_per_sec   timing metric (exempt from the drift gate)
//   <name>_savings_cents  deterministic total over the timed window
//                         (drift-gated: the blocked engine must reproduce
//                         the per-interval engine bit for bit)
#include "bench_main.h"

#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "baselines/lowpass.h"
#include "baselines/random_pulse.h"
#include "baselines/stepping.h"
#include "common.h"
#include "core/rlblh_policy.h"
#include "sim/experiment.h"
#include "util/table.h"

#include <iostream>

namespace rlblh::bench {

const char* const kBenchName = "micro_engine";

namespace {

/// One timed scenario: a policy factory plus the battery it expects.
struct Scenario {
  const char* name;
  double battery_kwh;
  std::function<std::unique_ptr<BlhPolicy>()> make_policy;
};

std::vector<Scenario> build_scenarios() {
  std::vector<Scenario> scenarios;
  scenarios.push_back({"rlblh", 5.0, [] {
                         RlBlhConfig config;
                         config.decision_interval = 15;
                         config.battery_capacity = 5.0;
                         config.seed = 2024;
                         // Isolate the engine loop: the REUSE/SYN replay
                         // heuristics train on virtual days outside it.
                         config.enable_reuse = false;
                         config.enable_synthetic = false;
                         return std::make_unique<RlBlhPolicy>(config);
                       }});
  scenarios.push_back({"random_pulse", 5.0, [] {
                         RlBlhConfig config;
                         config.decision_interval = 15;
                         config.battery_capacity = 5.0;
                         config.seed = 2025;
                         return std::make_unique<RandomPulsePolicy>(config);
                       }});
  scenarios.push_back({"stepping", 5.0, [] {
                         SteppingConfig config;
                         config.battery_capacity = 5.0;
                         return std::make_unique<SteppingPolicy>(config);
                       }});
  scenarios.push_back({"lowpass", 5.0, [] {
                         LowPassConfig config;
                         config.battery_capacity = 5.0;
                         return std::make_unique<LowPassPolicy>(config);
                       }});
  scenarios.push_back(
      {"none", 5.0, [] { return std::make_unique<PassthroughPolicy>(); }});
  return scenarios;
}

}  // namespace

void bench_body(BenchContext& ctx) {
  print_header("Single-core SimEngine day-loop throughput per policy");

  const int kWarmupDays = ctx.days(20, 2);
  const int kTimedDays = ctx.days(3000, 60);

  TablePrinter table({"policy", "seconds", "days/sec", "savings cents"});
  for (const Scenario& scenario : build_scenarios()) {
    std::unique_ptr<BlhPolicy> policy = scenario.make_policy();
    Simulator sim = make_household_simulator(HouseholdConfig{},
                                             TouSchedule::srp_plan(),
                                             scenario.battery_kwh, 9001);
    sim.run_days(*policy, static_cast<std::size_t>(kWarmupDays));

    double savings_cents = 0.0;
    const auto start = std::chrono::steady_clock::now();
    sim.run_days(*policy, static_cast<std::size_t>(kTimedDays),
                 [&](std::size_t, const DayResult& day) {
                   savings_cents += day.savings_cents;
                 });
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    const double days_per_sec =
        seconds > 0.0 ? static_cast<double>(kTimedDays) / seconds : 0.0;

    ctx.count_cells(1);
    ctx.count_days(static_cast<std::size_t>(kTimedDays));
    table.add_row({scenario.name, TablePrinter::num(seconds, 3),
                   TablePrinter::num(days_per_sec, 1),
                   TablePrinter::num(savings_cents, 3)});
    ctx.metric(std::string(scenario.name) + "_days_per_sec", days_per_sec);
    ctx.metric(std::string(scenario.name) + "_savings_cents", savings_cents);
  }
  table.print(std::cout);

  std::printf("\nSingle-threaded day loop (%d timed days per policy after "
              "%d warm-up days); savings totals are deterministic and "
              "drift-gated.\n",
              kTimedDays, kWarmupDays);
}

}  // namespace rlblh::bench
