// Figure 7 reproduction: effect of each heuristic separately, n_D = 15,
// b_M = 5 kWh.
//
//  (7a) error curve with the synthetic-data heuristic only vs none,
//  (7b) error curve with the reuse heuristic only vs none,
//  (7c) saving ratio achieved by {none, reuse only, synthetic only, all}.
//
// Paper values for (7c): 4.2 / 8.0 / 13.0 / 15.6 percent — the ordering
// none < reuse < synthetic < all is the shape to reproduce.
#include "common.h"
#include "util/table.h"

#include <iostream>
#include <vector>

namespace {

using namespace rlblh;
using namespace rlblh::bench;

struct Variant {
  const char* name;
  bool reuse;
  bool synthetic;
  double paper_sr;  // Figure 7c bar, %
};

struct Outcome {
  std::vector<double> error;  // normalized smoothed per-day error
  double sr = 0.0;            // greedy SR after training
};

std::vector<double> normalize(const std::vector<double>& raw) {
  std::vector<double> out(raw.size(), 0.0);
  const double scale = raw.empty() ? 1.0 : std::max(raw.front(), 1e-9);
  double acc = 0.0;
  std::size_t window = 0;
  for (std::size_t d = 0; d < raw.size(); ++d) {
    acc += raw[d];
    ++window;
    if (window > 10) {
      acc -= raw[d - 10];
      window = 10;
    }
    out[d] = (acc / static_cast<double>(window)) / scale;
  }
  return out;
}

Outcome run_variant(const Variant& variant, int train_days, int eval_days,
                    unsigned seed) {
  RlBlhConfig config = paper_config(15, 5.0, seed);
  config.enable_reuse = variant.reuse;
  config.enable_synthetic = variant.synthetic;
  RlBlhPolicy policy(config);
  Simulator sim = make_household_simulator(HouseholdConfig{},
                                           TouSchedule::srp_plan(), 5.0,
                                           400 + seed);
  sim.run_days(policy, static_cast<std::size_t>(train_days));
  Outcome out;
  out.sr = greedy_sr(sim, policy, eval_days);
  std::vector<double> raw;
  for (const auto& day : policy.day_stats()) {
    raw.push_back(day.mean_abs_td_error);
  }
  out.error = normalize(raw);
  return out;
}

}  // namespace

int main() {
  using namespace rlblh;
  using namespace rlblh::bench;

  print_header("Figure 7: effect of each heuristic, n_D = 15, b_M = 5 kWh");

  const Variant variants[] = {
      {"no heuristic", false, false, 4.2},
      {"reuse only", true, false, 8.0},
      {"synthetic only", false, true, 13.0},
      {"all heuristics", true, true, 15.6},
  };
  const int kTrainDays = 100;
  const int kEvalDays = 40;
  const unsigned kSeeds[] = {7, 8, 9};

  Outcome outcomes[4];
  double sr_mean[4] = {0, 0, 0, 0};
  for (int v = 0; v < 4; ++v) {
    for (const unsigned seed : kSeeds) {
      const Outcome o = run_variant(variants[v], kTrainDays, kEvalDays, seed);
      sr_mean[v] += o.sr / 3.0;
      if (seed == kSeeds[0]) outcomes[v] = o;
    }
  }

  std::printf("(a)(b) normalized smoothed error over the first %d days\n",
              kTrainDays);
  TablePrinter error_table({"day", "none", "reuse only", "syn only", "all"});
  for (int day : {1, 2, 4, 6, 8, 10, 15, 20, 30, 40, 60, 80, 100}) {
    const auto i = static_cast<std::size_t>(day - 1);
    error_table.add_row({std::to_string(day),
                         TablePrinter::num(outcomes[0].error[i], 3),
                         TablePrinter::num(outcomes[1].error[i], 3),
                         TablePrinter::num(outcomes[2].error[i], 3),
                         TablePrinter::num(outcomes[3].error[i], 3)});
  }
  error_table.print(std::cout);

  std::printf("\n(c) saving ratio after %d training days "
              "(mean of 3 seeds, greedy evaluation)\n", kTrainDays);
  TablePrinter sr_table({"variant", "SR %", "paper SR %"});
  for (int v = 0; v < 4; ++v) {
    sr_table.add_row({variants[v].name,
                      TablePrinter::num(100.0 * sr_mean[v], 1),
                      TablePrinter::num(variants[v].paper_sr, 1)});
  }
  sr_table.print(std::cout);
  std::printf("\nshape check: none < {reuse, synthetic} < all, as in the "
              "paper's bars.\n");
  return 0;
}
