// Figure 7 reproduction: effect of each heuristic separately, n_D = 15,
// b_M = 5 kWh.
//
//  (7a) error curve with the synthetic-data heuristic only vs none,
//  (7b) error curve with the reuse heuristic only vs none,
//  (7c) saving ratio achieved by {none, reuse only, synthetic only, all}.
//
// Paper values for (7c): 4.2 / 8.0 / 13.0 / 15.6 percent — the ordering
// none < reuse < synthetic < all is the shape to reproduce.
#include "bench_main.h"
#include "common.h"
#include "util/table.h"

#include <algorithm>
#include <iostream>
#include <vector>

namespace rlblh::bench {

namespace {

struct Variant {
  const char* name;
  bool reuse;
  bool synthetic;
  double paper_sr;  // Figure 7c bar, %
};

struct Outcome {
  std::vector<double> error;  // normalized smoothed per-day error
  double sr = 0.0;            // greedy SR after training
};

std::vector<double> normalize(const std::vector<double>& raw) {
  std::vector<double> out(raw.size(), 0.0);
  const double scale = raw.empty() ? 1.0 : std::max(raw.front(), 1e-9);
  double acc = 0.0;
  std::size_t window = 0;
  for (std::size_t d = 0; d < raw.size(); ++d) {
    acc += raw[d];
    ++window;
    if (window > 10) {
      acc -= raw[d - 10];
      window = 10;
    }
    out[d] = (acc / static_cast<double>(window)) / scale;
  }
  return out;
}

Outcome run_variant(const Variant& variant, int train_days, int eval_days,
                    unsigned seed) {
  ScenarioSpec spec = paper_spec("rlblh", 15, 5.0, seed, 400 + seed);
  spec.policy_params.set("reuse", variant.reuse);
  spec.policy_params.set("syn", variant.synthetic);
  Scenario scenario = build_scenario(spec);
  auto& policy = *scenario.policy_as<RlBlhPolicy>();
  scenario.simulator.run_days(policy, static_cast<std::size_t>(train_days));
  Outcome out;
  out.sr = greedy_sr(scenario.simulator, policy, eval_days);
  std::vector<double> raw;
  for (const auto& day : policy.day_stats()) {
    raw.push_back(day.mean_abs_td_error);
  }
  out.error = normalize(raw);
  return out;
}

std::string at_day(const std::vector<double>& series, int day) {
  const auto i = static_cast<std::size_t>(day - 1);
  return i < series.size() ? TablePrinter::num(series[i], 3) : "-";
}

}  // namespace

const char* const kBenchName = "fig7_heuristics";

void bench_body(BenchContext& ctx) {
  print_header("Figure 7: effect of each heuristic, n_D = 15, b_M = 5 kWh");

  const std::vector<Variant> variants = {
      {"no heuristic", false, false, 4.2},
      {"reuse only", true, false, 8.0},
      {"synthetic only", false, true, 13.0},
      {"all heuristics", true, true, 15.6},
  };
  const int kTrainDays = ctx.days(100, 8);
  const int kEvalDays = ctx.days(40, 4);
  const std::vector<unsigned> seeds = {7, 8, 9};

  const std::vector<Outcome> cells = ctx.sweep().run_grid(
      variants, seeds, [&](const Variant& variant, unsigned seed) {
        return run_variant(variant, kTrainDays, kEvalDays, seed);
      });
  ctx.count_cells(cells.size());
  ctx.count_days(cells.size() *
                 static_cast<std::size_t>(kTrainDays + kEvalDays));

  // Error curves from the first seed; SR averaged over all seeds, in grid
  // order.
  std::vector<double> sr_mean(variants.size(), 0.0);
  for (std::size_t v = 0; v < variants.size(); ++v) {
    for (std::size_t s = 0; s < seeds.size(); ++s) {
      sr_mean[v] +=
          cells[v * seeds.size() + s].sr / static_cast<double>(seeds.size());
    }
  }

  std::printf("(a)(b) normalized smoothed error over the first %d days\n",
              kTrainDays);
  TablePrinter error_table({"day", "none", "reuse only", "syn only", "all"});
  for (int day : {1, 2, 4, 6, 8, 10, 15, 20, 30, 40, 60, 80, 100}) {
    if (day > kTrainDays) break;
    error_table.add_row({std::to_string(day),
                         at_day(cells[0 * seeds.size()].error, day),
                         at_day(cells[1 * seeds.size()].error, day),
                         at_day(cells[2 * seeds.size()].error, day),
                         at_day(cells[3 * seeds.size()].error, day)});
  }
  error_table.print(std::cout);

  std::printf("\n(c) saving ratio after %d training days "
              "(mean of %zu seeds, greedy evaluation)\n",
              kTrainDays, seeds.size());
  TablePrinter sr_table({"variant", "SR %", "paper SR %"});
  for (std::size_t v = 0; v < variants.size(); ++v) {
    sr_table.add_row({variants[v].name,
                      TablePrinter::num(100.0 * sr_mean[v], 1),
                      TablePrinter::num(variants[v].paper_sr, 1)});
    ctx.metric(std::string("sr_") + variants[v].name, sr_mean[v]);
  }
  sr_table.print(std::cout);
  std::printf("\nshape check: none < {reuse, synthetic} < all, as in the "
              "paper's bars.\n");
}

}  // namespace rlblh::bench
