// Online adaptation to a change in the household's behaviour.
//
// Section VIII of the paper argues that RL-BLH "can handle the change in
// user behavioral pattern smoothly, since it keeps updating the weights at
// every time instance", whereas table-based MDP schemes must rebuild their
// model and decision table. This example trains the controller on a
// day-worker household, then switches the same household to a night-shift
// pattern mid-run and tracks the realized saving ratio in weekly windows:
// it dips at the shift and recovers as the weights re-adapt.
#include <cstdio>

#include "core/rlblh_policy.h"
#include "meter/household_registry.h"
#include "privacy/metrics.h"
#include "sim/scenario.h"

int main() {
  using namespace rlblh;

  // The run starts as a stock scenario (default day-worker household, SRP
  // prices, RL-BLH with permanent 1/sqrt(day) decay so adaptation never
  // stalls); the behaviour change below is applied to the live trace
  // source mid-run — exactly what a spec cannot describe.
  ScenarioSpec spec;
  spec.nd = 15;
  spec.battery_kwh = 5.0;
  spec.seed = 29;
  spec.hseed = 31;
  Scenario scenario = build_scenario(spec);
  auto& policy = *scenario.policy_as<RlBlhPolicy>();
  Simulator& sim = scenario.simulator;
  const TouSchedule& prices = sim.prices();

  HouseholdConfig night_shift = make_household_config("default", {});
  night_shift.wake_mean = 780.0;    // wakes ~13:00
  night_shift.leave_mean = 1260.0;  // leaves for the night shift ~21:00
  night_shift.back_mean = 1380.0;   // (returns after midnight; modeled as
  night_shift.sleep_mean = 1439.0;  //  active late and asleep into the day)

  auto& household = static_cast<HouseholdTraceSource&>(sim.source()).model();

  std::printf("Weekly saving ratio around a behaviour shift "
              "(night shift starts at day 43):\n\n");
  std::printf("  %-10s %-12s %-10s\n", "days", "pattern", "SR");

  const std::size_t kWeeks = 12;
  for (std::size_t week = 0; week < kWeeks; ++week) {
    if (week == 6) household.set_config(night_shift);
    SavingRatioAccumulator sr;
    for (int d = 0; d < 7; ++d) {
      const DayResult day = sim.run_day(policy);
      sr.observe_day(day.usage, day.readings, prices);
    }
    std::printf("  %3zu-%-4zu   %-12s %6.1f %%\n", week * 7 + 1,
                week * 7 + 7, week < 6 ? "day-worker" : "night-shift",
                100.0 * sr.saving_ratio());
  }

  std::printf("\nNo retraining step, no model rebuild: the weights track "
              "the new pattern online.\n");
  return 0;
}
