// Quickstart: protect one household with RL-BLH and report what it bought.
//
// Builds a synthetic household, the paper's SRP two-zone price plan and a
// 5 kWh battery; trains the RL-BLH controller online (with both learning
// heuristics) for a few weeks; then reports the three paper metrics —
// saving ratio, usage/reading correlation, and pairwise mutual information —
// against the unprotected meter.
#include <cstdio>

#include "baselines/lowpass.h"
#include "core/rlblh_policy.h"
#include "sim/experiment.h"

int main() {
  using namespace rlblh;

  // 1. The household and tariff.
  HouseholdConfig home;  // defaults: 1440 one-minute intervals, x_M = 0.08 kWh
  const TouSchedule prices = TouSchedule::srp_plan();

  // 2. The controller: paper defaults (a_M = 8 actions, alpha = 0.05,
  //    epsilon = 0.1, both decayed by 1/sqrt(day), REUSE + SYN heuristics).
  RlBlhConfig config;
  config.decision_interval = 15;  // n_D: pulse width in minutes
  config.battery_capacity = 5.0;  // b_M in kWh
  config.seed = 7;
  RlBlhPolicy policy(config);

  // 3. Simulate: ~3 weeks of online learning, then a measured month.
  Simulator sim = make_household_simulator(home, prices,
                                           config.battery_capacity,
                                           /*seed=*/42);
  EvaluationConfig eval;
  eval.train_days = 20;
  eval.eval_days = 30;
  const EvaluationResult rl = evaluate_policy(sim, policy, eval);

  std::printf("RL-BLH after %zu days of online learning:\n",
              policy.days_completed() - eval.eval_days);
  std::printf("  saving ratio        : %5.1f %%\n", 100.0 * rl.saving_ratio);
  std::printf("  daily savings       : %5.2f cents (bill %.1f -> %.1f)\n",
              rl.mean_daily_savings_cents, rl.mean_daily_usage_cost_cents,
              rl.mean_daily_bill_cents);
  std::printf("  correlation (CC)    : %7.4f\n", rl.mean_cc);
  std::printf("  mutual info (MI)    : %7.4f\n", rl.normalized_mi);
  std::printf("  battery violations  : %zu\n\n", rl.battery_violations);

  // 4. One concrete day, to see the rectangular pulses.
  const DayResult day = sim.run_day(policy);
  std::printf("One day of meter readings (kWh per minute, every 2 hours):\n");
  for (std::size_t n = 0; n < day.readings.intervals(); n += 120) {
    std::printf("  minute %4zu: usage %.4f -> meter %.4f (battery %.2f)\n", n,
                day.usage.at(n), day.readings.at(n), day.battery_levels[n]);
  }

  std::printf("\nmaximum possible two-zone savings with this battery: "
              "%.1f cents/day\n",
              two_zone_max_daily_savings(7.04, 21.09,
                                         config.battery_capacity));
  return 0;
}
