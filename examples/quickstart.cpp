// Quickstart: protect one household with RL-BLH and report what it bought.
//
// Describes the whole run as one ScenarioSpec — the default synthetic
// household, the paper's SRP two-zone price plan, a 5 kWh battery and the
// RL-BLH controller with its paper defaults (a_M = 8 actions, alpha = 0.05,
// epsilon = 0.1, both decayed by 1/sqrt(day), REUSE + SYN heuristics) —
// trains online for a few weeks, then reports the three paper metrics —
// saving ratio, usage/reading correlation, and pairwise mutual information —
// against the unprotected meter.
#include <cstdio>

#include "core/rlblh_policy.h"
#include "sim/scenario.h"

int main() {
  using namespace rlblh;

  // 1. The run, as a spec. The same run is reachable from the CLI with
  //    --scenario "policy=rlblh;nd=15;battery=5;seed=7;hseed=42;...".
  ScenarioSpec spec;
  spec.nd = 15;            // n_D: pulse width in minutes
  spec.battery_kwh = 5.0;  // b_M in kWh
  spec.seed = 7;
  spec.hseed = 42;
  spec.train_days = 20;  // ~3 weeks of online learning
  spec.eval_days = 30;   // then a measured month

  // 2. Build and run it: components come from the scenario registry.
  Scenario scenario = build_scenario(spec);
  auto& policy = *scenario.policy_as<RlBlhPolicy>();
  const EvaluationResult rl = run_scenario(scenario);

  std::printf("RL-BLH after %zu days of online learning:\n",
              policy.days_completed() - spec.eval_days);
  std::printf("  saving ratio        : %5.1f %%\n", 100.0 * rl.saving_ratio);
  std::printf("  daily savings       : %5.2f cents (bill %.1f -> %.1f)\n",
              rl.mean_daily_savings_cents, rl.mean_daily_usage_cost_cents,
              rl.mean_daily_bill_cents);
  std::printf("  correlation (CC)    : %7.4f\n", rl.mean_cc);
  std::printf("  mutual info (MI)    : %7.4f\n", rl.normalized_mi);
  std::printf("  battery violations  : %zu\n\n", rl.battery_violations);

  // 3. One concrete day, to see the rectangular pulses.
  const DayResult day = scenario.simulator.run_day(policy);
  std::printf("One day of meter readings (kWh per minute, every 2 hours):\n");
  for (std::size_t n = 0; n < day.readings.intervals(); n += 120) {
    std::printf("  minute %4zu: usage %.4f -> meter %.4f (battery %.2f)\n", n,
                day.usage.at(n), day.readings.at(n), day.battery_levels[n]);
  }

  std::printf("\nmaximum possible two-zone savings with this battery: "
              "%.1f cents/day\n",
              two_zone_max_daily_savings(7.04, 21.09, spec.battery_kwh));
  return 0;
}
