// Cost savings under different tariff structures.
//
// The paper argues (Sections I-II) that RL-BLH handles any per-interval
// price signal, not just the two-zone plan of its evaluation: the Q-learning
// target uses the actual r_n at every interval. This example trains the same
// controller under three tariffs — the SRP two-zone plan, a three-zone
// off/semi/peak plan, and hourly real-time pricing — and reports the saving
// ratio achieved under each. Tariffs are selected by pricing-registry name,
// so switching plans changes one field of the scenario spec.
#include <cstdio>
#include <string>

#include "sim/scenario.h"

namespace {

using namespace rlblh;

void run_plan(const std::string& label, const std::string& plan,
              const SpecParams& plan_params) {
  ScenarioSpec spec;
  spec.nd = 15;
  spec.battery_kwh = 5.0;
  spec.seed = 17;
  spec.hseed = 23;
  spec.train_days = 25;
  spec.eval_days = 40;
  spec.pricing = plan;
  spec.pricing_params = plan_params;

  Scenario scenario = build_scenario(spec);
  const TouSchedule& prices = scenario.simulator.prices();
  const EvaluationResult r = run_scenario(scenario);

  std::printf("  %-12s rates %5.2f..%5.2f c/kWh | SR %5.1f %% | "
              "%6.2f cents/day | CC %7.4f\n",
              label.c_str(), prices.min_rate(), prices.max_rate(),
              100.0 * r.saving_ratio, r.mean_daily_savings_cents, r.mean_cc);
}

}  // namespace

int main() {
  using namespace rlblh;

  std::printf("RL-BLH cost savings across tariff structures "
              "(5 kWh battery, n_D = 15):\n\n");

  run_plan("two-zone", "srp", {});
  run_plan("three-zone", "tou3", {});

  SpecParams rtp;
  rtp.set("seed", 5);
  run_plan("hourly-rtp", "rtp", rtp);

  std::printf("\nThe same controller (no re-configuration) exploits "
              "whatever price spread the tariff offers.\n");
  return 0;
}
