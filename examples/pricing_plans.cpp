// Cost savings under different tariff structures.
//
// The paper argues (Sections I-II) that RL-BLH handles any per-interval
// price signal, not just the two-zone plan of its evaluation: the Q-learning
// target uses the actual r_n at every interval. This example trains the same
// controller under three tariffs — the SRP two-zone plan, a three-zone
// off/semi/peak plan, and hourly real-time pricing — and reports the saving
// ratio achieved under each.
#include <cstdio>
#include <string>

#include "core/rlblh_policy.h"
#include "sim/experiment.h"
#include "util/rng.h"

namespace {

using namespace rlblh;

void run_plan(const std::string& label, const TouSchedule& prices) {
  RlBlhConfig config;
  config.battery_capacity = 5.0;
  config.decision_interval = 15;
  config.seed = 17;
  RlBlhPolicy policy(config);

  Simulator sim = make_household_simulator(HouseholdConfig{}, prices,
                                           config.battery_capacity,
                                           /*seed=*/23);
  EvaluationConfig eval;
  eval.train_days = 25;
  eval.eval_days = 40;
  const EvaluationResult r = evaluate_policy(sim, policy, eval);

  std::printf("  %-12s rates %5.2f..%5.2f c/kWh | SR %5.1f %% | "
              "%6.2f cents/day | CC %7.4f\n",
              label.c_str(), prices.min_rate(), prices.max_rate(),
              100.0 * r.saving_ratio, r.mean_daily_savings_cents, r.mean_cc);
}

}  // namespace

int main() {
  using namespace rlblh;

  std::printf("RL-BLH cost savings across tariff structures "
              "(5 kWh battery, n_D = 15):\n\n");

  run_plan("two-zone", TouSchedule::srp_plan());
  run_plan("three-zone",
           TouSchedule::three_zone(kIntervalsPerDay, 420, 960, 6.0, 12.0, 24.0));

  Rng rng(5);
  run_plan("hourly-rtp",
           TouSchedule::hourly_rtp(kIntervalsPerDay, 60, 5.0, 25.0, rng));

  std::printf("\nThe same controller (no re-configuration) exploits "
              "whatever price spread the tariff offers.\n");
  return 0;
}
