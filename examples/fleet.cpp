// Fleet: run many households at once, optionally lockstep-batched.
//
// Builds a fleet of ScenarioSpecs (a repeating mix of policies, household
// presets and pricing plans, or N copies of one --scenario spec), runs it
// through FleetSimulator, and prints the fleet aggregates. The execution
// knobs — worker threads, chunk size, and the lockstep batch width W — are
// plain flags, so this is also the quickest way to see the batching
// contract in action: every (threads, chunk, batch-width) combination
// produces bitwise-identical aggregates, only the wall clock moves.
//
//   fleet [--households N] [--train DAYS] [--eval DAYS] [--seed N]
//         [--threads T] [--batch-width W] [--scenario SPEC]
//
// Examples:
//   fleet --households 1000 --threads 8                 # scalar engine
//   fleet --households 1000 --threads 8 --batch-width 8 # SoA BatchEngine
//   fleet --scenario "policy=lowpass;battery=3" --households 64
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "sim/fleet.h"
#include "sim/scenario.h"

namespace {

using namespace rlblh;

struct Options {
  std::size_t households = 256;
  std::size_t train_days = 5;
  std::size_t eval_days = 5;
  std::uint64_t seed = 7;
  std::size_t threads = 0;      // 0: ThreadPool default
  std::size_t batch_width = 0;  // 0: scalar engine per household
  std::string scenario;         // empty: the built-in heterogeneous mix
};

[[noreturn]] void usage_and_exit(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--households N] [--train DAYS] [--eval DAYS]\n"
               "          [--seed N] [--threads T] [--batch-width W]\n"
               "          [--scenario SPEC]\n"
               "--batch-width W runs same-blueprint households through the\n"
               "lockstep SoA BatchEngine, W lanes at a time; results are\n"
               "bitwise identical to the scalar engine at any W.\n",
               argv0);
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage_and_exit(argv[0]);
      return argv[++i];
    };
    if (flag == "--households") {
      options.households = std::stoul(value());
    } else if (flag == "--train") {
      options.train_days = std::stoul(value());
    } else if (flag == "--eval") {
      options.eval_days = std::stoul(value());
    } else if (flag == "--seed") {
      options.seed = std::stoull(value());
    } else if (flag == "--threads") {
      options.threads = std::stoul(value());
    } else if (flag == "--batch-width") {
      options.batch_width = std::stoul(value());
    } else if (flag == "--scenario") {
      options.scenario = value();
    } else {
      usage_and_exit(argv[0]);
    }
  }
  if (options.households == 0) usage_and_exit(argv[0]);
  return options;
}

/// A homogeneous fleet batches perfectly (every household shares one
/// blueprint); the built-in mix shows the realistic case where only
/// same-blueprint households in a chunk share a BatchEngine pass.
std::vector<ScenarioSpec> build_fleet(const Options& options) {
  static const char* const kMixes[] = {
      "policy=rlblh;household=default;pricing=srp;battery=5",
      "policy=rlblh;household=ev_owner;pricing=srp;battery=7",
      "policy=lowpass;household=apartment;pricing=flat;battery=3",
      "policy=random_pulse;household=weekday_heavy;pricing=srp;battery=4",
  };
  const std::size_t n_mixes = sizeof(kMixes) / sizeof(kMixes[0]);
  std::vector<ScenarioSpec> fleet;
  fleet.reserve(options.households);
  for (std::size_t index = 0; index < options.households; ++index) {
    ScenarioSpec spec =
        options.scenario.empty()
            ? ScenarioSpec::parse(kMixes[index % n_mixes])
            : ScenarioSpec::parse(options.scenario);
    spec.train_days = options.train_days;
    spec.eval_days = options.eval_days;
    fleet.push_back(std::move(spec));
  }
  return fleet;
}

}  // namespace

int main(int argc, char** argv) {
  const Options options = parse(argc, argv);
  try {
    FleetOptions run;
    run.threads = options.threads;
    run.batch_width = options.batch_width;
    run.keep_households = false;  // aggregates only

    FleetSimulator fleet(build_fleet(options), run);
    std::printf("fleet: %zu households, %zu+%zu days, seed %llu, "
                "threads %zu, batch width %zu%s\n",
                fleet.size(), options.train_days, options.eval_days,
                static_cast<unsigned long long>(options.seed),
                options.threads, options.batch_width,
                options.batch_width > 1 ? " (lockstep SoA engine)"
                                        : " (scalar engine)");

    const auto start = std::chrono::steady_clock::now();
    const FleetResult result = fleet.run(options.seed);
    const double seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start)
                               .count();
    const double simulated_days =
        static_cast<double>(fleet.size()) *
        static_cast<double>(options.train_days + options.eval_days);

    std::printf("  wall               : %.3f s (%.0f household-days/s)\n",
                seconds, seconds > 0.0 ? simulated_days / seconds : 0.0);
    std::printf("  saving ratio       : mean %5.1f %% | p50 %5.1f %% | "
                "p95 %5.1f %%\n",
                100.0 * result.saving_ratio.mean,
                100.0 * result.saving_ratio.p50,
                100.0 * result.saving_ratio.p95);
    std::printf("  correlation (CC)   : mean %7.4f | p50 %7.4f | "
                "p95 %7.4f\n",
                result.mean_cc.mean, result.mean_cc.p50, result.mean_cc.p95);
    std::printf("  mutual info (MI)   : mean %7.4f | p50 %7.4f | "
                "p95 %7.4f\n",
                result.normalized_mi.mean, result.normalized_mi.p50,
                result.normalized_mi.p95);
    std::printf("  battery violations : %zu\n", result.battery_violations);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
  return 0;
}
