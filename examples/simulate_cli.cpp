// simulate_cli — a command-line front end over the whole library.
//
// Runs any of the implemented battery policies against a synthetic
// household (or a replayed CSV trace) under a chosen tariff, reports the
// paper's three metrics, and can persist/restore learned RL-BLH weights.
//
//   simulate_cli [--policy rl-blh|low-pass|stepping|random|none]
//                [--plan srp|flat|three-zone|rtp]
//                [--battery KWH] [--nd MINUTES] [--seed N]
//                [--train DAYS] [--eval DAYS]
//                [--trace-in usage.csv] [--trace-out day.csv]
//                [--load-weights w.txt] [--save-weights w.txt]
//                [--check-invariants] [--obs [--obs-out run.json]]
//
// Examples:
//   simulate_cli                                  # paper defaults
//   simulate_cli --policy low-pass --battery 3
//   simulate_cli --train 60 --save-weights w.txt  # learn, persist
//   simulate_cli --train 0 --load-weights w.txt   # deploy learned weights
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include <iostream>

#include "baselines/lowpass.h"
#include "baselines/random_pulse.h"
#include "baselines/stepping.h"
#include "core/rlblh_policy.h"
#include "core/serialize.h"
#include "obs/manifest.h"
#include "obs/metrics.h"
#include "obs/metrics_dump.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "sim/experiment.h"
#include "util/csv.h"

namespace {

using namespace rlblh;

struct Options {
  std::string policy = "rl-blh";
  std::string plan = "srp";
  double battery = 5.0;
  std::size_t nd = 15;
  unsigned seed = 7;
  std::size_t train = 30;
  std::size_t eval = 30;
  std::string trace_in;
  std::string trace_out;
  std::string load_weights;
  std::string save_weights;
  bool check_invariants = false;
  bool obs = false;
  std::string obs_out;
};

[[noreturn]] void usage_and_exit(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--policy rl-blh|low-pass|stepping|random|none]\n"
               "          [--plan srp|flat|three-zone|rtp] [--battery KWH]\n"
               "          [--nd MINUTES] [--seed N] [--train DAYS]\n"
               "          [--eval DAYS] [--trace-in usage.csv]\n"
               "          [--trace-out day.csv] [--load-weights w.txt]\n"
               "          [--save-weights w.txt] [--check-invariants]\n"
               "          [--obs] [--obs-out run.json]\n",
               argv0);
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage_and_exit(argv[0]);
      return argv[++i];
    };
    if (flag == "--policy") {
      options.policy = value();
    } else if (flag == "--plan") {
      options.plan = value();
    } else if (flag == "--battery") {
      options.battery = std::stod(value());
    } else if (flag == "--nd") {
      options.nd = std::stoul(value());
    } else if (flag == "--seed") {
      options.seed = static_cast<unsigned>(std::stoul(value()));
    } else if (flag == "--train") {
      options.train = std::stoul(value());
    } else if (flag == "--eval") {
      options.eval = std::stoul(value());
    } else if (flag == "--trace-in") {
      options.trace_in = value();
    } else if (flag == "--trace-out") {
      options.trace_out = value();
    } else if (flag == "--load-weights") {
      options.load_weights = value();
    } else if (flag == "--save-weights") {
      options.save_weights = value();
    } else if (flag == "--check-invariants") {
      options.check_invariants = true;
    } else if (flag == "--obs") {
      options.obs = true;
    } else if (flag == "--obs-out") {
      options.obs = true;
      options.obs_out = value();
    } else {
      usage_and_exit(argv[0]);
    }
  }
  return options;
}

TouSchedule make_plan(const std::string& plan, unsigned seed) {
  if (plan == "srp") return TouSchedule::srp_plan();
  if (plan == "flat") return TouSchedule::flat(kIntervalsPerDay, 11.0);
  if (plan == "three-zone") {
    return TouSchedule::three_zone(kIntervalsPerDay, 420, 960, 6.0, 12.0,
                                   24.0);
  }
  if (plan == "rtp") {
    Rng rng(seed);
    return TouSchedule::hourly_rtp(kIntervalsPerDay, 60, 5.0, 25.0, rng);
  }
  throw ConfigError("unknown plan '" + plan + "'");
}

std::unique_ptr<BlhPolicy> make_policy(const Options& options) {
  if (options.policy == "rl-blh" || options.policy == "random") {
    RlBlhConfig config;
    config.decision_interval = options.nd;
    config.battery_capacity = options.battery;
    config.seed = options.seed;
    if (options.policy == "random") {
      return std::make_unique<RandomPulsePolicy>(config);
    }
    auto policy = std::make_unique<RlBlhPolicy>(config);
    if (!options.load_weights.empty()) {
      policy->q() = load_weights_file(options.load_weights);
      std::printf("loaded weights from %s\n", options.load_weights.c_str());
    }
    return policy;
  }
  if (options.policy == "low-pass") {
    LowPassConfig config;
    config.battery_capacity = options.battery;
    return std::make_unique<LowPassPolicy>(config);
  }
  if (options.policy == "stepping") {
    SteppingConfig config;
    config.battery_capacity = options.battery;
    return std::make_unique<SteppingPolicy>(config);
  }
  if (options.policy == "none") {
    return std::make_unique<PassthroughPolicy>();
  }
  throw ConfigError("unknown policy '" + options.policy + "'");
}

}  // namespace

int main(int argc, char** argv) {
  Options options = parse(argc, argv);
  if (const char* env = std::getenv("RLBLH_OBS_OUT")) {
    if (env[0] != '\0') options.obs = true;
  }
  try {
    if (options.obs) {
      obs::registry().reset();
      obs::Tracer::instance().reset();
      obs::set_enabled(true);
    }
    const TouSchedule prices = make_plan(options.plan, options.seed);

    std::unique_ptr<TraceSource> source;
    if (options.trace_in.empty()) {
      source = std::make_unique<HouseholdTraceSource>(HouseholdConfig{},
                                                      options.seed + 1000);
    } else {
      source = std::make_unique<CsvTraceSource>(options.trace_in,
                                                kIntervalsPerDay,
                                                kDefaultUsageCap, true);
      std::printf("replaying %zu day(s) from %s\n",
                  static_cast<CsvTraceSource&>(*source).day_count(),
                  options.trace_in.c_str());
    }
    Simulator sim(std::move(source), prices,
                  Battery(options.battery, options.battery / 2.0));

    std::unique_ptr<BlhPolicy> policy = make_policy(options);
    std::printf("policy %s | plan %s | battery %.1f kWh | n_D %zu\n",
                std::string(policy->name()).c_str(), options.plan.c_str(),
                options.battery, options.nd);

    if (options.check_invariants) {
      // Pulse-shaped policies get the full Section II/III-B suite; the
      // non-pulse baselines (and passthrough) get the bound and accounting
      // checks only. The simulator then fails fast on the first bad day.
      const bool pulse_shaped =
          options.policy == "rl-blh" || options.policy == "random";
      InvariantCheckConfig check;
      check.battery_capacity = options.battery;
      check.usage_cap = pulse_shaped ? kDefaultUsageCap : 0.0;
      check.decision_interval = pulse_shaped ? options.nd : 0;
      check.expect_feasible = pulse_shaped;
      sim.enable_invariant_checks(check);
      std::printf("invariant checks: on (%s profile)\n",
                  pulse_shaped ? "pulse" : "bounds-only");
    }

    if (options.train > 0) {
      RLBLH_OBS_SPAN("cli.train");
      sim.run_days(*policy, options.train);
      std::printf("trained %zu day(s)\n", options.train);
    }

    EvaluationConfig eval;
    eval.train_days = 0;
    eval.eval_days = options.eval;
    const EvaluationResult r = [&] {
      RLBLH_OBS_SPAN("cli.evaluate");
      return evaluate_policy(sim, *policy, eval);
    }();
    std::printf("over %zu evaluation day(s):\n", options.eval);
    std::printf("  saving ratio : %6.2f %%\n", 100.0 * r.saving_ratio);
    std::printf("  daily savings: %6.2f cents (bill %.1f of %.1f)\n",
                r.mean_daily_savings_cents, r.mean_daily_bill_cents,
                r.mean_daily_usage_cost_cents);
    std::printf("  CC           : %7.4f\n", r.mean_cc);
    std::printf("  MI           : %7.4f\n", r.normalized_mi);
    std::printf("  violations   : %zu\n", r.battery_violations);

    if (!options.trace_out.empty()) {
      const DayResult day = sim.run_day(*policy);
      CsvTable table;
      table.header = {"n", "rate", "usage_kwh", "reading_kwh", "battery_kwh"};
      for (std::size_t n = 0; n < day.usage.intervals(); ++n) {
        table.rows.push_back({static_cast<double>(n), prices.rate(n),
                              day.usage.at(n), day.readings.at(n),
                              day.battery_levels[n]});
      }
      write_csv_file(options.trace_out, table);
      std::printf("wrote one day of traces to %s\n",
                  options.trace_out.c_str());
    }

    if (!options.save_weights.empty()) {
      auto* rl = dynamic_cast<RlBlhPolicy*>(policy.get());
      if (rl == nullptr) {
        std::fprintf(stderr, "--save-weights needs --policy rl-blh\n");
        return 2;
      }
      save_weights_file(options.save_weights, rl->q());
      std::printf("saved weights to %s\n", options.save_weights.c_str());
    }

    if (options.obs) {
      obs::RunInfo info;
      info.name = "simulate_cli";
      info.command.assign(argv, argv + argc);
      info.config = {
          {"policy", options.policy},
          {"plan", options.plan},
          {"battery_kwh", std::to_string(options.battery)},
          {"nd", std::to_string(options.nd)},
          {"seed", std::to_string(options.seed)},
          {"train_days", std::to_string(options.train)},
          {"eval_days", std::to_string(options.eval)},
      };
      const std::string path = options.obs_out.empty()
                                   ? obs::default_manifest_path(info.name)
                                   : options.obs_out;
      if (!obs::write_manifest_file(path, info)) return 1;
      std::printf("wrote run manifest to %s\n", path.c_str());
      obs::dump_all(std::cout);
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
  return 0;
}
