// simulate_cli — a command-line front end over the whole library.
//
// Runs any registered battery policy against a registered household preset
// (or a replayed CSV trace) under a registered tariff, reports the paper's
// three metrics, and can persist/restore learned RL-BLH weights. A whole
// run is one scenario-registry spec string; the legacy flags survive as
// overrides applied on top of the spec.
//
//   simulate_cli [--scenario "policy=rlblh;household=weekday_heavy;..."]
//                [--list]
//                [--policy rl-blh|low-pass|stepping|random|mdp|none]
//                [--plan srp|flat|three-zone|tou2|rtp]
//                [--battery KWH] [--nd MINUTES] [--seed N]
//                [--train DAYS] [--eval DAYS]
//                [--fleet N] [--threads T] [--batch-width W]
//                [--trace-in usage.csv] [--trace-out day.csv]
//                [--load-weights w.txt] [--save-weights w.txt]
//                [--check-invariants] [--obs [--obs-out run.json]]
//
// Examples:
//   simulate_cli                                  # paper defaults
//   simulate_cli --scenario "policy=lowpass;battery=3"
//   simulate_cli --list                           # registered components
//   simulate_cli --train 60 --save-weights w.txt  # learn, persist
//   simulate_cli --train 0 --load-weights w.txt   # deploy learned weights
//   simulate_cli --fleet 1000 --batch-width 8     # 1000 households, SoA
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include <iostream>

#include "baselines/policy_registry.h"
#include "core/rlblh_policy.h"
#include "core/serialize.h"
#include "meter/household_registry.h"
#include "obs/manifest.h"
#include "obs/metrics.h"
#include "obs/metrics_dump.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "pricing/pricing_registry.h"
#include "sim/fleet.h"
#include "sim/scenario.h"
#include "util/csv.h"

namespace {

using namespace rlblh;

struct Options {
  std::string scenario;
  bool list = false;
  std::optional<std::string> policy;
  std::optional<std::string> plan;
  std::optional<double> battery;
  std::optional<std::size_t> nd;
  std::optional<std::uint64_t> seed;
  std::optional<std::size_t> train;
  std::optional<std::size_t> eval;
  std::size_t fleet = 0;
  std::size_t threads = 0;
  std::size_t batch_width = 0;
  std::string trace_in;
  std::string trace_out;
  std::string load_weights;
  std::string save_weights;
  bool check_invariants = false;
  bool obs = false;
  std::string obs_out;
};

[[noreturn]] void usage_and_exit(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--scenario SPEC] [--list]\n"
               "          [--policy rl-blh|low-pass|stepping|random|mdp|none]\n"
               "          [--plan srp|flat|three-zone|tou2|rtp]\n"
               "          [--battery KWH]\n"
               "          [--nd MINUTES] [--seed N] [--train DAYS]\n"
               "          [--eval DAYS] [--fleet N] [--threads T]\n"
               "          [--batch-width W] [--trace-in usage.csv]\n"
               "          [--trace-out day.csv] [--load-weights w.txt]\n"
               "          [--save-weights w.txt] [--check-invariants]\n"
               "          [--obs] [--obs-out run.json]\n"
               "SPEC is `key=value;...` — e.g. \"policy=rlblh;"
               "household=weekday_heavy;pricing=tou2;battery=13.5\";\n"
               "dotted keys (policy.alpha=0.01, pricing.rate=11, "
               "household.scale=1.2) reach the component factories.\n"
               "--fleet N runs N households of the resolved spec through\n"
               "FleetSimulator (per-household seeds derived from --seed);\n"
               "--batch-width W adds the lockstep SoA BatchEngine, W lanes\n"
               "at a time — bitwise identical to the scalar engine.\n",
               argv0);
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage_and_exit(argv[0]);
      return argv[++i];
    };
    if (flag == "--scenario") {
      options.scenario = value();
    } else if (flag == "--list") {
      options.list = true;
    } else if (flag == "--policy") {
      options.policy = value();
    } else if (flag == "--plan") {
      options.plan = value();
    } else if (flag == "--battery") {
      options.battery = std::stod(value());
    } else if (flag == "--nd") {
      options.nd = std::stoul(value());
    } else if (flag == "--seed") {
      options.seed = std::stoull(value());
    } else if (flag == "--train") {
      options.train = std::stoul(value());
    } else if (flag == "--eval") {
      options.eval = std::stoul(value());
    } else if (flag == "--fleet") {
      options.fleet = std::stoul(value());
    } else if (flag == "--threads") {
      options.threads = std::stoul(value());
    } else if (flag == "--batch-width") {
      options.batch_width = std::stoul(value());
    } else if (flag == "--trace-in") {
      options.trace_in = value();
    } else if (flag == "--trace-out") {
      options.trace_out = value();
    } else if (flag == "--load-weights") {
      options.load_weights = value();
    } else if (flag == "--save-weights") {
      options.save_weights = value();
    } else if (flag == "--check-invariants") {
      options.check_invariants = true;
    } else if (flag == "--obs") {
      options.obs = true;
    } else if (flag == "--obs-out") {
      options.obs = true;
      options.obs_out = value();
    } else {
      usage_and_exit(argv[0]);
    }
  }
  return options;
}

void print_component_list() {
  const auto print = [](const char* family,
                        const std::vector<std::string>& names) {
    std::printf("%s:", family);
    for (const auto& name : names) std::printf(" %s", name.c_str());
    std::printf("\n");
  };
  print("policies", policy_names());
  print("households", household_names());
  print("pricing plans", pricing_names());
  std::printf("\nspec grammar: key=value;key2=value2 with top-level keys\n"
              "  policy household pricing battery nd seed hseed train eval "
              "mi\nand dotted component parameters "
              "(policy.alpha, household.scale, pricing.rate, ...).\n");
}

/// The effective spec: the --scenario string (or defaults), with any
/// explicit legacy flags layered on top.
ScenarioSpec resolve_spec(const Options& options) {
  ScenarioSpec spec = options.scenario.empty()
                          ? ScenarioSpec{}
                          : ScenarioSpec::parse(options.scenario);
  if (options.policy.has_value()) spec.policy = *options.policy;
  if (options.plan.has_value()) spec.pricing = *options.plan;
  if (options.battery.has_value()) spec.battery_kwh = *options.battery;
  if (options.nd.has_value()) spec.nd = *options.nd;
  if (options.seed.has_value()) spec.seed = *options.seed;
  if (options.train.has_value()) spec.train_days = *options.train;
  if (options.eval.has_value()) spec.eval_days = *options.eval;
  if (!options.trace_in.empty()) {
    spec.household = "csv";
    spec.household_params.set("path", options.trace_in);
  }
  // The rtp plan has always drawn its block rates from the run seed unless
  // told otherwise.
  if (spec.pricing == "rtp" && !spec.pricing_params.has("seed")) {
    spec.pricing_params.set("seed", spec.seed);
  }
  return spec;
}

bool pulse_shaped_policy(const std::string& name) {
  return name == "rlblh" || name == "rl-blh" || name == "random_pulse" ||
         name == "random-pulse" || name == "random";
}

/// --fleet N: N households of the resolved spec through FleetSimulator.
/// FleetSimulator re-seeds every household from (--seed, index), so the
/// fleet is reproducible from the same one number as the single run; the
/// homogeneous specs share one blueprint, so --batch-width W groups them
/// into W-lane lockstep BatchEngine passes (bitwise invisible by contract).
int run_fleet(const Options& options, const ScenarioSpec& spec) {
  FleetOptions run;
  run.threads = options.threads;
  run.batch_width = options.batch_width;
  run.keep_households = false;
  FleetSimulator fleet(std::vector<ScenarioSpec>(options.fleet, spec), run);

  std::printf("fleet of %zu x [%s] | threads %zu | batch width %zu (%s)\n",
              fleet.size(), spec.canonical().c_str(), options.threads,
              options.batch_width,
              options.batch_width > 1 ? "lockstep SoA engine"
                                      : "scalar engine");
  const FleetResult r = fleet.run(spec.seed);
  std::printf("over %zu evaluation day(s) per household:\n", spec.eval_days);
  std::printf("  saving ratio : mean %6.2f %% | p50 %6.2f %% | p95 %6.2f %%\n",
              100.0 * r.saving_ratio.mean, 100.0 * r.saving_ratio.p50,
              100.0 * r.saving_ratio.p95);
  std::printf("  CC           : mean %7.4f | p50 %7.4f | p95 %7.4f\n",
              r.mean_cc.mean, r.mean_cc.p50, r.mean_cc.p95);
  std::printf("  MI           : mean %7.4f | p50 %7.4f | p95 %7.4f\n",
              r.normalized_mi.mean, r.normalized_mi.p50, r.normalized_mi.p95);
  std::printf("  violations   : %zu\n", r.battery_violations);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options options = parse(argc, argv);
  if (const char* env = std::getenv("RLBLH_OBS_OUT")) {
    if (env[0] != '\0') options.obs = true;
  }
  try {
    if (options.list) {
      print_component_list();
      return 0;
    }
    if (options.obs) {
      obs::registry().reset();
      obs::Tracer::instance().reset();
      obs::set_enabled(true);
    }
    const ScenarioSpec spec = resolve_spec(options);
    if (options.batch_width > 1 && options.fleet == 0) {
      std::fprintf(stderr, "--batch-width needs --fleet N (the lockstep "
                           "engine batches households, not days)\n");
      return 2;
    }
    if (options.fleet > 0) {
      if (!options.trace_out.empty() || !options.load_weights.empty() ||
          !options.save_weights.empty() || options.check_invariants) {
        std::fprintf(stderr, "--fleet is incompatible with --trace-out, "
                             "--load/save-weights and --check-invariants\n");
        return 2;
      }
      return run_fleet(options, spec);
    }
    Scenario scenario = build_scenario(spec);
    Simulator& sim = scenario.simulator;
    const TouSchedule& prices = sim.prices();
    BlhPolicy& policy = *scenario.policy;

    if (!options.trace_in.empty()) {
      std::printf("replaying %zu day(s) from %s\n",
                  dynamic_cast<CsvTraceSource&>(sim.source()).day_count(),
                  options.trace_in.c_str());
    }
    if (!options.load_weights.empty()) {
      auto* rl = scenario.policy_as<RlBlhPolicy>();
      if (rl == nullptr) {
        std::fprintf(stderr, "--load-weights needs the rlblh policy\n");
        return 2;
      }
      rl->q() = load_weights_file(options.load_weights);
      std::printf("loaded weights from %s\n", options.load_weights.c_str());
    }
    std::printf("policy %s | plan %s | battery %.1f kWh | n_D %zu\n",
                std::string(policy.name()).c_str(), spec.pricing.c_str(),
                spec.battery_kwh, spec.nd);

    if (options.check_invariants) {
      // Pulse-shaped policies get the full Section II/III-B suite; the
      // non-pulse baselines (and passthrough) get the bound and accounting
      // checks only. The simulator then fails fast on the first bad day.
      const bool pulse_shaped = pulse_shaped_policy(spec.policy);
      InvariantCheckConfig check;
      check.battery_capacity = spec.battery_kwh;
      check.usage_cap = pulse_shaped ? kDefaultUsageCap : 0.0;
      check.decision_interval = pulse_shaped ? spec.nd : 0;
      check.expect_feasible = pulse_shaped;
      sim.enable_invariant_checks(check);
      std::printf("invariant checks: on (%s profile)\n",
                  pulse_shaped ? "pulse" : "bounds-only");
    }

    pretrain_if_needed(spec, prices, policy);
    if (spec.train_days > 0) {
      RLBLH_OBS_SPAN("cli.train");
      sim.run_days(policy, spec.train_days);
      std::printf("trained %zu day(s)\n", spec.train_days);
    }

    EvaluationConfig eval;
    eval.train_days = 0;
    eval.eval_days = spec.eval_days;
    eval.mi_levels = spec.mi_levels;
    const EvaluationResult r = [&] {
      RLBLH_OBS_SPAN("cli.evaluate");
      return evaluate_policy(sim, policy, eval);
    }();
    std::printf("over %zu evaluation day(s):\n", spec.eval_days);
    std::printf("  saving ratio : %6.2f %%\n", 100.0 * r.saving_ratio);
    std::printf("  daily savings: %6.2f cents (bill %.1f of %.1f)\n",
                r.mean_daily_savings_cents, r.mean_daily_bill_cents,
                r.mean_daily_usage_cost_cents);
    std::printf("  CC           : %7.4f\n", r.mean_cc);
    std::printf("  MI           : %7.4f\n", r.normalized_mi);
    std::printf("  violations   : %zu\n", r.battery_violations);

    if (!options.trace_out.empty()) {
      const DayResult day = sim.run_day(policy);
      CsvTable table;
      table.header = {"n", "rate", "usage_kwh", "reading_kwh", "battery_kwh"};
      for (std::size_t n = 0; n < day.usage.intervals(); ++n) {
        table.rows.push_back({static_cast<double>(n), prices.rate(n),
                              day.usage.at(n), day.readings.at(n),
                              day.battery_levels[n]});
      }
      write_csv_file(options.trace_out, table);
      std::printf("wrote one day of traces to %s\n",
                  options.trace_out.c_str());
    }

    if (!options.save_weights.empty()) {
      auto* rl = scenario.policy_as<RlBlhPolicy>();
      if (rl == nullptr) {
        std::fprintf(stderr, "--save-weights needs the rlblh policy\n");
        return 2;
      }
      save_weights_file(options.save_weights, rl->q());
      std::printf("saved weights to %s\n", options.save_weights.c_str());
    }

    if (options.obs) {
      obs::RunInfo info;
      info.name = "simulate_cli";
      info.command.assign(argv, argv + argc);
      info.config = {
          {"policy", spec.policy},
          {"household", spec.household},
          {"plan", spec.pricing},
          {"battery_kwh", std::to_string(spec.battery_kwh)},
          {"nd", std::to_string(spec.nd)},
          {"seed", std::to_string(spec.seed)},
          {"train_days", std::to_string(spec.train_days)},
          {"eval_days", std::to_string(spec.eval_days)},
          {"scenario", spec.canonical()},
      };
      const std::string path = options.obs_out.empty()
                                   ? obs::default_manifest_path(info.name)
                                   : options.obs_out;
      if (!obs::write_manifest_file(path, info)) return 1;
      std::printf("wrote run manifest to %s\n", path.c_str());
      obs::dump_all(std::cout);
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
  return 0;
}
