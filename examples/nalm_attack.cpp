// NALM attack demo: how many appliance signatures survive each BLH scheme?
//
// Mounts the edge-detection load-signature attack (privacy/nalm.h) on three
// meter streams of the same household days: the raw meter (no battery), the
// low-pass flattening baseline, and RL-BLH. Ground truth comes from the
// appliance models themselves, so the detection rate is exact. This is the
// adversary of the paper's Section I/III: the drop from raw to either BLH
// scheme is the high-frequency protection both provide.
#include <cstdio>
#include <memory>

#include "baselines/policy_registry.h"
#include "battery/battery.h"
#include "core/rlblh_policy.h"
#include "meter/household.h"
#include "meter/household_registry.h"
#include "privacy/nalm.h"
#include "privacy/occupancy_attack.h"
#include "sim/scenario.h"

namespace {

using namespace rlblh;

/// Runs one day of `usage` through a policy with its own battery and
/// returns the effective meter stream.
DayTrace meter_stream(BlhPolicy& policy, Battery& battery,
                      const DayTrace& usage, const TouSchedule& prices) {
  DayTrace readings(usage.intervals());
  policy.begin_day(prices);
  for (std::size_t n = 0; n < usage.intervals(); ++n) {
    const double x = usage.at(n);
    double effective;
    if (policy.passthrough()) {
      (void)policy.reading(n, battery.level());
      effective = x;
    } else {
      const double y = policy.reading(n, battery.level());
      effective = y + battery.step(y, x).grid_extra;
    }
    readings.set(n, effective);
    policy.observe_usage(n, x);
  }
  policy.end_day();
  return readings;
}

}  // namespace

int main() {
  using namespace rlblh;

  const double capacity = 5.0;

  // Train RL-BLH online for two weeks first (heuristics on). The warm-up
  // scenario owns the policy, so it stays in scope for the attack days.
  ScenarioSpec rl_spec;
  rl_spec.policy = "rlblh";
  rl_spec.nd = 10;
  rl_spec.battery_kwh = capacity;
  rl_spec.seed = 3;
  rl_spec.hseed = 11;
  Scenario warmup = build_scenario(rl_spec);
  const TouSchedule& prices = warmup.simulator.prices();
  auto& rlblh = *warmup.policy_as<RlBlhPolicy>();
  warmup.simulator.run_days(rlblh, 14);

  SpecParams lp_params;
  lp_params.set("battery", capacity);
  const std::unique_ptr<BlhPolicy> lowpass_built =
      make_policy("lowpass", lp_params);
  BlhPolicy& lowpass = *lowpass_built;
  const std::unique_ptr<BlhPolicy> raw_built = make_policy("none", {});
  BlhPolicy& raw = *raw_built;

  Battery rl_battery(capacity, capacity / 2);
  Battery lp_battery(capacity, capacity / 2);
  Battery raw_battery(capacity, capacity / 2);

  HouseholdModel household(make_household_config("default", {}), /*seed=*/99);
  const NalmConfig attack;

  NalmScore raw_score, lp_score, rl_score;
  OccupancyScore raw_occ, lp_occ, rl_occ;
  const int kDays = 10;
  for (int d = 0; d < kDays; ++d) {
    std::vector<ApplianceEvent> truth;
    Occupancy occupancy;
    const DayTrace usage = household.generate_day(&truth, &occupancy);

    const DayTrace raw_stream = meter_stream(raw, raw_battery, usage, prices);
    const DayTrace lp_stream = meter_stream(lowpass, lp_battery, usage, prices);
    const DayTrace rl_stream = meter_stream(rlblh, rl_battery, usage, prices);

    const auto fold = [&](NalmScore& acc, const DayTrace& stream) {
      const NalmScore s = nalm_score(nalm_detect(stream, attack), truth, attack);
      acc.true_events += s.true_events;
      acc.detected_events += s.detected_events;
      acc.matched += s.matched;
    };
    fold(raw_score, raw_stream);
    fold(lp_score, lp_stream);
    fold(rl_score, rl_stream);

    raw_occ.merge(score_activity(infer_activity(raw_stream), occupancy));
    lp_occ.merge(score_activity(infer_activity(lp_stream), occupancy));
    rl_occ.merge(score_activity(infer_activity(rl_stream), occupancy));
  }

  std::printf("NALM edge-detection attack over %d days "
              "(threshold %.3f kWh/min):\n\n",
              kDays, attack.edge_threshold);
  std::printf("  %-10s %14s %14s %14s\n", "stream", "true events",
              "detections", "recovered");
  const auto row = [](const char* name, const NalmScore& s) {
    std::printf("  %-10s %14zu %14zu %11.1f %%\n", name, s.true_events,
                s.detected_events, 100.0 * s.detection_rate());
  };
  row("raw", raw_score);
  row("low-pass", lp_score);
  row("rl-blh", rl_score);

  std::printf("\nOccupancy-inference attack (rolling-mean threshold; "
              "0.5 = chance):\n\n");
  std::printf("  %-10s %20s\n", "stream", "balanced accuracy");
  const auto occ_row = [](const char* name, const OccupancyScore& s) {
    std::printf("  %-10s %19.1f %%\n", name, 100.0 * s.balanced_accuracy());
  };
  occ_row("raw", raw_occ);
  occ_row("low-pass", lp_occ);
  occ_row("rl-blh", rl_occ);

  std::printf("\nBoth BLH schemes suppress the load signatures the raw "
              "stream exposes, and both\npush the occupancy adversary from "
              "~80%% recovery down toward chance. With a\n5 kWh battery the "
              "flattener hides the envelope well too; the schemes separate\n"
              "at smaller batteries and under the CC metric (fig5 bench).\n");
  return 0;
}
