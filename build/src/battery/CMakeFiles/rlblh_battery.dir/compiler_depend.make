# Empty compiler generated dependencies file for rlblh_battery.
# This may be replaced when dependencies are built.
