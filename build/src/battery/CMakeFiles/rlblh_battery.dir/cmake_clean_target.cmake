file(REMOVE_RECURSE
  "librlblh_battery.a"
)
