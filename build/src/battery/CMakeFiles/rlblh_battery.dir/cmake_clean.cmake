file(REMOVE_RECURSE
  "CMakeFiles/rlblh_battery.dir/battery.cc.o"
  "CMakeFiles/rlblh_battery.dir/battery.cc.o.d"
  "librlblh_battery.a"
  "librlblh_battery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlblh_battery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
