
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/lowpass.cc" "src/baselines/CMakeFiles/rlblh_baselines.dir/lowpass.cc.o" "gcc" "src/baselines/CMakeFiles/rlblh_baselines.dir/lowpass.cc.o.d"
  "/root/repo/src/baselines/mdp.cc" "src/baselines/CMakeFiles/rlblh_baselines.dir/mdp.cc.o" "gcc" "src/baselines/CMakeFiles/rlblh_baselines.dir/mdp.cc.o.d"
  "/root/repo/src/baselines/random_pulse.cc" "src/baselines/CMakeFiles/rlblh_baselines.dir/random_pulse.cc.o" "gcc" "src/baselines/CMakeFiles/rlblh_baselines.dir/random_pulse.cc.o.d"
  "/root/repo/src/baselines/stepping.cc" "src/baselines/CMakeFiles/rlblh_baselines.dir/stepping.cc.o" "gcc" "src/baselines/CMakeFiles/rlblh_baselines.dir/stepping.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rlblh_core.dir/DependInfo.cmake"
  "/root/repo/build/src/pricing/CMakeFiles/rlblh_pricing.dir/DependInfo.cmake"
  "/root/repo/build/src/meter/CMakeFiles/rlblh_meter.dir/DependInfo.cmake"
  "/root/repo/build/src/rl/CMakeFiles/rlblh_rl.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rlblh_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
