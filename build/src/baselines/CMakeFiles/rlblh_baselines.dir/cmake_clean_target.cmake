file(REMOVE_RECURSE
  "librlblh_baselines.a"
)
