# Empty dependencies file for rlblh_baselines.
# This may be replaced when dependencies are built.
