file(REMOVE_RECURSE
  "CMakeFiles/rlblh_baselines.dir/lowpass.cc.o"
  "CMakeFiles/rlblh_baselines.dir/lowpass.cc.o.d"
  "CMakeFiles/rlblh_baselines.dir/mdp.cc.o"
  "CMakeFiles/rlblh_baselines.dir/mdp.cc.o.d"
  "CMakeFiles/rlblh_baselines.dir/random_pulse.cc.o"
  "CMakeFiles/rlblh_baselines.dir/random_pulse.cc.o.d"
  "CMakeFiles/rlblh_baselines.dir/stepping.cc.o"
  "CMakeFiles/rlblh_baselines.dir/stepping.cc.o.d"
  "librlblh_baselines.a"
  "librlblh_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlblh_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
