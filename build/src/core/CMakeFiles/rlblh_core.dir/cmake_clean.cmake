file(REMOVE_RECURSE
  "CMakeFiles/rlblh_core.dir/config.cc.o"
  "CMakeFiles/rlblh_core.dir/config.cc.o.d"
  "CMakeFiles/rlblh_core.dir/features.cc.o"
  "CMakeFiles/rlblh_core.dir/features.cc.o.d"
  "CMakeFiles/rlblh_core.dir/qfunction.cc.o"
  "CMakeFiles/rlblh_core.dir/qfunction.cc.o.d"
  "CMakeFiles/rlblh_core.dir/rlblh_policy.cc.o"
  "CMakeFiles/rlblh_core.dir/rlblh_policy.cc.o.d"
  "CMakeFiles/rlblh_core.dir/serialize.cc.o"
  "CMakeFiles/rlblh_core.dir/serialize.cc.o.d"
  "librlblh_core.a"
  "librlblh_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlblh_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
