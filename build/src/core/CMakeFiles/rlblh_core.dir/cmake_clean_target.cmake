file(REMOVE_RECURSE
  "librlblh_core.a"
)
