# Empty compiler generated dependencies file for rlblh_core.
# This may be replaced when dependencies are built.
