
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/config.cc" "src/core/CMakeFiles/rlblh_core.dir/config.cc.o" "gcc" "src/core/CMakeFiles/rlblh_core.dir/config.cc.o.d"
  "/root/repo/src/core/features.cc" "src/core/CMakeFiles/rlblh_core.dir/features.cc.o" "gcc" "src/core/CMakeFiles/rlblh_core.dir/features.cc.o.d"
  "/root/repo/src/core/qfunction.cc" "src/core/CMakeFiles/rlblh_core.dir/qfunction.cc.o" "gcc" "src/core/CMakeFiles/rlblh_core.dir/qfunction.cc.o.d"
  "/root/repo/src/core/rlblh_policy.cc" "src/core/CMakeFiles/rlblh_core.dir/rlblh_policy.cc.o" "gcc" "src/core/CMakeFiles/rlblh_core.dir/rlblh_policy.cc.o.d"
  "/root/repo/src/core/serialize.cc" "src/core/CMakeFiles/rlblh_core.dir/serialize.cc.o" "gcc" "src/core/CMakeFiles/rlblh_core.dir/serialize.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rlblh_util.dir/DependInfo.cmake"
  "/root/repo/build/src/pricing/CMakeFiles/rlblh_pricing.dir/DependInfo.cmake"
  "/root/repo/build/src/meter/CMakeFiles/rlblh_meter.dir/DependInfo.cmake"
  "/root/repo/build/src/rl/CMakeFiles/rlblh_rl.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
