
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rl/linalg.cc" "src/rl/CMakeFiles/rlblh_rl.dir/linalg.cc.o" "gcc" "src/rl/CMakeFiles/rlblh_rl.dir/linalg.cc.o.d"
  "/root/repo/src/rl/linear.cc" "src/rl/CMakeFiles/rlblh_rl.dir/linear.cc.o" "gcc" "src/rl/CMakeFiles/rlblh_rl.dir/linear.cc.o.d"
  "/root/repo/src/rl/lspi.cc" "src/rl/CMakeFiles/rlblh_rl.dir/lspi.cc.o" "gcc" "src/rl/CMakeFiles/rlblh_rl.dir/lspi.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rlblh_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
