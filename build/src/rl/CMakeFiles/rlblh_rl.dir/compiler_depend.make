# Empty compiler generated dependencies file for rlblh_rl.
# This may be replaced when dependencies are built.
