file(REMOVE_RECURSE
  "librlblh_rl.a"
)
