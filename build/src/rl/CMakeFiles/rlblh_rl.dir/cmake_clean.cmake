file(REMOVE_RECURSE
  "CMakeFiles/rlblh_rl.dir/linalg.cc.o"
  "CMakeFiles/rlblh_rl.dir/linalg.cc.o.d"
  "CMakeFiles/rlblh_rl.dir/linear.cc.o"
  "CMakeFiles/rlblh_rl.dir/linear.cc.o.d"
  "CMakeFiles/rlblh_rl.dir/lspi.cc.o"
  "CMakeFiles/rlblh_rl.dir/lspi.cc.o.d"
  "librlblh_rl.a"
  "librlblh_rl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlblh_rl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
