file(REMOVE_RECURSE
  "CMakeFiles/rlblh_meter.dir/appliances.cc.o"
  "CMakeFiles/rlblh_meter.dir/appliances.cc.o.d"
  "CMakeFiles/rlblh_meter.dir/household.cc.o"
  "CMakeFiles/rlblh_meter.dir/household.cc.o.d"
  "CMakeFiles/rlblh_meter.dir/trace.cc.o"
  "CMakeFiles/rlblh_meter.dir/trace.cc.o.d"
  "CMakeFiles/rlblh_meter.dir/usage_stats.cc.o"
  "CMakeFiles/rlblh_meter.dir/usage_stats.cc.o.d"
  "librlblh_meter.a"
  "librlblh_meter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlblh_meter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
