# Empty compiler generated dependencies file for rlblh_meter.
# This may be replaced when dependencies are built.
