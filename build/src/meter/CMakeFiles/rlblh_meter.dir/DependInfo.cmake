
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/meter/appliances.cc" "src/meter/CMakeFiles/rlblh_meter.dir/appliances.cc.o" "gcc" "src/meter/CMakeFiles/rlblh_meter.dir/appliances.cc.o.d"
  "/root/repo/src/meter/household.cc" "src/meter/CMakeFiles/rlblh_meter.dir/household.cc.o" "gcc" "src/meter/CMakeFiles/rlblh_meter.dir/household.cc.o.d"
  "/root/repo/src/meter/trace.cc" "src/meter/CMakeFiles/rlblh_meter.dir/trace.cc.o" "gcc" "src/meter/CMakeFiles/rlblh_meter.dir/trace.cc.o.d"
  "/root/repo/src/meter/usage_stats.cc" "src/meter/CMakeFiles/rlblh_meter.dir/usage_stats.cc.o" "gcc" "src/meter/CMakeFiles/rlblh_meter.dir/usage_stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rlblh_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
