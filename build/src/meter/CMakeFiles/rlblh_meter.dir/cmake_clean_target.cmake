file(REMOVE_RECURSE
  "librlblh_meter.a"
)
