file(REMOVE_RECURSE
  "librlblh_privacy.a"
)
