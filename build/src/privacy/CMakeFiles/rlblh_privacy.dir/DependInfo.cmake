
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/privacy/correlation.cc" "src/privacy/CMakeFiles/rlblh_privacy.dir/correlation.cc.o" "gcc" "src/privacy/CMakeFiles/rlblh_privacy.dir/correlation.cc.o.d"
  "/root/repo/src/privacy/metrics.cc" "src/privacy/CMakeFiles/rlblh_privacy.dir/metrics.cc.o" "gcc" "src/privacy/CMakeFiles/rlblh_privacy.dir/metrics.cc.o.d"
  "/root/repo/src/privacy/mutual_information.cc" "src/privacy/CMakeFiles/rlblh_privacy.dir/mutual_information.cc.o" "gcc" "src/privacy/CMakeFiles/rlblh_privacy.dir/mutual_information.cc.o.d"
  "/root/repo/src/privacy/nalm.cc" "src/privacy/CMakeFiles/rlblh_privacy.dir/nalm.cc.o" "gcc" "src/privacy/CMakeFiles/rlblh_privacy.dir/nalm.cc.o.d"
  "/root/repo/src/privacy/occupancy_attack.cc" "src/privacy/CMakeFiles/rlblh_privacy.dir/occupancy_attack.cc.o" "gcc" "src/privacy/CMakeFiles/rlblh_privacy.dir/occupancy_attack.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rlblh_util.dir/DependInfo.cmake"
  "/root/repo/build/src/meter/CMakeFiles/rlblh_meter.dir/DependInfo.cmake"
  "/root/repo/build/src/pricing/CMakeFiles/rlblh_pricing.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
