# Empty compiler generated dependencies file for rlblh_privacy.
# This may be replaced when dependencies are built.
