file(REMOVE_RECURSE
  "CMakeFiles/rlblh_privacy.dir/correlation.cc.o"
  "CMakeFiles/rlblh_privacy.dir/correlation.cc.o.d"
  "CMakeFiles/rlblh_privacy.dir/metrics.cc.o"
  "CMakeFiles/rlblh_privacy.dir/metrics.cc.o.d"
  "CMakeFiles/rlblh_privacy.dir/mutual_information.cc.o"
  "CMakeFiles/rlblh_privacy.dir/mutual_information.cc.o.d"
  "CMakeFiles/rlblh_privacy.dir/nalm.cc.o"
  "CMakeFiles/rlblh_privacy.dir/nalm.cc.o.d"
  "CMakeFiles/rlblh_privacy.dir/occupancy_attack.cc.o"
  "CMakeFiles/rlblh_privacy.dir/occupancy_attack.cc.o.d"
  "librlblh_privacy.a"
  "librlblh_privacy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlblh_privacy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
