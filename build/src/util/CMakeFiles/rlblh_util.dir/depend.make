# Empty dependencies file for rlblh_util.
# This may be replaced when dependencies are built.
