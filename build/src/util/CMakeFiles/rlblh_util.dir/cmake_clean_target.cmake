file(REMOVE_RECURSE
  "librlblh_util.a"
)
