file(REMOVE_RECURSE
  "CMakeFiles/rlblh_util.dir/csv.cc.o"
  "CMakeFiles/rlblh_util.dir/csv.cc.o.d"
  "CMakeFiles/rlblh_util.dir/empirical_dist.cc.o"
  "CMakeFiles/rlblh_util.dir/empirical_dist.cc.o.d"
  "CMakeFiles/rlblh_util.dir/histogram.cc.o"
  "CMakeFiles/rlblh_util.dir/histogram.cc.o.d"
  "CMakeFiles/rlblh_util.dir/running_stats.cc.o"
  "CMakeFiles/rlblh_util.dir/running_stats.cc.o.d"
  "CMakeFiles/rlblh_util.dir/table.cc.o"
  "CMakeFiles/rlblh_util.dir/table.cc.o.d"
  "librlblh_util.a"
  "librlblh_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlblh_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
