file(REMOVE_RECURSE
  "librlblh_pricing.a"
)
