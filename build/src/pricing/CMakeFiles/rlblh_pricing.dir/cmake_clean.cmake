file(REMOVE_RECURSE
  "CMakeFiles/rlblh_pricing.dir/tou.cc.o"
  "CMakeFiles/rlblh_pricing.dir/tou.cc.o.d"
  "librlblh_pricing.a"
  "librlblh_pricing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlblh_pricing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
