# Empty compiler generated dependencies file for rlblh_pricing.
# This may be replaced when dependencies are built.
