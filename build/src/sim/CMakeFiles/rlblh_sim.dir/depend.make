# Empty dependencies file for rlblh_sim.
# This may be replaced when dependencies are built.
