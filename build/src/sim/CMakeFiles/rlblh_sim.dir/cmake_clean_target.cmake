file(REMOVE_RECURSE
  "librlblh_sim.a"
)
