file(REMOVE_RECURSE
  "CMakeFiles/rlblh_sim.dir/experiment.cc.o"
  "CMakeFiles/rlblh_sim.dir/experiment.cc.o.d"
  "CMakeFiles/rlblh_sim.dir/simulator.cc.o"
  "CMakeFiles/rlblh_sim.dir/simulator.cc.o.d"
  "librlblh_sim.a"
  "librlblh_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlblh_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
