file(REMOVE_RECURSE
  "CMakeFiles/core_tests.dir/core/config_test.cc.o"
  "CMakeFiles/core_tests.dir/core/config_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/double_q_test.cc.o"
  "CMakeFiles/core_tests.dir/core/double_q_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/features_test.cc.o"
  "CMakeFiles/core_tests.dir/core/features_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/qfunction_test.cc.o"
  "CMakeFiles/core_tests.dir/core/qfunction_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/rlblh_policy_test.cc.o"
  "CMakeFiles/core_tests.dir/core/rlblh_policy_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/serialize_test.cc.o"
  "CMakeFiles/core_tests.dir/core/serialize_test.cc.o.d"
  "core_tests"
  "core_tests.pdb"
  "core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
