file(REMOVE_RECURSE
  "CMakeFiles/baselines_tests.dir/baselines/lowpass_test.cc.o"
  "CMakeFiles/baselines_tests.dir/baselines/lowpass_test.cc.o.d"
  "CMakeFiles/baselines_tests.dir/baselines/mdp_test.cc.o"
  "CMakeFiles/baselines_tests.dir/baselines/mdp_test.cc.o.d"
  "CMakeFiles/baselines_tests.dir/baselines/random_pulse_test.cc.o"
  "CMakeFiles/baselines_tests.dir/baselines/random_pulse_test.cc.o.d"
  "CMakeFiles/baselines_tests.dir/baselines/stepping_test.cc.o"
  "CMakeFiles/baselines_tests.dir/baselines/stepping_test.cc.o.d"
  "baselines_tests"
  "baselines_tests.pdb"
  "baselines_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baselines_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
