file(REMOVE_RECURSE
  "CMakeFiles/privacy_tests.dir/privacy/correlation_test.cc.o"
  "CMakeFiles/privacy_tests.dir/privacy/correlation_test.cc.o.d"
  "CMakeFiles/privacy_tests.dir/privacy/metrics_test.cc.o"
  "CMakeFiles/privacy_tests.dir/privacy/metrics_test.cc.o.d"
  "CMakeFiles/privacy_tests.dir/privacy/mutual_information_test.cc.o"
  "CMakeFiles/privacy_tests.dir/privacy/mutual_information_test.cc.o.d"
  "CMakeFiles/privacy_tests.dir/privacy/nalm_test.cc.o"
  "CMakeFiles/privacy_tests.dir/privacy/nalm_test.cc.o.d"
  "CMakeFiles/privacy_tests.dir/privacy/occupancy_attack_test.cc.o"
  "CMakeFiles/privacy_tests.dir/privacy/occupancy_attack_test.cc.o.d"
  "privacy_tests"
  "privacy_tests.pdb"
  "privacy_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/privacy_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
