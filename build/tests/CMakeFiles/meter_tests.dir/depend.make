# Empty dependencies file for meter_tests.
# This may be replaced when dependencies are built.
