file(REMOVE_RECURSE
  "CMakeFiles/meter_tests.dir/meter/appliances_test.cc.o"
  "CMakeFiles/meter_tests.dir/meter/appliances_test.cc.o.d"
  "CMakeFiles/meter_tests.dir/meter/household_test.cc.o"
  "CMakeFiles/meter_tests.dir/meter/household_test.cc.o.d"
  "CMakeFiles/meter_tests.dir/meter/trace_test.cc.o"
  "CMakeFiles/meter_tests.dir/meter/trace_test.cc.o.d"
  "CMakeFiles/meter_tests.dir/meter/usage_stats_test.cc.o"
  "CMakeFiles/meter_tests.dir/meter/usage_stats_test.cc.o.d"
  "meter_tests"
  "meter_tests.pdb"
  "meter_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meter_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
