file(REMOVE_RECURSE
  "CMakeFiles/pricing_tests.dir/pricing/tou_test.cc.o"
  "CMakeFiles/pricing_tests.dir/pricing/tou_test.cc.o.d"
  "pricing_tests"
  "pricing_tests.pdb"
  "pricing_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pricing_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
