# Empty compiler generated dependencies file for battery_tests.
# This may be replaced when dependencies are built.
