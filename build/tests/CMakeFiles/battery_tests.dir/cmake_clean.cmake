file(REMOVE_RECURSE
  "CMakeFiles/battery_tests.dir/battery/battery_test.cc.o"
  "CMakeFiles/battery_tests.dir/battery/battery_test.cc.o.d"
  "battery_tests"
  "battery_tests.pdb"
  "battery_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/battery_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
