# Empty dependencies file for behaviour_shift.
# This may be replaced when dependencies are built.
