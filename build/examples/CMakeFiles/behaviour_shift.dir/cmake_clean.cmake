file(REMOVE_RECURSE
  "CMakeFiles/behaviour_shift.dir/behaviour_shift.cpp.o"
  "CMakeFiles/behaviour_shift.dir/behaviour_shift.cpp.o.d"
  "behaviour_shift"
  "behaviour_shift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/behaviour_shift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
