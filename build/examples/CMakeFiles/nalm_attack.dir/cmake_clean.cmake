file(REMOVE_RECURSE
  "CMakeFiles/nalm_attack.dir/nalm_attack.cpp.o"
  "CMakeFiles/nalm_attack.dir/nalm_attack.cpp.o.d"
  "nalm_attack"
  "nalm_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nalm_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
