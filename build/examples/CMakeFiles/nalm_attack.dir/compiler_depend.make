# Empty compiler generated dependencies file for nalm_attack.
# This may be replaced when dependencies are built.
