file(REMOVE_RECURSE
  "CMakeFiles/pricing_plans.dir/pricing_plans.cpp.o"
  "CMakeFiles/pricing_plans.dir/pricing_plans.cpp.o.d"
  "pricing_plans"
  "pricing_plans.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pricing_plans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
