# Empty compiler generated dependencies file for pricing_plans.
# This may be replaced when dependencies are built.
