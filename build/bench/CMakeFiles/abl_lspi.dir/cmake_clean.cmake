file(REMOVE_RECURSE
  "CMakeFiles/abl_lspi.dir/abl_lspi.cpp.o"
  "CMakeFiles/abl_lspi.dir/abl_lspi.cpp.o.d"
  "abl_lspi"
  "abl_lspi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_lspi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
