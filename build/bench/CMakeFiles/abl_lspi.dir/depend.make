# Empty dependencies file for abl_lspi.
# This may be replaced when dependencies are built.
