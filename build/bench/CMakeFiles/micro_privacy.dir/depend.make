# Empty dependencies file for micro_privacy.
# This may be replaced when dependencies are built.
