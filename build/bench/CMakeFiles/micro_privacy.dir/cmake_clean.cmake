file(REMOVE_RECURSE
  "CMakeFiles/micro_privacy.dir/micro_privacy.cpp.o"
  "CMakeFiles/micro_privacy.dir/micro_privacy.cpp.o.d"
  "micro_privacy"
  "micro_privacy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_privacy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
