file(REMOVE_RECURSE
  "CMakeFiles/abl_household.dir/abl_household.cpp.o"
  "CMakeFiles/abl_household.dir/abl_household.cpp.o.d"
  "abl_household"
  "abl_household.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_household.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
