# Empty compiler generated dependencies file for abl_household.
# This may be replaced when dependencies are built.
