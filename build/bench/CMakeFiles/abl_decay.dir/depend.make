# Empty dependencies file for abl_decay.
# This may be replaced when dependencies are built.
