file(REMOVE_RECURSE
  "CMakeFiles/abl_decay.dir/abl_decay.cpp.o"
  "CMakeFiles/abl_decay.dir/abl_decay.cpp.o.d"
  "abl_decay"
  "abl_decay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_decay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
