# Empty dependencies file for abl_pulse_policy.
# This may be replaced when dependencies are built.
