file(REMOVE_RECURSE
  "CMakeFiles/abl_pulse_policy.dir/abl_pulse_policy.cpp.o"
  "CMakeFiles/abl_pulse_policy.dir/abl_pulse_policy.cpp.o.d"
  "abl_pulse_policy"
  "abl_pulse_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_pulse_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
