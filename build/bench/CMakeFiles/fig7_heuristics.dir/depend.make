# Empty dependencies file for fig7_heuristics.
# This may be replaced when dependencies are built.
