file(REMOVE_RECURSE
  "CMakeFiles/fig7_heuristics.dir/fig7_heuristics.cpp.o"
  "CMakeFiles/fig7_heuristics.dir/fig7_heuristics.cpp.o.d"
  "fig7_heuristics"
  "fig7_heuristics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_heuristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
