
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig8_decision_interval.cpp" "bench/CMakeFiles/fig8_decision_interval.dir/fig8_decision_interval.cpp.o" "gcc" "bench/CMakeFiles/fig8_decision_interval.dir/fig8_decision_interval.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/rlblh_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/rlblh_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/rlblh_core.dir/DependInfo.cmake"
  "/root/repo/build/src/rl/CMakeFiles/rlblh_rl.dir/DependInfo.cmake"
  "/root/repo/build/src/battery/CMakeFiles/rlblh_battery.dir/DependInfo.cmake"
  "/root/repo/build/src/privacy/CMakeFiles/rlblh_privacy.dir/DependInfo.cmake"
  "/root/repo/build/src/pricing/CMakeFiles/rlblh_pricing.dir/DependInfo.cmake"
  "/root/repo/build/src/meter/CMakeFiles/rlblh_meter.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rlblh_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
