file(REMOVE_RECURSE
  "CMakeFiles/fig8_decision_interval.dir/fig8_decision_interval.cpp.o"
  "CMakeFiles/fig8_decision_interval.dir/fig8_decision_interval.cpp.o.d"
  "fig8_decision_interval"
  "fig8_decision_interval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_decision_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
