# Empty compiler generated dependencies file for fig8_decision_interval.
# This may be replaced when dependencies are built.
