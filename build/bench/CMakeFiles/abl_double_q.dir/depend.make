# Empty dependencies file for abl_double_q.
# This may be replaced when dependencies are built.
