file(REMOVE_RECURSE
  "CMakeFiles/abl_double_q.dir/abl_double_q.cpp.o"
  "CMakeFiles/abl_double_q.dir/abl_double_q.cpp.o.d"
  "abl_double_q"
  "abl_double_q.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_double_q.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
