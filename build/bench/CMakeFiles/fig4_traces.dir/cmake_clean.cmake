file(REMOVE_RECURSE
  "CMakeFiles/fig4_traces.dir/fig4_traces.cpp.o"
  "CMakeFiles/fig4_traces.dir/fig4_traces.cpp.o.d"
  "fig4_traces"
  "fig4_traces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_traces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
