# Empty compiler generated dependencies file for tab_complexity_mdp.
# This may be replaced when dependencies are built.
