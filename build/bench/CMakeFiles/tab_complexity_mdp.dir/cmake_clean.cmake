file(REMOVE_RECURSE
  "CMakeFiles/tab_complexity_mdp.dir/tab_complexity_mdp.cpp.o"
  "CMakeFiles/tab_complexity_mdp.dir/tab_complexity_mdp.cpp.o.d"
  "tab_complexity_mdp"
  "tab_complexity_mdp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_complexity_mdp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
