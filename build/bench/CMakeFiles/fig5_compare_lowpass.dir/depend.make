# Empty dependencies file for fig5_compare_lowpass.
# This may be replaced when dependencies are built.
