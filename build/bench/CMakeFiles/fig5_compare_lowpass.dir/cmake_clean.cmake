file(REMOVE_RECURSE
  "CMakeFiles/fig5_compare_lowpass.dir/fig5_compare_lowpass.cpp.o"
  "CMakeFiles/fig5_compare_lowpass.dir/fig5_compare_lowpass.cpp.o.d"
  "fig5_compare_lowpass"
  "fig5_compare_lowpass.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_compare_lowpass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
