# Empty dependencies file for fig9_battery_capacity.
# This may be replaced when dependencies are built.
