#include "pricing/tou.h"

#include <gtest/gtest.h>

#include "util/error.h"
#include "util/rng.h"

namespace rlblh {
namespace {

TEST(TouSchedule, RejectsBadConstruction) {
  EXPECT_THROW(TouSchedule(std::vector<double>{}), ConfigError);
  EXPECT_THROW(TouSchedule(std::vector<double>{1.0, -0.5}), ConfigError);
}

TEST(TouSchedule, SrpPlanMatchesPaperNumbers) {
  // Section VII-A: 7.04 c/kWh for n <= 1020 (1-based), 21.09 afterwards.
  const TouSchedule srp = TouSchedule::srp_plan();
  EXPECT_EQ(srp.intervals(), 1440u);
  EXPECT_DOUBLE_EQ(srp.rate(0), 7.04);
  EXPECT_DOUBLE_EQ(srp.rate(1019), 7.04);   // n = 1020 in 1-based indexing
  EXPECT_DOUBLE_EQ(srp.rate(1020), 21.09);  // n = 1021
  EXPECT_DOUBLE_EQ(srp.rate(1439), 21.09);
  EXPECT_DOUBLE_EQ(srp.min_rate(), 7.04);
  EXPECT_DOUBLE_EQ(srp.max_rate(), 21.09);
}

TEST(TouSchedule, SrpPlanNeedsRoomForBothZones) {
  EXPECT_THROW(TouSchedule::srp_plan(1020), ConfigError);
  EXPECT_NO_THROW(TouSchedule::srp_plan(1021));
}

TEST(TouSchedule, FlatPlan) {
  const TouSchedule flat = TouSchedule::flat(100, 5.0);
  EXPECT_DOUBLE_EQ(flat.min_rate(), 5.0);
  EXPECT_DOUBLE_EQ(flat.max_rate(), 5.0);
  EXPECT_DOUBLE_EQ(flat.mean_rate(), 5.0);
}

TEST(TouSchedule, ZonesMustTileTheDay) {
  EXPECT_THROW(TouSchedule::from_zones(10, {{0, 5, 1.0}, {6, 10, 2.0}}),
               ConfigError);  // gap
  EXPECT_THROW(TouSchedule::from_zones(10, {{0, 5, 1.0}, {4, 10, 2.0}}),
               ConfigError);  // overlap
  EXPECT_THROW(TouSchedule::from_zones(10, {{0, 5, 1.0}}), ConfigError);  // short
  EXPECT_NO_THROW(TouSchedule::from_zones(10, {{0, 5, 1.0}, {5, 10, 2.0}}));
}

TEST(TouSchedule, TwoZoneBoundaries) {
  const TouSchedule t = TouSchedule::two_zone(10, 4, 1.0, 2.0);
  EXPECT_DOUBLE_EQ(t.rate(3), 1.0);
  EXPECT_DOUBLE_EQ(t.rate(4), 2.0);
  EXPECT_THROW(TouSchedule::two_zone(10, 0, 1.0, 2.0), ConfigError);
  EXPECT_THROW(TouSchedule::two_zone(10, 10, 1.0, 2.0), ConfigError);
}

TEST(TouSchedule, ThreeZoneBoundaries) {
  const TouSchedule t = TouSchedule::three_zone(30, 10, 20, 1.0, 2.0, 3.0);
  EXPECT_DOUBLE_EQ(t.rate(9), 1.0);
  EXPECT_DOUBLE_EQ(t.rate(10), 2.0);
  EXPECT_DOUBLE_EQ(t.rate(19), 2.0);
  EXPECT_DOUBLE_EQ(t.rate(20), 3.0);
  EXPECT_THROW(TouSchedule::three_zone(30, 20, 10, 1.0, 2.0, 3.0),
               ConfigError);
}

TEST(TouSchedule, HourlyRtpStaysInRangeAndIsBlockwiseConstant) {
  Rng rng(4);
  const TouSchedule t = TouSchedule::hourly_rtp(1440, 60, 5.0, 25.0, rng);
  for (std::size_t n = 0; n < t.intervals(); ++n) {
    ASSERT_GE(t.rate(n), 5.0);
    ASSERT_LE(t.rate(n), 25.0);
    if (n % 60 != 0) {
      ASSERT_DOUBLE_EQ(t.rate(n), t.rate(n - 1));
    }
  }
}

TEST(TouSchedule, HourlyRtpVariesAcrossBlocks) {
  Rng rng(4);
  const TouSchedule t = TouSchedule::hourly_rtp(1440, 60, 5.0, 25.0, rng);
  int distinct = 0;
  for (std::size_t b = 1; b < 24; ++b) {
    if (t.rate(b * 60) != t.rate((b - 1) * 60)) ++distinct;
  }
  EXPECT_GE(distinct, 10);
}

TEST(TouSchedule, CostComputesPricedSum) {
  const TouSchedule t = TouSchedule::two_zone(4, 2, 1.0, 3.0);
  EXPECT_DOUBLE_EQ(t.cost({1.0, 1.0, 1.0, 1.0}), 8.0);
  EXPECT_DOUBLE_EQ(t.cost({0.0, 2.0, 0.0, 0.5}), 3.5);
  EXPECT_THROW(t.cost({1.0}), ConfigError);
}

TEST(TouSchedule, RateIndexBounds) {
  const TouSchedule t = TouSchedule::flat(5, 1.0);
  EXPECT_THROW(t.rate(5), ConfigError);
}

TEST(MaxSavings, MatchesSectionIIFormula) {
  // (r_H - r_L) * b_M: paper quotes 0.7 dollars for b_M = 5 kWh.
  EXPECT_NEAR(two_zone_max_daily_savings(7.04, 21.09, 5.0), 70.25, 1e-9);
  EXPECT_THROW(two_zone_max_daily_savings(2.0, 1.0, 5.0), ConfigError);
  EXPECT_THROW(two_zone_max_daily_savings(1.0, 2.0, -1.0), ConfigError);
}

}  // namespace
}  // namespace rlblh
