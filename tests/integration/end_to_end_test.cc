// Cross-module integration tests: the full RL-BLH loop against the synthetic
// household, compared with the baselines, checking the paper's qualitative
// claims end to end (small but real workloads; a few seconds in total).
#include <gtest/gtest.h>

#include "baselines/lowpass.h"
#include "baselines/mdp.h"
#include "core/rlblh_policy.h"
#include "meter/household.h"
#include "privacy/metrics.h"
#include "sim/experiment.h"

namespace rlblh {
namespace {

RlBlhConfig fast_rl_config(unsigned seed) {
  RlBlhConfig config;
  config.battery_capacity = 5.0;
  config.decision_interval = 15;
  config.seed = seed;
  // Lighter heuristics than the paper defaults keep the tests quick while
  // preserving the mechanism.
  config.reuse_repeats = 25;
  config.synthetic_repeats = 100;
  return config;
}

double greedy_sr(Simulator& sim, RlBlhPolicy& policy, int days) {
  policy.set_learning_enabled(false);
  policy.set_exploration_enabled(false);
  SavingRatioAccumulator sr;
  for (int d = 0; d < days; ++d) {
    const DayResult day = sim.run_day(policy);
    sr.observe_day(day.usage, day.readings, sim.prices());
  }
  policy.set_learning_enabled(true);
  policy.set_exploration_enabled(true);
  return sr.saving_ratio();
}

TEST(EndToEnd, LearningImprovesSavings) {
  Simulator sim = make_household_simulator(HouseholdConfig{},
                                           TouSchedule::srp_plan(), 5.0, 11);
  RlBlhPolicy policy(fast_rl_config(1));
  const double before = greedy_sr(sim, policy, 5);
  sim.run_days(policy, 35);
  const double after = greedy_sr(sim, policy, 15);
  EXPECT_GT(after, before + 0.03);  // at least 3 SR points of improvement
  EXPECT_GT(after, 0.04);           // and meaningful in absolute terms
}

TEST(EndToEnd, RlBlhHidesLowFrequencyBetterThanLowPass) {
  // The paper's Figure 5a claim, at the capacity where the contrast is
  // largest (b_M = 3): the usage/reading correlation of RL-BLH must sit
  // clearly below the low-pass scheme's. (On our synthetic household the
  // margin is a factor ~1.4, not the paper's order of magnitude; see
  // EXPERIMENTS.md for the discussion.)
  const TouSchedule prices = TouSchedule::srp_plan();
  RlBlhConfig rl_config;
  rl_config.battery_capacity = 3.0;
  rl_config.decision_interval = 10;
  rl_config.seed = 2;
  rl_config.reuse_repeats = 25;
  rl_config.synthetic_repeats = 150;
  Simulator rl_sim = make_household_simulator(HouseholdConfig{}, prices,
                                              3.0, 21);
  RlBlhPolicy rl(rl_config);
  EvaluationConfig eval;
  eval.train_days = 40;
  eval.eval_days = 40;
  const EvaluationResult rl_result = evaluate_policy(rl_sim, rl, eval);

  Simulator lp_sim = make_household_simulator(HouseholdConfig{}, prices,
                                              3.0, 21);
  LowPassConfig lp_config;
  lp_config.battery_capacity = 3.0;
  LowPassPolicy lp(lp_config);
  const EvaluationResult lp_result = evaluate_policy(lp_sim, lp, eval);

  EXPECT_LT(rl_result.mean_cc, 0.85 * lp_result.mean_cc);
  // And the cost claim (Figure 5c): RL-BLH's savings are by design.
  EXPECT_GT(rl_result.saving_ratio, 0.02);
}

TEST(EndToEnd, BothSchemesLeakFarLessThanRawMeter) {
  const TouSchedule prices = TouSchedule::srp_plan();
  EvaluationConfig eval;
  eval.train_days = 10;
  eval.eval_days = 20;

  Simulator raw_sim = make_household_simulator(HouseholdConfig{}, prices,
                                               5.0, 31);
  PassthroughPolicy raw;
  const EvaluationResult raw_result = evaluate_policy(raw_sim, raw, eval);

  Simulator rl_sim = make_household_simulator(HouseholdConfig{}, prices,
                                              5.0, 31);
  RlBlhPolicy rl(fast_rl_config(3));
  const EvaluationResult rl_result = evaluate_policy(rl_sim, rl, eval);

  EXPECT_GT(raw_result.normalized_mi, 3.0 * rl_result.normalized_mi);
  EXPECT_GT(raw_result.mean_cc, 5.0 * std::abs(rl_result.mean_cc));
}

TEST(EndToEnd, HeuristicsAccelerateConvergence) {
  // Figure 6's claim, scaled down: after a handful of days the heuristic
  // learner must be strictly better than the plain one.
  const TouSchedule prices = TouSchedule::srp_plan();
  RlBlhConfig with = fast_rl_config(4);
  RlBlhConfig without = fast_rl_config(4);
  without.enable_reuse = false;
  without.enable_synthetic = false;

  Simulator sim_with = make_household_simulator(HouseholdConfig{}, prices,
                                                5.0, 41);
  Simulator sim_without = make_household_simulator(HouseholdConfig{}, prices,
                                                   5.0, 41);
  RlBlhPolicy p_with(with);
  RlBlhPolicy p_without(without);
  sim_with.run_days(p_with, 15);
  sim_without.run_days(p_without, 15);
  const double sr_with = greedy_sr(sim_with, p_with, 15);
  const double sr_without = greedy_sr(sim_without, p_without, 15);
  EXPECT_GT(sr_with, sr_without + 0.02);
}

TEST(EndToEnd, MdpWithKnownDistributionIsUpperReference) {
  // Section VIII frames the DP scheme as the all-knowing (but impractical)
  // alternative: given the true distribution it should reach at least the
  // savings RL-BLH learns online.
  const TouSchedule prices = TouSchedule::srp_plan();
  MdpConfig mdp_config;
  mdp_config.battery_capacity = 5.0;
  mdp_config.decision_interval = 15;
  mdp_config.battery_levels = 64;
  MdpBlhPolicy mdp(mdp_config);
  HouseholdModel trainer(HouseholdConfig{}, 51);
  for (int d = 0; d < 100; ++d) {
    mdp.observe_training_day(trainer.generate_day(), prices);
  }
  mdp.solve();
  Simulator mdp_sim = make_household_simulator(HouseholdConfig{}, prices,
                                               5.0, 52);
  SavingRatioAccumulator mdp_sr;
  for (int d = 0; d < 20; ++d) {
    const DayResult day = mdp_sim.run_day(mdp);
    mdp_sr.observe_day(day.usage, day.readings, prices);
  }
  EXPECT_GT(mdp_sr.saving_ratio(), 0.12);
}

TEST(EndToEnd, AdaptsAfterBehaviourShift) {
  // Section VIII: the weights keep updating, so savings recover after the
  // household pattern changes.
  const TouSchedule prices = TouSchedule::srp_plan();
  Simulator sim = make_household_simulator(HouseholdConfig{}, prices, 5.0, 61);
  RlBlhPolicy policy(fast_rl_config(5));
  sim.run_days(policy, 20);

  HouseholdConfig shifted;
  shifted.wake_mean = 700.0;
  shifted.leave_mean = 800.0;
  shifted.back_mean = 1200.0;
  shifted.sleep_mean = 1430.0;
  static_cast<HouseholdTraceSource&>(sim.source()).model().set_config(shifted);

  sim.run_days(policy, 25);  // online re-adaptation
  const double recovered = greedy_sr(sim, policy, 15);
  EXPECT_GT(recovered, 0.03);
}

}  // namespace
}  // namespace rlblh
