// System-level invariants checked over the full policy/battery/simulator
// stack. The per-interval assertions live in sim/invariants.h's
// InvariantChecker (shared with the property suites and the CLI); these
// tests wire it into real simulations, including the decision-interval
// sweep over divisor and non-divisor pulse widths.
#include <cmath>

#include <gtest/gtest.h>

#include "baselines/lowpass.h"
#include "core/rlblh_policy.h"
#include "meter/household.h"
#include "sim/experiment.h"
#include "sim/invariants.h"

namespace rlblh {
namespace {

InvariantCheckConfig pulse_check(const RlBlhConfig& config) {
  InvariantCheckConfig check;
  check.battery_capacity = config.battery_capacity;
  check.usage_cap = config.usage_cap;
  check.decision_interval = config.decision_interval;
  check.expect_feasible = true;
  return check;
}

class DecisionIntervalSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DecisionIntervalSweep, PulsesHaveExactWidthAndBatteryStaysLegal) {
  const std::size_t n_d = GetParam();
  RlBlhConfig config;
  config.decision_interval = n_d;
  config.battery_capacity = 5.0;
  config.seed = 3;
  config.enable_reuse = false;
  config.enable_synthetic = false;
  RlBlhPolicy policy(config);
  Simulator sim = make_household_simulator(HouseholdConfig{},
                                           TouSchedule::srp_plan(), 5.0, 71);
  // The checker enforces, per interval: battery in [0, b_M], readings in
  // [0, x_M], rectangular pulses of width n_D (last one truncated when n_D
  // does not divide n_M), the Section III-B feasibility rule, energy
  // conservation and the savings accounting — run_day throws on any miss.
  sim.enable_invariant_checks(pulse_check(config));
  for (int d = 0; d < 10; ++d) {
    const DayResult day = sim.run_day(policy);
    ASSERT_EQ(day.battery_violations, 0u);
  }
}

// 1 and the divisors exercise every pulse boundary; 7, 13 and 31 leave
// truncated last pulses of widths 5, 10 and 14 (b_M = 5 admits n_D <= 31).
INSTANTIATE_TEST_SUITE_P(Sweep, DecisionIntervalSweep,
                         ::testing::Values(1, 5, 7, 13, 15, 20, 30, 31));

TEST(Invariants, CheckerAcceptsEnergyConservationAcrossDay) {
  RlBlhConfig config;
  config.battery_capacity = 5.0;
  config.decision_interval = 15;
  config.enable_reuse = false;
  config.enable_synthetic = false;
  RlBlhPolicy policy(config);
  Simulator sim = make_household_simulator(HouseholdConfig{},
                                           TouSchedule::srp_plan(), 5.0, 72);
  const InvariantChecker checker(pulse_check(config));
  for (int d = 0; d < 10; ++d) {
    const DayResult day = sim.run_day(policy);
    ASSERT_EQ(day.battery_violations, 0u);
    const auto violations =
        checker.check_day(day, sim.prices(), sim.battery().level());
    ASSERT_TRUE(violations.empty())
        << violations.size() << " violation(s), first: "
        << violations.front().detail;
    // The checker's energy invariant is the identity the old hand-rolled
    // loop asserted: sum(y) - sum(x) == level(end) - level(start).
    const double start = day.battery_levels.front();
    const double end = sim.battery().level();
    ASSERT_NEAR(day.readings.total() - day.usage.total(), end - start, 1e-9);
  }
}

TEST(Invariants, SavingsIdentityUnderEveryPolicy) {
  const TouSchedule prices = TouSchedule::srp_plan();
  Simulator sim = make_household_simulator(HouseholdConfig{}, prices, 5.0, 73);
  // Low-pass is not pulse-shaped and may clip: bounds + accounting profile.
  InvariantCheckConfig check;
  check.battery_capacity = 5.0;
  check.expect_feasible = false;
  sim.enable_invariant_checks(check);
  LowPassConfig lp_config;
  lp_config.battery_capacity = 5.0;
  LowPassPolicy lp(lp_config);
  for (int d = 0; d < 10; ++d) {
    const DayResult day = sim.run_day(lp);
    ASSERT_NEAR(day.savings_cents + day.bill_cents, day.usage_cost_cents,
                1e-9);
  }
}

TEST(Invariants, LossyBatteryStillLegalUnderRlBlh) {
  // Footnote 2: with charge/discharge losses the feasibility rule is no
  // longer airtight, but the physical battery must still clip into
  // [0, b_M] and the simulator must report what the grid actually served.
  RlBlhConfig config;
  config.battery_capacity = 5.0;
  config.decision_interval = 15;
  config.enable_reuse = false;
  config.enable_synthetic = false;
  RlBlhPolicy policy(config);
  auto source = std::make_unique<HouseholdTraceSource>(HouseholdConfig{}, 74);
  Battery lossy(5.0, 2.5, /*charge_efficiency=*/0.92,
                /*discharge_efficiency=*/0.92);
  Simulator sim(std::move(source), TouSchedule::srp_plan(), lossy);
  InvariantCheckConfig check;
  check.battery_capacity = 5.0;
  check.usage_cap = config.usage_cap;
  check.decision_interval = config.decision_interval;
  check.expect_feasible = false;  // losses void the lossless guarantees
  sim.enable_invariant_checks(check);
  for (int d = 0; d < 20; ++d) {
    (void)sim.run_day(policy);  // checker throws on a bound/accounting miss
  }
}

TEST(Invariants, LowPassBatteryStaysLegal) {
  LowPassConfig config;
  config.battery_capacity = 3.0;
  LowPassPolicy policy(config);
  Simulator sim = make_household_simulator(HouseholdConfig{},
                                           TouSchedule::srp_plan(), 3.0, 75);
  InvariantCheckConfig check;
  check.battery_capacity = 3.0;
  check.expect_feasible = false;
  sim.enable_invariant_checks(check);
  for (int d = 0; d < 20; ++d) {
    (void)sim.run_day(policy);
  }
}

TEST(Invariants, LongRunStabilityWithFullHeuristics) {
  // 60 days with the paper's full heuristic schedule: no violations, no
  // NaNs in the weights, day stats recorded for every day.
  RlBlhConfig config;
  config.battery_capacity = 5.0;
  config.decision_interval = 15;
  config.seed = 9;
  config.reuse_repeats = 30;      // lighter than the paper, same schedule
  config.synthetic_repeats = 100;
  RlBlhPolicy policy(config);
  Simulator sim = make_household_simulator(HouseholdConfig{},
                                           TouSchedule::srp_plan(), 5.0, 76);
  sim.enable_invariant_checks(pulse_check(config));
  for (int d = 0; d < 60; ++d) {
    const DayResult day = sim.run_day(policy);
    ASSERT_EQ(day.battery_violations, 0u);
  }
  ASSERT_EQ(policy.day_stats().size(), 60u);
  for (std::size_t a = 0; a < config.num_actions; ++a) {
    for (const double w : policy.q().function(a).weights()) {
      ASSERT_TRUE(std::isfinite(w));
    }
  }
  // TD error must have come down from its early level (convergence).
  const auto& stats = policy.day_stats();
  double early = 0.0, late = 0.0;
  for (int d = 0; d < 5; ++d) early += stats[static_cast<std::size_t>(d)].mean_abs_td_error;
  for (int d = 55; d < 60; ++d) late += stats[static_cast<std::size_t>(d)].mean_abs_td_error;
  EXPECT_LT(late, early);
}

TEST(Invariants, TruncatedLastPulseIsRectangular) {
  // n_D = 13 leaves a 10-interval tail (1440 = 110 * 13 + 10): the day's
  // last pulse must still be constant and the decision count must match.
  RlBlhConfig config;
  config.decision_interval = 13;
  config.battery_capacity = 5.0;
  config.enable_reuse = false;
  config.enable_synthetic = false;
  ASSERT_EQ(config.decisions_per_day(), 111u);
  ASSERT_EQ(config.decision_width(110), 10u);
  RlBlhPolicy policy(config);
  Simulator sim = make_household_simulator(HouseholdConfig{},
                                           TouSchedule::srp_plan(), 5.0, 77);
  sim.enable_invariant_checks(pulse_check(config));
  const DayResult day = sim.run_day(policy);
  const std::size_t tail_begin = 110 * 13;
  for (std::size_t n = tail_begin; n < day.readings.intervals(); ++n) {
    ASSERT_DOUBLE_EQ(day.readings.at(n), day.readings.at(tail_begin));
  }
}

}  // namespace
}  // namespace rlblh
