// System-level invariants checked over long randomized runs (property-style
// tests over the full policy/battery/simulator stack).
#include <cmath>

#include <gtest/gtest.h>

#include "baselines/lowpass.h"
#include "core/rlblh_policy.h"
#include "meter/household.h"
#include "sim/experiment.h"

namespace rlblh {
namespace {

class DecisionIntervalSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DecisionIntervalSweep, PulsesHaveExactWidthAndBatteryStaysLegal) {
  const std::size_t n_d = GetParam();
  RlBlhConfig config;
  config.decision_interval = n_d;
  config.battery_capacity = 5.0;
  config.seed = 3;
  config.enable_reuse = false;
  config.enable_synthetic = false;
  RlBlhPolicy policy(config);
  Simulator sim = make_household_simulator(HouseholdConfig{},
                                           TouSchedule::srp_plan(), 5.0, 71);
  for (int d = 0; d < 10; ++d) {
    const DayResult day = sim.run_day(policy);
    // Rectangular pulses: constant within every decision interval.
    for (std::size_t n = 0; n < day.readings.intervals(); ++n) {
      ASSERT_DOUBLE_EQ(day.readings.at(n), day.readings.at(n - n % n_d));
    }
    // Readings never exceed x_M (Section II: y_n in [0, x_M]).
    for (std::size_t n = 0; n < day.readings.intervals(); ++n) {
      ASSERT_GE(day.readings.at(n), 0.0);
      ASSERT_LE(day.readings.at(n), config.usage_cap + 1e-12);
    }
    // Battery levels recorded by the simulator stay within [0, b_M].
    for (const double b : day.battery_levels) {
      ASSERT_GE(b, -1e-12);
      ASSERT_LE(b, 5.0 + 1e-12);
    }
    ASSERT_EQ(day.battery_violations, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, DecisionIntervalSweep,
                         ::testing::Values(5, 10, 15, 20, 30));

TEST(Invariants, EnergyConservationAcrossDay) {
  // With zero violations: sum(y) - sum(x) == level(end) - level(start).
  RlBlhConfig config;
  config.battery_capacity = 5.0;
  config.decision_interval = 15;
  config.enable_reuse = false;
  config.enable_synthetic = false;
  RlBlhPolicy policy(config);
  Simulator sim = make_household_simulator(HouseholdConfig{},
                                           TouSchedule::srp_plan(), 5.0, 72);
  for (int d = 0; d < 10; ++d) {
    const DayResult day = sim.run_day(policy);
    ASSERT_EQ(day.battery_violations, 0u);
    const double start = day.battery_levels.front();
    const double end = sim.battery().level();
    ASSERT_NEAR(day.readings.total() - day.usage.total(), end - start, 1e-9);
  }
}

TEST(Invariants, SavingsIdentityUnderEveryPolicy) {
  const TouSchedule prices = TouSchedule::srp_plan();
  Simulator sim = make_household_simulator(HouseholdConfig{}, prices, 5.0, 73);
  LowPassConfig lp_config;
  lp_config.battery_capacity = 5.0;
  LowPassPolicy lp(lp_config);
  for (int d = 0; d < 10; ++d) {
    const DayResult day = sim.run_day(lp);
    ASSERT_NEAR(day.savings_cents + day.bill_cents, day.usage_cost_cents,
                1e-9);
  }
}

TEST(Invariants, LossyBatteryStillLegalUnderRlBlh) {
  // Footnote 2: with charge/discharge losses the feasibility rule is no
  // longer airtight, but the physical battery must still clip into
  // [0, b_M] and the simulator must report what the grid actually served.
  RlBlhConfig config;
  config.battery_capacity = 5.0;
  config.decision_interval = 15;
  config.enable_reuse = false;
  config.enable_synthetic = false;
  RlBlhPolicy policy(config);
  auto source = std::make_unique<HouseholdTraceSource>(HouseholdConfig{}, 74);
  Battery lossy(5.0, 2.5, /*charge_efficiency=*/0.92,
                /*discharge_efficiency=*/0.92);
  Simulator sim(std::move(source), TouSchedule::srp_plan(), lossy);
  for (int d = 0; d < 20; ++d) {
    const DayResult day = sim.run_day(policy);
    for (const double b : day.battery_levels) {
      ASSERT_GE(b, -1e-12);
      ASSERT_LE(b, 5.0 + 1e-12);
    }
    // Readings may exceed the scheduled pulse only by the served shortfall,
    // never below zero.
    for (std::size_t n = 0; n < day.readings.intervals(); ++n) {
      ASSERT_GE(day.readings.at(n), 0.0);
    }
  }
}

TEST(Invariants, LowPassBatteryStaysLegal) {
  LowPassConfig config;
  config.battery_capacity = 3.0;
  LowPassPolicy policy(config);
  Simulator sim = make_household_simulator(HouseholdConfig{},
                                           TouSchedule::srp_plan(), 3.0, 75);
  for (int d = 0; d < 20; ++d) {
    const DayResult day = sim.run_day(policy);
    for (const double b : day.battery_levels) {
      ASSERT_GE(b, -1e-12);
      ASSERT_LE(b, 3.0 + 1e-12);
    }
  }
}

TEST(Invariants, LongRunStabilityWithFullHeuristics) {
  // 60 days with the paper's full heuristic schedule: no violations, no
  // NaNs in the weights, day stats recorded for every day.
  RlBlhConfig config;
  config.battery_capacity = 5.0;
  config.decision_interval = 15;
  config.seed = 9;
  config.reuse_repeats = 30;      // lighter than the paper, same schedule
  config.synthetic_repeats = 100;
  RlBlhPolicy policy(config);
  Simulator sim = make_household_simulator(HouseholdConfig{},
                                           TouSchedule::srp_plan(), 5.0, 76);
  for (int d = 0; d < 60; ++d) {
    const DayResult day = sim.run_day(policy);
    ASSERT_EQ(day.battery_violations, 0u);
  }
  ASSERT_EQ(policy.day_stats().size(), 60u);
  for (std::size_t a = 0; a < config.num_actions; ++a) {
    for (const double w : policy.q().function(a).weights()) {
      ASSERT_TRUE(std::isfinite(w));
    }
  }
  // TD error must have come down from its early level (convergence).
  const auto& stats = policy.day_stats();
  double early = 0.0, late = 0.0;
  for (int d = 0; d < 5; ++d) early += stats[static_cast<std::size_t>(d)].mean_abs_td_error;
  for (int d = 55; d < 60; ++d) late += stats[static_cast<std::size_t>(d)].mean_abs_td_error;
  EXPECT_LT(late, early);
}

}  // namespace
}  // namespace rlblh
