// FleetSimulator's contracts: per-household RNG streams are reproducible
// and collision-free, a 1-household fleet is the plain Simulator path, and
// fleet results are bitwise identical across thread counts.
#include "sim/fleet.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <unordered_set>
#include <vector>

#include "sim/scenario.h"
#include "util/error.h"

namespace rlblh {
namespace {

std::uint64_t bits(double value) {
  std::uint64_t out = 0;
  static_assert(sizeof(out) == sizeof(value));
  std::memcpy(&out, &value, sizeof(out));
  return out;
}

void expect_bitwise_equal(const EvaluationResult& a,
                          const EvaluationResult& b) {
  EXPECT_EQ(bits(a.saving_ratio), bits(b.saving_ratio));
  EXPECT_EQ(bits(a.mean_cc), bits(b.mean_cc));
  EXPECT_EQ(bits(a.normalized_mi), bits(b.normalized_mi));
  EXPECT_EQ(bits(a.mean_daily_savings_cents), bits(b.mean_daily_savings_cents));
  EXPECT_EQ(bits(a.mean_daily_bill_cents), bits(b.mean_daily_bill_cents));
  EXPECT_EQ(bits(a.mean_daily_usage_cost_cents),
            bits(b.mean_daily_usage_cost_cents));
  EXPECT_EQ(a.battery_violations, b.battery_violations);
}

void expect_bitwise_equal(const MetricSummary& a, const MetricSummary& b) {
  EXPECT_EQ(bits(a.mean), bits(b.mean));
  EXPECT_EQ(bits(a.p50), bits(b.p50));
  EXPECT_EQ(bits(a.p95), bits(b.p95));
}

/// Eight quick heterogeneous households: every policy family, several
/// presets and tariffs, tiny train/eval windows.
std::vector<ScenarioSpec> mixed_fleet() {
  const char* const specs[] = {
      "policy=rlblh;household=default;pricing=srp;battery=4;train=2;eval=2",
      "policy=lowpass;household=weekday_heavy;pricing=tou2;battery=3;"
      "train=1;eval=2",
      "policy=stepping;household=night_owl;pricing=tou3;battery=5;"
      "train=1;eval=2",
      "policy=none;household=apartment;pricing=flat;train=0;eval=2",
      "policy=random_pulse;household=ev_owner;pricing=srp;battery=4;"
      "train=1;eval=2",
      "policy=mdp;household=default;pricing=srp;battery=3;train=1;eval=2;"
      "policy.levels=16;policy.usage_levels=8",
      "policy=rlblh;household=vacationer;pricing=rtp;battery=5;train=2;"
      "eval=2;pricing.seed=5",
      "policy=lowpass;household=default;pricing=srp;battery=2;train=1;eval=2",
  };
  std::vector<ScenarioSpec> fleet;
  for (const char* spec : specs) fleet.push_back(ScenarioSpec::parse(spec));
  return fleet;
}

TEST(FleetRngStreams, DerivationIsReproducible) {
  const ScenarioSpec base;
  const ScenarioSpec a = FleetSimulator::resolved_spec(base, 42, 17);
  const ScenarioSpec b = FleetSimulator::resolved_spec(base, 42, 17);
  EXPECT_EQ(a.seed, b.seed);
  ASSERT_TRUE(a.hseed.has_value());
  ASSERT_TRUE(b.hseed.has_value());
  EXPECT_EQ(*a.hseed, *b.hseed);
  // A different fleet seed or index moves both streams.
  const ScenarioSpec c = FleetSimulator::resolved_spec(base, 43, 17);
  const ScenarioSpec d = FleetSimulator::resolved_spec(base, 42, 18);
  EXPECT_NE(a.seed, c.seed);
  EXPECT_NE(*a.hseed, *c.hseed);
  EXPECT_NE(a.seed, d.seed);
  EXPECT_NE(*a.hseed, *d.hseed);
}

TEST(FleetRngStreams, NoCollisionsAcrossTenThousandHouseholds) {
  const ScenarioSpec base;
  std::unordered_set<std::uint64_t> streams;
  const std::size_t kHouseholds = 10000;
  for (std::size_t index = 0; index < kHouseholds; ++index) {
    const ScenarioSpec spec =
        FleetSimulator::resolved_spec(base, /*fleet_seed=*/42, index);
    streams.insert(spec.seed);
    streams.insert(*spec.hseed);
  }
  // Every policy seed and every household seed is distinct from all others.
  EXPECT_EQ(streams.size(), 2 * kHouseholds);
}

TEST(FleetQuantile, LinearInterpolationDefinition) {
  const std::vector<double> values = {3.0, 1.0, 4.0, 2.0};  // unsorted input
  EXPECT_EQ(fleet_quantile(values, 0.0), 1.0);
  EXPECT_EQ(fleet_quantile(values, 1.0), 4.0);
  EXPECT_EQ(fleet_quantile(values, 0.5), 2.5);
  EXPECT_EQ(fleet_quantile({7.5}, 0.95), 7.5);
}

TEST(FleetQuantile, SingleValueIsEveryQuantile) {
  // The single-household fleet: p50 == p95 == mean == the value.
  EXPECT_EQ(fleet_quantile({-3.25}, 0.0), -3.25);
  EXPECT_EQ(fleet_quantile({-3.25}, 0.5), -3.25);
  EXPECT_EQ(fleet_quantile({-3.25}, 0.95), -3.25);
  EXPECT_EQ(fleet_quantile({-3.25}, 1.0), -3.25);
}

TEST(FleetQuantile, TwoValuesInterpolateLinearly) {
  EXPECT_EQ(fleet_quantile({2.0, 4.0}, 0.0), 2.0);
  EXPECT_EQ(fleet_quantile({2.0, 4.0}, 0.5), 3.0);
  EXPECT_EQ(fleet_quantile({4.0, 2.0}, 0.25), 2.5);  // order-independent
  EXPECT_EQ(fleet_quantile({2.0, 4.0}, 1.0), 4.0);
}

TEST(FleetQuantile, EmptyInputIsRejected) {
  EXPECT_THROW(fleet_quantile({}, 0.5), ConfigError);
}

TEST(FleetQuantile, OutOfRangeQuantileIsRejected) {
  EXPECT_THROW(fleet_quantile({1.0, 2.0}, -0.01), ConfigError);
  EXPECT_THROW(fleet_quantile({1.0, 2.0}, 1.01), ConfigError);
}

TEST(FleetQuantile, NonFiniteValuesAreRejected) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW(fleet_quantile({1.0, nan, 2.0}, 0.5), ConfigError);
  EXPECT_THROW(fleet_quantile({inf}, 0.5), ConfigError);
  EXPECT_THROW(fleet_quantile({-inf, 0.0}, 0.5), ConfigError);
}

TEST(FleetDeterminism, OneHouseholdFleetMatchesSimulatorPath) {
  ScenarioSpec spec = ScenarioSpec::parse(
      "policy=rlblh;household=weekday_heavy;pricing=tou2;battery=4;"
      "train=2;eval=2");
  const std::uint64_t fleet_seed = 99;

  FleetSimulator fleet({spec}, FleetOptions{/*threads=*/1});
  const FleetResult result = fleet.run(fleet_seed);
  ASSERT_EQ(result.households.size(), 1u);

  // The same household through the plain build_scenario/run_scenario path,
  // seeded the way the fleet resolves index 0.
  Scenario scenario =
      build_scenario(FleetSimulator::resolved_spec(spec, fleet_seed, 0));
  const EvaluationResult single = run_scenario(scenario);

  expect_bitwise_equal(result.households[0], single);
  // With one household every aggregate collapses onto that household.
  EXPECT_EQ(bits(result.saving_ratio.mean), bits(single.saving_ratio));
  EXPECT_EQ(bits(result.saving_ratio.p50), bits(single.saving_ratio));
  EXPECT_EQ(bits(result.mean_cc.p95), bits(single.mean_cc));
  EXPECT_EQ(result.battery_violations, single.battery_violations);
}

TEST(FleetDeterminism, ThreadCountDoesNotChangeResultsBitwise) {
  const std::vector<ScenarioSpec> specs = mixed_fleet();
  const std::uint64_t fleet_seed = 7;

  FleetSimulator serial(specs, FleetOptions{/*threads=*/1});
  FleetSimulator wide(specs, FleetOptions{/*threads=*/8});
  const FleetResult a = serial.run(fleet_seed);
  const FleetResult b = wide.run(fleet_seed);

  ASSERT_EQ(a.households.size(), specs.size());
  ASSERT_EQ(b.households.size(), specs.size());
  for (std::size_t index = 0; index < specs.size(); ++index) {
    expect_bitwise_equal(a.households[index], b.households[index]);
  }
  expect_bitwise_equal(a.saving_ratio, b.saving_ratio);
  expect_bitwise_equal(a.mean_cc, b.mean_cc);
  expect_bitwise_equal(a.normalized_mi, b.normalized_mi);
  EXPECT_EQ(a.battery_violations, b.battery_violations);
}

TEST(FleetDeterminism, RunIsRepeatableOnTheSameSimulator) {
  FleetSimulator fleet(mixed_fleet(), FleetOptions{/*threads=*/2});
  const FleetResult first = fleet.run(11);
  const FleetResult second = fleet.run(11);
  ASSERT_EQ(first.households.size(), second.households.size());
  for (std::size_t index = 0; index < first.households.size(); ++index) {
    expect_bitwise_equal(first.households[index], second.households[index]);
  }
}

TEST(FleetDeterminism, ChunkSizeDoesNotChangeResultsBitwise) {
  const std::vector<ScenarioSpec> specs = mixed_fleet();
  const std::uint64_t fleet_seed = 7;

  FleetOptions per_household;
  per_household.threads = 1;
  per_household.chunk = 1;  // the old one-cell-per-household semantics
  const FleetResult reference =
      FleetSimulator(specs, per_household).run(fleet_seed);

  for (const std::size_t chunk : {std::size_t{3}, std::size_t{64},
                                  specs.size(), std::size_t{0} /* auto */}) {
    FleetOptions options;
    options.threads = 2;
    options.chunk = chunk;
    const FleetResult chunked = FleetSimulator(specs, options).run(fleet_seed);
    ASSERT_EQ(chunked.households.size(), specs.size());
    for (std::size_t index = 0; index < specs.size(); ++index) {
      expect_bitwise_equal(reference.households[index],
                           chunked.households[index]);
    }
    expect_bitwise_equal(reference.saving_ratio, chunked.saving_ratio);
    expect_bitwise_equal(reference.mean_cc, chunked.mean_cc);
    expect_bitwise_equal(reference.normalized_mi, chunked.normalized_mi);
    EXPECT_EQ(reference.battery_violations, chunked.battery_violations);
  }
}

TEST(FleetDeterminism, DroppingHouseholdResultsKeepsAggregatesBitwise) {
  const std::vector<ScenarioSpec> specs = mixed_fleet();
  FleetOptions keep;
  keep.threads = 2;
  const FleetResult full = FleetSimulator(specs, keep).run(3);

  FleetOptions drop = keep;
  drop.keep_households = false;
  const FleetResult lean = FleetSimulator(specs, drop).run(3);

  EXPECT_TRUE(lean.households.empty());
  expect_bitwise_equal(full.saving_ratio, lean.saving_ratio);
  expect_bitwise_equal(full.mean_cc, lean.mean_cc);
  expect_bitwise_equal(full.normalized_mi, lean.normalized_mi);
  EXPECT_EQ(full.battery_violations, lean.battery_violations);
}

// The blueprint cache must be seed-independent only: households sharing one
// preset (hence one cached HouseholdConfig and policy bag) but differing in
// derived seeds have to produce genuinely different traces and results.
TEST(FleetBlueprintCache, SharedPresetHouseholdsStayDistinct) {
  const ScenarioSpec spec = ScenarioSpec::parse(
      "policy=lowpass;household=default;pricing=srp;battery=4;train=0;eval=2");
  const std::size_t kHouseholds = 16;
  const std::vector<ScenarioSpec> specs(kHouseholds, spec);

  FleetSimulator fleet(specs, FleetOptions{/*threads=*/2});
  const FleetResult result = fleet.run(42);
  ASSERT_EQ(result.households.size(), kHouseholds);

  // Every household's evaluation is distinct from every other's: equal
  // bill totals across two independently seeded trace streams would mean
  // the cache leaked a seed.
  std::unordered_set<std::uint64_t> bills;
  for (const EvaluationResult& household : result.households) {
    bills.insert(bits(household.mean_daily_bill_cents));
  }
  EXPECT_EQ(bills.size(), kHouseholds);
}

TEST(FleetBlueprintCache, BlueprintSourceFollowsTheSeed) {
  const ScenarioSpec spec = ScenarioSpec::parse(
      "policy=none;household=weekday_heavy;pricing=flat;train=0;eval=1");
  const ScenarioBlueprint bp = make_scenario_blueprint(spec);
  ASSERT_TRUE(bp.household.has_value());

  // Same seed: identical first day. Different seed: a different day.
  const DayTrace a = make_blueprint_source(spec, bp, 1234)->next_day();
  const DayTrace b = make_blueprint_source(spec, bp, 1234)->next_day();
  const DayTrace c = make_blueprint_source(spec, bp, 1235)->next_day();
  ASSERT_EQ(a.intervals(), b.intervals());
  bool same_ab = true;
  bool same_ac = true;
  for (std::size_t n = 0; n < a.intervals(); ++n) {
    same_ab = same_ab && bits(a.at(n)) == bits(b.at(n));
    same_ac = same_ac && bits(a.at(n)) == bits(c.at(n));
  }
  EXPECT_TRUE(same_ab);
  EXPECT_FALSE(same_ac);
}

TEST(FleetBlueprintCache, PinnedPolicySeedSurvivesBlueprinting) {
  const ScenarioSpec pinned = ScenarioSpec::parse(
      "policy=rlblh;household=default;pricing=srp;train=0;eval=2;"
      "policy.seed=55");
  const ScenarioSpec free_seed = ScenarioSpec::parse(
      "policy=rlblh;household=default;pricing=srp;train=0;eval=2");
  EXPECT_TRUE(make_scenario_blueprint(pinned).policy_seed_pinned);
  EXPECT_FALSE(make_scenario_blueprint(free_seed).policy_seed_pinned);

  // With a pinned policy seed, the fleet's derived policy stream must not
  // displace it: the run matches the plain path on the resolved spec, whose
  // make_scenario_policy also keeps the dotted override.
  FleetSimulator fleet({pinned}, FleetOptions{/*threads=*/1});
  const FleetResult result = fleet.run(9);
  Scenario scenario =
      build_scenario(FleetSimulator::resolved_spec(pinned, 9, 0));
  const EvaluationResult single = run_scenario(scenario);
  ASSERT_EQ(result.households.size(), 1u);
  expect_bitwise_equal(result.households[0], single);
}

// Arena reuse across households in one chunk must be invisible: a fleet of
// heterogeneous geometries (different mi_levels, day schedules) run in one
// chunk equals the same households run one chunk each.
TEST(FleetArenaReuse, GeometrySwitchesInsideAChunkAreClean) {
  std::vector<ScenarioSpec> specs = mixed_fleet();
  specs[1].mi_levels = 4;  // force an accumulator geometry change mid-chunk
  specs[4].mi_levels = 12;

  FleetOptions one_chunk;
  one_chunk.threads = 1;
  one_chunk.chunk = specs.size();
  FleetOptions per_household;
  per_household.threads = 1;
  per_household.chunk = 1;

  const FleetResult batched = FleetSimulator(specs, one_chunk).run(5);
  const FleetResult isolated = FleetSimulator(specs, per_household).run(5);
  ASSERT_EQ(batched.households.size(), isolated.households.size());
  for (std::size_t index = 0; index < specs.size(); ++index) {
    expect_bitwise_equal(batched.households[index],
                         isolated.households[index]);
  }
}

/// A fleet with enough same-blueprint households for lockstep batches to
/// actually form: the mixed fleet, plus nine extra copies of two of its
/// specs (the blueprint cache keys on the seed-normalized spec text, so the
/// copies share blueprints and get grouped).
std::vector<ScenarioSpec> batchable_fleet() {
  std::vector<ScenarioSpec> specs = mixed_fleet();
  const ScenarioSpec rlblh = specs[0];
  const ScenarioSpec lowpass = specs[1];  // pulse_width 0: fallback path
  const ScenarioSpec stepping = specs[2];
  for (int i = 0; i < 5; ++i) specs.push_back(rlblh);
  for (int i = 0; i < 4; ++i) specs.push_back(stepping);
  for (int i = 0; i < 3; ++i) specs.push_back(lowpass);
  return specs;
}

// Lockstep batching is an execution detail: turning it on, at any width,
// must not change a single bit of any household result or aggregate. The
// widths cover full batches, remainders, a width larger than any blueprint
// group (so only the scalar path runs) and the scalar-synonym width 1.
TEST(FleetBatching, BatchWidthDoesNotChangeResultsBitwise) {
  const std::vector<ScenarioSpec> specs = batchable_fleet();
  const std::uint64_t fleet_seed = 11;

  FleetOptions scalar;
  scalar.threads = 1;
  scalar.chunk = 1;
  const FleetResult reference = FleetSimulator(specs, scalar).run(fleet_seed);

  for (const std::size_t width :
       {std::size_t{1}, std::size_t{2}, std::size_t{3}, std::size_t{8},
        std::size_t{64}}) {
    FleetOptions options;
    options.threads = 2;
    options.batch_width = width;
    const FleetResult batched =
        FleetSimulator(specs, options).run(fleet_seed);
    ASSERT_EQ(batched.households.size(), specs.size()) << width;
    for (std::size_t index = 0; index < specs.size(); ++index) {
      expect_bitwise_equal(reference.households[index],
                           batched.households[index]);
    }
    expect_bitwise_equal(reference.saving_ratio, batched.saving_ratio);
    expect_bitwise_equal(reference.mean_cc, batched.mean_cc);
    expect_bitwise_equal(reference.normalized_mi, batched.normalized_mi);
    EXPECT_EQ(reference.battery_violations, batched.battery_violations);
  }
}

// Batching composes with the memory-lean mode: aggregates survive dropping
// the per-household vector under a batched run.
TEST(FleetBatching, BatchingComposesWithDroppedHouseholdResults) {
  const std::vector<ScenarioSpec> specs = batchable_fleet();
  FleetOptions batched;
  batched.threads = 2;
  batched.batch_width = 4;
  const FleetResult full = FleetSimulator(specs, batched).run(13);

  FleetOptions lean = batched;
  lean.keep_households = false;
  const FleetResult dropped = FleetSimulator(specs, lean).run(13);

  EXPECT_TRUE(dropped.households.empty());
  expect_bitwise_equal(full.saving_ratio, dropped.saving_ratio);
  expect_bitwise_equal(full.mean_cc, dropped.mean_cc);
  expect_bitwise_equal(full.normalized_mi, dropped.normalized_mi);
  EXPECT_EQ(full.battery_violations, dropped.battery_violations);
}

}  // namespace
}  // namespace rlblh
