// FleetSimulator's contracts: per-household RNG streams are reproducible
// and collision-free, a 1-household fleet is the plain Simulator path, and
// fleet results are bitwise identical across thread counts.
#include "sim/fleet.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <unordered_set>
#include <vector>

#include "sim/scenario.h"

namespace rlblh {
namespace {

std::uint64_t bits(double value) {
  std::uint64_t out = 0;
  static_assert(sizeof(out) == sizeof(value));
  std::memcpy(&out, &value, sizeof(out));
  return out;
}

void expect_bitwise_equal(const EvaluationResult& a,
                          const EvaluationResult& b) {
  EXPECT_EQ(bits(a.saving_ratio), bits(b.saving_ratio));
  EXPECT_EQ(bits(a.mean_cc), bits(b.mean_cc));
  EXPECT_EQ(bits(a.normalized_mi), bits(b.normalized_mi));
  EXPECT_EQ(bits(a.mean_daily_savings_cents), bits(b.mean_daily_savings_cents));
  EXPECT_EQ(bits(a.mean_daily_bill_cents), bits(b.mean_daily_bill_cents));
  EXPECT_EQ(bits(a.mean_daily_usage_cost_cents),
            bits(b.mean_daily_usage_cost_cents));
  EXPECT_EQ(a.battery_violations, b.battery_violations);
}

void expect_bitwise_equal(const MetricSummary& a, const MetricSummary& b) {
  EXPECT_EQ(bits(a.mean), bits(b.mean));
  EXPECT_EQ(bits(a.p50), bits(b.p50));
  EXPECT_EQ(bits(a.p95), bits(b.p95));
}

/// Eight quick heterogeneous households: every policy family, several
/// presets and tariffs, tiny train/eval windows.
std::vector<ScenarioSpec> mixed_fleet() {
  const char* const specs[] = {
      "policy=rlblh;household=default;pricing=srp;battery=4;train=2;eval=2",
      "policy=lowpass;household=weekday_heavy;pricing=tou2;battery=3;"
      "train=1;eval=2",
      "policy=stepping;household=night_owl;pricing=tou3;battery=5;"
      "train=1;eval=2",
      "policy=none;household=apartment;pricing=flat;train=0;eval=2",
      "policy=random_pulse;household=ev_owner;pricing=srp;battery=4;"
      "train=1;eval=2",
      "policy=mdp;household=default;pricing=srp;battery=3;train=1;eval=2;"
      "policy.levels=16;policy.usage_levels=8",
      "policy=rlblh;household=vacationer;pricing=rtp;battery=5;train=2;"
      "eval=2;pricing.seed=5",
      "policy=lowpass;household=default;pricing=srp;battery=2;train=1;eval=2",
  };
  std::vector<ScenarioSpec> fleet;
  for (const char* spec : specs) fleet.push_back(ScenarioSpec::parse(spec));
  return fleet;
}

TEST(FleetRngStreams, DerivationIsReproducible) {
  const ScenarioSpec base;
  const ScenarioSpec a = FleetSimulator::resolved_spec(base, 42, 17);
  const ScenarioSpec b = FleetSimulator::resolved_spec(base, 42, 17);
  EXPECT_EQ(a.seed, b.seed);
  ASSERT_TRUE(a.hseed.has_value());
  ASSERT_TRUE(b.hseed.has_value());
  EXPECT_EQ(*a.hseed, *b.hseed);
  // A different fleet seed or index moves both streams.
  const ScenarioSpec c = FleetSimulator::resolved_spec(base, 43, 17);
  const ScenarioSpec d = FleetSimulator::resolved_spec(base, 42, 18);
  EXPECT_NE(a.seed, c.seed);
  EXPECT_NE(*a.hseed, *c.hseed);
  EXPECT_NE(a.seed, d.seed);
  EXPECT_NE(*a.hseed, *d.hseed);
}

TEST(FleetRngStreams, NoCollisionsAcrossTenThousandHouseholds) {
  const ScenarioSpec base;
  std::unordered_set<std::uint64_t> streams;
  const std::size_t kHouseholds = 10000;
  for (std::size_t index = 0; index < kHouseholds; ++index) {
    const ScenarioSpec spec =
        FleetSimulator::resolved_spec(base, /*fleet_seed=*/42, index);
    streams.insert(spec.seed);
    streams.insert(*spec.hseed);
  }
  // Every policy seed and every household seed is distinct from all others.
  EXPECT_EQ(streams.size(), 2 * kHouseholds);
}

TEST(FleetQuantile, LinearInterpolationDefinition) {
  const std::vector<double> values = {3.0, 1.0, 4.0, 2.0};  // unsorted input
  EXPECT_EQ(fleet_quantile(values, 0.0), 1.0);
  EXPECT_EQ(fleet_quantile(values, 1.0), 4.0);
  EXPECT_EQ(fleet_quantile(values, 0.5), 2.5);
  EXPECT_EQ(fleet_quantile({7.5}, 0.95), 7.5);
}

TEST(FleetDeterminism, OneHouseholdFleetMatchesSimulatorPath) {
  ScenarioSpec spec = ScenarioSpec::parse(
      "policy=rlblh;household=weekday_heavy;pricing=tou2;battery=4;"
      "train=2;eval=2");
  const std::uint64_t fleet_seed = 99;

  FleetSimulator fleet({spec}, FleetOptions{/*threads=*/1});
  const FleetResult result = fleet.run(fleet_seed);
  ASSERT_EQ(result.households.size(), 1u);

  // The same household through the plain build_scenario/run_scenario path,
  // seeded the way the fleet resolves index 0.
  Scenario scenario =
      build_scenario(FleetSimulator::resolved_spec(spec, fleet_seed, 0));
  const EvaluationResult single = run_scenario(scenario);

  expect_bitwise_equal(result.households[0], single);
  // With one household every aggregate collapses onto that household.
  EXPECT_EQ(bits(result.saving_ratio.mean), bits(single.saving_ratio));
  EXPECT_EQ(bits(result.saving_ratio.p50), bits(single.saving_ratio));
  EXPECT_EQ(bits(result.mean_cc.p95), bits(single.mean_cc));
  EXPECT_EQ(result.battery_violations, single.battery_violations);
}

TEST(FleetDeterminism, ThreadCountDoesNotChangeResultsBitwise) {
  const std::vector<ScenarioSpec> specs = mixed_fleet();
  const std::uint64_t fleet_seed = 7;

  FleetSimulator serial(specs, FleetOptions{/*threads=*/1});
  FleetSimulator wide(specs, FleetOptions{/*threads=*/8});
  const FleetResult a = serial.run(fleet_seed);
  const FleetResult b = wide.run(fleet_seed);

  ASSERT_EQ(a.households.size(), specs.size());
  ASSERT_EQ(b.households.size(), specs.size());
  for (std::size_t index = 0; index < specs.size(); ++index) {
    expect_bitwise_equal(a.households[index], b.households[index]);
  }
  expect_bitwise_equal(a.saving_ratio, b.saving_ratio);
  expect_bitwise_equal(a.mean_cc, b.mean_cc);
  expect_bitwise_equal(a.normalized_mi, b.normalized_mi);
  EXPECT_EQ(a.battery_violations, b.battery_violations);
}

TEST(FleetDeterminism, RunIsRepeatableOnTheSameSimulator) {
  FleetSimulator fleet(mixed_fleet(), FleetOptions{/*threads=*/2});
  const FleetResult first = fleet.run(11);
  const FleetResult second = fleet.run(11);
  ASSERT_EQ(first.households.size(), second.households.size());
  for (std::size_t index = 0; index < first.households.size(); ++index) {
    expect_bitwise_equal(first.households[index], second.households[index]);
  }
}

}  // namespace
}  // namespace rlblh
