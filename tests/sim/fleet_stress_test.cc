// Fleet stress wall: the determinism contract at deployment scale.
//
// Runs a heterogeneous 10k-household fleet (every policy family, several
// presets and tariffs) once serial and once at 8 workers and asserts the
// FleetResults are bitwise identical — per household and in aggregate —
// with every aggregate finite and the violation count consistent with the
// per-household sum. This is the scaled-up version of the fleet_test
// determinism cases: small fleets cannot catch chunk-boundary or
// arena-recycling bugs that only appear when thousands of households share
// workers, chunks and cached blueprints.
//
// Labeled `stress` in CTest so sanitizer jobs can include it at a reduced
// size: RLBLH_STRESS_HOUSEHOLDS overrides the fleet size (default 10000).
#include "sim/fleet.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "sim/scenario.h"

namespace rlblh {
namespace {

std::uint64_t bits(double value) {
  std::uint64_t out = 0;
  static_assert(sizeof(out) == sizeof(value));
  std::memcpy(&out, &value, sizeof(out));
  return out;
}

std::size_t stress_households() {
  const char* const env = std::getenv("RLBLH_STRESS_HOUSEHOLDS");
  if (env != nullptr && *env != '\0') {
    const unsigned long parsed = std::strtoul(env, nullptr, 10);
    if (parsed >= 1) return static_cast<std::size_t>(parsed);
  }
  return 10000;
}

/// The bench's heterogeneous rotation: every policy family, mixed presets
/// and tariffs, one simulated day per household (the stress is the fleet
/// machinery, not the day loop).
std::vector<ScenarioSpec> stress_fleet(std::size_t size) {
  const char* const mixes[] = {
      "policy=rlblh;household=default;pricing=srp;battery=5",
      "policy=lowpass;household=weekday_heavy;pricing=tou2;battery=3",
      "policy=stepping;household=night_owl;pricing=tou3;battery=5",
      "policy=none;household=apartment;pricing=flat",
      "policy=random_pulse;household=vacationer;pricing=srp;battery=4",
      "policy=mdp;household=ev_owner;pricing=srp;battery=3;"
      "policy.levels=16;policy.usage_levels=8",
      "policy=rlblh;household=weekday_heavy;pricing=rtp;battery=5;"
      "pricing.seed=5",
      "policy=lowpass;household=default;pricing=srp;battery=2",
  };
  const std::size_t n_mixes = sizeof(mixes) / sizeof(mixes[0]);
  std::vector<ScenarioSpec> fleet;
  fleet.reserve(size);
  for (std::size_t index = 0; index < size; ++index) {
    ScenarioSpec spec = ScenarioSpec::parse(mixes[index % n_mixes]);
    spec.train_days = 0;
    spec.eval_days = 1;
    fleet.push_back(std::move(spec));
  }
  return fleet;
}

void expect_summary_finite_and_equal(const MetricSummary& a,
                                     const MetricSummary& b,
                                     const char* metric) {
  EXPECT_TRUE(std::isfinite(a.mean)) << metric;
  EXPECT_TRUE(std::isfinite(a.p50)) << metric;
  EXPECT_TRUE(std::isfinite(a.p95)) << metric;
  EXPECT_EQ(bits(a.mean), bits(b.mean)) << metric;
  EXPECT_EQ(bits(a.p50), bits(b.p50)) << metric;
  EXPECT_EQ(bits(a.p95), bits(b.p95)) << metric;
}

TEST(FleetStress, TenThousandHouseholdsBitwiseAcrossThreadCounts) {
  const std::size_t n = stress_households();
  const std::vector<ScenarioSpec> specs = stress_fleet(n);
  const std::uint64_t fleet_seed = 2026;

  FleetSimulator serial(specs, FleetOptions{/*threads=*/1});
  FleetSimulator wide(specs, FleetOptions{/*threads=*/8});
  const FleetResult a = serial.run(fleet_seed);
  const FleetResult b = wide.run(fleet_seed);

  ASSERT_EQ(a.households.size(), n);
  ASSERT_EQ(b.households.size(), n);

  // Per-household bitwise equality plus the violation consistency check:
  // the aggregate is exactly the sum of its parts in both runs.
  std::size_t violations_a = 0;
  std::size_t violations_b = 0;
  std::size_t mismatches = 0;
  for (std::size_t h = 0; h < n; ++h) {
    const EvaluationResult& ha = a.households[h];
    const EvaluationResult& hb = b.households[h];
    violations_a += ha.battery_violations;
    violations_b += hb.battery_violations;
    const bool equal =
        bits(ha.saving_ratio) == bits(hb.saving_ratio) &&
        bits(ha.mean_cc) == bits(hb.mean_cc) &&
        bits(ha.normalized_mi) == bits(hb.normalized_mi) &&
        bits(ha.mean_daily_savings_cents) ==
            bits(hb.mean_daily_savings_cents) &&
        bits(ha.mean_daily_bill_cents) == bits(hb.mean_daily_bill_cents) &&
        bits(ha.mean_daily_usage_cost_cents) ==
            bits(hb.mean_daily_usage_cost_cents) &&
        ha.battery_violations == hb.battery_violations;
    if (!equal) {
      ++mismatches;
      // Report the first few divergent households, not ten thousand lines.
      EXPECT_LE(mismatches, 3u) << "household " << h << " differs between "
                                << "the 1-thread and 8-thread runs";
    }
    EXPECT_TRUE(std::isfinite(ha.saving_ratio)) << "household " << h;
    EXPECT_TRUE(std::isfinite(ha.mean_cc)) << "household " << h;
    EXPECT_TRUE(std::isfinite(ha.normalized_mi)) << "household " << h;
  }
  EXPECT_EQ(mismatches, 0u);
  EXPECT_EQ(a.battery_violations, violations_a);
  EXPECT_EQ(b.battery_violations, violations_b);
  EXPECT_EQ(a.battery_violations, b.battery_violations);

  expect_summary_finite_and_equal(a.saving_ratio, b.saving_ratio, "SR");
  expect_summary_finite_and_equal(a.mean_cc, b.mean_cc, "CC");
  expect_summary_finite_and_equal(a.normalized_mi, b.normalized_mi, "MI");
}

}  // namespace
}  // namespace rlblh
