#include "sim/simulator.h"

#include <gtest/gtest.h>

#include "baselines/lowpass.h"
#include "core/rlblh_policy.h"
#include "meter/household.h"
#include "util/error.h"

namespace rlblh {
namespace {

/// A deterministic trace source for controlled tests.
class FixedTraceSource final : public TraceSource {
 public:
  FixedTraceSource(std::size_t intervals, double value)
      : intervals_(intervals), value_(value) {}
  DayTrace next_day() override {
    return DayTrace(std::vector<double>(intervals_, value_));
  }
  std::size_t intervals() const override { return intervals_; }
  double usage_cap() const override { return 0.08; }

 private:
  std::size_t intervals_;
  double value_;
};

RlBlhConfig small_rl_config() {
  RlBlhConfig config;
  config.intervals_per_day = 48;
  config.decision_interval = 4;
  config.battery_capacity = 1.0;
  config.num_actions = 4;
  config.enable_reuse = false;
  config.enable_synthetic = false;
  return config;
}

TEST(Simulator, RejectsNullSourceAndLengthMismatch) {
  EXPECT_THROW(Simulator(nullptr, TouSchedule::flat(48, 1.0),
                         Battery(1.0, 0.5)),
               ConfigError);
  EXPECT_THROW(Simulator(std::make_unique<FixedTraceSource>(48, 0.02),
                         TouSchedule::flat(10, 1.0), Battery(1.0, 0.5)),
               ConfigError);
}

TEST(Simulator, PassthroughReportsUsageExactly) {
  Simulator sim(std::make_unique<FixedTraceSource>(48, 0.02),
                TouSchedule::flat(48, 1.0), Battery(1.0, 0.5));
  PassthroughPolicy policy;
  const DayResult day = sim.run_day(policy);
  for (std::size_t n = 0; n < 48; ++n) {
    ASSERT_DOUBLE_EQ(day.readings.at(n), day.usage.at(n));
  }
  EXPECT_DOUBLE_EQ(day.savings_cents, 0.0);
  EXPECT_DOUBLE_EQ(day.bill_cents, day.usage_cost_cents);
  // The battery is untouched in passthrough mode.
  EXPECT_DOUBLE_EQ(sim.battery().level(), 0.5);
}

TEST(Simulator, RecordsBatteryLevelsAtIntervalStarts) {
  Simulator sim(std::make_unique<FixedTraceSource>(48, 0.02),
                TouSchedule::flat(48, 1.0), Battery(1.0, 0.5));
  RlBlhPolicy policy(small_rl_config());
  const DayResult day = sim.run_day(policy);
  ASSERT_EQ(day.battery_levels.size(), 48u);
  EXPECT_DOUBLE_EQ(day.battery_levels[0], 0.5);
  // Recorded level must evolve per b_{n+1} = b_n + y_n - x_n.
  for (std::size_t n = 1; n < 48; ++n) {
    const double expected = day.battery_levels[n - 1] +
                            day.readings.at(n - 1) - day.usage.at(n - 1);
    ASSERT_NEAR(day.battery_levels[n], expected, 1e-12);
  }
}

TEST(Simulator, BatteryPersistsAcrossDays) {
  Simulator sim(std::make_unique<FixedTraceSource>(48, 0.02),
                TouSchedule::flat(48, 1.0), Battery(1.0, 0.5));
  RlBlhPolicy policy(small_rl_config());
  const DayResult d1 = sim.run_day(policy);
  const double end_of_day1 = d1.battery_levels.back() +
                             d1.readings.at(47) - d1.usage.at(47);
  const DayResult d2 = sim.run_day(policy);
  EXPECT_NEAR(d2.battery_levels.front(), end_of_day1, 1e-12);
}

TEST(Simulator, SavingsIdentityHolds) {
  // savings + bill == usage cost, by construction of the three sums.
  Simulator sim(std::make_unique<FixedTraceSource>(48, 0.03),
                TouSchedule::two_zone(48, 34, 7.0, 21.0), Battery(1.0, 0.5));
  RlBlhPolicy policy(small_rl_config());
  for (int d = 0; d < 5; ++d) {
    const DayResult day = sim.run_day(policy);
    EXPECT_NEAR(day.savings_cents + day.bill_cents, day.usage_cost_cents,
                1e-9);
  }
}

TEST(Simulator, ShortfallShowsUpInMeterReadings) {
  // A policy that always requests zero drains the battery; once empty, the
  // meter must report the grid draw that actually served the load.
  class ZeroPolicy final : public BlhPolicy {
   public:
    void begin_day(const TouSchedule&) override {}
    double reading(std::size_t, double) override { return 0.0; }
    void observe_usage(std::size_t, double) override {}
    std::string_view name() const override { return "zero"; }
  };
  Simulator sim(std::make_unique<FixedTraceSource>(48, 0.05),
                TouSchedule::flat(48, 1.0), Battery(1.0, 0.1));
  ZeroPolicy policy;
  const DayResult day = sim.run_day(policy);
  EXPECT_GT(day.battery_violations, 0u);
  // Total grid energy must equal total usage minus the 0.1 kWh that the
  // battery supplied.
  EXPECT_NEAR(day.readings.total(), day.usage.total() - 0.1, 1e-9);
}

TEST(Simulator, RunDaysReturnsLastResult) {
  Simulator sim(std::make_unique<FixedTraceSource>(48, 0.02),
                TouSchedule::flat(48, 1.0), Battery(1.0, 0.5));
  RlBlhPolicy policy(small_rl_config());
  const DayResult last = sim.run_days(policy, 5);
  EXPECT_EQ(policy.days_completed(), 5u);
  EXPECT_EQ(last.usage.intervals(), 48u);
  EXPECT_THROW(sim.run_days(policy, 0), ConfigError);
}

TEST(Simulator, SetPricesValidatesAndApplies) {
  Simulator sim(std::make_unique<FixedTraceSource>(48, 0.02),
                TouSchedule::flat(48, 1.0), Battery(1.0, 0.5));
  EXPECT_THROW(sim.set_prices(TouSchedule::flat(10, 1.0)), ConfigError);
  sim.set_prices(TouSchedule::flat(48, 9.0));
  EXPECT_DOUBLE_EQ(sim.prices().rate(0), 9.0);
}

TEST(Simulator, ResetBattery) {
  Simulator sim(std::make_unique<FixedTraceSource>(48, 0.02),
                TouSchedule::flat(48, 1.0), Battery(1.0, 0.5));
  sim.reset_battery(0.9);
  EXPECT_DOUBLE_EQ(sim.battery().level(), 0.9);
}

}  // namespace
}  // namespace rlblh
