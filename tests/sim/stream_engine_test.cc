// Unit tests for StreamEngine: protocol errors, both policy paths, and
// spot equality with SimEngine (the exhaustive bitwise sweep lives in
// tests/proptest/stream_diff_proptest.cc).
#include <bit>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/lowpass.h"
#include "battery/battery.h"
#include "core/config.h"
#include "core/rlblh_policy.h"
#include "meter/trace.h"
#include "pricing/tou.h"
#include "sim/engine.h"
#include "sim/stream_engine.h"
#include "util/error.h"
#include "util/rng.h"

namespace rlblh {
namespace {

bool same_bits(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

RlBlhConfig small_config() {
  RlBlhConfig config;
  config.intervals_per_day = 96;
  config.decision_interval = 8;
  config.seed = 42;
  return config;
}

DayTrace random_day(std::size_t intervals, Rng& rng) {
  DayTrace day(intervals);
  for (std::size_t n = 0; n < intervals; ++n) {
    day.set(n, rng.uniform(0.0, 1.0));
  }
  return day;
}

class SingleDaySource final : public TraceSource {
 public:
  explicit SingleDaySource(DayTrace day) : day_(std::move(day)) {}
  DayTrace next_day() override { return day_; }
  std::size_t intervals() const override { return day_.intervals(); }
  double usage_cap() const override { return 1.0; }

 private:
  DayTrace day_;
};

TEST(StreamEngineTest, LifecycleErrors) {
  const RlBlhConfig config = small_config();
  const TouSchedule prices = TouSchedule::flat(config.intervals_per_day, 8.0);
  RlBlhPolicy policy(config);
  Battery battery(config.battery_capacity, config.battery_capacity / 2.0);
  StreamEngine engine;

  EXPECT_THROW(engine.push(0.5), ConfigError);
  EXPECT_THROW(engine.finish_day(), ConfigError);

  engine.begin_day(prices, battery, policy);
  EXPECT_TRUE(engine.day_open());
  EXPECT_THROW(engine.begin_day(prices, battery, policy), ConfigError);
  EXPECT_THROW(engine.finish_day(), ConfigError);  // no interval pushed yet
  EXPECT_THROW(engine.push(-1.0), ConfigError);

  for (std::size_t n = 0; n < config.intervals_per_day; ++n) {
    engine.push(0.25);
  }
  EXPECT_THROW(engine.push(0.25), ConfigError);  // day is full
  const DayResult& result = engine.finish_day();
  EXPECT_EQ(result.usage.intervals(), config.intervals_per_day);
  EXPECT_FALSE(engine.day_open());
}

TEST(StreamEngineTest, MatchesSimEngineBitwiseOnBlockedPolicy) {
  const RlBlhConfig config = small_config();
  const TouSchedule prices =
      TouSchedule::two_zone(config.intervals_per_day, 60, 7.04, 21.09);
  Rng rng(17);

  RlBlhPolicy batch_policy(config);
  RlBlhPolicy stream_policy(config);
  Battery batch_battery(config.battery_capacity,
                        config.battery_capacity / 2.0);
  Battery stream_battery(config.battery_capacity,
                         config.battery_capacity / 2.0);
  SimEngine batch;
  StreamEngine stream;

  for (int d = 0; d < 4; ++d) {
    const DayTrace day = random_day(config.intervals_per_day, rng);
    SingleDaySource source(day);
    const DayResult& expected =
        batch.run_day(source, prices, batch_battery, batch_policy);

    stream.begin_day(prices, stream_battery, stream_policy);
    for (std::size_t n = 0; n < day.intervals(); ++n) {
      stream.push(day.at(n));
    }
    const DayResult& actual = stream.finish_day();

    for (std::size_t n = 0; n < day.intervals(); ++n) {
      ASSERT_TRUE(same_bits(expected.readings.at(n), actual.readings.at(n)))
          << "reading " << n << " day " << d;
      ASSERT_TRUE(
          same_bits(expected.battery_levels[n], actual.battery_levels[n]))
          << "level " << n << " day " << d;
    }
    EXPECT_TRUE(same_bits(expected.savings_cents, actual.savings_cents));
    EXPECT_TRUE(same_bits(expected.bill_cents, actual.bill_cents));
    EXPECT_TRUE(
        same_bits(expected.usage_cost_cents, actual.usage_cost_cents));
    EXPECT_EQ(expected.battery_violations, actual.battery_violations);
    EXPECT_TRUE(same_bits(batch_battery.level(), stream_battery.level()));
  }
}

TEST(StreamEngineTest, PassthroughPolicyMetersUsageDirectly) {
  const std::size_t n_m = 48;
  const TouSchedule prices = TouSchedule::flat(n_m, 10.0);
  PassthroughPolicy policy;
  Battery battery(5.0, 2.5);
  StreamEngine engine;
  Rng rng(3);
  const DayTrace day = random_day(n_m, rng);

  engine.begin_day(prices, battery, policy);
  for (std::size_t n = 0; n < n_m; ++n) engine.push(day.at(n));
  const DayResult& result = engine.finish_day();

  for (std::size_t n = 0; n < n_m; ++n) {
    EXPECT_TRUE(same_bits(result.readings.at(n), day.at(n)));
  }
  EXPECT_TRUE(same_bits(result.savings_cents, 0.0));
  EXPECT_TRUE(same_bits(battery.level(), 2.5));  // untouched
}

TEST(StreamEngineTest, InvariantChecksRunOnFinish) {
  const RlBlhConfig config = small_config();
  const TouSchedule prices = TouSchedule::flat(config.intervals_per_day, 8.0);
  RlBlhPolicy policy(config);
  Battery battery(config.battery_capacity, config.battery_capacity / 2.0);
  StreamEngine engine;
  InvariantCheckConfig check;
  check.battery_capacity = config.battery_capacity;
  check.usage_cap = config.usage_cap;
  check.expect_feasible = false;  // an untrained policy clips freely
  engine.enable_invariant_checks(check);
  EXPECT_TRUE(engine.invariant_checks_enabled());

  Rng rng(9);
  engine.begin_day(prices, battery, policy);
  for (std::size_t n = 0; n < config.intervals_per_day; ++n) {
    engine.push(rng.uniform(0.0, 1.0));
  }
  EXPECT_NO_THROW(engine.finish_day());
}

}  // namespace
}  // namespace rlblh
