// BatchDay edge-case units: the W=1 degenerate batch and the truncated
// final block, checked at the container level (strided lane views and
// extract_lane) rather than through the randomized differential suite.
//
// These two geometries are where the transpose removal could silently go
// wrong: at W=1 the interval-major layout collapses to the scalar layout
// (stride 1), so any off-by-stride bug hides; with a non-divisor n_D the
// last block is shorter than pulse_width(), so views and extraction must
// agree over a day whose final fill/observe block was truncated.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <memory>
#include <vector>

#include "baselines/random_pulse.h"
#include "battery/battery.h"
#include "core/config.h"
#include "core/policy.h"
#include "meter/trace.h"
#include "pricing/tou.h"
#include "sim/batch_engine.h"
#include "sim/engine.h"

namespace rlblh {
namespace {

bool same_bits(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

/// Replays one fixed day forever; batch and scalar twins share the values.
class FixedDaySource final : public TraceSource {
 public:
  FixedDaySource(std::vector<double> values, double cap)
      : day_(values.size()), cap_(cap) {
    for (std::size_t n = 0; n < values.size(); ++n) day_.set(n, values[n]);
  }

  DayTrace next_day() override { return day_; }
  std::size_t intervals() const override { return day_.intervals(); }
  double usage_cap() const override { return cap_; }

 private:
  DayTrace day_;
  double cap_ = 0.0;
};

/// Deterministic per-lane usage: lane k's interval n is k + n/1000, so a
/// misplaced stride or swapped lane shows up as a whole-unit difference.
std::vector<double> lane_usage(std::size_t lane, std::size_t intervals,
                               double cap) {
  std::vector<double> values(intervals);
  for (std::size_t n = 0; n < intervals; ++n) {
    const double v = static_cast<double>(lane) +
                     static_cast<double>(n) / 1000.0;
    values[n] = v < cap ? v : cap;
  }
  return values;
}

struct BatchFixture {
  std::vector<std::unique_ptr<TraceSource>> sources;
  std::vector<std::unique_ptr<BlhPolicy>> policies;
  std::vector<TraceSource*> source_ptrs;
  std::vector<BlhPolicy*> policy_ptrs;
  BatteryLanes batteries;
  TouSchedule prices = TouSchedule::flat(1, 1.0);  // replaced per fixture
};

/// W lanes of RandomPulsePolicy over fixed per-lane days. The geometry is
/// taken from `config` (intervals_per_day need not be a multiple of
/// decision_interval).
BatchFixture make_fixture(std::size_t width, const RlBlhConfig& config) {
  BatchFixture f;
  const double cap = config.usage_cap * 100.0;  // lane markers stay uncapped
  for (std::size_t k = 0; k < width; ++k) {
    f.sources.push_back(std::make_unique<FixedDaySource>(
        lane_usage(k, config.intervals_per_day, cap), cap));
    RlBlhConfig lane_config = config;
    lane_config.seed = config.seed + k;
    f.policies.push_back(std::make_unique<RandomPulsePolicy>(lane_config));
  }
  for (std::size_t k = 0; k < width; ++k) {
    f.source_ptrs.push_back(f.sources[k].get());
    f.policy_ptrs.push_back(f.policies[k].get());
  }
  f.batteries.reset(width, config.battery_capacity,
                    config.battery_capacity / 2.0);
  f.prices = TouSchedule::two_zone(config.intervals_per_day,
                                   config.intervals_per_day / 3, 7.04, 21.09);
  return f;
}

RlBlhConfig truncated_geometry() {
  RlBlhConfig config;
  config.intervals_per_day = 130;  // 7 * 17 + 11: last block is short
  config.decision_interval = 17;
  config.usage_cap = 0.08;
  config.battery_capacity = 2.0 * config.usage_cap * 17.0;
  return config;
}

TEST(BatchDayTest, LaneViewsMatchExtractLaneOnTruncatedFinalBlock) {
  const RlBlhConfig config = truncated_geometry();
  ASSERT_NE(config.intervals_per_day % config.decision_interval, 0u);
  constexpr std::size_t kWidth = 5;
  BatchFixture f = make_fixture(kWidth, config);

  BatchEngine engine;
  const BatchDay& day = engine.run_day(f.source_ptrs, f.prices, f.batteries,
                                       f.policy_ptrs);
  ASSERT_EQ(day.width, kWidth);
  ASSERT_EQ(day.intervals, config.intervals_per_day);

  DayResult extracted;
  for (std::size_t k = 0; k < kWidth; ++k) {
    const ConstTraceLane usage = day.usage_lane(k);
    const ConstTraceLane readings = day.readings_lane(k);
    ASSERT_EQ(usage.intervals(), day.intervals);
    ASSERT_EQ(readings.intervals(), day.intervals);
    day.extract_lane(k, extracted);
    ASSERT_EQ(extracted.usage.intervals(), day.intervals);
    for (std::size_t n = 0; n < day.intervals; ++n) {
      // The view, the extraction and the raw SoA slot are the same value.
      EXPECT_TRUE(same_bits(usage[n], day.usage[n * kWidth + k]));
      EXPECT_TRUE(same_bits(extracted.usage.at(n), usage[n]));
      EXPECT_TRUE(same_bits(readings[n], day.readings[n * kWidth + k]));
      EXPECT_TRUE(same_bits(extracted.readings.at(n), readings[n]));
      EXPECT_TRUE(
          same_bits(extracted.battery_levels[n], day.levels[n * kWidth + k]));
    }
    // The lane marker survived synthesis: lane k's usage is k-offset.
    EXPECT_GE(extracted.usage.at(day.intervals - 1),
              static_cast<double>(k));
    EXPECT_TRUE(same_bits(extracted.savings_cents, day.savings_cents[k]));
    EXPECT_TRUE(same_bits(extracted.bill_cents, day.bill_cents[k]));
    EXPECT_TRUE(
        same_bits(extracted.usage_cost_cents, day.usage_cost_cents[k]));
    EXPECT_EQ(extracted.battery_violations, day.battery_violations[k]);
  }
}

TEST(BatchDayTest, WidthOneBatchIsBitwiseEqualToScalarEngine) {
  for (const bool truncated : {false, true}) {
    RlBlhConfig config = truncated_geometry();
    if (!truncated) config.intervals_per_day = 136;  // 8 * 17, no remainder
    BatchFixture batch_side = make_fixture(1, config);
    BatchFixture scalar_side = make_fixture(1, config);

    Battery scalar_battery(config.battery_capacity,
                           config.battery_capacity / 2.0);
    BatchEngine batch_engine;
    SimEngine scalar_engine;
    DayResult extracted;
    for (int d = 0; d < 3; ++d) {
      const DayResult& ref = scalar_engine.run_day(
          *scalar_side.sources[0], scalar_side.prices, scalar_battery,
          *scalar_side.policies[0]);
      const BatchDay& day =
          batch_engine.run_day(batch_side.source_ptrs, batch_side.prices,
                               batch_side.batteries, batch_side.policy_ptrs);
      ASSERT_EQ(day.width, 1u);
      day.extract_lane(0, extracted);
      for (std::size_t n = 0; n < day.intervals; ++n) {
        ASSERT_TRUE(same_bits(extracted.usage.at(n), ref.usage.at(n)))
            << "usage day " << d << " interval " << n;
        ASSERT_TRUE(same_bits(extracted.readings.at(n), ref.readings.at(n)))
            << "reading day " << d << " interval " << n;
        ASSERT_TRUE(
            same_bits(extracted.battery_levels[n], ref.battery_levels[n]))
            << "battery day " << d << " interval " << n;
        // At W=1 the strided view is the contiguous series.
        ASSERT_TRUE(same_bits(day.usage_lane(0)[n], ref.usage.at(n)));
      }
      ASSERT_TRUE(same_bits(extracted.savings_cents, ref.savings_cents));
      ASSERT_TRUE(same_bits(extracted.bill_cents, ref.bill_cents));
      ASSERT_TRUE(
          same_bits(batch_side.batteries.level(0), scalar_battery.level()));
    }
  }
}

}  // namespace
}  // namespace rlblh
