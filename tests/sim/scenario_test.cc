// ScenarioSpec parsing/round-tripping and the registry construction path's
// equivalence to hand-wired component assembly.
#include "sim/scenario.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>

#include "core/rlblh_policy.h"
#include "meter/household.h"
#include "pricing/tou.h"
#include "sim/experiment.h"
#include "util/error.h"

namespace rlblh {
namespace {

std::uint64_t bits(double value) {
  std::uint64_t out = 0;
  static_assert(sizeof(out) == sizeof(value));
  std::memcpy(&out, &value, sizeof(out));
  return out;
}

void expect_bitwise_equal(const EvaluationResult& a,
                          const EvaluationResult& b) {
  EXPECT_EQ(bits(a.saving_ratio), bits(b.saving_ratio));
  EXPECT_EQ(bits(a.mean_cc), bits(b.mean_cc));
  EXPECT_EQ(bits(a.normalized_mi), bits(b.normalized_mi));
  EXPECT_EQ(bits(a.mean_daily_savings_cents), bits(b.mean_daily_savings_cents));
  EXPECT_EQ(bits(a.mean_daily_bill_cents), bits(b.mean_daily_bill_cents));
  EXPECT_EQ(bits(a.mean_daily_usage_cost_cents),
            bits(b.mean_daily_usage_cost_cents));
  EXPECT_EQ(a.battery_violations, b.battery_violations);
}

TEST(ScenarioSpecTest, ParseRoutesFieldsAndDottedParams) {
  const ScenarioSpec spec = ScenarioSpec::parse(
      "policy=lowpass;household=night_owl;pricing=tou3;battery=13.5;nd=10;"
      "seed=11;hseed=12;train=5;eval=6;mi=4;"
      "policy.smoothing=0.5;household.scale=1.2;pricing.peak_rate=30");
  EXPECT_EQ(spec.policy, "lowpass");
  EXPECT_EQ(spec.household, "night_owl");
  EXPECT_EQ(spec.pricing, "tou3");
  EXPECT_EQ(spec.battery_kwh, 13.5);
  EXPECT_EQ(spec.nd, 10u);
  EXPECT_EQ(spec.seed, 11u);
  ASSERT_TRUE(spec.hseed.has_value());
  EXPECT_EQ(*spec.hseed, 12u);
  EXPECT_EQ(spec.train_days, 5u);
  EXPECT_EQ(spec.eval_days, 6u);
  EXPECT_EQ(spec.mi_levels, 4u);
  EXPECT_EQ(spec.policy_params.get_double("smoothing", 0.0), 0.5);
  EXPECT_EQ(spec.household_params.get_double("scale", 0.0), 1.2);
  EXPECT_EQ(spec.pricing_params.get_double("peak_rate", 0.0), 30.0);
}

TEST(ScenarioSpecTest, ParseRejectsUnknownKeys) {
  EXPECT_THROW(ScenarioSpec::parse("polcy=rlblh"), ConfigError);
  EXPECT_THROW(ScenarioSpec::parse("meter.scale=2"), ConfigError);
  EXPECT_THROW(ScenarioSpec::parse("policy.=1"), ConfigError);
}

TEST(ScenarioSpecTest, CanonicalRoundTrips) {
  const char* given =
      "eval=6;policy=lowpass;battery=3;policy.smoothing=0.25;train=5";
  const ScenarioSpec spec = ScenarioSpec::parse(given);
  const std::string canonical = spec.canonical();
  EXPECT_EQ(ScenarioSpec::parse(canonical).canonical(), canonical);
  // hseed is printed only when it was set explicitly, so the default
  // seed + 1000 coupling survives later seed edits.
  EXPECT_EQ(canonical.find("hseed"), std::string::npos);
  ScenarioSpec pinned = spec;
  pinned.hseed = 99;
  EXPECT_NE(pinned.canonical().find("hseed=99"), std::string::npos);
  EXPECT_EQ(ScenarioSpec::parse(pinned.canonical()).canonical(),
            pinned.canonical());
}

TEST(ScenarioSpecTest, HouseholdSeedDefaultsToSeedPlus1000) {
  ScenarioSpec spec;
  spec.seed = 41;
  EXPECT_EQ(spec.household_seed(), 1041u);
  spec.hseed = 5;
  EXPECT_EQ(spec.household_seed(), 5u);
}

TEST(ScenarioBuildTest, RegistryPathMatchesManualWiringBitwise) {
  ScenarioSpec spec;
  spec.nd = 15;
  spec.battery_kwh = 4.0;
  spec.seed = 21;
  spec.train_days = 3;
  spec.eval_days = 2;

  Scenario scenario = build_scenario(spec);
  const EvaluationResult registry_result = run_scenario(scenario);

  // The same run assembled by hand, the way call sites did before the
  // registry existed.
  RlBlhConfig config;
  config.decision_interval = spec.nd;
  config.battery_capacity = spec.battery_kwh;
  config.seed = spec.seed;
  RlBlhPolicy policy(config);
  Simulator simulator =
      make_household_simulator(HouseholdConfig{}, TouSchedule::srp_plan(),
                               spec.battery_kwh, spec.household_seed());
  EvaluationConfig eval;
  eval.train_days = spec.train_days;
  eval.eval_days = spec.eval_days;
  eval.mi_levels = spec.mi_levels;
  const EvaluationResult manual_result =
      evaluate_policy(simulator, policy, eval);

  expect_bitwise_equal(registry_result, manual_result);
}

TEST(ScenarioBuildTest, RunSpecMatchesRunScenarioBitwise) {
  ScenarioSpec spec = ScenarioSpec::parse(
      "policy=lowpass;household=weekday_heavy;pricing=tou2;battery=3;"
      "seed=13;train=2;eval=3");
  Scenario scenario = build_scenario(spec);
  const EvaluationResult via_scenario = run_scenario(scenario);
  const TouSchedule prices = make_scenario_pricing(spec);
  const EvaluationResult via_engine = run_spec(spec, prices);
  expect_bitwise_equal(via_scenario, via_engine);
}

TEST(ScenarioBuildTest, MdpPretrainIsDeterministic) {
  ScenarioSpec spec = ScenarioSpec::parse(
      "policy=mdp;battery=3;seed=19;train=2;eval=2;"
      "policy.levels=16;policy.usage_levels=8");
  Scenario first = build_scenario(spec);
  Scenario second = build_scenario(spec);
  expect_bitwise_equal(run_scenario(first), run_scenario(second));
}

}  // namespace
}  // namespace rlblh
