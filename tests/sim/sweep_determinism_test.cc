// The sweep engine's central contract: parallel results are bitwise
// identical to serial results. These tests run the same small grid of real
// Simulator/policy cells serially, with 2 threads, and with more threads
// than cells, and compare every EvaluationResult field at the bit level.
#include "sim/sweep.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/rlblh_policy.h"
#include "meter/household.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "sim/experiment.h"

namespace rlblh {
namespace {

// Bit-level equality: NaN-safe and sensitive to -0.0 vs 0.0, unlike ==.
std::uint64_t bits(double value) {
  std::uint64_t out = 0;
  static_assert(sizeof(out) == sizeof(value));
  std::memcpy(&out, &value, sizeof(out));
  return out;
}

void expect_bitwise_equal(const EvaluationResult& a,
                          const EvaluationResult& b) {
  EXPECT_EQ(bits(a.saving_ratio), bits(b.saving_ratio));
  EXPECT_EQ(bits(a.mean_cc), bits(b.mean_cc));
  EXPECT_EQ(bits(a.normalized_mi), bits(b.normalized_mi));
  EXPECT_EQ(bits(a.mean_daily_savings_cents), bits(b.mean_daily_savings_cents));
  EXPECT_EQ(bits(a.mean_daily_bill_cents), bits(b.mean_daily_bill_cents));
  EXPECT_EQ(bits(a.mean_daily_usage_cost_cents),
            bits(b.mean_daily_usage_cost_cents));
  EXPECT_EQ(a.battery_violations, b.battery_violations);
}

// One grid cell: a full (small) train-then-measure experiment constructed
// entirely from the cell's (capacity, seed) coordinates — a pure function
// of the grid index, as SweepRunner requires.
EvaluationResult run_cell(double battery_capacity, unsigned seed) {
  RlBlhConfig config;
  config.decision_interval = 15;
  config.battery_capacity = battery_capacity;
  config.seed = seed;
  RlBlhPolicy policy(config);
  Simulator simulator = make_household_simulator(
      HouseholdConfig{}, TouSchedule::srp_plan(), battery_capacity,
      1000 + seed);
  EvaluationConfig eval;
  eval.train_days = 3;
  eval.eval_days = 2;
  return evaluate_policy(simulator, policy, eval);
}

std::vector<EvaluationResult> sweep_with(std::size_t threads) {
  const std::vector<double> capacities = {3.0, 5.0};
  const std::vector<unsigned> seeds = {7, 8};
  SweepRunner runner(SweepOptions{threads});
  return runner.run_grid(capacities, seeds, [](double capacity,
                                               unsigned seed) {
    return run_cell(capacity, seed);
  });
}

TEST(SweepDeterminismTest, ParallelMatchesSerialBitwise) {
  const std::vector<EvaluationResult> serial = sweep_with(1);
  const std::vector<EvaluationResult> two = sweep_with(2);
  const std::vector<EvaluationResult> wide = sweep_with(8);  // > cells

  ASSERT_EQ(serial.size(), 4u);
  ASSERT_EQ(two.size(), serial.size());
  ASSERT_EQ(wide.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE("cell " + std::to_string(i));
    expect_bitwise_equal(serial[i], two[i]);
    expect_bitwise_equal(serial[i], wide[i]);
  }
}

TEST(SweepDeterminismTest, ReducedStatsMatchAcrossThreadCounts) {
  const std::vector<EvaluationResult> serial = sweep_with(1);
  const std::vector<EvaluationResult> parallel = sweep_with(2);
  // Per-config seed means, reduced in grid order on the calling thread.
  for (std::size_t row = 0; row < 2; ++row) {
    const EvaluationStats a = mean_over_cells(serial, row * 2, 2);
    const EvaluationStats b = mean_over_cells(parallel, row * 2, 2);
    EXPECT_EQ(a.count(), b.count());
    EXPECT_EQ(bits(a.saving_ratio.mean()), bits(b.saving_ratio.mean()));
    EXPECT_EQ(bits(a.mean_cc.mean()), bits(b.mean_cc.mean()));
    EXPECT_EQ(bits(a.normalized_mi.mean()), bits(b.normalized_mi.mean()));
    EXPECT_EQ(a.battery_violations, b.battery_violations);
  }
}

TEST(SweepDeterminismTest, RunPreservesGridOrder) {
  SweepRunner runner(SweepOptions{4});
  const std::vector<std::size_t> results =
      runner.run(32, [](std::size_t cell) { return cell * 10; });
  ASSERT_EQ(results.size(), 32u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i], i * 10);
  }
}

TEST(SweepDeterminismTest, LowestIndexedFailureWinsDeterministically) {
  SweepRunner runner(SweepOptions{4});
  const auto body = [](std::size_t cell) -> int {
    if (cell == 3 || cell == 7) {
      throw std::runtime_error("cell " + std::to_string(cell));
    }
    return static_cast<int>(cell);
  };
  for (int attempt = 0; attempt < 4; ++attempt) {
    try {
      runner.run(16, body);
      FAIL() << "sweep with failing cells must throw";
    } catch (const std::runtime_error& error) {
      EXPECT_STREQ(error.what(), "cell 3");
    }
  }
}

TEST(SweepDeterminismTest, ObservabilityOnMatchesOffBitwise) {
  // The instrumentation contract: recording metrics and spans only reads
  // simulation values — it never touches an Rng or feeds back into control
  // flow — so results with observability enabled are bitwise identical to
  // results with it disabled, serially and in parallel.
  obs::set_enabled(false);
  const std::vector<EvaluationResult> off_serial = sweep_with(1);
  const std::vector<EvaluationResult> off_parallel = sweep_with(2);

  obs::registry().reset();
  obs::Tracer::instance().reset();
  obs::set_enabled(true);
  const std::vector<EvaluationResult> on_serial = sweep_with(1);
  const std::vector<EvaluationResult> on_parallel = sweep_with(2);
  obs::set_enabled(false);

  ASSERT_EQ(off_serial.size(), 4u);
  ASSERT_EQ(on_serial.size(), off_serial.size());
  ASSERT_EQ(on_parallel.size(), off_serial.size());
  for (std::size_t i = 0; i < off_serial.size(); ++i) {
    SCOPED_TRACE("cell " + std::to_string(i));
    expect_bitwise_equal(off_serial[i], on_serial[i]);
    expect_bitwise_equal(off_serial[i], on_parallel[i]);
    expect_bitwise_equal(off_serial[i], off_parallel[i]);
  }

  // Reduced statistics agree bitwise too.
  for (std::size_t row = 0; row < 2; ++row) {
    const EvaluationStats a = mean_over_cells(off_serial, row * 2, 2);
    const EvaluationStats b = mean_over_cells(on_parallel, row * 2, 2);
    EXPECT_EQ(bits(a.saving_ratio.mean()), bits(b.saving_ratio.mean()));
    EXPECT_EQ(bits(a.normalized_mi.mean()), bits(b.normalized_mi.mean()));
  }

#if RLBLH_OBS_ENABLED
  // And recording actually happened while enabled: the simulator counted
  // its days (4 cells x 5 days x 2 runs) and the sweep timed its cells.
  EXPECT_EQ(obs::registry().counter("sim.days").value(), 2 * 4 * 5);
  EXPECT_EQ(obs::registry().counter("sweep.cells").value(), 2 * 4);
  // The cells run RL-BLH with n_D = 15 over 1440-interval days, so every
  // day went through the pulse-blocked hot path (96 blocks per day) — the
  // bitwise on==off comparison above covered the blocked loop, not the
  // per-interval fallback.
  EXPECT_EQ(obs::registry().counter("sim.blocks").value(), 2 * 4 * 5 * 96);
  EXPECT_GT(obs::registry().counter("sim.block_ns").value(), 0u);
#endif
  obs::registry().reset();
  obs::Tracer::instance().reset();
}

TEST(SweepDeterminismTest, SerialRunnerRunsInline) {
  SweepRunner runner(SweepOptions{1});
  EXPECT_EQ(runner.threads(), 1u);
  const std::thread::id caller = std::this_thread::get_id();
  const auto ids = runner.run(
      4, [caller](std::size_t) { return std::this_thread::get_id() == caller; });
  for (const bool on_caller : ids) EXPECT_TRUE(on_caller);
}

}  // namespace
}  // namespace rlblh
