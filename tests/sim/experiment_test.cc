#include "sim/experiment.h"

#include <gtest/gtest.h>

#include <vector>

#include "baselines/lowpass.h"
#include "core/rlblh_policy.h"
#include "util/error.h"

namespace rlblh {
namespace {

HouseholdConfig small_household() {
  HouseholdConfig home;
  // Full-size day but defaults otherwise; experiments here are short.
  return home;
}

TEST(Experiment, FactoryBuildsConsistentSimulator) {
  Simulator sim = make_household_simulator(small_household(),
                                           TouSchedule::srp_plan(), 5.0, 1);
  EXPECT_EQ(sim.prices().intervals(), kIntervalsPerDay);
  EXPECT_DOUBLE_EQ(sim.battery().capacity(), 5.0);
  EXPECT_DOUBLE_EQ(sim.battery().level(), 2.5);  // starts half-charged
  EXPECT_EQ(sim.source().intervals(), kIntervalsPerDay);
}

TEST(Experiment, RejectsZeroEvalDays) {
  Simulator sim = make_household_simulator(small_household(),
                                           TouSchedule::srp_plan(), 5.0, 2);
  PassthroughPolicy policy;
  EvaluationConfig config;
  config.eval_days = 0;
  EXPECT_THROW(evaluate_policy(sim, policy, config), ConfigError);
}

TEST(Experiment, PassthroughBaselineMetrics) {
  Simulator sim = make_household_simulator(small_household(),
                                           TouSchedule::srp_plan(), 5.0, 3);
  PassthroughPolicy policy;
  EvaluationConfig config;
  config.train_days = 0;
  config.eval_days = 12;
  const EvaluationResult r = evaluate_policy(sim, policy, config);
  // y == x: no savings, perfect correlation, full information leakage.
  EXPECT_NEAR(r.saving_ratio, 0.0, 1e-12);
  EXPECT_NEAR(r.mean_cc, 1.0, 1e-9);
  EXPECT_GT(r.normalized_mi, 0.9);
  EXPECT_EQ(r.battery_violations, 0u);
  EXPECT_NEAR(r.mean_daily_bill_cents, r.mean_daily_usage_cost_cents, 1e-9);
}

TEST(Experiment, RlBlhBeatsPassthroughOnPrivacyAndCost) {
  Simulator sim = make_household_simulator(small_household(),
                                           TouSchedule::srp_plan(), 5.0, 4);
  RlBlhConfig config;
  config.battery_capacity = 5.0;
  config.decision_interval = 15;
  config.seed = 5;
  // Keep the test fast: light heuristics.
  config.reuse_repeats = 20;
  config.synthetic_repeats = 50;
  RlBlhPolicy policy(config);
  EvaluationConfig eval;
  eval.train_days = 15;
  eval.eval_days = 15;
  const EvaluationResult r = evaluate_policy(sim, policy, eval);
  EXPECT_GT(r.saving_ratio, 0.0);
  EXPECT_LT(r.mean_cc, 0.5);
  EXPECT_LT(r.normalized_mi, 0.6);
  EXPECT_EQ(r.battery_violations, 0u);
}

TEST(Experiment, TrainPhaseRunsThePolicy) {
  Simulator sim = make_household_simulator(small_household(),
                                           TouSchedule::srp_plan(), 5.0, 6);
  RlBlhConfig config;
  config.battery_capacity = 5.0;
  config.decision_interval = 15;
  config.enable_reuse = false;
  config.enable_synthetic = false;
  RlBlhPolicy policy(config);
  EvaluationConfig eval;
  eval.train_days = 3;
  eval.eval_days = 2;
  evaluate_policy(sim, policy, eval);
  EXPECT_EQ(policy.days_completed(), 5u);
}

TEST(Experiment, AccumulatorResetMatchesFreshConstruction) {
  // The fleet's worker arenas recycle one accumulator across households;
  // reset() must reproduce fresh-constructed results bitwise, both when
  // the geometry repeats and when it changes between runs.
  Simulator sim = make_household_simulator(small_household(),
                                           TouSchedule::srp_plan(), 5.0, 9);
  LowPassConfig lp;
  lp.battery_capacity = 5.0;
  LowPassPolicy policy(lp);

  std::vector<DayResult> days;
  for (int d = 0; d < 4; ++d) days.push_back(sim.run_day(policy));

  const auto observe_all = [&](EvaluationAccumulator& accumulator) {
    for (const DayResult& day : days) {
      accumulator.observe_day(day, sim.prices());
    }
    return accumulator.result();
  };

  EvaluationAccumulator fresh(kIntervalsPerDay, 8, sim.source().usage_cap());
  const EvaluationResult expected = observe_all(fresh);

  EvaluationAccumulator recycled(kIntervalsPerDay, 8,
                                 sim.source().usage_cap());
  observe_all(recycled);
  // Same geometry: the MI tables are sparsely zeroed, not reallocated.
  recycled.reset(kIntervalsPerDay, 8, sim.source().usage_cap());
  EXPECT_EQ(recycled.days(), 0u);
  const EvaluationResult same_geometry = observe_all(recycled);
  // Different geometry: the estimator is rebuilt; a second reset returns.
  recycled.reset(kIntervalsPerDay, 4, sim.source().usage_cap());
  observe_all(recycled);
  recycled.reset(kIntervalsPerDay, 8, sim.source().usage_cap());
  const EvaluationResult regeometried = observe_all(recycled);

  for (const EvaluationResult& actual : {same_geometry, regeometried}) {
    EXPECT_EQ(actual.saving_ratio, expected.saving_ratio);
    EXPECT_EQ(actual.mean_cc, expected.mean_cc);
    EXPECT_EQ(actual.normalized_mi, expected.normalized_mi);
    EXPECT_EQ(actual.mean_daily_savings_cents,
              expected.mean_daily_savings_cents);
    EXPECT_EQ(actual.mean_daily_bill_cents, expected.mean_daily_bill_cents);
    EXPECT_EQ(actual.mean_daily_usage_cost_cents,
              expected.mean_daily_usage_cost_cents);
    EXPECT_EQ(actual.battery_violations, expected.battery_violations);
  }
}

}  // namespace
}  // namespace rlblh
