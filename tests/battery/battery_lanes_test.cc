// battery_lane_step is the branch-free restatement of Battery::step that
// the lockstep batch engine vectorizes over lanes. Its contract is bitwise
// equality with the branchy original for every input Battery::step accepts,
// including the clip edges — these tests sweep random and adversarial
// (reading, usage, level) triples against a live Battery and check every
// output field bit for bit, plus the BatteryLanes SoA container's
// bookkeeping.
#include "battery/battery.h"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace rlblh {
namespace {

bool same_bits(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

TEST(BatteryLaneStepTest, MatchesBatteryStepOnRandomSweep) {
  Rng rng(0xba77e12);
  for (int round = 0; round < 200; ++round) {
    const double capacity = rng.uniform(0.1, 20.0);
    const double charge_eff = rng.uniform(0.5, 1.0);
    const double discharge_eff = rng.uniform(0.5, 1.0);
    Battery battery(capacity, rng.uniform(0.0, capacity), charge_eff,
                    discharge_eff);
    for (int i = 0; i < 50; ++i) {
      const double level = battery.level();
      // Magnitudes spanning well past the clip bounds in both directions.
      const double reading = rng.uniform(0.0, 3.0 * capacity);
      const double usage = rng.uniform(0.0, 3.0 * capacity);
      const BatteryLaneStep lane = battery_lane_step(
          level, reading, usage, capacity, charge_eff, discharge_eff);
      const BatteryStep ref = battery.step(reading, usage);
      ASSERT_TRUE(same_bits(lane.level_after, ref.level_after))
          << "level_after diverged: " << lane.level_after << " vs "
          << ref.level_after;
      ASSERT_TRUE(same_bits(lane.grid_extra, ref.grid_extra))
          << "grid_extra diverged: " << lane.grid_extra << " vs "
          << ref.grid_extra;
      ASSERT_EQ(lane.violated, ref.violated);
    }
  }
}

TEST(BatteryLaneStepTest, MatchesBatteryStepAtClipEdges) {
  const double capacity = 5.0;
  // (level, reading, usage) triples sitting exactly on or around the two
  // clip boundaries, where the select chain must agree with the branches.
  const struct {
    double level, reading, usage;
  } cases[] = {
      {5.0, 0.0, 0.0},   // full, idle: next == capacity exactly
      {0.0, 0.0, 0.0},   // empty, idle: next == 0.0 exactly
      {5.0, 1.0, 0.0},   // overcharge clip
      {0.0, 0.0, 1.0},   // undercharge clip
      {2.5, 2.5, 0.0},   // lands exactly on capacity (no clip)
      {2.5, 0.0, 2.5},   // lands exactly on zero (no clip)
      {4.999999999, 1e-9, 0.0},
      {1e-9, 0.0, 1e-9},
  };
  for (const auto& c : cases) {
    Battery battery(capacity, c.level);
    const BatteryLaneStep lane =
        battery_lane_step(c.level, c.reading, c.usage, capacity, 1.0, 1.0);
    const BatteryStep ref = battery.step(c.reading, c.usage);
    ASSERT_TRUE(same_bits(lane.level_after, ref.level_after));
    ASSERT_TRUE(same_bits(lane.grid_extra, ref.grid_extra));
    ASSERT_EQ(lane.violated, ref.violated);
  }
}

TEST(BatteryLanesTest, ResetInitializesEveryLane) {
  BatteryLanes lanes;
  lanes.reset(3, 5.0, 2.5, 0.9, 0.8);
  EXPECT_EQ(lanes.width(), 3u);
  EXPECT_DOUBLE_EQ(lanes.capacity(), 5.0);
  EXPECT_DOUBLE_EQ(lanes.charge_efficiency(), 0.9);
  EXPECT_DOUBLE_EQ(lanes.discharge_efficiency(), 0.8);
  for (std::size_t k = 0; k < 3; ++k) {
    EXPECT_DOUBLE_EQ(lanes.level(k), 2.5);
    EXPECT_EQ(lanes.violation_count(k), 0u);
  }
  // Re-reset with a different geometry replaces the previous state.
  lanes.reset(2, 8.0, 0.0);
  EXPECT_EQ(lanes.width(), 2u);
  EXPECT_DOUBLE_EQ(lanes.level(1), 0.0);
}

TEST(BatteryLanesTest, LanesTrackIndependentScalarBatteries) {
  constexpr std::size_t kWidth = 5;
  BatteryLanes lanes;
  lanes.reset(kWidth, 4.0, 2.0);
  std::vector<Battery> reference;
  for (std::size_t k = 0; k < kWidth; ++k) reference.emplace_back(4.0, 2.0);
  Rng rng(99);
  for (int step = 0; step < 100; ++step) {
    for (std::size_t k = 0; k < kWidth; ++k) {
      const double reading = rng.uniform(0.0, 8.0);
      const double usage = rng.uniform(0.0, 8.0);
      const BatteryLaneStep lane =
          battery_lane_step(lanes.levels()[k], reading, usage, lanes.capacity(),
                            lanes.charge_efficiency(),
                            lanes.discharge_efficiency());
      lanes.levels()[k] = lane.level_after;
      if (lane.violated) ++lanes.violations()[k];
      (void)reference[k].step(reading, usage);
    }
  }
  for (std::size_t k = 0; k < kWidth; ++k) {
    EXPECT_TRUE(same_bits(lanes.level(k), reference[k].level())) << k;
    EXPECT_EQ(lanes.violation_count(k), reference[k].violation_count()) << k;
  }
}

TEST(BatteryLanesTest, ResetValidatesLikeBattery) {
  BatteryLanes lanes;
  EXPECT_THROW(lanes.reset(0, 5.0, 0.0), std::exception);
  EXPECT_THROW(lanes.reset(2, 0.0, 0.0), std::exception);
  EXPECT_THROW(lanes.reset(2, 5.0, 6.0), std::exception);
  EXPECT_THROW(lanes.reset(2, 5.0, 2.0, 0.0), std::exception);
  EXPECT_THROW(lanes.reset(2, 5.0, 2.0, 1.0, 1.5), std::exception);
}

}  // namespace
}  // namespace rlblh
