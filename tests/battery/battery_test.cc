#include "battery/battery.h"

#include <gtest/gtest.h>

#include "util/error.h"
#include "util/rng.h"

namespace rlblh {
namespace {

TEST(Battery, RejectsBadConstruction) {
  EXPECT_THROW(Battery(0.0), ConfigError);
  EXPECT_THROW(Battery(-1.0), ConfigError);
  EXPECT_THROW(Battery(1.0, 2.0), ConfigError);
  EXPECT_THROW(Battery(1.0, -0.1), ConfigError);
  EXPECT_THROW(Battery(1.0, 0.5, 0.0), ConfigError);
  EXPECT_THROW(Battery(1.0, 0.5, 1.1), ConfigError);
  EXPECT_THROW(Battery(1.0, 0.5, 1.0, 1.5), ConfigError);
}

TEST(Battery, LosslessDynamicsMatchPaperEquation1) {
  // b_{n+1} = b_n + y_n - x_n in the lossless default.
  Battery b(5.0, 2.0);
  const BatteryStep s = b.step(0.08, 0.03);
  EXPECT_DOUBLE_EQ(s.level_after, 2.05);
  EXPECT_FALSE(s.violated);
  EXPECT_DOUBLE_EQ(b.level(), 2.05);
}

TEST(Battery, RejectsNegativeFlows) {
  Battery b(5.0, 2.0);
  EXPECT_THROW(b.step(-0.1, 0.0), ConfigError);
  EXPECT_THROW(b.step(0.0, -0.1), ConfigError);
}

TEST(Battery, OverflowClipsAndCounts) {
  Battery b(1.0, 0.95);
  const BatteryStep s = b.step(0.2, 0.0);
  EXPECT_TRUE(s.violated);
  EXPECT_NEAR(s.wasted_charge, 0.15, 1e-12);
  EXPECT_DOUBLE_EQ(b.level(), 1.0);
  EXPECT_EQ(b.violation_count(), 1u);
  EXPECT_NEAR(b.total_wasted_charge(), 0.15, 1e-12);
}

TEST(Battery, ShortageDrawsFromGrid) {
  Battery b(1.0, 0.05);
  const BatteryStep s = b.step(0.0, 0.2);
  EXPECT_TRUE(s.violated);
  EXPECT_NEAR(s.grid_extra, 0.15, 1e-12);
  EXPECT_DOUBLE_EQ(b.level(), 0.0);
  EXPECT_NEAR(b.total_grid_extra(), 0.15, 1e-12);
}

TEST(Battery, ChargeEfficiencyLosesEnergyOnTheWayIn) {
  Battery b(5.0, 1.0, /*charge_efficiency=*/0.9);
  b.step(1.0, 0.0);
  EXPECT_NEAR(b.level(), 1.9, 1e-12);
}

TEST(Battery, DischargeEfficiencyDrawsMoreThanDelivered) {
  Battery b(5.0, 1.0, 1.0, /*discharge_efficiency=*/0.8);
  b.step(0.0, 0.4);  // needs 0.5 from the battery to deliver 0.4
  EXPECT_NEAR(b.level(), 0.5, 1e-12);
}

TEST(Battery, ShortageAccountsForDischargeEfficiency) {
  Battery b(1.0, 0.1, 1.0, 0.5);
  // Delivering 0.4 would need 0.8 stored; only 0.1 stored, so 0.2 kWh of
  // usage is delivered from storage and 0.35 comes from the grid... check:
  // next = 0.1 - 0.4/0.5 = -0.7 -> grid_extra = 0.7 * 0.5 = 0.35.
  const BatteryStep s = b.step(0.0, 0.4);
  EXPECT_NEAR(s.grid_extra, 0.35, 1e-12);
  EXPECT_DOUBLE_EQ(b.level(), 0.0);
}

TEST(Battery, ResetClearsCountersAndSetsLevel) {
  Battery b(1.0, 0.0);
  b.step(0.0, 0.5);  // violation
  b.reset(0.7);
  EXPECT_DOUBLE_EQ(b.level(), 0.7);
  EXPECT_EQ(b.violation_count(), 0u);
  EXPECT_DOUBLE_EQ(b.total_grid_extra(), 0.0);
  EXPECT_THROW(b.reset(2.0), ConfigError);
}

TEST(Battery, EnergyConservationOverRandomWalk) {
  // Without clipping, level(T) - level(0) == sum(y) - sum(x).
  Battery b(100.0, 50.0);  // huge battery: no clipping
  Rng rng(3);
  double in = 0.0, out = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double y = rng.uniform(0.0, 0.08);
    const double x = rng.uniform(0.0, 0.08);
    in += y;
    out += x;
    const BatteryStep s = b.step(y, x);
    ASSERT_FALSE(s.violated);
  }
  EXPECT_NEAR(b.level() - 50.0, in - out, 1e-9);
  EXPECT_EQ(b.violation_count(), 0u);
}

class BatteryBoundsParam
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(BatteryBoundsParam, LevelAlwaysWithinBounds) {
  const auto [capacity, initial_frac] = GetParam();
  Battery b(capacity, capacity * initial_frac);
  Rng rng(11);
  for (int i = 0; i < 5000; ++i) {
    b.step(rng.uniform(0.0, 0.2), rng.uniform(0.0, 0.2));
    ASSERT_GE(b.level(), 0.0);
    ASSERT_LE(b.level(), capacity);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BatteryBoundsParam,
    ::testing::Combine(::testing::Values(0.5, 1.0, 3.0, 7.0),
                       ::testing::Values(0.0, 0.5, 1.0)));

}  // namespace
}  // namespace rlblh
