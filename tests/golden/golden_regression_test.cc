// Golden-file regression tests for the fig4-fig9 benchmark scenarios.
//
// Each test runs a down-scaled but seeded version of one figure scenario
// and compares a handful of summary numbers against a committed golden
// file, so silent behaviour drift (a changed RNG stream, a reordered
// update, an accounting slip) fails CI with a diff instead of quietly
// bending the paper's curves. The scenarios are deliberately small: the
// point is pinning the seeded trajectory, not reproducing the figures.
//
// To refresh after an intentional behaviour change:
//   RLBLH_GOLDEN_REGEN=1 ctest -R Golden
// then review the diff of tests/golden/data/ like any other code change.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "baselines/lowpass.h"
#include "core/rlblh_policy.h"
#include "meter/household.h"
#include "sim/experiment.h"
#include "sim/fleet.h"

namespace rlblh {
namespace {

using Series = std::vector<std::pair<std::string, double>>;

std::string golden_path(const std::string& scenario) {
  return std::string(RLBLH_GOLDEN_DIR) + "/" + scenario + ".golden";
}

void write_golden(const std::string& scenario, const Series& series) {
  const std::string path = golden_path(scenario);
  std::ofstream out(path);
  ASSERT_TRUE(out) << "cannot write " << path;
  out.precision(17);
  for (const auto& [key, value] : series) out << key << ' ' << value << '\n';
}

Series read_golden(const std::string& scenario) {
  const std::string path = golden_path(scenario);
  std::ifstream in(path);
  EXPECT_TRUE(in) << "missing golden file " << path
                  << " — regenerate with RLBLH_GOLDEN_REGEN=1";
  Series series;
  std::string key;
  double value = 0.0;
  while (in >> key >> value) series.emplace_back(key, value);
  return series;
}

/// Compares the freshly computed series against the committed golden file,
/// or rewrites the file when RLBLH_GOLDEN_REGEN is set.
void expect_matches_golden(const std::string& scenario, const Series& fresh) {
  if (std::getenv("RLBLH_GOLDEN_REGEN") != nullptr) {
    write_golden(scenario, fresh);
    GTEST_SKIP() << "regenerated " << golden_path(scenario);
  }
  const Series pinned = read_golden(scenario);
  ASSERT_EQ(pinned.size(), fresh.size()) << "key set changed for " << scenario;
  for (std::size_t i = 0; i < fresh.size(); ++i) {
    EXPECT_EQ(pinned[i].first, fresh[i].first) << "key order changed";
    // Tight relative tolerance: same-toolchain reruns are bit-identical;
    // the slack only absorbs printing round-trips.
    EXPECT_NEAR(pinned[i].second, fresh[i].second,
                1e-9 * (1.0 + std::abs(pinned[i].second)))
        << scenario << ": " << fresh[i].first << " drifted";
  }
}

/// The figure scenarios' shared setup, scaled down for test time.
RlBlhConfig scenario_config(std::size_t decision_interval, double battery,
                            std::uint64_t seed) {
  RlBlhConfig config;
  config.decision_interval = decision_interval;
  config.battery_capacity = battery;
  config.seed = seed;
  config.reuse_days = 3;
  config.reuse_repeats = 5;
  config.synthetic_period = 5;
  config.synthetic_repeats = 10;
  return config;
}

TEST(GoldenRegression, Fig4DayTraces) {
  // Figure 4: one day of meter readings per scheme after a short burn-in.
  Series series;
  {
    RlBlhConfig config = scenario_config(15, 5.0, 41);
    RlBlhPolicy policy(config);
    Simulator sim = make_household_simulator(HouseholdConfig{},
                                             TouSchedule::srp_plan(), 5.0, 141);
    sim.run_days(policy, 5);
    const DayResult day = sim.run_day(policy);
    series.emplace_back("rlblh_readings_total", day.readings.total());
    series.emplace_back("rlblh_readings_peak", day.readings.peak());
    series.emplace_back("rlblh_savings_cents", day.savings_cents);
  }
  {
    LowPassConfig config;
    config.battery_capacity = 3.0;
    LowPassPolicy policy(config);
    Simulator sim = make_household_simulator(HouseholdConfig{},
                                             TouSchedule::srp_plan(), 3.0, 142);
    sim.run_days(policy, 5);
    const DayResult day = sim.run_day(policy);
    series.emplace_back("lowpass_readings_total", day.readings.total());
    series.emplace_back("lowpass_readings_peak", day.readings.peak());
    series.emplace_back("lowpass_savings_cents", day.savings_cents);
  }
  {
    PassthroughPolicy policy;
    Simulator sim = make_household_simulator(HouseholdConfig{},
                                             TouSchedule::srp_plan(), 5.0, 143);
    const DayResult day = sim.run_day(policy);
    series.emplace_back("none_readings_total", day.readings.total());
    series.emplace_back("none_savings_cents", day.savings_cents);
  }
  expect_matches_golden("fig4_traces", series);
}

TEST(GoldenRegression, Fig5CompareLowpass) {
  // Figure 5: cost metrics, RL-BLH against the low-pass baseline.
  Series series;
  EvaluationConfig eval;
  eval.train_days = 8;
  eval.eval_days = 4;
  {
    RlBlhConfig config = scenario_config(15, 5.0, 51);
    RlBlhPolicy policy(config);
    Simulator sim = make_household_simulator(HouseholdConfig{},
                                             TouSchedule::srp_plan(), 5.0, 151);
    const EvaluationResult r = evaluate_policy(sim, policy, eval);
    series.emplace_back("rlblh_sr", r.saving_ratio);
    series.emplace_back("rlblh_savings_cents", r.mean_daily_savings_cents);
    series.emplace_back("rlblh_cc", r.mean_cc);
  }
  {
    LowPassConfig config;
    config.battery_capacity = 5.0;
    LowPassPolicy policy(config);
    Simulator sim = make_household_simulator(HouseholdConfig{},
                                             TouSchedule::srp_plan(), 5.0, 152);
    const EvaluationResult r = evaluate_policy(sim, policy, eval);
    series.emplace_back("lowpass_sr", r.saving_ratio);
    series.emplace_back("lowpass_savings_cents", r.mean_daily_savings_cents);
    series.emplace_back("lowpass_cc", r.mean_cc);
  }
  expect_matches_golden("fig5_compare_lowpass", series);
}

TEST(GoldenRegression, Fig6Convergence) {
  // Figure 6: the TD-error trajectory over the first training days.
  RlBlhConfig config = scenario_config(15, 5.0, 61);
  RlBlhPolicy policy(config);
  Simulator sim = make_household_simulator(HouseholdConfig{},
                                           TouSchedule::srp_plan(), 5.0, 161);
  for (int d = 0; d < 15; ++d) (void)sim.run_day(policy);
  const auto& stats = policy.day_stats();
  Series series;
  for (const std::size_t d : {0u, 4u, 9u, 14u}) {
    series.emplace_back("td_error_day" + std::to_string(d + 1),
                        stats[d].mean_abs_td_error);
  }
  series.emplace_back("savings_day15", stats[14].realized_savings);
  expect_matches_golden("fig6_convergence", series);
}

TEST(GoldenRegression, Fig7Heuristics) {
  // Figure 7: learning speed with and without the REUSE/SYN heuristics.
  Series series;
  for (const bool heuristics : {true, false}) {
    RlBlhConfig config = scenario_config(15, 5.0, 71);
    config.enable_reuse = heuristics;
    config.enable_synthetic = heuristics;
    RlBlhPolicy policy(config);
    Simulator sim = make_household_simulator(HouseholdConfig{},
                                             TouSchedule::srp_plan(), 5.0, 171);
    sim.run_days(policy, 6);
    policy.set_learning_enabled(false);
    policy.set_exploration_enabled(false);
    EvaluationConfig eval;
    eval.train_days = 0;
    eval.eval_days = 3;
    const EvaluationResult r = evaluate_policy(sim, policy, eval);
    series.emplace_back(heuristics ? "sr_with_heuristics" : "sr_without",
                        r.saving_ratio);
  }
  expect_matches_golden("fig7_heuristics", series);
}

TEST(GoldenRegression, Fig8DecisionInterval) {
  // Figure 8: the saving ratio across pulse widths.
  Series series;
  for (const std::size_t n_d : {10u, 15u, 30u}) {
    RlBlhConfig config = scenario_config(n_d, 5.0, 81);
    RlBlhPolicy policy(config);
    Simulator sim = make_household_simulator(HouseholdConfig{},
                                             TouSchedule::srp_plan(), 5.0, 181);
    EvaluationConfig eval;
    eval.train_days = 6;
    eval.eval_days = 3;
    const EvaluationResult r = evaluate_policy(sim, policy, eval);
    series.emplace_back("sr_nd" + std::to_string(n_d), r.saving_ratio);
  }
  expect_matches_golden("fig8_decision_interval", series);
}

TEST(GoldenRegression, Fig9BatteryCapacity) {
  // Figure 9: the saving ratio across battery capacities.
  Series series;
  for (const double b_m : {3.0, 5.0, 8.0}) {
    RlBlhConfig config = scenario_config(15, b_m, 91);
    RlBlhPolicy policy(config);
    Simulator sim = make_household_simulator(HouseholdConfig{},
                                             TouSchedule::srp_plan(), b_m, 191);
    EvaluationConfig eval;
    eval.train_days = 6;
    eval.eval_days = 3;
    const EvaluationResult r = evaluate_policy(sim, policy, eval);
    std::ostringstream key;
    key << "sr_bm" << b_m;
    series.emplace_back(key.str(), r.saving_ratio);
  }
  expect_matches_golden("fig9_battery_capacity", series);
}

TEST(GoldenRegression, FleetAggregates) {
  // A small heterogeneous fleet: pins the per-household stream derivation
  // and the mean/p50/p95 aggregation, on top of the per-policy scenarios
  // the figure goldens above already cover.
  const char* const specs[] = {
      "policy=rlblh;household=default;pricing=srp;battery=4;train=2;eval=2",
      "policy=lowpass;household=weekday_heavy;pricing=tou2;battery=3;"
      "train=1;eval=2",
      "policy=stepping;household=night_owl;pricing=tou3;battery=5;"
      "train=1;eval=2",
      "policy=none;household=apartment;pricing=flat;train=0;eval=2",
      "policy=rlblh;household=ev_owner;pricing=srp;battery=5;train=2;eval=2",
  };
  std::vector<ScenarioSpec> fleet;
  for (const char* spec : specs) fleet.push_back(ScenarioSpec::parse(spec));
  FleetSimulator simulator(std::move(fleet), FleetOptions{/*threads=*/2});
  const FleetResult result = simulator.run(/*fleet_seed=*/2026);

  Series series;
  series.emplace_back("sr_mean", result.saving_ratio.mean);
  series.emplace_back("sr_p50", result.saving_ratio.p50);
  series.emplace_back("sr_p95", result.saving_ratio.p95);
  series.emplace_back("cc_mean", result.mean_cc.mean);
  series.emplace_back("cc_p95", result.mean_cc.p95);
  series.emplace_back("mi_mean", result.normalized_mi.mean);
  series.emplace_back("mi_p95", result.normalized_mi.p95);
  for (std::size_t i = 0; i < result.households.size(); ++i) {
    series.emplace_back("household" + std::to_string(i) + "_sr",
                        result.households[i].saving_ratio);
  }
  series.emplace_back("violations",
                      static_cast<double>(result.battery_violations));
  expect_matches_golden("fleet_aggregates", series);
}

}  // namespace
}  // namespace rlblh
