#include "baselines/lowpass.h"

#include <gtest/gtest.h>

#include "battery/battery.h"
#include "privacy/correlation.h"
#include "util/error.h"
#include "util/rng.h"

namespace rlblh {
namespace {

LowPassConfig small_config() {
  LowPassConfig config;
  config.intervals_per_day = 48;
  config.usage_cap = 0.08;
  config.battery_capacity = 1.0;
  return config;
}

TEST(LowPassPolicy, RejectsBadConfig) {
  LowPassConfig config = small_config();
  config.usage_cap = 0.0;
  EXPECT_THROW(LowPassPolicy{config}, ConfigError);
  config = small_config();
  config.target_smoothing = 0.0;
  EXPECT_THROW(LowPassPolicy{config}, ConfigError);
  config = small_config();
  config.initial_target = 0.2;  // above cap
  EXPECT_THROW(LowPassPolicy{config}, ConfigError);
}

TEST(LowPassPolicy, HoldsTargetWhenBatteryComfortable) {
  LowPassPolicy policy(small_config());
  policy.begin_day(TouSchedule::flat(48, 1.0));
  // Mid-range battery: reading equals the target exactly.
  EXPECT_DOUBLE_EQ(policy.reading(0, 0.5), policy.target());
}

TEST(LowPassPolicy, BacksOffWhenBatteryNearlyFull) {
  LowPassPolicy policy(small_config());
  policy.begin_day(TouSchedule::flat(48, 1.0));
  // Battery at 0.98 of 1.0: at most 0.02 may be drawn.
  EXPECT_LE(policy.reading(0, 0.98), 0.02 + 1e-12);
}

TEST(LowPassPolicy, DrawsHardWhenBatteryNearlyEmpty) {
  LowPassPolicy policy(small_config());
  policy.begin_day(TouSchedule::flat(48, 1.0));
  // Battery at 0.01: must draw at least x_M - 0.01 to survive worst case.
  EXPECT_GE(policy.reading(0, 0.01), 0.08 - 0.01 - 1e-12);
}

TEST(LowPassPolicy, TargetTracksMeanUsage) {
  LowPassConfig config = small_config();
  config.target_smoothing = 0.05;
  LowPassPolicy policy(config);
  policy.begin_day(TouSchedule::flat(48, 1.0));
  for (int i = 0; i < 2000; ++i) {
    policy.observe_usage(static_cast<std::size_t>(i % 48), 0.04);
  }
  EXPECT_NEAR(policy.target(), 0.04, 1e-6);
}

TEST(LowPassPolicy, ReadingsFlatterThanUsage) {
  // Variance of the low-pass meter stream must be far below the usage's.
  // Use a battery large enough that the feasibility window rarely binds
  // (a 1 kWh buffer saturates under this load and leaks variance).
  LowPassConfig config = small_config();
  config.battery_capacity = 3.0;
  // Start the flattening target at the workload's true mean draw
  // (0.3 * 0.06 + 0.7 * 0.01 = 0.025) so the battery does not drain while
  // the EMA catches up; this isolates the flattening behaviour itself.
  config.initial_target = 0.025;
  LowPassPolicy policy(config);
  Battery battery(3.0, 1.5);
  Rng rng(1);
  const TouSchedule prices = TouSchedule::flat(48, 1.0);
  double var_x = 0.0, var_y = 0.0;
  const int days = 20;
  for (int d = 0; d < days; ++d) {
    policy.begin_day(prices);
    std::vector<double> xs(48), ys(48);
    for (std::size_t n = 0; n < 48; ++n) {
      const double x = rng.bernoulli(0.3) ? 0.06 : 0.01;
      const double y = policy.reading(n, battery.level());
      battery.step(y, x);
      policy.observe_usage(n, x);
      xs[n] = x;
      ys[n] = y;
    }
    double mx = 0.0, my = 0.0;
    for (std::size_t n = 0; n < 48; ++n) {
      mx += xs[n];
      my += ys[n];
    }
    mx /= 48.0;
    my /= 48.0;
    for (std::size_t n = 0; n < 48; ++n) {
      var_x += (xs[n] - mx) * (xs[n] - mx);
      var_y += (ys[n] - my) * (ys[n] - my);
    }
  }
  EXPECT_LT(var_y, 0.1 * var_x);
}

TEST(LowPassPolicy, RejectsOutOfRangeCalls) {
  LowPassPolicy policy(small_config());
  policy.begin_day(TouSchedule::flat(48, 1.0));
  EXPECT_THROW(policy.reading(48, 0.5), ConfigError);
  EXPECT_THROW(policy.observe_usage(48, 0.01), ConfigError);
  EXPECT_THROW(policy.observe_usage(0, -0.01), ConfigError);
  EXPECT_THROW(policy.begin_day(TouSchedule::flat(10, 1.0)), ConfigError);
}

TEST(PassthroughPolicy, DeclaresItself) {
  PassthroughPolicy policy;
  EXPECT_TRUE(policy.passthrough());
  EXPECT_EQ(policy.name(), "no-battery");
  policy.begin_day(TouSchedule::flat(48, 1.0));
  EXPECT_DOUBLE_EQ(policy.reading(0, 0.5), 0.0);
}

}  // namespace
}  // namespace rlblh
