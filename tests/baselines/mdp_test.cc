#include "baselines/mdp.h"

#include <gtest/gtest.h>

#include "battery/battery.h"
#include "util/error.h"
#include "util/rng.h"

namespace rlblh {
namespace {

MdpConfig small_config() {
  MdpConfig config;
  config.intervals_per_day = 48;
  config.decision_interval = 4;
  config.usage_cap = 0.08;
  config.battery_capacity = 1.0;
  config.num_actions = 4;
  config.battery_levels = 16;
  config.usage_levels = 8;
  return config;
}

TouSchedule small_prices() { return TouSchedule::two_zone(48, 34, 7.0, 21.0); }

DayTrace constant_day(double value) {
  return DayTrace(std::vector<double>(48, value));
}

TEST(MdpConfig, Validation) {
  EXPECT_NO_THROW(small_config().validate());
  MdpConfig bad = small_config();
  bad.decision_interval = 5;  // 48 % 5 != 0
  EXPECT_THROW(bad.validate(), ConfigError);
  bad = small_config();
  bad.battery_capacity = 0.5;  // < 2 * 0.32
  EXPECT_THROW(bad.validate(), ConfigError);
  bad = small_config();
  bad.battery_levels = 1;
  EXPECT_THROW(bad.validate(), ConfigError);
}

TEST(MdpBlhPolicy, RequiresTrainingBeforeSolve) {
  MdpBlhPolicy policy(small_config());
  EXPECT_THROW(policy.solve(), ConfigError);
  EXPECT_FALSE(policy.solved());
}

TEST(MdpBlhPolicy, RequiresSolveBeforeActing) {
  MdpBlhPolicy policy(small_config());
  policy.observe_training_day(constant_day(0.02), small_prices());
  EXPECT_THROW(policy.begin_day(small_prices()), ConfigError);
  EXPECT_THROW(policy.expected_savings(0.5), ConfigError);
}

TEST(MdpBlhPolicy, TableSizesMatchConfig) {
  MdpBlhPolicy policy(small_config());
  // 12 decisions * 16 levels states; times 4 actions.
  EXPECT_EQ(policy.state_count(), 12u * 16u);
  EXPECT_EQ(policy.table_entries(), 12u * 16u * 4u);
}

TEST(MdpBlhPolicy, RejectsMismatchedTrainingData) {
  MdpBlhPolicy policy(small_config());
  EXPECT_THROW(policy.observe_training_day(DayTrace(10), small_prices()),
               ConfigError);
  EXPECT_THROW(
      policy.observe_training_day(constant_day(0.02), TouSchedule::flat(5, 1)),
      ConfigError);
}

TEST(MdpBlhPolicy, ValueFunctionIsNonTrivialUnderPriceSpread) {
  MdpBlhPolicy policy(small_config());
  Rng rng(1);
  for (int d = 0; d < 30; ++d) {
    DayTrace day(48);
    for (std::size_t n = 0; n < 48; ++n) day.set(n, rng.uniform(0.0, 0.05));
    policy.observe_training_day(day, small_prices());
  }
  policy.solve();
  ASSERT_TRUE(policy.solved());
  // With a 3x price spread and a working battery, expected savings from a
  // mid-level start must be positive.
  EXPECT_GT(policy.expected_savings(0.5), 0.0);
  // More stored energy at the start is worth at least as much.
  EXPECT_GE(policy.expected_savings(0.66) + 1e-9,
            policy.expected_savings(0.34));
}

TEST(MdpBlhPolicy, FlatPricesOnlyMonetizeStoredEnergy) {
  // With one price zone there is nothing to arbitrage. The only "savings"
  // the finite-horizon objective can claim is draining energy that was
  // already in the battery at the start of the day (the day-boundary
  // effect the paper discusses under "unusual low usage"), which is worth
  // at most rate * initial level and cannot be repeated: a day starting
  // empty has no savings at all.
  MdpBlhPolicy policy(small_config());
  Rng rng(2);
  const double rate = 10.0;
  const TouSchedule flat = TouSchedule::flat(48, rate);
  for (int d = 0; d < 30; ++d) {
    DayTrace day(48);
    for (std::size_t n = 0; n < 48; ++n) day.set(n, rng.uniform(0.0, 0.05));
    policy.observe_training_day(day, flat);
  }
  policy.solve();
  // Starting half full: can monetize at most the stored 0.5 kWh.
  EXPECT_LE(policy.expected_savings(0.5), rate * 0.5 + 1e-6);
  // Starting empty: nothing to monetize; forced guard charging can even
  // strand energy at the horizon, so the value is non-positive.
  EXPECT_LE(policy.expected_savings(0.0), 1e-6);
  // Stored energy is worth strictly more than an empty battery.
  EXPECT_GT(policy.expected_savings(0.5), policy.expected_savings(0.0));
}

TEST(MdpBlhPolicy, GreedyPolicyChargesCheapDischargesDear) {
  MdpBlhPolicy policy(small_config());
  Rng rng(3);
  for (int d = 0; d < 50; ++d) {
    DayTrace day(48);
    for (std::size_t n = 0; n < 48; ++n) day.set(n, rng.uniform(0.01, 0.04));
    policy.observe_training_day(day, small_prices());
  }
  policy.solve();
  // Simulate a few days and check the economic signature: net charging in
  // the cheap zone, net discharging in the expensive zone.
  Battery battery(1.0, 0.5);
  double cheap_net = 0.0, dear_net = 0.0;
  for (int d = 0; d < 10; ++d) {
    policy.begin_day(small_prices());
    for (std::size_t n = 0; n < 48; ++n) {
      const double x = rng.uniform(0.01, 0.04);
      const double y = policy.reading(n, battery.level());
      battery.step(y, x);
      policy.observe_usage(n, x);
      if (n < 34) {
        cheap_net += y - x;
      } else {
        dear_net += y - x;
      }
    }
  }
  EXPECT_GT(cheap_net, 0.0);  // buys extra when cheap
  EXPECT_LT(dear_net, 0.0);   // runs off the battery when dear
}

TEST(MdpBlhPolicy, ActionsAlwaysFeasibleAndBatterySafe) {
  MdpBlhPolicy policy(small_config());
  Rng rng(4);
  for (int d = 0; d < 20; ++d) {
    DayTrace day(48);
    for (std::size_t n = 0; n < 48; ++n) day.set(n, rng.uniform(0.0, 0.08));
    policy.observe_training_day(day, small_prices());
  }
  policy.solve();
  Battery battery(1.0, 0.5);
  for (int d = 0; d < 30; ++d) {
    policy.begin_day(small_prices());
    for (std::size_t n = 0; n < 48; ++n) {
      const double x = rng.uniform(0.0, 0.08);
      const double y = policy.reading(n, battery.level());
      battery.step(y, x);
      policy.observe_usage(n, x);
    }
  }
  EXPECT_EQ(battery.violation_count(), 0u);
}

TEST(MdpBlhPolicy, ResolveAfterMoreDataIsAllowed) {
  MdpBlhPolicy policy(small_config());
  policy.observe_training_day(constant_day(0.02), small_prices());
  policy.solve();
  const double before = policy.expected_savings(0.5);
  for (int d = 0; d < 20; ++d) {
    policy.observe_training_day(constant_day(0.04), small_prices());
  }
  policy.solve();
  // Higher usage means more energy can be shifted to the cheap zone.
  EXPECT_GE(policy.expected_savings(0.5), before - 1e-9);
}

}  // namespace
}  // namespace rlblh
