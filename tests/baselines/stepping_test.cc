#include "baselines/stepping.h"

#include <gtest/gtest.h>

#include "battery/battery.h"
#include "util/error.h"
#include "util/rng.h"

namespace rlblh {
namespace {

SteppingConfig small_config() {
  SteppingConfig config;
  config.intervals_per_day = 48;
  config.usage_cap = 0.08;
  config.battery_capacity = 3.0;
  config.step = 0.01;
  return config;
}

TEST(SteppingPolicy, RejectsBadConfig) {
  SteppingConfig config = small_config();
  config.step = 0.0;
  EXPECT_THROW(SteppingPolicy{config}, ConfigError);
  config = small_config();
  config.step = 0.2;  // above x_M
  EXPECT_THROW(SteppingPolicy{config}, ConfigError);
  config = small_config();
  config.margin_fraction = 0.6;
  EXPECT_THROW(SteppingPolicy{config}, ConfigError);
  config = small_config();
  config.battery_capacity = 0.0;
  EXPECT_THROW(SteppingPolicy{config}, ConfigError);
}

TEST(SteppingPolicy, ReadingsAreMultiplesOfStep) {
  SteppingPolicy policy(small_config());
  Battery battery(3.0, 1.5);
  Rng rng(1);
  policy.begin_day(TouSchedule::flat(48, 1.0));
  for (std::size_t n = 0; n < 48; ++n) {
    const double y = policy.reading(n, battery.level());
    const double ratio = y / 0.01;
    EXPECT_NEAR(ratio, std::round(ratio), 1e-9);
    const double x = rng.uniform(0.0, 0.08);
    battery.step(y, x);
    policy.observe_usage(n, x);
  }
}

TEST(SteppingPolicy, HoldsStepWhileBatteryComfortable) {
  SteppingPolicy policy(small_config());
  policy.begin_day(TouSchedule::flat(48, 1.0));
  const double first = policy.reading(0, 1.5);
  policy.observe_usage(0, 0.02);
  // Battery stays mid-band: the step must not move.
  for (std::size_t n = 1; n < 20; ++n) {
    EXPECT_DOUBLE_EQ(policy.reading(n, 1.4 + 0.01 * static_cast<double>(n % 3)),
                     first);
    policy.observe_usage(n, 0.02);
  }
  EXPECT_EQ(policy.step_changes(), 0u);
}

TEST(SteppingPolicy, StepsDownWhenBatteryNearlyFull) {
  SteppingPolicy policy(small_config());
  policy.begin_day(TouSchedule::flat(48, 1.0));
  // Teach it that demand is low, then present a nearly full battery.
  for (std::size_t n = 0; n < 30; ++n) {
    (void)policy.reading(n, 1.5);
    policy.observe_usage(n, 0.01);
  }
  const std::size_t before = policy.step_index();
  const double y = policy.reading(30, 2.9);  // above the 2.55 margin
  EXPECT_LE(policy.step_index(), before);
  EXPECT_LE(y, 0.02);  // near the learned low demand, biased down
  EXPECT_GE(policy.step_changes(), 1u);
}

TEST(SteppingPolicy, StepsUpWhenBatteryNearlyEmpty) {
  SteppingPolicy policy(small_config());
  policy.begin_day(TouSchedule::flat(48, 1.0));
  // Teach it a low demand so the re-seeded step differs from the initial
  // mid-scale step.
  for (std::size_t n = 0; n < 30; ++n) {
    (void)policy.reading(n, 1.5);
    policy.observe_usage(n, 0.0);
  }
  const double y = policy.reading(30, 0.2);  // below the 0.45 margin
  // Step re-seeded at (quantized recent demand) + 1: strictly above the
  // learned near-zero demand, so the battery refills.
  EXPECT_GE(policy.step_index(), 2u);
  EXPECT_GE(y, 0.02 - 1e-12);
  EXPECT_GE(policy.step_changes(), 1u);
}

TEST(SteppingPolicy, BatteryStaysLegalOverLongRun) {
  SteppingPolicy policy(small_config());
  Battery battery(3.0, 1.5);
  Rng rng(2);
  const TouSchedule prices = TouSchedule::flat(48, 1.0);
  for (int day = 0; day < 50; ++day) {
    policy.begin_day(prices);
    for (std::size_t n = 0; n < 48; ++n) {
      const double y = policy.reading(n, battery.level());
      battery.step(y, rng.uniform(0.0, 0.06));
      policy.observe_usage(n, 0.03);
      ASSERT_GE(battery.level(), 0.0);
      ASSERT_LE(battery.level(), 3.0);
    }
  }
}

TEST(SteppingPolicy, ValidatesCallArguments) {
  SteppingPolicy policy(small_config());
  EXPECT_THROW(policy.begin_day(TouSchedule::flat(10, 1.0)), ConfigError);
  policy.begin_day(TouSchedule::flat(48, 1.0));
  EXPECT_THROW(policy.reading(48, 1.0), ConfigError);
  EXPECT_THROW(policy.observe_usage(0, -0.1), ConfigError);
}

}  // namespace
}  // namespace rlblh
