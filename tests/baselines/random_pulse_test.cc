#include "baselines/random_pulse.h"

#include <gtest/gtest.h>

#include "battery/battery.h"
#include "util/error.h"
#include "util/rng.h"

namespace rlblh {
namespace {

RlBlhConfig small_config() {
  RlBlhConfig config;
  config.intervals_per_day = 48;
  config.decision_interval = 4;
  config.usage_cap = 0.08;
  config.battery_capacity = 1.0;
  config.num_actions = 4;
  config.seed = 3;
  return config;
}

TEST(RandomPulsePolicy, ValidatesConfig) {
  RlBlhConfig bad = small_config();
  bad.battery_capacity = 0.1;
  EXPECT_THROW(RandomPulsePolicy{bad}, ConfigError);
}

TEST(RandomPulsePolicy, EmitsRectangularPulses) {
  RandomPulsePolicy policy(small_config());
  policy.begin_day(TouSchedule::flat(48, 1.0));
  Battery battery(1.0, 0.5);
  Rng rng(1);
  std::vector<double> readings;
  for (std::size_t n = 0; n < 48; ++n) {
    const double y = policy.reading(n, battery.level());
    readings.push_back(y);
    const double x = rng.uniform(0.0, 0.08);
    battery.step(y, x);
    policy.observe_usage(n, x);
  }
  for (std::size_t n = 0; n < 48; ++n) {
    EXPECT_DOUBLE_EQ(readings[n], readings[n - n % 4]);
  }
}

TEST(RandomPulsePolicy, PulsesCoverAllMagnitudesOverTime) {
  RandomPulsePolicy policy(small_config());
  const TouSchedule prices = TouSchedule::flat(48, 1.0);
  Battery battery(1.0, 0.5);
  Rng rng(2);
  bool seen[4] = {false, false, false, false};
  for (int day = 0; day < 20; ++day) {
    policy.begin_day(prices);
    for (std::size_t n = 0; n < 48; ++n) {
      const double y = policy.reading(n, battery.level());
      for (std::size_t a = 0; a < 4; ++a) {
        if (std::abs(y - small_config().action_magnitude(a)) < 1e-12) {
          seen[a] = true;
        }
      }
      const double x = rng.uniform(0.0, 0.08);
      battery.step(y, x);
      policy.observe_usage(n, x);
    }
  }
  EXPECT_TRUE(seen[0] && seen[1] && seen[2] && seen[3]);
}

TEST(RandomPulsePolicy, RespectsGuardBandsAndBatteryBounds) {
  RandomPulsePolicy policy(small_config());
  // Guard checks mirror RL-BLH's.
  EXPECT_EQ(policy.allowed_actions(0.9), (std::vector<std::size_t>{0}));
  EXPECT_EQ(policy.allowed_actions(0.1), (std::vector<std::size_t>{3}));
  EXPECT_EQ(policy.allowed_actions(0.5).size(), 4u);

  const TouSchedule prices = TouSchedule::flat(48, 1.0);
  Battery battery(1.0, 0.5);
  Rng rng(3);
  for (int day = 0; day < 50; ++day) {
    policy.begin_day(prices);
    for (std::size_t n = 0; n < 48; ++n) {
      const double y = policy.reading(n, battery.level());
      battery.step(y, rng.uniform(0.0, 0.08));
      policy.observe_usage(n, 0.02);
    }
  }
  EXPECT_EQ(battery.violation_count(), 0u);
}

TEST(RandomPulsePolicy, DeterministicGivenSeed) {
  RandomPulsePolicy a(small_config());
  RandomPulsePolicy b(small_config());
  const TouSchedule prices = TouSchedule::flat(48, 1.0);
  a.begin_day(prices);
  b.begin_day(prices);
  for (std::size_t n = 0; n < 48; ++n) {
    ASSERT_DOUBLE_EQ(a.reading(n, 0.5), b.reading(n, 0.5));
    a.observe_usage(n, 0.01);
    b.observe_usage(n, 0.01);
  }
}

}  // namespace
}  // namespace rlblh
