#include <gtest/gtest.h>

#include "battery/battery.h"
#include "core/rlblh_policy.h"
#include "util/rng.h"

namespace rlblh {
namespace {

RlBlhConfig small_config(bool double_q) {
  RlBlhConfig config;
  config.intervals_per_day = 48;
  config.decision_interval = 4;
  config.usage_cap = 0.08;
  config.battery_capacity = 1.0;
  config.num_actions = 4;
  config.seed = 5;
  config.double_q = double_q;
  config.enable_reuse = false;
  config.enable_synthetic = false;
  return config;
}

void run_day(RlBlhPolicy& policy, Battery& battery,
             const std::vector<double>& usage, const TouSchedule& prices) {
  policy.begin_day(prices);
  for (std::size_t n = 0; n < usage.size(); ++n) {
    const double y = policy.reading(n, battery.level());
    battery.step(y, usage[n]);
    policy.observe_usage(n, usage[n]);
  }
  policy.end_day();
}

std::vector<double> random_usage(Rng& rng) {
  std::vector<double> usage(48);
  for (auto& x : usage) x = rng.uniform(0.0, 0.08);
  return usage;
}

double weight_norm(const PerActionLinearQ& q) {
  double norm = 0.0;
  for (std::size_t a = 0; a < q.num_actions(); ++a) {
    for (const double w : q.function(a).weights()) norm += w * w;
  }
  return norm;
}

TEST(DoubleQ, BothTablesTrainUnderDoubleQ) {
  RlBlhPolicy policy(small_config(true));
  Battery battery(1.0, 0.5);
  Rng rng(1);
  const TouSchedule prices = TouSchedule::two_zone(48, 34, 7.0, 21.0);
  for (int day = 0; day < 20; ++day) {
    run_day(policy, battery, random_usage(rng), prices);
  }
  EXPECT_GT(weight_norm(policy.q()), 0.0);
  EXPECT_GT(weight_norm(policy.q2()), 0.0);
  // The two tables see different random halves of the updates, so they
  // must differ.
  EXPECT_NE(policy.q().function(0).weights(),
            policy.q2().function(0).weights());
}

TEST(DoubleQ, SecondTableStaysZeroUnderPlainQ) {
  RlBlhPolicy policy(small_config(false));
  Battery battery(1.0, 0.5);
  Rng rng(2);
  const TouSchedule prices = TouSchedule::two_zone(48, 34, 7.0, 21.0);
  for (int day = 0; day < 10; ++day) {
    run_day(policy, battery, random_usage(rng), prices);
  }
  EXPECT_GT(weight_norm(policy.q()), 0.0);
  EXPECT_DOUBLE_EQ(weight_norm(policy.q2()), 0.0);
}

TEST(DoubleQ, RespectsConstraintsAndBatteryBounds) {
  RlBlhPolicy policy(small_config(true));
  Battery battery(1.0, 0.5);
  Rng rng(3);
  const TouSchedule prices = TouSchedule::two_zone(48, 34, 7.0, 21.0);
  for (int day = 0; day < 50; ++day) {
    run_day(policy, battery, random_usage(rng), prices);
  }
  EXPECT_EQ(battery.violation_count(), 0u);
}

TEST(DoubleQ, VirtualTrainingUpdatesBothTables) {
  RlBlhPolicy policy(small_config(true));
  Battery battery(1.0, 0.5);
  Rng rng(4);
  const TouSchedule prices = TouSchedule::two_zone(48, 34, 7.0, 21.0);
  run_day(policy, battery, random_usage(rng), prices);
  for (int i = 0; i < 50; ++i) {
    policy.train_virtual_day(std::vector<double>(48, 0.03), 0.5);
  }
  EXPECT_GT(weight_norm(policy.q()), 0.0);
  EXPECT_GT(weight_norm(policy.q2()), 0.0);
}

}  // namespace
}  // namespace rlblh
