#include "core/qfunction.h"

#include <array>

#include <gtest/gtest.h>

#include "util/error.h"

namespace rlblh {
namespace {

TEST(PerActionLinearQ, RejectsBadConstruction) {
  EXPECT_THROW(PerActionLinearQ(0, 6), ConfigError);
  EXPECT_THROW(PerActionLinearQ(4, 0), ConfigError);
}

TEST(PerActionLinearQ, ParameterCountMatchesPaperClaim) {
  // Section VIII: "RL-BLH has to deal with only 40 unknowns" — the paper
  // counts w_i for i = 0..5 per action but quotes 40; with a_M = 8 actions
  // and 6 features the table is 48 weights. Either way it is O(10), not
  // O(10^7) like the MDP table.
  const PerActionLinearQ q(8, 6);
  EXPECT_EQ(q.parameter_count(), 48u);
  EXPECT_EQ(q.num_actions(), 8u);
  EXPECT_EQ(q.dimension(), 6u);
}

TEST(PerActionLinearQ, ActionsAreIndependent) {
  PerActionLinearQ q(3, 2);
  const std::array<double, 2> f{1.0, 2.0};
  q.sgd_update(1, f, 1.0, 0.5);  // w1 += 0.5 * 1.0 * f
  EXPECT_DOUBLE_EQ(q.value(f, 0), 0.0);
  EXPECT_DOUBLE_EQ(q.value(f, 1), 0.5 * (1.0 + 4.0));
  EXPECT_DOUBLE_EQ(q.value(f, 2), 0.0);
}

TEST(PerActionLinearQ, ArgmaxOverAllowedSubset) {
  PerActionLinearQ q(3, 1);
  const std::array<double, 1> f{1.0};
  q.function(0).set_weights({1.0});
  q.function(1).set_weights({3.0});
  q.function(2).set_weights({2.0});
  EXPECT_EQ(q.argmax(f, {0, 1, 2}), 1u);
  EXPECT_EQ(q.argmax(f, {0, 2}), 2u);   // best overall not allowed
  EXPECT_EQ(q.argmax(f, {0}), 0u);
  EXPECT_DOUBLE_EQ(q.max_value(f, {0, 2}), 2.0);
  EXPECT_THROW(q.argmax(f, {}), ConfigError);
}

TEST(PerActionLinearQ, ArgmaxTieBreaksTowardEarlierCandidate) {
  PerActionLinearQ q(2, 1);
  const std::array<double, 1> f{1.0};
  EXPECT_EQ(q.argmax(f, {0, 1}), 0u);  // both zero
  EXPECT_EQ(q.argmax(f, {1, 0}), 1u);
}

TEST(PerActionLinearQ, OutOfRangeActionThrows) {
  PerActionLinearQ q(2, 1);
  const std::array<double, 1> f{1.0};
  EXPECT_THROW(q.value(f, 2), ConfigError);
  EXPECT_THROW(q.sgd_update(2, f, 1.0, 0.1), ConfigError);
  EXPECT_THROW(q.function(2), ConfigError);
}

}  // namespace
}  // namespace rlblh
