#include "core/serialize.h"

#include <cstdio>
#include <sstream>

#include <gtest/gtest.h>

#include "util/error.h"
#include "util/rng.h"

namespace rlblh {
namespace {

PerActionLinearQ sample_q() {
  PerActionLinearQ q(3, 4);
  Rng rng(5);
  for (std::size_t a = 0; a < q.num_actions(); ++a) {
    std::vector<double> weights(q.dimension());
    for (auto& w : weights) w = rng.uniform(-10.0, 10.0);
    q.function(a).set_weights(std::move(weights));
  }
  return q;
}

TEST(Serialize, RoundTripsExactly) {
  const PerActionLinearQ original = sample_q();
  std::ostringstream out;
  save_weights(out, original);
  std::istringstream in(out.str());
  const PerActionLinearQ loaded = load_weights(in);
  ASSERT_EQ(loaded.num_actions(), original.num_actions());
  ASSERT_EQ(loaded.dimension(), original.dimension());
  for (std::size_t a = 0; a < original.num_actions(); ++a) {
    EXPECT_EQ(loaded.function(a).weights(), original.function(a).weights());
  }
}

TEST(Serialize, RejectsWrongHeader) {
  std::istringstream in("not-a-weights-file\n");
  EXPECT_THROW(load_weights(in), DataError);
}

TEST(Serialize, RejectsMalformedDimensions) {
  std::istringstream in("rlblh-weights v1\nactions x features 6\n");
  EXPECT_THROW(load_weights(in), DataError);
  std::istringstream zero("rlblh-weights v1\nactions 0 features 6\n");
  EXPECT_THROW(load_weights(zero), DataError);
}

TEST(Serialize, RejectsTruncatedRows) {
  std::istringstream in("rlblh-weights v1\nactions 2 features 3\n1 2 3\n");
  EXPECT_THROW(load_weights(in), DataError);
}

TEST(Serialize, RejectsShortRow) {
  std::istringstream in(
      "rlblh-weights v1\nactions 1 features 3\n1 2\n");
  EXPECT_THROW(load_weights(in), DataError);
}

TEST(Serialize, RejectsOverlongRow) {
  std::istringstream in(
      "rlblh-weights v1\nactions 1 features 2\n1 2 3\n");
  EXPECT_THROW(load_weights(in), DataError);
}

TEST(Serialize, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/weights_test.txt";
  const PerActionLinearQ original = sample_q();
  save_weights_file(path, original);
  const PerActionLinearQ loaded = load_weights_file(path);
  EXPECT_EQ(loaded.function(2).weights(), original.function(2).weights());
  std::remove(path.c_str());
  EXPECT_THROW(load_weights_file(path), DataError);
  EXPECT_THROW(save_weights_file("/no/such/dir/w.txt", original), DataError);
}

TEST(Serialize, PreservesFullDoublePrecision) {
  PerActionLinearQ q(1, 2);
  q.function(0).set_weights({1.0 / 3.0, -2.0e-15});
  std::ostringstream out;
  save_weights(out, q);
  std::istringstream in(out.str());
  const PerActionLinearQ loaded = load_weights(in);
  EXPECT_DOUBLE_EQ(loaded.function(0).weights()[0], 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(loaded.function(0).weights()[1], -2.0e-15);
}

}  // namespace
}  // namespace rlblh
