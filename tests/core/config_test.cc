#include "core/config.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace rlblh {
namespace {

TEST(RlBlhConfig, PaperDefaultsValidate) {
  RlBlhConfig config;
  EXPECT_NO_THROW(config.validate());
  EXPECT_EQ(config.intervals_per_day, 1440u);
  EXPECT_EQ(config.num_actions, 8u);
  EXPECT_DOUBLE_EQ(config.usage_cap, 0.08);
  EXPECT_DOUBLE_EQ(config.alpha, 0.05);
  EXPECT_DOUBLE_EQ(config.epsilon, 0.1);
  EXPECT_EQ(config.synthetic_period, 10u);     // d_G
  EXPECT_EQ(config.synthetic_last_day, 50u);   // d_MG
  EXPECT_EQ(config.synthetic_repeats, 500u);   // t_G
  EXPECT_EQ(config.reuse_days, 20u);           // d_R
  EXPECT_EQ(config.reuse_repeats, 100u);       // t_R
}

TEST(RlBlhConfig, DecisionsPerDay) {
  RlBlhConfig config;
  config.decision_interval = 15;
  EXPECT_EQ(config.decisions_per_day(), 96u);
  config.decision_interval = 10;
  EXPECT_EQ(config.decisions_per_day(), 144u);
  // Non-divisor width: the day ends with one truncated decision interval.
  config.decision_interval = 17;  // 1440 = 84 * 17 + 12
  EXPECT_EQ(config.decisions_per_day(), 85u);
  EXPECT_EQ(config.decision_width(0), 17u);
  EXPECT_EQ(config.decision_width(83), 17u);
  EXPECT_EQ(config.decision_width(84), 12u);
  EXPECT_THROW(config.decision_width(85), ConfigError);
  config.decision_interval = 1;
  EXPECT_EQ(config.decisions_per_day(), 1440u);
  EXPECT_EQ(config.decision_width(0), 1u);
}

TEST(RlBlhConfig, ActionMagnitudesMatchEquation5) {
  RlBlhConfig config;  // a_M = 8, x_M = 0.08
  EXPECT_DOUBLE_EQ(config.action_magnitude(0), 0.0);
  EXPECT_DOUBLE_EQ(config.action_magnitude(7), 0.08);
  EXPECT_NEAR(config.action_magnitude(3), 3.0 * 0.08 / 7.0, 1e-15);
  EXPECT_THROW(config.action_magnitude(8), ConfigError);
}

TEST(RlBlhConfig, GuardLevels) {
  RlBlhConfig config;
  config.decision_interval = 15;
  config.battery_capacity = 5.0;
  EXPECT_DOUBLE_EQ(config.low_guard(), 0.08 * 15.0);   // 1.2
  EXPECT_DOUBLE_EQ(config.high_guard(), 5.0 - 1.2);    // 3.8
}

TEST(RlBlhConfig, AcceptsNonDivisorDecisionInterval) {
  RlBlhConfig config;
  config.decision_interval = 17;  // 1440 % 17 != 0: last pulse is truncated
  EXPECT_NO_THROW(config.validate());
}

TEST(RlBlhConfig, RejectsDecisionIntervalLongerThanDay) {
  RlBlhConfig config;
  config.intervals_per_day = 120;
  config.decision_interval = 121;
  config.battery_capacity = 50.0;  // large enough for any guard band
  EXPECT_THROW(config.validate(), ConfigError);
}

TEST(RlBlhConfig, RejectsBatteryTooSmallForGuards) {
  RlBlhConfig config;
  config.decision_interval = 15;
  config.battery_capacity = 2.0;  // < 2 * 0.08 * 15 = 2.4
  EXPECT_THROW(config.validate(), ConfigError);
  config.battery_capacity = 2.4;
  EXPECT_NO_THROW(config.validate());
}

TEST(RlBlhConfig, RejectsBadLearningParameters) {
  RlBlhConfig config;
  config.alpha = 0.0;
  EXPECT_THROW(config.validate(), ConfigError);
  config = RlBlhConfig{};
  config.epsilon = 1.5;
  EXPECT_THROW(config.validate(), ConfigError);
  config = RlBlhConfig{};
  config.alpha_floor = 0.2;  // above alpha
  EXPECT_THROW(config.validate(), ConfigError);
  config = RlBlhConfig{};
  config.epsilon_floor = 0.5;  // above epsilon
  EXPECT_THROW(config.validate(), ConfigError);
  config = RlBlhConfig{};
  config.num_actions = 1;
  EXPECT_THROW(config.validate(), ConfigError);
}

TEST(RlBlhConfig, HeuristicValidationOnlyWhenEnabled) {
  RlBlhConfig config;
  config.enable_synthetic = false;
  config.synthetic_repeats = 0;  // invalid, but the heuristic is off
  EXPECT_NO_THROW(config.validate());
  config.enable_synthetic = true;
  EXPECT_THROW(config.validate(), ConfigError);

  config = RlBlhConfig{};
  config.enable_reuse = false;
  config.reuse_repeats = 0;
  EXPECT_NO_THROW(config.validate());
  config.enable_reuse = true;
  EXPECT_THROW(config.validate(), ConfigError);
}

}  // namespace
}  // namespace rlblh
