// SpecParams / parse_spec / Registry<T> — the scenario registry primitives.
#include "core/registry.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "baselines/policy_registry.h"
#include "core/rlblh_policy.h"
#include "meter/household_registry.h"
#include "pricing/pricing_registry.h"
#include "util/error.h"

namespace rlblh {
namespace {

TEST(SpecParams, TypedRoundTrips) {
  SpecParams params;
  params.set("name", "value");
  params.set("rate", 11.5);
  params.set("count", std::uint64_t{42});
  params.set("flag", true);
  EXPECT_EQ(params.get_string("name", ""), "value");
  EXPECT_EQ(params.get_double("rate", 0.0), 11.5);
  EXPECT_EQ(params.get_u64("count", 0), 42u);
  EXPECT_TRUE(params.get_bool("flag", false));
  EXPECT_EQ(params.size(), 4u);
  EXPECT_FALSE(params.empty());
}

TEST(SpecParams, DoubleSurvivesCanonicalRoundTripBitwise) {
  SpecParams params;
  params.set("x", 0.1);  // not exactly representable; %.17g must round-trip
  const SpecParams reparsed = parse_spec(params.canonical());
  EXPECT_EQ(reparsed.get_double("x", 0.0), 0.1);
}

TEST(SpecParams, FallbacksWhenAbsent) {
  const SpecParams params;
  EXPECT_EQ(params.get_string("missing", "fb"), "fb");
  EXPECT_EQ(params.get_double("missing", 2.5), 2.5);
  EXPECT_EQ(params.get_u64("missing", 9), 9u);
  EXPECT_FALSE(params.get_bool("missing", false));
  EXPECT_FALSE(params.has("missing"));
  EXPECT_TRUE(params.empty());
}

TEST(SpecParams, ReplacementKeepsInsertionOrder) {
  SpecParams params;
  params.set("a", 1.0);
  params.set("b", 2.0);
  params.set("a", 3.0);  // replaces the value, keeps the slot
  EXPECT_EQ(params.canonical(), "a=3;b=2");
}

TEST(SpecParams, BadValuesThrowConfigError) {
  SpecParams params;
  params.set("x", "not-a-number");
  EXPECT_THROW(params.get_double("x", 0.0), ConfigError);
  EXPECT_THROW(params.get_u64("x", 0), ConfigError);
  EXPECT_THROW(params.get_bool("x", false), ConfigError);
  params.set("partial", "12abc");
  EXPECT_THROW(params.get_double("partial", 0.0), ConfigError);
}

TEST(SpecParams, BoolAcceptsTheDocumentedSpellings) {
  SpecParams params;
  for (const char* yes : {"1", "true", "on", "yes"}) {
    params.set("v", yes);
    EXPECT_TRUE(params.get_bool("v", false)) << yes;
  }
  for (const char* no : {"0", "false", "off", "no"}) {
    params.set("v", no);
    EXPECT_FALSE(params.get_bool("v", true)) << no;
  }
}

TEST(SpecParams, AllowOnlyRejectsUnknownKeys) {
  SpecParams params;
  params.set("rate", 11.0);
  EXPECT_NO_THROW(params.allow_only({"rate", "intervals"}, "plan 'flat'"));
  params.set("typo", 1.0);
  try {
    params.allow_only({"rate", "intervals"}, "plan 'flat'");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("typo"), std::string::npos);
    EXPECT_NE(message.find("plan 'flat'"), std::string::npos);
    EXPECT_NE(message.find("rate"), std::string::npos);  // lists accepted keys
  }
}

TEST(ParseSpec, GrammarBasics) {
  const SpecParams params = parse_spec("a=1;b=two;c=3.5;");
  EXPECT_EQ(params.size(), 3u);
  EXPECT_EQ(params.get_u64("a", 0), 1u);
  EXPECT_EQ(params.get_string("b", ""), "two");
  EXPECT_EQ(params.get_double("c", 0.0), 3.5);
}

TEST(ParseSpec, EmptySegmentsIgnoredDuplicatesKeepLast) {
  EXPECT_TRUE(parse_spec("").empty());
  EXPECT_TRUE(parse_spec(";;;").empty());
  const SpecParams params = parse_spec("k=1;;k=2");
  EXPECT_EQ(params.get_u64("k", 0), 2u);
  EXPECT_EQ(params.size(), 1u);
}

TEST(ParseSpec, MalformedSegmentsThrow) {
  EXPECT_THROW(parse_spec("novalue"), ConfigError);
  EXPECT_THROW(parse_spec("=1"), ConfigError);
  EXPECT_THROW(parse_spec("a=1;bad"), ConfigError);
}

TEST(RegistryT, CreateAliasAndNames) {
  Registry<int> registry;
  registry.set_family("number");
  registry.add("two", [](const SpecParams&) { return 2; }, {"deux", "zwei"});
  registry.add("one", [](const SpecParams&) { return 1; });
  EXPECT_TRUE(registry.contains("two"));
  EXPECT_TRUE(registry.contains("deux"));
  EXPECT_FALSE(registry.contains("three"));
  EXPECT_EQ(registry.create("two", {}), 2);
  EXPECT_EQ(registry.create("zwei", {}), 2);
  // names() is sorted and hides aliases.
  EXPECT_EQ(registry.names(), (std::vector<std::string>{"one", "two"}));
}

TEST(RegistryT, DuplicateAndUnknownNamesThrow) {
  Registry<int> registry;
  registry.set_family("number");
  registry.add("one", [](const SpecParams&) { return 1; });
  EXPECT_THROW(registry.add("one", [](const SpecParams&) { return 9; }),
               ConfigError);
  try {
    registry.create("three", {});
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("number"), std::string::npos);
    EXPECT_NE(message.find("one"), std::string::npos);  // lists what exists
  }
}

// The component registries themselves: geometry keys reach the built
// configs, legacy aliases resolve, and typos fail loudly.

TEST(PolicyRegistry, GeometryAndParamsReachTheConfig) {
  SpecParams params;
  params.set("battery", 3.5);
  params.set("nd", 10);
  params.set("seed", 99);
  params.set("alpha", 0.25);
  const auto policy = make_policy("rlblh", params);
  const auto* rl = dynamic_cast<const RlBlhPolicy*>(policy.get());
  ASSERT_NE(rl, nullptr);
  EXPECT_EQ(rl->config().battery_capacity, 3.5);
  EXPECT_EQ(rl->config().decision_interval, 10u);
  EXPECT_EQ(rl->config().seed, 99u);
  EXPECT_EQ(rl->config().alpha, 0.25);
}

TEST(PolicyRegistry, LegacyAliasesResolve) {
  for (const char* name : {"rl-blh", "low-pass", "random", "passthrough"}) {
    EXPECT_NO_THROW(make_policy(name, {})) << name;
  }
  EXPECT_THROW(make_policy("rlblh-typo", {}), ConfigError);
  SpecParams bad;
  bad.set("alhpa", 0.1);  // typo'd parameter must not silently default
  EXPECT_THROW(make_policy("rlblh", bad), ConfigError);
}

TEST(PricingRegistry, PlansMatchTheirHandWiredSchedules) {
  const TouSchedule srp = make_pricing("srp", {});
  const TouSchedule reference = TouSchedule::srp_plan();
  ASSERT_EQ(srp.intervals(), reference.intervals());
  for (std::size_t n = 0; n < srp.intervals(); n += 97) {
    EXPECT_EQ(srp.rate(n), reference.rate(n)) << n;
  }
  SpecParams flat;
  flat.set("rate", 42.0);
  EXPECT_EQ(make_pricing("flat", flat).rate(0), 42.0);
  EXPECT_THROW(make_pricing("srp-typo", {}), ConfigError);
}

TEST(HouseholdRegistry, PresetsBuildAndSeedsAreHonoured) {
  const auto a = make_trace_source("default", {}, 7);
  const auto b = make_trace_source("default", {}, 7);
  const auto c = make_trace_source("weekday_heavy", {}, 7);
  const DayTrace day_a = a->next_day();
  const DayTrace day_b = b->next_day();
  const DayTrace day_c = c->next_day();
  EXPECT_EQ(day_a.total(), day_b.total());  // same preset+seed, same stream
  EXPECT_NE(day_a.total(), day_c.total());  // different preset
  EXPECT_THROW(make_trace_source("mansion", {}, 7), ConfigError);
}

}  // namespace
}  // namespace rlblh
