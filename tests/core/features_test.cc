#include "core/features.h"

#include <gtest/gtest.h>

#include "rl/linalg.h"
#include "util/error.h"

namespace rlblh {
namespace {

TEST(FeatureBasis, RejectsBadConstruction) {
  EXPECT_THROW(FeatureBasis(0, 5.0), ConfigError);
  EXPECT_THROW(FeatureBasis(96, 0.0), ConfigError);
}

TEST(FeatureBasis, ConstantFeatureIsAlwaysOne) {
  const FeatureBasis basis(96, 5.0);
  for (std::size_t k = 0; k <= 96; k += 8) {
    EXPECT_DOUBLE_EQ(basis.at(k, 2.5)[0], 1.0);
  }
}

TEST(FeatureBasis, LegendreValuesAtKnownPoints) {
  const FeatureBasis basis(10, 10.0);
  // K = 0, B = 0: P1 = -1, P2 = +1.
  const auto f0 = basis.at(0, 0.0);
  EXPECT_DOUBLE_EQ(f0[1], -1.0);
  EXPECT_DOUBLE_EQ(f0[2], -1.0);
  EXPECT_DOUBLE_EQ(f0[3], 1.0);
  EXPECT_DOUBLE_EQ(f0[4], 1.0);
  EXPECT_DOUBLE_EQ(f0[5], 1.0);
  // K = 1 (k = k_M), B = capacity: P1 = +1, P2 = +1.
  const auto f1 = basis.at(10, 10.0);
  EXPECT_DOUBLE_EQ(f1[1], 1.0);
  EXPECT_DOUBLE_EQ(f1[2], 1.0);
  // Midpoints: P1(0.5) = 0, P2(0.5) = -0.5.
  const auto fm = basis.at(5, 5.0);
  EXPECT_DOUBLE_EQ(fm[1], 0.0);
  EXPECT_DOUBLE_EQ(fm[2], 0.0);
  EXPECT_DOUBLE_EQ(fm[3], 0.0);
  EXPECT_DOUBLE_EQ(fm[4], -0.5);
  EXPECT_DOUBLE_EQ(fm[5], -0.5);
}

TEST(FeatureBasis, BatteryLevelClampsToCapacity) {
  const FeatureBasis basis(96, 5.0);
  const auto over = basis.at(0, 7.0);
  const auto full = basis.at(0, 5.0);
  const auto under = basis.at(0, -1.0);
  const auto empty = basis.at(0, 0.0);
  for (std::size_t i = 0; i < FeatureBasis::kDim; ++i) {
    EXPECT_DOUBLE_EQ(over[i], full[i]);
    EXPECT_DOUBLE_EQ(under[i], empty[i]);
  }
}

TEST(FeatureBasis, RejectsOutOfRangeDecisionIndex) {
  const FeatureBasis basis(96, 5.0);
  EXPECT_NO_THROW(basis.at(96, 2.5));  // terminal state is featurizable
  EXPECT_THROW(basis.at(97, 2.5), ConfigError);
}

TEST(FeatureBasis, SpansTableOneMonomialSpace) {
  // The paper's Table I basis is [1, K, B, KB, K^2, B^2]. Verify each
  // monomial is an exact linear combination of our Legendre features by
  // solving for the coefficients on 6 generic sample points and checking
  // the fit on a dense grid.
  const FeatureBasis basis(100, 1.0);
  const double sample_k[6] = {0.0, 0.17, 0.43, 0.61, 0.89, 1.0};
  const double sample_b[6] = {0.05, 0.93, 0.31, 0.71, 0.13, 0.57};
  // Monomial evaluators indexed like Table I.
  const auto monomial = [](int m, double kk, double bb) {
    switch (m) {
      case 0: return 1.0;
      case 1: return kk;
      case 2: return bb;
      case 3: return kk * bb;
      case 4: return kk * kk;
      default: return bb * bb;
    }
  };
  for (int m = 0; m < 6; ++m) {
    Matrix a(6);
    std::vector<double> b(6);
    for (std::size_t row = 0; row < 6; ++row) {
      const auto f = basis.at(
          static_cast<std::size_t>(sample_k[row] * 100.0), sample_b[row]);
      for (std::size_t col = 0; col < 6; ++col) a.at(row, col) = f[col];
      b[row] = monomial(m, sample_k[row], sample_b[row]);
    }
    const SolveResult r = solve_linear_system(a, b);
    ASSERT_TRUE(r.solution.has_value()) << "monomial " << m;
    // Check the recovered combination reproduces the monomial on a grid.
    for (std::size_t gk = 0; gk <= 100; gk += 10) {
      for (double gb = 0.0; gb <= 1.0; gb += 0.1) {
        const auto f = basis.at(gk, gb);
        double fit = 0.0;
        for (std::size_t i = 0; i < 6; ++i) fit += (*r.solution)[i] * f[i];
        const double want =
            monomial(m, static_cast<double>(gk) / 100.0, gb);
        ASSERT_NEAR(fit, want, 1e-9)
            << "monomial " << m << " at K=" << gk << " B=" << gb;
      }
    }
  }
}

TEST(FeatureBasis, FeaturesAreBoundedByOne) {
  const FeatureBasis basis(96, 5.0);
  for (std::size_t k = 0; k <= 96; ++k) {
    for (double b = 0.0; b <= 5.0; b += 0.25) {
      for (const double f : basis.at(k, b)) {
        ASSERT_LE(std::abs(f), 1.0 + 1e-12);
      }
    }
  }
}

}  // namespace
}  // namespace rlblh
