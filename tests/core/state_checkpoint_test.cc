// Round-trip tests for the checkpoint primitives that rlblh_serve stacks
// into a household snapshot: RNG engine state, battery dynamic state, and
// the policy's full save_state/load_state. The property that matters
// everywhere is bitwise: a restored object's future behavior must be
// indistinguishable from the original's.
#include <bit>
#include <cstdint>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "battery/battery.h"
#include "core/config.h"
#include "core/rlblh_policy.h"
#include "core/serialize.h"
#include "meter/trace.h"
#include "pricing/tou.h"
#include "sim/engine.h"
#include "util/error.h"
#include "util/rng.h"

namespace rlblh {
namespace {

bool same_bits(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

TEST(RngCheckpointTest, RoundTripContinuesBitwise) {
  Rng original(0xfeedface);
  // Age the stream so the state is mid-sequence, not fresh-seeded.
  for (int i = 0; i < 1000; ++i) original.uniform();

  std::stringstream buffer;
  save_rng(buffer, original);
  Rng restored = load_rng(buffer);

  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(same_bits(original.uniform(), restored.uniform()))
        << "draw " << i << " diverged";
  }
}

TEST(RngCheckpointTest, RejectsMalformedInput) {
  std::stringstream bad("not-rng 1 2 3");
  EXPECT_THROW(load_rng(bad), DataError);
}

TEST(BatteryCheckpointTest, RoundTripRestoresStateExactly) {
  Battery original(13.5, 4.2, 0.95, 0.9);
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    original.step(rng.uniform(0.0, 2.0), rng.uniform(0.0, 2.0));
  }

  std::stringstream buffer;
  save_battery(buffer, original);
  Battery restored(13.5, 0.0, 0.95, 0.9);
  load_battery(buffer, restored);

  EXPECT_TRUE(same_bits(original.level(), restored.level()));
  EXPECT_EQ(original.violation_count(), restored.violation_count());
  EXPECT_TRUE(same_bits(original.total_wasted_charge(),
                        restored.total_wasted_charge()));
  EXPECT_TRUE(
      same_bits(original.total_grid_extra(), restored.total_grid_extra()));
}

TEST(BatteryCheckpointTest, RejectsConfigurationMismatch) {
  Battery original(10.0, 5.0);
  std::stringstream buffer;
  save_battery(buffer, original);
  Battery wrong_capacity(12.0, 5.0);
  EXPECT_THROW(load_battery(buffer, wrong_capacity), DataError);
}

RlBlhConfig small_config() {
  RlBlhConfig config;
  config.intervals_per_day = 96;
  config.decision_interval = 8;
  config.seed = 99;
  return config;
}

/// Runs `days` simulated days, returning the last day's savings.
double run_days(RlBlhPolicy& policy, Battery& battery,
                const TouSchedule& prices, std::size_t days,
                std::uint64_t trace_seed) {
  Rng rng(trace_seed);
  const std::size_t n_m = prices.intervals();
  double last_savings = 0.0;
  for (std::size_t d = 0; d < days; ++d) {
    policy.begin_day(prices);
    double savings = 0.0;
    for (std::size_t n0 = 0; n0 < n_m;) {
      const std::size_t width = std::min(policy.pulse_width(), n_m - n0);
      const double y = policy.fill_block(n0, width, battery.level());
      std::vector<double> usage(width);
      for (double& u : usage) u = rng.uniform(0.0, 1.0);
      for (std::size_t i = 0; i < width; ++i) {
        const BatteryStep step = battery.step(y, usage[i]);
        savings += prices.rate(n0 + i) *
                   (usage[i] - (y + step.grid_extra));
      }
      policy.observe_block(n0, ConstTraceLane(usage.data(), 1, usage.size()));
      n0 += width;
    }
    policy.end_day();
    last_savings = savings;
  }
  return last_savings;
}

TEST(PolicyCheckpointTest, RestoredPolicyContinuesBitwise) {
  const RlBlhConfig config = small_config();
  const TouSchedule prices =
      TouSchedule::two_zone(config.intervals_per_day, 64, 7.04, 21.09);

  RlBlhPolicy original(config);
  Battery original_battery(config.battery_capacity,
                           config.battery_capacity / 2.0);
  run_days(original, original_battery, prices, 5, 1234);

  std::stringstream buffer;
  original.save_state(buffer);
  RlBlhPolicy restored(config);
  restored.load_state(buffer);
  Battery restored_battery(config.battery_capacity, 0.0);
  {
    std::stringstream battery_buffer;
    save_battery(battery_buffer, original_battery);
    load_battery(battery_buffer, restored_battery);
  }

  EXPECT_EQ(original.days_completed(), restored.days_completed());
  EXPECT_EQ(original.episodes_completed(), restored.episodes_completed());

  // Same future inputs must produce bitwise-identical futures.
  const double original_future =
      run_days(original, original_battery, prices, 3, 5678);
  const double restored_future =
      run_days(restored, restored_battery, prices, 3, 5678);
  EXPECT_TRUE(same_bits(original_future, restored_future));

  // And the two end states serialize identically.
  std::stringstream a, b;
  original.save_state(a);
  restored.save_state(b);
  EXPECT_EQ(a.str(), b.str());
}

TEST(PolicyCheckpointTest, SaveMidDayThrows) {
  const RlBlhConfig config = small_config();
  const TouSchedule prices = TouSchedule::flat(config.intervals_per_day, 10.0);
  RlBlhPolicy policy(config);
  policy.begin_day(prices);
  std::stringstream buffer;
  EXPECT_THROW(policy.save_state(buffer), ConfigError);
}

TEST(PolicyCheckpointTest, LoadRejectsWrongDimensions) {
  const RlBlhConfig config = small_config();
  RlBlhPolicy policy(config);
  std::stringstream buffer;
  policy.save_state(buffer);

  RlBlhConfig other = config;
  other.num_actions = config.num_actions + 1;
  RlBlhPolicy victim(other);
  EXPECT_THROW(victim.load_state(buffer), DataError);
}

TEST(PolicyCheckpointTest, BaselinePoliciesReportNotCheckpointable) {
  const RlBlhConfig config = small_config();
  RlBlhPolicy policy(config);
  EXPECT_TRUE(policy.checkpointable());
}

}  // namespace
}  // namespace rlblh
