#include "core/rlblh_policy.h"

#include <gtest/gtest.h>

#include "battery/battery.h"
#include "util/error.h"
#include "util/rng.h"

namespace rlblh {
namespace {

/// Small, fast geometry: 48 intervals/day, pulses of 4, 12 decisions/day.
RlBlhConfig small_config() {
  RlBlhConfig config;
  config.intervals_per_day = 48;
  config.decision_interval = 4;
  config.usage_cap = 0.08;
  config.battery_capacity = 1.0;  // guards at 0.32 / 0.68
  config.num_actions = 4;
  config.seed = 5;
  // Keep heuristics cheap for unit tests.
  config.reuse_days = 2;
  config.reuse_repeats = 3;
  config.synthetic_period = 2;
  config.synthetic_last_day = 4;
  config.synthetic_repeats = 3;
  return config;
}

TouSchedule small_prices() { return TouSchedule::two_zone(48, 34, 7.0, 21.0); }

/// Drives one full day: returns the readings.
std::vector<double> run_day(RlBlhPolicy& policy, Battery& battery,
                            const std::vector<double>& usage,
                            const TouSchedule& prices) {
  std::vector<double> readings;
  policy.begin_day(prices);
  for (std::size_t n = 0; n < usage.size(); ++n) {
    const double y = policy.reading(n, battery.level());
    battery.step(y, usage[n]);
    policy.observe_usage(n, usage[n]);
    readings.push_back(y);
  }
  policy.end_day();
  return readings;
}

std::vector<double> random_usage(std::size_t n, double cap, Rng& rng) {
  std::vector<double> u(n);
  for (auto& v : u) v = rng.uniform(0.0, cap);
  return u;
}

TEST(RlBlhPolicy, ConstructorValidatesConfig) {
  RlBlhConfig bad = small_config();
  bad.battery_capacity = 0.1;
  EXPECT_THROW(RlBlhPolicy{bad}, ConfigError);
}

TEST(RlBlhPolicy, AllowedActionsFollowSectionIIIB) {
  RlBlhPolicy policy(small_config());
  const double low = policy.config().low_guard();    // 0.32
  const double high = policy.config().high_guard();  // 0.68
  // Above the high guard: only the zero pulse.
  EXPECT_EQ(policy.allowed_actions(high + 1e-9), (std::vector<std::size_t>{0}));
  EXPECT_EQ(policy.allowed_actions(1.0), (std::vector<std::size_t>{0}));
  // Below the low guard: only the maximum pulse.
  EXPECT_EQ(policy.allowed_actions(low - 1e-9), (std::vector<std::size_t>{3}));
  EXPECT_EQ(policy.allowed_actions(0.0), (std::vector<std::size_t>{3}));
  // In between: everything (the paper's inequalities are strict, so the
  // guard levels themselves are unrestricted).
  EXPECT_EQ(policy.allowed_actions(0.5),
            (std::vector<std::size_t>{0, 1, 2, 3}));
  EXPECT_EQ(policy.allowed_actions(low).size(), 4u);
  EXPECT_EQ(policy.allowed_actions(high).size(), 4u);
}

TEST(RlBlhPolicy, ReadingsAreRectangularPulses) {
  RlBlhPolicy policy(small_config());
  Battery battery(1.0, 0.5);
  Rng rng(1);
  const auto usage = random_usage(48, 0.08, rng);
  const auto readings = run_day(policy, battery, usage, small_prices());
  for (std::size_t n = 0; n < readings.size(); ++n) {
    // Constant within each decision interval of width 4.
    EXPECT_DOUBLE_EQ(readings[n], readings[n - n % 4]);
  }
}

TEST(RlBlhPolicy, ReadingsAreQuantizedToActionMagnitudes) {
  RlBlhPolicy policy(small_config());
  Battery battery(1.0, 0.5);
  Rng rng(2);
  for (int day = 0; day < 5; ++day) {
    const auto usage = random_usage(48, 0.08, rng);
    for (const double y : run_day(policy, battery, usage, small_prices())) {
      bool matches = false;
      for (std::size_t a = 0; a < 4; ++a) {
        if (std::abs(y - policy.action_magnitude(a)) < 1e-12) matches = true;
      }
      ASSERT_TRUE(matches) << "reading " << y << " is not a pulse magnitude";
    }
  }
}

TEST(RlBlhPolicy, LosslessBatteryNeverViolatesBounds) {
  RlBlhPolicy policy(small_config());
  Battery battery(1.0, 0.5);
  Rng rng(3);
  for (int day = 0; day < 50; ++day) {
    const auto usage = random_usage(48, 0.08, rng);
    run_day(policy, battery, usage, small_prices());
  }
  // The Section III-B feasibility rule guarantees zero clipping.
  EXPECT_EQ(battery.violation_count(), 0u);
}

TEST(RlBlhPolicy, ProtocolViolationsThrow) {
  RlBlhPolicy policy(small_config());
  const TouSchedule prices = small_prices();
  EXPECT_THROW(policy.reading(0, 0.5), ConfigError);       // before begin_day
  EXPECT_THROW(policy.observe_usage(0, 0.01), ConfigError);
  EXPECT_THROW(policy.end_day(), ConfigError);

  policy.begin_day(prices);
  EXPECT_THROW(policy.begin_day(prices), ConfigError);     // double begin
  EXPECT_THROW(policy.reading(1, 0.5), ConfigError);       // wrong order
  (void)policy.reading(0, 0.5);
  EXPECT_THROW(policy.reading(1, 0.5), ConfigError);       // usage not observed
  EXPECT_THROW(policy.observe_usage(1, 0.01), ConfigError);
  policy.observe_usage(0, 0.01);
  EXPECT_THROW(policy.observe_usage(0, 0.01), ConfigError);  // double observe
  EXPECT_THROW(policy.end_day(), ConfigError);             // day incomplete
}

TEST(RlBlhPolicy, RejectsMismatchedPriceSchedule) {
  RlBlhPolicy policy(small_config());
  EXPECT_THROW(policy.begin_day(TouSchedule::flat(10, 1.0)), ConfigError);
}

TEST(RlBlhPolicy, DayStatsAreRecorded) {
  RlBlhConfig config = small_config();
  config.enable_reuse = false;
  config.enable_synthetic = false;
  RlBlhPolicy policy(config);
  Battery battery(1.0, 0.5);
  Rng rng(4);
  const auto usage = random_usage(48, 0.08, rng);
  const auto readings = run_day(policy, battery, usage, small_prices());
  ASSERT_EQ(policy.day_stats().size(), 1u);
  EXPECT_EQ(policy.days_completed(), 1u);
  // Realized savings in the stats must equal sum r_n (x_n - y_n).
  double expected = 0.0;
  const TouSchedule prices = small_prices();
  for (std::size_t n = 0; n < 48; ++n) {
    expected += prices.rate(n) * (usage[n] - readings[n]);
  }
  EXPECT_NEAR(policy.day_stats()[0].realized_savings, expected, 1e-9);
  EXPECT_GT(policy.day_stats()[0].mean_abs_td_error, 0.0);
}

TEST(RlBlhPolicy, EpisodeCountingIncludesReplays) {
  RlBlhConfig config = small_config();
  config.enable_reuse = true;     // 3 replays for first 2 days
  config.enable_synthetic = true; // 3 replays every 2nd day (day 2, 4)
  RlBlhPolicy policy(config);
  Battery battery(1.0, 0.5);
  Rng rng(5);
  run_day(policy, battery, random_usage(48, 0.08, rng), small_prices());
  // Day 1: 1 real + 3 reuse.
  EXPECT_EQ(policy.episodes_completed(), 4u);
  run_day(policy, battery, random_usage(48, 0.08, rng), small_prices());
  // Day 2: + 1 real + 3 reuse + 3 synthetic.
  EXPECT_EQ(policy.episodes_completed(), 11u);
  EXPECT_EQ(policy.usage_stats().days_observed(), 2u);
}

TEST(RlBlhPolicy, DecayRespectsFloors) {
  RlBlhConfig config = small_config();
  config.alpha = 0.05;
  config.alpha_floor = 0.01;
  config.epsilon = 0.1;
  config.epsilon_floor = 0.02;
  config.decay_by_episodes = false;
  config.enable_reuse = false;
  config.enable_synthetic = false;
  RlBlhPolicy policy(config);
  EXPECT_DOUBLE_EQ(policy.current_alpha(), 0.05);  // day 1
  EXPECT_DOUBLE_EQ(policy.current_epsilon(), 0.1);
  Battery battery(1.0, 0.5);
  Rng rng(6);
  for (int day = 0; day < 200; ++day) {
    run_day(policy, battery, random_usage(48, 0.08, rng), small_prices());
  }
  EXPECT_DOUBLE_EQ(policy.current_alpha(), 0.01);   // floored
  EXPECT_DOUBLE_EQ(policy.current_epsilon(), 0.02); // floored
}

TEST(RlBlhPolicy, DecayWithoutDecayFlagIsConstant) {
  RlBlhConfig config = small_config();
  config.decay_hyperparams = false;
  RlBlhPolicy policy(config);
  Battery battery(1.0, 0.5);
  Rng rng(7);
  run_day(policy, battery, random_usage(48, 0.08, rng), small_prices());
  EXPECT_DOUBLE_EQ(policy.current_alpha(), config.alpha);
  EXPECT_DOUBLE_EQ(policy.current_epsilon(), config.epsilon);
}

TEST(RlBlhPolicy, LearningDisabledFreezesWeights) {
  RlBlhPolicy policy(small_config());
  policy.set_learning_enabled(false);
  Battery battery(1.0, 0.5);
  Rng rng(8);
  run_day(policy, battery, random_usage(48, 0.08, rng), small_prices());
  for (std::size_t a = 0; a < 4; ++a) {
    for (const double w : policy.q().function(a).weights()) {
      EXPECT_DOUBLE_EQ(w, 0.0);
    }
  }
  EXPECT_EQ(policy.episodes_completed(), 0u);
}

TEST(RlBlhPolicy, LearningChangesWeights) {
  RlBlhPolicy policy(small_config());
  Battery battery(1.0, 0.5);
  Rng rng(9);
  run_day(policy, battery, random_usage(48, 0.08, rng), small_prices());
  double norm = 0.0;
  for (std::size_t a = 0; a < 4; ++a) {
    for (const double w : policy.q().function(a).weights()) norm += w * w;
  }
  EXPECT_GT(norm, 0.0);
}

TEST(RlBlhPolicy, ExplorationDisabledIsDeterministic) {
  RlBlhConfig config = small_config();
  config.enable_reuse = false;
  config.enable_synthetic = false;
  RlBlhPolicy a(config);
  RlBlhPolicy b(config);
  b.set_exploration_enabled(false);
  a.set_exploration_enabled(false);
  a.set_learning_enabled(false);
  b.set_learning_enabled(false);
  Battery battery_a(1.0, 0.5);
  Battery battery_b(1.0, 0.5);
  Rng rng(10);
  const auto usage = random_usage(48, 0.08, rng);
  const auto ra = run_day(a, battery_a, usage, small_prices());
  const auto rb = run_day(b, battery_b, usage, small_prices());
  EXPECT_EQ(ra, rb);
}

TEST(RlBlhPolicy, TrainVirtualDayRequiresAPriceSchedule) {
  RlBlhPolicy policy(small_config());
  EXPECT_THROW(policy.train_virtual_day(std::vector<double>(48, 0.01), 0.5),
               ConfigError);
}

TEST(RlBlhPolicy, TrainVirtualDayValidatesLength) {
  RlBlhPolicy policy(small_config());
  Battery battery(1.0, 0.5);
  Rng rng(11);
  run_day(policy, battery, random_usage(48, 0.08, rng), small_prices());
  EXPECT_THROW(policy.train_virtual_day(std::vector<double>(10, 0.01), 0.5),
               ConfigError);
  EXPECT_NO_THROW(
      policy.train_virtual_day(std::vector<double>(48, 0.01), 0.5));
}

TEST(RlBlhPolicy, TrainVirtualDayUpdatesWeights) {
  RlBlhConfig config = small_config();
  config.enable_reuse = false;
  config.enable_synthetic = false;
  RlBlhPolicy policy(config);
  Battery battery(1.0, 0.5);
  Rng rng(12);
  run_day(policy, battery, random_usage(48, 0.08, rng), small_prices());
  const auto before = policy.q().function(3).weights();
  for (int i = 0; i < 20; ++i) {
    policy.train_virtual_day(std::vector<double>(48, 0.05), 0.1);
  }
  // Starting at 0.1 (below the low guard) forces action 3; its weights move.
  EXPECT_NE(policy.q().function(3).weights(), before);
}

class GuardSweep : public ::testing::TestWithParam<
                       std::tuple<std::size_t, double>> {};

TEST_P(GuardSweep, ForcedActionsKeepLosslessBatteryInBounds) {
  const auto [n_d, capacity] = GetParam();
  RlBlhConfig config;
  config.intervals_per_day = 48;
  config.decision_interval = n_d;
  config.usage_cap = 0.08;
  config.battery_capacity = capacity;
  config.num_actions = 4;
  config.seed = 99;
  config.enable_reuse = false;
  config.enable_synthetic = false;
  RlBlhPolicy policy(config);
  Battery battery(capacity, capacity / 2.0);
  Rng rng(13);
  const TouSchedule prices = small_prices();
  for (int day = 0; day < 30; ++day) {
    // Adversarial usage: blocks of zero usage and blocks of max usage, the
    // worst cases for overflow and shortage respectively.
    std::vector<double> usage(48);
    for (std::size_t n = 0; n < 48; ++n) {
      usage[n] = (n / 8) % 2 == 0 ? 0.0 : 0.08;
    }
    run_day(policy, battery, usage, prices);
    ASSERT_EQ(battery.violation_count(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GuardSweep,
    ::testing::Combine(::testing::Values(2, 4, 6, 8),
                       ::testing::Values(1.3, 2.0, 4.0)));

}  // namespace
}  // namespace rlblh
