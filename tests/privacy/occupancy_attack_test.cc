#include "privacy/occupancy_attack.h"

#include <gtest/gtest.h>

#include "meter/household.h"
#include "util/error.h"
#include "util/rng.h"

namespace rlblh {
namespace {

Occupancy typical_day() {
  Occupancy occ;
  occ.wake = 390;
  occ.leave = 480;
  occ.back = 1050;
  occ.sleep = 1380;
  occ.works_away = true;
  return occ;
}

TEST(OccupancyAttack, RejectsBadConfig) {
  OccupancyAttackConfig config;
  config.window = 0;
  EXPECT_THROW(config.validate(), ConfigError);
  config = OccupancyAttackConfig{};
  config.quiet_quantile = 0.9;  // above busy
  EXPECT_THROW(infer_activity(DayTrace(100), config), ConfigError);
}

TEST(OccupancyAttack, RecoversCleanActivityBlock) {
  // High draw while active, near-zero otherwise: trivially recoverable.
  DayTrace readings(1440);
  const Occupancy occ = typical_day();
  for (std::size_t n = 0; n < 1440; ++n) {
    readings.set(n, occ.active(n) ? 0.03 : 0.001);
  }
  const auto predicted = infer_activity(readings);
  const OccupancyScore score = score_activity(predicted, occ);
  EXPECT_GT(score.balanced_accuracy(), 0.95);
}

TEST(OccupancyAttack, ChanceLevelOnConstantReadings) {
  // A flat stream carries no occupancy signal: the detector predicts one
  // class everywhere, so balanced accuracy is ~0.5.
  const DayTrace flat(std::vector<double>(1440, 0.02));
  const auto predicted = infer_activity(flat);
  const OccupancyScore score = score_activity(predicted, typical_day());
  EXPECT_NEAR(score.balanced_accuracy(), 0.5, 0.05);
}

TEST(OccupancyAttack, RawHouseholdLeaksMoreThanNoise) {
  // On raw meter readings of the synthetic household the attack must beat
  // chance clearly; on shuffled (time-scrambled) readings it must not.
  HouseholdModel household(HouseholdConfig{}, 77);
  Rng rng(1);
  OccupancyScore raw_score;
  OccupancyScore scrambled_score;
  for (int d = 0; d < 15; ++d) {
    Occupancy occ;
    const DayTrace day = household.generate_day(nullptr, &occ);
    raw_score.merge(score_activity(infer_activity(day), occ));
    // Scramble: destroys the envelope but keeps the value distribution.
    std::vector<double> values = day.values();
    for (std::size_t i = values.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(i - 1)));
      std::swap(values[i - 1], values[j]);
    }
    scrambled_score.merge(
        score_activity(infer_activity(DayTrace(values)), occ));
  }
  EXPECT_GT(raw_score.balanced_accuracy(), 0.7);
  EXPECT_LT(scrambled_score.balanced_accuracy(),
            raw_score.balanced_accuracy() - 0.1);
}

TEST(OccupancyAttack, ScoreMergeAccumulates) {
  OccupancyScore a{10, 20, 8, 15};
  const OccupancyScore b{5, 5, 5, 0};
  a.merge(b);
  EXPECT_EQ(a.active_intervals, 15u);
  EXPECT_EQ(a.inactive_intervals, 25u);
  EXPECT_EQ(a.active_hits, 13u);
  EXPECT_EQ(a.inactive_hits, 15u);
}

TEST(OccupancyAttack, BalancedAccuracyEdgeCases) {
  const OccupancyScore empty;
  EXPECT_DOUBLE_EQ(empty.balanced_accuracy(), 0.0);
  const OccupancyScore one_class{10, 0, 10, 0};
  EXPECT_DOUBLE_EQ(one_class.balanced_accuracy(), 1.0);
  EXPECT_THROW(score_activity({}, typical_day()), ConfigError);
}

TEST(OccupancyAttack, HouseholdGroundTruthIsExposed) {
  HouseholdModel household(HouseholdConfig{}, 78);
  Occupancy occ;
  occ.wake = 9999;  // sentinel: must be overwritten
  (void)household.generate_day(nullptr, &occ);
  EXPECT_LT(occ.wake, kIntervalsPerDay);
  EXPECT_LT(occ.sleep, kIntervalsPerDay);
}

}  // namespace
}  // namespace rlblh
