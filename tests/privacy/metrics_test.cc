#include "privacy/metrics.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace rlblh {
namespace {

TouSchedule simple_prices() {
  return TouSchedule::two_zone(4, 2, 1.0, 3.0);
}

TEST(DailySavings, MatchesEquation3) {
  // S = sum r_n (x_n - y_n).
  const DayTrace x(std::vector<double>{1.0, 1.0, 1.0, 1.0});
  const DayTrace y(std::vector<double>{2.0, 2.0, 0.0, 0.0});
  // S = 1*(1-2) + 1*(1-2) + 3*(1-0) + 3*(1-0) = -2 + 6 = 4.
  EXPECT_DOUBLE_EQ(daily_savings_cents(x, y, simple_prices()), 4.0);
}

TEST(DailySavings, ZeroWhenReadingsEqualUsage) {
  const DayTrace x(std::vector<double>{0.5, 0.25, 0.75, 1.0});
  EXPECT_DOUBLE_EQ(daily_savings_cents(x, x, simple_prices()), 0.0);
}

TEST(DailySavings, RejectsLengthMismatch) {
  const DayTrace x(std::vector<double>{1.0, 1.0});
  const DayTrace y(std::vector<double>{1.0, 1.0, 1.0, 1.0});
  EXPECT_THROW(daily_savings_cents(x, y, simple_prices()), ConfigError);
}

TEST(DailyBillAndCost, PriceWeightedSums) {
  const DayTrace x(std::vector<double>{1.0, 0.0, 1.0, 0.0});
  EXPECT_DOUBLE_EQ(daily_usage_cost_cents(x, simple_prices()), 4.0);
  EXPECT_DOUBLE_EQ(daily_bill_cents(x, simple_prices()), 4.0);
}

TEST(SavingRatioAccumulator, MatchesEquation22) {
  SavingRatioAccumulator acc;
  const DayTrace x(std::vector<double>{1.0, 1.0, 1.0, 1.0});  // cost = 8
  const DayTrace y(std::vector<double>{2.0, 2.0, 0.0, 0.0});  // S = 4
  acc.observe_day(x, y, simple_prices());
  EXPECT_DOUBLE_EQ(acc.saving_ratio(), 0.5);
  EXPECT_DOUBLE_EQ(acc.mean_daily_savings_cents(), 4.0);
  EXPECT_EQ(acc.days(), 1u);
}

TEST(SavingRatioAccumulator, AveragesPerDayRatios) {
  SavingRatioAccumulator acc;
  const DayTrace x(std::vector<double>{1.0, 1.0, 1.0, 1.0});
  const DayTrace y_half(std::vector<double>{2.0, 2.0, 0.0, 0.0});  // SR 0.5
  acc.observe_day(x, y_half, simple_prices());
  acc.observe_day(x, x, simple_prices());  // SR 0
  EXPECT_DOUBLE_EQ(acc.saving_ratio(), 0.25);
}

TEST(SavingRatioAccumulator, NegativeSavingsAreCounted) {
  SavingRatioAccumulator acc;
  const DayTrace x(std::vector<double>{1.0, 1.0, 1.0, 1.0});
  const DayTrace y(std::vector<double>{0.0, 0.0, 2.0, 2.0});  // S = -4
  acc.observe_day(x, y, simple_prices());
  EXPECT_DOUBLE_EQ(acc.saving_ratio(), -0.5);
}

TEST(SavingRatioAccumulator, SkipsZeroUsageDays) {
  SavingRatioAccumulator acc;
  const DayTrace zero(std::vector<double>{0.0, 0.0, 0.0, 0.0});
  const DayTrace y(std::vector<double>{1.0, 0.0, 0.0, 0.0});
  acc.observe_day(zero, y, simple_prices());
  EXPECT_EQ(acc.days(), 0u);
  EXPECT_DOUBLE_EQ(acc.saving_ratio(), 0.0);
}

}  // namespace
}  // namespace rlblh
