#include "privacy/mutual_information.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "util/error.h"
#include "util/rng.h"

namespace rlblh {
namespace {

DayTrace random_day(std::size_t n, double cap, Rng& rng) {
  DayTrace t(n);
  for (std::size_t i = 0; i < n; ++i) t.set(i, rng.uniform(0.0, cap));
  return t;
}

TEST(PairwiseMi, RejectsBadConstruction) {
  EXPECT_THROW(PairwiseMiEstimator(1, 8, 1.0, 1.0), ConfigError);
  EXPECT_THROW(PairwiseMiEstimator(10, 1, 1.0, 1.0), ConfigError);
}

TEST(PairwiseMi, EmptyEstimatorReportsZero) {
  PairwiseMiEstimator mi(10, 4, 1.0, 1.0);
  EXPECT_DOUBLE_EQ(mi.normalized_mi(), 0.0);
}

TEST(PairwiseMi, RejectsMismatchedDays) {
  PairwiseMiEstimator mi(10, 4, 1.0, 1.0);
  EXPECT_THROW(mi.observe_day(DayTrace(5), DayTrace(10)), ConfigError);
}

TEST(PairwiseMi, IdenticalStreamsLeakEverything) {
  // Y = X: observing Y fully determines X, so normalized MI ~ 1.
  PairwiseMiEstimator mi(50, 4, 1.0, 1.0);
  Rng rng(1);
  for (int d = 0; d < 400; ++d) {
    const DayTrace x = random_day(50, 1.0, rng);
    mi.observe_day(x, x);
  }
  EXPECT_GT(mi.normalized_mi(), 0.95);
  EXPECT_LE(mi.normalized_mi(), 1.0 + 1e-12);
}

TEST(PairwiseMi, ConstantReadingsLeakNothing) {
  // Y constant: H(X|Y) = H(X), MI = 0.
  PairwiseMiEstimator mi(50, 4, 1.0, 1.0);
  Rng rng(2);
  const DayTrace flat(std::vector<double>(50, 0.5));
  for (int d = 0; d < 400; ++d) {
    mi.observe_day(random_day(50, 1.0, rng), flat);
  }
  EXPECT_DOUBLE_EQ(mi.normalized_mi(), 0.0);
}

TEST(PairwiseMi, IndependentReadingsLeakLittle) {
  PairwiseMiEstimator mi(50, 4, 1.0, 1.0);
  Rng rng(3);
  for (int d = 0; d < 2000; ++d) {
    mi.observe_day(random_day(50, 1.0, rng), random_day(50, 1.0, rng));
  }
  // Finite-sample bias keeps this slightly above zero; it must be far below
  // the identical-streams case.
  EXPECT_LT(mi.normalized_mi(), 0.15);
}

TEST(PairwiseMi, DeterministicUsageContributesZero) {
  // X constant: H(X_n) = 0, the interval is defined to contribute 0.
  PairwiseMiEstimator mi(10, 4, 1.0, 1.0);
  Rng rng(4);
  const DayTrace const_x(std::vector<double>(10, 0.25));
  for (int d = 0; d < 50; ++d) {
    mi.observe_day(const_x, random_day(10, 1.0, rng));
  }
  EXPECT_DOUBLE_EQ(mi.normalized_mi(), 0.0);
  EXPECT_DOUBLE_EQ(mi.usage_entropy_at(0), 0.0);
}

TEST(PairwiseMi, PartialDependenceIsBetweenExtremes) {
  // Y reveals the coarse half (low/high) of X but not more.
  PairwiseMiEstimator mi(50, 4, 1.0, 1.0);
  Rng rng(5);
  for (int d = 0; d < 1000; ++d) {
    DayTrace x = random_day(50, 1.0, rng);
    DayTrace y(50);
    for (std::size_t n = 0; n < 50; ++n) {
      y.set(n, x.at(n) < 0.5 ? 0.2 : 0.8);
    }
    mi.observe_day(x, y);
  }
  const double v = mi.normalized_mi();
  EXPECT_GT(v, 0.3);
  EXPECT_LT(v, 0.9);
}

TEST(PairwiseMi, MonotoneInDependenceStrength) {
  Rng rng(6);
  double leak[2];
  for (int variant = 0; variant < 2; ++variant) {
    PairwiseMiEstimator mi(40, 4, 1.0, 1.0);
    const double noise = variant == 0 ? 0.45 : 0.05;
    for (int d = 0; d < 800; ++d) {
      DayTrace x = random_day(40, 1.0, rng);
      DayTrace y(40);
      for (std::size_t n = 0; n < 40; ++n) {
        const double v = x.at(n) + rng.uniform(-noise, noise);
        y.set(n, std::min(1.0, std::max(0.0, v)));
      }
      mi.observe_day(x, y);
    }
    leak[variant] = mi.normalized_mi();
  }
  EXPECT_GT(leak[1], leak[0]);  // less noise leaks more
}

TEST(PairwiseMi, PerIntervalAccessorBounds) {
  PairwiseMiEstimator mi(10, 4, 1.0, 1.0);
  EXPECT_THROW(mi.normalized_mi_at(9), ConfigError);  // last pair index is 8
  EXPECT_NO_THROW(mi.normalized_mi_at(8));
  EXPECT_THROW(mi.usage_entropy_at(9), ConfigError);
}


TEST(PairwiseMi, BiasCorrectionReducesIndependentStreamLeakage) {
  // With few samples, the plug-in estimate of MI between independent
  // streams is biased upward; Miller-Madow must bring it down while
  // leaving the identical-streams case at ~1.
  Rng rng(8);
  PairwiseMiEstimator corrected(30, 4, 1.0, 1.0);
  PairwiseMiEstimator plugin(30, 4, 1.0, 1.0);
  plugin.set_bias_correction(false);
  for (int d = 0; d < 60; ++d) {
    const DayTrace x = random_day(30, 1.0, rng);
    const DayTrace y = random_day(30, 1.0, rng);
    corrected.observe_day(x, y);
    plugin.observe_day(x, y);
  }
  EXPECT_LT(corrected.normalized_mi(), plugin.normalized_mi());

  PairwiseMiEstimator identical(30, 4, 1.0, 1.0);
  for (int d = 0; d < 200; ++d) {
    const DayTrace x = random_day(30, 1.0, rng);
    identical.observe_day(x, x);
  }
  EXPECT_GT(identical.normalized_mi(), 0.9);
}

TEST(PairwiseMiEstimator, ResetMatchesFreshConstruction) {
  // The sparse reset (zero only touched joint cells) must be semantically
  // complete: after reset, re-observing a stream yields bitwise the same
  // estimate a freshly constructed estimator produces — the property the
  // fleet's arena-recycled accumulators stand on.
  PairwiseMiEstimator recycled(30, 8, 1.0, 1.0);
  Rng warmup(21);
  for (int d = 0; d < 25; ++d) {
    recycled.observe_day(random_day(30, 1.0, warmup),
                         random_day(30, 1.0, warmup));
  }
  recycled.reset();
  EXPECT_EQ(recycled.days(), 0u);
  EXPECT_EQ(recycled.normalized_mi(), 0.0);

  PairwiseMiEstimator fresh(30, 8, 1.0, 1.0);
  Rng a(22);
  Rng b(22);
  for (int d = 0; d < 25; ++d) {
    const DayTrace xa = random_day(30, 1.0, a);
    const DayTrace ya = random_day(30, 1.0, a);
    recycled.observe_day(xa, ya);
    const DayTrace xb = random_day(30, 1.0, b);
    const DayTrace yb = random_day(30, 1.0, b);
    fresh.observe_day(xb, yb);
  }
  EXPECT_EQ(recycled.days(), fresh.days());
  EXPECT_EQ(recycled.normalized_mi(), fresh.normalized_mi());
  for (std::size_t n = 0; n + 1 < 30; ++n) {
    EXPECT_EQ(recycled.normalized_mi_at(n), fresh.normalized_mi_at(n)) << n;
    EXPECT_EQ(recycled.usage_entropy_at(n), fresh.usage_entropy_at(n)) << n;
  }
}

class MiLevelsParam : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MiLevelsParam, NormalizedMiStaysInUnitInterval) {
  PairwiseMiEstimator mi(20, GetParam(), 1.0, 1.0);
  Rng rng(7);
  for (int d = 0; d < 100; ++d) {
    DayTrace x = random_day(20, 1.0, rng);
    DayTrace y(20);
    for (std::size_t n = 0; n < 20; ++n) y.set(n, 1.0 - x.at(n));
    mi.observe_day(x, y);
  }
  EXPECT_GE(mi.normalized_mi(), 0.0);
  EXPECT_LE(mi.normalized_mi(), 1.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, MiLevelsParam, ::testing::Values(2, 4, 8, 16));

}  // namespace
}  // namespace rlblh
