#include "privacy/nalm.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace rlblh {
namespace {

/// A flat baseline with one rectangular appliance activation on top.
DayTrace pulse_day(std::size_t start, std::size_t duration, double power,
                   double base = 0.001, std::size_t day_len = 200) {
  DayTrace t(std::vector<double>(day_len, base));
  for (std::size_t n = start; n < start + duration; ++n) {
    t.set(n, base + power);
  }
  return t;
}

TEST(NalmDetect, FindsSingleCleanActivation) {
  const DayTrace day = pulse_day(50, 20, 0.03);
  const auto events = nalm_detect(day);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].start, 50u);
  EXPECT_EQ(events[0].duration, 20u);
  EXPECT_NEAR(events[0].power, 0.03, 1e-9);
}

TEST(NalmDetect, IgnoresSubThresholdLoads) {
  const DayTrace day = pulse_day(50, 20, 0.002);  // below 0.004 threshold
  EXPECT_TRUE(nalm_detect(day).empty());
}

TEST(NalmDetect, FlatStreamYieldsNothing) {
  const DayTrace day(std::vector<double>(200, 0.01));
  EXPECT_TRUE(nalm_detect(day).empty());
}

TEST(NalmDetect, SeparatesTwoDistinctAppliances) {
  DayTrace day(std::vector<double>(300, 0.001));
  for (std::size_t n = 40; n < 60; ++n) day.set(n, 0.001 + 0.03);
  for (std::size_t n = 150; n < 200; ++n) day.set(n, 0.001 + 0.01);
  const auto events = nalm_detect(day);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].start, 40u);
  EXPECT_EQ(events[1].start, 150u);
}

TEST(NalmDetect, PairsOverlappingAppliancesByPower) {
  // Appliance A (0.03) turns on, then B (0.01) on, A off, B off. The falling
  // edge of A must pair with A's rising edge despite B's edges between.
  DayTrace day(std::vector<double>(300, 0.001));
  for (std::size_t n = 40; n < 100; ++n) day.add_clamped(n, 0.03, 0.0);
  for (std::size_t n = 60; n < 140; ++n) day.add_clamped(n, 0.01, 0.0);
  const auto events = nalm_detect(day);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].start, 40u);
  EXPECT_EQ(events[0].duration, 60u);
  EXPECT_NEAR(events[0].power, 0.03, 1e-9);
  EXPECT_EQ(events[1].start, 60u);
  EXPECT_EQ(events[1].duration, 80u);
}

TEST(NalmDetect, RespectsMaxDuration) {
  NalmConfig config;
  config.max_duration = 10;
  const DayTrace day = pulse_day(50, 50, 0.03);
  EXPECT_TRUE(nalm_detect(day, config).empty());
}

TEST(NalmDetect, RejectsBadConfig) {
  NalmConfig config;
  config.edge_threshold = 0.0;
  EXPECT_THROW(nalm_detect(DayTrace(10), config), ConfigError);
  config = NalmConfig{};
  config.power_tolerance = -0.1;
  EXPECT_THROW(nalm_detect(DayTrace(10), config), ConfigError);
}

TEST(NalmScore, PerfectDetectionScoresOne) {
  const std::vector<ApplianceEvent> truth{{"dryer", 50, 20, 0.03}};
  const DayTrace day = pulse_day(50, 20, 0.03);
  const NalmScore score = nalm_score(nalm_detect(day), truth);
  EXPECT_EQ(score.true_events, 1u);
  EXPECT_EQ(score.matched, 1u);
  EXPECT_DOUBLE_EQ(score.detection_rate(), 1.0);
}

TEST(NalmScore, FlatStreamScoresZero) {
  const std::vector<ApplianceEvent> truth{{"dryer", 50, 20, 0.03}};
  const DayTrace flat(std::vector<double>(200, 0.01));
  const NalmScore score = nalm_score(nalm_detect(flat), truth);
  EXPECT_EQ(score.true_events, 1u);
  EXPECT_EQ(score.matched, 0u);
  EXPECT_DOUBLE_EQ(score.detection_rate(), 0.0);
}

TEST(NalmScore, SubThresholdTruthIsExcluded) {
  const std::vector<ApplianceEvent> truth{{"led", 50, 20, 0.0005}};
  const NalmScore score = nalm_score({}, truth);
  EXPECT_EQ(score.true_events, 0u);
  EXPECT_DOUBLE_EQ(score.detection_rate(), 0.0);
}

TEST(NalmScore, PowerMismatchDoesNotMatch) {
  const std::vector<ApplianceEvent> truth{{"dryer", 50, 20, 0.03}};
  const std::vector<DetectedEvent> detected{{50, 20, 0.005}};
  const NalmScore score = nalm_score(detected, truth);
  EXPECT_EQ(score.matched, 0u);
}

TEST(NalmScore, OneDetectionCannotMatchTwoTruths) {
  const std::vector<ApplianceEvent> truth{{"a", 50, 20, 0.03},
                                          {"b", 55, 20, 0.03}};
  const std::vector<DetectedEvent> detected{{50, 25, 0.03}};
  const NalmScore score = nalm_score(detected, truth);
  EXPECT_EQ(score.true_events, 2u);
  EXPECT_EQ(score.matched, 1u);
}

TEST(NalmScore, NonOverlappingDetectionDoesNotMatch) {
  const std::vector<ApplianceEvent> truth{{"a", 50, 10, 0.03}};
  const std::vector<DetectedEvent> detected{{100, 10, 0.03}};
  EXPECT_EQ(nalm_score(detected, truth).matched, 0u);
}

}  // namespace
}  // namespace rlblh
