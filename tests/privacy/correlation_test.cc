#include "privacy/correlation.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/error.h"
#include "util/rng.h"

namespace rlblh {
namespace {

TEST(PearsonCorrelation, PerfectPositive) {
  const std::vector<double> x{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> y{2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(pearson_correlation(x, y), 1.0, 1e-12);
}

TEST(PearsonCorrelation, PerfectNegative) {
  const std::vector<double> x{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> y{8.0, 6.0, 4.0, 2.0};
  EXPECT_NEAR(pearson_correlation(x, y), -1.0, 1e-12);
}

TEST(PearsonCorrelation, InvariantToAffineTransform) {
  Rng rng(1);
  std::vector<double> x, y;
  for (int i = 0; i < 200; ++i) {
    x.push_back(rng.uniform());
    y.push_back(rng.uniform());
  }
  const double base = pearson_correlation(x, y);
  std::vector<double> y2;
  for (const double v : y) y2.push_back(3.0 * v + 7.0);
  EXPECT_NEAR(pearson_correlation(x, y2), base, 1e-12);
}

TEST(PearsonCorrelation, ConstantSeriesYieldsZero) {
  const std::vector<double> x{1.0, 2.0, 3.0};
  const std::vector<double> flat{5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(pearson_correlation(x, flat), 0.0);
  EXPECT_DOUBLE_EQ(pearson_correlation(flat, x), 0.0);
}

TEST(PearsonCorrelation, IndependentSeriesNearZero) {
  Rng rng(2);
  std::vector<double> x, y;
  for (int i = 0; i < 20000; ++i) {
    x.push_back(rng.uniform());
    y.push_back(rng.uniform());
  }
  EXPECT_NEAR(pearson_correlation(x, y), 0.0, 0.03);
}

TEST(PearsonCorrelation, AlwaysInUnitInterval) {
  Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> x, y;
    for (int i = 0; i < 30; ++i) {
      x.push_back(rng.normal(0.0, 1.0));
      y.push_back(0.5 * x.back() + rng.normal(0.0, 0.5));
    }
    const double cc = pearson_correlation(x, y);
    EXPECT_GE(cc, -1.0 - 1e-12);
    EXPECT_LE(cc, 1.0 + 1e-12);
  }
}

TEST(PearsonCorrelation, RejectsBadInput) {
  const std::vector<double> empty;
  const std::vector<double> one{1.0};
  const std::vector<double> two{1.0, 2.0};
  EXPECT_THROW(pearson_correlation(empty, empty), ConfigError);
  EXPECT_THROW(pearson_correlation(one, two), ConfigError);
}

TEST(PearsonCorrelation, DayTraceOverload) {
  DayTrace x(std::vector<double>{0.0, 0.1, 0.2});
  DayTrace y(std::vector<double>{0.0, 0.2, 0.4});
  EXPECT_NEAR(pearson_correlation(x, y), 1.0, 1e-12);
}

TEST(CorrelationAccumulator, AveragesAcrossDays) {
  CorrelationAccumulator acc;
  EXPECT_DOUBLE_EQ(acc.mean_cc(), 0.0);
  acc.observe_day(DayTrace(std::vector<double>{1.0, 2.0, 3.0}),
                  DayTrace(std::vector<double>{1.0, 2.0, 3.0}));
  acc.observe_day(DayTrace(std::vector<double>{1.0, 2.0, 3.0}),
                  DayTrace(std::vector<double>{3.0, 2.0, 1.0}));
  EXPECT_EQ(acc.days(), 2u);
  EXPECT_NEAR(acc.mean_cc(), 0.0, 1e-12);  // +1 and -1 average to 0
  EXPECT_NEAR(acc.stddev_cc(), std::sqrt(2.0), 1e-12);
}

}  // namespace
}  // namespace rlblh
