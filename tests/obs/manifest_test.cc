// Manifest writer contract: RUN_<name>.json carries the rlblh-run-v1
// schema with build provenance, config, every registered metric and the
// span tree, and the JsonWriter escapes what needs escaping.
#include "obs/manifest.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <cstdlib>
#include <sstream>
#include <string>

#include "obs/json_writer.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"

namespace rlblh::obs {
namespace {

class ManifestTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_enabled(true);
    registry().reset();
    Tracer::instance().reset();
  }
  void TearDown() override {
    set_enabled(false);
    registry().reset();
    Tracer::instance().reset();
  }
};

bool contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

bool balanced(const std::string& text) {
  long braces = 0;
  long brackets = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': ++braces; break;
      case '}': --braces; break;
      case '[': ++brackets; break;
      case ']': --brackets; break;
      default: break;
    }
    if (braces < 0 || brackets < 0) return false;
  }
  return braces == 0 && brackets == 0 && !in_string;
}

TEST_F(ManifestTest, CarriesSchemaBuildInfoConfigMetricsAndSpans) {
  registry().counter("test.days").add(42);
  registry().gauge("test.rate").set(0.125);
  registry().histogram("test.latency_ns").observe(1000.0);
  registry().histogram("test.latency_ns").observe(3000.0);
  {
    ScopedSpan outer("manifest.outer");
    ScopedSpan inner("manifest.inner");
  }

  RunInfo info;
  info.name = "unit_test_run";
  info.command = {"./unit", "--flag"};
  info.config = {{"threads", "2"}, {"quick", "true"}};

  std::ostringstream out;
  write_manifest(out, info);
  const std::string doc = out.str();

  EXPECT_TRUE(balanced(doc)) << doc;
  EXPECT_TRUE(contains(doc, "\"schema\": \"rlblh-run-v1\""));
  EXPECT_TRUE(contains(doc, "\"name\": \"unit_test_run\""));
  EXPECT_TRUE(contains(doc, "\"--flag\""));
  EXPECT_TRUE(contains(doc, "\"git_sha\""));
  EXPECT_TRUE(contains(doc, "\"compiler\""));
  EXPECT_TRUE(contains(doc, "\"build_type\""));
  EXPECT_TRUE(contains(doc, "\"obs_compiled\""));
  EXPECT_TRUE(contains(doc, "\"threads\": \"2\""));
  EXPECT_TRUE(contains(doc, "\"test.days\": 42"));
  EXPECT_TRUE(contains(doc, "\"test.rate\": 0.125"));
  EXPECT_TRUE(contains(doc, "\"test.latency_ns\""));
  EXPECT_TRUE(contains(doc, "\"count\": 2"));
#if RLBLH_OBS_ENABLED
  EXPECT_TRUE(contains(doc, "\"manifest.outer\""));
  EXPECT_TRUE(contains(doc, "\"manifest.inner\""));
  // Nesting survives serialization: inner appears inside outer's children.
  EXPECT_LT(doc.find("manifest.outer"), doc.find("manifest.inner"));
#endif
}

TEST_F(ManifestTest, EmptyRegistryStillProducesBalancedDocument) {
  RunInfo info;
  info.name = "empty";
  std::ostringstream out;
  write_manifest(out, info);
  const std::string doc = out.str();
  EXPECT_TRUE(balanced(doc)) << doc;
  EXPECT_TRUE(contains(doc, "\"schema\": \"rlblh-run-v1\""));
  EXPECT_TRUE(contains(doc, "\"counters\""));
  EXPECT_TRUE(contains(doc, "\"spans\""));
}

TEST_F(ManifestTest, DefaultPathPrefersEnvironmentVariable) {
  ::unsetenv("RLBLH_OBS_OUT");
  EXPECT_EQ(default_manifest_path("fig6"), "RUN_fig6.json");
  ::setenv("RLBLH_OBS_OUT", "/tmp/custom_manifest.json", 1);
  EXPECT_EQ(default_manifest_path("fig6"), "/tmp/custom_manifest.json");
  ::unsetenv("RLBLH_OBS_OUT");
}

TEST_F(ManifestTest, BuildProvenanceIsNeverEmpty) {
  EXPECT_FALSE(build_git_sha().empty());
  EXPECT_FALSE(build_compiler().empty());
  EXPECT_FALSE(build_type().empty());
}

// --- JsonWriter -----------------------------------------------------------

TEST(JsonWriterTest, EscapesControlCharactersQuotesAndBackslashes) {
  EXPECT_EQ(JsonWriter::escape("plain"), "plain");
  EXPECT_EQ(JsonWriter::escape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonWriter::escape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonWriter::escape("line\nbreak"), "line\\u000abreak");
  EXPECT_EQ(JsonWriter::escape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonWriterTest, NonFiniteDoublesSerializeAsNull) {
  std::ostringstream out;
  JsonWriter json(out);
  json.begin_object();
  json.member("nan", std::nan(""));
  json.member("finite", 1.5);
  json.end_object();
  json.finish();
  EXPECT_TRUE(out.str().find("\"nan\": null") != std::string::npos)
      << out.str();
  EXPECT_TRUE(out.str().find("\"finite\": 1.5") != std::string::npos)
      << out.str();
}

TEST(JsonWriterTest, NestedContainersIndentAndComma) {
  std::ostringstream out;
  JsonWriter json(out);
  json.begin_object();
  json.key("list");
  json.begin_array();
  json.value(1LL);
  json.value(2LL);
  json.end_array();
  json.member("flag", true);
  json.end_object();
  json.finish();
  const std::string doc = out.str();
  EXPECT_TRUE(doc.find("\"list\": [") != std::string::npos) << doc;
  EXPECT_TRUE(doc.find("\"flag\": true") != std::string::npos) << doc;
}

}  // namespace
}  // namespace rlblh::obs
