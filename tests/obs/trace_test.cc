// Tracer contract: spans nest via the thread-local current-span id, worker
// threads start their own root chains, and write_span_tree_json emits valid
// JSON that round-trips the recorded tree (checked with a mini parser).
#include "obs/trace.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/obs.h"

namespace rlblh::obs {
namespace {

/// Restores a clean, disabled obs state around every test in this file so
/// span recording in one test never leaks into another (or into other
/// test binaries' expectations).
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_enabled(true);
    Tracer::instance().reset();
  }
  void TearDown() override {
    set_enabled(false);
    Tracer::instance().reset();
  }
};

/// Skips tests that need spans to actually record; under RLBLH_OBS=OFF
/// ScopedSpan is deliberately dormant (enabled() is constexpr false).
/// A macro so GTEST_SKIP returns from the test body, not a helper.
#define REQUIRE_RECORDING()                                     \
  do {                                                          \
    if (!compiled_in())                                         \
      GTEST_SKIP() << "observability compiled out";             \
  } while (0)

TEST_F(TraceTest, DisabledSpansRecordNothing) {
  set_enabled(false);
  {
    ScopedSpan outer("outer");
    ScopedSpan inner("inner");
  }
  EXPECT_EQ(Tracer::instance().size(), 0u);
}

TEST_F(TraceTest, NestedScopesFormParentChain) {
  REQUIRE_RECORDING();
  {
    ScopedSpan outer("outer");
    {
      ScopedSpan middle("middle");
      ScopedSpan inner("inner");
    }
    ScopedSpan sibling("sibling");
  }
  const std::vector<SpanRecord> spans = Tracer::instance().snapshot();
  ASSERT_EQ(spans.size(), 4u);

  std::map<std::string, SpanRecord> by_name;
  for (const SpanRecord& span : spans) by_name[span.name] = span;
  ASSERT_EQ(by_name.size(), 4u);

  EXPECT_EQ(by_name["outer"].parent, 0u);
  EXPECT_EQ(by_name["middle"].parent, by_name["outer"].id);
  EXPECT_EQ(by_name["inner"].parent, by_name["middle"].id);
  EXPECT_EQ(by_name["sibling"].parent, by_name["outer"].id);
  // Completion order: innermost scopes close first.
  EXPECT_EQ(spans.front().name, "inner");
  EXPECT_EQ(spans.back().name, "outer");
  // A child span cannot outlast its parent.
  EXPECT_LE(by_name["inner"].duration_ns, by_name["outer"].duration_ns);
}

TEST_F(TraceTest, MacroSpansNestLikeScopedSpans) {
  {
    RLBLH_OBS_SPAN("macro.outer");
    RLBLH_OBS_SPAN("macro.inner");
  }
  const std::vector<SpanRecord> spans = Tracer::instance().snapshot();
#if RLBLH_OBS_ENABLED
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "macro.inner");
  EXPECT_EQ(spans[1].name, "macro.outer");
  EXPECT_EQ(spans[0].parent, spans[1].id);
#else
  EXPECT_EQ(spans.size(), 0u);
#endif
}

TEST_F(TraceTest, WorkerThreadsStartTheirOwnRoots) {
  REQUIRE_RECORDING();
  {
    ScopedSpan main_root("main.root");
    std::thread worker([] {
      ScopedSpan worker_root("worker.root");
      ScopedSpan worker_child("worker.child");
    });
    worker.join();
  }
  const std::vector<SpanRecord> spans = Tracer::instance().snapshot();
  ASSERT_EQ(spans.size(), 3u);

  std::map<std::string, SpanRecord> by_name;
  for (const SpanRecord& span : spans) by_name[span.name] = span;
  EXPECT_EQ(by_name["main.root"].parent, 0u);
  EXPECT_EQ(by_name["worker.root"].parent, 0u);
  EXPECT_EQ(by_name["worker.child"].parent, by_name["worker.root"].id);
  EXPECT_NE(by_name["worker.root"].thread, by_name["main.root"].thread);
}

TEST_F(TraceTest, ResetAdvancesEpochAndClearsRecords) {
  REQUIRE_RECORDING();
  { ScopedSpan span("before"); }
  EXPECT_EQ(Tracer::instance().size(), 1u);
  const auto epoch = Tracer::instance().epoch();
  Tracer::instance().reset();
  EXPECT_EQ(Tracer::instance().size(), 0u);
  EXPECT_GE(Tracer::instance().epoch(), epoch);
  // New spans start their offsets from the fresh epoch.
  { ScopedSpan span("after"); }
  const std::vector<SpanRecord> spans = Tracer::instance().snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "after");
  EXPECT_EQ(spans[0].id, 1u);
}

// --- JSON round-trip ------------------------------------------------------

/// Minimal recursive-descent reader for exactly the JSON write_span_tree_json
/// produces: arrays of objects whose members are strings, integers, or
/// nested span arrays. Enough to verify structure without a JSON library.
class MiniParser {
 public:
  explicit MiniParser(std::string text) : text_(std::move(text)) {}

  struct Node {
    std::string name;
    std::uint64_t id = 0;
    long long duration_ns = -1;
    std::vector<Node> children;
  };

  std::vector<Node> parse() {
    const std::vector<Node> roots = parse_array();
    skip_ws();
    EXPECT_EQ(pos_, text_.size()) << "trailing content after span array";
    return roots;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(
               static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    EXPECT_LT(pos_, text_.size()) << "unexpected end of JSON";
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  void expect(char c) {
    EXPECT_EQ(peek(), c) << "at offset " << pos_;
    ++pos_;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) ++pos_;
      out.push_back(text_[pos_++]);
    }
    expect('"');
    return out;
  }

  long long parse_integer() {
    skip_ws();
    std::size_t end = pos_;
    while (end < text_.size() &&
           (text_[end] == '-' || std::isdigit(
                static_cast<unsigned char>(text_[end])))) {
      ++end;
    }
    EXPECT_GT(end, pos_) << "expected integer at offset " << pos_;
    const long long value = std::stoll(text_.substr(pos_, end - pos_));
    pos_ = end;
    return value;
  }

  std::vector<Node> parse_array() {
    std::vector<Node> nodes;
    expect('[');
    if (peek() == ']') {
      ++pos_;
      return nodes;
    }
    while (true) {
      nodes.push_back(parse_object());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return nodes;
    }
  }

  Node parse_object() {
    Node node;
    expect('{');
    while (true) {
      const std::string key = parse_string();
      expect(':');
      if (key == "children") {
        node.children = parse_array();
      } else if (key == "name") {
        node.name = parse_string();
      } else if (key == "id") {
        node.id = static_cast<std::uint64_t>(parse_integer());
      } else if (key == "duration_ns") {
        node.duration_ns = parse_integer();
      } else if (peek() == '"') {
        (void)parse_string();  // other string members, e.g. future additions
      } else {
        (void)parse_integer();  // parent, thread, start_ns
      }
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return node;
    }
  }

  std::string text_;
  std::size_t pos_ = 0;
};

TEST_F(TraceTest, JsonRoundTripPreservesTreeShape) {
  REQUIRE_RECORDING();
  {
    ScopedSpan root("root");
    {
      ScopedSpan stage("stage.a");
      ScopedSpan leaf("leaf.1");
    }
    ScopedSpan stage_b("stage.b");
  }
  std::thread worker([] { ScopedSpan span("worker.task"); });
  worker.join();

  std::ostringstream out;
  write_span_tree_json(out, Tracer::instance().snapshot());
  const std::vector<MiniParser::Node> roots =
      MiniParser(out.str()).parse();

  ASSERT_EQ(roots.size(), 2u);
  // Roots are ordered by span id: "root" opened before "worker.task".
  EXPECT_EQ(roots[0].name, "root");
  EXPECT_EQ(roots[1].name, "worker.task");
  EXPECT_TRUE(roots[1].children.empty());

  ASSERT_EQ(roots[0].children.size(), 2u);
  EXPECT_EQ(roots[0].children[0].name, "stage.a");
  EXPECT_EQ(roots[0].children[1].name, "stage.b");
  ASSERT_EQ(roots[0].children[0].children.size(), 1u);
  EXPECT_EQ(roots[0].children[0].children[0].name, "leaf.1");
  for (const MiniParser::Node& root : roots) {
    EXPECT_GE(root.duration_ns, 0);
  }
}

TEST_F(TraceTest, JsonEscapesSpanNames) {
  REQUIRE_RECORDING();
  { ScopedSpan span("quote\"and\\slash"); }
  std::ostringstream out;
  write_span_tree_json(out, Tracer::instance().snapshot());
  const std::vector<MiniParser::Node> roots =
      MiniParser(out.str()).parse();
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_EQ(roots[0].name, "quote\"and\\slash");
}

TEST_F(TraceTest, EmptySnapshotWritesEmptyArray) {
  std::ostringstream out;
  write_span_tree_json(out, {});
  EXPECT_TRUE(MiniParser(out.str()).parse().empty());
}

}  // namespace
}  // namespace rlblh::obs
