// Metrics registry contract: concurrent increments sum exactly, histogram
// summaries stay within one geometric bucket of the truth, and the registry
// hands out stable identities across reset().
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <thread>
#include <vector>

namespace rlblh::obs {
namespace {

TEST(CounterTest, SingleThreadSumsExactly) {
  Counter counter;
  for (int i = 0; i < 1000; ++i) counter.add(3);
  counter.add(-500);
  EXPECT_EQ(counter.value(), 2500);
  counter.reset();
  EXPECT_EQ(counter.value(), 0);
}

TEST(CounterTest, ConcurrentIncrementsFromManyThreadsSumExactly) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kIncrements; ++i) counter.add(1);
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.value(),
            static_cast<long long>(kThreads) * kIncrements);
}

TEST(GaugeTest, LastWriteWinsAndWrittenFlagTracksUse) {
  Gauge gauge;
  EXPECT_FALSE(gauge.written());
  gauge.set(1.5);
  gauge.set(-2.25);
  EXPECT_TRUE(gauge.written());
  EXPECT_DOUBLE_EQ(gauge.value(), -2.25);
  gauge.reset();
  EXPECT_FALSE(gauge.written());
  EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
}

TEST(HistogramMetricTest, BucketBoundsCoverEveryValueOnce) {
  // Buckets are half-open [lower, upper): every positive value lands in a
  // bucket whose upper bound exceeds it and whose predecessor's upper bound
  // (the lower bound) does not. Powers of two sit on their lower bound.
  for (const double v : {1e-9, 0.001, 0.5, 1.0, 1.5, 2.0, 100.0, 1e9, 1e20}) {
    const std::size_t bucket = HistogramMetric::bucket_of(v);
    EXPECT_GE(HistogramMetric::bucket_upper(bucket), v) << v;
    if (bucket + 1 < HistogramMetric::kBuckets) {
      EXPECT_GT(HistogramMetric::bucket_upper(bucket), v) << v;
    }
    if (bucket > 0 && bucket + 1 < HistogramMetric::kBuckets) {
      EXPECT_LE(HistogramMetric::bucket_upper(bucket - 1), v) << v;
    }
  }
  // Non-positive and NaN values land in the bottom bucket, never lost.
  EXPECT_EQ(HistogramMetric::bucket_of(0.0), 0u);
  EXPECT_EQ(HistogramMetric::bucket_of(-3.5), 0u);
  EXPECT_EQ(HistogramMetric::bucket_of(std::nan("")), 0u);
}

TEST(HistogramMetricTest, CountSumExtremesExactAndPercentilesSane) {
  HistogramMetric histogram;
  // Uniform 1..1000: median 500, p90 900.
  for (int i = 1; i <= 1000; ++i) histogram.observe(i);
  const auto snap = histogram.snapshot();
  EXPECT_EQ(snap.count, 1000u);
  EXPECT_DOUBLE_EQ(snap.sum, 500500.0);
  EXPECT_DOUBLE_EQ(snap.min, 1.0);
  EXPECT_DOUBLE_EQ(snap.max, 1000.0);
  EXPECT_DOUBLE_EQ(snap.mean(), 500.5);
  // Geometric buckets: a quantile estimate is the bucket upper bound, so it
  // can exceed the true quantile by at most a factor of 2 (and is clamped
  // to the observed extremes).
  EXPECT_GE(snap.quantile(0.5), 500.0 / 2.0);
  EXPECT_LE(snap.quantile(0.5), 500.0 * 2.0);
  EXPECT_GE(snap.quantile(0.9), 900.0 / 2.0);
  EXPECT_LE(snap.quantile(0.9), 1000.0);
  EXPECT_LE(snap.quantile(1.0), 1000.0);
  EXPECT_GE(snap.quantile(0.0), 1.0);
}

TEST(HistogramMetricTest, QuantilesMonotoneInQ) {
  HistogramMetric histogram;
  for (int i = 0; i < 5000; ++i) {
    histogram.observe(std::pow(1.5, i % 40));
  }
  const auto snap = histogram.snapshot();
  double previous = 0.0;
  for (const double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    const double estimate = snap.quantile(q);
    EXPECT_GE(estimate, previous) << "q=" << q;
    previous = estimate;
  }
}

TEST(HistogramMetricTest, ConcurrentObservationsCountExactly) {
  HistogramMetric histogram;
  constexpr int kThreads = 8;
  constexpr int kObservations = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram, t] {
      for (int i = 0; i < kObservations; ++i) {
        histogram.observe(t + 1);  // integral values: FP-order independent
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const auto snap = histogram.snapshot();
  EXPECT_EQ(snap.count, static_cast<std::uint64_t>(kThreads) * kObservations);
  // Sum of integers up to 8 * 5000 each stays exactly representable, and
  // atomic fetch_add of exactly-representable values is order-independent.
  EXPECT_DOUBLE_EQ(snap.sum, 5000.0 * (1 + 2 + 3 + 4 + 5 + 6 + 7 + 8));
  EXPECT_DOUBLE_EQ(snap.min, 1.0);
  EXPECT_DOUBLE_EQ(snap.max, 8.0);
}

TEST(MetricRegistryTest, LookupReturnsStableIdentitiesAcrossReset) {
  MetricRegistry reg;
  Counter& a = reg.counter("test.counter");
  Counter& b = reg.counter("test.counter");
  EXPECT_EQ(&a, &b);
  a.add(5);
  reg.reset();
  EXPECT_EQ(a.value(), 0);
  EXPECT_EQ(&reg.counter("test.counter"), &a);

  Gauge& g = reg.gauge("test.counter");  // same name, separate namespace
  g.set(1.0);
  EXPECT_EQ(a.value(), 0);
}

TEST(MetricRegistryTest, SnapshotsSortedByNameAndSkipUnwrittenGauges) {
  MetricRegistry reg;
  reg.counter("b.second").add(2);
  reg.counter("a.first").add(1);
  const auto counters = reg.counter_values();
  ASSERT_EQ(counters.size(), 2u);
  EXPECT_EQ(counters[0].first, "a.first");
  EXPECT_EQ(counters[1].first, "b.second");

  reg.gauge("written").set(3.0);
  reg.gauge("untouched");
  const auto gauges = reg.gauge_values();
  ASSERT_EQ(gauges.size(), 1u);
  EXPECT_EQ(gauges[0].first, "written");
}

}  // namespace
}  // namespace rlblh::obs
