// Wire-protocol tests: every message type round-trips through its encoder
// and decode_payload; every class of malformation raises DataError; the
// incremental FrameReader reassembles frames from arbitrary byte
// fragmentation and rejects unrecoverable length prefixes.
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "serve/protocol.h"
#include "util/error.h"

namespace rlblh::serve {
namespace {

/// Splits an encoded frame into its length prefix and payload.
std::vector<std::uint8_t> payload_of(const std::vector<std::uint8_t>& frame) {
  EXPECT_GE(frame.size(), 4u + 2u);
  std::uint32_t length = 0;
  std::memcpy(&length, frame.data(), 4);
  EXPECT_EQ(length, frame.size() - 4);
  return {frame.begin() + 4, frame.end()};
}

Frame decode_frame(const std::vector<std::uint8_t>& frame) {
  const std::vector<std::uint8_t> payload = payload_of(frame);
  return decode_payload(payload.data(), payload.size());
}

TEST(ProtocolTest, HelloRoundTrip) {
  HelloMsg msg;
  msg.household_id = 0x0123456789abcdefull;
  msg.spec = "policy=rlblh;battery=5;seed=21";
  std::vector<std::uint8_t> frame;
  encode_hello(frame, msg);

  const Frame decoded = decode_frame(frame);
  ASSERT_EQ(decoded.type, MessageType::kHello);
  EXPECT_EQ(decoded.hello.household_id, msg.household_id);
  EXPECT_EQ(decoded.hello.spec, msg.spec);
}

TEST(ProtocolTest, HelloAckRoundTrip) {
  HelloAckMsg msg;
  msg.household_id = 42;
  msg.days_completed = 7;
  msg.next_interval = 481;
  msg.day_open = 1;
  msg.resumed = 1;
  std::vector<std::uint8_t> frame;
  encode_hello_ack(frame, msg);

  const Frame decoded = decode_frame(frame);
  ASSERT_EQ(decoded.type, MessageType::kHelloAck);
  EXPECT_EQ(decoded.hello_ack.household_id, 42u);
  EXPECT_EQ(decoded.hello_ack.days_completed, 7u);
  EXPECT_EQ(decoded.hello_ack.next_interval, 481u);
  EXPECT_EQ(decoded.hello_ack.day_open, 1);
  EXPECT_EQ(decoded.hello_ack.resumed, 1);
}

TEST(ProtocolTest, ReadingsRoundTrip) {
  ReadingsMsg msg;
  msg.household_id = 9;
  msg.day = 3;
  msg.first_interval = 240;
  msg.values = {0.0, 0.125, 1.75, 0.333251953125};
  std::vector<std::uint8_t> frame;
  encode_readings(frame, msg);

  const Frame decoded = decode_frame(frame);
  ASSERT_EQ(decoded.type, MessageType::kReadings);
  EXPECT_EQ(decoded.readings.household_id, 9u);
  EXPECT_EQ(decoded.readings.day, 3u);
  EXPECT_EQ(decoded.readings.first_interval, 240u);
  EXPECT_EQ(decoded.readings.values, msg.values);
}

TEST(ProtocolTest, ReadingsAckRoundTrip) {
  ReadingsAckMsg msg;
  msg.household_id = 9;
  msg.day = 3;
  msg.next_interval = 244;
  msg.day_completed = 1;
  std::vector<std::uint8_t> frame;
  encode_readings_ack(frame, msg);

  const Frame decoded = decode_frame(frame);
  ASSERT_EQ(decoded.type, MessageType::kReadingsAck);
  EXPECT_EQ(decoded.readings_ack.household_id, 9u);
  EXPECT_EQ(decoded.readings_ack.day, 3u);
  EXPECT_EQ(decoded.readings_ack.next_interval, 244u);
  EXPECT_EQ(decoded.readings_ack.day_completed, 1);
}

TEST(ProtocolTest, CheckpointAndStatsAndByeRoundTrip) {
  std::vector<std::uint8_t> frame;
  encode_checkpoint(frame, CheckpointMsg{77});
  Frame decoded = decode_frame(frame);
  ASSERT_EQ(decoded.type, MessageType::kCheckpoint);
  EXPECT_EQ(decoded.checkpoint.household_id, 77u);

  frame.clear();
  encode_checkpoint_ack(frame, CheckpointAckMsg{77, 12});
  decoded = decode_frame(frame);
  ASSERT_EQ(decoded.type, MessageType::kCheckpointAck);
  EXPECT_EQ(decoded.checkpoint_ack.days_completed, 12u);

  frame.clear();
  encode_stats(frame, StatsMsg{77});
  decoded = decode_frame(frame);
  ASSERT_EQ(decoded.type, MessageType::kStats);

  frame.clear();
  StatsAckMsg stats_ack;
  stats_ack.household_id = 77;
  stats_ack.days_completed = 12;
  stats_ack.savings_cents = 123.4375;
  stats_ack.bill_cents = -0.5;
  stats_ack.usage_cost_cents = 9001.0;
  stats_ack.battery_level_kwh = 2.5;
  encode_stats_ack(frame, stats_ack);
  decoded = decode_frame(frame);
  ASSERT_EQ(decoded.type, MessageType::kStatsAck);
  EXPECT_EQ(decoded.stats_ack.savings_cents, 123.4375);
  EXPECT_EQ(decoded.stats_ack.bill_cents, -0.5);
  EXPECT_EQ(decoded.stats_ack.usage_cost_cents, 9001.0);
  EXPECT_EQ(decoded.stats_ack.battery_level_kwh, 2.5);

  frame.clear();
  encode_bye(frame, ByeMsg{77});
  decoded = decode_frame(frame);
  ASSERT_EQ(decoded.type, MessageType::kBye);

  frame.clear();
  encode_bye_ack(frame, ByeAckMsg{77});
  decoded = decode_frame(frame);
  ASSERT_EQ(decoded.type, MessageType::kByeAck);
  EXPECT_EQ(decoded.bye_ack.household_id, 77u);
}

TEST(ProtocolTest, ErrorRoundTrip) {
  ErrorMsg msg;
  msg.code = ErrorCode::kOutOfOrder;
  msg.message = "expected interval 480";
  std::vector<std::uint8_t> frame;
  encode_error(frame, msg);

  const Frame decoded = decode_frame(frame);
  ASSERT_EQ(decoded.type, MessageType::kError);
  EXPECT_EQ(decoded.error.code, ErrorCode::kOutOfOrder);
  EXPECT_EQ(decoded.error.message, msg.message);
}

TEST(ProtocolTest, RejectsWrongVersion) {
  std::vector<std::uint8_t> frame;
  encode_bye(frame, ByeMsg{1});
  std::vector<std::uint8_t> payload = payload_of(frame);
  payload[0] = kProtocolVersion + 1;
  EXPECT_THROW(decode_payload(payload.data(), payload.size()), DataError);
}

TEST(ProtocolTest, RejectsUnknownType) {
  std::vector<std::uint8_t> frame;
  encode_bye(frame, ByeMsg{1});
  std::vector<std::uint8_t> payload = payload_of(frame);
  payload[1] = 200;  // not a MessageType
  EXPECT_THROW(decode_payload(payload.data(), payload.size()), DataError);
}

TEST(ProtocolTest, RejectsTruncatedBody) {
  std::vector<std::uint8_t> frame;
  encode_readings(frame, ReadingsMsg{5, 0, 0, {1.0, 2.0}});
  std::vector<std::uint8_t> payload = payload_of(frame);
  payload.resize(payload.size() - 3);
  EXPECT_THROW(decode_payload(payload.data(), payload.size()), DataError);
}

TEST(ProtocolTest, RejectsTrailingBytes) {
  std::vector<std::uint8_t> frame;
  encode_bye(frame, ByeMsg{1});
  std::vector<std::uint8_t> payload = payload_of(frame);
  payload.push_back(0);
  EXPECT_THROW(decode_payload(payload.data(), payload.size()), DataError);
}

TEST(ProtocolTest, RejectsEmptyAndHeaderlessPayloads) {
  EXPECT_THROW(decode_payload(nullptr, 0), DataError);
  const std::uint8_t just_version[] = {kProtocolVersion};
  EXPECT_THROW(decode_payload(just_version, 1), DataError);
}

TEST(ProtocolTest, RejectsNonFiniteReadings) {
  ReadingsMsg msg;
  msg.household_id = 1;
  msg.values = {1.0, std::numeric_limits<double>::infinity()};
  std::vector<std::uint8_t> frame;
  encode_readings(frame, msg);
  const std::vector<std::uint8_t> payload = payload_of(frame);
  EXPECT_THROW(decode_payload(payload.data(), payload.size()), DataError);
}

TEST(FrameReaderTest, ReassemblesByteAtATime) {
  ReadingsMsg msg;
  msg.household_id = 3;
  msg.day = 1;
  msg.first_interval = 96;
  for (int i = 0; i < 50; ++i) msg.values.push_back(0.01 * i);
  std::vector<std::uint8_t> stream;
  encode_readings(stream, msg);
  encode_bye(stream, ByeMsg{3});

  FrameReader reader;
  std::vector<Frame> frames;
  std::vector<std::uint8_t> payload;
  for (const std::uint8_t byte : stream) {
    reader.append(&byte, 1);
    while (reader.take(payload)) {
      frames.push_back(decode_payload(payload.data(), payload.size()));
    }
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].type, MessageType::kReadings);
  EXPECT_EQ(frames[0].readings.values, msg.values);
  EXPECT_EQ(frames[1].type, MessageType::kBye);
  EXPECT_EQ(reader.buffered(), 0u);
}

TEST(FrameReaderTest, ReassemblesConcatenatedFramesInOneAppend) {
  std::vector<std::uint8_t> stream;
  for (std::uint64_t id = 1; id <= 5; ++id) {
    encode_stats(stream, StatsMsg{id});
  }
  FrameReader reader;
  reader.append(stream.data(), stream.size());
  std::vector<std::uint8_t> payload;
  for (std::uint64_t id = 1; id <= 5; ++id) {
    ASSERT_TRUE(reader.take(payload));
    const Frame frame = decode_payload(payload.data(), payload.size());
    ASSERT_EQ(frame.type, MessageType::kStats);
    EXPECT_EQ(frame.stats.household_id, id);
  }
  EXPECT_FALSE(reader.take(payload));
}

TEST(FrameReaderTest, ThrowsOnOversizedLengthPrefix) {
  const std::uint32_t huge = kMaxFrameBytes + 1;
  std::uint8_t prefix[4];
  std::memcpy(prefix, &huge, 4);
  FrameReader reader;
  reader.append(prefix, 4);
  std::vector<std::uint8_t> payload;
  EXPECT_THROW(reader.take(payload), DataError);
}

}  // namespace
}  // namespace rlblh::serve
