// HouseholdSession + CheckpointStore tests: the daemon-side day loop must
// be bitwise-identical to a batch SimEngine run over the same usage, the
// save/restore round-trip must be byte-stable, and the store must reject
// the failure modes (missing file, torn/garbage file, spec mismatch,
// non-checkpointable policy).
#include <bit>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>
#include <unistd.h>

#include "battery/battery.h"
#include "meter/trace.h"
#include "serve/checkpoint.h"
#include "serve/session.h"
#include "sim/engine.h"
#include "sim/scenario.h"
#include "util/error.h"

namespace rlblh::serve {
namespace {

constexpr const char* kSpec = "policy=rlblh;seed=33";

bool same_bits(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

/// Fresh per-test scratch directory under the test temp root.
std::string unique_dir(const std::string& tag) {
  const std::filesystem::path path =
      std::filesystem::path(testing::TempDir()) /
      ("rlblh_serve_" + tag + "_" + std::to_string(::getpid()));
  std::filesystem::remove_all(path);
  return path.string();
}

/// Feeds one full day into the session in fixed-size chunks; returns the
/// ack of the closing chunk.
bool feed_day(HouseholdSession& session, std::uint32_t day,
              const DayTrace& trace, std::size_t chunk = 480) {
  bool completed = false;
  const std::vector<double>& values = trace.values();
  for (std::size_t n0 = 0; n0 < values.size(); n0 += chunk) {
    const std::size_t width = std::min(chunk, values.size() - n0);
    completed = session.apply_readings(
        day, static_cast<std::uint32_t>(n0),
        std::span<const double>(values.data() + n0, width));
  }
  return completed;
}

TEST(HouseholdSessionTest, MatchesBatchSimEngineBitwise) {
  const ScenarioSpec spec = ScenarioSpec::parse(kSpec);
  HouseholdSession session(33, kSpec);
  ASSERT_EQ(session.intervals_per_day(), make_scenario_pricing(spec).intervals());

  // Batch reference: identical components, SimEngine day loop.
  const TouSchedule prices = make_scenario_pricing(spec);
  std::unique_ptr<BlhPolicy> batch_policy = make_scenario_policy(spec);
  Battery batch_battery(spec.battery_kwh, spec.battery_kwh / 2.0);
  std::unique_ptr<TraceSource> batch_source = make_scenario_source(spec);
  SimEngine batch;
  double savings = 0.0, bill = 0.0, usage_cost = 0.0;

  // Session side consumes the same deterministic trace days.
  std::unique_ptr<TraceSource> session_source = make_scenario_source(spec);

  for (std::uint32_t d = 0; d < 3; ++d) {
    const DayTrace trace = session_source->next_day();
    EXPECT_TRUE(feed_day(session, d, trace));

    const DayResult& expected =
        batch.run_day(*batch_source, prices, batch_battery, *batch_policy);
    savings += expected.savings_cents;
    bill += expected.bill_cents;
    usage_cost += expected.usage_cost_cents;
  }

  EXPECT_EQ(session.days_completed(), 3u);
  EXPECT_FALSE(session.day_open());
  EXPECT_TRUE(same_bits(session.savings_cents(), savings));
  EXPECT_TRUE(same_bits(session.bill_cents(), bill));
  EXPECT_TRUE(same_bits(session.usage_cost_cents(), usage_cost));
  EXPECT_TRUE(same_bits(session.battery_level(), batch_battery.level()));

  // The learned state itself must match, not just the totals.
  std::stringstream session_state, batch_state;
  session.policy().save_state(session_state);
  batch_policy->save_state(batch_state);
  EXPECT_EQ(session_state.str(), batch_state.str());
}

TEST(HouseholdSessionTest, RejectsOutOfOrderReadings) {
  HouseholdSession session(1, kSpec);
  const std::size_t n_m = session.intervals_per_day();
  std::vector<double> chunk(10, 0.5);

  // Wrong day index.
  EXPECT_THROW(session.apply_readings(1, 0, chunk), ConfigError);
  // Day must open at interval 0.
  EXPECT_THROW(session.apply_readings(0, 5, chunk), ConfigError);

  ASSERT_FALSE(session.apply_readings(0, 0, chunk));
  EXPECT_EQ(session.next_interval(), 10u);
  // Cursor gap.
  EXPECT_THROW(session.apply_readings(0, 11, chunk), ConfigError);
  // A frame must not cross the day boundary.
  std::vector<double> overflow(n_m, 0.5);
  EXPECT_THROW(session.apply_readings(0, 10, overflow), ConfigError);
}

TEST(HouseholdSessionTest, SaveWhileDayOpenThrows) {
  HouseholdSession session(2, kSpec);
  std::vector<double> chunk(10, 0.5);
  session.apply_readings(0, 0, chunk);
  ASSERT_TRUE(session.day_open());
  std::stringstream out;
  EXPECT_THROW(session.save(out), ConfigError);
}

TEST(HouseholdSessionTest, RejectsNonCheckpointablePolicy) {
  EXPECT_THROW(HouseholdSession(3, "policy=none"), ConfigError);
}

TEST(HouseholdSessionTest, RejectsInvalidSpec) {
  EXPECT_THROW(HouseholdSession(4, "policy=does-not-exist"), ConfigError);
  EXPECT_THROW(HouseholdSession(5, "nonsense_key=1"), ConfigError);
}

TEST(HouseholdSessionTest, RestoreContinuesBitwise) {
  const ScenarioSpec spec = ScenarioSpec::parse(kSpec);
  HouseholdSession original(6, kSpec);
  std::unique_ptr<TraceSource> source = make_scenario_source(spec);

  std::vector<DayTrace> days;
  for (int d = 0; d < 4; ++d) days.push_back(source->next_day());

  feed_day(original, 0, days[0]);
  feed_day(original, 1, days[1]);

  std::stringstream checkpoint;
  original.save(checkpoint);
  std::unique_ptr<HouseholdSession> restored =
      HouseholdSession::restore(checkpoint);

  ASSERT_EQ(restored->id(), 6u);
  ASSERT_EQ(restored->days_completed(), 2u);
  EXPECT_EQ(restored->spec_text(), original.spec_text());
  EXPECT_TRUE(same_bits(restored->battery_level(), original.battery_level()));

  // Same future days on both sides: identical trajectories and end states.
  for (std::uint32_t d = 2; d < 4; ++d) {
    feed_day(original, d, days[d]);
    feed_day(*restored, d, days[d]);
  }
  EXPECT_TRUE(same_bits(restored->savings_cents(), original.savings_cents()));
  EXPECT_TRUE(same_bits(restored->bill_cents(), original.bill_cents()));
  EXPECT_TRUE(
      same_bits(restored->battery_level(), original.battery_level()));
  std::stringstream a, b;
  original.save(a);
  restored->save(b);
  EXPECT_EQ(a.str(), b.str());
}

TEST(HouseholdSessionTest, RestoreRejectsGarbage) {
  std::stringstream garbage("this is not a checkpoint\n");
  EXPECT_THROW(HouseholdSession::restore(garbage), DataError);
}

TEST(CheckpointStoreTest, SaveLoadRoundTripIsByteIdentical) {
  CheckpointStore store(unique_dir("store_roundtrip"));
  const ScenarioSpec spec = ScenarioSpec::parse(kSpec);
  HouseholdSession session(21, kSpec);
  std::unique_ptr<TraceSource> source = make_scenario_source(spec);
  feed_day(session, 0, source->next_day());
  feed_day(session, 1, source->next_day());

  EXPECT_FALSE(store.exists(21));
  store.save(session);
  EXPECT_TRUE(store.exists(21));
  EXPECT_EQ(store.list(), std::vector<std::uint64_t>{21});

  std::unique_ptr<HouseholdSession> loaded = store.load(21);
  std::stringstream a, b;
  session.save(a);
  loaded->save(b);
  EXPECT_EQ(a.str(), b.str());
}

TEST(CheckpointStoreTest, SaveIsAtomicOverwrite) {
  CheckpointStore store(unique_dir("store_overwrite"));
  const ScenarioSpec spec = ScenarioSpec::parse(kSpec);
  HouseholdSession session(8, kSpec);
  std::unique_ptr<TraceSource> source = make_scenario_source(spec);

  feed_day(session, 0, source->next_day());
  store.save(session);
  feed_day(session, 1, source->next_day());
  store.save(session);  // rename over the day-1 snapshot

  std::unique_ptr<HouseholdSession> loaded = store.load(8);
  EXPECT_EQ(loaded->days_completed(), 2u);
  // No leftover tmp files from the two writes.
  std::size_t files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(store.dir())) {
    (void)entry;
    ++files;
  }
  EXPECT_EQ(files, 1u);
}

TEST(CheckpointStoreTest, OpeningStoreSweepsOrphanedTmpFiles) {
  const std::string dir = unique_dir("store_tmp_gc");
  std::string committed;
  {
    CheckpointStore store(dir);
    const ScenarioSpec spec = ScenarioSpec::parse(kSpec);
    HouseholdSession session(5, kSpec);
    std::unique_ptr<TraceSource> source = make_scenario_source(spec);
    feed_day(session, 0, source->next_day());
    store.save(session);
    committed = store.path_for(5);
    // Simulate a crash between serialize and rename: an orphaned tmp next
    // to the committed file.
    std::ofstream orphan(committed + ".tmp");
    orphan << "torn half-written checkpoint\n";
  }
  const std::string before = [&] {
    std::ifstream in(committed, std::ios::binary);
    std::stringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  }();

  CheckpointStore reopened(dir);  // the restart path sweeps
  EXPECT_FALSE(std::filesystem::exists(committed + ".tmp"));
  EXPECT_TRUE(reopened.exists(5));
  std::ifstream in(committed, std::ios::binary);
  std::stringstream after;
  after << in.rdbuf();
  EXPECT_EQ(after.str(), before) << "sweep must not touch committed files";
}

TEST(CheckpointStoreTest, LoadMissingOrMalformedThrows) {
  CheckpointStore store(unique_dir("store_malformed"));
  EXPECT_THROW(store.load(99), DataError);
  {
    std::ofstream out(store.path_for(99));
    out << "garbage bytes, not a session checkpoint\n";
  }
  EXPECT_TRUE(store.exists(99));
  EXPECT_THROW(store.load(99), DataError);
}

}  // namespace
}  // namespace rlblh::serve
