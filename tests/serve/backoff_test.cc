// Tests for the decorrelated-jitter reconnect backoff: every sleep stays in
// [base, cap], growth is bounded by 3x the previous sleep, reset() returns
// to the base, and two clients with different seeds decorrelate.
#include <chrono>
#include <vector>

#include <gtest/gtest.h>

#include "serve/backoff.h"
#include "util/error.h"
#include "util/rng.h"

namespace rlblh::serve {
namespace {

using std::chrono::milliseconds;

TEST(BackoffTest, SleepsStayWithinBaseAndCap) {
  DecorrelatedJitterBackoff backoff(milliseconds(10), milliseconds(500),
                                    Rng(1));
  for (int i = 0; i < 200; ++i) {
    const milliseconds sleep = backoff.next();
    EXPECT_GE(sleep, milliseconds(10));
    EXPECT_LE(sleep, milliseconds(500));
  }
}

TEST(BackoffTest, GrowthBoundedByThreeTimesPrevious) {
  DecorrelatedJitterBackoff backoff(milliseconds(10), milliseconds(100000),
                                    Rng(2));
  milliseconds prev = backoff.base();
  for (int i = 0; i < 50; ++i) {
    const milliseconds sleep = backoff.next();
    EXPECT_LE(sleep.count(), 3 * prev.count());
    prev = sleep;
  }
}

TEST(BackoffTest, ResetReturnsToBaseWindow) {
  DecorrelatedJitterBackoff backoff(milliseconds(10), milliseconds(100000),
                                    Rng(3));
  for (int i = 0; i < 20; ++i) backoff.next();  // grow the window
  backoff.reset();
  // The first post-reset sleep is drawn from [base, 3 * base].
  const milliseconds sleep = backoff.next();
  EXPECT_GE(sleep, milliseconds(10));
  EXPECT_LE(sleep, milliseconds(30));
}

TEST(BackoffTest, DistinctSeedsDecorrelate) {
  DecorrelatedJitterBackoff a(milliseconds(10), milliseconds(100000), Rng(4));
  DecorrelatedJitterBackoff b(milliseconds(10), milliseconds(100000), Rng(5));
  int differing = 0;
  for (int i = 0; i < 20; ++i) {
    if (a.next() != b.next()) ++differing;
  }
  EXPECT_GT(differing, 0);
}

TEST(BackoffTest, RejectsInvalidWindow) {
  EXPECT_THROW(DecorrelatedJitterBackoff(milliseconds(0), milliseconds(10),
                                         Rng(6)),
               ConfigError);
  EXPECT_THROW(DecorrelatedJitterBackoff(milliseconds(20), milliseconds(10),
                                         Rng(7)),
               ConfigError);
}

}  // namespace
}  // namespace rlblh::serve
