// In-process daemon tests: protocol round-trips over a real unix socket,
// malformed-frame handling, reconnect/resume semantics, the load generator
// end to end, and the headline differential — a daemon that is crashed
// (no drain checkpoint) mid-day and restarted finishes with byte-identical
// household checkpoints to an uninterrupted direct run.
//
// Every protocol-visible behavior runs under BOTH threading models
// (ServeModeTest is parameterized over ThreadingMode), and the cross-mode
// tests pin the contract directly: the epoll/shard server and the
// thread-per-connection server produce bitwise-identical checkpoint files
// and acks, with or without server-side BatchEngine stepping.
#include <chrono>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>
#include <unistd.h>

#include "meter/trace.h"
#include "serve/checkpoint.h"
#include "serve/client.h"
#include "serve/load_gen.h"
#include "serve/net.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/session.h"
#include "sim/scenario.h"
#include "util/error.h"

namespace rlblh::serve {
namespace {

constexpr const char* kSpec = "policy=rlblh;seed=21";

std::string unique_dir(const std::string& tag) {
  const std::filesystem::path path =
      std::filesystem::path(testing::TempDir()) /
      ("rlblh_server_" + tag + "_" + std::to_string(::getpid()));
  std::filesystem::remove_all(path);
  return path.string();
}

/// A started server on a unix socket under its own scratch directory.
struct TestDaemon {
  explicit TestDaemon(const std::string& tag,
                      ThreadingMode threading = ThreadingMode::kEventLoop,
                      std::size_t checkpoint_period = 1) {
    dir = unique_dir(tag);
    config.listen = "unix:" + dir + "/sock";
    config.checkpoint_dir = dir + "/ckpt";
    config.checkpoint_period_days = checkpoint_period;
    config.threading = threading;
    server = std::make_unique<ServeServer>(config);
    server->start();
  }

  /// A fresh server over the same checkpoint dir (the restart path).
  void restart() {
    server = std::make_unique<ServeServer>(config);
    server->start();
  }

  std::string dir;
  ServeConfig config;
  std::unique_ptr<ServeServer> server;
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Sends one day of `trace` through the client in `chunk`-interval frames,
/// starting at `first` (for replaying a partially-acked day).
void send_day(ServeClient& client, std::uint64_t id, std::uint32_t day,
              const DayTrace& trace, std::uint32_t first = 0,
              std::size_t chunk = 480) {
  const std::vector<double>& values = trace.values();
  for (std::size_t n0 = first; n0 < values.size(); n0 += chunk) {
    const std::size_t width = std::min(chunk, values.size() - n0);
    const std::vector<double> slice(values.begin() + n0,
                                    values.begin() + n0 + width);
    const ReadingsAckMsg ack = client.send_readings(
        id, day, static_cast<std::uint32_t>(n0), slice);
    EXPECT_EQ(ack.household_id, id);
  }
}

std::string mode_tag(ThreadingMode mode) {
  return mode == ThreadingMode::kEventLoop ? "el" : "tpc";
}

/// Both threading models must show every protocol behavior identically.
class ServeModeTest : public testing::TestWithParam<ThreadingMode> {
 protected:
  std::string tag(const std::string& base) const {
    return base + "_" + mode_tag(GetParam());
  }
};

INSTANTIATE_TEST_SUITE_P(Modes, ServeModeTest,
                         testing::Values(ThreadingMode::kEventLoop,
                                         ThreadingMode::kThreadPerConn),
                         [](const testing::TestParamInfo<ThreadingMode>& i) {
                           return i.param == ThreadingMode::kEventLoop
                                      ? "EventLoop"
                                      : "ThreadPerConn";
                         });

TEST(ServeServerTest, ResolvesEphemeralTcpEndpoint) {
  ServeConfig config;
  config.listen = "tcp:0";
  config.checkpoint_dir = unique_dir("tcp0") + "/ckpt";
  ServeServer server(config);
  server.start();
  EXPECT_NE(server.endpoint(), "tcp:0");
  EXPECT_EQ(server.endpoint().rfind("tcp:", 0), 0u);
  server.stop();
}

TEST_P(ServeModeTest, HelloReadingsStatsByeRoundTrip) {
  TestDaemon daemon(tag("roundtrip"), GetParam());
  ServeClient client(daemon.server->endpoint(), 1);
  client.connect();

  const HelloAckMsg hello = client.hello(7, kSpec);
  EXPECT_EQ(hello.household_id, 7u);
  EXPECT_EQ(hello.days_completed, 0u);
  EXPECT_EQ(hello.day_open, 0);
  EXPECT_EQ(hello.resumed, 0);

  const ScenarioSpec spec = ScenarioSpec::parse(kSpec);
  std::unique_ptr<TraceSource> source = make_scenario_source(spec);
  send_day(client, 7, 0, source->next_day());

  const StatsAckMsg stats = client.stats(7);
  EXPECT_EQ(stats.days_completed, 1u);
  EXPECT_GT(stats.usage_cost_cents, 0.0);

  // The day-close checkpoint (period 1) was written before the ack.
  CheckpointStore store(daemon.config.checkpoint_dir);
  EXPECT_TRUE(store.exists(7));
  EXPECT_EQ(daemon.server->days_completed(), 1u);
  EXPECT_GE(daemon.server->checkpoints_written(), 1u);

  const ByeAckMsg bye = client.bye(7);
  EXPECT_EQ(bye.household_id, 7u);
  daemon.server->stop();
}

TEST_P(ServeModeTest, RejectsBadSpecAndUnknownHousehold) {
  TestDaemon daemon(tag("rejects"), GetParam());
  ServeClient client(daemon.server->endpoint(), 2);
  client.connect();

  try {
    client.hello(1, "policy=does-not-exist");
    FAIL() << "expected ServeRequestError";
  } catch (const ServeRequestError& error) {
    EXPECT_EQ(error.code(), ErrorCode::kBadSpec);
  }

  try {
    client.send_readings(55, 0, 0, {0.5});
    FAIL() << "expected ServeRequestError";
  } catch (const ServeRequestError& error) {
    EXPECT_EQ(error.code(), ErrorCode::kUnknownHousehold);
  }

  // The connection survives both rejections.
  const HelloAckMsg hello = client.hello(1, kSpec);
  EXPECT_EQ(hello.household_id, 1u);
  daemon.server->stop();
}

TEST_P(ServeModeTest, OutOfOrderReadingsRejectedWithoutStateDamage) {
  TestDaemon daemon(tag("out_of_order"), GetParam());
  ServeClient client(daemon.server->endpoint(), 3);
  client.connect();
  client.hello(4, kSpec);

  std::vector<double> chunk(10, 0.5);
  client.send_readings(4, 0, 0, chunk);
  try {
    client.send_readings(4, 0, 99, chunk);  // cursor gap
    FAIL() << "expected ServeRequestError";
  } catch (const ServeRequestError& error) {
    EXPECT_EQ(error.code(), ErrorCode::kOutOfOrder);
  }
  // The cursor is where the last accepted frame left it.
  const ReadingsAckMsg ack = client.send_readings(4, 0, 10, chunk);
  EXPECT_EQ(ack.next_interval, 20u);
  daemon.server->stop();
}

TEST_P(ServeModeTest, MalformedFrameGetsErrorAndConnectionSurvives) {
  TestDaemon daemon(tag("malformed"), GetParam());
  const int fd = connect_endpoint(daemon.server->endpoint());

  // A well-framed payload with a bogus version byte.
  std::vector<std::uint8_t> frame;
  encode_bye(frame, ByeMsg{1});
  frame[4] = kProtocolVersion + 9;
  send_all(fd, frame.data(), frame.size());

  FrameReader reader;
  std::vector<std::uint8_t> payload;
  std::uint8_t buffer[4096];
  while (!reader.take(payload)) {
    const std::size_t got = recv_some(fd, buffer, sizeof(buffer));
    ASSERT_GT(got, 0u) << "server closed instead of answering";
    reader.append(buffer, got);
  }
  Frame decoded = decode_payload(payload.data(), payload.size());
  ASSERT_EQ(decoded.type, MessageType::kError);
  EXPECT_EQ(decoded.error.code, ErrorCode::kMalformedFrame);
  EXPECT_EQ(daemon.server->malformed_frames(), 1u);

  // Same connection still speaks the protocol.
  frame.clear();
  encode_hello(frame, HelloMsg{11, kSpec});
  send_all(fd, frame.data(), frame.size());
  while (!reader.take(payload)) {
    const std::size_t got = recv_some(fd, buffer, sizeof(buffer));
    ASSERT_GT(got, 0u);
    reader.append(buffer, got);
  }
  decoded = decode_payload(payload.data(), payload.size());
  EXPECT_EQ(decoded.type, MessageType::kHelloAck);

  close_quietly(fd);
  daemon.server->stop();
}

TEST_P(ServeModeTest, OversizedLengthPrefixDropsConnection) {
  TestDaemon daemon(tag("oversized"), GetParam());
  const int fd = connect_endpoint(daemon.server->endpoint());

  const std::uint32_t huge = kMaxFrameBytes + 1;
  std::uint8_t prefix[4];
  std::memcpy(prefix, &huge, 4);
  send_all(fd, prefix, 4);

  // The server answers with an Error frame and then closes; keep reading
  // until orderly EOF.
  std::uint8_t buffer[4096];
  std::size_t total = 0;
  while (true) {
    std::size_t got = 0;
    try {
      got = recv_some(fd, buffer, sizeof(buffer));
    } catch (const DataError&) {
      break;  // reset is also an acceptable teardown
    }
    if (got == 0) break;
    total += got;
  }
  EXPECT_GT(total, 0u);  // at least the Error frame arrived
  close_quietly(fd);
  daemon.server->stop();
}

TEST_P(ServeModeTest, ConnectionCapRejectsTheExcessConnection) {
  TestDaemon daemon(tag("conn_cap"), GetParam());
  daemon.server->stop();
  daemon.config.max_connections = 2;
  daemon.restart();
  EXPECT_EQ(daemon.server->effective_max_connections(), 2u);

  const int a = connect_endpoint(daemon.server->endpoint());
  const int b = connect_endpoint(daemon.server->endpoint());
  // Both admitted connections must speak the protocol before the third
  // connects, so the accept side has registered them.
  for (const int fd : {a, b}) {
    std::vector<std::uint8_t> frame;
    encode_bye(frame, ByeMsg{9});
    send_all(fd, frame.data(), frame.size());
    FrameReader reader;
    std::vector<std::uint8_t> payload;
    std::uint8_t buffer[256];
    while (!reader.take(payload)) {
      const std::size_t got = recv_some(fd, buffer, sizeof(buffer));
      ASSERT_GT(got, 0u);
      reader.append(buffer, got);
    }
    EXPECT_EQ(decode_payload(payload.data(), payload.size()).type,
              MessageType::kByeAck);
  }

  // The over-cap connection is closed without a reply.
  const int c = connect_endpoint(daemon.server->endpoint());
  std::uint8_t buffer[64];
  std::size_t got = 1;
  try {
    got = recv_some(c, buffer, sizeof(buffer));
  } catch (const DataError&) {
    got = 0;  // reset counts as closed
  }
  EXPECT_EQ(got, 0u);
  EXPECT_GE(daemon.server->connections_rejected(), 1u);

  close_quietly(a);
  close_quietly(b);
  close_quietly(c);
  daemon.server->stop();
}

TEST(ServeServerTest, ConnectRetriesCountFailures) {
  // Nothing listens here; connect must back off and eventually throw.
  const std::string dead = "unix:" + unique_dir("dead") + "/sock";
  ServeClient client(dead, 4, std::chrono::milliseconds(1),
                     std::chrono::milliseconds(2));
  EXPECT_THROW(client.connect(3), DataError);
  EXPECT_EQ(client.failed_attempts(), 3u);
  EXPECT_FALSE(client.connected());
}

TEST_P(ServeModeTest, MidDayReconnectResumesFromLiveCursor) {
  TestDaemon daemon(tag("mid_day_cursor"), GetParam());
  const ScenarioSpec spec = ScenarioSpec::parse(kSpec);
  std::unique_ptr<TraceSource> source = make_scenario_source(spec);
  const DayTrace day0 = source->next_day();

  ServeClient first(daemon.server->endpoint(), 5);
  first.connect();
  first.hello(21, kSpec);
  const std::vector<double> head(day0.values().begin(),
                                 day0.values().begin() + 480);
  first.send_readings(21, 0, 0, head);
  first.disconnect();

  // A new connection resumes against the live (in-memory) mid-day session.
  ServeClient second(daemon.server->endpoint(), 6);
  second.connect();
  const HelloAckMsg hello = second.hello(21, kSpec);
  EXPECT_EQ(hello.days_completed, 0u);
  EXPECT_EQ(hello.day_open, 1);
  EXPECT_EQ(hello.next_interval, 480u);

  send_day(second, 21, 0, day0, 480);
  const StatsAckMsg stats = second.stats(21);
  EXPECT_EQ(stats.days_completed, 1u);

  // Reconnecting with a different spec for the same id is rejected.
  try {
    second.hello(21, "policy=rlblh;seed=99");
    FAIL() << "expected ServeRequestError";
  } catch (const ServeRequestError& error) {
    EXPECT_EQ(error.code(), ErrorCode::kBadSpec);
  }
  daemon.server->stop();
}

TEST_P(ServeModeTest, LoadGenDrivesFleetEndToEnd) {
  TestDaemon daemon(tag("load_gen"), GetParam());
  LoadGenConfig config;
  config.endpoint = daemon.server->endpoint();
  config.households = 3;
  config.days = 2;
  config.seed_base = 100;
  config.threads = 2;
  const LoadGenResult result = run_load(config);

  EXPECT_EQ(result.households, 3u);
  EXPECT_EQ(result.days_completed, 6u);
  EXPECT_EQ(daemon.server->days_completed(), 6u);
  EXPECT_EQ(daemon.server->household_count(), 3u);
  EXPECT_GT(result.intervals_sent, 0u);
  EXPECT_GT(result.frames_sent, 0u);
  EXPECT_GT(result.rtt_quantile(0.5), 0.0);
  EXPECT_GE(result.rtt_quantile(0.99), result.rtt_quantile(0.5));

  daemon.server->stop();
  CheckpointStore store(daemon.config.checkpoint_dir);
  for (std::uint64_t id = 100; id < 103; ++id) {
    EXPECT_TRUE(store.exists(id)) << "household " << id;
  }
}

// The cross-mode contract, stated directly: the same fleet driven against
// an event-loop daemon and a thread-per-connection daemon leaves bitwise
// identical checkpoint files for every household.
TEST(ServeServerTest, EventLoopAndThreadPerConnCheckpointsBitwiseIdentical) {
  LoadGenConfig load;
  load.households = 4;
  load.days = 2;
  load.seed_base = 300;
  load.threads = 2;

  TestDaemon event_loop("xmode_el", ThreadingMode::kEventLoop);
  load.endpoint = event_loop.server->endpoint();
  run_load(load);
  event_loop.server->stop();

  TestDaemon per_conn("xmode_tpc", ThreadingMode::kThreadPerConn);
  load.endpoint = per_conn.server->endpoint();
  run_load(load);
  per_conn.server->stop();

  const CheckpointStore el_store(event_loop.config.checkpoint_dir);
  const CheckpointStore tpc_store(per_conn.config.checkpoint_dir);
  for (std::uint64_t id = 300; id < 304; ++id) {
    EXPECT_EQ(read_file(el_store.path_for(id)),
              read_file(tpc_store.path_for(id)))
        << "household " << id;
  }
}

/// Pipelines `days` whole-day Readings frames for households
/// [base, base+n) over ONE connection, all of a day's closes written
/// back-to-back before any ack is read — so the shard sees co-resident
/// same-blueprint day closes inside single queue drains and can step them
/// as BatchEngine lanes. Returns every ack payload in arrival order.
std::vector<std::vector<std::uint8_t>> drive_pipelined_fleet(
    const std::string& endpoint, std::uint64_t base, std::size_t n,
    std::size_t days, std::uint64_t seed_base) {
  const int fd = connect_endpoint(endpoint);
  std::vector<std::unique_ptr<TraceSource>> sources;
  std::vector<std::uint8_t> blob;
  for (std::size_t h = 0; h < n; ++h) {
    const std::string spec =
        "policy=rlblh;seed=" + std::to_string(seed_base + h);
    sources.push_back(make_scenario_source(ScenarioSpec::parse(spec)));
    encode_hello(blob, HelloMsg{base + h, spec});
  }
  send_all(fd, blob.data(), blob.size());

  std::size_t expected = n;  // hello acks
  for (std::size_t d = 0; d < days; ++d) {
    blob.clear();
    for (std::size_t h = 0; h < n; ++h) {
      const DayTrace trace = sources[h]->next_day();
      encode_readings(blob, ReadingsMsg{base + h, static_cast<std::uint32_t>(d),
                                        0, trace.values()});
    }
    send_all(fd, blob.data(), blob.size());
    expected += n;
  }

  std::vector<std::vector<std::uint8_t>> acks;
  FrameReader reader;
  std::vector<std::uint8_t> payload;
  std::uint8_t buffer[65536];
  while (acks.size() < expected) {
    while (reader.take(payload)) {
      acks.push_back(payload);
      payload.clear();
    }
    if (acks.size() >= expected) break;
    const std::size_t got = recv_some(fd, buffer, sizeof(buffer));
    if (got == 0) break;
    reader.append(buffer, got);
  }
  close_quietly(fd);
  EXPECT_EQ(acks.size(), expected);
  return acks;
}

// Server-side batch stepping: a pipelined fleet of same-blueprint
// households closes days inside shared shard drains, so the event-loop
// daemon steps them through BatchEngine lanes — and every checkpoint file
// and every ack byte still equals the thread-per-connection daemon's.
TEST(ServeServerTest, BatchSteppedFleetMatchesThreadPerConnByteForByte) {
  constexpr std::uint64_t kBase = 500;
  constexpr std::size_t kHouseholds = 8;
  constexpr std::size_t kDays = 2;

  // Reference: the same pipelined traffic against a thread-per-conn daemon
  // (which never batches).
  TestDaemon reference("batch_ref", ThreadingMode::kThreadPerConn);
  const std::vector<std::vector<std::uint8_t>> expected_acks =
      drive_pipelined_fleet(reference.server->endpoint(), kBase, kHouseholds,
                            kDays, kBase);
  reference.server->stop();
  EXPECT_EQ(reference.server->batch_days_completed(), 0u);

  // Candidate: one shard so every household is co-resident. Batch
  // engagement needs >= 2 day closes inside one queue drain; the pipelined
  // writes make that overwhelmingly likely, but a pathological scheduler
  // could still drain frame-by-frame, so retry a few times rather than
  // flake. Byte equality is asserted on EVERY attempt.
  std::size_t batch_days = 0;
  for (int attempt = 0; attempt < 5 && batch_days == 0; ++attempt) {
    TestDaemon daemon("batch_el_" + std::to_string(attempt),
                      ThreadingMode::kEventLoop);
    daemon.server->stop();
    daemon.config.shards = 1;
    daemon.config.batch_width = 32;
    daemon.restart();
    const std::vector<std::vector<std::uint8_t>> acks = drive_pipelined_fleet(
        daemon.server->endpoint(), kBase, kHouseholds, kDays, kBase);
    daemon.server->stop();
    batch_days = daemon.server->batch_days_completed();

    ASSERT_EQ(acks.size(), expected_acks.size());
    for (std::size_t i = 0; i < acks.size(); ++i) {
      EXPECT_EQ(acks[i], expected_acks[i]) << "ack " << i;
    }
    const CheckpointStore el_store(daemon.config.checkpoint_dir);
    const CheckpointStore ref_store(reference.config.checkpoint_dir);
    for (std::uint64_t id = kBase; id < kBase + kHouseholds; ++id) {
      EXPECT_EQ(read_file(el_store.path_for(id)),
                read_file(ref_store.path_for(id)))
          << "household " << id;
    }
  }
  EXPECT_GT(batch_days, 0u)
      << "batch stepping never engaged across 5 pipelined attempts";
}

// The headline guarantee: SIGKILL mid-day + restart + client replay ends in
// EXACTLY the state an uninterrupted run reaches — proven at the byte level
// against a direct (no daemon) HouseholdSession over the same days.
TEST_P(ServeModeTest, CrashMidDayRestartMatchesUninterruptedByteForByte) {
  const ScenarioSpec spec = ScenarioSpec::parse(kSpec);
  std::unique_ptr<TraceSource> source = make_scenario_source(spec);
  std::vector<DayTrace> days;
  for (int d = 0; d < 3; ++d) days.push_back(source->next_day());

  // Uninterrupted reference: a direct session over the same three days.
  HouseholdSession reference(21, kSpec);
  for (std::uint32_t d = 0; d < 3; ++d) {
    const std::vector<double>& values = days[d].values();
    for (std::size_t n0 = 0; n0 < values.size(); n0 += 480) {
      const std::size_t width = std::min<std::size_t>(480, values.size() - n0);
      reference.apply_readings(
          d, static_cast<std::uint32_t>(n0),
          std::span<const double>(values.data() + n0, width));
    }
  }
  std::stringstream expected;
  reference.save(expected);

  // Interrupted run: day 0 acked, day 1 half-sent, then the daemon dies
  // without any drain checkpoint.
  TestDaemon daemon(tag("crash_restart"), GetParam());
  {
    ServeClient client(daemon.server->endpoint(), 7);
    client.connect();
    client.hello(21, kSpec);
    send_day(client, 21, 0, days[0]);
    const std::vector<double> half(days[1].values().begin(),
                                   days[1].values().begin() + 720);
    client.send_readings(21, 1, 0, half);
    daemon.server->abort_without_checkpoint();
  }

  // Restart over the same checkpoint dir: the daemon knows day 0 only; the
  // client replays day 1 from the start and continues.
  daemon.restart();
  ServeClient client(daemon.server->endpoint(), 8);
  client.connect();
  const HelloAckMsg hello = client.hello(21, kSpec);
  EXPECT_EQ(hello.resumed, 1);
  EXPECT_EQ(hello.days_completed, 1u);
  EXPECT_EQ(hello.day_open, 0);  // the open day died with the daemon
  send_day(client, 21, 1, days[1]);
  send_day(client, 21, 2, days[2]);
  client.bye(21);
  daemon.server->stop();

  const CheckpointStore store(daemon.config.checkpoint_dir);
  EXPECT_EQ(read_file(store.path_for(21)), expected.str());
}

// Same crash/restart story driven entirely through run_load, comparing the
// final checkpoint files of an interrupted daemon against an uninterrupted
// daemon for every household.
TEST_P(ServeModeTest, LoadGenKillRestartMatchesUninterruptedCheckpoints) {
  LoadGenConfig load;
  load.households = 2;
  load.days = 3;
  load.seed_base = 40;

  // Uninterrupted daemon.
  TestDaemon baseline(tag("kill_baseline"), GetParam());
  load.endpoint = baseline.server->endpoint();
  run_load(load);
  baseline.server->stop();

  // Interrupted daemon: one day, crash, restart, finish the full target.
  TestDaemon victim(tag("kill_victim"), GetParam());
  LoadGenConfig first_leg = load;
  first_leg.endpoint = victim.server->endpoint();
  first_leg.days = 1;
  first_leg.final_checkpoint = false;
  run_load(first_leg);
  victim.server->abort_without_checkpoint();
  victim.restart();
  LoadGenConfig second_leg = load;
  second_leg.endpoint = victim.server->endpoint();
  run_load(second_leg);
  victim.server->stop();

  const CheckpointStore expected_store(baseline.config.checkpoint_dir);
  const CheckpointStore actual_store(victim.config.checkpoint_dir);
  for (std::uint64_t id = 40; id < 42; ++id) {
    EXPECT_EQ(read_file(actual_store.path_for(id)),
              read_file(expected_store.path_for(id)))
        << "household " << id;
  }
}

}  // namespace
}  // namespace rlblh::serve
