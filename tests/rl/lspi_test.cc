#include "rl/lspi.h"

#include <gtest/gtest.h>

#include "core/features.h"
#include "util/error.h"
#include "util/rng.h"

namespace rlblh {
namespace {

TEST(LstdSolver, RejectsBadConstruction) {
  EXPECT_THROW(LstdSolver(0), ConfigError);
  EXPECT_THROW(LstdSolver(3, 1.5), ConfigError);
}

TEST(LstdSolver, RejectsDimensionMismatch) {
  LstdSolver solver(2);
  EXPECT_THROW(solver.add_sample({1.0}, {1.0, 0.0}, 1.0), ConfigError);
}

TEST(LstdSolver, SolvesSupervisedCaseWithTerminalNextState) {
  // With phi_next = 0 the fixed point is plain least squares: find w with
  // w . phi = reward.
  LstdSolver solver(2);
  Rng rng(1);
  const std::vector<double> zero{0.0, 0.0};
  for (int i = 0; i < 500; ++i) {
    const std::vector<double> phi{1.0, rng.uniform(-1.0, 1.0)};
    solver.add_sample(phi, zero, 2.0 + 3.0 * phi[1]);
  }
  const SolveResult r = solver.solve();
  ASSERT_TRUE(r.solution.has_value());
  EXPECT_NEAR((*r.solution)[0], 2.0, 1e-9);
  EXPECT_NEAR((*r.solution)[1], 3.0, 1e-9);
  EXPECT_EQ(solver.samples(), 500u);
}

TEST(LstdSolver, SolvesTwoStateChain) {
  // Chain: s0 -> s1 -> terminal, rewards 1 then 2, gamma = 1.
  // Tabular features: V(s0) = 3, V(s1) = 2.
  LstdSolver solver(2);
  for (int i = 0; i < 10; ++i) {
    solver.add_sample({1.0, 0.0}, {0.0, 1.0}, 1.0);
    solver.add_sample({0.0, 1.0}, {0.0, 0.0}, 2.0);
  }
  const SolveResult r = solver.solve();
  ASSERT_TRUE(r.solution.has_value());
  EXPECT_NEAR((*r.solution)[0], 3.0, 1e-9);
  EXPECT_NEAR((*r.solution)[1], 2.0, 1e-9);
}

TEST(LstdSolver, ReproducesPaperFootnote4NearSingularity) {
  // Paper Section V footnote 4: consecutive states (k, B_k), (k+1, B_{k+1})
  // have nearly identical features, so the LSTD matrix is near-singular.
  // Feed transitions where the battery level barely moves and k advances by
  // 1/k_M: the feature difference is almost constant -> rank-deficient A.
  const FeatureBasis basis(96, 5.0);
  LstdSolver solver(FeatureBasis::kDim);
  Rng rng(2);
  const double level = 2.5;  // battery pinned by a balanced policy
  for (int pass = 0; pass < 20; ++pass) {
    for (std::size_t k = 0; k + 1 < 96; ++k) {
      const auto phi = basis.at(k, level);
      const auto phi_next = basis.at(k + 1, level);
      solver.add_sample({phi.begin(), phi.end()},
                        {phi_next.begin(), phi_next.end()},
                        rng.uniform(-1.0, 1.0));
    }
  }
  const SolveResult r = solver.solve();
  // The B-direction features never vary, so the system must be declared
  // near-singular rather than silently returning garbage.
  EXPECT_FALSE(r.solution.has_value());
}

TEST(LstdSolver, RidgeRegularizationRestoresSolvability) {
  const FeatureBasis basis(96, 5.0);
  LstdSolver solver(FeatureBasis::kDim);
  Rng rng(3);
  for (std::size_t k = 0; k + 1 < 96; ++k) {
    const auto phi = basis.at(k, 2.5);
    const auto phi_next = basis.at(k + 1, 2.5);
    solver.add_sample({phi.begin(), phi.end()},
                      {phi_next.begin(), phi_next.end()}, 1.0);
  }
  EXPECT_FALSE(solver.solve().solution.has_value());
  EXPECT_TRUE(solver.solve(/*ridge=*/1.0).solution.has_value());
  EXPECT_THROW(solver.solve(-1.0), ConfigError);
}

TEST(LstdSolver, ResetClears) {
  LstdSolver solver(2);
  solver.add_sample({1.0, 0.0}, {0.0, 0.0}, 1.0);
  solver.reset();
  EXPECT_EQ(solver.samples(), 0u);
  EXPECT_FALSE(solver.solve().solution.has_value());  // zero matrix again
}

}  // namespace
}  // namespace rlblh
