#include "rl/egreedy.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace rlblh {
namespace {

TEST(EpsilonGreedy, ZeroEpsilonAlwaysGreedy) {
  Rng rng(1);
  const std::vector<std::size_t> candidates{0, 1, 2, 3};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(epsilon_greedy(candidates, 2, 0.0, rng), 2u);
  }
}

TEST(EpsilonGreedy, FullEpsilonIsUniform) {
  Rng rng(2);
  const std::vector<std::size_t> candidates{0, 1, 2, 3};
  int counts[4] = {0, 0, 0, 0};
  for (int i = 0; i < 8000; ++i) {
    ++counts[epsilon_greedy(candidates, 0, 1.0, rng)];
  }
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / 8000.0, 0.25, 0.04);
  }
}

TEST(EpsilonGreedy, ExplorationFrequencyMatchesEpsilon) {
  Rng rng(3);
  const std::vector<std::size_t> candidates{0, 1};
  int non_greedy = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    if (epsilon_greedy(candidates, 0, 0.2, rng) != 0) ++non_greedy;
  }
  // Exploring picks uniformly (including the greedy arm), so the observed
  // non-greedy rate is epsilon * (1 - 1/|A|) = 0.1.
  EXPECT_NEAR(static_cast<double>(non_greedy) / trials, 0.1, 0.02);
}

TEST(EpsilonGreedy, SingletonSetAlwaysReturnsIt) {
  Rng rng(4);
  const std::vector<std::size_t> candidates{7};
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(epsilon_greedy(candidates, 7, 0.5, rng), 7u);
  }
}

TEST(EpsilonGreedy, RejectsBadInput) {
  Rng rng(5);
  EXPECT_THROW(epsilon_greedy({}, 0, 0.1, rng), ConfigError);
  EXPECT_THROW(epsilon_greedy({0, 1}, 0, 1.5, rng), ConfigError);
  EXPECT_THROW(epsilon_greedy({0, 1}, 0, -0.1, rng), ConfigError);
}

TEST(EpsilonGreedy, ExploredChoiceIsAlwaysACandidate) {
  Rng rng(6);
  const std::vector<std::size_t> candidates{3, 5, 9};
  for (int i = 0; i < 1000; ++i) {
    const std::size_t c = epsilon_greedy(candidates, 5, 0.9, rng);
    EXPECT_TRUE(c == 3 || c == 5 || c == 9);
  }
}

}  // namespace
}  // namespace rlblh
