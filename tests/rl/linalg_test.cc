#include "rl/linalg.h"

#include <gtest/gtest.h>

#include "util/error.h"
#include "util/rng.h"

namespace rlblh {
namespace {

TEST(Matrix, ConstructionAndAccess) {
  Matrix m(3);
  EXPECT_EQ(m.size(), 3u);
  EXPECT_DOUBLE_EQ(m.at(1, 2), 0.0);
  m.at(1, 2) = 5.0;
  EXPECT_DOUBLE_EQ(m.at(1, 2), 5.0);
  EXPECT_THROW(m.at(3, 0), ConfigError);
  EXPECT_THROW(Matrix(0), ConfigError);
}

TEST(Matrix, AddOuter) {
  Matrix m(2);
  m.add_outer({1.0, 2.0}, {3.0, 4.0});
  EXPECT_DOUBLE_EQ(m.at(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 4.0);
  EXPECT_DOUBLE_EQ(m.at(1, 0), 6.0);
  EXPECT_DOUBLE_EQ(m.at(1, 1), 8.0);
  m.add_outer({1.0, 0.0}, {1.0, 0.0}, 2.0);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 5.0);
  EXPECT_THROW(m.add_outer({1.0}, {1.0, 2.0}), ConfigError);
}

TEST(Matrix, AddDiagonal) {
  Matrix m(2);
  m.add_diagonal(0.5);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(m.at(1, 1), 0.5);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 0.0);
}

TEST(SolveLinearSystem, SolvesIdentity) {
  Matrix a(2);
  a.at(0, 0) = 1.0;
  a.at(1, 1) = 1.0;
  const SolveResult r = solve_linear_system(a, {3.0, 4.0});
  ASSERT_TRUE(r.solution.has_value());
  EXPECT_DOUBLE_EQ((*r.solution)[0], 3.0);
  EXPECT_DOUBLE_EQ((*r.solution)[1], 4.0);
}

TEST(SolveLinearSystem, SolvesGeneralSystem) {
  // [2 1; 1 3] x = [5; 10] -> x = [1; 3].
  Matrix a(2);
  a.at(0, 0) = 2.0;
  a.at(0, 1) = 1.0;
  a.at(1, 0) = 1.0;
  a.at(1, 1) = 3.0;
  const SolveResult r = solve_linear_system(a, {5.0, 10.0});
  ASSERT_TRUE(r.solution.has_value());
  EXPECT_NEAR((*r.solution)[0], 1.0, 1e-12);
  EXPECT_NEAR((*r.solution)[1], 3.0, 1e-12);
}

TEST(SolveLinearSystem, RequiresPivotingToSolve) {
  // Zero on the initial diagonal; succeeds only with row exchanges.
  Matrix a(2);
  a.at(0, 0) = 0.0;
  a.at(0, 1) = 1.0;
  a.at(1, 0) = 1.0;
  a.at(1, 1) = 0.0;
  const SolveResult r = solve_linear_system(a, {2.0, 7.0});
  ASSERT_TRUE(r.solution.has_value());
  EXPECT_DOUBLE_EQ((*r.solution)[0], 7.0);
  EXPECT_DOUBLE_EQ((*r.solution)[1], 2.0);
}

TEST(SolveLinearSystem, DetectsSingularMatrix) {
  Matrix a(2);
  a.at(0, 0) = 1.0;
  a.at(0, 1) = 2.0;
  a.at(1, 0) = 2.0;
  a.at(1, 1) = 4.0;  // rank 1
  const SolveResult r = solve_linear_system(a, {1.0, 2.0});
  EXPECT_FALSE(r.solution.has_value());
}

TEST(SolveLinearSystem, DetectsZeroMatrix) {
  const SolveResult r = solve_linear_system(Matrix(3), {1.0, 2.0, 3.0});
  EXPECT_FALSE(r.solution.has_value());
  EXPECT_DOUBLE_EQ(r.min_pivot, 0.0);
}

TEST(SolveLinearSystem, RejectsDimensionMismatch) {
  EXPECT_THROW(solve_linear_system(Matrix(2), {1.0}), ConfigError);
}

TEST(SolveLinearSystem, RandomSystemsRoundTrip) {
  Rng rng(9);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 6;
    Matrix a(n);
    std::vector<double> x_true(n);
    for (std::size_t i = 0; i < n; ++i) {
      x_true[i] = rng.uniform(-2.0, 2.0);
      for (std::size_t j = 0; j < n; ++j) {
        a.at(i, j) = rng.uniform(-1.0, 1.0);
      }
      a.at(i, i) += 3.0;  // diagonal dominance: well-conditioned
    }
    std::vector<double> b(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) b[i] += a.at(i, j) * x_true[j];
    }
    const SolveResult r = solve_linear_system(a, b);
    ASSERT_TRUE(r.solution.has_value());
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR((*r.solution)[i], x_true[i], 1e-9);
    }
  }
}

}  // namespace
}  // namespace rlblh
