#include "rl/linear.h"

#include <array>

#include <gtest/gtest.h>

#include "util/error.h"
#include "util/rng.h"

namespace rlblh {
namespace {

TEST(LinearFunction, ZeroInitialized) {
  const LinearFunction f(3);
  const std::array<double, 3> x{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(f.value(x), 0.0);
  EXPECT_EQ(f.dimension(), 3u);
}

TEST(LinearFunction, RejectsBadConstruction) {
  EXPECT_THROW(LinearFunction(0), ConfigError);
  EXPECT_THROW(LinearFunction(std::vector<double>{}), ConfigError);
}

TEST(LinearFunction, ValueIsDotProduct) {
  const LinearFunction f(std::vector<double>{1.0, -2.0, 0.5});
  const std::array<double, 3> x{2.0, 1.0, 4.0};
  EXPECT_DOUBLE_EQ(f.value(x), 2.0 - 2.0 + 2.0);
}

TEST(LinearFunction, DimensionMismatchThrows) {
  const LinearFunction f(3);
  const std::array<double, 2> x{1.0, 2.0};
  EXPECT_THROW(f.value(x), ConfigError);
}

TEST(LinearFunction, SgdUpdateMatchesEquation18) {
  // w_i <- w_i + alpha * delta * f_i.
  LinearFunction f(std::vector<double>{1.0, 1.0});
  const std::array<double, 2> x{2.0, -1.0};
  f.sgd_update(x, /*error=*/0.5, /*step_size=*/0.1);
  EXPECT_DOUBLE_EQ(f.weights()[0], 1.0 + 0.1 * 0.5 * 2.0);
  EXPECT_DOUBLE_EQ(f.weights()[1], 1.0 + 0.1 * 0.5 * -1.0);
}

TEST(LinearFunction, SgdConvergesToLeastSquaresTarget) {
  // Supervised regression sanity check: y = 3 x0 - 2 x1 + 1.
  LinearFunction f(3);
  Rng rng(1);
  for (int step = 0; step < 20000; ++step) {
    const std::array<double, 3> x{1.0, rng.uniform(-1.0, 1.0),
                                  rng.uniform(-1.0, 1.0)};
    const double target = 1.0 + 3.0 * x[1] - 2.0 * x[2];
    f.sgd_update(x, target - f.value(x), 0.05);
  }
  EXPECT_NEAR(f.weights()[0], 1.0, 0.05);
  EXPECT_NEAR(f.weights()[1], 3.0, 0.05);
  EXPECT_NEAR(f.weights()[2], -2.0, 0.05);
}

TEST(LinearFunction, SetWeights) {
  LinearFunction f(2);
  f.set_weights({4.0, 5.0});
  const std::array<double, 2> x{1.0, 1.0};
  EXPECT_DOUBLE_EQ(f.value(x), 9.0);
  EXPECT_THROW(f.set_weights({1.0}), ConfigError);
}

}  // namespace
}  // namespace rlblh
