#include "rl/decay.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace rlblh {
namespace {

TEST(InverseSqrtDecay, MatchesFormula) {
  const InverseSqrtDecay decay(0.05);
  EXPECT_DOUBLE_EQ(decay.at(1), 0.05);
  EXPECT_DOUBLE_EQ(decay.at(4), 0.025);
  EXPECT_DOUBLE_EQ(decay.at(100), 0.005);
  EXPECT_DOUBLE_EQ(decay.base(), 0.05);
}

TEST(InverseSqrtDecay, IsMonotoneDecreasing) {
  const InverseSqrtDecay decay(1.0);
  double prev = decay.at(1);
  for (std::size_t d = 2; d <= 50; ++d) {
    const double v = decay.at(d);
    EXPECT_LT(v, prev);
    prev = v;
  }
}

TEST(InverseSqrtDecay, RejectsBadInput) {
  EXPECT_THROW(InverseSqrtDecay(-0.1), ConfigError);
  const InverseSqrtDecay decay(1.0);
  EXPECT_THROW(decay.at(0), ConfigError);
}

TEST(ConstantSchedule, IsConstant) {
  const ConstantSchedule s(0.1);
  EXPECT_DOUBLE_EQ(s.at(1), 0.1);
  EXPECT_DOUBLE_EQ(s.at(1000), 0.1);
  EXPECT_THROW(ConstantSchedule(-1.0), ConfigError);
}

}  // namespace
}  // namespace rlblh
