// Property suites: every implemented policy, driven over randomized
// configurations, must satisfy the paper's system-model invariants on every
// simulated day. The InvariantChecker is wired into the Simulator, so a
// violating day throws and the harness reports a shrunk config plus the
// RLBLH_PROPTEST_SEED needed to replay it.
//
// Labeled `proptest` in CTest; filter with `ctest -LE proptest` to skip, or
// scale the case count with RLBLH_PROPTEST_ITERS.
#include <gtest/gtest.h>

#include <memory>

#include "baselines/lowpass.h"
#include "baselines/mdp.h"
#include "baselines/random_pulse.h"
#include "baselines/stepping.h"
#include "core/rlblh_policy.h"
#include "sim/proptest_domains.h"
#include "sim/simulator.h"
#include "util/proptest.h"

namespace rlblh {
namespace {

using proptest::Domain;
using proptest::for_all;
using proptest::PropertyOptions;

/// Distinct seed stream per suite so the five suites explore different
/// configs instead of replaying one another.
PropertyOptions suite_options(std::uint64_t stream) {
  PropertyOptions options;
  options.iterations = 100;
  options.base_seed = 0xb1e55ed0u + stream;
  return options;
}

/// Simulator over a random household + tariff matched to the config's
/// geometry, starting from a random battery level, with the invariant
/// checker armed. run_day then throws on any violating day.
Simulator make_checked_simulator(const RlBlhConfig& config, Rng& rng,
                                 bool pulse_shaped, bool expect_feasible) {
  const TouSchedule prices =
      proptest::gen_tou_schedule(config.intervals_per_day, rng);
  const HouseholdConfig household =
      proptest::household_config_domain(config.intervals_per_day,
                                        config.usage_cap)
          .generate(rng);
  auto source =
      std::make_unique<HouseholdTraceSource>(household, rng.engine()());
  Battery battery(config.battery_capacity,
                  rng.uniform(0.0, config.battery_capacity));
  Simulator sim(std::move(source), prices, battery);

  InvariantCheckConfig check;
  check.battery_capacity = config.battery_capacity;
  check.usage_cap = pulse_shaped ? config.usage_cap : 0.0;
  check.decision_interval = pulse_shaped ? config.decision_interval : 0;
  check.expect_feasible = expect_feasible;
  sim.enable_invariant_checks(check);
  return sim;
}

constexpr int kDaysPerCase = 3;

TEST(PolicyInvariantsProptest, RlBlhSatisfiesAllInvariants) {
  const auto result = for_all(
      "rl-blh invariants", proptest::rlblh_config_domain(),
      [](const RlBlhConfig& config, Rng& rng) {
        Simulator sim = make_checked_simulator(config, rng,
                                               /*pulse_shaped=*/true,
                                               /*expect_feasible=*/true);
        RlBlhPolicy policy(config);
        for (int d = 0; d < kDaysPerCase; ++d) (void)sim.run_day(policy);
      },
      suite_options(1));
  ASSERT_TRUE(result.success) << result.message;
  EXPECT_GE(result.iterations_run, 1u);
}

TEST(PolicyInvariantsProptest, RlBlhWithHeuristicsSatisfiesAllInvariants) {
  // REUSE/SYN replays must not corrupt the real-day feasibility; kept to a
  // light schedule so 100 cases stay fast.
  const auto result = for_all(
      "rl-blh+heuristics invariants", proptest::rlblh_config_domain(),
      [](const RlBlhConfig& sampled, Rng& rng) {
        RlBlhConfig config = sampled;
        config.enable_reuse = true;
        config.reuse_days = 2;
        config.reuse_repeats = 2;
        config.enable_synthetic = true;
        config.synthetic_period = 2;
        config.synthetic_repeats = 2;
        Simulator sim = make_checked_simulator(config, rng,
                                               /*pulse_shaped=*/true,
                                               /*expect_feasible=*/true);
        RlBlhPolicy policy(config);
        for (int d = 0; d < kDaysPerCase; ++d) (void)sim.run_day(policy);
      },
      suite_options(2));
  ASSERT_TRUE(result.success) << result.message;
}

TEST(PolicyInvariantsProptest, RandomPulseSatisfiesAllInvariants) {
  const auto result = for_all(
      "random-pulse invariants", proptest::rlblh_config_domain(),
      [](const RlBlhConfig& config, Rng& rng) {
        Simulator sim = make_checked_simulator(config, rng,
                                               /*pulse_shaped=*/true,
                                               /*expect_feasible=*/true);
        RandomPulsePolicy policy(config);
        for (int d = 0; d < kDaysPerCase; ++d) (void)sim.run_day(policy);
      },
      suite_options(3));
  ASSERT_TRUE(result.success) << result.message;
}

TEST(PolicyInvariantsProptest, LowPassKeepsBatteryLegalAndAccountingExact) {
  // Not pulse-shaped and allowed to clip at the bounds: the bound,
  // reading-sign and accounting invariants still have to hold.
  const auto result = for_all(
      "low-pass invariants", proptest::rlblh_config_domain(),
      [](const RlBlhConfig& config, Rng& rng) {
        Simulator sim = make_checked_simulator(config, rng,
                                               /*pulse_shaped=*/false,
                                               /*expect_feasible=*/false);
        LowPassConfig lp;
        lp.intervals_per_day = config.intervals_per_day;
        lp.usage_cap = config.usage_cap;
        lp.battery_capacity = config.battery_capacity;
        lp.initial_target = rng.uniform(0.0, config.usage_cap);
        LowPassPolicy policy(lp);
        for (int d = 0; d < kDaysPerCase; ++d) (void)sim.run_day(policy);
      },
      suite_options(4));
  ASSERT_TRUE(result.success) << result.message;
}

TEST(PolicyInvariantsProptest, SteppingKeepsBatteryLegalAndAccountingExact) {
  const auto result = for_all(
      "stepping invariants", proptest::rlblh_config_domain(),
      [](const RlBlhConfig& config, Rng& rng) {
        Simulator sim = make_checked_simulator(config, rng,
                                               /*pulse_shaped=*/false,
                                               /*expect_feasible=*/false);
        SteppingConfig st;
        st.intervals_per_day = config.intervals_per_day;
        st.usage_cap = config.usage_cap;
        st.battery_capacity = config.battery_capacity;
        st.step = config.usage_cap * rng.uniform(0.05, 1.0);
        st.margin_fraction = rng.uniform(0.05, 0.45);
        SteppingPolicy policy(st);
        for (int d = 0; d < kDaysPerCase; ++d) (void)sim.run_day(policy);
      },
      suite_options(5));
  ASSERT_TRUE(result.success) << result.message;
}

TEST(PolicyInvariantsProptest, MdpBaselineSatisfiesAllInvariants) {
  // The DP baseline shares RL-BLH's pulse space and guard rule but needs a
  // divisor n_D and a training phase before it can act.
  const auto result = for_all(
      "mdp-dp invariants", proptest::rlblh_config_domain(),
      [](const RlBlhConfig& sampled, Rng& rng) {
        RlBlhConfig config = sampled;
        // Snap n_D down to the nearest divisor of n_M (shrinks the guard
        // band, so the sampled battery still fits).
        while (config.intervals_per_day % config.decision_interval != 0) {
          --config.decision_interval;
        }
        MdpConfig mdp;
        mdp.intervals_per_day = config.intervals_per_day;
        mdp.decision_interval = config.decision_interval;
        mdp.usage_cap = config.usage_cap;
        mdp.battery_capacity = config.battery_capacity;
        mdp.num_actions = config.num_actions;
        mdp.battery_levels = 24;
        mdp.usage_levels = 12;
        MdpBlhPolicy policy(mdp);

        Simulator sim = make_checked_simulator(config, rng,
                                               /*pulse_shaped=*/true,
                                               /*expect_feasible=*/true);
        for (int d = 0; d < 2; ++d) {
          policy.observe_training_day(
              proptest::gen_usage_trace(config.intervals_per_day,
                                        config.usage_cap, rng),
              sim.prices());
        }
        policy.solve();
        for (int d = 0; d < 2; ++d) (void)sim.run_day(policy);
      },
      suite_options(6));
  ASSERT_TRUE(result.success) << result.message;
}

}  // namespace
}  // namespace rlblh
