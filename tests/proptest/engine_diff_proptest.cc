// Differential property suite for the pulse-blocked engine hot path.
//
// SimEngine::run_day dispatches policies that expose a pulse width to a
// blocked loop (one fill_block/observe_block pair per pulse, per-segment
// price rates, resize-once writes). Its contract is bitwise equality with
// the per-interval protocol: same readings, same battery levels, same
// accumulated cents, down to the last ULP. This suite checks that contract
// directly: each case runs the blocked engine and a reference per-interval
// loop (compiled into this test, mirroring the engine's fallback path) over
// identical random scenarios — tariff shape, day length, truncated last
// pulse, battery start level, usage structure — and compares every output
// bit for bit.
//
// Labeled `proptest` in CTest; filter with `ctest -LE proptest` to skip, or
// scale the case count with RLBLH_PROPTEST_ITERS.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "baselines/lowpass.h"
#include "baselines/mdp.h"
#include "baselines/random_pulse.h"
#include "baselines/stepping.h"
#include "battery/battery.h"
#include "core/rlblh_policy.h"
#include "meter/trace.h"
#include "pricing/tou.h"
#include "sim/engine.h"
#include "sim/proptest_domains.h"
#include "util/proptest.h"

namespace rlblh {
namespace {

using proptest::for_all;
using proptest::PropertyOptions;

/// Distinct seed stream per suite, disjoint from the invariants suites.
PropertyOptions suite_options(std::uint64_t stream) {
  PropertyOptions options;
  options.iterations = 100;
  options.base_seed = 0xd1ffe7e57ull + stream;
  return options;
}

constexpr int kDaysPerCase = 3;

/// Replays a fixed list of pre-generated days, so the blocked and reference
/// runs consume identical usage.
class ReplaySource final : public TraceSource {
 public:
  ReplaySource(std::vector<DayTrace> days, double cap)
      : days_(std::move(days)), cap_(cap) {}

  DayTrace next_day() override { return days_[next_++ % days_.size()]; }
  std::size_t intervals() const override { return days_.front().intervals(); }
  double usage_cap() const override { return cap_; }

 private:
  std::vector<DayTrace> days_;
  double cap_ = 0.0;
  std::size_t next_ = 0;
};

/// One reference day's outputs.
struct RefDay {
  std::vector<double> readings;
  std::vector<double> levels;
  double savings_cents = 0.0;
  double bill_cents = 0.0;
  double usage_cost_cents = 0.0;
};

/// The per-interval protocol, expression for expression the engine's
/// fallback path: this is the behaviour the blocked loop must reproduce.
RefDay run_reference_day(const DayTrace& usage, const TouSchedule& prices,
                         Battery& battery, BlhPolicy& policy) {
  const std::size_t n_m = usage.intervals();
  RefDay day;
  day.readings.reserve(n_m);
  day.levels.reserve(n_m);
  policy.begin_day(prices);
  for (std::size_t n = 0; n < n_m; ++n) {
    day.levels.push_back(battery.level());
    const double x_n = usage.at(n);
    double effective_reading;
    if (policy.passthrough()) {
      (void)policy.reading(n, battery.level());
      effective_reading = x_n;
    } else {
      const double y = policy.reading(n, battery.level());
      const BatteryStep step = battery.step(y, x_n);
      effective_reading = y + step.grid_extra;
    }
    day.readings.push_back(effective_reading);
    policy.observe_usage(n, x_n);
    const double rate = prices.rate(n);
    day.savings_cents += rate * (x_n - effective_reading);
    day.bill_cents += rate * effective_reading;
    day.usage_cost_cents += rate * x_n;
  }
  policy.end_day();
  return day;
}

bool same_bits(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

std::string diff_message(const char* what, std::size_t day, std::size_t n,
                         double blocked, double reference) {
  return std::string(what) + " diverged on day " + std::to_string(day) +
         " interval " + std::to_string(n) + ": blocked " +
         std::to_string(blocked) + " vs reference " +
         std::to_string(reference);
}

/// Runs `engine_policy` through the blocked SimEngine and `ref_policy`
/// (an identically constructed twin) through the reference loop over the
/// same days, and requires bitwise-identical outputs.
void check_blocked_matches_reference(BlhPolicy& engine_policy,
                                     BlhPolicy& ref_policy,
                                     const std::vector<DayTrace>& days,
                                     const TouSchedule& prices,
                                     double capacity, double initial_level,
                                     double cap) {
  ReplaySource source(days, cap);
  Battery blocked_battery(capacity, initial_level);
  Battery reference_battery(capacity, initial_level);
  SimEngine engine;
  for (std::size_t d = 0; d < days.size(); ++d) {
    const DayResult& blocked =
        engine.run_day(source, prices, blocked_battery, engine_policy);
    const RefDay reference =
        run_reference_day(days[d], prices, reference_battery, ref_policy);
    const std::size_t n_m = days[d].intervals();
    PROPTEST_CHECK(blocked.readings.intervals() == n_m &&
                       blocked.battery_levels.size() == n_m,
                   "blocked engine produced wrong-length outputs");
    for (std::size_t n = 0; n < n_m; ++n) {
      PROPTEST_CHECK(
          same_bits(blocked.readings.at(n), reference.readings[n]),
          diff_message("reading", d, n, blocked.readings.at(n),
                       reference.readings[n]));
      PROPTEST_CHECK(
          same_bits(blocked.battery_levels[n], reference.levels[n]),
          diff_message("battery level", d, n, blocked.battery_levels[n],
                       reference.levels[n]));
    }
    PROPTEST_CHECK(same_bits(blocked.savings_cents, reference.savings_cents),
                   diff_message("savings_cents", d, 0, blocked.savings_cents,
                                reference.savings_cents));
    PROPTEST_CHECK(same_bits(blocked.bill_cents, reference.bill_cents),
                   diff_message("bill_cents", d, 0, blocked.bill_cents,
                                reference.bill_cents));
    PROPTEST_CHECK(
        same_bits(blocked.usage_cost_cents, reference.usage_cost_cents),
        diff_message("usage_cost_cents", d, 0, blocked.usage_cost_cents,
                     reference.usage_cost_cents));
    PROPTEST_CHECK(
        same_bits(blocked_battery.level(), reference_battery.level()),
        "end-of-day battery level diverged on day " + std::to_string(d));
  }
}

/// Random scenario pieces shared by every suite: tariff, days, start level.
struct ScenarioParts {
  TouSchedule prices;
  std::vector<DayTrace> days;
  double initial_level = 0.0;
};

ScenarioParts gen_scenario(std::size_t intervals, double cap,
                           double capacity, int day_count, Rng& rng) {
  ScenarioParts parts{proptest::gen_tou_schedule(intervals, rng), {}, 0.0};
  parts.days.reserve(static_cast<std::size_t>(day_count));
  for (int d = 0; d < day_count; ++d) {
    parts.days.push_back(proptest::gen_usage_trace(intervals, cap, rng));
  }
  parts.initial_level = rng.uniform(0.0, capacity);
  return parts;
}

TEST(EngineDiffProptest, RlBlhBlockedMatchesPerIntervalReference) {
  const auto result = for_all(
      "rl-blh blocked == per-interval", proptest::rlblh_config_domain(),
      [](const RlBlhConfig& config, Rng& rng) {
        const ScenarioParts parts =
            gen_scenario(config.intervals_per_day, config.usage_cap,
                         config.battery_capacity, kDaysPerCase, rng);
        // Identically constructed twins: same config, same seed, so the
        // only possible divergence is the engine protocol under test.
        RlBlhPolicy blocked(config);
        RlBlhPolicy reference(config);
        check_blocked_matches_reference(
            blocked, reference, parts.days, parts.prices,
            config.battery_capacity, parts.initial_level, config.usage_cap);
      },
      suite_options(1));
  ASSERT_TRUE(result.success) << result.message;
  EXPECT_GE(result.iterations_run, 1u);
}

TEST(EngineDiffProptest, RandomPulseBlockedMatchesPerIntervalReference) {
  const auto result = for_all(
      "random-pulse blocked == per-interval",
      proptest::rlblh_config_domain(),
      [](const RlBlhConfig& config, Rng& rng) {
        const ScenarioParts parts =
            gen_scenario(config.intervals_per_day, config.usage_cap,
                         config.battery_capacity, kDaysPerCase, rng);
        RandomPulsePolicy blocked(config);
        RandomPulsePolicy reference(config);
        check_blocked_matches_reference(
            blocked, reference, parts.days, parts.prices,
            config.battery_capacity, parts.initial_level, config.usage_cap);
      },
      suite_options(2));
  ASSERT_TRUE(result.success) << result.message;
}

TEST(EngineDiffProptest, SteppingBlockedMatchesPerIntervalReference) {
  const auto result = for_all(
      "stepping blocked == per-interval", proptest::rlblh_config_domain(),
      [](const RlBlhConfig& config, Rng& rng) {
        SteppingConfig st;
        st.intervals_per_day = config.intervals_per_day;
        st.usage_cap = config.usage_cap;
        st.battery_capacity = config.battery_capacity;
        st.step = config.usage_cap * rng.uniform(0.05, 1.0);
        st.margin_fraction = rng.uniform(0.05, 0.45);
        const ScenarioParts parts =
            gen_scenario(config.intervals_per_day, config.usage_cap,
                         config.battery_capacity, kDaysPerCase, rng);
        SteppingPolicy blocked(st);
        SteppingPolicy reference(st);
        check_blocked_matches_reference(
            blocked, reference, parts.days, parts.prices,
            config.battery_capacity, parts.initial_level, config.usage_cap);
      },
      suite_options(3));
  ASSERT_TRUE(result.success) << result.message;
}

TEST(EngineDiffProptest, MdpBlockedMatchesPerIntervalReference) {
  const auto result = for_all(
      "mdp-dp blocked == per-interval", proptest::rlblh_config_domain(),
      [](const RlBlhConfig& sampled, Rng& rng) {
        RlBlhConfig config = sampled;
        // The DP baseline needs a divisor n_D; snapping down shrinks the
        // guard band, so the sampled battery still fits.
        while (config.intervals_per_day % config.decision_interval != 0) {
          --config.decision_interval;
        }
        MdpConfig mdp;
        mdp.intervals_per_day = config.intervals_per_day;
        mdp.decision_interval = config.decision_interval;
        mdp.usage_cap = config.usage_cap;
        mdp.battery_capacity = config.battery_capacity;
        mdp.num_actions = config.num_actions;
        mdp.battery_levels = 24;
        mdp.usage_levels = 12;
        MdpBlhPolicy blocked(mdp);
        MdpBlhPolicy reference(mdp);

        const ScenarioParts parts =
            gen_scenario(config.intervals_per_day, config.usage_cap,
                         config.battery_capacity, 2, rng);
        // Train both twins on the same days; training is deterministic.
        for (int d = 0; d < 2; ++d) {
          const DayTrace training = proptest::gen_usage_trace(
              config.intervals_per_day, config.usage_cap, rng);
          blocked.observe_training_day(training, parts.prices);
          reference.observe_training_day(training, parts.prices);
        }
        blocked.solve();
        reference.solve();
        check_blocked_matches_reference(
            blocked, reference, parts.days, parts.prices,
            config.battery_capacity, parts.initial_level, config.usage_cap);
      },
      suite_options(4));
  ASSERT_TRUE(result.success) << result.message;
}

TEST(EngineDiffProptest, PassthroughBlockedMatchesPerIntervalReference) {
  const auto result = for_all(
      "passthrough blocked == per-interval", proptest::rlblh_config_domain(),
      [](const RlBlhConfig& config, Rng& rng) {
        const ScenarioParts parts =
            gen_scenario(config.intervals_per_day, config.usage_cap,
                         config.battery_capacity, kDaysPerCase, rng);
        PassthroughPolicy blocked;
        PassthroughPolicy reference;
        check_blocked_matches_reference(
            blocked, reference, parts.days, parts.prices,
            config.battery_capacity, parts.initial_level, config.usage_cap);
      },
      suite_options(5));
  ASSERT_TRUE(result.success) << result.message;
}

}  // namespace
}  // namespace rlblh
