// Round-trip property for the weight-file format: deserialize(serialize(q))
// must reproduce every weight bit-for-bit, for any table shape and any
// finite weight values (the v1 text format writes 17 significant digits,
// which is lossless for IEEE-754 doubles).
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "core/qfunction.h"
#include "core/serialize.h"
#include "util/proptest.h"

namespace rlblh {
namespace {

/// Shape + weights of a Q table, as a plain value the domain can shrink.
struct QSpec {
  std::size_t actions = 1;
  std::size_t dimension = 1;
  std::vector<double> weights;  // actions * dimension, row-major
};

PerActionLinearQ materialize(const QSpec& spec) {
  PerActionLinearQ q(spec.actions, spec.dimension);
  for (std::size_t a = 0; a < spec.actions; ++a) {
    std::vector<double> row(spec.weights.begin() +
                                static_cast<std::ptrdiff_t>(a * spec.dimension),
                            spec.weights.begin() +
                                static_cast<std::ptrdiff_t>((a + 1) *
                                                            spec.dimension));
    q.function(a).set_weights(std::move(row));
  }
  return q;
}

/// Weight values spanning the magnitudes learning can reach, plus the
/// awkward corners of the decimal round-trip: zeros of both signs, tiny and
/// huge magnitudes, and values with no short decimal representation.
double gen_weight(Rng& rng) {
  switch (rng.uniform_int(0, 5)) {
    case 0:
      return 0.0;
    case 1:
      return -0.0;
    case 2:
      return rng.uniform(-1.0, 1.0);
    case 3:
      return rng.uniform(-1e3, 1e3);
    case 4:
      return rng.uniform(-1.0, 1.0) * 1e-300;
    default:
      return rng.uniform(-1.0, 1.0) * 1e300;
  }
}

proptest::Domain<QSpec> qspec_domain() {
  proptest::Domain<QSpec> domain;
  domain.generate = [](Rng& rng) {
    QSpec spec;
    spec.actions = static_cast<std::size_t>(rng.uniform_int(1, 16));
    spec.dimension = static_cast<std::size_t>(rng.uniform_int(1, 12));
    spec.weights.resize(spec.actions * spec.dimension);
    for (double& w : spec.weights) w = gen_weight(rng);
    return spec;
  };
  domain.shrink = [](const QSpec& from) {
    std::vector<QSpec> out;
    if (from.actions > 1) {
      QSpec c = from;
      c.actions = 1;
      c.weights.assign(from.weights.begin(),
                       from.weights.begin() +
                           static_cast<std::ptrdiff_t>(from.dimension));
      out.push_back(std::move(c));
    }
    if (from.dimension > 1) {
      QSpec c = from;
      c.dimension = 1;
      c.weights.clear();
      for (std::size_t a = 0; a < from.actions; ++a) {
        c.weights.push_back(from.weights[a * from.dimension]);
      }
      out.push_back(std::move(c));
    }
    // Zeroing all weights isolates shape bugs from value-format bugs.
    bool any_nonzero = false;
    for (const double w : from.weights) any_nonzero |= (w != 0.0);
    if (any_nonzero) {
      QSpec c = from;
      for (double& w : c.weights) w = 0.0;
      out.push_back(std::move(c));
    }
    return out;
  };
  domain.describe = [](const QSpec& spec) {
    std::ostringstream out;
    out.precision(17);
    out << "QSpec{actions=" << spec.actions << " dim=" << spec.dimension
        << " weights=[";
    for (std::size_t i = 0; i < spec.weights.size(); ++i) {
      if (i > 0) out << ", ";
      out << spec.weights[i];
    }
    out << "]}";
    return out.str();
  };
  return domain;
}

TEST(SerializeProptest, RoundTripIsBitwiseExact) {
  const auto result = for_all(
      "serialize round-trip", qspec_domain(),
      [](const QSpec& spec, Rng&) {
        const PerActionLinearQ original = materialize(spec);
        std::stringstream stream;
        save_weights(stream, original);
        const PerActionLinearQ loaded = load_weights(stream);

        PROPTEST_CHECK(loaded.num_actions() == original.num_actions(),
                       "action count changed across the round trip");
        PROPTEST_CHECK(loaded.dimension() == original.dimension(),
                       "feature dimension changed across the round trip");
        for (std::size_t a = 0; a < original.num_actions(); ++a) {
          const auto& before = original.function(a).weights();
          const auto& after = loaded.function(a).weights();
          for (std::size_t i = 0; i < before.size(); ++i) {
            const auto bits_before = std::bit_cast<std::uint64_t>(before[i]);
            const auto bits_after = std::bit_cast<std::uint64_t>(after[i]);
            if (bits_before != bits_after) {
              std::ostringstream what;
              what.precision(17);
              what << "weight [" << a << "][" << i << "] " << before[i]
                   << " reloaded as " << after[i] << " (bit patterns differ)";
              throw proptest::PropertyFailure(what.str());
            }
          }
        }
      });
  ASSERT_TRUE(result.success) << result.message;
  // 100 cases by default; RLBLH_PROPTEST_ITERS / RLBLH_PROPTEST_SEED scale
  // or pin the run deliberately.
  const bool scaled = std::getenv("RLBLH_PROPTEST_ITERS") != nullptr ||
                      std::getenv("RLBLH_PROPTEST_SEED") != nullptr;
  EXPECT_GE(result.iterations_run, scaled ? 1u : 100u);
}

}  // namespace
}  // namespace rlblh
