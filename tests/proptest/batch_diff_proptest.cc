// Differential property suite for the lockstep batch engine.
//
// BatchEngine::run_day simulates W same-blueprint households as
// structure-of-arrays lanes. Its contract (batch_engine.h) is bitwise
// per-lane equality with the scalar engine: lane k's readings, battery
// levels and accumulated cents must match a scalar SimEngine run of
// household k down to the last ULP, for every batch width — including
// widths that do not divide the AVX2 vector width, which exercise the
// kernel's remainder lanes. This suite checks that contract directly:
// each case draws a random scenario (tariff shape, day length, truncated
// last pulse, battery start level, usage structure, W in {1,2,3,5,8,16}),
// runs W scalar households and one W-lane batch over identical inputs,
// and compares every output bit for bit. One suite synthesizes usage
// through the appliance model per lane, pinning the lane-strided trace
// path and each lane's RNG draw order.
//
// Labeled `proptest` in CTest; filter with `ctest -LE proptest` to skip,
// or scale the case count with RLBLH_PROPTEST_ITERS.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "baselines/lowpass.h"
#include "baselines/random_pulse.h"
#include "baselines/stepping.h"
#include "battery/battery.h"
#include "core/rlblh_policy.h"
#include "meter/household.h"
#include "meter/trace.h"
#include "pricing/tou.h"
#include "sim/batch_engine.h"
#include "sim/engine.h"
#include "sim/proptest_domains.h"
#include "util/proptest.h"
#include "util/rng.h"

namespace rlblh {
namespace {

using proptest::for_all;
using proptest::PropertyOptions;

/// Distinct seed stream per suite, disjoint from the other diff suites.
PropertyOptions suite_options(std::uint64_t stream) {
  PropertyOptions options;
  options.iterations = 100;
  options.base_seed = 0xba7c4d1ffull + stream;
  return options;
}

constexpr int kDaysPerCase = 2;

/// Batch widths under test: 1 (degenerate), widths below/above the AVX2
/// vector width of 4, a non-divisor (5), and multiples (8, 16).
constexpr std::size_t kWidths[] = {1, 2, 3, 5, 8, 16};

/// Replays a fixed list of pre-generated days, so the scalar and batch
/// runs consume identical usage.
class ReplaySource final : public TraceSource {
 public:
  ReplaySource(std::vector<DayTrace> days, double cap)
      : days_(std::move(days)), cap_(cap) {}

  DayTrace next_day() override { return days_[next_++ % days_.size()]; }
  std::size_t intervals() const override { return days_.front().intervals(); }
  double usage_cap() const override { return cap_; }

 private:
  std::vector<DayTrace> days_;
  double cap_ = 0.0;
  std::size_t next_ = 0;
};

bool same_bits(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

std::string diff_message(const char* what, std::size_t lane, std::size_t day,
                         std::size_t n, double batch, double scalar) {
  return std::string(what) + " diverged on lane " + std::to_string(lane) +
         " day " + std::to_string(day) + " interval " + std::to_string(n) +
         ": batch " + std::to_string(batch) + " vs scalar " +
         std::to_string(scalar);
}

/// One lane's independent state: a source/policy pair for the batch run
/// and an identically constructed twin pair for the scalar run.
struct LanePair {
  std::unique_ptr<TraceSource> batch_source;
  std::unique_ptr<TraceSource> scalar_source;
  std::unique_ptr<BlhPolicy> batch_policy;
  std::unique_ptr<BlhPolicy> scalar_policy;
};

/// Runs `days` days through both engines and requires bitwise-identical
/// per-lane outputs. Scalar runs go first per day so any divergence is the
/// batch engine's, not ordering of the lanes' (independent) RNG streams.
void check_batch_matches_scalar(std::vector<LanePair>& lanes,
                                const TouSchedule& prices, double capacity,
                                double initial_level, std::size_t days) {
  const std::size_t width = lanes.size();
  std::vector<TraceSource*> sources(width);
  std::vector<BlhPolicy*> policies(width);
  std::vector<Battery> scalar_batteries;
  scalar_batteries.reserve(width);
  for (std::size_t k = 0; k < width; ++k) {
    sources[k] = lanes[k].batch_source.get();
    policies[k] = lanes[k].batch_policy.get();
    scalar_batteries.emplace_back(capacity, initial_level);
  }
  BatteryLanes batteries;
  batteries.reset(width, capacity, initial_level);
  BatchEngine batch_engine;
  SimEngine scalar_engine;
  DayResult extracted;
  for (std::size_t d = 0; d < days; ++d) {
    // Scalar references for this day, one engine pass per lane.
    std::vector<DayResult> reference;
    reference.reserve(width);
    for (std::size_t k = 0; k < width; ++k) {
      reference.push_back(scalar_engine.run_day(
          *lanes[k].scalar_source, prices, scalar_batteries[k],
          *lanes[k].scalar_policy));
    }
    const BatchDay& batch =
        batch_engine.run_day(sources, prices, batteries, policies);
    PROPTEST_CHECK(batch.width == width && !reference.empty(),
                   "batch engine produced wrong lane count");
    const std::size_t n_m = reference.front().usage.intervals();
    PROPTEST_CHECK(batch.intervals == n_m,
                   "batch engine produced wrong day length");
    for (std::size_t k = 0; k < width; ++k) {
      const DayResult& ref = reference[k];
      batch.extract_lane(k, extracted);
      for (std::size_t n = 0; n < n_m; ++n) {
        PROPTEST_CHECK(same_bits(extracted.usage.at(n), ref.usage.at(n)),
                       diff_message("usage", k, d, n, extracted.usage.at(n),
                                    ref.usage.at(n)));
        PROPTEST_CHECK(
            same_bits(extracted.readings.at(n), ref.readings.at(n)),
            diff_message("reading", k, d, n, extracted.readings.at(n),
                         ref.readings.at(n)));
        PROPTEST_CHECK(
            same_bits(extracted.battery_levels[n], ref.battery_levels[n]),
            diff_message("battery level", k, d, n, extracted.battery_levels[n],
                         ref.battery_levels[n]));
      }
      PROPTEST_CHECK(
          same_bits(extracted.savings_cents, ref.savings_cents),
          diff_message("savings_cents", k, d, 0, extracted.savings_cents,
                       ref.savings_cents));
      PROPTEST_CHECK(same_bits(extracted.bill_cents, ref.bill_cents),
                     diff_message("bill_cents", k, d, 0, extracted.bill_cents,
                                  ref.bill_cents));
      PROPTEST_CHECK(
          same_bits(extracted.usage_cost_cents, ref.usage_cost_cents),
          diff_message("usage_cost_cents", k, d, 0, extracted.usage_cost_cents,
                       ref.usage_cost_cents));
      PROPTEST_CHECK(
          extracted.battery_violations == ref.battery_violations,
          "battery violation count diverged on lane " + std::to_string(k) +
              " day " + std::to_string(d));
      PROPTEST_CHECK(
          same_bits(batteries.level(k), scalar_batteries[k].level()),
          "end-of-day battery level diverged on lane " + std::to_string(k) +
              " day " + std::to_string(d));
    }
  }
}

/// Random replay days for one lane; the batch and scalar sources replay
/// the same copies.
void add_replay_lane(std::vector<LanePair>& lanes, std::size_t intervals,
                     double cap, Rng& rng) {
  std::vector<DayTrace> days;
  days.reserve(kDaysPerCase);
  for (int d = 0; d < kDaysPerCase; ++d) {
    days.push_back(proptest::gen_usage_trace(intervals, cap, rng));
  }
  LanePair lane;
  lane.batch_source = std::make_unique<ReplaySource>(days, cap);
  lane.scalar_source = std::make_unique<ReplaySource>(std::move(days), cap);
  lanes.push_back(std::move(lane));
}

std::size_t pick_width(Rng& rng) {
  return kWidths[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<int>(std::size(kWidths)) - 1))];
}

TEST(BatchDiffProptest, RlBlhLanesMatchScalarEngine) {
  const auto result = for_all(
      "rl-blh batch lanes == scalar engine", proptest::rlblh_config_domain(),
      [](const RlBlhConfig& config, Rng& rng) {
        const std::size_t width = pick_width(rng);
        const TouSchedule prices =
            proptest::gen_tou_schedule(config.intervals_per_day, rng);
        const double initial = rng.uniform(0.0, config.battery_capacity);
        std::vector<LanePair> lanes;
        lanes.reserve(width);
        for (std::size_t k = 0; k < width; ++k) {
          add_replay_lane(lanes, config.intervals_per_day, config.usage_cap,
                          rng);
          // Twin policies per lane: same config, same seed, independent
          // of every other lane's stream.
          RlBlhConfig lane_config = config;
          lane_config.seed = config.seed + k;
          lanes.back().batch_policy =
              std::make_unique<RlBlhPolicy>(lane_config);
          lanes.back().scalar_policy =
              std::make_unique<RlBlhPolicy>(lane_config);
        }
        check_batch_matches_scalar(lanes, prices, config.battery_capacity,
                                   initial, kDaysPerCase);
      },
      suite_options(1));
  ASSERT_TRUE(result.success) << result.message;
  EXPECT_GE(result.iterations_run, 1u);
}

TEST(BatchDiffProptest, RandomPulseLanesMatchScalarEngine) {
  const auto result = for_all(
      "random-pulse batch lanes == scalar engine",
      proptest::rlblh_config_domain(),
      [](const RlBlhConfig& config, Rng& rng) {
        const std::size_t width = pick_width(rng);
        const TouSchedule prices =
            proptest::gen_tou_schedule(config.intervals_per_day, rng);
        const double initial = rng.uniform(0.0, config.battery_capacity);
        std::vector<LanePair> lanes;
        lanes.reserve(width);
        for (std::size_t k = 0; k < width; ++k) {
          add_replay_lane(lanes, config.intervals_per_day, config.usage_cap,
                          rng);
          RlBlhConfig lane_config = config;
          lane_config.seed = config.seed + k;
          lanes.back().batch_policy =
              std::make_unique<RandomPulsePolicy>(lane_config);
          lanes.back().scalar_policy =
              std::make_unique<RandomPulsePolicy>(lane_config);
        }
        check_batch_matches_scalar(lanes, prices, config.battery_capacity,
                                   initial, kDaysPerCase);
      },
      suite_options(2));
  ASSERT_TRUE(result.success) << result.message;
}

TEST(BatchDiffProptest, SteppingLanesMatchScalarEngine) {
  const auto result = for_all(
      "stepping batch lanes == scalar engine", proptest::rlblh_config_domain(),
      [](const RlBlhConfig& config, Rng& rng) {
        const std::size_t width = pick_width(rng);
        SteppingConfig st;
        st.intervals_per_day = config.intervals_per_day;
        st.usage_cap = config.usage_cap;
        st.battery_capacity = config.battery_capacity;
        st.step = config.usage_cap * rng.uniform(0.05, 1.0);
        st.margin_fraction = rng.uniform(0.05, 0.45);
        const TouSchedule prices =
            proptest::gen_tou_schedule(config.intervals_per_day, rng);
        const double initial = rng.uniform(0.0, config.battery_capacity);
        std::vector<LanePair> lanes;
        lanes.reserve(width);
        for (std::size_t k = 0; k < width; ++k) {
          add_replay_lane(lanes, config.intervals_per_day, config.usage_cap,
                          rng);
          lanes.back().batch_policy = std::make_unique<SteppingPolicy>(st);
          lanes.back().scalar_policy = std::make_unique<SteppingPolicy>(st);
        }
        check_batch_matches_scalar(lanes, prices, config.battery_capacity,
                                   initial, kDaysPerCase);
      },
      suite_options(3));
  ASSERT_TRUE(result.success) << result.message;
}

TEST(BatchDiffProptest, PassthroughLanesMatchScalarEngine) {
  const auto result = for_all(
      "passthrough batch lanes == scalar engine",
      proptest::rlblh_config_domain(),
      [](const RlBlhConfig& config, Rng& rng) {
        const std::size_t width = pick_width(rng);
        const TouSchedule prices =
            proptest::gen_tou_schedule(config.intervals_per_day, rng);
        const double initial = rng.uniform(0.0, config.battery_capacity);
        std::vector<LanePair> lanes;
        lanes.reserve(width);
        for (std::size_t k = 0; k < width; ++k) {
          add_replay_lane(lanes, config.intervals_per_day, config.usage_cap,
                          rng);
          lanes.back().batch_policy = std::make_unique<PassthroughPolicy>();
          lanes.back().scalar_policy = std::make_unique<PassthroughPolicy>();
        }
        check_batch_matches_scalar(lanes, prices, config.battery_capacity,
                                   initial, kDaysPerCase);
      },
      suite_options(4));
  ASSERT_TRUE(result.success) << result.message;
}

// Deterministic non-divisor geometry sweep: n_D = 17 does not divide
// n_M = 130 (7 full blocks + a truncated final block of 11 intervals), so
// every batch day ends with a short block through fill_lanes/observe_lanes.
// Unlike the randomized suites above, this pins the truncated-final-block
// path at EVERY width in kWidths rather than whenever the domain happens
// to draw a non-divisor pair — for both the RL policy (lane-batched
// e-greedy draws) and the random-pulse baseline (per-block RNG draws).
TEST(BatchDiffProptest, TruncatedFinalBlockAtEveryWidth) {
  RlBlhConfig config;
  config.intervals_per_day = 130;
  config.decision_interval = 17;
  config.usage_cap = 0.08;
  config.battery_capacity =
      2.0 * config.usage_cap * static_cast<double>(config.decision_interval);
  ASSERT_NE(config.intervals_per_day % config.decision_interval, 0u)
      << "geometry must leave a truncated final block";
  for (const std::size_t width : kWidths) {
    for (const bool use_rl : {true, false}) {
      Rng rng(0xf17a1b10cull + width * 2 + (use_rl ? 1 : 0));
      const TouSchedule prices =
          proptest::gen_tou_schedule(config.intervals_per_day, rng);
      const double initial = rng.uniform(0.0, config.battery_capacity);
      std::vector<LanePair> lanes;
      lanes.reserve(width);
      for (std::size_t k = 0; k < width; ++k) {
        add_replay_lane(lanes, config.intervals_per_day, config.usage_cap,
                        rng);
        RlBlhConfig lane_config = config;
        lane_config.seed = config.seed + k;
        if (use_rl) {
          lanes.back().batch_policy = std::make_unique<RlBlhPolicy>(lane_config);
          lanes.back().scalar_policy =
              std::make_unique<RlBlhPolicy>(lane_config);
        } else {
          lanes.back().batch_policy =
              std::make_unique<RandomPulsePolicy>(lane_config);
          lanes.back().scalar_policy =
              std::make_unique<RandomPulsePolicy>(lane_config);
        }
      }
      SCOPED_TRACE("width " + std::to_string(width) +
                   (use_rl ? " rlblh" : " random_pulse"));
      check_batch_matches_scalar(lanes, prices, config.battery_capacity,
                                 initial, kDaysPerCase);
    }
  }
}

// Pins the lane-strided synthesis path: each lane generates its usage
// through its own appliance/HVAC model writing directly into the batch
// engine's SoA buffer, and must reproduce the scalar run's RNG draw order
// draw for draw — any reordering shows up as a usage bit difference.
TEST(BatchDiffProptest, SynthesizedHouseholdLanesMatchScalarEngine) {
  const auto result = for_all(
      "synthesized-household batch lanes == scalar engine",
      proptest::rlblh_config_domain(),
      [](const RlBlhConfig& config, Rng& rng) {
        const std::size_t width = pick_width(rng);
        const auto household_domain = proptest::household_config_domain(
            config.intervals_per_day, config.usage_cap);
        const HouseholdConfig household = household_domain.generate(rng);
        const TouSchedule prices =
            proptest::gen_tou_schedule(config.intervals_per_day, rng);
        const double initial = rng.uniform(0.0, config.battery_capacity);
        std::vector<LanePair> lanes;
        lanes.reserve(width);
        for (std::size_t k = 0; k < width; ++k) {
          const std::uint64_t lane_seed = derive_stream_seed(config.seed, k);
          LanePair lane;
          lane.batch_source =
              std::make_unique<HouseholdTraceSource>(household, lane_seed);
          lane.scalar_source =
              std::make_unique<HouseholdTraceSource>(household, lane_seed);
          RlBlhConfig lane_config = config;
          lane_config.usage_cap = household.usage_cap;
          lane_config.seed = config.seed + k;
          lane.batch_policy = std::make_unique<RlBlhPolicy>(lane_config);
          lane.scalar_policy = std::make_unique<RlBlhPolicy>(lane_config);
          lanes.push_back(std::move(lane));
        }
        check_batch_matches_scalar(lanes, prices, config.battery_capacity,
                                   initial, kDaysPerCase);
      },
      suite_options(5));
  ASSERT_TRUE(result.success) << result.message;
}

}  // namespace
}  // namespace rlblh
