// Differential property suite for the streaming day loop and the
// checkpoint/restore path underneath rlblh_serve.
//
// Property 1 (stream == batch): a StreamEngine fed one interval at a time
// produces bitwise-identical DayResults — and leaves policy/battery in
// bitwise-identical states — to a SimEngine run over the same days.
//
// Property 2 (restore == uninterrupted): interrupting the streamed run at
// every day boundary, serializing policy + battery + RNG through the text
// checkpoint, and continuing in FRESH objects still matches the
// uninterrupted batch run bit for bit. This is the daemon's restart
// guarantee (DESIGN.md §15) reduced to its core.
//
// Labeled `proptest`; scale with RLBLH_PROPTEST_ITERS, replay with
// RLBLH_PROPTEST_SEED.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "battery/battery.h"
#include "core/rlblh_policy.h"
#include "core/serialize.h"
#include "meter/trace.h"
#include "pricing/tou.h"
#include "sim/engine.h"
#include "sim/proptest_domains.h"
#include "sim/stream_engine.h"
#include "util/proptest.h"

namespace rlblh {
namespace {

using proptest::for_all;
using proptest::PropertyOptions;

PropertyOptions suite_options(std::uint64_t stream) {
  PropertyOptions options;
  options.iterations = 60;
  options.base_seed = 0x57e4d1ffull + stream;
  return options;
}

constexpr int kDaysPerCase = 3;

class ReplaySource final : public TraceSource {
 public:
  ReplaySource(std::vector<DayTrace> days, double cap)
      : days_(std::move(days)), cap_(cap) {}

  DayTrace next_day() override { return days_[next_++ % days_.size()]; }
  std::size_t intervals() const override { return days_.front().intervals(); }
  double usage_cap() const override { return cap_; }

 private:
  std::vector<DayTrace> days_;
  double cap_ = 0.0;
  std::size_t next_ = 0;
};

bool same_bits(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

std::string diff_message(const char* what, std::size_t day, std::size_t n,
                         double streamed, double batch) {
  return std::string(what) + " diverged on day " + std::to_string(day) +
         " interval " + std::to_string(n) + ": streamed " +
         std::to_string(streamed) + " vs batch " + std::to_string(batch);
}

void check_day_equal(const DayResult& streamed, const DayResult& batch,
                     std::size_t d) {
  const std::size_t n_m = batch.usage.intervals();
  PROPTEST_CHECK(streamed.usage.intervals() == n_m &&
                     streamed.readings.intervals() == n_m &&
                     streamed.battery_levels.size() == n_m,
                 "streamed day has wrong-length outputs");
  for (std::size_t n = 0; n < n_m; ++n) {
    PROPTEST_CHECK(same_bits(streamed.readings.at(n), batch.readings.at(n)),
                   diff_message("reading", d, n, streamed.readings.at(n),
                                batch.readings.at(n)));
    PROPTEST_CHECK(
        same_bits(streamed.battery_levels[n], batch.battery_levels[n]),
        diff_message("battery level", d, n, streamed.battery_levels[n],
                     batch.battery_levels[n]));
  }
  PROPTEST_CHECK(same_bits(streamed.savings_cents, batch.savings_cents),
                 diff_message("savings_cents", d, 0, streamed.savings_cents,
                              batch.savings_cents));
  PROPTEST_CHECK(same_bits(streamed.bill_cents, batch.bill_cents),
                 diff_message("bill_cents", d, 0, streamed.bill_cents,
                              batch.bill_cents));
  PROPTEST_CHECK(
      same_bits(streamed.usage_cost_cents, batch.usage_cost_cents),
      diff_message("usage_cost_cents", d, 0, streamed.usage_cost_cents,
                   batch.usage_cost_cents));
  PROPTEST_CHECK(streamed.battery_violations == batch.battery_violations,
                 "battery_violations diverged on day " + std::to_string(d));
}

struct ScenarioParts {
  TouSchedule prices;
  std::vector<DayTrace> days;
};

ScenarioParts gen_scenario(std::size_t intervals, double cap, int day_count,
                           Rng& rng) {
  ScenarioParts parts{proptest::gen_tou_schedule(intervals, rng), {}};
  parts.days.reserve(static_cast<std::size_t>(day_count));
  for (int d = 0; d < day_count; ++d) {
    parts.days.push_back(proptest::gen_usage_trace(intervals, cap, rng));
  }
  return parts;
}

TEST(StreamDiffProptest, StreamedMatchesBatchBitwise) {
  const auto result = for_all(
      "streamed day loop == batch day loop", proptest::rlblh_config_domain(),
      [](const RlBlhConfig& config, Rng& rng) {
        const ScenarioParts parts = gen_scenario(
            config.intervals_per_day, config.usage_cap, kDaysPerCase, rng);
        const double initial = rng.uniform(0.0, config.battery_capacity);

        RlBlhPolicy batch_policy(config);
        RlBlhPolicy stream_policy(config);
        Battery batch_battery(config.battery_capacity, initial);
        Battery stream_battery(config.battery_capacity, initial);
        ReplaySource source(parts.days, config.usage_cap);
        SimEngine batch;
        StreamEngine stream;

        for (std::size_t d = 0; d < parts.days.size(); ++d) {
          const DayResult& expected =
              batch.run_day(source, parts.prices, batch_battery, batch_policy);
          stream.begin_day(parts.prices, stream_battery, stream_policy);
          const DayTrace& day = parts.days[d];
          for (std::size_t n = 0; n < day.intervals(); ++n) {
            stream.push(day.at(n));
          }
          check_day_equal(stream.finish_day(), expected, d);
          PROPTEST_CHECK(
              same_bits(batch_battery.level(), stream_battery.level()),
              "end-of-day battery level diverged on day " + std::to_string(d));
        }
        // Terminal states (weights, RNG, usage stats) must also agree.
        std::stringstream batch_state, stream_state;
        batch_policy.save_state(batch_state);
        stream_policy.save_state(stream_state);
        PROPTEST_CHECK(batch_state.str() == stream_state.str(),
                       "terminal policy state diverged");
      },
      suite_options(1));
  ASSERT_TRUE(result.success) << result.message;
  EXPECT_GE(result.iterations_run, 1u);
}

TEST(StreamDiffProptest, CheckpointEveryDayBoundaryMatchesBatchBitwise) {
  const auto result = for_all(
      "restore at every day boundary == uninterrupted",
      proptest::rlblh_config_domain(),
      [](const RlBlhConfig& config, Rng& rng) {
        const ScenarioParts parts = gen_scenario(
            config.intervals_per_day, config.usage_cap, kDaysPerCase, rng);
        const double initial = rng.uniform(0.0, config.battery_capacity);

        RlBlhPolicy batch_policy(config);
        Battery batch_battery(config.battery_capacity, initial);
        ReplaySource source(parts.days, config.usage_cap);
        SimEngine batch;

        // The interrupted run: after every day, the policy and battery are
        // serialized and reloaded into freshly constructed objects — the
        // daemon's kill-at-day-boundary + restart path.
        auto stream_policy = std::make_unique<RlBlhPolicy>(config);
        auto stream_battery =
            std::make_unique<Battery>(config.battery_capacity, initial);
        StreamEngine stream;

        for (std::size_t d = 0; d < parts.days.size(); ++d) {
          const DayResult& expected =
              batch.run_day(source, parts.prices, batch_battery, batch_policy);
          stream.begin_day(parts.prices, *stream_battery, *stream_policy);
          const DayTrace& day = parts.days[d];
          for (std::size_t n = 0; n < day.intervals(); ++n) {
            stream.push(day.at(n));
          }
          check_day_equal(stream.finish_day(), expected, d);

          std::stringstream checkpoint;
          stream_policy->save_state(checkpoint);
          save_battery(checkpoint, *stream_battery);

          stream_policy = std::make_unique<RlBlhPolicy>(config);
          stream_battery = std::make_unique<Battery>(
              config.battery_capacity, config.battery_capacity);
          stream_policy->load_state(checkpoint);
          load_battery(checkpoint, *stream_battery);
          PROPTEST_CHECK(
              same_bits(batch_battery.level(), stream_battery->level()),
              "restored battery level diverged on day " + std::to_string(d));
        }
        std::stringstream batch_state, stream_state;
        batch_policy.save_state(batch_state);
        stream_policy->save_state(stream_state);
        PROPTEST_CHECK(batch_state.str() == stream_state.str(),
                       "restored terminal policy state diverged");
      },
      suite_options(2));
  ASSERT_TRUE(result.success) << result.message;
}

}  // namespace
}  // namespace rlblh
