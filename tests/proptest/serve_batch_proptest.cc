// The serve-side batch bit-identity property, extended across days and
// finalizer mixes: a fleet of same-blueprint HouseholdSessions whose
// day-closes are stepped through BatchEngine lanes (exactly as
// serve/shard.cc stages them) must end every day with checkpoint bytes
// IDENTICAL to eager per-frame streaming — battery level, violation count,
// cumulative wasted/grid-extra totals, money, and policy weights, all
// bit-for-bit, for any width, any battery size, any frame chunking, and
// any interleaving of batch-stepped and stream-finalized days.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "battery/battery.h"
#include "core/policy.h"
#include "meter/trace.h"
#include "serve/session.h"
#include "sim/batch_engine.h"
#include "sim/scenario.h"
#include "util/proptest.h"

namespace rlblh::serve {
namespace {

struct FleetCase {
  std::size_t width = 2;          ///< co-resident same-blueprint households
  std::size_t days = 1;
  std::uint64_t seed_base = 1;
  double battery_kwh = 13.5;
  std::size_t chunk = 240;        ///< readings per apply_readings call
  std::vector<bool> batch_day;    ///< per day: batch lanes or stream
};

proptest::Domain<FleetCase> fleet_domain() {
  proptest::Domain<FleetCase> domain;
  domain.generate = [](Rng& rng) {
    FleetCase c;
    c.width = static_cast<std::size_t>(rng.uniform_int(2, 6));
    c.days = static_cast<std::size_t>(rng.uniform_int(1, 3));
    c.seed_base = static_cast<std::uint64_t>(rng.uniform_int(1, 100000));
    // Keep above the rlblh guard-band floor (b_M >= 2 * x_M * n_D = 2.4),
    // but hug it from above: small batteries make violations — and the
    // wasted/grid-extra replay in absorb_batch_lane — actually exercise.
    c.battery_kwh = rng.uniform(2.5, 20.0);
    const std::size_t chunks[] = {1, 7, 240, 480, 1440};
    c.chunk = chunks[rng.uniform_int(0, 4)];
    c.batch_day.resize(c.days);
    for (std::size_t d = 0; d < c.days; ++d) {
      c.batch_day[d] = rng.uniform_int(0, 1) == 1;
    }
    return c;
  };
  domain.shrink = [](const FleetCase& from) {
    std::vector<FleetCase> out;
    if (from.width > 2) {
      FleetCase c = from;
      c.width = 2;
      out.push_back(std::move(c));
    }
    if (from.days > 1) {
      FleetCase c = from;
      c.days = 1;
      c.batch_day.assign(1, from.batch_day[0]);
      out.push_back(std::move(c));
    }
    if (from.chunk != 1440) {
      FleetCase c = from;
      c.chunk = 1440;
      out.push_back(std::move(c));
    }
    return out;
  };
  domain.describe = [](const FleetCase& c) {
    std::ostringstream out;
    out << "FleetCase{width=" << c.width << " days=" << c.days << " seed_base="
        << c.seed_base << " battery=" << c.battery_kwh << " chunk=" << c.chunk
        << " batch=[";
    for (std::size_t d = 0; d < c.days; ++d) {
      out << (c.batch_day[d] ? 'B' : 'S');
    }
    out << "]}";
    return out.str();
  };
  return domain;
}

std::string spec_for(const FleetCase& c, std::size_t k) {
  std::ostringstream out;
  out.precision(17);
  out << "policy=rlblh;battery=" << c.battery_kwh << ";seed="
      << (c.seed_base + k);
  return out.str();
}

std::string checkpoint_bytes(const HouseholdSession& session) {
  std::stringstream out;
  session.save(out);
  return out.str();
}

TEST(ServeBatchProptest, BatchSteppedDaysMatchEagerStreamingBitwise) {
  proptest::PropertyOptions options;
  options.iterations = 40;
  options.base_seed = 0x57e4d1ff + 12;
  const auto result = for_all(
      "serve batch lanes vs eager streaming", fleet_domain(),
      [](const FleetCase& c, Rng&) {
        // Twin fleets over identical usage: `eager` streams every frame,
        // `deferred` buffers whole days and closes them the way a shard
        // does — batch lanes on batch days, stream finalize otherwise.
        std::vector<std::unique_ptr<HouseholdSession>> eager, deferred;
        std::vector<std::unique_ptr<TraceSource>> sources;
        for (std::size_t k = 0; k < c.width; ++k) {
          const std::string spec_text = spec_for(c, k);
          eager.push_back(std::make_unique<HouseholdSession>(k, spec_text));
          deferred.push_back(std::make_unique<HouseholdSession>(k, spec_text));
          deferred.back()->set_deferred(true);
          sources.push_back(
              make_scenario_source(ScenarioSpec::parse(spec_text)));
          PROPTEST_CHECK(
              deferred.back()->blueprint_key() == deferred[0]->blueprint_key(),
              "fleet must share one blueprint key");
        }
        const std::size_t n_m = deferred[0]->intervals_per_day();
        BatchEngine engine;
        BatteryLanes lanes;

        for (std::size_t d = 0; d < c.days; ++d) {
          std::vector<DayTrace> traces;
          for (std::size_t k = 0; k < c.width; ++k) {
            traces.emplace_back(n_m);
            sources[k]->next_day_into(traces.back());
          }
          // Feed both fleets the day in identical frames.
          for (std::size_t k = 0; k < c.width; ++k) {
            const std::vector<double>& values = traces[k].values();
            for (std::size_t n0 = 0; n0 < n_m; n0 += c.chunk) {
              const std::size_t width = std::min(c.chunk, n_m - n0);
              const std::span<const double> frame(values.data() + n0, width);
              eager[k]->apply_readings(static_cast<std::uint32_t>(d),
                                       static_cast<std::uint32_t>(n0), frame);
              deferred[k]->apply_readings(static_cast<std::uint32_t>(d),
                                          static_cast<std::uint32_t>(n0),
                                          frame);
            }
          }
          if (c.batch_day[d]) {
            // Stage exactly as Shard::step_batch_group does.
            double* usage = engine.stage_usage(c.width, n_m);
            std::vector<BlhPolicy*> policies(c.width);
            for (std::size_t k = 0; k < c.width; ++k) {
              const std::span<const double> pending =
                  deferred[k]->pending_usage();
              for (std::size_t n = 0; n < n_m; ++n) {
                usage[n * c.width + k] = pending[n];
              }
              policies[k] = &deferred[k]->policy_mut();
            }
            const Battery& model = deferred[0]->battery();
            lanes.reset(c.width, model.capacity(), model.capacity() / 2.0,
                        model.charge_efficiency(),
                        model.discharge_efficiency());
            double* levels = lanes.levels();
            for (std::size_t k = 0; k < c.width; ++k) {
              levels[k] = deferred[k]->battery().level();
            }
            const BatchDay& day = engine.run_staged_day(
                deferred[0]->prices(), lanes,
                std::span<BlhPolicy* const>(policies.data(), c.width));
            for (std::size_t k = 0; k < c.width; ++k) {
              deferred[k]->absorb_batch_lane(day, lanes, k);
            }
          } else {
            for (std::size_t k = 0; k < c.width; ++k) {
              deferred[k]->finalize_day_stream();
            }
          }
          // Every day boundary must agree byte-for-byte — including the
          // cumulative wasted/grid-extra battery totals in the checkpoint.
          for (std::size_t k = 0; k < c.width; ++k) {
            if (checkpoint_bytes(*deferred[k]) != checkpoint_bytes(*eager[k])) {
              throw proptest::PropertyFailure(
                  "household " + std::to_string(k) + " diverged after day " +
                  std::to_string(d) +
                  (c.batch_day[d] ? " (batch-stepped)" : " (stream-closed)"));
            }
          }
        }
      },
      options);
  ASSERT_TRUE(result.success) << result.message;
}

}  // namespace
}  // namespace rlblh::serve
