// Tests of the property harness itself: deterministic replay, the
// RLBLH_PROPTEST_SEED pin, shrinking, and the failure report format. These
// must hold before any property suite's verdict can be trusted.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "sim/proptest_domains.h"
#include "util/proptest.h"

namespace rlblh {
namespace {

using proptest::Domain;
using proptest::for_all;
using proptest::PropertyOptions;
using proptest::PropertyResult;

/// RAII guard for an environment variable the test manipulates.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    had_value_ = old != nullptr;
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_value_) {
      ::setenv(name_, saved_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::string saved_;
  bool had_value_ = false;
};

Domain<int> int_domain(int lo, int hi) {
  Domain<int> domain;
  domain.generate = [lo, hi](Rng& rng) { return rng.uniform_int(lo, hi); };
  domain.shrink = [lo](const int& from) {
    std::vector<int> out;
    if (from > lo) out.push_back(lo);
    if (from > lo + (from - lo) / 2) out.push_back(lo + (from - lo) / 2);
    if (from > lo) out.push_back(from - 1);  // guarantees a true minimum
    return out;
  };
  domain.describe = [](const int& v) { return std::to_string(v); };
  return domain;
}

TEST(ProptestHarness, PassingPropertyRunsAllIterations) {
  ScopedEnv no_pin("RLBLH_PROPTEST_SEED", nullptr);
  ScopedEnv no_iters("RLBLH_PROPTEST_ITERS", nullptr);
  PropertyOptions options;
  options.iterations = 37;
  const PropertyResult result =
      for_all("always true", int_domain(0, 100),
              [](const int&, Rng&) {}, options);
  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.iterations_run, 37u);
  EXPECT_TRUE(result.message.empty());
}

TEST(ProptestHarness, GenerationIsDeterministicPerSeed) {
  ScopedEnv no_pin("RLBLH_PROPTEST_SEED", nullptr);
  const auto domain = proptest::rlblh_config_domain();
  Rng a(42), b(42);
  const RlBlhConfig first = domain.generate(a);
  const RlBlhConfig second = domain.generate(b);
  EXPECT_EQ(proptest::describe(first), proptest::describe(second));
}

TEST(ProptestHarness, FailureReportsSeedAndShrinks) {
  ScopedEnv no_pin("RLBLH_PROPTEST_SEED", nullptr);
  ScopedEnv no_iters("RLBLH_PROPTEST_ITERS", nullptr);
  // Fails for every value above 10: the minimal failing value under the
  // shrinker is exactly 11.
  const PropertyResult result = for_all(
      "values stay small", int_domain(0, 1000),
      [](const int& value, Rng&) {
        PROPTEST_CHECK(value <= 10, "value exceeded 10");
      });
  ASSERT_FALSE(result.success);
  EXPECT_GT(result.shrink_steps, 0u);
  // The report names the property, the shrunk value, and the repro seed.
  EXPECT_NE(result.message.find("values stay small"), std::string::npos);
  EXPECT_NE(result.message.find("RLBLH_PROPTEST_SEED="), std::string::npos);
  EXPECT_NE(result.message.find("\n  11\n"), std::string::npos)
      << "expected the minimal failing value 11 in:\n"
      << result.message;
}

TEST(ProptestHarness, PinnedSeedReplaysExactlyOneIteration) {
  ScopedEnv no_iters("RLBLH_PROPTEST_ITERS", nullptr);
  // First: find a failing seed the normal way.
  std::uint64_t failing_seed = 0;
  {
    ScopedEnv no_pin("RLBLH_PROPTEST_SEED", nullptr);
    const PropertyResult result = for_all(
        "find a failure", int_domain(0, 1000),
        [](const int& value, Rng&) {
          PROPTEST_CHECK(value <= 10, "value exceeded 10");
        });
    ASSERT_FALSE(result.success);
    failing_seed = result.failing_seed;
  }
  // Replay under the pinned seed: one iteration, same failure, same seed.
  const std::string seed_text = std::to_string(failing_seed);
  ScopedEnv pin("RLBLH_PROPTEST_SEED", seed_text.c_str());
  const PropertyResult replay = for_all(
      "find a failure", int_domain(0, 1000),
      [](const int& value, Rng&) {
        PROPTEST_CHECK(value <= 10, "value exceeded 10");
      });
  EXPECT_FALSE(replay.success);
  EXPECT_EQ(replay.iterations_run, 1u);
  EXPECT_EQ(replay.failing_seed, failing_seed);

  // A passing property under a pinned seed also runs exactly once.
  const PropertyResult pinned_pass =
      for_all("always true", int_domain(0, 1000), [](const int&, Rng&) {});
  EXPECT_TRUE(pinned_pass.success);
  EXPECT_EQ(pinned_pass.iterations_run, 1u);
}

TEST(ProptestHarness, IterationCountEnvOverrideApplies) {
  ScopedEnv no_pin("RLBLH_PROPTEST_SEED", nullptr);
  ScopedEnv iters("RLBLH_PROPTEST_ITERS", "7");
  const PropertyResult result =
      for_all("always true", int_domain(0, 100), [](const int&, Rng&) {});
  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.iterations_run, 7u);
}

TEST(ProptestHarness, DerivedSeedsDiffer) {
  const std::uint64_t base = 12345;
  const std::uint64_t s0 = proptest::detail::derive_seed(base, 0);
  const std::uint64_t s1 = proptest::detail::derive_seed(base, 1);
  const std::uint64_t s2 = proptest::detail::derive_seed(base, 2);
  EXPECT_NE(s0, s1);
  EXPECT_NE(s1, s2);
  EXPECT_NE(s0, s2);
  // And are stable across calls (the whole point of a reproduction seed).
  EXPECT_EQ(s0, proptest::detail::derive_seed(base, 0));
}

TEST(ProptestHarness, DomainSamplesAlwaysValidate) {
  ScopedEnv no_pin("RLBLH_PROPTEST_SEED", nullptr);
  ScopedEnv no_iters("RLBLH_PROPTEST_ITERS", nullptr);
  PropertyOptions options;
  options.iterations = 200;
  const PropertyResult configs = for_all(
      "rlblh configs validate", proptest::rlblh_config_domain(),
      [](const RlBlhConfig& config, Rng& rng) {
        config.validate();  // throws ConfigError on a generator bug
        const auto household = proptest::household_config_domain(
            config.intervals_per_day, config.usage_cap);
        household.generate(rng).validate();
        const TouSchedule prices =
            proptest::gen_tou_schedule(config.intervals_per_day, rng);
        PROPTEST_CHECK(prices.intervals() == config.intervals_per_day,
                       "schedule length mismatch");
        const DayTrace trace = proptest::gen_usage_trace(
            config.intervals_per_day, config.usage_cap, rng);
        PROPTEST_CHECK(trace.intervals() == config.intervals_per_day,
                       "trace length mismatch");
        PROPTEST_CHECK(trace.peak() <= config.usage_cap,
                       "trace exceeds the usage cap");
      },
      options);
  ASSERT_TRUE(configs.success) << configs.message;
}

TEST(ProptestHarness, ShrunkConfigsStillValidate) {
  const auto domain = proptest::rlblh_config_domain();
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    const RlBlhConfig config = domain.generate(rng);
    for (const RlBlhConfig& candidate : domain.shrink(config)) {
      EXPECT_NO_THROW(candidate.validate())
          << "shrink produced an invalid config from "
          << proptest::describe(config);
    }
  }
}

}  // namespace
}  // namespace rlblh
