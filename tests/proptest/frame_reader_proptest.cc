// Re-chunking property for serve/protocol.h's FrameReader: TCP may deliver
// a frame stream at ANY byte boundaries — one byte at a time, whole days at
// once, or cuts straight through a length prefix — and reassembly must
// produce exactly the same frame payloads (and the same oversized-length
// error, at the same point in the stream) as a single contiguous append.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "serve/protocol.h"
#include "util/error.h"
#include "util/proptest.h"

namespace rlblh::serve {
namespace {

/// A frame stream as bytes plus the chunk sizes it is re-fed under.
struct ChunkPlan {
  std::vector<std::uint8_t> bytes;
  std::size_t frames = 0;        ///< valid frames encoded into `bytes`
  bool oversized_tail = false;   ///< stream ends with an over-limit prefix
  std::vector<std::size_t> cuts;  ///< chunk lengths, summing to bytes.size()
};

/// Encodes one randomly-chosen valid frame (any message type, random field
/// values, Readings with a random value count).
void encode_random_frame(Rng& rng, std::vector<std::uint8_t>& out) {
  const std::uint64_t id = static_cast<std::uint64_t>(rng.uniform_int(0, 1000));
  switch (rng.uniform_int(0, 4)) {
    case 0:
      encode_hello(out, HelloMsg{id, "policy=rlblh;seed=1"});
      break;
    case 1: {
      ReadingsMsg msg;
      msg.household_id = id;
      msg.day = static_cast<std::uint32_t>(rng.uniform_int(0, 30));
      msg.first_interval = static_cast<std::uint32_t>(rng.uniform_int(0, 1439));
      msg.values.resize(static_cast<std::size_t>(rng.uniform_int(1, 64)));
      for (double& v : msg.values) v = rng.uniform(0.0, 5.0);
      encode_readings(out, msg);
      break;
    }
    case 2:
      encode_checkpoint(out, CheckpointMsg{id});
      break;
    case 3:
      encode_stats(out, StatsMsg{id});
      break;
    default:
      encode_bye(out, ByeMsg{id});
      break;
  }
}

proptest::Domain<ChunkPlan> chunk_plan_domain() {
  proptest::Domain<ChunkPlan> domain;
  domain.generate = [](Rng& rng) {
    ChunkPlan plan;
    plan.frames = static_cast<std::size_t>(rng.uniform_int(0, 12));
    for (std::size_t i = 0; i < plan.frames; ++i) {
      encode_random_frame(rng, plan.bytes);
    }
    if (rng.uniform_int(0, 3) == 0) {
      // End with an over-limit length prefix: both feeds must throw after
      // exactly the same frames.
      plan.oversized_tail = true;
      const std::uint32_t huge =
          kMaxFrameBytes + 1 +
          static_cast<std::uint32_t>(rng.uniform_int(0, 1 << 20));
      for (int b = 0; b < 4; ++b) {
        plan.bytes.push_back(static_cast<std::uint8_t>((huge >> (8 * b)) &
                                                       0xff));
      }
    }
    // Random cut points: mostly small chunks (1-byte feeds included), a few
    // large ones that span several frames.
    std::size_t left = plan.bytes.size();
    while (left > 0) {
      const std::size_t chunk =
          rng.uniform_int(0, 4) == 0
              ? std::min<std::size_t>(
                    left, static_cast<std::size_t>(rng.uniform_int(1, 4096)))
              : std::min<std::size_t>(
                    left, static_cast<std::size_t>(rng.uniform_int(1, 7)));
      plan.cuts.push_back(chunk);
      left -= chunk;
    }
    return plan;
  };
  domain.shrink = [](const ChunkPlan& from) {
    std::vector<ChunkPlan> out;
    if (from.cuts.size() > 1) {
      // One contiguous feed isolates content bugs from chunking bugs.
      ChunkPlan c = from;
      c.cuts.assign(1, c.bytes.size());
      if (!c.bytes.empty()) out.push_back(std::move(c));
    }
    return out;
  };
  domain.describe = [](const ChunkPlan& plan) {
    std::ostringstream out;
    out << "ChunkPlan{" << plan.bytes.size() << " bytes, " << plan.frames
        << " frames, oversized_tail=" << plan.oversized_tail << ", cuts=[";
    for (std::size_t i = 0; i < plan.cuts.size(); ++i) {
      if (i > 0) out << ", ";
      out << plan.cuts[i];
    }
    out << "]}";
    return out.str();
  };
  return domain;
}

/// Runs `bytes` through a FrameReader with the given chunking; returns the
/// extracted payloads and whether/where an oversized-length error fired.
struct FeedResult {
  std::vector<std::vector<std::uint8_t>> payloads;
  bool threw = false;
  std::string what;
};

FeedResult feed(const std::vector<std::uint8_t>& bytes,
                const std::vector<std::size_t>& cuts) {
  FeedResult result;
  FrameReader reader;
  std::vector<std::uint8_t> payload;
  std::size_t offset = 0;
  try {
    for (const std::size_t chunk : cuts) {
      reader.append(bytes.data() + offset, chunk);
      offset += chunk;
      while (reader.take(payload)) {
        result.payloads.push_back(payload);
        payload.clear();
      }
    }
  } catch (const DataError& e) {
    result.threw = true;
    result.what = e.what();
  }
  return result;
}

TEST(FrameReaderProptest, ReassemblyIsChunkingInvariant) {
  proptest::PropertyOptions options;
  options.iterations = 60;
  options.base_seed = 0x57e4d1ff + 11;
  const auto result = for_all(
      "frame reassembly vs chunk boundaries", chunk_plan_domain(),
      [](const ChunkPlan& plan, Rng&) {
        const FeedResult whole = feed(plan.bytes, {plan.bytes.size()});
        const FeedResult chunked = feed(plan.bytes, plan.cuts);

        PROPTEST_CHECK(whole.payloads.size() == plan.frames,
                       "contiguous feed lost or invented frames");
        PROPTEST_CHECK(whole.threw == plan.oversized_tail,
                       "contiguous feed disagreed about the oversized tail");
        PROPTEST_CHECK(chunked.payloads.size() == whole.payloads.size(),
                       "chunked feed extracted a different frame count");
        for (std::size_t i = 0; i < whole.payloads.size(); ++i) {
          if (chunked.payloads[i] != whole.payloads[i]) {
            throw proptest::PropertyFailure(
                "frame " + std::to_string(i) +
                " differs between contiguous and chunked feeds");
          }
        }
        PROPTEST_CHECK(chunked.threw == whole.threw,
                       "feeds disagreed about throwing on the tail");
        PROPTEST_CHECK(chunked.what == whole.what,
                       "oversized-length error messages differ across feeds");
      },
      options);
  ASSERT_TRUE(result.success) << result.message;
}

}  // namespace
}  // namespace rlblh::serve
