// Chunking-invariance property suite for the fleet executor.
//
// FleetSimulator batches households into chunks and recycles worker arenas
// across a chunk's households; its contract is that chunk size and thread
// count are pure execution details — results are bitwise identical to the
// one-cell-per-household, one-arena-per-household semantics the chunked
// path replaced. This suite pins that contract over random fleets: random
// policy/preset/pricing mixes, random train/eval schedules and MI
// geometries (so arenas must survive geometry switches mid-chunk), compared
// across chunk sizes K in {1, 7, 64, N, auto} and several thread counts.
//
// Labeled `proptest` in CTest; filter with `ctest -LE proptest` to skip, or
// scale the case count with RLBLH_PROPTEST_ITERS.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "sim/fleet.h"
#include "sim/scenario.h"
#include "util/proptest.h"

namespace rlblh {
namespace {

using proptest::Domain;
using proptest::for_all;
using proptest::PropertyOptions;

std::uint64_t bits(double value) {
  std::uint64_t out = 0;
  static_assert(sizeof(out) == sizeof(value));
  std::memcpy(&out, &value, sizeof(out));
  return out;
}

/// A random fleet: 1–10 households drawn independently from the full
/// policy/preset/pricing space, with small train/eval windows and varying
/// MI geometry so consecutive households in one chunk exercise the arena's
/// reset-or-rebuild path.
struct FleetCase {
  std::vector<ScenarioSpec> specs;
};

ScenarioSpec gen_spec(Rng& rng) {
  static const char* const kPolicies[] = {"rlblh",        "lowpass", "stepping",
                                          "random_pulse", "none",    "mdp"};
  static const char* const kHouseholds[] = {"default",   "weekday_heavy",
                                            "night_owl", "ev_owner",
                                            "vacationer", "apartment"};
  static const char* const kPricing[] = {"srp", "tou2", "tou3", "flat", "rtp"};
  ScenarioSpec spec;
  spec.policy = kPolicies[rng.uniform_int(0, 5)];
  spec.household = kHouseholds[rng.uniform_int(0, 5)];
  spec.pricing = kPricing[rng.uniform_int(0, 4)];
  if (spec.pricing == std::string("rtp")) {
    spec.pricing_params.set("seed", rng.uniform_int(1, 1000));
  }
  if (spec.policy == std::string("mdp")) {
    // Keep the offline solve small; the fleet machinery is the subject.
    spec.policy_params.set("levels", 8);
    spec.policy_params.set("usage_levels", 4);
  }
  // >= 3 kWh: the rlblh policy requires b_M >= 2 * x_M * n_D = 2.4 at the
  // default cap and decision interval.
  spec.battery_kwh = static_cast<double>(rng.uniform_int(3, 8));
  spec.train_days = static_cast<std::size_t>(rng.uniform_int(0, 2));
  spec.eval_days = static_cast<std::size_t>(rng.uniform_int(1, 2));
  spec.mi_levels = rng.bernoulli(0.5) ? 8 : 4;
  return spec;
}

Domain<FleetCase> fleet_domain() {
  Domain<FleetCase> domain;
  domain.generate = [](Rng& rng) {
    FleetCase value;
    const int n = rng.uniform_int(1, 10);
    // Draw fewer distinct specs than households and cycle them, so fleets
    // usually repeat blueprints — the precondition for lockstep batches to
    // form under the batch_width variants.
    const int distinct = rng.uniform_int(1, n);
    std::vector<ScenarioSpec> pool;
    pool.reserve(static_cast<std::size_t>(distinct));
    for (int i = 0; i < distinct; ++i) pool.push_back(gen_spec(rng));
    value.specs.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      value.specs.push_back(pool[static_cast<std::size_t>(i % distinct)]);
    }
    return value;
  };
  domain.shrink = [](const FleetCase& value) {
    std::vector<FleetCase> candidates;
    if (value.specs.size() > 1) {
      FleetCase half;
      half.specs.assign(value.specs.begin(),
                        value.specs.begin() +
                            static_cast<std::ptrdiff_t>(value.specs.size() / 2));
      candidates.push_back(std::move(half));
      FleetCase drop_last = value;
      drop_last.specs.pop_back();
      candidates.push_back(std::move(drop_last));
    }
    return candidates;
  };
  domain.describe = [](const FleetCase& value) {
    std::string out = std::to_string(value.specs.size()) + " households:";
    for (const ScenarioSpec& spec : value.specs) {
      out += "\n  " + spec.canonical();
    }
    return out;
  };
  return domain;
}

void require_bitwise_equal(const EvaluationResult& a, const EvaluationResult& b,
                           std::size_t household, const std::string& variant) {
  const std::string where =
      "household " + std::to_string(household) + " under " + variant;
  PROPTEST_CHECK(bits(a.saving_ratio) == bits(b.saving_ratio), where);
  PROPTEST_CHECK(bits(a.mean_cc) == bits(b.mean_cc), where);
  PROPTEST_CHECK(bits(a.normalized_mi) == bits(b.normalized_mi), where);
  PROPTEST_CHECK(bits(a.mean_daily_savings_cents) ==
                     bits(b.mean_daily_savings_cents),
                 where);
  PROPTEST_CHECK(bits(a.mean_daily_bill_cents) ==
                     bits(b.mean_daily_bill_cents),
                 where);
  PROPTEST_CHECK(bits(a.mean_daily_usage_cost_cents) ==
                     bits(b.mean_daily_usage_cost_cents),
                 where);
  PROPTEST_CHECK(a.battery_violations == b.battery_violations, where);
}

void require_bitwise_equal(const MetricSummary& a, const MetricSummary& b,
                           const std::string& variant) {
  PROPTEST_CHECK(bits(a.mean) == bits(b.mean), "aggregate mean " + variant);
  PROPTEST_CHECK(bits(a.p50) == bits(b.p50), "aggregate p50 " + variant);
  PROPTEST_CHECK(bits(a.p95) == bits(b.p95), "aggregate p95 " + variant);
}

TEST(FleetChunkingInvariance, ResultsIdenticalAcrossChunkSizesAndThreads) {
  const auto result = for_all(
      "fleet results are invariant to chunk size and thread count",
      fleet_domain(),
      [](const FleetCase& value, Rng& rng) {
        const auto fleet_seed =
            static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 20));
        const std::size_t n = value.specs.size();

        // Reference: serial, one household per cell — the semantics the
        // chunked executor must reproduce exactly.
        FleetOptions reference_options;
        reference_options.threads = 1;
        reference_options.chunk = 1;
        const FleetResult reference =
            FleetSimulator(value.specs, reference_options).run(fleet_seed);

        struct Variant {
          std::size_t chunk;
          std::size_t threads;
          std::size_t batch_width;
        };
        // Lockstep batching joins chunk size and thread count as a third
        // execution detail that must be bitwise invisible: widths cover
        // scalar (0/1), sub-vector (2, 3) and full-vector (8) batches.
        const Variant variants[] = {{7, 2, 0},
                                    {64, 3, 2},
                                    {n, 8, 0},
                                    {0 /* auto */, 4, 3},
                                    {n, 2, 1},
                                    {n, 1, 8}};
        for (const Variant& variant : variants) {
          FleetOptions options;
          options.threads = variant.threads;
          options.chunk = variant.chunk;
          options.batch_width = variant.batch_width;
          const FleetResult chunked =
              FleetSimulator(value.specs, options).run(fleet_seed);
          const std::string label =
              "chunk=" + std::to_string(variant.chunk) +
              ",threads=" + std::to_string(variant.threads) +
              ",batch_width=" + std::to_string(variant.batch_width);
          PROPTEST_CHECK(chunked.households.size() == n, label);
          for (std::size_t h = 0; h < n; ++h) {
            require_bitwise_equal(reference.households[h],
                                  chunked.households[h], h, label);
          }
          require_bitwise_equal(reference.saving_ratio, chunked.saving_ratio,
                                "SR " + label);
          require_bitwise_equal(reference.mean_cc, chunked.mean_cc,
                                "CC " + label);
          require_bitwise_equal(reference.normalized_mi, chunked.normalized_mi,
                                "MI " + label);
          PROPTEST_CHECK(
              reference.battery_violations == chunked.battery_violations,
              label);
        }
      },
      PropertyOptions{/*iterations=*/50, /*base_seed=*/0xf1ee7c45eull});
  ASSERT_TRUE(result.success) << result.message;
}

}  // namespace
}  // namespace rlblh
