#include "meter/appliances.h"

#include <gtest/gtest.h>

#include "util/error.h"
#include "util/rng.h"

namespace rlblh {
namespace {

Occupancy typical_day() {
  Occupancy occ;
  occ.away_all_day = false;
  occ.wake = 390;
  occ.leave = 480;
  occ.back = 1050;
  occ.sleep = 1380;
  occ.works_away = true;
  return occ;
}

TEST(Occupancy, HomeAndActivePredicates) {
  const Occupancy occ = typical_day();
  EXPECT_TRUE(occ.home(100));      // asleep but home
  EXPECT_FALSE(occ.active(100));   // asleep
  EXPECT_TRUE(occ.active(400));    // awake, pre-work
  EXPECT_FALSE(occ.home(600));     // at work
  EXPECT_TRUE(occ.active(1100));   // evening
  EXPECT_FALSE(occ.active(1400));  // asleep again
}

TEST(Occupancy, VacancyDayIsNeverHome) {
  Occupancy occ = typical_day();
  occ.away_all_day = true;
  for (std::size_t n = 0; n < 1440; n += 60) {
    EXPECT_FALSE(occ.home(n));
    EXPECT_FALSE(occ.active(n));
  }
}

TEST(Occupancy, StayHomeDayIsAlwaysHome) {
  Occupancy occ = typical_day();
  occ.works_away = false;
  EXPECT_TRUE(occ.home(600));
  EXPECT_TRUE(occ.active(600));
}

TEST(Refrigerator, ProducesPeriodicCycles) {
  Refrigerator fridge;
  Rng rng(1);
  DayTrace trace(1440);
  std::vector<ApplianceEvent> events;
  fridge.generate(typical_day(), rng, trace, 0.08, &events);
  // A ~56-minute nominal cycle gives on the order of 20-35 runs per day.
  EXPECT_GE(events.size(), 15u);
  EXPECT_LE(events.size(), 45u);
  for (const auto& e : events) EXPECT_EQ(e.appliance, "refrigerator");
  EXPECT_GT(trace.total(), 0.5);  // roughly 1.5 kWh/day
  EXPECT_LT(trace.total(), 3.0);
}

TEST(Refrigerator, RunsEvenWhenNobodyHome) {
  Refrigerator fridge;
  Rng rng(2);
  DayTrace trace(1440);
  Occupancy occ = typical_day();
  occ.away_all_day = true;
  fridge.generate(occ, rng, trace, 0.08, nullptr);
  EXPECT_GT(trace.total(), 0.5);
}

TEST(Refrigerator, RejectsBadParameters) {
  EXPECT_THROW(Refrigerator(0.0), ConfigError);
  EXPECT_THROW(Refrigerator(0.01, 0, 10), ConfigError);
}

TEST(Hvac, SetbackReducesConsumptionWhenAway) {
  Rng rng1(3), rng2(3);
  Hvac hvac;
  DayTrace home_trace(1440), away_trace(1440);
  Occupancy home = typical_day();
  home.works_away = false;
  Occupancy away = typical_day();
  away.away_all_day = true;
  hvac.generate(home, rng1, home_trace, 0.08, nullptr);
  hvac.generate(away, rng2, away_trace, 0.08, nullptr);
  EXPECT_GT(home_trace.total(), away_trace.total());
}

TEST(Hvac, RejectsBadDutyCycle) {
  EXPECT_THROW(Hvac(0.03, 0.5, 0.4), ConfigError);   // peak < base
  EXPECT_THROW(Hvac(0.03, -0.1, 0.4), ConfigError);
  EXPECT_THROW(Hvac(0.03, 0.1, 0.4, 1.5), ConfigError);
}

TEST(Hvac, DiurnalCurveIsSharedProcessWide) {
  // Fleet runs build thousands of Hvac models with the same day geometry;
  // the tabulated diurnal curve must come from one shared cache entry per
  // day length, not a per-model rebuild.
  const auto a = hvac_diurnal_curve(1440);
  const auto b = hvac_diurnal_curve(1440);
  EXPECT_EQ(a.get(), b.get());  // pointer identity: one table per length
  const auto other = hvac_diurnal_curve(96);
  EXPECT_NE(a.get(), other.get());
  ASSERT_EQ(a->size(), 1440u);
  ASSERT_EQ(other->size(), 96u);
  // Spot-check the curve shape: trough pre-dawn, peak mid-afternoon.
  EXPECT_LT((*a)[216], 0.01);    // phase 0.15: cos argument 0, the trough
  EXPECT_GT((*a)[936], 0.99);    // phase 0.65: half a period on, the peak
}

TEST(WaterHeater, MorningRecoveryFollowsWake) {
  WaterHeater wh;
  Rng rng(4);
  DayTrace trace(1440);
  std::vector<ApplianceEvent> events;
  wh.generate(typical_day(), rng, trace, 0.08, &events);
  // At least the morning and evening draws plus standby reheats.
  EXPECT_GE(events.size(), 4u);
  bool morning_run = false;
  for (const auto& e : events) {
    if (e.start >= 395 && e.start <= 470 && e.duration >= 10) {
      morning_run = true;
    }
  }
  EXPECT_TRUE(morning_run);
}

TEST(WaterHeater, OnlyStandbyOnVacancyDays) {
  WaterHeater wh;
  Rng rng(5);
  DayTrace trace(1440);
  std::vector<ApplianceEvent> events;
  Occupancy occ = typical_day();
  occ.away_all_day = true;
  wh.generate(occ, rng, trace, 0.08, &events);
  for (const auto& e : events) EXPECT_LE(e.duration, 8u);
}

TEST(Lighting, OnlyDuringDarkActiveHours) {
  Lighting lights;
  Rng rng(6);
  DayTrace trace(1440);
  lights.generate(typical_day(), rng, trace, 0.08, nullptr);
  // Mid-day (bright) and deep night (asleep) must be dark.
  EXPECT_DOUBLE_EQ(trace.at(720), 0.0);
  EXPECT_DOUBLE_EQ(trace.at(60), 0.0);
  // Some evening interval is lit.
  double evening = 0.0;
  for (std::size_t n = 1100; n < 1380; ++n) evening += trace.at(n);
  EXPECT_GT(evening, 0.0);
}

TEST(Cooking, SkipsVacancyDays) {
  Cooking cooking;
  Rng rng(7);
  DayTrace trace(1440);
  Occupancy occ = typical_day();
  occ.away_all_day = true;
  cooking.generate(occ, rng, trace, 0.08, nullptr);
  EXPECT_DOUBLE_EQ(trace.total(), 0.0);
}

TEST(Dishwasher, ProbabilityZeroNeverRuns) {
  Dishwasher dw(0.018, 0.0);
  Rng rng(8);
  for (int day = 0; day < 20; ++day) {
    DayTrace trace(1440);
    dw.generate(typical_day(), rng, trace, 0.08, nullptr);
    EXPECT_DOUBLE_EQ(trace.total(), 0.0);
  }
}

TEST(Dishwasher, ProbabilityOneAlwaysRuns) {
  Dishwasher dw(0.018, 1.0);
  Rng rng(9);
  for (int day = 0; day < 20; ++day) {
    DayTrace trace(1440);
    dw.generate(typical_day(), rng, trace, 0.08, nullptr);
    EXPECT_GT(trace.total(), 0.0);
  }
}

TEST(Laundry, DryerFollowsWasher) {
  Laundry laundry(0.008, 0.05, 1.0);
  Rng rng(10);
  DayTrace trace(1440);
  std::vector<ApplianceEvent> events;
  laundry.generate(typical_day(), rng, trace, 0.08, &events);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_GE(events[1].start, events[0].start + events[0].duration);
  EXPECT_GT(events[1].power, events[0].power);  // dryer draws more
}

TEST(Electronics, StandbyFloorIsAlwaysPresent) {
  Electronics electronics(0.001, 0.003);
  Rng rng(11);
  DayTrace trace(1440);
  Occupancy occ = typical_day();
  occ.away_all_day = true;
  electronics.generate(occ, rng, trace, 0.08, nullptr);
  for (std::size_t n = 0; n < 1440; n += 97) {
    EXPECT_GE(trace.at(n), 0.001 - 1e-12);
  }
  EXPECT_THROW(Electronics(0.01, 0.005), ConfigError);  // active < standby
}

TEST(Appliance, AllGeneratedValuesRespectCap) {
  // Stack every appliance on one trace with a tight cap; nothing may exceed it.
  const double cap = 0.05;
  DayTrace trace(1440);
  Rng rng(12);
  const Occupancy occ = typical_day();
  Refrigerator().generate(occ, rng, trace, cap, nullptr);
  Hvac().generate(occ, rng, trace, cap, nullptr);
  WaterHeater().generate(occ, rng, trace, cap, nullptr);
  Lighting().generate(occ, rng, trace, cap, nullptr);
  Cooking().generate(occ, rng, trace, cap, nullptr);
  Dishwasher(0.018, 1.0).generate(occ, rng, trace, cap, nullptr);
  Laundry(0.008, 0.05, 1.0).generate(occ, rng, trace, cap, nullptr);
  Electronics().generate(occ, rng, trace, cap, nullptr);
  EXPECT_LE(trace.peak(), cap + 1e-12);
}


TEST(EvCharger, ChargesOvernightInTheCheapZone) {
  EvCharger ev(0.03, 1.0);
  Rng rng(13);
  DayTrace trace(1440);
  std::vector<ApplianceEvent> events;
  ev.generate(typical_day(), rng, trace, 0.08, &events);
  ASSERT_EQ(events.size(), 1u);
  // Timer-driven: the session starts shortly after midnight.
  EXPECT_LT(events[0].start, 180u);
  EXPECT_GE(events[0].duration, 40u);
  // All energy lands before the SRP zone boundary (n = 1020).
  double early = 0.0;
  for (std::size_t n = 0; n < 300; ++n) early += trace.at(n);
  EXPECT_NEAR(early, trace.total(), 1e-9);
}

TEST(EvCharger, SkipsVacancyDays) {
  EvCharger ev(0.03, 1.0);
  Rng rng(14);
  DayTrace trace(1440);
  Occupancy occ = typical_day();
  occ.away_all_day = true;
  ev.generate(occ, rng, trace, 0.08, nullptr);
  EXPECT_DOUBLE_EQ(trace.total(), 0.0);
}

TEST(EvCharger, ProbabilityZeroNeverCharges) {
  EvCharger ev(0.03, 0.0);
  Rng rng(15);
  for (int day = 0; day < 10; ++day) {
    DayTrace trace(1440);
    ev.generate(typical_day(), rng, trace, 0.08, nullptr);
    EXPECT_DOUBLE_EQ(trace.total(), 0.0);
  }
  EXPECT_THROW(EvCharger(0.0, 0.5), ConfigError);
  EXPECT_THROW(EvCharger(0.03, 1.5), ConfigError);
}

}  // namespace
}  // namespace rlblh
