#include "meter/usage_stats.h"

#include <gtest/gtest.h>

#include "meter/household.h"
#include "util/error.h"
#include "util/running_stats.h"

namespace rlblh {
namespace {

TEST(UsageStatsTracker, RejectsBadConstruction) {
  EXPECT_THROW(UsageStatsTracker(0, 0.08), ConfigError);
  EXPECT_THROW(UsageStatsTracker(10, 0.0), ConfigError);
}

TEST(UsageStatsTracker, CannotSampleBeforeObserving) {
  UsageStatsTracker tracker(10, 0.08);
  Rng rng(1);
  EXPECT_THROW(tracker.sample_day(rng), ConfigError);
}

TEST(UsageStatsTracker, RejectsMismatchedDayLength) {
  UsageStatsTracker tracker(10, 0.08);
  Rng rng(1);
  EXPECT_THROW(tracker.observe_day(DayTrace(5), rng), ConfigError);
}

TEST(UsageStatsTracker, TracksPerIntervalMeans) {
  UsageStatsTracker tracker(3, 1.0);
  Rng rng(2);
  tracker.observe_day(DayTrace(std::vector<double>{0.1, 0.5, 0.9}), rng);
  tracker.observe_day(DayTrace(std::vector<double>{0.3, 0.5, 0.7}), rng);
  EXPECT_EQ(tracker.days_observed(), 2u);
  EXPECT_NEAR(tracker.mean_at(0), 0.2, 1e-12);
  EXPECT_NEAR(tracker.mean_at(1), 0.5, 1e-12);
  EXPECT_NEAR(tracker.mean_at(2), 0.8, 1e-12);
  EXPECT_THROW(tracker.mean_at(3), ConfigError);
}

TEST(UsageStatsTracker, SampledDayHasCorrectShape) {
  UsageStatsTracker tracker(5, 0.08);
  Rng rng(3);
  tracker.observe_day(DayTrace(std::vector<double>(5, 0.04)), rng);
  const DayTrace sample = tracker.sample_day(rng);
  EXPECT_EQ(sample.intervals(), 5u);
  for (std::size_t n = 0; n < 5; ++n) {
    EXPECT_GE(sample.at(n), 0.0);
    EXPECT_LE(sample.at(n), 0.08);
  }
}

TEST(UsageStatsTracker, SyntheticDaysMatchSourceStatistics) {
  // The heart of the SYN heuristic (paper Section V-A): synthetic days must
  // be statistically close to the observed ones, per interval.
  HouseholdModel model(HouseholdConfig{}, 21);
  UsageStatsTracker tracker(kIntervalsPerDay, kDefaultUsageCap);
  Rng rng(4);
  RunningStats real_total;
  for (int day = 0; day < 60; ++day) {
    const DayTrace t = model.generate_day();
    real_total.add(t.total());
    tracker.observe_day(t, rng);
  }
  RunningStats syn_total;
  for (int day = 0; day < 60; ++day) {
    syn_total.add(tracker.sample_day(rng).total());
  }
  // Totals agree within 10% (independence across intervals narrows the
  // variance but must preserve the mean).
  EXPECT_NEAR(syn_total.mean(), real_total.mean(), 0.1 * real_total.mean());
  // Per-interval means agree on a few probe intervals.
  RunningStats probe_real, probe_syn;
  for (int day = 0; day < 60; ++day) {
    probe_syn.add(tracker.sample_day(rng).at(700));
  }
  EXPECT_NEAR(probe_syn.mean(), tracker.mean_at(700),
              0.35 * tracker.mean_at(700) + 0.002);
}

TEST(UsageStatsTracker, DistributionAccessor) {
  UsageStatsTracker tracker(4, 1.0);
  Rng rng(5);
  tracker.observe_day(DayTrace(std::vector<double>{0.1, 0.2, 0.3, 0.4}), rng);
  EXPECT_EQ(tracker.distribution(2).count(), 1u);
  EXPECT_THROW(tracker.distribution(4), ConfigError);
  EXPECT_EQ(tracker.intervals(), 4u);
  EXPECT_DOUBLE_EQ(tracker.usage_cap(), 1.0);
}

}  // namespace
}  // namespace rlblh
