#include "meter/household.h"

#include <gtest/gtest.h>

#include "util/error.h"
#include "util/running_stats.h"

namespace rlblh {
namespace {

TEST(HouseholdConfig, DefaultValidates) {
  HouseholdConfig config;
  EXPECT_NO_THROW(config.validate());
}

TEST(HouseholdConfig, RejectsInconsistentSchedules) {
  HouseholdConfig config;
  config.leave_mean = config.wake_mean - 10.0;
  EXPECT_THROW(config.validate(), ConfigError);

  config = HouseholdConfig{};
  config.sleep_mean = config.back_mean - 1.0;
  EXPECT_THROW(config.validate(), ConfigError);

  config = HouseholdConfig{};
  config.vacancy_probability = 1.5;
  EXPECT_THROW(config.validate(), ConfigError);

  config = HouseholdConfig{};
  config.usage_cap = 0.0;
  EXPECT_THROW(config.validate(), ConfigError);

  config = HouseholdConfig{};
  config.appliance_scale = 0.0;
  EXPECT_THROW(config.validate(), ConfigError);
}

TEST(HouseholdModel, DeterministicGivenSeed) {
  HouseholdModel a(HouseholdConfig{}, 5);
  HouseholdModel b(HouseholdConfig{}, 5);
  const DayTrace da = a.generate_day();
  const DayTrace db = b.generate_day();
  for (std::size_t n = 0; n < da.intervals(); ++n) {
    ASSERT_DOUBLE_EQ(da.at(n), db.at(n));
  }
}

TEST(HouseholdModel, DifferentSeedsProduceDifferentDays) {
  HouseholdModel a(HouseholdConfig{}, 5);
  HouseholdModel b(HouseholdConfig{}, 6);
  EXPECT_NE(a.generate_day().total(), b.generate_day().total());
}

TEST(HouseholdModel, UsageRespectsCap) {
  HouseholdModel model(HouseholdConfig{}, 7);
  for (int day = 0; day < 20; ++day) {
    const DayTrace trace = model.generate_day();
    ASSERT_LE(trace.peak(), model.config().usage_cap + 1e-12);
  }
}

TEST(HouseholdModel, DailyEnergyInRealisticBand) {
  // The paper's trace yields a ~1.65 dollars/day bill; our substitute
  // household should land in the same order of magnitude: 8-25 kWh/day.
  HouseholdModel model(HouseholdConfig{}, 8);
  RunningStats total;
  for (int day = 0; day < 50; ++day) total.add(model.generate_day().total());
  EXPECT_GT(total.mean(), 8.0);
  EXPECT_LT(total.mean(), 25.0);
}

TEST(HouseholdModel, DayToDayVariability) {
  HouseholdModel model(HouseholdConfig{}, 9);
  RunningStats total;
  for (int day = 0; day < 50; ++day) total.add(model.generate_day().total());
  EXPECT_GT(total.stddev(), 0.3);  // days must differ meaningfully
}

TEST(HouseholdModel, DiurnalShapeEveningHeavierThanNight) {
  HouseholdModel model(HouseholdConfig{}, 10);
  double night = 0.0, evening = 0.0;
  for (int day = 0; day < 30; ++day) {
    const DayTrace t = model.generate_day();
    for (std::size_t n = 60; n < 300; ++n) night += t.at(n);      // 1:00-5:00
    for (std::size_t n = 1080; n < 1320; ++n) evening += t.at(n);  // 18-22:00
  }
  EXPECT_GT(evening, 1.5 * night);
}

TEST(HouseholdModel, EventsAreWithinDayAndNamed) {
  HouseholdModel model(HouseholdConfig{}, 11);
  std::vector<ApplianceEvent> events;
  model.generate_day(&events);
  EXPECT_FALSE(events.empty());
  for (const auto& e : events) {
    EXPECT_FALSE(e.appliance.empty());
    EXPECT_LT(e.start, kIntervalsPerDay);
    EXPECT_LE(e.start + e.duration, kIntervalsPerDay);
    EXPECT_GT(e.power, 0.0);
  }
}

TEST(HouseholdModel, OccupancyOrderingAlwaysHolds) {
  HouseholdModel model(HouseholdConfig{}, 12);
  for (int i = 0; i < 200; ++i) {
    const Occupancy occ = model.sample_occupancy();
    EXPECT_LT(occ.wake, occ.leave);
    EXPECT_LT(occ.leave, occ.back);
    EXPECT_LT(occ.back, occ.sleep);
    EXPECT_LT(occ.sleep, kIntervalsPerDay);
  }
}

TEST(HouseholdModel, ApplianceScaleScalesEnergy) {
  HouseholdConfig small;
  small.appliance_scale = 0.5;
  HouseholdModel big(HouseholdConfig{}, 13);
  HouseholdModel half(small, 13);
  RunningStats big_total, half_total;
  for (int day = 0; day < 20; ++day) {
    big_total.add(big.generate_day().total());
    half_total.add(half.generate_day().total());
  }
  EXPECT_LT(half_total.mean(), 0.7 * big_total.mean());
}

TEST(HouseholdModel, SetConfigTakesEffect) {
  HouseholdModel model(HouseholdConfig{}, 14);
  HouseholdConfig vacant;
  vacant.vacancy_probability = 1.0;  // always away
  model.set_config(vacant);
  RunningStats total;
  for (int day = 0; day < 10; ++day) total.add(model.generate_day().total());
  // Vacant days: only fridge + HVAC setback + standby remain.
  EXPECT_LT(total.mean(), 12.0);
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(model.sample_occupancy().away_all_day);
  }
}

TEST(HouseholdModel, SetConfigCannotChangeIntervalCount) {
  HouseholdModel model(HouseholdConfig{}, 15);
  HouseholdConfig other;
  other.intervals = 720;
  other.wake_mean = 200; other.leave_mean = 250;
  other.back_mean = 500; other.sleep_mean = 700;
  EXPECT_THROW(model.set_config(other), ConfigError);
}

TEST(HouseholdTraceSource, ImplementsTraceSourceContract) {
  HouseholdTraceSource source(HouseholdConfig{}, 16);
  EXPECT_EQ(source.intervals(), kIntervalsPerDay);
  EXPECT_DOUBLE_EQ(source.usage_cap(), kDefaultUsageCap);
  const DayTrace day = source.next_day();
  EXPECT_EQ(day.intervals(), kIntervalsPerDay);
}


TEST(HouseholdModel, EvKnobAddsOvernightLoad) {
  HouseholdConfig with_ev;
  with_ev.ev_probability = 1.0;
  HouseholdModel plain(HouseholdConfig{}, 30);
  HouseholdModel ev(with_ev, 30);
  double plain_night = 0.0, ev_night = 0.0;
  for (int day = 0; day < 20; ++day) {
    const DayTrace p = plain.generate_day();
    const DayTrace e = ev.generate_day();
    for (std::size_t n = 0; n < 240; ++n) {
      plain_night += p.at(n);
      ev_night += e.at(n);
    }
  }
  EXPECT_GT(ev_night, plain_night + 10.0);  // ~1.5-2 kWh per night extra
}

TEST(HouseholdModel, KnobValidation) {
  HouseholdConfig config;
  config.hvac_setback = 1.5;
  EXPECT_THROW(config.validate(), ConfigError);
  config = HouseholdConfig{};
  config.ev_probability = -0.1;
  EXPECT_THROW(config.validate(), ConfigError);
  config = HouseholdConfig{};
  config.ev_power = 0.0;
  EXPECT_THROW(config.validate(), ConfigError);
}

}  // namespace
}  // namespace rlblh
