#include "meter/trace.h"

#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "util/error.h"

namespace rlblh {
namespace {

class TempFile {
 public:
  explicit TempFile(const std::string& contents) {
    path_ = ::testing::TempDir() + "/trace_test_" +
            std::to_string(counter_++) + ".csv";
    std::ofstream out(path_);
    out << contents;
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  static int counter_;
  std::string path_;
};

int TempFile::counter_ = 0;

TEST(DayTrace, DefaultIsFullDayOfZeros) {
  DayTrace t;
  EXPECT_EQ(t.intervals(), kIntervalsPerDay);
  EXPECT_DOUBLE_EQ(t.total(), 0.0);
  EXPECT_DOUBLE_EQ(t.peak(), 0.0);
}

TEST(DayTrace, RejectsBadValues) {
  EXPECT_THROW(DayTrace(std::vector<double>{}), ConfigError);
  EXPECT_THROW(DayTrace(std::vector<double>{1.0, -0.1}), ConfigError);
  DayTrace t(4);
  EXPECT_THROW(t.set(0, -1.0), ConfigError);
  EXPECT_THROW(t.set(4, 0.0), ConfigError);
  EXPECT_THROW(t.at(4), ConfigError);
}

TEST(DayTrace, Aggregates) {
  DayTrace t(std::vector<double>{1.0, 2.0, 3.0, 6.0});
  EXPECT_DOUBLE_EQ(t.total(), 12.0);
  EXPECT_DOUBLE_EQ(t.peak(), 6.0);
  EXPECT_DOUBLE_EQ(t.mean(), 3.0);
}

TEST(DayTrace, AddClampedRespectsCap) {
  DayTrace t(2);
  t.add_clamped(0, 0.05, 0.08);
  t.add_clamped(0, 0.05, 0.08);
  EXPECT_DOUBLE_EQ(t.at(0), 0.08);
  t.add_clamped(1, 0.05, 0.0);  // cap <= 0 means uncapped
  t.add_clamped(1, 0.05, 0.0);
  EXPECT_DOUBLE_EQ(t.at(1), 0.10);
  EXPECT_THROW(t.add_clamped(0, -0.1, 0.08), ConfigError);
}

TEST(CsvTraceSource, LoadsAndWrapsAround) {
  TempFile file("usage_kwh\n0.01\n0.02\n0.03\n0.04\n0.05\n0.06\n");
  CsvTraceSource source(file.path(), /*intervals_per_day=*/3,
                        /*usage_cap=*/0.08, /*has_header=*/true);
  EXPECT_EQ(source.day_count(), 2u);
  EXPECT_EQ(source.intervals(), 3u);
  const DayTrace d1 = source.next_day();
  EXPECT_DOUBLE_EQ(d1.at(0), 0.01);
  const DayTrace d2 = source.next_day();
  EXPECT_DOUBLE_EQ(d2.at(2), 0.06);
  const DayTrace d3 = source.next_day();  // wraps to day 1
  EXPECT_DOUBLE_EQ(d3.at(0), 0.01);
}

TEST(CsvTraceSource, RejectsPartialDays) {
  TempFile file("0.01\n0.02\n0.03\n0.04\n");
  EXPECT_THROW(CsvTraceSource(file.path(), 3, 0.08, false), DataError);
}

TEST(CsvTraceSource, RejectsValuesAboveCap) {
  TempFile file("0.01\n0.50\n0.03\n");
  EXPECT_THROW(CsvTraceSource(file.path(), 3, 0.08, false), DataError);
}

TEST(CsvTraceSource, RejectsNegativeValues) {
  TempFile file("0.01\n-0.02\n0.03\n");
  EXPECT_THROW(CsvTraceSource(file.path(), 3, 0.08, false), DataError);
}

TEST(CsvTraceSource, RejectsEmptyFile) {
  TempFile file("# nothing but comments\n");
  EXPECT_THROW(CsvTraceSource(file.path(), 3, 0.08, false), DataError);
}

TEST(CsvTraceSource, RejectsMissingFile) {
  EXPECT_THROW(CsvTraceSource("/no/such/file.csv", 3, 0.08, false), DataError);
}

TEST(WriteTracesCsv, RoundTripsThroughSource) {
  const std::string path = ::testing::TempDir() + "/trace_roundtrip.csv";
  std::vector<DayTrace> days;
  days.emplace_back(std::vector<double>{0.01, 0.02});
  days.emplace_back(std::vector<double>{0.03, 0.04});
  write_traces_csv(path, days);
  CsvTraceSource source(path, 2, 0.08, /*has_header=*/true);
  EXPECT_EQ(source.day_count(), 2u);
  EXPECT_DOUBLE_EQ(source.next_day().at(1), 0.02);
  EXPECT_DOUBLE_EQ(source.next_day().at(0), 0.03);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rlblh
