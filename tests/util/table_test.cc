#include "util/table.h"

#include <algorithm>
#include <sstream>

#include <gtest/gtest.h>

#include "util/error.h"

namespace rlblh {
namespace {

TEST(TablePrinter, RejectsEmptyHeaderAndMismatchedRows) {
  EXPECT_THROW(TablePrinter({}), ConfigError);
  TablePrinter t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ConfigError);
}

TEST(TablePrinter, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "2.5"});
  std::ostringstream out;
  t.print(out);
  const std::string text = out.str();
  // Header, separator, two rows.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 4);
  // All lines are equally wide (alignment).
  std::istringstream lines(text);
  std::string line;
  std::size_t width = 0;
  while (std::getline(lines, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width);
  }
}

TEST(TablePrinter, NumFormatsWithPrecision) {
  EXPECT_EQ(TablePrinter::num(1.23456, 2), "1.23");
  EXPECT_EQ(TablePrinter::num(-0.5, 1), "-0.5");
  EXPECT_EQ(TablePrinter::num(2.0, 0), "2");
}

TEST(TablePrinter, ContainsAllCells) {
  TablePrinter t({"k", "v"});
  t.add_row({"alpha", "42"});
  std::ostringstream out;
  t.print(out);
  EXPECT_NE(out.str().find("alpha"), std::string::npos);
  EXPECT_NE(out.str().find("42"), std::string::npos);
}

}  // namespace
}  // namespace rlblh
