#include "util/running_stats.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace rlblh {
namespace {

TEST(RunningStats, EmptyStateIsNeutral) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.sum(), 0.0);
  // Documented sentinels, not uninitialized reads.
  EXPECT_TRUE(std::isinf(s.min()) && s.min() > 0.0);
  EXPECT_TRUE(std::isinf(s.max()) && s.max() < 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStats, KnownSequence) {
  RunningStats s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Unbiased sample variance of this classic sequence is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MatchesTwoPassComputation) {
  Rng rng(42);
  std::vector<double> values;
  RunningStats s;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.normal(10.0, 3.0);
    values.push_back(v);
    s.add(v);
  }
  double mean = 0.0;
  for (const double v : values) mean += v;
  mean /= static_cast<double>(values.size());
  double var = 0.0;
  for (const double v : values) var += (v - mean) * (v - mean);
  var /= static_cast<double>(values.size() - 1);
  EXPECT_NEAR(s.mean(), mean, 1e-9);
  EXPECT_NEAR(s.variance(), var, 1e-9);
}

TEST(RunningStats, MergeEqualsSequential) {
  Rng rng(7);
  RunningStats all;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 500; ++i) {
    const double v = rng.uniform(-5.0, 5.0);
    all.add(v);
    (i % 2 == 0 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmptySides) {
  RunningStats a;
  RunningStats b;
  b.add(1.0);
  b.add(2.0);
  a.merge(b);  // empty <- nonempty
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 1.5);
  RunningStats c;
  a.merge(c);  // nonempty <- empty
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 1.5);
}

TEST(RunningStats, ResetClearsEverything) {
  RunningStats s;
  s.add(1.0);
  s.add(100.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  s.add(2.0);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
}

TEST(RunningStats, NumericalStabilityWithLargeOffset) {
  // Welford must survive values with a huge common offset.
  RunningStats s;
  const double offset = 1e12;
  for (const double v : {offset + 1.0, offset + 2.0, offset + 3.0}) s.add(v);
  EXPECT_NEAR(s.mean(), offset + 2.0, 1e-3);
  EXPECT_NEAR(s.variance(), 1.0, 1e-3);
}

}  // namespace
}  // namespace rlblh
