#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <optional>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/error.h"

namespace rlblh {
namespace {

TEST(ThreadPoolTest, RequiresAtLeastOneWorker) {
  EXPECT_THROW(ThreadPool pool(0), ConfigError);
}

TEST(ThreadPoolTest, ReportsWorkerCount) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPoolTest, TasksCompleteWithCorrectResults) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPoolTest, SupportsMoveOnlyResults) {
  ThreadPool pool(2);
  auto future = pool.submit([] { return std::make_unique<int>(42); });
  const std::unique_ptr<int> result = future.get();
  ASSERT_NE(result, nullptr);
  EXPECT_EQ(*result, 42);
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto failing = pool.submit(
      []() -> int { throw std::runtime_error("cell exploded"); });
  EXPECT_THROW(failing.get(), std::runtime_error);

  // The worker survives a throwing task; the pool stays usable.
  auto ok = pool.submit([] { return 7; });
  EXPECT_EQ(ok.get(), 7);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> completed{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.submit([&completed] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        completed.fetch_add(1, std::memory_order_relaxed);
      });
    }
    // Destruction must wait for every queued task, not just running ones.
  }
  EXPECT_EQ(completed.load(), 64);
}

TEST(ThreadPoolTest, ManyThreadsOneTaskEach) {
  ThreadPool pool(8);
  std::atomic<int> completed{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(pool.submit(
        [&completed] { completed.fetch_add(1, std::memory_order_relaxed); }));
  }
  for (auto& future : futures) future.get();
  EXPECT_EQ(completed.load(), 8);
}

// Restores the prior value of an environment variable on scope exit so the
// RLBLH_THREADS tests cannot leak state into other tests.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    if (const char* prior = std::getenv(name)) previous_ = prior;
    if (value != nullptr) {
      ::setenv(name, value, /*overwrite=*/1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (previous_.has_value()) {
      ::setenv(name_, previous_->c_str(), /*overwrite=*/1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::optional<std::string> previous_;
};

TEST(ThreadPoolTest, DefaultThreadCountHonorsEnvOverride) {
  const ScopedEnv env("RLBLH_THREADS", "5");
  EXPECT_EQ(ThreadPool::default_thread_count(), 5u);
}

TEST(ThreadPoolTest, DefaultThreadCountIgnoresInvalidEnv) {
  {
    const ScopedEnv env("RLBLH_THREADS", "not-a-number");
    EXPECT_GE(ThreadPool::default_thread_count(), 1u);
  }
  {
    const ScopedEnv env("RLBLH_THREADS", "0");
    EXPECT_GE(ThreadPool::default_thread_count(), 1u);
  }
}

TEST(ThreadPoolTest, DefaultThreadCountAtLeastOneWithoutEnv) {
  const ScopedEnv env("RLBLH_THREADS", nullptr);
  EXPECT_GE(ThreadPool::default_thread_count(), 1u);
}

}  // namespace
}  // namespace rlblh
