#include "util/empirical_dist.h"

#include <gtest/gtest.h>

#include "util/error.h"
#include "util/running_stats.h"

namespace rlblh {
namespace {

TEST(EmpiricalDistribution, RejectsBadConstruction) {
  EXPECT_THROW(EmpiricalDistribution(0.0, 1.0, 8, 0), ConfigError);
  EXPECT_THROW(EmpiricalDistribution(1.0, 0.0, 8, 8), ConfigError);
}

TEST(EmpiricalDistribution, CannotSampleWhenEmpty) {
  EmpiricalDistribution d(0.0, 1.0);
  Rng rng(1);
  EXPECT_THROW(d.sample(rng), ConfigError);
}

TEST(EmpiricalDistribution, MeanTracksObservations) {
  EmpiricalDistribution d(0.0, 10.0);
  Rng rng(1);
  d.add(2.0, rng);
  d.add(4.0, rng);
  d.add(6.0, rng);
  EXPECT_DOUBLE_EQ(d.mean(), 4.0);
  EXPECT_EQ(d.count(), 3u);
}

TEST(EmpiricalDistribution, ValuesClampIntoRange) {
  EmpiricalDistribution d(0.0, 1.0);
  Rng rng(1);
  d.add(-5.0, rng);
  d.add(7.0, rng);
  EXPECT_DOUBLE_EQ(d.mean(), 0.5);
  for (int i = 0; i < 50; ++i) {
    const double v = d.sample(rng);
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(EmpiricalDistribution, SampleOfConstantIsNearConstant) {
  EmpiricalDistribution d(0.0, 1.0, 32, 16);
  Rng rng(3);
  for (int i = 0; i < 100; ++i) d.add(0.5, rng);
  for (int i = 0; i < 100; ++i) {
    // Reservoir draws return exactly 0.5; histogram draws jitter within the
    // one occupied cell (width 1/32).
    EXPECT_NEAR(d.sample(rng), 0.5, 1.0 / 32.0);
  }
}

TEST(EmpiricalDistribution, SampleDistributionMatchesSource) {
  EmpiricalDistribution d(0.0, 1.0, 32, 64);
  Rng rng(5);
  RunningStats source;
  for (int i = 0; i < 5000; ++i) {
    // Bimodal source: half near 0.2, half near 0.8.
    const double v = (i % 2 == 0) ? rng.normal(0.2, 0.03) : rng.normal(0.8, 0.03);
    source.add(v);
    d.add(v, rng);
  }
  RunningStats drawn;
  for (int i = 0; i < 5000; ++i) drawn.add(d.sample(rng));
  EXPECT_NEAR(drawn.mean(), source.mean(), 0.02);
  EXPECT_NEAR(drawn.stddev(), source.stddev(), 0.03);
}

TEST(EmpiricalDistribution, ReservoirFractionBounds) {
  EmpiricalDistribution d(0.0, 1.0);
  EXPECT_THROW(d.set_reservoir_fraction(-0.1), ConfigError);
  EXPECT_THROW(d.set_reservoir_fraction(1.1), ConfigError);
  d.set_reservoir_fraction(1.0);  // pure reservoir
  Rng rng(8);
  d.add(0.3, rng);
  for (int i = 0; i < 20; ++i) EXPECT_DOUBLE_EQ(d.sample(rng), 0.3);
}

TEST(EmpiricalDistribution, HistogramOnlySamplingStaysInOccupiedCells) {
  EmpiricalDistribution d(0.0, 1.0, 10, 4);
  d.set_reservoir_fraction(0.0);  // pure histogram
  Rng rng(9);
  for (int i = 0; i < 100; ++i) d.add(0.95, rng);
  for (int i = 0; i < 100; ++i) {
    const double v = d.sample(rng);
    EXPECT_GE(v, 0.9);
    EXPECT_LE(v, 1.0);
  }
}

}  // namespace
}  // namespace rlblh
