#include "util/rng.h"

#include <gtest/gtest.h>

#include "util/error.h"
#include "util/running_stats.h"

namespace rlblh {
namespace {

TEST(Rng, DeterministicGivenSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, UniformRejectsInvertedBounds) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform(3.0, 2.0), ConfigError);
  EXPECT_THROW(rng.uniform_int(3, 2), ConfigError);
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(5);
  bool seen[4] = {false, false, false, false};
  for (int i = 0; i < 200; ++i) {
    const int v = rng.uniform_int(0, 3);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 3);
    seen[v] = true;
  }
  EXPECT_TRUE(seen[0] && seen[1] && seen[2] && seen[3]);
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(rng.normal(4.0, 2.0));
  EXPECT_NEAR(s.mean(), 4.0, 0.1);
  EXPECT_NEAR(s.stddev(), 2.0, 0.1);
}

TEST(Rng, NormalWithZeroSigmaIsDeterministic) {
  Rng rng(2);
  EXPECT_DOUBLE_EQ(rng.normal(1.5, 0.0), 1.5);
  EXPECT_THROW(rng.normal(0.0, -1.0), ConfigError);
}

TEST(Rng, ExponentialMeanIsInverseRate) {
  Rng rng(13);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(rng.exponential(0.5));
  EXPECT_NEAR(s.mean(), 2.0, 0.1);
  EXPECT_THROW(rng.exponential(0.0), ConfigError);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / 10000.0, 0.3, 0.03);
  EXPECT_THROW(rng.bernoulli(1.5), ConfigError);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(21);
  Rng child = parent.fork();
  // Child and parent must not generate identical sequences afterwards.
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.uniform() == child.uniform()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

}  // namespace
}  // namespace rlblh
