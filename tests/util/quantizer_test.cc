#include "util/quantizer.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace rlblh {
namespace {

TEST(Quantizer, RejectsBadConstruction) {
  EXPECT_THROW(Quantizer(1, 0.0, 1.0), ConfigError);
  EXPECT_THROW(Quantizer(4, 1.0, 1.0), ConfigError);
}

TEST(Quantizer, EndpointsAreExactLevels) {
  Quantizer q(5, 0.0, 1.0);
  EXPECT_DOUBLE_EQ(q.value(0), 0.0);
  EXPECT_DOUBLE_EQ(q.value(4), 1.0);
  EXPECT_DOUBLE_EQ(q.step(), 0.25);
}

TEST(Quantizer, MatchesPaperEquation5Spacing) {
  // Paper Eq. (5): a_k = (a-1) x_M / (a_M - 1), a = 1..a_M. With a_M = 8 and
  // x_M = 0.08 the levels are 0, 0.08/7, ..., 0.08.
  Quantizer q(8, 0.0, 0.08);
  for (std::size_t a = 0; a < 8; ++a) {
    EXPECT_NEAR(q.value(a), static_cast<double>(a) * 0.08 / 7.0, 1e-15);
  }
}

TEST(Quantizer, NearestLevelRounding) {
  Quantizer q(5, 0.0, 1.0);
  EXPECT_EQ(q.index(0.10), 0u);
  EXPECT_EQ(q.index(0.13), 1u);
  EXPECT_EQ(q.index(0.37), 1u);
  EXPECT_EQ(q.index(0.38), 2u);
}

TEST(Quantizer, ClampsOutOfRange) {
  Quantizer q(5, 0.0, 1.0);
  EXPECT_EQ(q.index(-3.0), 0u);
  EXPECT_EQ(q.index(9.0), 4u);
}

TEST(Quantizer, QuantizeIsIdempotent) {
  Quantizer q(7, -1.0, 1.0);
  for (double x = -1.2; x <= 1.2; x += 0.01) {
    const double once = q.quantize(x);
    EXPECT_DOUBLE_EQ(q.quantize(once), once);
  }
}

TEST(Quantizer, LevelIndexRoundTrips) {
  Quantizer q(9, 2.0, 4.0);
  for (std::size_t i = 0; i < q.levels(); ++i) {
    EXPECT_EQ(q.index(q.value(i)), i);
  }
  EXPECT_THROW(q.value(9), ConfigError);
}

class QuantizerLevelsParam : public ::testing::TestWithParam<std::size_t> {};

TEST_P(QuantizerLevelsParam, QuantizationErrorBoundedByHalfStep) {
  Quantizer q(GetParam(), 0.0, 1.0);
  for (int i = 0; i <= 1000; ++i) {
    const double x = static_cast<double>(i) / 1000.0;
    EXPECT_LE(std::abs(q.quantize(x) - x), q.step() / 2.0 + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, QuantizerLevelsParam,
                         ::testing::Values(2, 3, 4, 8, 16, 64));

}  // namespace
}  // namespace rlblh
