#include "util/histogram.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/error.h"

namespace rlblh {
namespace {

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(0, 0.0, 1.0), ConfigError);
  EXPECT_THROW(Histogram(4, 1.0, 1.0), ConfigError);
  EXPECT_THROW(Histogram(4, 2.0, 1.0), ConfigError);
}

TEST(Histogram, BinIndexCoversRangeEvenly) {
  Histogram h(4, 0.0, 4.0);
  EXPECT_EQ(h.bin_index(0.5), 0u);
  EXPECT_EQ(h.bin_index(1.5), 1u);
  EXPECT_EQ(h.bin_index(2.5), 2u);
  EXPECT_EQ(h.bin_index(3.5), 3u);
}

TEST(Histogram, OutOfRangeValuesClampToBoundaryCells) {
  Histogram h(4, 0.0, 4.0);
  h.add(-10.0);
  h.add(42.0);
  EXPECT_DOUBLE_EQ(h.count(0), 1.0);
  EXPECT_DOUBLE_EQ(h.count(3), 1.0);
  EXPECT_DOUBLE_EQ(h.total(), 2.0);
}

TEST(Histogram, UpperBoundGoesToLastCell) {
  Histogram h(4, 0.0, 4.0);
  EXPECT_EQ(h.bin_index(4.0), 3u);
}

TEST(Histogram, BinCenters) {
  Histogram h(4, 0.0, 4.0);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 0.5);
  EXPECT_DOUBLE_EQ(h.bin_center(3), 3.5);
  EXPECT_THROW(h.bin_center(4), ConfigError);
}

TEST(Histogram, ProbabilitiesSumToOne) {
  Histogram h(8, 0.0, 1.0);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i) / 100.0);
  double sum = 0.0;
  for (std::size_t i = 0; i < h.bins(); ++i) sum += h.probability(i);
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Histogram, WeightedAdd) {
  Histogram h(2, 0.0, 1.0);
  h.add_weighted(0.25, 3.0);
  h.add_weighted(0.75, 1.0);
  EXPECT_DOUBLE_EQ(h.probability(0), 0.75);
  EXPECT_DOUBLE_EQ(h.probability(1), 0.25);
  EXPECT_THROW(h.add_weighted(0.5, -1.0), ConfigError);
}

TEST(Histogram, EntropyOfUniformIsLogBins) {
  Histogram h(8, 0.0, 8.0);
  for (int i = 0; i < 8; ++i) h.add(static_cast<double>(i) + 0.5);
  EXPECT_NEAR(h.entropy_bits(), 3.0, 1e-12);
}

TEST(Histogram, EntropyOfPointMassIsZero) {
  Histogram h(8, 0.0, 8.0);
  for (int i = 0; i < 100; ++i) h.add(3.2);
  EXPECT_DOUBLE_EQ(h.entropy_bits(), 0.0);
}

TEST(Histogram, EntropyOfEmptyIsZero) {
  Histogram h(8, 0.0, 8.0);
  EXPECT_DOUBLE_EQ(h.entropy_bits(), 0.0);
}

TEST(Histogram, ResetClears) {
  Histogram h(4, 0.0, 1.0);
  h.add(0.5);
  h.reset();
  EXPECT_DOUBLE_EQ(h.total(), 0.0);
  EXPECT_DOUBLE_EQ(h.count(2), 0.0);
}

class HistogramBinsParam : public ::testing::TestWithParam<std::size_t> {};

TEST_P(HistogramBinsParam, EveryAddLandsInExactlyOneBin) {
  const std::size_t bins = GetParam();
  Histogram h(bins, -1.0, 1.0);
  for (int i = 0; i < 257; ++i) {
    h.add(-1.5 + 3.0 * static_cast<double>(i) / 256.0);
  }
  double total = 0.0;
  for (std::size_t b = 0; b < h.bins(); ++b) total += h.count(b);
  EXPECT_DOUBLE_EQ(total, 257.0);
  EXPECT_DOUBLE_EQ(h.total(), 257.0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, HistogramBinsParam,
                         ::testing::Values(1, 2, 3, 7, 16, 101));

}  // namespace
}  // namespace rlblh
