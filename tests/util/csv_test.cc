#include "util/csv.h"

#include <sstream>

#include <gtest/gtest.h>

#include "util/error.h"

namespace rlblh {
namespace {

TEST(Csv, ParsesSimpleNumericTable) {
  std::istringstream in("a,b\n1,2\n3.5,-4\n");
  const CsvTable t = read_csv(in, /*has_header=*/true);
  ASSERT_EQ(t.header.size(), 2u);
  EXPECT_EQ(t.header[0], "a");
  ASSERT_EQ(t.row_count(), 2u);
  EXPECT_DOUBLE_EQ(t.rows[1][0], 3.5);
  EXPECT_DOUBLE_EQ(t.rows[1][1], -4.0);
}

TEST(Csv, ParsesWithoutHeader) {
  std::istringstream in("1,2\n3,4\n");
  const CsvTable t = read_csv(in, /*has_header=*/false);
  EXPECT_TRUE(t.header.empty());
  EXPECT_EQ(t.row_count(), 2u);
  EXPECT_EQ(t.column_count(), 2u);
}

TEST(Csv, SkipsCommentsAndBlankLines) {
  std::istringstream in("# comment\n\nx\n1\n# another\n2\n");
  const CsvTable t = read_csv(in, /*has_header=*/true);
  EXPECT_EQ(t.header[0], "x");
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Csv, TrimsWhitespaceAroundFields) {
  std::istringstream in(" a , b \n 1 , 2 \n");
  const CsvTable t = read_csv(in, /*has_header=*/true);
  EXPECT_EQ(t.header[0], "a");
  EXPECT_DOUBLE_EQ(t.rows[0][1], 2.0);
}

TEST(Csv, RejectsRaggedRows) {
  std::istringstream in("1,2\n3\n");
  EXPECT_THROW(read_csv(in, false), DataError);
}

TEST(Csv, RejectsNonNumericField) {
  std::istringstream in("1,hello\n");
  EXPECT_THROW(read_csv(in, false), DataError);
}

TEST(Csv, RejectsTrailingGarbage) {
  std::istringstream in("1.5x\n");
  EXPECT_THROW(read_csv(in, false), DataError);
}

TEST(Csv, RejectsEmptyField) {
  std::istringstream in("1,\n");
  EXPECT_THROW(read_csv(in, false), DataError);
}

TEST(Csv, ColumnAccessByIndexAndName) {
  std::istringstream in("u,v\n1,2\n3,4\n");
  const CsvTable t = read_csv(in, true);
  EXPECT_EQ(t.column(std::size_t{1}), (std::vector<double>{2.0, 4.0}));
  EXPECT_EQ(t.column("u"), (std::vector<double>{1.0, 3.0}));
  EXPECT_THROW(t.column(std::size_t{2}), DataError);
  EXPECT_THROW(t.column("nope"), DataError);
}

TEST(Csv, RoundTripsThroughWrite) {
  CsvTable t;
  t.header = {"p", "q"};
  t.rows = {{1.25, -2.0}, {0.0, 1e-6}};
  std::ostringstream out;
  write_csv(out, t);
  std::istringstream in(out.str());
  const CsvTable back = read_csv(in, true);
  ASSERT_EQ(back.row_count(), 2u);
  EXPECT_DOUBLE_EQ(back.rows[0][0], 1.25);
  EXPECT_DOUBLE_EQ(back.rows[1][1], 1e-6);
}

TEST(Csv, FileNotFoundThrows) {
  EXPECT_THROW(read_csv_file("/nonexistent/path/file.csv", false), DataError);
}

TEST(Csv, EmptyInputYieldsEmptyTable) {
  std::istringstream in("");
  const CsvTable t = read_csv(in, false);
  EXPECT_EQ(t.row_count(), 0u);
  EXPECT_EQ(t.column_count(), 0u);
}

}  // namespace
}  // namespace rlblh
