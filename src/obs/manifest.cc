#include "obs/manifest.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <sstream>

#include "obs/json_writer.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"

namespace rlblh::obs {

namespace {

void write_histogram(JsonWriter& json, const HistogramMetric::Snapshot& snap) {
  json.begin_object();
  json.member("count", static_cast<unsigned long long>(snap.count));
  json.member("sum", snap.sum);
  json.member("mean", snap.mean());
  json.member("min", snap.min);
  json.member("max", snap.max);
  json.member("p50", snap.quantile(0.50));
  json.member("p90", snap.quantile(0.90));
  json.member("p99", snap.quantile(0.99));
  json.key("buckets");
  json.begin_array();
  for (std::size_t i = 0; i < HistogramMetric::kBuckets; ++i) {
    if (snap.buckets[i] == 0) continue;
    json.begin_array();
    const double upper = HistogramMetric::bucket_upper(i);
    if (i + 1 < HistogramMetric::kBuckets) {
      json.value(upper);
    } else {
      json.null();  // unbounded top bucket
    }
    json.value(static_cast<unsigned long long>(snap.buckets[i]));
    json.end_array();
  }
  json.end_array();
  json.end_object();
}

}  // namespace

void write_manifest(std::ostream& out, const RunInfo& info) {
  JsonWriter json(out);
  json.begin_object();
  json.member("schema", "rlblh-run-v1");
  json.member("name", info.name);

  json.key("command");
  json.begin_array();
  for (const std::string& arg : info.command) json.value(arg);
  json.end_array();

  json.key("build");
  json.begin_object();
  json.member("git_sha", build_git_sha());
  json.member("compiler", build_compiler());
  json.member("build_type", build_type());
  json.member("obs_compiled", compiled_in());
  json.end_object();

  json.key("config");
  json.begin_object();
  for (const auto& [key, value] : info.config) json.member(key, value);
  json.end_object();

  json.key("counters");
  json.begin_object();
  for (const auto& [name, value] : registry().counter_values()) {
    json.member(name, static_cast<long long>(value));
  }
  json.end_object();

  json.key("gauges");
  json.begin_object();
  for (const auto& [name, value] : registry().gauge_values()) {
    json.member(name, value);
  }
  json.end_object();

  json.key("histograms");
  json.begin_object();
  for (const auto& [name, snap] : registry().histogram_values()) {
    json.key(name);
    write_histogram(json, snap);
  }
  json.end_object();

  // Splice the span tree in as a pre-rendered sub-document: JsonWriter
  // handles the key, write_span_tree_json the nested array.
  json.key("spans");
  std::ostringstream spans;
  write_span_tree_json(spans, Tracer::instance().snapshot(), /*indent=*/1);
  json.raw(spans.str());
  json.end_object();
  json.finish();
}

bool write_manifest_file(const std::string& path, const RunInfo& info) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "obs: cannot write manifest %s\n", path.c_str());
    return false;
  }
  write_manifest(out, info);
  return out.good();
}

std::string default_manifest_path(const std::string& name) {
  if (const char* env = std::getenv("RLBLH_OBS_OUT")) {
    if (env[0] != '\0') return env;
  }
  return "RUN_" + name + ".json";
}

std::string build_git_sha() {
#ifdef RLBLH_GIT_SHA
  return RLBLH_GIT_SHA;
#else
  return "unknown";
#endif
}

std::string build_compiler() {
#ifdef __VERSION__
  return __VERSION__;
#else
  return "unknown";
#endif
}

std::string build_type() {
#ifdef RLBLH_BUILD_TYPE
  return RLBLH_BUILD_TYPE;
#else
  return "unknown";
#endif
}

}  // namespace rlblh::obs
