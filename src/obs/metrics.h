// Lock-cheap metrics registry: counters, gauges and histograms.
//
// Hot-path writes must not serialize the sweep workers, so every metric is
// sharded: a writer picks the shard owned by its thread id and does one
// relaxed atomic RMW on a cache line no other shard touches. Reads (only
// taken when a manifest or dump is produced) sum across shards. The
// registry itself is a mutex-guarded name table, but each instrumentation
// site resolves its metric once through a function-local static, so the
// mutex is touched once per site per process, not per hit.
//
// Values are monotone within a run; reset() (registry-wide) zeroes every
// metric while keeping registrations — and therefore the cached references
// held by instrumentation sites — valid.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace rlblh::obs {

/// Number of write shards per metric. More shards than typical worker
/// counts so two workers rarely share a cache line; small enough that a
/// read-side sum stays trivial.
inline constexpr std::size_t kMetricShards = 16;

/// Stable small id of the calling thread (0 for the first thread that asks,
/// 1 for the second, ...). Used both for metric sharding and to label spans.
std::uint32_t thread_ordinal();

/// Monotone counter. add() is wait-free on platforms with native fetch_add.
class Counter {
 public:
  void add(long long delta) {
    shards_[thread_ordinal() % kMetricShards].value.fetch_add(
        delta, std::memory_order_relaxed);
  }

  /// Sum over all shards.
  long long value() const;

  /// Zeroes every shard.
  void reset();

 private:
  struct alignas(64) Shard {
    std::atomic<long long> value{0};
  };
  std::array<Shard, kMetricShards> shards_;
};

/// Last-writer-wins instantaneous value.
class Gauge {
 public:
  void set(double value) {
    value_.store(value, std::memory_order_relaxed);
    written_.store(true, std::memory_order_relaxed);
  }

  double value() const { return value_.load(std::memory_order_relaxed); }

  /// True once set() has been called since construction/reset.
  bool written() const { return written_.load(std::memory_order_relaxed); }

  void reset();

 private:
  std::atomic<double> value_{0.0};
  std::atomic<bool> written_{false};
};

/// Sharded histogram over geometric (power-of-two) buckets.
///
/// Bucket i covers (upper(i-1), upper(i)] with upper(i) = 2^(i - kZeroBias);
/// the layout spans ~1.5e-8 .. ~7e10, wide enough for both sub-kWh energy
/// values and nanosecond latencies up to a minute. Values at or below zero
/// land in bucket 0, values beyond the top bound in the last bucket, so
/// every observation is counted exactly once.
class HistogramMetric {
 public:
  static constexpr std::size_t kBuckets = 64;
  static constexpr int kZeroBias = 27;  // bucket 0 upper bound = 2^-27

  void observe(double value);

  /// Upper bound of bucket i (inclusive); +inf for the last bucket.
  static double bucket_upper(std::size_t i);

  /// Bucket that `value` falls into.
  static std::size_t bucket_of(double value);

  /// A consistent-enough read of the histogram (relaxed loads; exact once
  /// writers are quiescent, which is when snapshots are taken).
  struct Snapshot {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;  ///< smallest observed value (0 when empty)
    double max = 0.0;  ///< largest observed value (0 when empty)
    std::array<std::uint64_t, kBuckets> buckets{};

    double mean() const {
      return count == 0 ? 0.0 : sum / static_cast<double>(count);
    }

    /// Upper bound of the bucket holding the q-quantile observation
    /// (q in [0, 1]); 0 when empty. Exact to within one bucket width.
    double quantile(double q) const;
  };
  Snapshot snapshot() const;

  void reset();

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<std::uint64_t>, kBuckets> counts{};
    std::atomic<double> sum{0.0};
  };
  std::array<Shard, kMetricShards> shards_;
  // Extremes are process-wide CAS cells: the loop only spins while the
  // value is a fresh extreme, which is rare after warm-up.
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
  std::atomic<bool> extremes_set_{false};
};

/// Name -> metric table. Lookup registers on first use and returns a
/// reference that stays valid (and keeps its identity across reset()) for
/// the registry's lifetime. Counters, gauges and histograms have separate
/// namespaces.
class MetricRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  HistogramMetric& histogram(const std::string& name);

  /// Zeroes every registered metric; registrations (and references handed
  /// out earlier) survive.
  void reset();

  // --- read side (manifest writer, pretty printer) ---------------------
  std::vector<std::pair<std::string, long long>> counter_values() const;
  /// Gauges that have been written since the last reset.
  std::vector<std::pair<std::string, double>> gauge_values() const;
  std::vector<std::pair<std::string, HistogramMetric::Snapshot>>
  histogram_values() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<HistogramMetric>> histograms_;
};

/// The process-wide registry used by the RLBLH_OBS_* macros.
MetricRegistry& registry();

}  // namespace rlblh::obs
