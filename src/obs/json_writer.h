// Streaming JSON writer with pretty-printing.
//
// The observability artifacts (RUN_*.json manifests, BENCH_*.json records,
// span trees) are all emitted through this one writer so escaping, number
// formatting (%.17g round-trippable doubles, null for non-finite values)
// and indentation are decided in exactly one place.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace rlblh::obs {

/// Emits one JSON document. Usage is push-down: begin_object()/begin_array()
/// open a container, key() names the next member inside an object, value()
/// writes a scalar, end_*() closes. Commas and indentation are automatic.
class JsonWriter {
 public:
  /// Writes to `out` with 2-space indentation starting at `base_indent`
  /// levels (so a sub-document can be spliced into an outer one).
  explicit JsonWriter(std::ostream& out, int base_indent = 0);

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Names the next member; must be directly inside an object.
  void key(const std::string& name);

  void value(const std::string& text);
  void value(const char* text);
  void value(double number);  ///< non-finite doubles become null
  void value(long long number);
  void value(unsigned long long number);
  void value(int number) { value(static_cast<long long>(number)); }
  void value(std::size_t number) {
    value(static_cast<unsigned long long>(number));
  }
  void value(bool flag);
  void null();

  /// key() + value() in one call.
  template <typename T>
  void member(const std::string& name, const T& v) {
    key(name);
    value(v);
  }

  /// Splices a pre-rendered JSON sub-document in value position. The text
  /// must be a complete JSON value rendered at the matching indent level
  /// (see write_span_tree_json's `indent` parameter).
  void raw(const std::string& rendered);

  /// Writes the final newline; asserts all containers are closed.
  void finish();

  /// JSON string escaping (exposed for call sites that cannot stream).
  static std::string escape(const std::string& text);

 private:
  enum class Scope { kObject, kArray };
  void before_value();

  std::ostream& out_;
  int base_indent_;
  std::vector<std::pair<Scope, int>> stack_;  // scope, emitted-member count
  bool key_pending_ = false;
};

}  // namespace rlblh::obs
