// Human-readable rendering of the current registry and span tree.
//
// `metrics_dump` is the terminal-facing twin of the RUN_*.json manifest:
// aligned tables for counters, gauges and histogram summaries, and an
// indented tree of spans with durations. Used by `bench --obs` and
// `simulate_cli --obs` after a run; also handy from a debugger.
#pragma once

#include <iosfwd>

namespace rlblh::obs {

/// Prints counters, gauges and histogram summaries as aligned tables.
void dump_metrics(std::ostream& out);

/// Prints the span tree, one span per line, children indented, with
/// durations in the largest sensible unit.
void dump_spans(std::ostream& out);

/// dump_metrics + dump_spans with section headings.
void dump_all(std::ostream& out);

}  // namespace rlblh::obs
