// Tracing spans: RAII scoped timers forming a per-run span tree.
//
// A ScopedSpan marks a region of work ("bench.body", "sweep.run",
// "sim.run_days"). Spans nest through a thread-local current-span pointer,
// so the tree mirrors the dynamic call structure on each thread; spans
// opened on pool workers have no parent on that thread and therefore show
// up as per-thread roots, which is the honest picture of a fan-out.
//
// Timing uses the steady clock relative to the tracer's epoch (reset() at
// process/run start), so span times line up with each other regardless of
// wall-clock adjustments. Completed spans are appended to one mutex-guarded
// vector: spans are coarse-grained (days, cells, phases — not intervals),
// so one lock per completed span is far off the hot path.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

namespace rlblh::obs {

/// One completed span.
struct SpanRecord {
  std::uint64_t id = 0;      ///< 1-based, in start order
  std::uint64_t parent = 0;  ///< 0 for roots
  std::string name;
  std::uint32_t thread = 0;   ///< thread_ordinal() of the opening thread
  std::uint64_t start_ns = 0; ///< steady-clock offset from the tracer epoch
  std::uint64_t duration_ns = 0;
};

/// Process-wide collector of completed spans.
class Tracer {
 public:
  static Tracer& instance();

  /// Clears collected spans and restarts the epoch. Call from the main
  /// thread between runs, with no spans open.
  void reset();

  /// Completed spans in completion order. Sort by id for start order.
  std::vector<SpanRecord> snapshot() const;

  /// Number of completed spans.
  std::size_t size() const;

  // --- ScopedSpan internals --------------------------------------------
  std::chrono::steady_clock::time_point epoch() const;
  void record(SpanRecord span);
  std::uint64_t next_id() {
    return id_counter_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

 private:
  Tracer();

  mutable std::mutex mutex_;
  std::vector<SpanRecord> completed_;
  std::chrono::steady_clock::time_point epoch_;
  std::atomic<std::uint64_t> id_counter_{0};
};

/// RAII span. Does nothing unless obs::enabled() was true at construction.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  bool active_ = false;
  std::uint64_t id_ = 0;
  std::uint64_t parent_ = 0;
  const char* name_ = nullptr;
  std::chrono::steady_clock::time_point start_;
};

/// Serializes the spans as a JSON array of trees: each element carries
/// name/thread/start_ns/duration_ns and a "children" array, children in
/// start order. Roots (parent absent from `spans`) appear at top level.
void write_span_tree_json(std::ostream& out,
                          const std::vector<SpanRecord>& spans,
                          int indent = 0);

}  // namespace rlblh::obs
