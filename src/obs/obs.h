// Observability umbrella: the compile-time gate, the runtime switch and the
// instrumentation macros every other subsystem uses.
//
// Two independent switches control the layer:
//
//   compile time  RLBLH_OBS (CMake option, ON by default) defines
//                 RLBLH_OBS_ENABLED. With the option OFF every
//                 instrumentation macro below expands to nothing, so hot
//                 paths carry zero observability code.
//   run time      rlblh::obs::set_enabled(true) — set by --obs flags or a
//                 non-empty RLBLH_OBS_OUT environment variable. While off
//                 (the default) each macro costs one relaxed atomic load.
//
// Instrumentation never changes simulation behaviour: it only reads values
// already computed and never touches an Rng, so results are bitwise
// identical with observability compiled out, compiled in but dormant, or
// fully recording (tests/sim/sweep_determinism_test.cc asserts this).
#pragma once

#ifndef RLBLH_OBS_ENABLED
#define RLBLH_OBS_ENABLED 1
#endif

#if RLBLH_OBS_ENABLED
#include "obs/metrics.h"
#include "obs/trace.h"
#endif

#include <atomic>

namespace rlblh::obs {

#if RLBLH_OBS_ENABLED

namespace detail {
/// The process-wide runtime switch behind enabled()/set_enabled().
inline std::atomic<bool>& runtime_flag() {
  static std::atomic<bool> flag{false};
  return flag;
}
}  // namespace detail

/// True while the layer both is compiled in and has been switched on.
inline bool enabled() {
  return detail::runtime_flag().load(std::memory_order_relaxed);
}

/// Turns runtime collection on or off (off by default).
inline void set_enabled(bool on) {
  detail::runtime_flag().store(on, std::memory_order_relaxed);
}

/// True when the library was built with RLBLH_OBS=ON.
constexpr bool compiled_in() { return true; }

#else  // !RLBLH_OBS_ENABLED

constexpr bool enabled() { return false; }
inline void set_enabled(bool) {}
constexpr bool compiled_in() { return false; }

#endif  // RLBLH_OBS_ENABLED

}  // namespace rlblh::obs

// --- instrumentation macros ----------------------------------------------
//
// Each site registers its metric once (a function-local static resolved on
// first recording) and then pays one relaxed load + one sharded relaxed
// fetch_add per hit. Names are dotted paths ("pool.tasks_completed") —
// see DESIGN.md for the catalogue.

#if RLBLH_OBS_ENABLED

/// Adds `delta` to the named counter.
#define RLBLH_OBS_COUNT(name, delta)                              \
  do {                                                            \
    if (::rlblh::obs::enabled()) {                                \
      static ::rlblh::obs::Counter& rlblh_obs_counter_ =          \
          ::rlblh::obs::registry().counter(name);                 \
      rlblh_obs_counter_.add(static_cast<long long>(delta));      \
    }                                                             \
  } while (0)

/// Sets the named gauge to `value`.
#define RLBLH_OBS_GAUGE(name, value)                              \
  do {                                                            \
    if (::rlblh::obs::enabled()) {                                \
      static ::rlblh::obs::Gauge& rlblh_obs_gauge_ =              \
          ::rlblh::obs::registry().gauge(name);                   \
      rlblh_obs_gauge_.set(static_cast<double>(value));           \
    }                                                             \
  } while (0)

/// Records `value` into the named histogram.
#define RLBLH_OBS_OBSERVE(name, value)                            \
  do {                                                            \
    if (::rlblh::obs::enabled()) {                                \
      static ::rlblh::obs::HistogramMetric& rlblh_obs_hist_ =     \
          ::rlblh::obs::registry().histogram(name);               \
      rlblh_obs_hist_.observe(static_cast<double>(value));        \
    }                                                             \
  } while (0)

#define RLBLH_OBS_CONCAT_INNER(a, b) a##b
#define RLBLH_OBS_CONCAT(a, b) RLBLH_OBS_CONCAT_INNER(a, b)

/// Opens a scoped span named `name` that closes at end of scope.
#define RLBLH_OBS_SPAN(name)                                  \
  ::rlblh::obs::ScopedSpan RLBLH_OBS_CONCAT(rlblh_obs_span_, \
                                            __LINE__) {       \
    name                                                      \
  }

/// Declares a steady-clock time point for RLBLH_OBS_*_NS bookkeeping; a
/// no-op (void) when observability is compiled out or dormant.
#define RLBLH_OBS_NOW(var)                                \
  const auto var = ::rlblh::obs::enabled()                \
                       ? ::std::chrono::steady_clock::now() \
                       : ::std::chrono::steady_clock::time_point {}

/// Adds the nanoseconds elapsed since `since` (an RLBLH_OBS_NOW point) to
/// the named counter.
#define RLBLH_OBS_COUNT_NS_SINCE(name, since)                             \
  do {                                                                    \
    if (::rlblh::obs::enabled()) {                                        \
      RLBLH_OBS_COUNT(name,                                               \
                      ::std::chrono::duration_cast<::std::chrono::nanoseconds>( \
                          ::std::chrono::steady_clock::now() - (since))   \
                          .count());                                      \
    }                                                                     \
  } while (0)

#else  // !RLBLH_OBS_ENABLED

#define RLBLH_OBS_COUNT(name, delta) \
  do {                               \
  } while (0)
#define RLBLH_OBS_GAUGE(name, value) \
  do {                               \
  } while (0)
#define RLBLH_OBS_OBSERVE(name, value) \
  do {                                 \
  } while (0)
#define RLBLH_OBS_SPAN(name) \
  do {                       \
  } while (0)
#define RLBLH_OBS_NOW(var) \
  do {                     \
  } while (0)
#define RLBLH_OBS_COUNT_NS_SINCE(name, since) \
  do {                                        \
  } while (0)

#endif  // RLBLH_OBS_ENABLED
