#include "obs/json_writer.h"

#include <cmath>
#include <cstdio>

#include "util/error.h"

namespace rlblh::obs {

JsonWriter::JsonWriter(std::ostream& out, int base_indent)
    : out_(out), base_indent_(base_indent) {}

void JsonWriter::before_value() {
  if (stack_.empty()) return;  // top-level scalar or root container
  auto& [scope, count] = stack_.back();
  if (scope == Scope::kObject) {
    RLBLH_REQUIRE(key_pending_, "JsonWriter: object member needs a key()");
    key_pending_ = false;
    return;  // key() already emitted the separator and indentation
  }
  if (count > 0) out_ << ',';
  out_ << '\n';
  const int depth = base_indent_ + static_cast<int>(stack_.size());
  for (int i = 0; i < depth * 2; ++i) out_ << ' ';
  ++count;
}

void JsonWriter::key(const std::string& name) {
  RLBLH_REQUIRE(!stack_.empty() && stack_.back().first == Scope::kObject,
                "JsonWriter: key() outside an object");
  RLBLH_REQUIRE(!key_pending_, "JsonWriter: key() twice without a value");
  auto& count = stack_.back().second;
  if (count > 0) out_ << ',';
  out_ << '\n';
  const int depth = base_indent_ + static_cast<int>(stack_.size());
  for (int i = 0; i < depth * 2; ++i) out_ << ' ';
  ++count;
  out_ << '"' << escape(name) << "\": ";
  key_pending_ = true;
}

void JsonWriter::begin_object() {
  before_value();
  out_ << '{';
  stack_.emplace_back(Scope::kObject, 0);
}

void JsonWriter::begin_array() {
  before_value();
  out_ << '[';
  stack_.emplace_back(Scope::kArray, 0);
}

void JsonWriter::end_object() {
  RLBLH_REQUIRE(!stack_.empty() && stack_.back().first == Scope::kObject,
                "JsonWriter: end_object() without begin_object()");
  RLBLH_REQUIRE(!key_pending_, "JsonWriter: dangling key()");
  const int members = stack_.back().second;
  stack_.pop_back();
  if (members > 0) {
    out_ << '\n';
    const int depth = base_indent_ + static_cast<int>(stack_.size());
    for (int i = 0; i < depth * 2; ++i) out_ << ' ';
  }
  out_ << '}';
}

void JsonWriter::end_array() {
  RLBLH_REQUIRE(!stack_.empty() && stack_.back().first == Scope::kArray,
                "JsonWriter: end_array() without begin_array()");
  const int members = stack_.back().second;
  stack_.pop_back();
  if (members > 0) {
    out_ << '\n';
    const int depth = base_indent_ + static_cast<int>(stack_.size());
    for (int i = 0; i < depth * 2; ++i) out_ << ' ';
  }
  out_ << ']';
}

void JsonWriter::value(const std::string& text) {
  before_value();
  out_ << '"' << escape(text) << '"';
}

void JsonWriter::value(const char* text) { value(std::string(text)); }

void JsonWriter::value(double number) {
  before_value();
  if (std::isfinite(number)) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.17g", number);
    out_ << buffer;
  } else {
    out_ << "null";
  }
}

void JsonWriter::value(long long number) {
  before_value();
  out_ << number;
}

void JsonWriter::value(unsigned long long number) {
  before_value();
  out_ << number;
}

void JsonWriter::value(bool flag) {
  before_value();
  out_ << (flag ? "true" : "false");
}

void JsonWriter::null() {
  before_value();
  out_ << "null";
}

void JsonWriter::raw(const std::string& rendered) {
  before_value();
  out_ << rendered;
}

void JsonWriter::finish() {
  RLBLH_REQUIRE(stack_.empty(), "JsonWriter: unclosed containers at finish()");
  out_ << '\n';
}

std::string JsonWriter::escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buffer[8];
      std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out += buffer;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace rlblh::obs
