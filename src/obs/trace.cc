#include "obs/trace.h"

#include <algorithm>
#include <map>
#include <ostream>

#include "obs/json_writer.h"
#include "obs/metrics.h"
#include "obs/obs.h"

namespace rlblh::obs {

namespace {
/// Innermost open span on this thread; 0 at top level.
thread_local std::uint64_t t_current_span = 0;
}  // namespace

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

void Tracer::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  completed_.clear();
  epoch_ = std::chrono::steady_clock::now();
  id_counter_.store(0, std::memory_order_relaxed);
}

std::vector<SpanRecord> Tracer::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return completed_;
}

std::size_t Tracer::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return completed_.size();
}

std::chrono::steady_clock::time_point Tracer::epoch() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return epoch_;
}

void Tracer::record(SpanRecord span) {
  const std::lock_guard<std::mutex> lock(mutex_);
  completed_.push_back(std::move(span));
}

ScopedSpan::ScopedSpan(const char* name) {
  if (!obs::enabled()) return;
  Tracer& tracer = Tracer::instance();
  active_ = true;
  name_ = name;
  id_ = tracer.next_id();
  parent_ = t_current_span;
  t_current_span = id_;
  start_ = std::chrono::steady_clock::now();
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  const auto end = std::chrono::steady_clock::now();
  Tracer& tracer = Tracer::instance();
  SpanRecord span;
  span.id = id_;
  span.parent = parent_;
  span.name = name_;
  span.thread = thread_ordinal();
  const auto epoch = tracer.epoch();
  span.start_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(start_ - epoch)
          .count());
  span.duration_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - start_)
          .count());
  t_current_span = parent_;
  tracer.record(std::move(span));
}

namespace {

void write_span(JsonWriter& json, const SpanRecord& span,
                const std::map<std::uint64_t, std::vector<const SpanRecord*>>&
                    children) {
  json.begin_object();
  json.member("name", span.name);
  json.member("thread", static_cast<unsigned long long>(span.thread));
  json.member("start_ns", static_cast<unsigned long long>(span.start_ns));
  json.member("duration_ns", static_cast<unsigned long long>(span.duration_ns));
  json.key("children");
  json.begin_array();
  const auto it = children.find(span.id);
  if (it != children.end()) {
    for (const SpanRecord* child : it->second) {
      write_span(json, *child, children);
    }
  }
  json.end_array();
  json.end_object();
}

}  // namespace

void write_span_tree_json(std::ostream& out,
                          const std::vector<SpanRecord>& spans,
                          int indent) {
  // Index children by parent and order siblings by id (= start order).
  std::vector<const SpanRecord*> ordered;
  ordered.reserve(spans.size());
  for (const SpanRecord& span : spans) ordered.push_back(&span);
  std::sort(ordered.begin(), ordered.end(),
            [](const SpanRecord* a, const SpanRecord* b) {
              return a->id < b->id;
            });

  std::map<std::uint64_t, std::vector<const SpanRecord*>> children;
  std::map<std::uint64_t, const SpanRecord*> by_id;
  for (const SpanRecord* span : ordered) by_id[span->id] = span;
  std::vector<const SpanRecord*> roots;
  for (const SpanRecord* span : ordered) {
    if (span->parent != 0 && by_id.count(span->parent) != 0) {
      children[span->parent].push_back(span);
    } else {
      // Parent unknown (e.g. still open when the snapshot was taken):
      // surface the span as a root rather than dropping it.
      roots.push_back(span);
    }
  }

  JsonWriter json(out, indent);
  json.begin_array();
  for (const SpanRecord* root : roots) {
    write_span(json, *root, children);
  }
  json.end_array();
}

}  // namespace rlblh::obs
