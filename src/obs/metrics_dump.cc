#include "obs/metrics_dump.h"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace rlblh::obs {

namespace {

std::string format_number(double value, int precision = 4) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*g", precision, value);
  return buffer;
}

/// Nanoseconds rendered in the largest unit that keeps >= 1 digit before
/// the point: "1.23 s", "45.6 ms", "789 ns".
std::string format_duration_ns(double ns) {
  char buffer[64];
  if (ns >= 1e9) {
    std::snprintf(buffer, sizeof(buffer), "%.2f s", ns / 1e9);
  } else if (ns >= 1e6) {
    std::snprintf(buffer, sizeof(buffer), "%.2f ms", ns / 1e6);
  } else if (ns >= 1e3) {
    std::snprintf(buffer, sizeof(buffer), "%.2f us", ns / 1e3);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.0f ns", ns);
  }
  return buffer;
}

/// Minimal aligned-table rendering (kept local so the obs library stays
/// dependency-free below rlblh_util, which links against it).
void print_table(std::ostream& out,
                 const std::vector<std::string>& header,
                 const std::vector<std::vector<std::string>>& rows) {
  std::vector<std::size_t> widths(header.size());
  for (std::size_t c = 0; c < header.size(); ++c) {
    widths[c] = header[c].size();
  }
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "" : "  ") << row[c]
          << std::string(widths[c] - row[c].size(), ' ');
    }
    out << '\n';
  };
  print_row(header);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c == 0 ? 0 : 2);
  }
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows) print_row(row);
}

}  // namespace

void dump_metrics(std::ostream& out) {
  const auto counters = registry().counter_values();
  if (!counters.empty()) {
    out << "counters\n";
    std::vector<std::vector<std::string>> rows;
    rows.reserve(counters.size());
    for (const auto& [name, value] : counters) {
      rows.push_back({name, std::to_string(value)});
    }
    print_table(out, {"name", "value"}, rows);
    out << '\n';
  }

  const auto gauges = registry().gauge_values();
  if (!gauges.empty()) {
    out << "gauges\n";
    std::vector<std::vector<std::string>> rows;
    rows.reserve(gauges.size());
    for (const auto& [name, value] : gauges) {
      rows.push_back({name, format_number(value, 6)});
    }
    print_table(out, {"name", "value"}, rows);
    out << '\n';
  }

  const auto histograms = registry().histogram_values();
  if (!histograms.empty()) {
    out << "histograms\n";
    std::vector<std::vector<std::string>> rows;
    rows.reserve(histograms.size());
    for (const auto& [name, snap] : histograms) {
      const bool ns = name.size() > 3 &&
                      name.compare(name.size() - 3, 3, "_ns") == 0;
      const auto fmt = [&](double v) {
        return ns ? format_duration_ns(v) : format_number(v);
      };
      rows.push_back({name, std::to_string(snap.count), fmt(snap.mean()),
                      fmt(snap.quantile(0.50)), fmt(snap.quantile(0.90)),
                      fmt(snap.quantile(0.99)), fmt(snap.min),
                      fmt(snap.max)});
    }
    print_table(out, {"name", "count", "mean", "p50", "p90", "p99", "min",
                      "max"},
                rows);
    out << '\n';
  }
}

void dump_spans(std::ostream& out) {
  std::vector<SpanRecord> spans = Tracer::instance().snapshot();
  if (spans.empty()) return;
  std::sort(spans.begin(), spans.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              return a.id < b.id;
            });
  std::map<std::uint64_t, std::vector<const SpanRecord*>> children;
  std::map<std::uint64_t, const SpanRecord*> by_id;
  for (const SpanRecord& span : spans) by_id[span.id] = &span;
  std::vector<const SpanRecord*> roots;
  for (const SpanRecord& span : spans) {
    if (span.parent != 0 && by_id.count(span.parent) != 0) {
      children[span.parent].push_back(&span);
    } else {
      roots.push_back(&span);
    }
  }

  out << "spans\n";
  const std::function<void(const SpanRecord&, int)> print_span =
      [&](const SpanRecord& span, int depth) {
        out << std::string(static_cast<std::size_t>(depth) * 2, ' ')
            << span.name << "  "
            << format_duration_ns(static_cast<double>(span.duration_ns))
            << "  [thread " << span.thread << "]\n";
        const auto it = children.find(span.id);
        if (it == children.end()) return;
        // Collapse large fan-outs (per-day spans): print the first few and
        // summarize the rest per name.
        constexpr std::size_t kMaxShown = 8;
        std::size_t shown = 0;
        std::map<std::string, std::pair<std::size_t, double>> elided;
        for (const SpanRecord* child : it->second) {
          if (shown < kMaxShown) {
            print_span(*child, depth + 1);
            ++shown;
          } else {
            auto& [count, total_ns] = elided[child->name];
            ++count;
            total_ns += static_cast<double>(child->duration_ns);
          }
        }
        for (const auto& [name, agg] : elided) {
          out << std::string(static_cast<std::size_t>(depth + 1) * 2, ' ')
              << "... " << agg.first << " more '" << name << "' totalling "
              << format_duration_ns(agg.second) << '\n';
        }
      };
  for (const SpanRecord* root : roots) print_span(*root, 0);
  out << '\n';
}

void dump_all(std::ostream& out) {
  out << "== observability =========================================\n";
  dump_metrics(out);
  dump_spans(out);
}

}  // namespace rlblh::obs
