// Run manifests: one RUN_<name>.json per observed run, carrying everything
// needed to understand it after the fact — the command line, the run's
// configuration, build provenance (git sha, compiler, build type), every
// registered metric and the full span tree.
//
// Schema (rlblh-run-v1):
//   {
//     "schema": "rlblh-run-v1",
//     "name": "<run name>",
//     "command": ["argv0", ...],
//     "build": {"git_sha", "compiler", "build_type", "obs_compiled"},
//     "config": {"<key>": "<value>", ...},
//     "counters": {"<name>": <integer>, ...},
//     "gauges": {"<name>": <double>, ...},
//     "histograms": {"<name>": {"count", "sum", "mean", "min", "max",
//                               "p50", "p90", "p99",
//                               "buckets": [[upper_bound, count], ...]}},
//     "spans": [{"name", "thread", "start_ns", "duration_ns",
//                "children": [...]}, ...]
//   }
// Histogram "buckets" lists only non-empty buckets; the last bucket's upper
// bound is serialized as null (unbounded).
#pragma once

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace rlblh::obs {

/// Identity and configuration of the run being manifested.
struct RunInfo {
  std::string name;                ///< "fig6_convergence", "simulate_cli", ...
  std::vector<std::string> command;  ///< argv as invoked (may be empty)
  /// Free-form configuration pairs, serialized in the given order.
  std::vector<std::pair<std::string, std::string>> config;
};

/// Writes the manifest for the current registry/tracer state to `out`.
void write_manifest(std::ostream& out, const RunInfo& info);

/// Writes the manifest to `path`; returns false (after printing to stderr)
/// when the file cannot be opened.
bool write_manifest_file(const std::string& path, const RunInfo& info);

/// Resolves the manifest output path: the RLBLH_OBS_OUT environment
/// variable when set and non-empty, else RUN_<name>.json in the working
/// directory.
std::string default_manifest_path(const std::string& name);

/// Build provenance baked in at compile time.
std::string build_git_sha();
std::string build_compiler();
std::string build_type();

}  // namespace rlblh::obs
