#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace rlblh::obs {

std::uint32_t thread_ordinal() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t ordinal =
      next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

// --- Counter --------------------------------------------------------------

long long Counter::value() const {
  long long total = 0;
  for (const Shard& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::reset() {
  for (Shard& shard : shards_) {
    shard.value.store(0, std::memory_order_relaxed);
  }
}

// --- Gauge ----------------------------------------------------------------

void Gauge::reset() {
  value_.store(0.0, std::memory_order_relaxed);
  written_.store(false, std::memory_order_relaxed);
}

// --- HistogramMetric ------------------------------------------------------

double HistogramMetric::bucket_upper(std::size_t i) {
  if (i + 1 >= kBuckets) return std::numeric_limits<double>::infinity();
  return std::ldexp(1.0, static_cast<int>(i) - kZeroBias);
}

std::size_t HistogramMetric::bucket_of(double value) {
  if (!(value > 0.0)) return 0;  // <= 0 and NaN land in the bottom bucket
  int exponent = 0;
  // frexp: value = m * 2^exponent with m in [0.5, 1) => value <= 2^exponent.
  (void)std::frexp(value, &exponent);
  const long bucket = static_cast<long>(exponent) + kZeroBias;
  if (bucket < 0) return 0;
  if (bucket >= static_cast<long>(kBuckets)) return kBuckets - 1;
  return static_cast<std::size_t>(bucket);
}

void HistogramMetric::observe(double value) {
  Shard& shard = shards_[thread_ordinal() % kMetricShards];
  shard.counts[bucket_of(value)].fetch_add(1, std::memory_order_relaxed);
  shard.sum.fetch_add(value, std::memory_order_relaxed);

  if (!extremes_set_.load(std::memory_order_relaxed)) {
    // First observation seeds both extremes; losing the race just means
    // falling through to the CAS loops below.
    bool expected = false;
    if (extremes_set_.compare_exchange_strong(expected, true,
                                              std::memory_order_relaxed)) {
      min_.store(value, std::memory_order_relaxed);
      max_.store(value, std::memory_order_relaxed);
      return;
    }
  }
  double seen = min_.load(std::memory_order_relaxed);
  while (value < seen &&
         !min_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

double HistogramMetric::Snapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const auto rank = static_cast<std::uint64_t>(
      q * static_cast<double>(count > 0 ? count - 1 : 0));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    cumulative += buckets[i];
    if (cumulative > rank) {
      // Clamp to the observed extremes so estimates never exceed max (the
      // bucket upper bound can, by up to one bucket width).
      const double upper = bucket_upper(i);
      return std::isfinite(upper) ? std::min(std::max(upper, min), max) : max;
    }
  }
  return max;
}

HistogramMetric::Snapshot HistogramMetric::snapshot() const {
  Snapshot snap;
  for (const Shard& shard : shards_) {
    for (std::size_t i = 0; i < kBuckets; ++i) {
      const std::uint64_t c = shard.counts[i].load(std::memory_order_relaxed);
      snap.buckets[i] += c;
      snap.count += c;
    }
    snap.sum += shard.sum.load(std::memory_order_relaxed);
  }
  if (extremes_set_.load(std::memory_order_relaxed)) {
    snap.min = min_.load(std::memory_order_relaxed);
    snap.max = max_.load(std::memory_order_relaxed);
  }
  return snap;
}

void HistogramMetric::reset() {
  for (Shard& shard : shards_) {
    for (auto& count : shard.counts) {
      count.store(0, std::memory_order_relaxed);
    }
    shard.sum.store(0.0, std::memory_order_relaxed);
  }
  min_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
  extremes_set_.store(false, std::memory_order_relaxed);
}

// --- MetricRegistry -------------------------------------------------------

Counter& MetricRegistry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricRegistry::gauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

HistogramMetric& MetricRegistry::histogram(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<HistogramMetric>();
  return *slot;
}

void MetricRegistry::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, metric] : counters_) metric->reset();
  for (auto& [name, metric] : gauges_) metric->reset();
  for (auto& [name, metric] : histograms_) metric->reset();
}

std::vector<std::pair<std::string, long long>>
MetricRegistry::counter_values() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, long long>> out;
  out.reserve(counters_.size());
  for (const auto& [name, metric] : counters_) {
    out.emplace_back(name, metric->value());
  }
  return out;
}

std::vector<std::pair<std::string, double>> MetricRegistry::gauge_values()
    const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, metric] : gauges_) {
    if (metric->written()) out.emplace_back(name, metric->value());
  }
  return out;
}

std::vector<std::pair<std::string, HistogramMetric::Snapshot>>
MetricRegistry::histogram_values() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, HistogramMetric::Snapshot>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, metric] : histograms_) {
    out.emplace_back(name, metric->snapshot());
  }
  return out;
}

MetricRegistry& registry() {
  static MetricRegistry instance;
  return instance;
}

}  // namespace rlblh::obs
