// StreamEngine — the push-driven twin of SimEngine's day loop.
//
// SimEngine pulls a whole day of usage from a TraceSource and runs the
// measurement-interval loop over it in one call. The serving daemon cannot
// do that: meter readings arrive one interval at a time over a socket, and
// the policy must commit its pulse magnitude at each block boundary before
// the block's usage exists anywhere. StreamEngine inverts the control flow —
// begin_day() opens a day, push() feeds one interval of usage, finish_day()
// closes it — while evaluating exactly the expressions of SimEngine's day
// loop in exactly the same order, so a streamed day and a batch day over the
// same inputs produce bitwise-identical DayResults and leave the policy,
// battery and RNG in bitwise-identical states (pinned by
// stream_diff_proptest).
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "battery/battery.h"
#include "core/policy.h"
#include "pricing/tou.h"
#include "sim/day_result.h"
#include "sim/invariants.h"

namespace rlblh {

/// Incremental per-interval driver over borrowed household state.
class StreamEngine {
 public:
  /// Opens a day: runs policy.begin_day(prices) and arms the interval
  /// cursor. The borrowed prices/battery/policy must outlive the open day
  /// (until finish_day() or abandon_day()). Throws if a day is already
  /// open.
  void begin_day(const TouSchedule& prices, Battery& battery,
                 BlhPolicy& policy);

  /// Feeds the next interval's usage x_n (finite, >= 0). At block
  /// boundaries the policy's fill_block/observe_block run exactly as
  /// SimEngine would run them. Throws when no day is open or the day is
  /// already full.
  void push(double usage);

  /// Closes the day: requires every interval pushed, runs policy.end_day()
  /// and returns the day's record (valid until the next begin_day on this
  /// engine). Runs the invariant checker when enabled.
  const DayResult& finish_day();

  /// Drops an open day without running end_day(). The policy is left with
  /// its day open — callers that abandon a day must discard the policy (the
  /// daemon's restart path instead rebuilds from the last checkpoint).
  void abandon_day();

  /// True between begin_day() and finish_day()/abandon_day().
  bool day_open() const { return day_open_; }

  /// Index of the next interval push() will consume (0-based).
  std::size_t next_interval() const { return n_; }

  /// Length of the open day in intervals (0 when no day is open).
  std::size_t intervals() const { return day_open_ ? n_m_ : 0; }

  /// Per-day invariant enforcement, as SimEngine::enable_invariant_checks.
  void enable_invariant_checks(const InvariantCheckConfig& config);
  void disable_invariant_checks() { invariant_config_.reset(); }
  bool invariant_checks_enabled() const {
    return invariant_config_.has_value();
  }

 private:
  std::optional<InvariantCheckConfig> invariant_config_;
  DayResult scratch_;  ///< day record reused across days

  // Borrowed for the duration of an open day.
  const TouSchedule* prices_ = nullptr;
  Battery* battery_ = nullptr;
  BlhPolicy* policy_ = nullptr;

  bool day_open_ = false;
  std::size_t n_m_ = 0;   ///< intervals in the open day
  std::size_t n_ = 0;     ///< next interval to consume
  std::size_t seg_ = 0;   ///< current price segment (blocked path)
  std::size_t pulse_ = 0;
  bool passthrough_ = false;
  std::size_t violations_before_ = 0;

  // Open pulse block (blocked path only).
  std::size_t block_n0_ = 0;
  std::size_t block_end_ = 0;
  double block_y_ = 0.0;
  double block_level_ = 0.0;  ///< passthrough: level captured at block start
  std::size_t blocks_ = 0;

  double savings_cents_ = 0.0;
  double bill_cents_ = 0.0;
  double usage_cost_cents_ = 0.0;
};

}  // namespace rlblh
