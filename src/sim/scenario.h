// Scenario assembly: from a spec string to a runnable experiment.
//
// A ScenarioSpec is the complete, serializable description of one run —
// which policy, household and pricing plan (by registry name), the shared
// geometry (battery, nd), the RNG seeds and the train/eval schedule:
//
//   policy=rlblh;household=weekday_heavy;pricing=tou2;battery=13.5;seed=7
//
// Dotted keys (`policy.alpha=0.01`, `household.scale=1.2`,
// `pricing.rate=11`) are routed to the named component's factory; every
// other key must be one of the top-level keys below. The spec round-trips
// through canonical(): parse(s.canonical()) describes the same run.
//
// Component construction goes through the per-family registries
// (policy_registry, household_registry, pricing_registry), so this is the
// single place that decides how the geometry is shared between them:
// the policy's parameter bag receives battery/nd/seed before the dotted
// `policy.*` overrides, the trace source is seeded with the household seed
// (hseed, default seed + 1000 — the convention simulate_cli has always
// used), and the battery starts at half charge.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "battery/battery.h"
#include "core/policy.h"
#include "core/registry.h"
#include "meter/household.h"
#include "meter/trace.h"
#include "pricing/tou.h"
#include "sim/batch_engine.h"
#include "sim/engine.h"
#include "sim/experiment.h"
#include "sim/simulator.h"

namespace rlblh {

/// Parsed scenario description. Field defaults mirror simulate_cli's
/// historical defaults, so an empty spec is the paper's small smoke run.
struct ScenarioSpec {
  std::string policy = "rlblh";       ///< policy registry name
  std::string household = "default";  ///< household registry name (or csv)
  std::string pricing = "srp";        ///< pricing registry name
  double battery_kwh = 5.0;           ///< b_M; battery starts at b_M / 2
  std::size_t nd = 15;                ///< n_D, minutes per decision interval
  std::uint64_t seed = 7;             ///< policy/exploration seed
  std::optional<std::uint64_t> hseed; ///< household seed; default seed + 1000
  std::size_t train_days = 30;        ///< days run before measurement
  std::size_t eval_days = 30;         ///< days over which metrics accumulate
  std::size_t mi_levels = 8;          ///< MI quantization levels

  SpecParams policy_params;     ///< dotted `policy.*` slice
  SpecParams household_params;  ///< dotted `household.*` slice
  SpecParams pricing_params;    ///< dotted `pricing.*` slice

  /// Effective household/trace seed.
  std::uint64_t household_seed() const { return hseed.value_or(seed + 1000); }

  /// Parses the `k=v;k2=v2` grammar. Unknown top-level keys and unknown
  /// dotted prefixes raise ConfigError.
  static ScenarioSpec parse(const std::string& spec);

  /// Canonical spec string: parse(canonical()) describes the same run.
  /// hseed is printed only when it was set explicitly, preserving the
  /// seed + 1000 coupling under seed changes.
  std::string canonical() const;
};

/// The spec's price schedule, via the pricing registry.
TouSchedule make_scenario_pricing(const ScenarioSpec& spec);

/// The spec's trace source, via the household registry, seeded with the
/// household seed.
std::unique_ptr<TraceSource> make_scenario_source(const ScenarioSpec& spec);

/// The spec's policy, via the policy registry, with the shared geometry
/// (battery, nd, seed) merged into the parameter bag before the dotted
/// `policy.*` overrides (so `policy.seed=...` wins over the top-level seed).
std::unique_ptr<BlhPolicy> make_scenario_policy(const ScenarioSpec& spec);

/// Pre-trains policies that need an offline usage model before they can act
/// (the mdp baseline): feeds max(train_days, 1) days drawn from an
/// independent trainer stream — derive_stream_seed(household_seed(), 1), so
/// the model never consumes the evaluation household's own days — then
/// solves. No-op for every online policy.
void pretrain_if_needed(const ScenarioSpec& spec, const TouSchedule& prices,
                        BlhPolicy& policy);

/// A fully assembled scenario: the spec plus its live components. Movable;
/// the policy outlives the simulator runs that borrow it.
struct Scenario {
  ScenarioSpec spec;
  std::unique_ptr<BlhPolicy> policy;
  Simulator simulator;

  /// The policy downcast to a concrete type (nullptr when it is not one),
  /// for callers needing policy-specific hooks (weights I/O, day stats).
  template <typename T>
  T* policy_as() {
    return dynamic_cast<T*>(policy.get());
  }
};

/// Builds the scenario's components through the registries.
Scenario build_scenario(const ScenarioSpec& spec);

/// Runs the spec's full schedule on an assembled scenario: offline
/// pre-training when needed, train_days of (online-learning) days, then
/// eval_days accumulated into the paper's metrics.
EvaluationResult run_scenario(Scenario& scenario);

/// As run_scenario, but constructs every per-run component itself and
/// borrows the price schedule — the fleet path, where one immutable
/// TouSchedule is shared by every household on the same plan. Bitwise
/// equivalent to build_scenario + run_scenario for the same spec.
EvaluationResult run_spec(const ScenarioSpec& spec, const TouSchedule& prices);

/// The seed-independent part of a spec, resolved once and shared by every
/// household that runs the same spec text (fleets repeat a handful of spec
/// blueprints across thousands of households, so registry lookup, preset
/// construction and geometry merging must not be per-household work).
struct ScenarioBlueprint {
  /// Resolved household preset with `household.*` overrides applied;
  /// nullopt for csv replay, which has no synthetic config (csv runs fall
  /// back to the registry factory, which ignores the seed anyway).
  std::optional<HouseholdConfig> household;
  /// Policy parameter bag with the shared geometry (battery, nd) and the
  /// dotted `policy.*` overrides merged. The `seed` entry is a placeholder
  /// unless the spec pinned it via `policy.seed=...`.
  SpecParams policy_bag;
  /// True when `policy.seed` was given explicitly — the per-household
  /// policy seed must NOT overwrite it (matching make_scenario_policy's
  /// merge order, where dotted overrides win over the top-level seed).
  bool policy_seed_pinned = false;
};

/// Resolves the spec's seed-independent state. Pure function of the spec's
/// non-seed fields: two specs differing only in seed/hseed share one
/// blueprint.
ScenarioBlueprint make_scenario_blueprint(const ScenarioSpec& spec);

/// The blueprint's trace source for one household seed. Bitwise equivalent
/// to make_trace_source(spec.household, spec.household_params, hseed).
std::unique_ptr<TraceSource> make_blueprint_source(const ScenarioSpec& spec,
                                                   const ScenarioBlueprint& bp,
                                                   std::uint64_t hseed);

/// Reusable per-worker scratch for repeated run_spec/run_blueprint calls:
/// the SimEngine (whose day buffers persist across households) and the
/// EvaluationAccumulator (whose MI tables are sparse-reset between
/// households). One arena serves one worker thread; runs borrow it
/// sequentially. Every buffer handed out is either fully overwritten per
/// day (engine scratch) or reset to fresh-constructed state per run
/// (accumulator), so reuse cannot leak state between households — the
/// chunking-invariance proptests pin this.
class RunArena {
 public:
  /// The arena's engine. Day buffers are reused across calls; SimEngine's
  /// contract is that every slot is rewritten each day.
  SimEngine& engine() { return engine_; }

  /// An accumulator reset for the given geometry: fresh state, buffers
  /// reused when the geometry matches the previous run's.
  EvaluationAccumulator& accumulator(std::size_t intervals,
                                     std::size_t mi_levels, double usage_cap);

  /// The arena's lockstep batch engine (SoA day buffers reused across
  /// batches, like the scalar engine's scratch).
  BatchEngine& batch_engine() { return batch_engine_; }

  /// The arena's SoA battery state; run_blueprint_batch resets it per batch.
  BatteryLanes& battery_lanes() { return battery_lanes_; }

  /// Lane `lane`'s accumulator, reset for the given geometry. A batched run
  /// holds one accumulator per lane live at once — at default geometry
  /// (1440 intervals, 8 MI levels) each carries ~24 MB of MI tables, so a
  /// W-lane arena costs ~W x 24 MB; that is the memory price of batching
  /// and why FleetOptions::batch_width defaults to scalar.
  EvaluationAccumulator& lane_accumulator(std::size_t lane,
                                          std::size_t intervals,
                                          std::size_t mi_levels,
                                          double usage_cap);

 private:
  SimEngine engine_;
  std::optional<EvaluationAccumulator> accumulator_;
  BatchEngine batch_engine_;
  BatteryLanes battery_lanes_;
  std::vector<std::unique_ptr<EvaluationAccumulator>> lane_accumulators_;
};

/// Runs one household from a resolved blueprint: the blueprint supplies the
/// spec-shared state, `policy_seed`/`household_seed` the per-household RNG
/// streams, and `arena` the reusable scratch. Bitwise equivalent to
/// run_spec on the spec with seed = policy_seed and hseed = household_seed.
EvaluationResult run_blueprint(const ScenarioSpec& spec,
                               const ScenarioBlueprint& bp,
                               const TouSchedule& prices,
                               std::uint64_t policy_seed,
                               std::uint64_t household_seed, RunArena& arena);

/// run_spec reusing a caller-owned arena instead of per-call scratch.
EvaluationResult run_spec(const ScenarioSpec& spec, const TouSchedule& prices,
                          RunArena& arena);

/// Runs W households of one blueprint in lockstep through the arena's
/// BatchEngine: `policy_seeds`, `household_seeds` and `out` are
/// index-aligned, one lane per household, all of size W >= 1. out[k] is
/// bitwise equal to run_blueprint(spec, bp, prices, policy_seeds[k],
/// household_seeds[k], arena) — the batch engine's lane contract plus
/// per-lane accumulators make batching an execution detail, which is what
/// lets the fleet group same-blueprint households freely. Policies without
/// pulse-block support (pulse_width() == 0) fall back to per-lane scalar
/// runs through the same code path run_blueprint uses.
void run_blueprint_batch(const ScenarioSpec& spec, const ScenarioBlueprint& bp,
                         const TouSchedule& prices,
                         std::span<const std::uint64_t> policy_seeds,
                         std::span<const std::uint64_t> household_seeds,
                         RunArena& arena, std::span<EvaluationResult> out);

}  // namespace rlblh
