// Property-test domains over the library's configuration types.
//
// These pair with the generic runner in util/proptest.h: each domain samples
// a *valid* configuration from the documented parameter space (invalid
// inputs are the config unit tests' job), proposes strictly simpler
// candidates for failure shrinking, and prints a value compactly for the
// reproduction report. They live in the sim layer because generating a
// TouSchedule or HouseholdConfig needs the pricing and meter libraries,
// which sit above util in the dependency tree.
#pragma once

#include <cstddef>
#include <string>

#include "core/config.h"
#include "meter/household.h"
#include "meter/trace.h"
#include "pricing/tou.h"
#include "util/proptest.h"

namespace rlblh::proptest {

/// Randomized RL-BLH geometry + learning knobs. Day length varies, n_D may
/// or may not divide n_M (the last pulse is then truncated), the battery is
/// always large enough for the Section III-B guard bands. REUSE/SYN are off
/// by default (their replays dominate runtime); suites that exercise them
/// flip the flags on the sampled value.
Domain<RlBlhConfig> rlblh_config_domain();

/// Randomized household behaviour matched to a day length: occupancy times
/// are scaled to the day so the config always validates.
Domain<HouseholdConfig> household_config_domain(std::size_t intervals,
                                                double usage_cap);

/// Random price schedule of one of the supported shapes (flat, two-zone,
/// three-zone, hourly RTP) over the given day length.
TouSchedule gen_tou_schedule(std::size_t intervals, Rng& rng);

/// Random usage trace with mixed structure (quiet base load, plateaus,
/// spikes, dead stretches), every value in [0, cap].
DayTrace gen_usage_trace(std::size_t intervals, double cap, Rng& rng);

/// One-line renderings used in failure reports (also handy in test logs).
std::string describe(const RlBlhConfig& config);
std::string describe(const HouseholdConfig& config);

}  // namespace rlblh::proptest
