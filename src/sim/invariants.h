// Runtime checker for the paper's system-model invariants.
//
// The RL-BLH guarantees are stated as invariants (Section II, III-B):
// the battery level stays in [0, b_M], meter readings form rectangular
// pulses of width n_D, energy is conserved across a lossless day, the
// savings accounting satisfies S + bill == usage cost with
// S = sum r_n (x_n - y_n), and near the battery bounds only the safe pulse
// magnitudes are scheduled. The checker verifies all of them per measurement
// interval over a completed day. It is used three ways:
//   * property suites run randomized configs through it (tests/proptest),
//   * Simulator::run_day enforces it when enable_invariant_checks() was
//     called (a debug/config switch; off by default, zero cost when off),
//   * examples/simulate_cli --check-invariants turns it on end to end.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "pricing/tou.h"
#include "sim/day_result.h"
#include "util/error.h"

namespace rlblh {

/// Thrown by InvariantChecker::enforce_day; carries every violation found.
class InvariantViolationError : public LogicError {
 public:
  explicit InvariantViolationError(const std::string& what)
      : LogicError(what) {}
};

/// Which invariants to verify and against what geometry.
struct InvariantCheckConfig {
  double battery_capacity = 0.0;  ///< b_M; the bound on recorded levels
  /// x_M; 0 disables the reading-range check (unknown cap).
  double usage_cap = 0.0;
  /// n_D; 0 disables the pulse-shape and feasible-action checks (the policy
  /// under test is not pulse-shaped). When n_D does not divide the day
  /// length the last pulse is expected truncated.
  std::size_t decision_interval = 0;
  /// True when the battery is lossless AND the policy's feasibility rule is
  /// expected to hold: requires zero clipping events, exact energy
  /// conservation, and worst-case-safe pulse magnitudes.
  bool expect_feasible = true;
  /// Absolute tolerance for the floating-point comparisons.
  double tolerance = 1e-9;
};

/// One detected violation.
struct InvariantViolation {
  enum class Kind {
    kBatteryBound,        ///< recorded level outside [0, b_M]
    kReadingRange,        ///< reading outside [0, x_M]
    kPulseShape,          ///< reading changed inside a decision interval
    kFeasibleAction,      ///< pulse could overflow/drain under worst case
    kEnergyConservation,  ///< sum(y) - sum(x) != level delta
    kSavingsAccounting,   ///< S != sum r_n (x_n - y_n) or S + bill != cost
    kClippingOccurred,    ///< battery clipped although feasibility expected
  };

  Kind kind;
  std::size_t interval;  ///< offending interval, or kWholeDay
  std::string detail;    ///< human-readable description with the numbers

  static constexpr std::size_t kWholeDay = static_cast<std::size_t>(-1);
};

/// Stable name of a violation kind (for reports and tests).
const char* invariant_kind_name(InvariantViolation::Kind kind);

/// Verifies a completed day against the configured invariants.
class InvariantChecker {
 public:
  /// Validates the config (capacity > 0, tolerance >= 0).
  explicit InvariantChecker(InvariantCheckConfig config);

  /// Checks every enabled invariant over the day. `end_level` is the battery
  /// level after the day's last interval (the simulator's current level).
  /// Returns all violations found, empty when the day is clean.
  std::vector<InvariantViolation> check_day(const DayResult& day,
                                            const TouSchedule& prices,
                                            double end_level) const;

  /// Like check_day but throws InvariantViolationError listing every
  /// violation when any is found.
  void enforce_day(const DayResult& day, const TouSchedule& prices,
                   double end_level) const;

  /// Config in effect.
  const InvariantCheckConfig& config() const { return config_; }

 private:
  InvariantCheckConfig config_;
};

}  // namespace rlblh
