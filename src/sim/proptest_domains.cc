#include "sim/proptest_domains.h"

#include <algorithm>
#include <sstream>
#include <vector>

namespace rlblh::proptest {

namespace {

/// Keeps only candidates that still validate and actually differ from the
/// original (a no-op candidate would stall the greedy shrink walk).
template <typename Config, typename Mutate>
void push_shrunk(std::vector<Config>* out, const Config& from, Mutate mutate) {
  Config candidate = from;
  mutate(candidate);
  try {
    candidate.validate();
  } catch (const std::exception&) {
    return;
  }
  out->push_back(std::move(candidate));
}

}  // namespace

Domain<RlBlhConfig> rlblh_config_domain() {
  Domain<RlBlhConfig> domain;
  domain.generate = [](Rng& rng) {
    RlBlhConfig config;
    config.intervals_per_day =
        static_cast<std::size_t>(rng.uniform_int(120, 1440));
    config.decision_interval = static_cast<std::size_t>(rng.uniform_int(
        1, static_cast<int>(std::min<std::size_t>(60, config.intervals_per_day / 2))));
    config.usage_cap = rng.uniform(0.02, 0.15);
    config.num_actions = static_cast<std::size_t>(rng.uniform_int(2, 12));
    // Guard bands need b_M >= 2 * x_M * n_D; sample headroom above that.
    const double min_capacity =
        2.0 * config.usage_cap * static_cast<double>(config.decision_interval);
    config.battery_capacity = min_capacity * rng.uniform(1.0, 4.0);
    config.alpha = rng.uniform(0.005, 0.3);
    config.alpha_floor = config.alpha * rng.uniform(0.0, 0.5);
    config.epsilon = rng.uniform(0.0, 0.3);
    config.epsilon_floor = config.epsilon * rng.uniform(0.0, 0.5);
    config.decay_hyperparams = rng.bernoulli(0.8);
    config.decay_by_episodes = rng.bernoulli(0.2);
    config.double_q = rng.bernoulli(0.3);
    config.replay_random_start = rng.bernoulli(0.8);
    config.enable_reuse = false;
    config.enable_synthetic = false;
    config.seed = rng.engine()();
    return config;
  };
  domain.shrink = [](const RlBlhConfig& from) {
    std::vector<RlBlhConfig> out;
    // Stay within the generator's range (>= 120 intervals) so a shrunk
    // reproduction still pairs with every consumer of the domain.
    if (from.intervals_per_day > 120) {
      push_shrunk(&out, from, [&](RlBlhConfig& c) {
        c.intervals_per_day = std::max<std::size_t>(120, c.intervals_per_day / 2);
        c.decision_interval =
            std::min(c.decision_interval, c.intervals_per_day / 2);
      });
    }
    if (from.decision_interval > 1) {
      push_shrunk(&out, from, [](RlBlhConfig& c) { c.decision_interval = 1; });
      push_shrunk(&out, from,
                  [](RlBlhConfig& c) { c.decision_interval /= 2; });
    }
    if (from.num_actions > 2) {
      push_shrunk(&out, from, [](RlBlhConfig& c) { c.num_actions = 2; });
    }
    const double min_capacity =
        2.0 * from.usage_cap * static_cast<double>(from.decision_interval);
    if (from.battery_capacity > min_capacity * 1.0001) {
      push_shrunk(&out, from, [&](RlBlhConfig& c) {
        c.battery_capacity = min_capacity;
      });
    }
    if (from.double_q) {
      push_shrunk(&out, from, [](RlBlhConfig& c) { c.double_q = false; });
    }
    if (from.decay_by_episodes) {
      push_shrunk(&out, from,
                  [](RlBlhConfig& c) { c.decay_by_episodes = false; });
    }
    if (from.enable_reuse || from.enable_synthetic) {
      push_shrunk(&out, from, [](RlBlhConfig& c) {
        c.enable_reuse = false;
        c.enable_synthetic = false;
      });
    }
    if (from.epsilon > 0.0) {
      push_shrunk(&out, from, [](RlBlhConfig& c) {
        c.epsilon = 0.0;
        c.epsilon_floor = 0.0;
      });
    }
    if (from.seed != 1) {
      push_shrunk(&out, from, [](RlBlhConfig& c) { c.seed = 1; });
    }
    return out;
  };
  domain.describe = [](const RlBlhConfig& c) { return describe(c); };
  return domain;
}

Domain<HouseholdConfig> household_config_domain(std::size_t intervals,
                                                double usage_cap) {
  Domain<HouseholdConfig> domain;
  domain.generate = [intervals, usage_cap](Rng& rng) {
    HouseholdConfig config;
    config.intervals = intervals;
    config.usage_cap = usage_cap;
    const double day = static_cast<double>(intervals);
    config.wake_mean = day * rng.uniform(0.15, 0.30);
    config.leave_mean = config.wake_mean + day * rng.uniform(0.03, 0.10);
    config.back_mean = config.leave_mean + day * rng.uniform(0.25, 0.45);
    config.sleep_mean =
        config.back_mean + (day - config.back_mean) * rng.uniform(0.3, 0.95);
    config.wake_sigma = day * rng.uniform(0.0, 0.03);
    config.leave_sigma = day * rng.uniform(0.0, 0.03);
    config.back_sigma = day * rng.uniform(0.0, 0.03);
    config.sleep_sigma = day * rng.uniform(0.0, 0.03);
    config.workday_probability = rng.uniform(0.0, 1.0);
    config.vacancy_probability = rng.uniform(0.0, 0.15);
    config.appliance_scale = rng.uniform(0.5, 2.0);
    config.hvac_setback = rng.uniform(0.0, 1.0);
    config.ev_probability = rng.bernoulli(0.3) ? rng.uniform(0.0, 1.0) : 0.0;
    config.ev_power = rng.uniform(0.01, 0.05);
    return config;
  };
  domain.shrink = [](const HouseholdConfig& from) {
    std::vector<HouseholdConfig> out;
    if (from.wake_sigma > 0.0 || from.leave_sigma > 0.0 ||
        from.back_sigma > 0.0 || from.sleep_sigma > 0.0) {
      push_shrunk(&out, from, [](HouseholdConfig& c) {
        c.wake_sigma = c.leave_sigma = c.back_sigma = c.sleep_sigma = 0.0;
      });
    }
    if (from.vacancy_probability > 0.0) {
      push_shrunk(&out, from,
                  [](HouseholdConfig& c) { c.vacancy_probability = 0.0; });
    }
    if (from.ev_probability > 0.0) {
      push_shrunk(&out, from,
                  [](HouseholdConfig& c) { c.ev_probability = 0.0; });
    }
    if (from.appliance_scale != 1.0) {
      push_shrunk(&out, from,
                  [](HouseholdConfig& c) { c.appliance_scale = 1.0; });
    }
    return out;
  };
  domain.describe = [](const HouseholdConfig& c) { return describe(c); };
  return domain;
}

TouSchedule gen_tou_schedule(std::size_t intervals, Rng& rng) {
  switch (rng.uniform_int(0, 3)) {
    case 0:
      return TouSchedule::flat(intervals, rng.uniform(2.0, 30.0));
    case 1: {
      const auto low_until = static_cast<std::size_t>(
          rng.uniform_int(1, static_cast<int>(intervals) - 1));
      const double low = rng.uniform(2.0, 12.0);
      return TouSchedule::two_zone(intervals, low_until, low,
                                   low + rng.uniform(1.0, 20.0));
    }
    case 2: {
      const auto t1 = static_cast<std::size_t>(
          rng.uniform_int(1, static_cast<int>(intervals) - 2));
      const auto t2 = static_cast<std::size_t>(rng.uniform_int(
          static_cast<int>(t1) + 1, static_cast<int>(intervals) - 1));
      const double off = rng.uniform(2.0, 10.0);
      const double semi = off + rng.uniform(1.0, 10.0);
      return TouSchedule::three_zone(intervals, t1, t2, off, semi,
                                     semi + rng.uniform(1.0, 15.0));
    }
    default: {
      const auto block =
          static_cast<std::size_t>(rng.uniform_int(1, 120));
      const double lo = rng.uniform(1.0, 8.0);
      return TouSchedule::hourly_rtp(intervals, block, lo,
                                     lo + rng.uniform(2.0, 25.0), rng);
    }
  }
}

DayTrace gen_usage_trace(std::size_t intervals, double cap, Rng& rng) {
  std::vector<double> values(intervals, 0.0);
  const double base = rng.uniform(0.0, 0.3 * cap);
  std::fill(values.begin(), values.end(), base);
  // Plateaus: appliance-like sustained draws of random level and span.
  const int plateaus = rng.uniform_int(0, 8);
  for (int p = 0; p < plateaus; ++p) {
    const auto start = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(intervals) - 1));
    const auto span = static_cast<std::size_t>(
        rng.uniform_int(1, std::max(2, static_cast<int>(intervals / 8))));
    const double level = rng.uniform(0.0, cap);
    for (std::size_t n = start; n < std::min(intervals, start + span); ++n) {
      values[n] = level;
    }
  }
  // Spikes at the cap and dead (vacant) stretches: the two extremes the
  // feasibility rule has to survive.
  const int spikes = rng.uniform_int(0, 6);
  for (int s = 0; s < spikes; ++s) {
    values[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(intervals) - 1))] = cap;
  }
  if (rng.bernoulli(0.3)) {
    const auto start = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(intervals) - 1));
    const auto span = static_cast<std::size_t>(
        rng.uniform_int(1, std::max(2, static_cast<int>(intervals / 4))));
    for (std::size_t n = start; n < std::min(intervals, start + span); ++n) {
      values[n] = 0.0;
    }
  }
  for (double& v : values) v = std::clamp(v, 0.0, cap);
  return DayTrace(std::move(values));
}

std::string describe(const RlBlhConfig& c) {
  std::ostringstream out;
  out << "RlBlhConfig{n_M=" << c.intervals_per_day
      << " n_D=" << c.decision_interval << " x_M=" << c.usage_cap
      << " b_M=" << c.battery_capacity << " a_M=" << c.num_actions
      << " alpha=" << c.alpha << " eps=" << c.epsilon
      << " decay=" << (c.decay_hyperparams ? 1 : 0)
      << " by_ep=" << (c.decay_by_episodes ? 1 : 0)
      << " dq=" << (c.double_q ? 1 : 0)
      << " reuse=" << (c.enable_reuse ? 1 : 0)
      << " syn=" << (c.enable_synthetic ? 1 : 0) << " seed=" << c.seed << "}";
  return out.str();
}

std::string describe(const HouseholdConfig& c) {
  std::ostringstream out;
  out << "HouseholdConfig{n_M=" << c.intervals << " x_M=" << c.usage_cap
      << " wake=" << c.wake_mean << " leave=" << c.leave_mean
      << " back=" << c.back_mean << " sleep=" << c.sleep_mean
      << " work_p=" << c.workday_probability
      << " vac_p=" << c.vacancy_probability
      << " scale=" << c.appliance_scale << " ev_p=" << c.ev_probability
      << "}";
  return out.str();
}

}  // namespace rlblh::proptest
