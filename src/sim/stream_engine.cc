#include "sim/stream_engine.h"

#include <algorithm>
#include <cmath>
#include <span>

#include "obs/obs.h"
#include "util/error.h"

namespace rlblh {

// Bitwise contract: every arithmetic expression below, and the order of the
// three += accumulations, is copied verbatim from SimEngine::run_day
// (engine.cc). A change to either file that is not mirrored in the other
// breaks the streamed-vs-batch differential proptest.

void StreamEngine::begin_day(const TouSchedule& prices, Battery& battery,
                             BlhPolicy& policy) {
  RLBLH_REQUIRE(!day_open_, "StreamEngine: begin_day() with a day open");
  const std::size_t n_m = prices.intervals();

  DayResult& result = scratch_;
  if (result.usage.intervals() != n_m) {
    result.usage = DayTrace(n_m);
  }
  if (result.readings.intervals() != n_m) {
    result.readings = DayTrace(n_m);
  }
  result.battery_levels.resize(n_m);
  result.savings_cents = 0.0;
  result.bill_cents = 0.0;
  result.usage_cost_cents = 0.0;
  result.battery_violations = 0;

  prices_ = &prices;
  battery_ = &battery;
  policy_ = &policy;
  violations_before_ = battery.violation_count();

  policy.begin_day(prices);
  pulse_ = policy.pulse_width();
  passthrough_ = policy.passthrough();

  n_m_ = n_m;
  n_ = 0;
  seg_ = 0;
  block_n0_ = 0;
  block_end_ = 0;
  block_y_ = 0.0;
  block_level_ = 0.0;
  blocks_ = 0;
  savings_cents_ = 0.0;
  bill_cents_ = 0.0;
  usage_cost_cents_ = 0.0;
  day_open_ = true;
}

void StreamEngine::push(double usage) {
  RLBLH_REQUIRE(day_open_, "StreamEngine: push() with no day open");
  RLBLH_REQUIRE(n_ < n_m_, "StreamEngine: push() past the end of the day");
  RLBLH_REQUIRE(std::isfinite(usage) && usage >= 0.0,
                "StreamEngine: usage must be finite and >= 0");

  const std::size_t n = n_;
  double* const x = scratch_.usage.mutable_data();
  double* const readings = scratch_.readings.mutable_data();
  double* const levels = scratch_.battery_levels.data();
  x[n] = usage;
  const double x_n = usage;

  if (pulse_ == 0) {
    // Per-interval reference path: reading() does not see x_n, so calling
    // it at arrival time is the same call SimEngine makes up front.
    levels[n] = battery_->level();
    double effective_reading;
    if (passthrough_) {
      (void)policy_->reading(n, battery_->level());
      effective_reading = x_n;
    } else {
      const double y = policy_->reading(n, battery_->level());
      const BatteryStep step = battery_->step(y, x_n);
      effective_reading = y + step.grid_extra;
    }
    readings[n] = effective_reading;
    policy_->observe_usage(n, x_n);

    const double rate = prices_->rate(n);
    savings_cents_ += rate * (x_n - effective_reading);
    bill_cents_ += rate * effective_reading;
    usage_cost_cents_ += rate * x_n;
  } else {
    if (n == block_end_) {
      // Block boundary: the pulse magnitude commits before any of the
      // block's usage exists — the causal ordering the paper's Algorithm 1
      // requires and SimEngine merely simulates.
      const std::size_t width = std::min(pulse_, n_m_ - n);
      block_n0_ = n;
      block_end_ = n + width;
      block_y_ = policy_->fill_block(n, width, battery_->level());
      if (passthrough_) block_level_ = battery_->level();
    }
    const std::vector<PriceZone>& segments = prices_->segments();
    while (segments[seg_].end <= n) ++seg_;
    const double rate = segments[seg_].rate;
    if (passthrough_) {
      levels[n] = block_level_;
      readings[n] = x_n;
      savings_cents_ += rate * (x_n - x_n);
      bill_cents_ += rate * x_n;
      usage_cost_cents_ += rate * x_n;
    } else {
      levels[n] = battery_->level();
      const BatteryStep step = battery_->step(block_y_, x_n);
      const double effective_reading = block_y_ + step.grid_extra;
      readings[n] = effective_reading;
      savings_cents_ += rate * (x_n - effective_reading);
      bill_cents_ += rate * effective_reading;
      usage_cost_cents_ += rate * x_n;
    }
    if (n + 1 == block_end_) {
      policy_->observe_block(
          block_n0_, ConstTraceLane(x + block_n0_, 1, block_end_ - block_n0_));
      ++blocks_;
    }
  }
  n_ = n + 1;
}

const DayResult& StreamEngine::finish_day() {
  RLBLH_REQUIRE(day_open_, "StreamEngine: finish_day() with no day open");
  RLBLH_REQUIRE(n_ == n_m_,
                "StreamEngine: finish_day() before every interval arrived");
  policy_->end_day();

  DayResult& result = scratch_;
  result.savings_cents = savings_cents_;
  result.bill_cents = bill_cents_;
  result.usage_cost_cents = usage_cost_cents_;
  result.battery_violations =
      battery_->violation_count() - violations_before_;
  if (invariant_config_.has_value()) {
    InvariantChecker(*invariant_config_)
        .enforce_day(result, *prices_, battery_->level());
  }
  RLBLH_OBS_COUNT("sim.days", 1);
  RLBLH_OBS_COUNT("sim.intervals", n_m_);
  RLBLH_OBS_COUNT("sim.battery_violations", result.battery_violations);
  if (pulse_ != 0) RLBLH_OBS_COUNT("sim.blocks", blocks_);

  day_open_ = false;
  prices_ = nullptr;
  battery_ = nullptr;
  policy_ = nullptr;
  return result;
}

void StreamEngine::abandon_day() {
  day_open_ = false;
  prices_ = nullptr;
  battery_ = nullptr;
  policy_ = nullptr;
}

void StreamEngine::enable_invariant_checks(
    const InvariantCheckConfig& config) {
  InvariantChecker checker(config);
  invariant_config_ = checker.config();
}

}  // namespace rlblh
