#include "sim/experiment.h"

#include <utility>

#include "meter/household_registry.h"
#include "util/error.h"

namespace rlblh {

EvaluationAccumulator::EvaluationAccumulator(std::size_t intervals,
                                             std::size_t mi_levels,
                                             double usage_cap)
    : intervals_(intervals), mi_levels_(mi_levels), usage_cap_(usage_cap),
      mi_(intervals, mi_levels, usage_cap, usage_cap) {}

void EvaluationAccumulator::reset(std::size_t intervals, std::size_t mi_levels,
                                  double usage_cap) {
  sr_.reset();
  cc_.reset();
  if (intervals == intervals_ && mi_levels == mi_levels_ &&
      usage_cap == usage_cap_) {
    mi_.reset();
  } else {
    intervals_ = intervals;
    mi_levels_ = mi_levels;
    usage_cap_ = usage_cap;
    mi_ = PairwiseMiEstimator(intervals, mi_levels, usage_cap, usage_cap);
  }
  bill_cents_total_ = 0.0;
  usage_cost_cents_total_ = 0.0;
  battery_violations_ = 0;
  days_ = 0;
}

void EvaluationAccumulator::observe_day(const DayResult& day,
                                        const TouSchedule& prices) {
  observe_day(day.usage, day.readings, day.bill_cents, day.usage_cost_cents,
              day.battery_violations, prices);
}

void EvaluationAccumulator::observe_day(ConstTraceLane usage,
                                        ConstTraceLane readings,
                                        double bill_cents,
                                        double usage_cost_cents,
                                        std::size_t battery_violations,
                                        const TouSchedule& prices) {
  sr_.observe_day(usage, readings, prices);
  cc_.observe_day(usage, readings);
  mi_.observe_day(usage, readings);
  battery_violations_ += battery_violations;
  bill_cents_total_ += bill_cents;
  usage_cost_cents_total_ += usage_cost_cents;
  ++days_;
}

EvaluationResult EvaluationAccumulator::result() const {
  RLBLH_REQUIRE(days_ >= 1,
                "EvaluationAccumulator: need at least one observed day");
  const auto days = static_cast<double>(days_);
  EvaluationResult result;
  result.saving_ratio = sr_.saving_ratio();
  result.mean_cc = cc_.mean_cc();
  result.normalized_mi = mi_.normalized_mi();
  result.mean_daily_savings_cents = sr_.mean_daily_savings_cents();
  result.mean_daily_bill_cents = bill_cents_total_ / days;
  result.mean_daily_usage_cost_cents = usage_cost_cents_total_ / days;
  result.battery_violations = battery_violations_;
  return result;
}

EvaluationResult evaluate_policy(Simulator& simulator, BlhPolicy& policy,
                                 const EvaluationConfig& config) {
  RLBLH_REQUIRE(config.eval_days >= 1,
                "evaluate_policy: need at least one evaluation day");
  if (config.train_days > 0) {
    simulator.run_days(policy, config.train_days);
  }

  EvaluationAccumulator accumulator(simulator.source().intervals(),
                                    config.mi_levels,
                                    simulator.source().usage_cap());
  simulator.run_days(policy, config.eval_days,
                     [&](std::size_t, const DayResult& day) {
                       accumulator.observe_day(day, simulator.prices());
                     });
  return accumulator.result();
}

Simulator make_household_simulator(const HouseholdConfig& household,
                                   TouSchedule prices,
                                   double battery_capacity_kwh,
                                   std::uint64_t seed) {
  auto source = std::make_unique<HouseholdTraceSource>(household, seed);
  Battery battery(battery_capacity_kwh, battery_capacity_kwh / 2.0);
  return Simulator(std::move(source), std::move(prices), battery);
}

Simulator make_household_simulator(const std::string& household,
                                   const SpecParams& params,
                                   TouSchedule prices,
                                   double battery_capacity_kwh,
                                   std::uint64_t seed) {
  auto source = make_trace_source(household, params, seed);
  Battery battery(battery_capacity_kwh, battery_capacity_kwh / 2.0);
  return Simulator(std::move(source), std::move(prices), battery);
}

}  // namespace rlblh
