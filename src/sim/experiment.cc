#include "sim/experiment.h"

#include <utility>

#include "privacy/correlation.h"
#include "privacy/metrics.h"
#include "privacy/mutual_information.h"
#include "util/error.h"

namespace rlblh {

EvaluationResult evaluate_policy(Simulator& simulator, BlhPolicy& policy,
                                 const EvaluationConfig& config) {
  RLBLH_REQUIRE(config.eval_days >= 1,
                "evaluate_policy: need at least one evaluation day");
  if (config.train_days > 0) {
    simulator.run_days(policy, config.train_days);
  }

  const std::size_t n_m = simulator.source().intervals();
  const double x_cap = simulator.source().usage_cap();
  SavingRatioAccumulator sr;
  CorrelationAccumulator cc;
  PairwiseMiEstimator mi(n_m, config.mi_levels, x_cap, x_cap);

  EvaluationResult result;
  simulator.run_days(
      policy, config.eval_days,
      [&](std::size_t, const DayResult& day) {
        sr.observe_day(day.usage, day.readings, simulator.prices());
        cc.observe_day(day.usage, day.readings);
        mi.observe_day(day.usage, day.readings);
        result.battery_violations += day.battery_violations;
        result.mean_daily_bill_cents += day.bill_cents;
        result.mean_daily_usage_cost_cents += day.usage_cost_cents;
      });
  const auto days = static_cast<double>(config.eval_days);
  result.saving_ratio = sr.saving_ratio();
  result.mean_cc = cc.mean_cc();
  result.normalized_mi = mi.normalized_mi();
  result.mean_daily_savings_cents = sr.mean_daily_savings_cents();
  result.mean_daily_bill_cents /= days;
  result.mean_daily_usage_cost_cents /= days;
  return result;
}

Simulator make_household_simulator(const HouseholdConfig& household,
                                   TouSchedule prices,
                                   double battery_capacity_kwh,
                                   std::uint64_t seed) {
  auto source = std::make_unique<HouseholdTraceSource>(household, seed);
  Battery battery(battery_capacity_kwh, battery_capacity_kwh / 2.0);
  return Simulator(std::move(source), std::move(prices), battery);
}

}  // namespace rlblh
