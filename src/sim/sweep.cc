#include "sim/sweep.h"

#include "util/error.h"

namespace rlblh {

SweepRunner::SweepRunner(SweepOptions options)
    : threads_(options.threads != 0 ? options.threads
                                    : ThreadPool::default_thread_count()) {
  RLBLH_OBS_GAUGE("sweep.threads", threads_);
  if (threads_ > 1) {
    pool_.emplace(threads_);
  }
}

void EvaluationStats::add(const EvaluationResult& result) {
  saving_ratio.add(result.saving_ratio);
  mean_cc.add(result.mean_cc);
  normalized_mi.add(result.normalized_mi);
  mean_daily_savings_cents.add(result.mean_daily_savings_cents);
  mean_daily_bill_cents.add(result.mean_daily_bill_cents);
  mean_daily_usage_cost_cents.add(result.mean_daily_usage_cost_cents);
  battery_violations += result.battery_violations;
}

void EvaluationStats::merge(const EvaluationStats& other) {
  saving_ratio.merge(other.saving_ratio);
  mean_cc.merge(other.mean_cc);
  normalized_mi.merge(other.normalized_mi);
  mean_daily_savings_cents.merge(other.mean_daily_savings_cents);
  mean_daily_bill_cents.merge(other.mean_daily_bill_cents);
  mean_daily_usage_cost_cents.merge(other.mean_daily_usage_cost_cents);
  battery_violations += other.battery_violations;
}

EvaluationStats mean_over_cells(const std::vector<EvaluationResult>& results,
                                std::size_t first, std::size_t count) {
  RLBLH_REQUIRE(first + count <= results.size(),
                "mean_over_cells: slice out of range");
  EvaluationStats stats;
  for (std::size_t i = 0; i < count; ++i) {
    stats.add(results[first + i]);
  }
  return stats;
}

}  // namespace rlblh
