#include "sim/simulator.h"

#include <utility>

#include "util/error.h"

namespace rlblh {

Simulator::Simulator(std::unique_ptr<TraceSource> source, TouSchedule prices,
                     Battery battery)
    : source_(std::move(source)), prices_(std::move(prices)),
      battery_(battery) {
  RLBLH_REQUIRE(source_ != nullptr, "Simulator: trace source must not be null");
  RLBLH_REQUIRE(prices_.intervals() == source_->intervals(),
                "Simulator: price schedule length must match the day length");
}

void Simulator::set_prices(TouSchedule prices) {
  RLBLH_REQUIRE(prices.intervals() == source_->intervals(),
                "Simulator: price schedule length must match the day length");
  prices_ = std::move(prices);
}

}  // namespace rlblh
