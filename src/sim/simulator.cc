#include "sim/simulator.h"

#include <chrono>
#include <utility>

#include "obs/obs.h"
#include "util/error.h"

namespace rlblh {

Simulator::Simulator(std::unique_ptr<TraceSource> source, TouSchedule prices,
                     Battery battery)
    : source_(std::move(source)), prices_(std::move(prices)),
      battery_(battery) {
  RLBLH_REQUIRE(source_ != nullptr, "Simulator: trace source must not be null");
  RLBLH_REQUIRE(prices_.intervals() == source_->intervals(),
                "Simulator: price schedule length must match the day length");
}

const DayResult& Simulator::run_day(BlhPolicy& policy) {
  const std::size_t n_m = source_->intervals();
  // Reuse the scratch record's buffers: after the first day the loop below
  // overwrites them in place instead of reallocating.
  DayResult& result = scratch_;
  result.usage = source_->next_day();  // move-assigned, no copy
  if (result.readings.intervals() != n_m) {
    result.readings = DayTrace(n_m);
  }
  result.battery_levels.clear();
  result.battery_levels.reserve(n_m);
  result.savings_cents = 0.0;
  result.bill_cents = 0.0;
  result.usage_cost_cents = 0.0;

  const DayTrace& usage = result.usage;
  const std::size_t violations_before = battery_.violation_count();

  policy.begin_day(prices_);
  for (std::size_t n = 0; n < n_m; ++n) {
    result.battery_levels.push_back(battery_.level());
    const double x = usage.at(n);
    double effective_reading;
    if (policy.passthrough()) {
      // No-battery reference: the meter measures usage directly.
      (void)policy.reading(n, battery_.level());
      effective_reading = x;
    } else {
      const double y = policy.reading(n, battery_.level());
      const BatteryStep step = battery_.step(y, x);
      // Energy the battery could not supply is drawn from the grid on top
      // of the scheduled reading, so the meter sees y + shortfall.
      effective_reading = y + step.grid_extra;
    }
    result.readings.set(n, effective_reading);
    policy.observe_usage(n, x);

    const double rate = prices_.rate(n);
    result.savings_cents += rate * (x - effective_reading);
    result.bill_cents += rate * effective_reading;
    result.usage_cost_cents += rate * x;
  }
  policy.end_day();

  result.battery_violations = battery_.violation_count() - violations_before;
  if (invariant_config_.has_value()) {
    RLBLH_OBS_NOW(check_start);
    InvariantChecker(*invariant_config_)
        .enforce_day(result, prices_, battery_.level());
    RLBLH_OBS_COUNT_NS_SINCE("sim.invariant_check_ns", check_start);
    RLBLH_OBS_COUNT("sim.invariant_checked_days", 1);
  }
  RLBLH_OBS_COUNT("sim.days", 1);
  RLBLH_OBS_COUNT("sim.intervals", n_m);
  RLBLH_OBS_COUNT("sim.battery_violations", result.battery_violations);
  return result;
}

void Simulator::enable_invariant_checks(const InvariantCheckConfig& config) {
  // Construct a checker up front so a bad config fails here, not mid-run.
  InvariantChecker checker(config);
  invariant_config_ = checker.config();
}

const DayResult& Simulator::run_days(BlhPolicy& policy, std::size_t days,
                                     const DayCallback& on_day) {
  RLBLH_REQUIRE(days >= 1, "Simulator: days must be >= 1");
  RLBLH_OBS_SPAN("sim.run_days");
  for (std::size_t d = 0; d < days; ++d) {
    const DayResult& day = run_day(policy);
    if (on_day) on_day(d, day);
  }
  return scratch_;
}

void Simulator::set_prices(TouSchedule prices) {
  RLBLH_REQUIRE(prices.intervals() == source_->intervals(),
                "Simulator: price schedule length must match the day length");
  prices_ = std::move(prices);
}

}  // namespace rlblh
