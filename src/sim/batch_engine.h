// BatchEngine — W same-blueprint households simulated in lockstep as
// structure-of-arrays (DESIGN.md §14).
//
// The scalar SimEngine lays one household's day out at a time; at fleet
// scale the remaining cost is per-interval arithmetic that the compiler
// cannot vectorize across households. BatchEngine transposes the layout:
// usage, battery levels, meter readings and money accumulators all become
// contiguous W-wide lanes indexed [n * W + k] (interval-major) so the
// per-interval work of all W lanes is one vector op. Usage is synthesized
// straight into its interval-major slot through a strided TraceLane (no
// lane-major staging buffer, no daily transpose), and policies read it back
// through strided ConstTraceLane views — the whole day is one layout.
//
// The policy side is lane-native (core/policy.h): per block the engine
// makes ONE fill_lanes() and ONE observe_lanes() virtual call on lane 0
// with the full lane span, so a batch day costs O(n_M / n_D) virtual calls
// instead of O(W * n_M / n_D).
//
// Bit-identity contract: lane k of a batch day is bitwise equal to a
// scalar SimEngine::run_day of household k — same RNG draw order (each
// lane owns its source/policy with their own RNGs; per-lane call order
// inside a day is exactly the scalar order), same FP expression shapes and
// the same per-interval accumulation order per lane (lanes only ever
// combine along the vector dimension, never reassociate along time).
// tests/proptest/batch_diff_proptest.cc enforces this per lane against the
// scalar engine; the fleet layer relies on it to make batching invisible.
//
// Requirements: every lane must share one day geometry and one battery
// model, every policy must advertise the same name(), the same
// pulse_width() > 0 (policies without block support take the scalar engine
// instead), and the same passthrough mode — the name check is what lets a
// native fill_lanes/observe_lanes static_cast its peer lanes. Per-day
// invariant checking is not offered here — run the scalar engine when
// auditing.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "battery/battery.h"
#include "core/policy.h"
#include "meter/trace.h"
#include "pricing/tou.h"
#include "sim/day_result.h"

namespace rlblh {

/// One simulated day of W lockstep lanes, structure-of-arrays.
/// References returned by BatchEngine::run_day stay valid until the next
/// run_day call on that engine (all buffers are reused across days).
struct BatchDay {
  std::size_t width = 0;      ///< W, number of lanes
  std::size_t intervals = 0;  ///< n_M, measurement intervals per day

  /// Usage x_n, interval-major ([n * width + k]) — the only usage layout.
  std::vector<double> usage;
  /// Effective meter readings, interval-major.
  std::vector<double> readings;
  /// Battery level at the *start* of interval n, interval-major.
  std::vector<double> levels;

  std::vector<double> savings_cents;     ///< per lane: sum r_n (x_n - y_n)
  std::vector<double> bill_cents;        ///< per lane: sum r_n y_n
  std::vector<double> usage_cost_cents;  ///< per lane: sum r_n x_n
  std::vector<std::size_t> battery_violations;  ///< per lane, this day only

  /// Committed pulse height of every block, blocks-major: block b's lane-k
  /// value lives at [b * width + k], with blocks tiling the day at the
  /// policies' pulse width. Consumers that must reconstruct per-interval
  /// battery arithmetic after the fact (the serving layer's wasted/grid-
  /// extra accounting) replay from these instead of re-asking the policy.
  std::vector<double> block_y;
  std::size_t blocks = 0;  ///< number of blocks recorded in block_y

  /// Lane k's usage series as a strided read-only view.
  ConstTraceLane usage_lane(std::size_t k) const {
    return ConstTraceLane(usage.data() + k, width, intervals);
  }

  /// Lane k's effective meter readings as a strided read-only view.
  ConstTraceLane readings_lane(std::size_t k) const {
    return ConstTraceLane(readings.data() + k, width, intervals);
  }

  /// Copies lane k into a scalar day record (the evaluation path feeds
  /// per-lane accumulators with these). `out`'s buffers are reused.
  void extract_lane(std::size_t k, DayResult& out) const;
};

/// Runs days of W lockstep lanes over borrowed per-lane state.
class BatchEngine {
 public:
  /// Runs one full day for all lanes. `sources`, `policies` and the lanes
  /// of `batteries` are index-aligned, one entry per lane; all spans must
  /// have the same nonzero size as batteries.width(). The price schedule
  /// length must match the sources' day length. Returns the engine's
  /// reused SoA day record.
  const BatchDay& run_day(std::span<TraceSource* const> sources,
                          const TouSchedule& prices, BatteryLanes& batteries,
                          std::span<BlhPolicy* const> policies);

  /// Stages a day whose usage comes from outside instead of a TraceSource
  /// (the serving daemon's buffered meter readings). Sizes the scratch day
  /// to `width` lanes of `intervals` and returns the interval-major usage
  /// buffer ([n * width + k], width * intervals slots) for the caller to
  /// fill; every value must be finite and >= 0 (validated upstream — the
  /// kernels assume it, exactly as they assume it of synthesized traces).
  /// The pointer stays valid until the next run_day/stage_usage call.
  double* stage_usage(std::size_t width, std::size_t intervals);

  /// Runs one day over usage staged by stage_usage(): identical to
  /// run_day() minus synthesis — same homogeneity checks on the policies,
  /// same kernels, same call and accumulation order, so lane k is bitwise
  /// the StreamEngine run of household k over the same usage. `batteries`
  /// and `policies` must match the staged width, `prices` the staged day
  /// length. Returns the engine's reused SoA day record.
  const BatchDay& run_staged_day(const TouSchedule& prices,
                                 BatteryLanes& batteries,
                                 std::span<BlhPolicy* const> policies);

 private:
  /// The shared compute core: block loop over already-staged usage.
  const BatchDay& run_core(const TouSchedule& prices, BatteryLanes& batteries,
                           std::span<BlhPolicy* const> policies);

  BatchDay scratch_;
  std::vector<double> block_y_;  ///< per-lane pulse height of current block
  bool staged_ = false;          ///< stage_usage() armed, not yet consumed
};

}  // namespace rlblh
