// BatchEngine — W same-blueprint households simulated in lockstep as
// structure-of-arrays (DESIGN.md §14).
//
// The scalar SimEngine lays one household's day out at a time; at fleet
// scale the remaining cost is per-interval arithmetic that the compiler
// cannot vectorize across households. BatchEngine transposes the layout:
// battery levels, meter readings and money accumulators become contiguous
// W-wide lanes indexed [n * W + k] (interval-major) so the per-interval
// work of all W lanes is one vector op, while usage is synthesized
// lane-major ([k * n_M + n], each lane contiguous) so per-lane generators
// and observe_block spans stay zero-copy, then transposed once per day for
// the inner loop.
//
// Bit-identity contract: lane k of a batch day is bitwise equal to a
// scalar SimEngine::run_day of household k — same RNG draw order (each
// lane owns its source/policy with their own RNGs; per-lane call order
// inside a day is exactly the scalar order), same FP expression shapes and
// the same per-interval accumulation order per lane (lanes only ever
// combine along the vector dimension, never reassociate along time).
// tests/proptest/batch_diff_proptest.cc enforces this per lane against the
// scalar engine; the fleet layer relies on it to make batching invisible.
//
// Requirements: every lane must share one day geometry and one battery
// model, every policy must advertise the same pulse_width() > 0 (policies
// without block support take the scalar engine instead), and either all or
// none of the lanes may be passthrough. Per-day invariant checking is not
// offered here — run the scalar engine when auditing.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "battery/battery.h"
#include "core/policy.h"
#include "meter/trace.h"
#include "pricing/tou.h"
#include "sim/day_result.h"

namespace rlblh {

/// One simulated day of W lockstep lanes, structure-of-arrays.
/// References returned by BatchEngine::run_day stay valid until the next
/// run_day call on that engine (all buffers are reused across days).
struct BatchDay {
  std::size_t width = 0;      ///< W, number of lanes
  std::size_t intervals = 0;  ///< n_M, measurement intervals per day

  /// Usage x_n, lane-major: lane k's day is [k * intervals, (k+1) * intervals).
  std::vector<double> usage_lanes;
  /// Usage x_n, interval-major ([n * width + k]); transpose of usage_lanes.
  std::vector<double> usage;
  /// Effective meter readings, interval-major.
  std::vector<double> readings;
  /// Battery level at the *start* of interval n, interval-major.
  std::vector<double> levels;

  std::vector<double> savings_cents;     ///< per lane: sum r_n (x_n - y_n)
  std::vector<double> bill_cents;        ///< per lane: sum r_n y_n
  std::vector<double> usage_cost_cents;  ///< per lane: sum r_n x_n
  std::vector<std::size_t> battery_violations;  ///< per lane, this day only

  /// Lane k's contiguous usage series.
  std::span<const double> usage_lane(std::size_t k) const {
    return {usage_lanes.data() + k * intervals, intervals};
  }

  /// Copies lane k into a scalar day record (the evaluation path feeds
  /// per-lane accumulators with these). `out`'s buffers are reused.
  void extract_lane(std::size_t k, DayResult& out) const;
};

/// Runs days of W lockstep lanes over borrowed per-lane state.
class BatchEngine {
 public:
  /// Runs one full day for all lanes. `sources`, `policies` and the lanes
  /// of `batteries` are index-aligned, one entry per lane; all spans must
  /// have the same nonzero size as batteries.width(). The price schedule
  /// length must match the sources' day length. Returns the engine's
  /// reused SoA day record.
  const BatchDay& run_day(std::span<TraceSource* const> sources,
                          const TouSchedule& prices, BatteryLanes& batteries,
                          std::span<BlhPolicy* const> policies);

 private:
  BatchDay scratch_;
  std::vector<double> block_y_;  ///< per-lane pulse height of current block
};

}  // namespace rlblh
