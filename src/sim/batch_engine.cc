#include "sim/batch_engine.h"

#include <algorithm>
#include <typeinfo>

#if defined(RLBLH_SIMD) && defined(__x86_64__) && defined(__GNUC__)
#include <immintrin.h>
#endif

#include "obs/obs.h"
#include "util/error.h"

namespace rlblh {

void BatchDay::extract_lane(std::size_t k, DayResult& out) const {
  RLBLH_REQUIRE(k < width, "BatchDay: lane out of range");
  // Resize-once raw views, exactly like SimEngine's scratch handling: every
  // slot is overwritten below with values that satisfy DayTrace's
  // finite/>= 0 invariant (they were produced under the same contract).
  if (out.usage.intervals() != intervals) out.usage = DayTrace(intervals);
  if (out.readings.intervals() != intervals) out.readings = DayTrace(intervals);
  out.battery_levels.resize(intervals);
  double* u = out.usage.mutable_data();
  double* r = out.readings.mutable_data();
  double* l = out.battery_levels.data();
  const double* soa_usage = usage.data() + k;
  const double* soa_readings = readings.data() + k;
  const double* soa_levels = levels.data() + k;
  for (std::size_t n = 0; n < intervals; ++n) {
    u[n] = soa_usage[n * width];
    r[n] = soa_readings[n * width];
    l[n] = soa_levels[n * width];
  }
  out.savings_cents = savings_cents[k];
  out.bill_cents = bill_cents[k];
  out.usage_cost_cents = usage_cost_cents[k];
  out.battery_violations = battery_violations[k];
}

namespace {

/// Everything a constant-rate segment run needs, bundled so the portable
/// and SIMD kernels share one signature. Series pointers are interval-major
/// ([n * width + k]); `y`, `level` and the accumulators are per-lane.
struct SegmentArgs {
  const double* usage;
  double* readings;
  double* levels;
  const double* y;
  double* level;
  std::size_t* violations;
  double* savings;
  double* bill;
  double* cost;
  std::size_t width;
  double capacity;
  double charge_eff;
  double discharge_eff;
};

/// Advances lanes [k0, k1) over intervals [n0, n1) at constant `rate`.
/// Per lane this is exactly SimEngine's blocked inner loop: level recorded
/// before the step, effective reading = y + shortfall, and the three money
/// accumulators bumped in the same order — the lane dimension is the only
/// thing that changed, so each lane's arithmetic is bitwise the scalar
/// engine's. Lanes run k-outer so the level/money accumulators live in
/// registers across the whole run instead of round-tripping through memory
/// every interval (the loop-carried level dependence otherwise stalls on
/// store-to-load forwarding); lane order is free to change because lanes
/// never mix.
void run_segment_portable(const SegmentArgs& a, std::size_t k0, std::size_t k1,
                          std::size_t n0, std::size_t n1, double rate) {
  for (std::size_t k = k0; k < k1; ++k) {
    const double y = a.y[k];
    const double* x = a.usage + k;
    double* lv = a.levels + k;
    double* rd = a.readings + k;
    double level = a.level[k];
    double savings = a.savings[k];
    double bill = a.bill[k];
    double cost = a.cost[k];
    std::size_t violations = 0;
    for (std::size_t n = n0; n < n1; ++n) {
      lv[n * a.width] = level;
      const double x_n = x[n * a.width];
      const BatteryLaneStep step = battery_lane_step(
          level, y, x_n, a.capacity, a.charge_eff, a.discharge_eff);
      const double effective_reading = y + step.grid_extra;
      rd[n * a.width] = effective_reading;
      violations += step.violated ? std::size_t{1} : std::size_t{0};
      savings += rate * (x_n - effective_reading);
      bill += rate * effective_reading;
      cost += rate * x_n;
      level = step.level_after;
    }
    a.level[k] = level;
    a.savings[k] = savings;
    a.bill[k] = bill;
    a.cost[k] = cost;
    a.violations[k] += violations;
  }
}

#if defined(RLBLH_SIMD) && defined(__x86_64__) && defined(__GNUC__)

/// Explicit AVX2 segment kernel, engaged at runtime when the CPU has AVX2
/// (see run_segment below). Four lanes per vector, accumulators held in
/// registers across the run; every operation is the portable loop's
/// expression element-wise — separate multiply and add throughout, never
/// _mm256_fmadd_pd, because the scalar engine is built without FP
/// contraction and a fused step would round differently. The function
/// carries its own target attribute instead of the TU being compiled with
/// -mavx2, so the compiler cannot re-codegen (and re-contract) the portable
/// paths of this file differently from engine.cc.
__attribute__((target("avx2"))) void run_segment_avx2(const SegmentArgs& a,
                                                      std::size_t k0,
                                                      std::size_t k1,
                                                      std::size_t n0,
                                                      std::size_t n1,
                                                      double rate) {
  const __m256d vcap = _mm256_set1_pd(a.capacity);
  const __m256d vde = _mm256_set1_pd(a.discharge_eff);
  const __m256d vce = _mm256_set1_pd(a.charge_eff);
  const __m256d vrate = _mm256_set1_pd(rate);
  const __m256d vzero = _mm256_setzero_pd();
  const __m256d vsignbit = _mm256_set1_pd(-0.0);
  std::size_t k = k0;
  for (; k + 4 <= k1; k += 4) {
    const __m256d vy = _mm256_loadu_pd(a.y + k);
    const __m256d vcharge = _mm256_mul_pd(vce, vy);
    __m256d vlevel = _mm256_loadu_pd(a.level + k);
    __m256d vsav = _mm256_loadu_pd(a.savings + k);
    __m256d vbill = _mm256_loadu_pd(a.bill + k);
    __m256d vcost = _mm256_loadu_pd(a.cost + k);
    for (std::size_t n = n0; n < n1; ++n) {
      _mm256_storeu_pd(a.levels + n * a.width + k, vlevel);
      const __m256d vx = _mm256_loadu_pd(a.usage + n * a.width + k);
      // delta = ce * y - x / de;  next = level + delta
      const __m256d vnext = _mm256_add_pd(
          vlevel, _mm256_sub_pd(vcharge, _mm256_div_pd(vx, vde)));
      const __m256d vover = _mm256_cmp_pd(vnext, vcap, _CMP_GT_OQ);
      const __m256d vunder = _mm256_cmp_pd(vnext, vzero, _CMP_LT_OQ);
      // grid_extra = under ? (-next) * de : 0.0 — the AND with the mask
      // zeroes the untaken lanes exactly (+0.0), matching the scalar select.
      const __m256d vge = _mm256_and_pd(
          vunder, _mm256_mul_pd(_mm256_xor_pd(vnext, vsignbit), vde));
      vlevel = _mm256_blendv_pd(_mm256_blendv_pd(vnext, vcap, vover), vzero,
                                vunder);
      const __m256d veff = _mm256_add_pd(vy, vge);
      _mm256_storeu_pd(a.readings + n * a.width + k, veff);
      vsav = _mm256_add_pd(vsav, _mm256_mul_pd(vrate, _mm256_sub_pd(vx, veff)));
      vbill = _mm256_add_pd(vbill, _mm256_mul_pd(vrate, veff));
      vcost = _mm256_add_pd(vcost, _mm256_mul_pd(vrate, vx));
      const int clipped = _mm256_movemask_pd(_mm256_or_pd(vover, vunder));
      if (clipped != 0) {  // feasible policies never clip: keep it off-path
        a.violations[k + 0] += static_cast<std::size_t>(clipped & 1);
        a.violations[k + 1] += static_cast<std::size_t>((clipped >> 1) & 1);
        a.violations[k + 2] += static_cast<std::size_t>((clipped >> 2) & 1);
        a.violations[k + 3] += static_cast<std::size_t>((clipped >> 3) & 1);
      }
    }
    _mm256_storeu_pd(a.level + k, vlevel);
    _mm256_storeu_pd(a.savings + k, vsav);
    _mm256_storeu_pd(a.bill + k, vbill);
    _mm256_storeu_pd(a.cost + k, vcost);
  }
  if (k < k1) run_segment_portable(a, k, k1, n0, n1, rate);
}

#endif  // RLBLH_SIMD && __x86_64__

using SegmentFn = void (*)(const SegmentArgs&, std::size_t, std::size_t,
                           std::size_t, std::size_t, double);

SegmentFn resolve_segment_fn() {
#if defined(RLBLH_SIMD) && defined(__x86_64__) && defined(__GNUC__)
  if (__builtin_cpu_supports("avx2")) return run_segment_avx2;
#endif
  return run_segment_portable;
}

/// Resolved once per process; both choices compute bitwise-equal results
/// (batch_diff_proptests run against whichever this build selects).
const SegmentFn g_run_segment = resolve_segment_fn();

/// Interval-tile size for long segment runs. The kernels walk lanes
/// k-outer, so a run of R intervals touches R strided cache lines per lane
/// per array; tiling bounds the tile working set (kSegmentTile * width * 8
/// bytes per array, ~4 arrays) to L1 so successive lanes rehit the same
/// lines. Tiling is bitwise invisible: each lane still sees its intervals
/// in order, only with the register accumulators spilled and reloaded at
/// tile edges (loads of the exact values just stored).
constexpr std::size_t kSegmentTile = 32;

/// Runs [n0, n1) at constant rate through the resolved kernel, tiled.
void run_segment_tiled(const SegmentArgs& a, std::size_t n0, std::size_t n1,
                       double rate) {
  for (std::size_t n = n0; n < n1; n += kSegmentTile) {
    g_run_segment(a, 0, a.width, n, std::min(n1, n + kSegmentTile), rate);
  }
}

/// Shared lane-homogeneity gate of both day entry points. The checks back
/// the lane-native protocol: the batched policy entry points (fill_lanes,
/// observe_lanes) run on lane 0, whose native override may static_cast the
/// peers to its own concrete type.
std::size_t check_policy_lanes(std::span<BlhPolicy* const> policies) {
  const std::size_t pulse = policies[0]->pulse_width();
  RLBLH_REQUIRE(pulse > 0,
                "BatchEngine: policies must support the pulse-block protocol");
  const bool is_passthrough = policies[0]->passthrough();
  const std::string_view policy_name = policies[0]->name();
  for (std::size_t k = 1; k < policies.size(); ++k) {
    RLBLH_REQUIRE(policies[k]->name() == policy_name,
                  "BatchEngine: lanes must share one policy type");
    RLBLH_REQUIRE(policies[k]->pulse_width() == pulse,
                  "BatchEngine: lanes must share one pulse width");
    RLBLH_REQUIRE(policies[k]->passthrough() == is_passthrough,
                  "BatchEngine: lanes must share the passthrough mode");
  }
  return pulse;
}

}  // namespace

const BatchDay& BatchEngine::run_day(std::span<TraceSource* const> sources,
                                     const TouSchedule& prices,
                                     BatteryLanes& batteries,
                                     std::span<BlhPolicy* const> policies) {
  const std::size_t width = batteries.width();
  RLBLH_REQUIRE(width >= 1, "BatchEngine: need at least one lane");
  RLBLH_REQUIRE(sources.size() == width && policies.size() == width,
                "BatchEngine: sources/policies must match the lane width");
  const std::size_t n_m = sources[0]->intervals();
  RLBLH_REQUIRE(prices.intervals() == n_m,
                "BatchEngine: price schedule length must match the day length");
  check_policy_lanes(policies);
  for (std::size_t k = 1; k < width; ++k) {
    RLBLH_REQUIRE(sources[k]->intervals() == n_m,
                  "BatchEngine: lanes must share one day length");
    RLBLH_REQUIRE(typeid(*sources[k]) == typeid(*sources[0]),
                  "BatchEngine: lanes must share one trace source type");
  }

  BatchDay& day = scratch_;
  day.width = width;
  day.intervals = n_m;
  day.usage.resize(width * n_m);
  staged_ = false;

  // Synthesis: one lane-native call fills the whole interval-major block.
  // The default writes each lane straight into its strided slot (its own
  // RNG, the exact scalar draw order — only the store addresses differ from
  // a contiguous day); native overrides may reorder the stores, never the
  // values. No engine-side staging buffer, no transpose; the observe path
  // reads the same layout back through strided lane views.
  sources[0]->next_days_into_lanes(sources, day.usage.data(), n_m);

  return run_core(prices, batteries, policies);
}

double* BatchEngine::stage_usage(std::size_t width, std::size_t intervals) {
  RLBLH_REQUIRE(width >= 1 && intervals >= 1,
                "BatchEngine: a staged day needs lanes and intervals");
  scratch_.width = width;
  scratch_.intervals = intervals;
  scratch_.usage.resize(width * intervals);
  staged_ = true;
  return scratch_.usage.data();
}

const BatchDay& BatchEngine::run_staged_day(
    const TouSchedule& prices, BatteryLanes& batteries,
    std::span<BlhPolicy* const> policies) {
  RLBLH_REQUIRE(staged_,
                "BatchEngine: run_staged_day() without a staged usage day");
  const std::size_t width = scratch_.width;
  RLBLH_REQUIRE(batteries.width() == width && policies.size() == width,
                "BatchEngine: batteries/policies must match the staged width");
  RLBLH_REQUIRE(prices.intervals() == scratch_.intervals,
                "BatchEngine: price schedule length must match the staged day");
  check_policy_lanes(policies);
  staged_ = false;
  return run_core(prices, batteries, policies);
}

const BatchDay& BatchEngine::run_core(const TouSchedule& prices,
                                      BatteryLanes& batteries,
                                      std::span<BlhPolicy* const> policies) {
  BatchDay& day = scratch_;
  const std::size_t width = day.width;
  const std::size_t n_m = day.intervals;
  const std::size_t pulse = policies[0]->pulse_width();
  const bool is_passthrough = policies[0]->passthrough();
  day.readings.resize(width * n_m);
  day.levels.resize(width * n_m);
  day.savings_cents.assign(width, 0.0);
  day.bill_cents.assign(width, 0.0);
  day.usage_cost_cents.assign(width, 0.0);
  day.battery_violations.assign(width, 0);
  // Overflow-safe ceil-div: passthrough advertises pulse_width() == SIZE_MAX
  // (whole-day block), so `n_m + pulse - 1` must never be formed.
  day.block_y.resize((n_m / pulse + (n_m % pulse != 0 ? 1 : 0)) * width);
  day.blocks = 0;
  block_y_.resize(width);

  for (std::size_t k = 0; k < width; ++k) policies[k]->begin_day(prices);

  RLBLH_OBS_NOW(blocks_start);
  const std::vector<PriceZone>& segments = prices.segments();
  SegmentArgs args{day.usage.data(),
                   day.readings.data(),
                   day.levels.data(),
                   block_y_.data(),
                   batteries.levels(),
                   day.battery_violations.data(),
                   day.savings_cents.data(),
                   day.bill_cents.data(),
                   day.usage_cost_cents.data(),
                   width,
                   batteries.capacity(),
                   batteries.charge_efficiency(),
                   batteries.discharge_efficiency()};
  double* y = block_y_.data();
  std::size_t seg = 0;
  std::size_t blocks = 0;
  for (std::size_t n0 = 0; n0 < n_m;) {
    const std::size_t block_width = std::min(pulse, n_m - n0);
    const std::size_t block_end = n0 + block_width;
    // One lane-native virtual call decides every lane's pulse height.
    policies[0]->fill_lanes(policies, n0, block_width, args.level, y);
    for (std::size_t k = 0; k < width; ++k) {
      RLBLH_REQUIRE(y[k] >= 0.0,
                    "BatchEngine: policy produced a negative reading");
    }
    std::copy(y, y + width, day.block_y.data() + blocks * width);
    std::size_t n = n0;
    if (is_passthrough) {
      // No battery transfer: the meter measures usage directly and every
      // lane's level holds for the whole block (SimEngine's passthrough
      // blocked path, widened).
      while (n < block_end) {
        while (segments[seg].end <= n) ++seg;
        const double rate = segments[seg].rate;
        const std::size_t run_end = std::min(block_end, segments[seg].end);
        // k-outer with register accumulators, interval-tiled like the
        // non-passthrough kernel; lanes never mix, so order is free.
        for (std::size_t t = n; t < run_end; t += kSegmentTile) {
          const std::size_t tile_end = std::min(run_end, t + kSegmentTile);
          for (std::size_t k = 0; k < width; ++k) {
            const double held_level = args.level[k];
            const double* x = args.usage + k;
            double* lv = args.levels + k;
            double* rd = args.readings + k;
            double savings = args.savings[k];
            double bill = args.bill[k];
            double cost = args.cost[k];
            for (std::size_t i = t; i < tile_end; ++i) {
              lv[i * width] = held_level;
              const double x_n = x[i * width];
              rd[i * width] = x_n;
              savings += rate * (x_n - x_n);
              bill += rate * x_n;
              cost += rate * x_n;
            }
            args.savings[k] = savings;
            args.bill[k] = bill;
            args.cost[k] = cost;
          }
        }
        n = run_end;
      }
    } else {
      while (n < block_end) {
        while (segments[seg].end <= n) ++seg;
        const double rate = segments[seg].rate;
        const std::size_t run_end = std::min(block_end, segments[seg].end);
        run_segment_tiled(args, n, run_end, rate);
        n = run_end;
      }
    }
    // One lane-native virtual call reports every lane's realized usage,
    // straight from the interval-major buffer (no per-lane copy).
    policies[0]->observe_lanes(
        policies, n0,
        LaneBlock{day.usage.data() + n0 * width, width, block_width});
    ++blocks;
    n0 = block_end;
  }
  for (std::size_t k = 0; k < width; ++k) policies[k]->end_day();
  day.blocks = blocks;

  std::size_t total_violations = 0;
  std::size_t* cumulative = batteries.violations();
  for (std::size_t k = 0; k < width; ++k) {
    total_violations += day.battery_violations[k];
    cumulative[k] += day.battery_violations[k];
  }

  RLBLH_OBS_COUNT("sim.blocks", blocks * width);
  RLBLH_OBS_COUNT_NS_SINCE("sim.block_ns", blocks_start);
  RLBLH_OBS_COUNT("sim.days", width);
  RLBLH_OBS_COUNT("sim.intervals", n_m * width);
  RLBLH_OBS_COUNT("sim.battery_violations", total_violations);
  RLBLH_OBS_COUNT("sim.batch_days", width);
  return day;
}

}  // namespace rlblh
