// SimEngine — the interval-stepping core of the day loop, separated from
// household wiring.
//
// The engine owns the per-day loop state only: the reused scratch DayResult,
// the optional invariant checker and the obs counters. It borrows the
// household pieces (trace source, price schedule, battery, policy) per call,
// so the same engine type serves every wiring layer — Simulator binds it to
// one household, FleetSimulator runs one per fleet member — without any of
// them re-implementing the measurement-interval loop of the paper's system
// model (Section II): the policy picks y_n before seeing x_n, the battery
// buffers the difference, and the meter records y_n plus any shortfall.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>

#include "battery/battery.h"
#include "core/policy.h"
#include "meter/trace.h"
#include "pricing/tou.h"
#include "sim/day_result.h"
#include "sim/invariants.h"

namespace rlblh {

/// Runs days of the measurement-interval loop over borrowed household state.
class SimEngine {
 public:
  /// Observer invoked after each completed day of a run_days() loop with
  /// the 0-based day index and that day's record. The reference is to the
  /// engine's reused scratch record: copy what must outlive the call.
  using DayCallback = std::function<void(std::size_t day, const DayResult&)>;

  /// Runs one full day: draws the day's usage from `source`, drives
  /// `policy` against `prices` with `battery` buffering the difference, and
  /// returns the day's record. The reference stays valid until the next
  /// run_day/run_days call on this engine (all scratch buffers are reused
  /// across days, so the steady-state day loop performs no per-day
  /// allocation of its own). The price schedule length must match the
  /// source's day length.
  const DayResult& run_day(TraceSource& source, const TouSchedule& prices,
                           Battery& battery, BlhPolicy& policy);

  /// Runs `days` consecutive days, returning the last result (the cheap
  /// path for long training phases). When `on_day` is set it observes every
  /// day's record in order.
  const DayResult& run_days(TraceSource& source, const TouSchedule& prices,
                            Battery& battery, BlhPolicy& policy,
                            std::size_t days,
                            const DayCallback& on_day = nullptr);

  /// Turns on per-day invariant enforcement: after every run_day the day's
  /// record is verified against the given config and an
  /// InvariantViolationError is thrown on the first violating day. Costs
  /// one extra pass over the day's series and nothing when off.
  void enable_invariant_checks(const InvariantCheckConfig& config);

  /// Turns per-day invariant enforcement back off.
  void disable_invariant_checks() { invariant_config_.reset(); }

  /// True while enable_invariant_checks is in effect.
  bool invariant_checks_enabled() const {
    return invariant_config_.has_value();
  }

 private:
  std::optional<InvariantCheckConfig> invariant_config_;
  DayResult scratch_;  ///< day record reused across run_day calls
};

}  // namespace rlblh
