// Day-loop simulation harness (paper Figure 1's closed loop).
//
// The simulator wires together a trace source (the household), a price
// schedule, a battery and a BlhPolicy, and executes the measurement-interval
// loop of the system model: the policy picks y_n before seeing x_n, the
// battery buffers the difference, and the meter records what was actually
// drawn from the grid (y_n plus any shortfall the battery could not cover).
// The loop itself lives in SimEngine; Simulator binds one household's state
// to it and owns that state across days.
#pragma once

#include <cstddef>
#include <memory>
#include <utility>

#include "battery/battery.h"
#include "core/policy.h"
#include "meter/trace.h"
#include "pricing/tou.h"
#include "sim/day_result.h"
#include "sim/engine.h"
#include "sim/invariants.h"

namespace rlblh {

/// Owns the battery state across days and runs one policy against one
/// household and price schedule.
class Simulator {
 public:
  /// Takes ownership of the trace source. The battery's starting level
  /// persists across days (as a physical battery would). The price schedule
  /// length must match the source's day length.
  Simulator(std::unique_ptr<TraceSource> source, TouSchedule prices,
            Battery battery);

  /// Observer invoked after each completed day of a run_days() loop with
  /// the 0-based day index and that day's record. The reference is to the
  /// engine's reused scratch record: copy what must outlive the call.
  using DayCallback = SimEngine::DayCallback;

  /// Runs one full day with the given policy and returns the day's record.
  /// The reference stays valid until the next run_day/run_days call; copy
  /// it to keep it (all scratch buffers are reused across days, so the
  /// steady-state day loop performs no per-day allocation of its own).
  const DayResult& run_day(BlhPolicy& policy) {
    return engine_.run_day(*source_, prices_, battery_, policy);
  }

  /// Runs `days` consecutive days, returning the last result (the cheap
  /// path for long training phases). When `on_day` is set it observes every
  /// day's record in order, so callers needing intermediate days no longer
  /// re-implement the day loop.
  const DayResult& run_days(BlhPolicy& policy, std::size_t days,
                            const DayCallback& on_day = nullptr) {
    return engine_.run_days(*source_, prices_, battery_, policy, days, on_day);
  }

  /// Replaces the price schedule from the next day on (length must match).
  void set_prices(TouSchedule prices);

  /// Current price schedule.
  const TouSchedule& prices() const { return prices_; }

  /// Battery state (level persists between days).
  const Battery& battery() const { return battery_; }

  /// Resets the battery to the given level and clears its counters.
  void reset_battery(double level_kwh) { battery_.reset(level_kwh); }

  /// The driven household/trace source.
  TraceSource& source() { return *source_; }

  /// Turns on per-day invariant enforcement: after every run_day the day's
  /// record is verified against the given config and an
  /// InvariantViolationError is thrown on the first violating day. This is
  /// the debug switch behind tests and `simulate_cli --check-invariants`;
  /// it costs one extra pass over the day's series and nothing when off.
  void enable_invariant_checks(const InvariantCheckConfig& config) {
    engine_.enable_invariant_checks(config);
  }

  /// Turns per-day invariant enforcement back off.
  void disable_invariant_checks() { engine_.disable_invariant_checks(); }

  /// True while enable_invariant_checks is in effect.
  bool invariant_checks_enabled() const {
    return engine_.invariant_checks_enabled();
  }

 private:
  std::unique_ptr<TraceSource> source_;
  TouSchedule prices_;
  Battery battery_;
  SimEngine engine_;
};

}  // namespace rlblh
