// Record of one simulated day (split out of simulator.h so the invariant
// checker can consume a day without depending on the Simulator itself).
#pragma once

#include <cstddef>
#include <vector>

#include "meter/trace.h"

namespace rlblh {

/// Everything observable about one simulated day.
struct DayResult {
  DayTrace usage;                      ///< x_n
  DayTrace readings;                   ///< effective meter readings
  std::vector<double> battery_levels;  ///< b_n at the *start* of interval n
  double savings_cents = 0.0;          ///< sum r_n (x_n - y_n)
  double bill_cents = 0.0;             ///< sum r_n y_n
  double usage_cost_cents = 0.0;       ///< sum r_n x_n
  std::size_t battery_violations = 0;  ///< clipped intervals this day
};

}  // namespace rlblh
