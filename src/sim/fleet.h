// Fleet-scale simulation: N heterogeneous households batched over threads.
//
// A fleet is a vector of ScenarioSpecs — one per household, freely mixing
// policies, household presets and pricing plans. FleetSimulator runs every
// household's full train/eval schedule as one cell of a SweepRunner grid
// and reports per-household EvaluationResults plus fleet aggregates
// (mean / p50 / p95 of SR, CC and MI).
//
// Determinism contract (same as SweepRunner's): results are bitwise
// identical across thread counts. Each household cell is a pure function of
// (its resolved spec, the shared price schedule): it constructs its own
// trace source, battery, policy and SimEngine, and its RNG streams are
// splitmix-derived from (fleet_seed, household index) — adjacent households
// and adjacent fleet seeds get unrelated streams (util/rng.h,
// derive_stream_seed). Price schedules are built once per distinct pricing
// slice before the fan-out and shared immutably by reference.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/experiment.h"
#include "sim/scenario.h"

namespace rlblh {

/// Execution knobs for a fleet run.
struct FleetOptions {
  /// Worker count; 0 resolves to ThreadPool::default_thread_count().
  std::size_t threads = 0;
};

/// Mean and percentiles of one metric over the fleet's households.
struct MetricSummary {
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
};

/// Outcome of one fleet run.
struct FleetResult {
  /// Per-household evaluation, index-aligned with the fleet's specs.
  std::vector<EvaluationResult> households;
  MetricSummary saving_ratio;
  MetricSummary mean_cc;
  MetricSummary normalized_mi;
  /// Total battery clipping events over all households' eval windows.
  std::size_t battery_violations = 0;
};

/// Linear-interpolation quantile of `values` at q in [0, 1] (sorts a copy;
/// the deterministic definition the fleet aggregates use). Requires a
/// nonempty input.
double fleet_quantile(std::vector<double> values, double q);

/// Runs a heterogeneous batch of scenarios with per-household RNG streams.
class FleetSimulator {
 public:
  /// Takes the household specs by value. The specs' own seed fields are
  /// treated as placeholders: run() re-seeds every household from
  /// (fleet_seed, index) so fleets are reproducible from one number.
  explicit FleetSimulator(std::vector<ScenarioSpec> specs,
                          FleetOptions options = {});

  /// Household specs as given (seeds unresolved).
  const std::vector<ScenarioSpec>& specs() const { return specs_; }

  /// Number of households.
  std::size_t size() const { return specs_.size(); }

  /// The spec household `index` actually runs under `fleet_seed`: the given
  /// spec with its policy seed and household seed replaced by the derived
  /// per-household streams. Exposed so tests can reproduce any single
  /// household through the plain Simulator path.
  static ScenarioSpec resolved_spec(ScenarioSpec spec,
                                    std::uint64_t fleet_seed,
                                    std::size_t index);

  /// Runs every household's full schedule and aggregates. Bitwise
  /// deterministic in (specs, fleet_seed) regardless of thread count.
  FleetResult run(std::uint64_t fleet_seed);

 private:
  std::vector<ScenarioSpec> specs_;
  FleetOptions options_;
};

}  // namespace rlblh
