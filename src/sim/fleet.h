// Fleet-scale simulation: N heterogeneous households batched over threads.
//
// A fleet is a vector of ScenarioSpecs — one per household, freely mixing
// policies, household presets and pricing plans. FleetSimulator batches
// households into chunks of K (one SweepRunner cell per chunk, not per
// household), runs every household's full train/eval schedule, and reports
// per-household EvaluationResults plus fleet aggregates (mean / p50 / p95
// of SR, CC and MI).
//
// Chunked execution exists because per-household fixed cost used to drown
// the day loop at fleet scale: each cell leases a RunArena whose SimEngine
// day buffers and EvaluationAccumulator (with its levels^4 MI tables) are
// reused across the chunk's households, and the seed-independent parts of
// each distinct spec — the resolved household preset and the policy
// parameter bag (ScenarioBlueprint), plus the price schedule — are resolved
// once before the fan-out and shared read-only by every cell.
//
// Determinism contract (same as SweepRunner's, extended to chunking):
// results are bitwise identical across thread counts AND chunk sizes. Each
// household is a pure function of (its spec blueprint, the shared price
// schedule, its RNG streams): streams are splitmix-derived from
// (fleet_seed, household index) — never from chunk geometry — and arena
// reuse is invisible because every leased buffer is either fully rewritten
// per day (engine scratch) or reset to fresh-constructed state per
// household (accumulator). Chunk results are collected and folded in grid
// order on the calling thread.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/experiment.h"
#include "sim/scenario.h"

namespace rlblh {

/// Execution knobs for a fleet run.
struct FleetOptions {
  /// Worker count; 0 resolves to ThreadPool::default_thread_count().
  std::size_t threads = 0;
  /// Households per work unit; 0 picks a size targeting ~16 chunks per
  /// worker (capped at 4096) so stragglers rebalance. Any value produces
  /// bitwise-identical results — chunking is an execution detail.
  std::size_t chunk = 0;
  /// When false, FleetResult::households stays empty and only the
  /// aggregates are produced — the memory-lean mode for very large fleets
  /// (no O(N) result vector survives the run).
  bool keep_households = true;
  /// Lockstep batch width W: within a chunk, households sharing a blueprint
  /// are grouped into batches of exactly W and run through the SoA
  /// BatchEngine; the remainder (and any width <= 1) takes the scalar
  /// engine. Bitwise invisible — every width produces identical results —
  /// but not free in memory: each lane holds its own EvaluationAccumulator
  /// (~24 MB of MI tables at default geometry), so a W-lane arena costs
  /// ~W x 24 MB per worker. Defaults to 0 (scalar) for that reason.
  std::size_t batch_width = 0;
};

/// Mean and percentiles of one metric over the fleet's households.
struct MetricSummary {
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
};

/// Outcome of one fleet run.
struct FleetResult {
  /// Per-household evaluation, index-aligned with the fleet's specs.
  /// Empty when FleetOptions::keep_households is false.
  std::vector<EvaluationResult> households;
  MetricSummary saving_ratio;
  MetricSummary mean_cc;
  MetricSummary normalized_mi;
  /// Total battery clipping events over all households' eval windows.
  std::size_t battery_violations = 0;
};

/// Linear-interpolation quantile of `values` at q in [0, 1] (sorts a copy;
/// the deterministic definition the fleet aggregates use). Requires a
/// nonempty input of finite values; a single value is every quantile of
/// itself.
double fleet_quantile(std::vector<double> values, double q);

/// Runs a heterogeneous batch of scenarios with per-household RNG streams.
class FleetSimulator {
 public:
  /// Takes the household specs by value. The specs' own seed fields are
  /// treated as placeholders: run() re-seeds every household from
  /// (fleet_seed, index) so fleets are reproducible from one number.
  explicit FleetSimulator(std::vector<ScenarioSpec> specs,
                          FleetOptions options = {});

  /// Household specs as given (seeds unresolved).
  const std::vector<ScenarioSpec>& specs() const { return specs_; }

  /// Number of households.
  std::size_t size() const { return specs_.size(); }

  /// The spec household `index` actually runs under `fleet_seed`: the given
  /// spec with its policy seed and household seed replaced by the derived
  /// per-household streams. Exposed so tests can reproduce any single
  /// household through the plain Simulator path.
  static ScenarioSpec resolved_spec(ScenarioSpec spec,
                                    std::uint64_t fleet_seed,
                                    std::size_t index);

  /// Runs every household's full schedule and aggregates. Bitwise
  /// deterministic in (specs, fleet_seed) regardless of thread count or
  /// chunk size.
  FleetResult run(std::uint64_t fleet_seed);

 private:
  std::vector<ScenarioSpec> specs_;
  FleetOptions options_;
};

}  // namespace rlblh
