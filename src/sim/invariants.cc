#include "sim/invariants.h"

#include <cmath>
#include <sstream>

namespace rlblh {

namespace {

std::string format_violation(const InvariantViolation& v) {
  std::ostringstream out;
  out << invariant_kind_name(v.kind);
  if (v.interval != InvariantViolation::kWholeDay) {
    out << " at interval " << v.interval;
  }
  out << ": " << v.detail;
  return out.str();
}

}  // namespace

const char* invariant_kind_name(InvariantViolation::Kind kind) {
  switch (kind) {
    case InvariantViolation::Kind::kBatteryBound:
      return "battery-bound";
    case InvariantViolation::Kind::kReadingRange:
      return "reading-range";
    case InvariantViolation::Kind::kPulseShape:
      return "pulse-shape";
    case InvariantViolation::Kind::kFeasibleAction:
      return "feasible-action";
    case InvariantViolation::Kind::kEnergyConservation:
      return "energy-conservation";
    case InvariantViolation::Kind::kSavingsAccounting:
      return "savings-accounting";
    case InvariantViolation::Kind::kClippingOccurred:
      return "clipping-occurred";
  }
  return "unknown";
}

InvariantChecker::InvariantChecker(InvariantCheckConfig config)
    : config_(config) {
  RLBLH_REQUIRE(config_.battery_capacity > 0.0,
                "InvariantChecker: battery capacity must be > 0");
  RLBLH_REQUIRE(config_.usage_cap >= 0.0,
                "InvariantChecker: usage cap must be >= 0");
  RLBLH_REQUIRE(config_.tolerance >= 0.0,
                "InvariantChecker: tolerance must be >= 0");
}

std::vector<InvariantViolation> InvariantChecker::check_day(
    const DayResult& day, const TouSchedule& prices, double end_level) const {
  const std::size_t n_m = day.usage.intervals();
  RLBLH_REQUIRE(day.readings.intervals() == n_m &&
                    day.battery_levels.size() == n_m &&
                    prices.intervals() == n_m,
                "InvariantChecker: day record series lengths must match");

  std::vector<InvariantViolation> violations;
  const double tol = config_.tolerance;
  const double b_m = config_.battery_capacity;
  const auto report = [&](InvariantViolation::Kind kind, std::size_t interval,
                          std::string detail) {
    violations.push_back({kind, interval, std::move(detail)});
  };
  const auto number = [](double value) {
    std::ostringstream out;
    out.precision(17);
    out << value;
    return out.str();
  };

  // Clipping expectation first: it gates the checks that only hold exactly
  // on clip-free days.
  if (config_.expect_feasible && day.battery_violations > 0) {
    report(InvariantViolation::Kind::kClippingOccurred,
           InvariantViolation::kWholeDay,
           std::to_string(day.battery_violations) +
               " clipping event(s) on a day expected feasible");
  }
  const bool clip_free = day.battery_violations == 0;

  // Battery bound: every recorded start-of-interval level, plus the level
  // the day ended on, must lie in [0, b_M] (paper Eq. 2).
  for (std::size_t n = 0; n < n_m; ++n) {
    const double b = day.battery_levels[n];
    if (!(b >= -tol && b <= b_m + tol) || !std::isfinite(b)) {
      report(InvariantViolation::Kind::kBatteryBound, n,
             "level " + number(b) + " outside [0, " + number(b_m) + "]");
    }
  }
  if (!(end_level >= -tol && end_level <= b_m + tol) ||
      !std::isfinite(end_level)) {
    report(InvariantViolation::Kind::kBatteryBound,
           InvariantViolation::kWholeDay,
           "end-of-day level " + number(end_level) + " outside [0, " +
               number(b_m) + "]");
  }

  // Reading range: y_n in [0, x_M] (Section II). On days with clipping the
  // meter legitimately reads above the scheduled pulse (served shortfall),
  // so the upper bound only applies clip-free.
  for (std::size_t n = 0; n < n_m; ++n) {
    const double y = day.readings.at(n);
    if (y < -tol || !std::isfinite(y)) {
      report(InvariantViolation::Kind::kReadingRange, n,
             "reading " + number(y) + " below 0");
    } else if (config_.usage_cap > 0.0 && clip_free &&
               y > config_.usage_cap + tol) {
      report(InvariantViolation::Kind::kReadingRange, n,
             "reading " + number(y) + " above x_M = " +
                 number(config_.usage_cap));
    }
  }

  if (config_.decision_interval > 0) {
    const std::size_t n_d = config_.decision_interval;
    for (std::size_t begin = 0; begin < n_m; begin += n_d) {
      const std::size_t end = std::min(begin + n_d, n_m);
      // Rectangularity: the reading is constant across the whole pulse
      // (exact equality modulo tolerance; shortfall is excluded by the
      // clip-free gate).
      if (clip_free) {
        const double head = day.readings.at(begin);
        for (std::size_t n = begin + 1; n < end; ++n) {
          if (std::abs(day.readings.at(n) - head) > tol) {
            report(InvariantViolation::Kind::kPulseShape, n,
                   "reading " + number(day.readings.at(n)) +
                       " differs from pulse head " + number(head) +
                       " (pulse starts at " + std::to_string(begin) + ")");
            break;
          }
        }
      }
      // Feasible-action restriction (Section III-B): from the level at the
      // pulse start, the scheduled magnitude can neither overflow the
      // battery when usage stays at zero, nor drain it when usage stays at
      // the cap, over the pulse's width.
      if (config_.expect_feasible && config_.usage_cap > 0.0 && clip_free) {
        const double b = day.battery_levels[begin];
        const double m = day.readings.at(begin);
        const double w = static_cast<double>(end - begin);
        if (b + w * m > b_m + tol) {
          report(InvariantViolation::Kind::kFeasibleAction, begin,
                 "pulse " + number(m) + " from level " + number(b) +
                     " over " + std::to_string(end - begin) +
                     " interval(s) can overflow b_M = " + number(b_m));
        }
        if (b + w * (m - config_.usage_cap) < -tol) {
          report(InvariantViolation::Kind::kFeasibleAction, begin,
                 "pulse " + number(m) + " from level " + number(b) +
                     " over " + std::to_string(end - begin) +
                     " interval(s) can drain the battery under x_M = " +
                     number(config_.usage_cap));
        }
      }
    }
  }

  // Energy conservation: on a feasible (lossless, clip-free) day the grid
  // over-draw equals the battery's level gain.
  if (config_.expect_feasible && clip_free) {
    const double start = day.battery_levels.front();
    const double net = day.readings.total() - day.usage.total();
    const double delta = end_level - start;
    if (std::abs(net - delta) > tol * (1.0 + std::abs(net))) {
      report(InvariantViolation::Kind::kEnergyConservation,
             InvariantViolation::kWholeDay,
             "sum(y) - sum(x) = " + number(net) +
                 " but battery level changed by " + number(delta));
    }
  }

  // Savings accounting: S = sum r_n (x_n - y_n), bill = sum r_n y_n, and
  // the identity S + bill = usage cost (all recomputed from the traces in
  // the simulator's accumulation order).
  double savings = 0.0, bill = 0.0, cost = 0.0;
  for (std::size_t n = 0; n < n_m; ++n) {
    const double r = prices.rate(n);
    savings += r * (day.usage.at(n) - day.readings.at(n));
    bill += r * day.readings.at(n);
    cost += r * day.usage.at(n);
  }
  const auto money_mismatch = [&](double recorded, double recomputed) {
    return std::abs(recorded - recomputed) >
           tol * (1.0 + std::abs(recomputed));
  };
  if (money_mismatch(day.savings_cents, savings)) {
    report(InvariantViolation::Kind::kSavingsAccounting,
           InvariantViolation::kWholeDay,
           "recorded savings " + number(day.savings_cents) +
               " != sum r_n (x_n - y_n) = " + number(savings));
  }
  if (money_mismatch(day.bill_cents, bill)) {
    report(InvariantViolation::Kind::kSavingsAccounting,
           InvariantViolation::kWholeDay,
           "recorded bill " + number(day.bill_cents) +
               " != sum r_n y_n = " + number(bill));
  }
  if (money_mismatch(day.usage_cost_cents, cost)) {
    report(InvariantViolation::Kind::kSavingsAccounting,
           InvariantViolation::kWholeDay,
           "recorded usage cost " + number(day.usage_cost_cents) +
               " != sum r_n x_n = " + number(cost));
  }
  if (std::abs(day.savings_cents + day.bill_cents - day.usage_cost_cents) >
      tol * (1.0 + std::abs(day.usage_cost_cents))) {
    report(InvariantViolation::Kind::kSavingsAccounting,
           InvariantViolation::kWholeDay,
           "S + bill = " + number(day.savings_cents + day.bill_cents) +
               " != usage cost " + number(day.usage_cost_cents));
  }

  return violations;
}

void InvariantChecker::enforce_day(const DayResult& day,
                                   const TouSchedule& prices,
                                   double end_level) const {
  const auto violations = check_day(day, prices, end_level);
  if (violations.empty()) return;
  std::ostringstream out;
  out << violations.size() << " invariant violation(s):";
  for (const auto& v : violations) out << "\n  " << format_violation(v);
  throw InvariantViolationError(out.str());
}

}  // namespace rlblh
