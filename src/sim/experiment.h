// Train/evaluate experiment harness used by the figure benchmarks.
//
// Every evaluation in the paper follows the same shape: let the policy run
// (and learn) for a training phase, then measure SR / CC / MI over an
// evaluation window. evaluate_policy packages that loop; the metric side
// lives in EvaluationAccumulator so that any day-loop driver — the single
// household path here, FleetSimulator's per-household cells, or a bench's
// custom loop — folds days into identical statistics.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "core/policy.h"
#include "core/registry.h"
#include "meter/household.h"
#include "privacy/correlation.h"
#include "privacy/metrics.h"
#include "privacy/mutual_information.h"
#include "sim/day_result.h"
#include "sim/simulator.h"

namespace rlblh {

/// Phase lengths and metric settings for one evaluation.
struct EvaluationConfig {
  std::size_t train_days = 60;  ///< days run before measurement starts
  std::size_t eval_days = 120;  ///< days over which metrics are averaged
  std::size_t mi_levels = 8;    ///< quantization levels for the MI estimate
};

/// Aggregated metrics over the evaluation window.
struct EvaluationResult {
  double saving_ratio = 0.0;        ///< paper Eq. 22 (fraction, not %)
  double mean_cc = 0.0;             ///< paper Eq. 21
  double normalized_mi = 0.0;       ///< paper Eq. 20
  double mean_daily_savings_cents = 0.0;
  double mean_daily_bill_cents = 0.0;
  double mean_daily_usage_cost_cents = 0.0;
  std::size_t battery_violations = 0;  ///< clipping events during evaluation
};

/// Folds evaluation days into the paper's metric set (SR, CC, MI, daily
/// cost figures, violation count). One accumulator observes the evaluation
/// window of one run; result() reports the same EvaluationResult whichever
/// driver fed it, so the single-household path and the fleet path cannot
/// drift apart metric-wise.
class EvaluationAccumulator {
 public:
  /// `intervals` slots per day and `usage_cap` bound the MI quantizer (both
  /// streams share the usage cap); `mi_levels` quantization levels.
  EvaluationAccumulator(std::size_t intervals, std::size_t mi_levels,
                        double usage_cap);

  /// Folds in one evaluation day priced by `prices`.
  void observe_day(const DayResult& day, const TouSchedule& prices);

  /// Same statistics from strided lane views plus the per-lane scalars of a
  /// batch day — the copy-free path the batch evaluation loop feeds (no
  /// DayResult extraction). Folding a batch lane through here is bitwise
  /// identical to extracting the lane and using the overload above.
  void observe_day(ConstTraceLane usage, ConstTraceLane readings,
                   double bill_cents, double usage_cost_cents,
                   std::size_t battery_violations, const TouSchedule& prices);

  /// Number of days folded in.
  std::size_t days() const { return days_; }

  /// Metrics over the observed days. Requires days() >= 1.
  EvaluationResult result() const;

  /// Returns the accumulator to a fresh state for the given geometry. When
  /// (intervals, mi_levels, usage_cap) match the current geometry the MI
  /// estimator's buffers are reused (sparse zeroing, no reallocation);
  /// otherwise it is rebuilt. Either way the post-state is indistinguishable
  /// from a freshly constructed accumulator — fleet workers rely on that to
  /// recycle one accumulator across thousands of households.
  void reset(std::size_t intervals, std::size_t mi_levels, double usage_cap);

 private:
  std::size_t intervals_;
  std::size_t mi_levels_;
  double usage_cap_;
  SavingRatioAccumulator sr_;
  CorrelationAccumulator cc_;
  PairwiseMiEstimator mi_;
  double bill_cents_total_ = 0.0;
  double usage_cost_cents_total_ = 0.0;
  std::size_t battery_violations_ = 0;
  std::size_t days_ = 0;
};

/// Runs `config.train_days` days with the policy (learning as it goes), then
/// `config.eval_days` days during which SR, CC and MI are accumulated.
EvaluationResult evaluate_policy(Simulator& simulator, BlhPolicy& policy,
                                 const EvaluationConfig& config);

/// Convenience factory: a Simulator over a synthetic household with the
/// given price schedule and battery capacity. The battery starts at half
/// charge.
Simulator make_household_simulator(const HouseholdConfig& household,
                                   TouSchedule prices,
                                   double battery_capacity_kwh,
                                   std::uint64_t seed);

/// Same, but resolving the household through the household registry (name
/// plus its dotted parameter slice) instead of an explicit config.
Simulator make_household_simulator(const std::string& household,
                                   const SpecParams& params,
                                   TouSchedule prices,
                                   double battery_capacity_kwh,
                                   std::uint64_t seed);

}  // namespace rlblh
