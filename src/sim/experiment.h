// Train/evaluate experiment harness used by the figure benchmarks.
//
// Every evaluation in the paper follows the same shape: let the policy run
// (and learn) for a training phase, then measure SR / CC / MI over an
// evaluation window. ExperimentRunner packages that loop together with the
// metric accumulators so each bench states only its parameters.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "core/policy.h"
#include "meter/household.h"
#include "sim/simulator.h"

namespace rlblh {

/// Phase lengths and metric settings for one evaluation.
struct EvaluationConfig {
  std::size_t train_days = 60;  ///< days run before measurement starts
  std::size_t eval_days = 120;  ///< days over which metrics are averaged
  std::size_t mi_levels = 8;    ///< quantization levels for the MI estimate
};

/// Aggregated metrics over the evaluation window.
struct EvaluationResult {
  double saving_ratio = 0.0;        ///< paper Eq. 22 (fraction, not %)
  double mean_cc = 0.0;             ///< paper Eq. 21
  double normalized_mi = 0.0;       ///< paper Eq. 20
  double mean_daily_savings_cents = 0.0;
  double mean_daily_bill_cents = 0.0;
  double mean_daily_usage_cost_cents = 0.0;
  std::size_t battery_violations = 0;  ///< clipping events during evaluation
};

/// Runs `config.train_days` days with the policy (learning as it goes), then
/// `config.eval_days` days during which SR, CC and MI are accumulated.
EvaluationResult evaluate_policy(Simulator& simulator, BlhPolicy& policy,
                                 const EvaluationConfig& config);

/// Convenience factory: a Simulator over a synthetic household with the
/// given price schedule and battery capacity. The battery starts at half
/// charge.
Simulator make_household_simulator(const HouseholdConfig& household,
                                   TouSchedule prices,
                                   double battery_capacity_kwh,
                                   std::uint64_t seed);

}  // namespace rlblh
