#include "sim/scenario.h"

#include <utility>
#include <vector>

#include "baselines/mdp.h"
#include "baselines/policy_registry.h"
#include "meter/household_registry.h"
#include "pricing/pricing_registry.h"
#include "sim/engine.h"
#include "util/error.h"
#include "util/rng.h"

namespace rlblh {

namespace {

const std::vector<std::string> kTopLevelKeys = {
    "policy", "household", "pricing", "battery", "nd",
    "seed",   "hseed",     "train",   "eval",    "mi"};

/// Copies every key of `from` into `into`, replacing existing keys — the
/// merge that lets dotted spec params override the shared geometry.
void merge_params(SpecParams& into, const SpecParams& from) {
  for (const auto& key : from.keys()) {
    into.set(key, from.get_string(key, ""));
  }
}

}  // namespace

ScenarioSpec ScenarioSpec::parse(const std::string& spec) {
  const SpecParams params = parse_spec(spec);
  ScenarioSpec out;
  for (const auto& key : params.keys()) {
    const std::size_t dot = key.find('.');
    if (dot == std::string::npos) continue;
    const std::string prefix = key.substr(0, dot);
    const std::string subkey = key.substr(dot + 1);
    if (subkey.empty()) {
      throw ConfigError("spec key '" + key + "' has an empty component key");
    }
    const std::string value = params.get_string(key, "");
    if (prefix == "policy") {
      out.policy_params.set(subkey, value);
    } else if (prefix == "household") {
      out.household_params.set(subkey, value);
    } else if (prefix == "pricing") {
      out.pricing_params.set(subkey, value);
    } else {
      throw ConfigError("spec key '" + key +
                        "': unknown component prefix '" + prefix +
                        "' (use policy.*, household.* or pricing.*)");
    }
  }
  // Validate the remaining (top-level) keys in one pass; dotted keys were
  // consumed above, so strip them before the check.
  SpecParams top;
  for (const auto& key : params.keys()) {
    if (key.find('.') == std::string::npos) {
      top.set(key, params.get_string(key, ""));
    }
  }
  top.allow_only(kTopLevelKeys, "scenario spec");
  out.policy = top.get_string("policy", out.policy);
  out.household = top.get_string("household", out.household);
  out.pricing = top.get_string("pricing", out.pricing);
  out.battery_kwh = top.get_double("battery", out.battery_kwh);
  out.nd = top.get_size("nd", out.nd);
  out.seed = top.get_u64("seed", out.seed);
  if (top.has("hseed")) out.hseed = top.get_u64("hseed", 0);
  out.train_days = top.get_size("train", out.train_days);
  out.eval_days = top.get_size("eval", out.eval_days);
  out.mi_levels = top.get_size("mi", out.mi_levels);
  return out;
}

std::string ScenarioSpec::canonical() const {
  SpecParams params;
  params.set("policy", policy);
  params.set("household", household);
  params.set("pricing", pricing);
  params.set("battery", battery_kwh);
  params.set("nd", nd);
  params.set("seed", seed);
  if (hseed.has_value()) params.set("hseed", *hseed);
  params.set("train", train_days);
  params.set("eval", eval_days);
  params.set("mi", mi_levels);
  for (const auto& key : policy_params.keys()) {
    params.set("policy." + key, policy_params.get_string(key, ""));
  }
  for (const auto& key : household_params.keys()) {
    params.set("household." + key, household_params.get_string(key, ""));
  }
  for (const auto& key : pricing_params.keys()) {
    params.set("pricing." + key, pricing_params.get_string(key, ""));
  }
  return params.canonical();
}

TouSchedule make_scenario_pricing(const ScenarioSpec& spec) {
  return make_pricing(spec.pricing, spec.pricing_params);
}

std::unique_ptr<TraceSource> make_scenario_source(const ScenarioSpec& spec) {
  return make_trace_source(spec.household, spec.household_params,
                           spec.household_seed());
}

std::unique_ptr<BlhPolicy> make_scenario_policy(const ScenarioSpec& spec) {
  SpecParams bag;
  bag.set("battery", spec.battery_kwh);
  bag.set("nd", spec.nd);
  bag.set("seed", spec.seed);
  merge_params(bag, spec.policy_params);
  return make_policy(spec.policy, bag);
}

void pretrain_if_needed(const ScenarioSpec& spec, const TouSchedule& prices,
                        BlhPolicy& policy) {
  auto* mdp = dynamic_cast<MdpBlhPolicy*>(&policy);
  if (mdp == nullptr || mdp->solved()) return;
  const std::size_t days = spec.train_days > 0 ? spec.train_days : 1;
  auto trainer = make_trace_source(
      spec.household, spec.household_params,
      derive_stream_seed(spec.household_seed(), 1));
  for (std::size_t d = 0; d < days; ++d) {
    mdp->observe_training_day(trainer->next_day(), prices);
  }
  mdp->solve();
}

Scenario build_scenario(const ScenarioSpec& spec) {
  TouSchedule prices = make_scenario_pricing(spec);
  auto source = make_scenario_source(spec);
  Battery battery(spec.battery_kwh, spec.battery_kwh / 2.0);
  auto policy = make_scenario_policy(spec);
  Simulator simulator(std::move(source), std::move(prices), battery);
  return Scenario{spec, std::move(policy), std::move(simulator)};
}

EvaluationResult run_scenario(Scenario& scenario) {
  const ScenarioSpec& spec = scenario.spec;
  pretrain_if_needed(spec, scenario.simulator.prices(), *scenario.policy);
  EvaluationConfig config;
  config.train_days = spec.train_days;
  config.eval_days = spec.eval_days;
  config.mi_levels = spec.mi_levels;
  return evaluate_policy(scenario.simulator, *scenario.policy, config);
}

EvaluationResult run_spec(const ScenarioSpec& spec,
                          const TouSchedule& prices) {
  RunArena arena;
  return run_spec(spec, prices, arena);
}

ScenarioBlueprint make_scenario_blueprint(const ScenarioSpec& spec) {
  ScenarioBlueprint bp;
  if (spec.household != "csv") {
    bp.household =
        make_household_config(spec.household, spec.household_params);
  }
  // Mirror make_scenario_policy's bag exactly: shared geometry first, then
  // the dotted overrides (so a pinned policy.seed lands on top and stays).
  bp.policy_bag.set("battery", spec.battery_kwh);
  bp.policy_bag.set("nd", spec.nd);
  bp.policy_bag.set("seed", spec.seed);
  merge_params(bp.policy_bag, spec.policy_params);
  bp.policy_seed_pinned = spec.policy_params.has("seed");
  return bp;
}

std::unique_ptr<TraceSource> make_blueprint_source(const ScenarioSpec& spec,
                                                   const ScenarioBlueprint& bp,
                                                   std::uint64_t hseed) {
  if (!bp.household.has_value()) {
    // csv replay (or any future config-less source): the registry factory
    // is the source of truth and the seed is ignored there.
    return make_trace_source(spec.household, spec.household_params, hseed);
  }
  return std::make_unique<HouseholdTraceSource>(*bp.household, hseed);
}

EvaluationAccumulator& RunArena::accumulator(std::size_t intervals,
                                             std::size_t mi_levels,
                                             double usage_cap) {
  if (accumulator_.has_value()) {
    accumulator_->reset(intervals, mi_levels, usage_cap);
  } else {
    accumulator_.emplace(intervals, mi_levels, usage_cap);
  }
  return *accumulator_;
}

namespace {

/// One household's live components, built from a blueprint: the seeded
/// trace source and the seeded (and, for mdp, pre-trained) policy. This is
/// the single construction path for the scalar and batched runners, so a
/// batch lane starts from bit-identical state to a scalar run.
struct HouseholdLane {
  std::unique_ptr<TraceSource> source;
  std::unique_ptr<BlhPolicy> policy;
};

HouseholdLane make_household_lane(const ScenarioSpec& spec,
                                  const ScenarioBlueprint& bp,
                                  const TouSchedule& prices,
                                  std::uint64_t policy_seed,
                                  std::uint64_t household_seed) {
  HouseholdLane lane;
  lane.source = make_blueprint_source(spec, bp, household_seed);
  if (bp.policy_seed_pinned) {
    lane.policy = make_policy(spec.policy, bp.policy_bag);
  } else {
    SpecParams bag = bp.policy_bag;
    bag.set("seed", policy_seed);
    lane.policy = make_policy(spec.policy, bag);
  }
  // Blueprint-aware pretrain_if_needed: same trainer stream derivation,
  // but the trainer source comes from the cached household config.
  if (auto* mdp = dynamic_cast<MdpBlhPolicy*>(lane.policy.get());
      mdp != nullptr && !mdp->solved()) {
    const std::size_t days = spec.train_days > 0 ? spec.train_days : 1;
    auto trainer = make_blueprint_source(
        spec, bp, derive_stream_seed(household_seed, 1));
    for (std::size_t d = 0; d < days; ++d) {
      mdp->observe_training_day(trainer->next_day(), prices);
    }
    mdp->solve();
  }
  return lane;
}

/// The scalar train/eval schedule over already-built components — the tail
/// of run_blueprint, shared with the batched runner's fallback path.
EvaluationResult run_household_schedule(const ScenarioSpec& spec,
                                        const TouSchedule& prices,
                                        TraceSource& source, BlhPolicy& policy,
                                        RunArena& arena) {
  Battery battery(spec.battery_kwh, spec.battery_kwh / 2.0);
  SimEngine& engine = arena.engine();
  if (spec.train_days > 0) {
    engine.run_days(source, prices, battery, policy, spec.train_days);
  }
  EvaluationAccumulator& accumulator = arena.accumulator(
      source.intervals(), spec.mi_levels, source.usage_cap());
  engine.run_days(source, prices, battery, policy, spec.eval_days,
                  [&](std::size_t, const DayResult& day) {
                    accumulator.observe_day(day, prices);
                  });
  return accumulator.result();
}

}  // namespace

EvaluationResult run_blueprint(const ScenarioSpec& spec,
                               const ScenarioBlueprint& bp,
                               const TouSchedule& prices,
                               std::uint64_t policy_seed,
                               std::uint64_t household_seed, RunArena& arena) {
  RLBLH_REQUIRE(spec.eval_days >= 1,
                "run_blueprint: need at least one evaluation day");
  HouseholdLane lane =
      make_household_lane(spec, bp, prices, policy_seed, household_seed);
  return run_household_schedule(spec, prices, *lane.source, *lane.policy,
                                arena);
}

EvaluationAccumulator& RunArena::lane_accumulator(std::size_t lane,
                                                  std::size_t intervals,
                                                  std::size_t mi_levels,
                                                  double usage_cap) {
  if (lane >= lane_accumulators_.size()) lane_accumulators_.resize(lane + 1);
  std::unique_ptr<EvaluationAccumulator>& slot = lane_accumulators_[lane];
  if (slot == nullptr) {
    slot = std::make_unique<EvaluationAccumulator>(intervals, mi_levels,
                                                   usage_cap);
  } else {
    slot->reset(intervals, mi_levels, usage_cap);
  }
  return *slot;
}

void run_blueprint_batch(const ScenarioSpec& spec, const ScenarioBlueprint& bp,
                         const TouSchedule& prices,
                         std::span<const std::uint64_t> policy_seeds,
                         std::span<const std::uint64_t> household_seeds,
                         RunArena& arena, std::span<EvaluationResult> out) {
  const std::size_t width = out.size();
  RLBLH_REQUIRE(width >= 1, "run_blueprint_batch: need at least one lane");
  RLBLH_REQUIRE(
      policy_seeds.size() == width && household_seeds.size() == width,
      "run_blueprint_batch: seed spans must match the lane width");
  RLBLH_REQUIRE(spec.eval_days >= 1,
                "run_blueprint_batch: need at least one evaluation day");
  std::vector<HouseholdLane> lanes;
  lanes.reserve(width);
  for (std::size_t k = 0; k < width; ++k) {
    lanes.push_back(make_household_lane(spec, bp, prices, policy_seeds[k],
                                        household_seeds[k]));
  }
  if (lanes[0].policy->pulse_width() == 0) {
    // No pulse-block support (the lowpass baseline): the lockstep engine
    // cannot drive this policy, so each lane runs the scalar schedule —
    // the same code path run_blueprint takes, hence still bit-identical.
    for (std::size_t k = 0; k < width; ++k) {
      out[k] = run_household_schedule(spec, prices, *lanes[k].source,
                                      *lanes[k].policy, arena);
    }
    return;
  }

  std::vector<TraceSource*> sources(width);
  std::vector<BlhPolicy*> policies(width);
  for (std::size_t k = 0; k < width; ++k) {
    sources[k] = lanes[k].source.get();
    policies[k] = lanes[k].policy.get();
  }
  BatteryLanes& batteries = arena.battery_lanes();
  batteries.reset(width, spec.battery_kwh, spec.battery_kwh / 2.0);
  BatchEngine& engine = arena.batch_engine();
  for (std::size_t d = 0; d < spec.train_days; ++d) {
    engine.run_day(sources, prices, batteries, policies);
  }
  const std::size_t intervals = sources[0]->intervals();
  const double usage_cap = sources[0]->usage_cap();
  std::vector<EvaluationAccumulator*> accumulators(width);
  for (std::size_t k = 0; k < width; ++k) {
    accumulators[k] =
        &arena.lane_accumulator(k, intervals, spec.mi_levels, usage_cap);
  }
  for (std::size_t d = 0; d < spec.eval_days; ++d) {
    const BatchDay& day = engine.run_day(sources, prices, batteries, policies);
    for (std::size_t k = 0; k < width; ++k) {
      // Copy-free: each accumulator reads its lane through strided views of
      // the interval-major day and takes the money scalars the engine
      // already summed per lane (the same values extract_lane would copy).
      accumulators[k]->observe_day(day.usage_lane(k), day.readings_lane(k),
                                   day.bill_cents[k], day.usage_cost_cents[k],
                                   day.battery_violations[k], prices);
    }
  }
  for (std::size_t k = 0; k < width; ++k) out[k] = accumulators[k]->result();
}

EvaluationResult run_spec(const ScenarioSpec& spec, const TouSchedule& prices,
                          RunArena& arena) {
  const ScenarioBlueprint bp = make_scenario_blueprint(spec);
  return run_blueprint(spec, bp, prices, spec.seed, spec.household_seed(),
                       arena);
}

}  // namespace rlblh
