#include "sim/engine.h"

#include <chrono>

#include "obs/obs.h"
#include "util/error.h"

namespace rlblh {

const DayResult& SimEngine::run_day(TraceSource& source,
                                    const TouSchedule& prices,
                                    Battery& battery, BlhPolicy& policy) {
  const std::size_t n_m = source.intervals();
  RLBLH_REQUIRE(prices.intervals() == n_m,
                "SimEngine: price schedule length must match the day length");
  // Reuse the scratch record's buffers: after the first day the loop below
  // overwrites them in place instead of reallocating.
  DayResult& result = scratch_;
  result.usage = source.next_day();  // move-assigned, no copy
  if (result.readings.intervals() != n_m) {
    result.readings = DayTrace(n_m);
  }
  result.battery_levels.clear();
  result.battery_levels.reserve(n_m);
  result.savings_cents = 0.0;
  result.bill_cents = 0.0;
  result.usage_cost_cents = 0.0;

  const DayTrace& usage = result.usage;
  const std::size_t violations_before = battery.violation_count();

  policy.begin_day(prices);
  for (std::size_t n = 0; n < n_m; ++n) {
    result.battery_levels.push_back(battery.level());
    const double x = usage.at(n);
    double effective_reading;
    if (policy.passthrough()) {
      // No-battery reference: the meter measures usage directly.
      (void)policy.reading(n, battery.level());
      effective_reading = x;
    } else {
      const double y = policy.reading(n, battery.level());
      const BatteryStep step = battery.step(y, x);
      // Energy the battery could not supply is drawn from the grid on top
      // of the scheduled reading, so the meter sees y + shortfall.
      effective_reading = y + step.grid_extra;
    }
    result.readings.set(n, effective_reading);
    policy.observe_usage(n, x);

    const double rate = prices.rate(n);
    result.savings_cents += rate * (x - effective_reading);
    result.bill_cents += rate * effective_reading;
    result.usage_cost_cents += rate * x;
  }
  policy.end_day();

  result.battery_violations = battery.violation_count() - violations_before;
  if (invariant_config_.has_value()) {
    RLBLH_OBS_NOW(check_start);
    InvariantChecker(*invariant_config_)
        .enforce_day(result, prices, battery.level());
    RLBLH_OBS_COUNT_NS_SINCE("sim.invariant_check_ns", check_start);
    RLBLH_OBS_COUNT("sim.invariant_checked_days", 1);
  }
  RLBLH_OBS_COUNT("sim.days", 1);
  RLBLH_OBS_COUNT("sim.intervals", n_m);
  RLBLH_OBS_COUNT("sim.battery_violations", result.battery_violations);
  return result;
}

const DayResult& SimEngine::run_days(TraceSource& source,
                                     const TouSchedule& prices,
                                     Battery& battery, BlhPolicy& policy,
                                     std::size_t days,
                                     const DayCallback& on_day) {
  RLBLH_REQUIRE(days >= 1, "SimEngine: days must be >= 1");
  RLBLH_OBS_SPAN("sim.run_days");
  for (std::size_t d = 0; d < days; ++d) {
    const DayResult& day = run_day(source, prices, battery, policy);
    if (on_day) on_day(d, day);
  }
  return scratch_;
}

void SimEngine::enable_invariant_checks(const InvariantCheckConfig& config) {
  // Construct a checker up front so a bad config fails here, not mid-run.
  InvariantChecker checker(config);
  invariant_config_ = checker.config();
}

}  // namespace rlblh
