#include "sim/engine.h"

#include <algorithm>
#include <chrono>
#include <span>

#include "obs/obs.h"
#include "util/error.h"

namespace rlblh {

const DayResult& SimEngine::run_day(TraceSource& source,
                                    const TouSchedule& prices,
                                    Battery& battery, BlhPolicy& policy) {
  const std::size_t n_m = source.intervals();
  RLBLH_REQUIRE(prices.intervals() == n_m,
                "SimEngine: price schedule length must match the day length");
  // Reuse the scratch record's buffers: after the first day the loop below
  // overwrites them in place instead of reallocating, and in-place trace
  // sources fill the usage buffer without a per-day allocation either.
  DayResult& result = scratch_;
  source.next_day_into(result.usage);
  RLBLH_REQUIRE(result.usage.intervals() == n_m,
                "SimEngine: trace source produced a day of the wrong length");
  if (result.readings.intervals() != n_m) {
    result.readings = DayTrace(n_m);
  }
  result.battery_levels.resize(n_m);
  result.savings_cents = 0.0;
  result.bill_cents = 0.0;
  result.usage_cost_cents = 0.0;

  // Resize-once raw views: the loops below fill every slot exactly once.
  // Values written are battery levels (in [0, capacity]) and effective
  // readings (y + shortfall, both >= 0 and finite), so DayTrace's
  // finite/>= 0 invariant holds without the per-interval checked set().
  const double* const x = result.usage.values().data();
  double* const readings = result.readings.mutable_data();
  double* const levels = result.battery_levels.data();
  const std::size_t violations_before = battery.violation_count();

  policy.begin_day(prices);
  const std::size_t pulse = policy.pulse_width();
  const bool is_passthrough = policy.passthrough();
  if (pulse == 0) {
    // Per-interval reference path for policies without block support. The
    // arithmetic below is the contract the blocked path must reproduce
    // bitwise: same expressions, same per-interval accumulation order.
    for (std::size_t n = 0; n < n_m; ++n) {
      levels[n] = battery.level();
      const double x_n = x[n];
      double effective_reading;
      if (is_passthrough) {
        // No-battery reference: the meter measures usage directly.
        (void)policy.reading(n, battery.level());
        effective_reading = x_n;
      } else {
        const double y = policy.reading(n, battery.level());
        const BatteryStep step = battery.step(y, x_n);
        // Energy the battery could not supply is drawn from the grid on
        // top of the scheduled reading, so the meter sees y + shortfall.
        effective_reading = y + step.grid_extra;
      }
      readings[n] = effective_reading;
      policy.observe_usage(n, x_n);

      const double rate = prices.rate(n);
      result.savings_cents += rate * (x_n - effective_reading);
      result.bill_cents += rate * effective_reading;
      result.usage_cost_cents += rate * x_n;
    }
  } else {
    // Pulse-blocked path: one fill_block/observe_block virtual pair per
    // pulse, a tight non-virtual scalar loop in between, and the price
    // looked up once per constant-rate segment instead of per interval.
    // Every per-interval expression and the order of the += chains match
    // the reference path above exactly, so the results are bitwise equal.
    RLBLH_OBS_NOW(blocks_start);
    const std::vector<PriceZone>& segments = prices.segments();
    std::size_t seg = 0;
    std::size_t blocks = 0;
    double savings_cents = 0.0;
    double bill_cents = 0.0;
    double usage_cost_cents = 0.0;
    for (std::size_t n0 = 0; n0 < n_m;) {
      const std::size_t width = std::min(pulse, n_m - n0);
      const std::size_t block_end = n0 + width;
      const double y = policy.fill_block(n0, width, battery.level());
      std::size_t n = n0;
      if (is_passthrough) {
        // No battery transfer: the meter measures usage directly and the
        // level holds for the whole block.
        const double level = battery.level();
        while (n < block_end) {
          while (segments[seg].end <= n) ++seg;
          const double rate = segments[seg].rate;
          const std::size_t run_end = std::min(block_end, segments[seg].end);
          for (; n < run_end; ++n) {
            levels[n] = level;
            const double x_n = x[n];
            readings[n] = x_n;
            savings_cents += rate * (x_n - x_n);
            bill_cents += rate * x_n;
            usage_cost_cents += rate * x_n;
          }
        }
      } else {
        while (n < block_end) {
          while (segments[seg].end <= n) ++seg;
          const double rate = segments[seg].rate;
          const std::size_t run_end = std::min(block_end, segments[seg].end);
          for (; n < run_end; ++n) {
            levels[n] = battery.level();
            const double x_n = x[n];
            const BatteryStep step = battery.step(y, x_n);
            const double effective_reading = y + step.grid_extra;
            readings[n] = effective_reading;
            savings_cents += rate * (x_n - effective_reading);
            bill_cents += rate * effective_reading;
            usage_cost_cents += rate * x_n;
          }
        }
      }
      // A width-1 block's observe degenerates to one observe_usage call.
      // observe_block overrides are contractually identical to the
      // per-interval loop, so this is the same observable sequence while
      // sparing pulse_width()==1 policies (stepping) a per-interval
      // virtual block call — measured ~2x on the stepping day loop.
      if (width == 1) {
        policy.observe_usage(n0, x[n0]);
      } else {
        policy.observe_block(n0, ConstTraceLane(x + n0, 1, width));
      }
      ++blocks;
      n0 = block_end;
    }
    result.savings_cents = savings_cents;
    result.bill_cents = bill_cents;
    result.usage_cost_cents = usage_cost_cents;
    RLBLH_OBS_COUNT("sim.blocks", blocks);
    RLBLH_OBS_COUNT_NS_SINCE("sim.block_ns", blocks_start);
  }
  policy.end_day();

  result.battery_violations = battery.violation_count() - violations_before;
  if (invariant_config_.has_value()) {
    RLBLH_OBS_NOW(check_start);
    InvariantChecker(*invariant_config_)
        .enforce_day(result, prices, battery.level());
    RLBLH_OBS_COUNT_NS_SINCE("sim.invariant_check_ns", check_start);
    RLBLH_OBS_COUNT("sim.invariant_checked_days", 1);
  }
  RLBLH_OBS_COUNT("sim.days", 1);
  RLBLH_OBS_COUNT("sim.intervals", n_m);
  RLBLH_OBS_COUNT("sim.battery_violations", result.battery_violations);
  return result;
}

const DayResult& SimEngine::run_days(TraceSource& source,
                                     const TouSchedule& prices,
                                     Battery& battery, BlhPolicy& policy,
                                     std::size_t days,
                                     const DayCallback& on_day) {
  RLBLH_REQUIRE(days >= 1, "SimEngine: days must be >= 1");
  RLBLH_OBS_SPAN("sim.run_days");
  for (std::size_t d = 0; d < days; ++d) {
    const DayResult& day = run_day(source, prices, battery, policy);
    if (on_day) on_day(d, day);
  }
  return scratch_;
}

void SimEngine::enable_invariant_checks(const InvariantCheckConfig& config) {
  // Construct a checker up front so a bad config fails here, not mid-run.
  InvariantChecker checker(config);
  invariant_config_ = checker.config();
}

}  // namespace rlblh
