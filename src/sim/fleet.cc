#include "sim/fleet.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <string>
#include <utility>

#include "obs/obs.h"
#include "sim/sweep.h"
#include "util/error.h"
#include "util/rng.h"

namespace rlblh {

namespace {

/// Key identifying a distinct price schedule: plan name plus its parameter
/// slice. Households with equal keys share one immutable TouSchedule.
std::string pricing_key(const ScenarioSpec& spec) {
  return spec.pricing + "|" + spec.pricing_params.canonical();
}

MetricSummary summarize(const std::vector<EvaluationResult>& results,
                        double EvaluationResult::*metric) {
  std::vector<double> values;
  values.reserve(results.size());
  double sum = 0.0;
  for (const auto& result : results) {
    values.push_back(result.*metric);
    sum += result.*metric;
  }
  MetricSummary summary;
  summary.mean = sum / static_cast<double>(values.size());
  summary.p50 = fleet_quantile(values, 0.50);
  summary.p95 = fleet_quantile(values, 0.95);
  return summary;
}

}  // namespace

double fleet_quantile(std::vector<double> values, double q) {
  RLBLH_REQUIRE(!values.empty(), "fleet_quantile: need at least one value");
  RLBLH_REQUIRE(q >= 0.0 && q <= 1.0, "fleet_quantile: q must be in [0,1]");
  std::sort(values.begin(), values.end());
  const double position = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(position);
  if (lo + 1 >= values.size()) return values.back();
  const double frac = position - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[lo + 1] * frac;
}

FleetSimulator::FleetSimulator(std::vector<ScenarioSpec> specs,
                               FleetOptions options)
    : specs_(std::move(specs)), options_(options) {
  RLBLH_REQUIRE(!specs_.empty(),
                "FleetSimulator: need at least one household spec");
}

ScenarioSpec FleetSimulator::resolved_spec(ScenarioSpec spec,
                                           std::uint64_t fleet_seed,
                                           std::size_t index) {
  const std::uint64_t base = derive_stream_seed(fleet_seed, index);
  spec.seed = derive_stream_seed(base, 0);
  spec.hseed = derive_stream_seed(base, 1);
  return spec;
}

FleetResult FleetSimulator::run(std::uint64_t fleet_seed) {
  RLBLH_OBS_SPAN("fleet.run");
  const std::size_t n = specs_.size();
  RLBLH_OBS_GAUGE("fleet.size", n);

  std::vector<ScenarioSpec> resolved;
  resolved.reserve(n);
  for (std::size_t h = 0; h < n; ++h) {
    resolved.push_back(resolved_spec(specs_[h], fleet_seed, h));
  }

  // One immutable schedule per distinct pricing slice, built serially
  // before the fan-out; cells only read them. std::map nodes are stable,
  // so the pointers survive later insertions.
  std::map<std::string, TouSchedule> plans;
  std::vector<const TouSchedule*> plan_of(n);
  for (std::size_t h = 0; h < n; ++h) {
    const std::string key = pricing_key(resolved[h]);
    auto it = plans.find(key);
    if (it == plans.end()) {
      it = plans.emplace(key, make_scenario_pricing(resolved[h])).first;
    }
    plan_of[h] = &it->second;
  }
  RLBLH_OBS_GAUGE("fleet.distinct_plans", plans.size());

  SweepRunner runner(SweepOptions{options_.threads});
  FleetResult result;
  result.households = runner.run(n, [&](std::size_t h) {
    RLBLH_OBS_SPAN("fleet.household");
    EvaluationResult evaluation = run_spec(resolved[h], *plan_of[h]);
    RLBLH_OBS_COUNT("fleet.households", 1);
    RLBLH_OBS_COUNT("fleet.days",
                    resolved[h].train_days + resolved[h].eval_days);
    return evaluation;
  });
  runner.shutdown();  // make worker-side counters visible to snapshots

  result.saving_ratio =
      summarize(result.households, &EvaluationResult::saving_ratio);
  result.mean_cc = summarize(result.households, &EvaluationResult::mean_cc);
  result.normalized_mi =
      summarize(result.households, &EvaluationResult::normalized_mi);
  for (const auto& household : result.households) {
    result.battery_violations += household.battery_violations;
  }
  return result;
}

}  // namespace rlblh
