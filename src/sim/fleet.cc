#include "sim/fleet.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "obs/obs.h"
#include "sim/sweep.h"
#include "util/error.h"
#include "util/rng.h"

namespace rlblh {

namespace {

/// Key identifying a distinct price schedule: plan name plus its parameter
/// slice. Households with equal keys share one immutable TouSchedule.
std::string pricing_key(const ScenarioSpec& spec) {
  return spec.pricing + "|" + spec.pricing_params.canonical();
}

/// Key identifying a distinct spec blueprint: the canonical spec text with
/// the seed fields normalized away. run() overwrites both seeds per
/// household anyway, so specs equal up to seeds share one blueprint (a
/// pinned `policy.seed=` override lives in policy_params and survives the
/// normalization, as it must).
std::string blueprint_key(ScenarioSpec spec) {
  spec.seed = 0;
  spec.hseed.reset();
  return spec.canonical();
}

/// Lends RunArenas to chunk cells. Arenas persist across chunks — at most
/// one per concurrently running cell ever exists — and which arena a chunk
/// receives is scheduling-dependent, which is safe precisely because
/// RunArena reuse is semantically invisible (see fleet.h).
class ArenaPool {
 public:
  std::unique_ptr<RunArena> acquire() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!free_.empty()) {
        std::unique_ptr<RunArena> arena = std::move(free_.back());
        free_.pop_back();
        return arena;
      }
    }
    return std::make_unique<RunArena>();
  }

  void release(std::unique_ptr<RunArena> arena) {
    std::lock_guard<std::mutex> lock(mutex_);
    free_.push_back(std::move(arena));
  }

 private:
  std::mutex mutex_;
  std::vector<std::unique_ptr<RunArena>> free_;
};

/// Households per chunk. Explicit requests are honored (clamped to the
/// fleet); auto mode targets ~16 chunks per worker so slow chunks rebalance
/// across the pool, capped so one cell's result vector stays modest.
std::size_t resolve_chunk(std::size_t requested, std::size_t n,
                          std::size_t threads) {
  constexpr std::size_t kMaxChunk = 4096;
  if (requested != 0) return std::min(requested, n);
  if (threads <= 1) return std::min(n, kMaxChunk);
  const std::size_t slots = threads * 16;
  const std::size_t target = (n + slots - 1) / slots;
  return std::clamp(target, std::size_t{1}, kMaxChunk);
}

MetricSummary summarize(const std::vector<double>& values) {
  double sum = 0.0;
  for (const double value : values) sum += value;
  MetricSummary summary;
  summary.mean = sum / static_cast<double>(values.size());
  summary.p50 = fleet_quantile(values, 0.50);
  summary.p95 = fleet_quantile(values, 0.95);
  return summary;
}

}  // namespace

double fleet_quantile(std::vector<double> values, double q) {
  RLBLH_REQUIRE(!values.empty(), "fleet_quantile: need at least one value");
  RLBLH_REQUIRE(q >= 0.0 && q <= 1.0, "fleet_quantile: q must be in [0,1]");
  for (const double value : values) {
    RLBLH_REQUIRE(std::isfinite(value),
                  "fleet_quantile: values must be finite");
  }
  // One value is every quantile of itself (the single-household fleet:
  // p50 == p95 == mean == the value).
  if (values.size() == 1) return values.front();
  std::sort(values.begin(), values.end());
  const double position = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(position);
  if (lo + 1 >= values.size()) return values.back();
  const double frac = position - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[lo + 1] * frac;
}

FleetSimulator::FleetSimulator(std::vector<ScenarioSpec> specs,
                               FleetOptions options)
    : specs_(std::move(specs)), options_(options) {
  RLBLH_REQUIRE(!specs_.empty(),
                "FleetSimulator: need at least one household spec");
}

ScenarioSpec FleetSimulator::resolved_spec(ScenarioSpec spec,
                                           std::uint64_t fleet_seed,
                                           std::size_t index) {
  const std::uint64_t base = derive_stream_seed(fleet_seed, index);
  spec.seed = derive_stream_seed(base, 0);
  spec.hseed = derive_stream_seed(base, 1);
  return spec;
}

FleetResult FleetSimulator::run(std::uint64_t fleet_seed) {
  RLBLH_OBS_SPAN("fleet.run");
  const std::size_t n = specs_.size();
  RLBLH_OBS_GAUGE("fleet.size", n);

  // One immutable schedule per distinct pricing slice and one blueprint per
  // distinct spec (up to seeds), both built serially before the fan-out;
  // cells only read them. std::map nodes are stable, so the pointers
  // survive later insertions. Seeds never reach the pricing factory, so
  // keying on the unresolved specs is exact.
  std::map<std::string, TouSchedule> plans;
  std::vector<const TouSchedule*> plan_of(n);
  std::map<std::string, ScenarioBlueprint> blueprints;
  std::vector<const ScenarioBlueprint*> blueprint_of(n);
  for (std::size_t h = 0; h < n; ++h) {
    const std::string plan_key = pricing_key(specs_[h]);
    auto plan_it = plans.find(plan_key);
    if (plan_it == plans.end()) {
      plan_it = plans.emplace(plan_key, make_scenario_pricing(specs_[h])).first;
    }
    plan_of[h] = &plan_it->second;

    const std::string bp_key = blueprint_key(specs_[h]);
    auto bp_it = blueprints.find(bp_key);
    if (bp_it == blueprints.end()) {
      bp_it =
          blueprints.emplace(bp_key, make_scenario_blueprint(specs_[h])).first;
    }
    blueprint_of[h] = &bp_it->second;
  }
  RLBLH_OBS_GAUGE("fleet.distinct_plans", plans.size());
  RLBLH_OBS_GAUGE("fleet.distinct_blueprints", blueprints.size());

  SweepRunner runner(SweepOptions{options_.threads});
  const std::size_t chunk = resolve_chunk(options_.chunk, n, runner.threads());
  const std::size_t chunks = (n + chunk - 1) / chunk;
  RLBLH_OBS_GAUGE("fleet.chunk_size", chunk);
  RLBLH_OBS_GAUGE("fleet.chunks", chunks);

  ArenaPool arenas;
  std::vector<std::vector<EvaluationResult>> chunk_results =
      runner.run(chunks, [&](std::size_t c) {
        RLBLH_OBS_SPAN("fleet.chunk");
        const std::size_t first = c * chunk;
        const std::size_t last = std::min(first + chunk, n);
        std::unique_ptr<RunArena> arena = arenas.acquire();
        std::vector<EvaluationResult> results(last - first);
        std::size_t days = 0;
        const auto run_scalar = [&](std::size_t h) {
          const std::uint64_t base = derive_stream_seed(fleet_seed, h);
          results[h - first] = run_blueprint(
              specs_[h], *blueprint_of[h], *plan_of[h],
              /*policy_seed=*/derive_stream_seed(base, 0),
              /*household_seed=*/derive_stream_seed(base, 1), *arena);
          days += specs_[h].train_days + specs_[h].eval_days;
        };
        if (options_.batch_width <= 1) {
          for (std::size_t h = first; h < last; ++h) run_scalar(h);
        } else {
          // Group the chunk's households by blueprint (bench fleets cycle
          // through a spec mix, so equal blueprints are rarely adjacent —
          // bucket by identity, not by run). Full W-batches go through the
          // lockstep engine; the remainder of each bucket runs scalar.
          // Results are written by household index, so regrouping cannot
          // perturb output order.
          const std::size_t width = options_.batch_width;
          std::map<const ScenarioBlueprint*, std::vector<std::size_t>> groups;
          for (std::size_t h = first; h < last; ++h) {
            groups[blueprint_of[h]].push_back(h);
          }
          std::vector<std::uint64_t> policy_seeds(width);
          std::vector<std::uint64_t> household_seeds(width);
          std::vector<EvaluationResult> batch_out(width);
          for (auto& [bp, members] : groups) {
            std::size_t i = 0;
            for (; i + width <= members.size(); i += width) {
              for (std::size_t k = 0; k < width; ++k) {
                const std::size_t h = members[i + k];
                const std::uint64_t base = derive_stream_seed(fleet_seed, h);
                policy_seeds[k] = derive_stream_seed(base, 0);
                household_seeds[k] = derive_stream_seed(base, 1);
              }
              const std::size_t h0 = members[i];
              run_blueprint_batch(specs_[h0], *bp, *plan_of[h0], policy_seeds,
                                  household_seeds, *arena, batch_out);
              for (std::size_t k = 0; k < width; ++k) {
                const std::size_t h = members[i + k];
                results[h - first] = batch_out[k];
                days += specs_[h].train_days + specs_[h].eval_days;
              }
              RLBLH_OBS_COUNT("fleet.batched_households", width);
            }
            for (; i < members.size(); ++i) run_scalar(members[i]);
          }
        }
        arenas.release(std::move(arena));
        RLBLH_OBS_COUNT("fleet.households", last - first);
        RLBLH_OBS_COUNT("fleet.days", days);
        return results;
      });
  runner.shutdown();  // make worker-side counters visible to snapshots

  // Fold in grid order: chunk-major, household-ascending inside each chunk
  // — exactly household order, so the aggregates match the per-household
  // formulation bit for bit.
  FleetResult result;
  std::vector<double> sr;
  std::vector<double> cc;
  std::vector<double> mi;
  sr.reserve(n);
  cc.reserve(n);
  mi.reserve(n);
  if (options_.keep_households) result.households.reserve(n);
  for (std::vector<EvaluationResult>& chunk_result : chunk_results) {
    for (EvaluationResult& household : chunk_result) {
      sr.push_back(household.saving_ratio);
      cc.push_back(household.mean_cc);
      mi.push_back(household.normalized_mi);
      result.battery_violations += household.battery_violations;
      if (options_.keep_households) result.households.push_back(household);
    }
    chunk_result.clear();
    chunk_result.shrink_to_fit();  // stream, don't hold two copies of O(N)
  }
  result.saving_ratio = summarize(sr);
  result.mean_cc = summarize(cc);
  result.normalized_mi = summarize(mi);
  return result;
}

}  // namespace rlblh
