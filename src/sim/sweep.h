// Parallel sweep engine for the figure reproductions.
//
// Every evaluation in the paper is a sweep: a grid of (configuration, seed)
// cells, each of which trains and measures one Simulator/policy pair in
// isolation. SweepRunner fans those cells out across a fixed-size thread
// pool with a hard determinism guarantee:
//
//   parallel results are bitwise identical to serial results.
//
// The guarantee holds because (a) each cell is required to be a pure
// function of its grid index — it constructs its own Simulator, policy and
// rlblh::Rng streams from per-cell seeds and shares no mutable state with
// other cells — and (b) results are collected into a pre-sized vector by
// grid index and reduced in grid order on the calling thread, never in
// completion order. Thread count therefore changes wall-clock time only.
#pragma once

#include <chrono>
#include <cstddef>
#include <future>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "obs/obs.h"
#include "sim/experiment.h"
#include "util/running_stats.h"
#include "util/thread_pool.h"

namespace rlblh {

/// Execution knobs for a sweep.
struct SweepOptions {
  /// Worker count; 0 resolves to ThreadPool::default_thread_count()
  /// (the RLBLH_THREADS environment variable, else the hardware).
  std::size_t threads = 0;
};

/// Runs independent grid cells across a thread pool, returning results in
/// grid order regardless of completion order.
class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions options = {});

  /// Worker count in effect (>= 1). 1 means the serial path: cells run
  /// inline on the calling thread in grid order.
  std::size_t threads() const { return threads_; }

  /// Joins and discards the worker pool. Call before snapshotting the
  /// metrics registry: the join makes every worker-side counter increment
  /// visible to the snapshotting thread. Subsequent run() calls execute
  /// serially on the caller.
  void shutdown() { pool_.reset(); }

  /// Evaluates `fn(cell_index)` for every cell in [0, cells) and returns the
  /// results indexed by cell. `fn` must be a pure function of the index (see
  /// the file comment); it is invoked concurrently from pool workers when
  /// threads() > 1. An exception thrown by a cell is rethrown here — the one
  /// from the lowest-indexed failing cell, deterministically.
  template <typename Fn>
  auto run(std::size_t cells, Fn&& fn)
      -> std::vector<std::invoke_result_t<Fn&, std::size_t>> {
    using R = std::invoke_result_t<Fn&, std::size_t>;
    RLBLH_OBS_SPAN("sweep.run");
    std::vector<R> results;
    results.reserve(cells);
    if (threads_ <= 1 || cells <= 1) {
      for (std::size_t i = 0; i < cells; ++i) {
        results.push_back(timed_cell(fn, i));
      }
      return results;
    }
    std::vector<std::future<R>> futures;
    futures.reserve(cells);
    for (std::size_t i = 0; i < cells; ++i) {
      futures.push_back(
          pool_->submit([&fn, i] { return timed_cell(fn, i); }));
    }
    {
      RLBLH_OBS_SPAN("sweep.collect");
      for (std::size_t i = 0; i < cells; ++i) {
        results.push_back(futures[i].get());  // grid order, rethrows
      }
    }
    return results;
  }

  /// Declarative (config, seed) grid: evaluates `fn(config, seed)` for every
  /// pair and returns results flattened config-major — cell (c, s) lands at
  /// index c * seeds.size() + s.
  template <typename Config, typename Seed, typename Fn>
  auto run_grid(const std::vector<Config>& configs,
                const std::vector<Seed>& seeds, Fn&& fn)
      -> std::vector<std::invoke_result_t<Fn&, const Config&, Seed>> {
    const std::size_t per_config = seeds.size();
    return run(configs.size() * per_config, [&](std::size_t cell) {
      return fn(configs[cell / per_config], seeds[cell % per_config]);
    });
  }

 private:
  /// Evaluates one cell, feeding the cell-latency histogram when
  /// observability is recording. Timing wraps the cell without touching its
  /// inputs or outputs, so determinism is unaffected.
  template <typename Fn>
  static auto timed_cell(Fn& fn, std::size_t i)
      -> std::invoke_result_t<Fn&, std::size_t> {
    if (!obs::enabled()) return fn(i);
    [[maybe_unused]] const auto start = std::chrono::steady_clock::now();
    auto result = fn(i);
    RLBLH_OBS_OBSERVE("sweep.cell_ns",
                      std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - start)
                          .count());
    RLBLH_OBS_COUNT("sweep.cells", 1);
    return result;
  }

  std::size_t threads_;
  std::optional<ThreadPool> pool_;  // engaged only when threads_ > 1
};

/// Per-metric RunningStats over a set of EvaluationResults (typically the
/// seeds of one config row). Cells accumulate locally; partial accumulators
/// combine with merge() — the RunningStats parallel-combine rule — so a
/// grid-order reduction over per-cell stats is independent of which thread
/// produced each cell.
struct EvaluationStats {
  RunningStats saving_ratio;
  RunningStats mean_cc;
  RunningStats normalized_mi;
  RunningStats mean_daily_savings_cents;
  RunningStats mean_daily_bill_cents;
  RunningStats mean_daily_usage_cost_cents;
  std::size_t battery_violations = 0;

  /// Folds one cell's evaluation into the accumulator.
  void add(const EvaluationResult& result);

  /// Combines another accumulator (parallel-combine rule).
  void merge(const EvaluationStats& other);

  /// Number of evaluations folded in.
  std::size_t count() const { return saving_ratio.count(); }
};

/// Grid-order mean over a contiguous [first, first + count) slice of sweep
/// results (e.g. the seeds of one config in run_grid's config-major layout).
EvaluationStats mean_over_cells(const std::vector<EvaluationResult>& results,
                                std::size_t first, std::size_t count);

}  // namespace rlblh
