// Household usage-profile generator (the UMass "HomeC" substitute).
//
// A HouseholdModel samples a daily occupancy pattern (wake / leave / return /
// sleep times, work days, vacancy days) and composes the appliance processes
// of meter/appliances.h on top of it, yielding minute-level usage profiles
// x_n in [0, x_M]. Occupancy parameters are runtime-mutable so experiments
// can shift the behavioural pattern mid-run (paper Section VIII, "usage
// patterns changing").
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "meter/appliances.h"
#include "meter/trace.h"
#include "util/rng.h"

namespace rlblh {

/// Behavioural and physical parameters of a simulated household.
struct HouseholdConfig {
  std::size_t intervals = kIntervalsPerDay;  ///< measurement intervals per day
  double usage_cap = kDefaultUsageCap;       ///< x_M in kWh

  // Occupancy pattern, in intervals (minutes), with per-day normal jitter.
  double wake_mean = 390.0;    ///< ~6:30
  double wake_sigma = 25.0;
  double leave_mean = 485.0;   ///< ~8:05
  double leave_sigma = 20.0;
  double back_mean = 1050.0;   ///< ~17:30
  double back_sigma = 40.0;
  double sleep_mean = 1380.0;  ///< ~23:00
  double sleep_sigma = 25.0;

  double workday_probability = 0.72;  ///< house empties during the day
  double vacancy_probability = 0.03;  ///< nobody home the whole day

  double appliance_scale = 1.0;  ///< multiplies every appliance power draw

  // Fleet composition knobs (power values before appliance_scale).
  double hvac_setback = 0.45;      ///< HVAC duty multiplier while away
  double ev_probability = 0.0;     ///< chance the EV charges overnight;
                                   ///< 0 (default) removes the charger
  double ev_power = 0.030;         ///< EV draw in kWh per interval

  /// Validates ranges; throws ConfigError when inconsistent.
  void validate() const;
};

/// Generates daily usage profiles for one household.
class HouseholdModel {
 public:
  /// Builds the default appliance fleet under the given config and seed.
  HouseholdModel(HouseholdConfig config, std::uint64_t seed);

  /// Samples the next day's profile. When `events` is non-null it receives
  /// the ground-truth appliance activations of the day; when `occupancy`
  /// is non-null it receives the day's realized occupancy pattern (ground
  /// truth for occupancy-inference attacks).
  DayTrace generate_day(std::vector<ApplianceEvent>* events = nullptr,
                        Occupancy* occupancy = nullptr);

  /// Samples the next day's profile into `out`, reusing its buffer so a
  /// steady-state day loop allocates nothing. Identical draws and values to
  /// generate_day().
  void generate_day_into(DayTrace& out,
                         std::vector<ApplianceEvent>* events = nullptr,
                         Occupancy* occupancy = nullptr);

  /// Samples the next day's profile into a strided lane of a caller-owned
  /// buffer (the batch engine's SoA path). The lane length must equal
  /// config().intervals. Identical draws and values to generate_day() —
  /// both run the same occupancy + appliance sequence on this model's RNG;
  /// only the destination layout differs.
  void generate_day_into_lane(TraceLane out,
                              std::vector<ApplianceEvent>* events = nullptr,
                              Occupancy* occupancy = nullptr);

  /// Samples just an occupancy pattern (exposed for tests).
  Occupancy sample_occupancy();

  /// Current configuration.
  const HouseholdConfig& config() const { return config_; }

  /// Replaces the behavioural configuration (validated); takes effect on the
  /// next generated day. Appliance fleet is rebuilt with the new scale.
  void set_config(const HouseholdConfig& config);

 private:
  void build_appliances();
  void generate_into_zeroed(TraceLane out, std::vector<ApplianceEvent>* events,
                            Occupancy* occupancy);

  HouseholdConfig config_;
  Rng rng_;
  std::vector<std::unique_ptr<Appliance>> appliances_;
};

/// TraceSource adapter over HouseholdModel.
class HouseholdTraceSource final : public TraceSource {
 public:
  HouseholdTraceSource(HouseholdConfig config, std::uint64_t seed)
      : model_(std::move(config), seed) {}

  DayTrace next_day() override { return model_.generate_day(); }
  void next_day_into(DayTrace& out) override {
    model_.generate_day_into(out);
  }
  void next_day_into_lane(TraceLane out) override {
    model_.generate_day_into_lane(out);
  }

  /// Lane-native batch synthesis. Each lane's model generates into its own
  /// contiguous scratch day (the appliance composition is read-modify-write
  /// per event, which is much cheaper against an L1-resident day buffer
  /// than against a strided lane of the W-wide block), then the scratches
  /// are scattered interval-tile by interval-tile so every cache line of
  /// the block is touched once instead of once per lane. Identical RNG
  /// draws and values to the per-lane default — only store order changes.
  void next_days_into_lanes(std::span<TraceSource* const> sources,
                            double* data, std::size_t intervals) override;

  std::size_t intervals() const override { return model_.config().intervals; }
  double usage_cap() const override { return model_.config().usage_cap; }

  /// Access to the underlying model (e.g. to shift behaviour mid-run).
  HouseholdModel& model() { return model_; }

 private:
  HouseholdModel model_;
  DayTrace lane_scratch_{1};  ///< batch-synthesis staging; see above
};

}  // namespace rlblh
