// Per-measurement-interval usage statistics (paper Section V-A).
//
// The synthetic-data heuristic tracks, "for each measurement interval n, the
// sample distribution of x_n" and periodically replays whole synthetic days
// "where x_n is randomly sampled according to the statistical characteristic
// of the n-th measurement interval". UsageStatsTracker is that tracker: one
// EmpiricalDistribution per interval, observed day by day, sampled column by
// column to produce synthetic DayTraces.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <vector>

#include "meter/trace.h"
#include "util/empirical_dist.h"
#include "util/rng.h"

namespace rlblh {

/// Tracks the empirical distribution of usage at every interval of the day.
class UsageStatsTracker {
 public:
  /// Creates a tracker for days of `intervals` slots with values in
  /// [0, usage_cap]. `bins` controls the histogram resolution per interval.
  UsageStatsTracker(std::size_t intervals, double usage_cap,
                    std::size_t bins = 24, std::size_t reservoir = 48);

  /// Folds one observed day into the per-interval distributions. Accepts
  /// any read-only lane view (a DayTrace converts implicitly), so the RL
  /// observe path can feed its day buffer without a validating copy.
  void observe_day(ConstTraceLane day, Rng& rng);

  /// Number of days observed so far.
  std::size_t days_observed() const { return days_; }

  /// Draws a synthetic day: each interval sampled independently from its own
  /// empirical distribution. Requires days_observed() >= 1.
  DayTrace sample_day(Rng& rng) const;

  /// Mean usage at interval n over all observed days.
  double mean_at(std::size_t n) const;

  /// Distribution for interval n (read-only; for tests/diagnostics).
  const EmpiricalDistribution& distribution(std::size_t n) const;

  /// Number of intervals per day.
  std::size_t intervals() const { return dists_.size(); }

  /// Upper bound of tracked values (x_M).
  double usage_cap() const { return cap_; }

  /// Writes every interval's distribution state at full precision (the SYN
  /// heuristic's sampling state must survive a daemon restart bitwise).
  void save(std::ostream& out) const;

  /// Restores state written by save() into a tracker of identical geometry.
  /// Throws DataError on malformed input or geometry mismatch.
  void load(std::istream& in);

 private:
  double cap_;
  std::size_t days_ = 0;
  std::vector<EmpiricalDistribution> dists_;
};

}  // namespace rlblh
