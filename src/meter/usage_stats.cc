#include "meter/usage_stats.h"

#include <istream>
#include <ostream>
#include <string>

#include "util/error.h"

namespace rlblh {

UsageStatsTracker::UsageStatsTracker(std::size_t intervals, double usage_cap,
                                     std::size_t bins, std::size_t reservoir)
    : cap_(usage_cap) {
  RLBLH_REQUIRE(intervals >= 1, "UsageStatsTracker: need >= 1 interval");
  RLBLH_REQUIRE(usage_cap > 0.0, "UsageStatsTracker: usage cap must be > 0");
  dists_.reserve(intervals);
  for (std::size_t n = 0; n < intervals; ++n) {
    dists_.emplace_back(0.0, usage_cap, bins, reservoir);
  }
}

void UsageStatsTracker::observe_day(ConstTraceLane day, Rng& rng) {
  RLBLH_REQUIRE(day.intervals() == dists_.size(),
                "UsageStatsTracker: day length mismatch");
  for (std::size_t n = 0; n < dists_.size(); ++n) {
    dists_[n].add(day[n], rng);
  }
  ++days_;
}

DayTrace UsageStatsTracker::sample_day(Rng& rng) const {
  RLBLH_REQUIRE(days_ >= 1,
                "UsageStatsTracker: cannot sample before observing a day");
  DayTrace day(dists_.size());
  for (std::size_t n = 0; n < dists_.size(); ++n) {
    day.set(n, dists_[n].sample(rng));
  }
  return day;
}

double UsageStatsTracker::mean_at(std::size_t n) const {
  RLBLH_REQUIRE(n < dists_.size(), "UsageStatsTracker: interval out of range");
  return dists_[n].mean();
}

void UsageStatsTracker::save(std::ostream& out) const {
  out << "usage-stats " << dists_.size() << ' ' << days_ << '\n';
  for (const EmpiricalDistribution& dist : dists_) dist.save(out);
}

void UsageStatsTracker::load(std::istream& in) {
  std::string word;
  std::size_t intervals = 0, days = 0;
  if (!(in >> word >> intervals >> days) || word != "usage-stats") {
    throw DataError("UsageStatsTracker::load: malformed header");
  }
  if (intervals != dists_.size()) {
    throw DataError("UsageStatsTracker::load: interval count mismatch");
  }
  for (EmpiricalDistribution& dist : dists_) dist.load(in);
  days_ = days;
}

const EmpiricalDistribution& UsageStatsTracker::distribution(
    std::size_t n) const {
  RLBLH_REQUIRE(n < dists_.size(), "UsageStatsTracker: interval out of range");
  return dists_[n];
}

}  // namespace rlblh
