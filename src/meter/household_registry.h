// Named household presets and trace-source factory (the household slice of
// the scenario registry).
//
// A scenario spec selects a household by name (`household=weekday_heavy`)
// and tunes it through `household.*` parameters. Every preset starts from
// HouseholdConfig{} (the UMass "HomeC" substitute) and moves only the
// behavioural knobs that define it, so `default` is bitwise identical to
// the config the benches have always used. Registered presets:
//
//   default        — HouseholdConfig{} untouched.
//   weekday_heavy  — reliable commuter with a heavier appliance fleet
//                    (workday_probability 0.95, appliance_scale 1.35).
//   night_owl      — late riser, late sleeper (wake ~10:00, sleep ~01:55).
//   ev_owner       — overnight EV charging on most nights
//                    (ev_probability 0.9).
//   vacationer     — frequently empty house (vacancy_probability 0.3,
//                    workday_probability 0.5).
//   apartment      — small dwelling (appliance_scale 0.55, hvac_setback
//                    0.25).
//
// Parameter overrides apply after the preset: scale, workday, vacancy, ev,
// ev_power, hvac_setback, wake, leave, back, sleep (means, in minutes),
// intervals, cap. The trace-source factory additionally accepts the
// pseudo-household `csv` (params: path, header) replaying measured days.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/registry.h"
#include "meter/household.h"
#include "meter/trace.h"

namespace rlblh {

/// Builds the named preset and applies `household.*` overrides. Unknown
/// names or parameters raise ConfigError. (`csv` is not a preset — it has
/// no HouseholdConfig; use make_trace_source for it.)
HouseholdConfig make_household_config(const std::string& name,
                                      const SpecParams& params);

/// Builds a trace source for the named household: a HouseholdTraceSource
/// over the preset for synthetic presets, or a CsvTraceSource when
/// name == "csv" (params: path [required], header [default 1], intervals,
/// cap). `seed` drives the synthetic model and is ignored for csv replay.
std::unique_ptr<TraceSource> make_trace_source(const std::string& name,
                                               const SpecParams& params,
                                               std::uint64_t seed);

/// Registered preset names plus "csv", sorted (for --list).
std::vector<std::string> household_names();

}  // namespace rlblh
