#include "meter/household.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace rlblh {

void HouseholdConfig::validate() const {
  RLBLH_REQUIRE(intervals >= 60, "HouseholdConfig: need at least 60 intervals");
  RLBLH_REQUIRE(usage_cap > 0.0, "HouseholdConfig: usage cap must be > 0");
  const auto day = static_cast<double>(intervals);
  RLBLH_REQUIRE(wake_mean >= 0.0 && wake_mean < day,
                "HouseholdConfig: wake_mean out of range");
  RLBLH_REQUIRE(leave_mean > wake_mean,
                "HouseholdConfig: leave must follow wake");
  RLBLH_REQUIRE(back_mean > leave_mean,
                "HouseholdConfig: return must follow leave");
  RLBLH_REQUIRE(sleep_mean > back_mean && sleep_mean <= day,
                "HouseholdConfig: sleep must follow return");
  RLBLH_REQUIRE(wake_sigma >= 0.0 && leave_sigma >= 0.0 && back_sigma >= 0.0 &&
                    sleep_sigma >= 0.0,
                "HouseholdConfig: sigmas must be >= 0");
  RLBLH_REQUIRE(workday_probability >= 0.0 && workday_probability <= 1.0,
                "HouseholdConfig: workday probability must be in [0,1]");
  RLBLH_REQUIRE(vacancy_probability >= 0.0 && vacancy_probability <= 1.0,
                "HouseholdConfig: vacancy probability must be in [0,1]");
  RLBLH_REQUIRE(appliance_scale > 0.0,
                "HouseholdConfig: appliance scale must be > 0");
  RLBLH_REQUIRE(hvac_setback >= 0.0 && hvac_setback <= 1.0,
                "HouseholdConfig: hvac setback must be in [0,1]");
  RLBLH_REQUIRE(ev_probability >= 0.0 && ev_probability <= 1.0,
                "HouseholdConfig: ev probability must be in [0,1]");
  RLBLH_REQUIRE(ev_power > 0.0, "HouseholdConfig: ev power must be > 0");
}

HouseholdModel::HouseholdModel(HouseholdConfig config, std::uint64_t seed)
    : config_(std::move(config)), rng_(seed) {
  config_.validate();
  build_appliances();
}

void HouseholdModel::build_appliances() {
  const double s = config_.appliance_scale;
  appliances_.clear();
  appliances_.push_back(std::make_unique<Refrigerator>(0.0025 * s));
  appliances_.push_back(std::make_unique<Hvac>(0.028 * s, 0.10, 0.32,
                                               config_.hvac_setback));
  appliances_.push_back(std::make_unique<WaterHeater>(0.05 * s));
  appliances_.push_back(std::make_unique<Lighting>(0.0035 * s));
  appliances_.push_back(std::make_unique<Cooking>(0.024 * s));
  appliances_.push_back(std::make_unique<Dishwasher>(0.018 * s));
  appliances_.push_back(std::make_unique<Laundry>(0.008 * s, 0.05 * s));
  if (config_.ev_probability > 0.0) {
    appliances_.push_back(std::make_unique<EvCharger>(
        config_.ev_power * s, config_.ev_probability));
  }
  appliances_.push_back(std::make_unique<Electronics>(0.0009 * s, 0.0030 * s));
}

Occupancy HouseholdModel::sample_occupancy() {
  const auto day = static_cast<double>(config_.intervals);
  const auto clamp_time = [day](double v) {
    return static_cast<std::size_t>(std::clamp(v, 0.0, day - 1.0));
  };
  Occupancy occ;
  occ.away_all_day = rng_.bernoulli(config_.vacancy_probability);
  occ.wake = clamp_time(rng_.normal(config_.wake_mean, config_.wake_sigma));
  occ.leave = clamp_time(rng_.normal(config_.leave_mean, config_.leave_sigma));
  occ.back = clamp_time(rng_.normal(config_.back_mean, config_.back_sigma));
  occ.sleep = clamp_time(rng_.normal(config_.sleep_mean, config_.sleep_sigma));
  // Enforce ordering after jitter.
  occ.leave = std::max(occ.leave, occ.wake + 1);
  occ.back = std::max(occ.back, occ.leave + 1);
  occ.sleep = std::max(occ.sleep, occ.back + 1);
  occ.sleep = std::min<std::size_t>(occ.sleep, config_.intervals - 1);
  occ.works_away = rng_.bernoulli(config_.workday_probability);
  return occ;
}

DayTrace HouseholdModel::generate_day(std::vector<ApplianceEvent>* events,
                                      Occupancy* occupancy) {
  DayTrace trace(config_.intervals);
  generate_day_into(trace, events, occupancy);
  return trace;
}

void HouseholdModel::generate_day_into(DayTrace& out,
                                       std::vector<ApplianceEvent>* events,
                                       Occupancy* occupancy) {
  out.assign_zero(config_.intervals);
  generate_into_zeroed(TraceLane(out), events, occupancy);
}

void HouseholdModel::generate_day_into_lane(TraceLane out,
                                            std::vector<ApplianceEvent>* events,
                                            Occupancy* occupancy) {
  RLBLH_REQUIRE(out.intervals() == config_.intervals,
                "HouseholdModel: lane length must match the day length");
  out.fill_zero();
  generate_into_zeroed(out, events, occupancy);
}

// The single generation sequence both entry points share: the occupancy
// draws and the appliance order define the model's RNG stream, so running
// them through one code path is what keeps a batch lane bit-identical to a
// scalar day. `out` must already be zeroed.
void HouseholdModel::generate_into_zeroed(TraceLane out,
                                          std::vector<ApplianceEvent>* events,
                                          Occupancy* occupancy) {
  const Occupancy occ = sample_occupancy();
  if (occupancy != nullptr) *occupancy = occ;
  for (const auto& appliance : appliances_) {
    appliance->generate(occ, rng_, out, config_.usage_cap, events);
  }
}

void HouseholdTraceSource::next_days_into_lanes(
    std::span<TraceSource* const> sources, double* data,
    std::size_t intervals) {
  const std::size_t width = sources.size();
  RLBLH_REQUIRE(width >= 1, "HouseholdTraceSource: need at least one lane");
  // Stage contiguously: every lane's generation (occupancy draws + the full
  // appliance read-modify-write composition) runs against its own day-sized
  // buffer instead of a strided lane of the W-wide block.
  for (std::size_t k = 0; k < width; ++k) {
    auto& lane = static_cast<HouseholdTraceSource&>(*sources[k]);
    RLBLH_REQUIRE(lane.intervals() == intervals,
                  "HouseholdTraceSource: lane length must match the day");
    lane.model_.generate_day_into(lane.lane_scratch_);
  }
  // Scatter interval-major, tile by tile: inside a tile the lane loop
  // rewrites the same few cache lines, so each line of the block is filled
  // once instead of once per lane. Values and per-lane store order are
  // exactly the strided default's.
  constexpr std::size_t kScatterTile = 32;
  for (std::size_t t = 0; t < intervals; t += kScatterTile) {
    const std::size_t tile_end = std::min(intervals, t + kScatterTile);
    for (std::size_t k = 0; k < width; ++k) {
      const auto& lane = static_cast<HouseholdTraceSource&>(*sources[k]);
      const double* day = lane.lane_scratch_.values().data();
      double* out = data + k;
      for (std::size_t n = t; n < tile_end; ++n) out[n * width] = day[n];
    }
  }
}

void HouseholdModel::set_config(const HouseholdConfig& config) {
  config.validate();
  RLBLH_REQUIRE(config.intervals == config_.intervals,
                "HouseholdModel: cannot change interval count mid-run");
  config_ = config;
  build_appliances();
}

}  // namespace rlblh
