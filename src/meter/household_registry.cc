#include "meter/household_registry.h"

#include <algorithm>

namespace rlblh {

namespace {

/// The override keys every synthetic preset accepts on top of its base.
const std::vector<std::string> kHouseholdKeys = {
    "scale",  "workday", "vacancy", "ev",   "ev_power", "hvac_setback",
    "wake",   "leave",   "back",    "sleep", "intervals", "cap"};

HouseholdConfig apply_overrides(HouseholdConfig config,
                                const SpecParams& params,
                                const std::string& context) {
  params.allow_only(kHouseholdKeys, context);
  config.intervals = params.get_size("intervals", config.intervals);
  config.usage_cap = params.get_double("cap", config.usage_cap);
  config.appliance_scale =
      params.get_double("scale", config.appliance_scale);
  config.workday_probability =
      params.get_double("workday", config.workday_probability);
  config.vacancy_probability =
      params.get_double("vacancy", config.vacancy_probability);
  config.ev_probability = params.get_double("ev", config.ev_probability);
  config.ev_power = params.get_double("ev_power", config.ev_power);
  config.hvac_setback =
      params.get_double("hvac_setback", config.hvac_setback);
  config.wake_mean = params.get_double("wake", config.wake_mean);
  config.leave_mean = params.get_double("leave", config.leave_mean);
  config.back_mean = params.get_double("back", config.back_mean);
  config.sleep_mean = params.get_double("sleep", config.sleep_mean);
  config.validate();
  return config;
}

Registry<HouseholdConfig> build_registry() {
  Registry<HouseholdConfig> registry;
  registry.set_family("household preset");

  registry.add("default", [](const SpecParams& params) {
    return apply_overrides(HouseholdConfig{}, params,
                           "household preset 'default'");
  });

  registry.add("weekday_heavy", [](const SpecParams& params) {
    HouseholdConfig config;
    config.workday_probability = 0.95;
    config.appliance_scale = 1.35;
    return apply_overrides(config, params,
                           "household preset 'weekday_heavy'");
  });

  registry.add("night_owl", [](const SpecParams& params) {
    HouseholdConfig config;
    config.wake_mean = 600.0;    // ~10:00
    config.leave_mean = 700.0;   // ~11:40
    config.back_mean = 1200.0;   // ~20:00
    config.sleep_mean = 1435.0;  // just before midnight wrap
    config.workday_probability = 0.55;
    return apply_overrides(config, params, "household preset 'night_owl'");
  });

  registry.add("ev_owner", [](const SpecParams& params) {
    HouseholdConfig config;
    config.ev_probability = 0.9;
    return apply_overrides(config, params, "household preset 'ev_owner'");
  });

  registry.add("vacationer", [](const SpecParams& params) {
    HouseholdConfig config;
    config.vacancy_probability = 0.3;
    config.workday_probability = 0.5;
    return apply_overrides(config, params, "household preset 'vacationer'");
  });

  registry.add("apartment", [](const SpecParams& params) {
    HouseholdConfig config;
    config.appliance_scale = 0.55;
    config.hvac_setback = 0.25;
    return apply_overrides(config, params, "household preset 'apartment'");
  });

  return registry;
}

const Registry<HouseholdConfig>& household_registry() {
  static const Registry<HouseholdConfig> registry = build_registry();
  return registry;
}

}  // namespace

HouseholdConfig make_household_config(const std::string& name,
                                      const SpecParams& params) {
  return household_registry().create(name, params);
}

std::unique_ptr<TraceSource> make_trace_source(const std::string& name,
                                               const SpecParams& params,
                                               std::uint64_t seed) {
  if (name == "csv") {
    params.allow_only({"path", "header", "intervals", "cap"},
                      "trace source 'csv'");
    const std::string path = params.get_string("path", "");
    RLBLH_REQUIRE(!path.empty(),
                  "trace source 'csv': parameter 'path' is required");
    return std::make_unique<CsvTraceSource>(
        path, params.get_size("intervals", kIntervalsPerDay),
        params.get_double("cap", kDefaultUsageCap),
        params.get_bool("header", true));
  }
  return std::make_unique<HouseholdTraceSource>(
      make_household_config(name, params), seed);
}

std::vector<std::string> household_names() {
  std::vector<std::string> names = household_registry().names();
  names.push_back("csv");
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace rlblh
