#include "meter/trace.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/csv.h"
#include "util/error.h"

namespace rlblh {

TraceLane::TraceLane(DayTrace& trace)
    : data_(trace.mutable_data()), stride_(1), intervals_(trace.intervals()) {}

ConstTraceLane::ConstTraceLane(const DayTrace& trace)
    : data_(trace.values().data()), stride_(1),
      intervals_(trace.intervals()) {}

void TraceLane::fill_zero() const {
  if (stride_ == 1) {
    std::fill(data_, data_ + intervals_, 0.0);
    return;
  }
  for (std::size_t n = 0; n < intervals_; ++n) data_[n * stride_] = 0.0;
}

void TraceLane::add_clamped_run(std::size_t start, std::size_t end,
                                double value, double cap) const {
  RLBLH_REQUIRE(start <= end && end <= intervals_,
                "TraceLane: run out of range");
  RLBLH_REQUIRE(value >= 0.0, "TraceLane: added value must be >= 0");
  if (stride_ == 1) {
    // Contiguous fast path: same per-interval math, unit-stride addressing
    // (the scalar engine's synthesis stays as fast as before the lanes).
    for (std::size_t n = start; n < end; ++n) {
      double next = data_[n] + value;
      if (cap > 0.0) next = std::min(next, cap);
      data_[n] = next;
    }
    return;
  }
  for (std::size_t n = start; n < end; ++n) {
    double next = data_[n * stride_] + value;
    if (cap > 0.0) next = std::min(next, cap);
    data_[n * stride_] = next;
  }
}

DayTrace::DayTrace(std::size_t intervals) : values_(intervals, 0.0) {
  RLBLH_REQUIRE(intervals >= 1, "DayTrace: need at least one interval");
}

DayTrace::DayTrace(std::vector<double> values) : values_(std::move(values)) {
  RLBLH_REQUIRE(!values_.empty(), "DayTrace: need at least one interval");
  for (const double v : values_) {
    RLBLH_REQUIRE(std::isfinite(v) && v >= 0.0,
                  "DayTrace: values must be finite and >= 0");
  }
}

double DayTrace::at(std::size_t n) const {
  RLBLH_REQUIRE(n < values_.size(), "DayTrace: interval out of range");
  return values_[n];
}

void DayTrace::set(std::size_t n, double value) {
  RLBLH_REQUIRE(n < values_.size(), "DayTrace: interval out of range");
  RLBLH_REQUIRE(std::isfinite(value) && value >= 0.0,
                "DayTrace: values must be finite and >= 0");
  values_[n] = value;
}

void DayTrace::add_clamped(std::size_t n, double value, double cap) {
  RLBLH_REQUIRE(n < values_.size(), "DayTrace: interval out of range");
  RLBLH_REQUIRE(value >= 0.0, "DayTrace: added value must be >= 0");
  double next = values_[n] + value;
  if (cap > 0.0) next = std::min(next, cap);
  values_[n] = next;
}

void DayTrace::add_clamped_run(std::size_t start, std::size_t end,
                               double value, double cap) {
  // One implementation for the scalar and lane paths (see TraceLane).
  TraceLane(*this).add_clamped_run(start, end, value, cap);
}

void DayTrace::assign_zero(std::size_t intervals) {
  RLBLH_REQUIRE(intervals >= 1, "DayTrace: need at least one interval");
  values_.assign(intervals, 0.0);
}

double DayTrace::total() const {
  return std::accumulate(values_.begin(), values_.end(), 0.0);
}

double DayTrace::peak() const {
  return *std::max_element(values_.begin(), values_.end());
}

double DayTrace::mean() const {
  return total() / static_cast<double>(values_.size());
}

void TraceSource::next_day_into_lane(TraceLane out) {
  const DayTrace day = next_day();
  RLBLH_REQUIRE(day.intervals() == out.intervals(),
                "TraceSource: lane length must match the day length");
  const double* values = day.values().data();
  for (std::size_t n = 0; n < out.intervals(); ++n) out[n] = values[n];
}

void TraceSource::next_days_into_lanes(std::span<TraceSource* const> sources,
                                       double* data, std::size_t intervals) {
  const std::size_t width = sources.size();
  RLBLH_REQUIRE(width >= 1, "TraceSource: need at least one lane");
  for (std::size_t k = 0; k < width; ++k) {
    sources[k]->next_day_into_lane(TraceLane(data + k, width, intervals));
  }
}

CsvTraceSource::CsvTraceSource(const std::string& path,
                               std::size_t intervals_per_day, double usage_cap,
                               bool has_header)
    : intervals_(intervals_per_day), cap_(usage_cap) {
  RLBLH_REQUIRE(intervals_per_day >= 1,
                "CsvTraceSource: intervals_per_day must be >= 1");
  RLBLH_REQUIRE(usage_cap > 0.0, "CsvTraceSource: usage cap must be > 0");
  const CsvTable table = read_csv_file(path, has_header);
  if (table.row_count() == 0) {
    throw DataError("trace csv '" + path + "': no data rows");
  }
  if (table.column_count() < 1) {
    throw DataError("trace csv '" + path + "': need at least one column");
  }
  if (table.row_count() % intervals_per_day != 0) {
    throw DataError("trace csv '" + path + "': row count " +
                    std::to_string(table.row_count()) +
                    " is not a multiple of " +
                    std::to_string(intervals_per_day));
  }
  const std::vector<double> usage = table.column(std::size_t{0});
  for (const double v : usage) {
    if (!(v >= 0.0) || v > usage_cap + 1e-12) {
      throw DataError("trace csv '" + path + "': usage value " +
                      std::to_string(v) + " outside [0, " +
                      std::to_string(usage_cap) + "]");
    }
  }
  const std::size_t day_count = usage.size() / intervals_per_day;
  days_.reserve(day_count);
  for (std::size_t d = 0; d < day_count; ++d) {
    std::vector<double> day(usage.begin() + static_cast<std::ptrdiff_t>(
                                                d * intervals_per_day),
                            usage.begin() + static_cast<std::ptrdiff_t>(
                                                (d + 1) * intervals_per_day));
    days_.emplace_back(std::move(day));
  }
}

DayTrace CsvTraceSource::next_day() {
  const DayTrace& day = days_[next_];
  next_ = (next_ + 1) % days_.size();
  return day;
}

void write_traces_csv(const std::string& path,
                      const std::vector<DayTrace>& days) {
  CsvTable table;
  table.header = {"usage_kwh"};
  for (const auto& day : days) {
    for (const double v : day.values()) table.rows.push_back({v});
  }
  write_csv_file(path, table);
}

}  // namespace rlblh
