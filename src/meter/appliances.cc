#include "meter/appliances.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <map>
#include <mutex>
#include <numbers>
#include <span>
#include <utility>

#include "util/error.h"

namespace rlblh {

std::shared_ptr<const std::vector<double>> hvac_diurnal_curve(
    std::size_t intervals) {
  static std::mutex mutex;
  static std::map<std::size_t, std::shared_ptr<const std::vector<double>>>
      cache;
  std::lock_guard<std::mutex> lock(mutex);
  auto it = cache.find(intervals);
  if (it != cache.end()) return it->second;
  // Peak demand mid-afternoon (phase ~ 0.65), trough pre-dawn. Pure
  // function of (n, intervals): identical inputs and expression, hence
  // identical doubles whichever model triggered the tabulation.
  auto curve = std::make_shared<std::vector<double>>(intervals);
  for (std::size_t i = 0; i < intervals; ++i) {
    const double phase =
        static_cast<double>(i) / static_cast<double>(intervals);
    (*curve)[i] =
        0.5 * (1.0 - std::cos(2.0 * std::numbers::pi * (phase - 0.15)));
  }
  it = cache.emplace(intervals, std::move(curve)).first;
  return it->second;
}

namespace {

/// Jitters a nominal length by ±fraction, never below 1.
std::size_t jitter_len(std::size_t nominal, double fraction, Rng& rng) {
  const double f = rng.uniform(1.0 - fraction, 1.0 + fraction);
  const double v = std::max(1.0, std::round(static_cast<double>(nominal) * f));
  return static_cast<std::size_t>(v);
}

/// Jitters a nominal time by a normal perturbation, clamped to the day.
std::size_t jitter_time(std::size_t nominal, double sigma, Rng& rng,
                        std::size_t day_len) {
  const double v = rng.normal(static_cast<double>(nominal), sigma);
  const double clamped =
      std::clamp(v, 0.0, static_cast<double>(day_len) - 1.0);
  return static_cast<std::size_t>(clamped);
}

}  // namespace

void Appliance::emit_run(std::size_t start, std::size_t duration, double power,
                         TraceLane trace, double cap,
                         std::vector<ApplianceEvent>* events) const {
  if (duration == 0 || start >= trace.intervals()) return;
  const std::size_t end = std::min(start + duration, trace.intervals());
  trace.add_clamped_run(start, end, power, cap);
  if (events != nullptr) {
    events->push_back({name(), start, end - start, power});
  }
}

Refrigerator::Refrigerator(double power, std::size_t on, std::size_t off)
    : Appliance("refrigerator"), power_(power), on_(on), off_(off) {
  RLBLH_REQUIRE(power > 0.0, "Refrigerator: power must be > 0");
  RLBLH_REQUIRE(on >= 1 && off >= 1, "Refrigerator: phases must be >= 1");
}

void Refrigerator::generate(const Occupancy& /*occ*/, Rng& rng,
                            TraceLane trace, double cap,
                            std::vector<ApplianceEvent>* events) const {
  // Random initial phase so day boundaries do not align cycles.
  std::size_t n = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<int>(on_ + off_ - 1)));
  bool running = n < on_;
  if (running) {
    // Finish the partial initial on-phase.
    const std::size_t rest = on_ - n;
    emit_run(0, rest, power_, trace, cap, events);
    n = rest;
  } else {
    n = (on_ + off_) - n;  // remaining off time
  }
  while (n < trace.intervals()) {
    const std::size_t run = jitter_len(on_, 0.25, rng);
    const std::size_t idle = jitter_len(off_, 0.25, rng);
    emit_run(n, run, power_, trace, cap, events);
    n += run + idle;
  }
}

Hvac::Hvac(double power, double base_duty, double peak_duty,
           double setback_factor)
    : Appliance("hvac"), power_(power), base_duty_(base_duty),
      peak_duty_(peak_duty), setback_(setback_factor) {
  RLBLH_REQUIRE(power > 0.0, "Hvac: power must be > 0");
  RLBLH_REQUIRE(base_duty >= 0.0 && base_duty <= 1.0,
                "Hvac: base duty must be in [0,1]");
  RLBLH_REQUIRE(peak_duty >= base_duty && peak_duty <= 1.0,
                "Hvac: peak duty must be in [base,1]");
  RLBLH_REQUIRE(setback_factor >= 0.0 && setback_factor <= 1.0,
                "Hvac: setback factor must be in [0,1]");
}

void Hvac::generate(const Occupancy& occ, Rng& rng, TraceLane trace,
                    double cap, std::vector<ApplianceEvent>* events) const {
  // Thermostat cycling: choose a cycle period, set the on-fraction from the
  // diurnal duty curve at the cycle start.
  const std::size_t day = trace.intervals();
  if (diurnal_ == nullptr || diurnal_->size() != day) {
    diurnal_ = hvac_diurnal_curve(day);
  }
  const std::vector<double>& diurnal = *diurnal_;
  std::size_t n = static_cast<std::size_t>(rng.uniform_int(0, 19));
  while (n < day) {
    double duty = base_duty_ + (peak_duty_ - base_duty_) * diurnal[n];
    if (!occ.home(n)) duty *= setback_;
    duty = std::clamp(duty * rng.uniform(0.85, 1.15), 0.0, 1.0);
    const std::size_t period = jitter_len(30, 0.2, rng);
    const auto run = static_cast<std::size_t>(
        std::round(static_cast<double>(period) * duty));
    if (run > 0) emit_run(n, run, power_, trace, cap, events);
    n += period;
  }
}

WaterHeater::WaterHeater(double power) : Appliance("water_heater"), power_(power) {
  RLBLH_REQUIRE(power > 0.0, "WaterHeater: power must be > 0");
}

void WaterHeater::generate(const Occupancy& occ, Rng& rng, TraceLane trace,
                           double cap,
                           std::vector<ApplianceEvent>* events) const {
  const std::size_t day = trace.intervals();
  if (!occ.away_all_day) {
    // Morning shower recovery shortly after wake.
    const std::size_t morning =
        jitter_time(occ.wake + 20, 10.0, rng, day);
    emit_run(morning, jitter_len(18, 0.3, rng), power_, trace, cap, events);
    // Evening draw (dishes, baths) after return.
    const std::size_t evening_base = occ.works_away ? occ.back : 1140;
    const std::size_t evening =
        jitter_time(evening_base + 60, 30.0, rng, day);
    emit_run(evening, jitter_len(12, 0.3, rng), power_, trace, cap, events);
  }
  // Standby reheats (tank losses) a few times a day regardless of occupancy.
  const int reheats = rng.uniform_int(2, 4);
  for (int i = 0; i < reheats; ++i) {
    const auto start = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(day - 1)));
    emit_run(start, jitter_len(4, 0.4, rng), power_, trace, cap, events);
  }
}

Lighting::Lighting(double power, std::size_t dawn, std::size_t dusk)
    : Appliance("lighting"), power_(power), dawn_(dawn), dusk_(dusk) {
  RLBLH_REQUIRE(power > 0.0, "Lighting: power must be > 0");
  RLBLH_REQUIRE(dawn < dusk, "Lighting: dawn must precede dusk");
}

void Lighting::generate(const Occupancy& occ, Rng& rng, TraceLane trace,
                        double cap,
                        std::vector<ApplianceEvent>* events) const {
  // Continuous low load whenever occupants are active in dark hours, with
  // per-interval dimming noise; recorded as runs for NALM ground truth.
  //
  // The lit set — dark hours intersected with active occupancy — is a union
  // of at most four ordered runs, so instead of scanning all 1440 intervals
  // the runs are enumerated directly and the dimming noise is drawn in one
  // batch per run. Draws still happen for exactly the lit intervals in
  // interval order, so the RNG stream (and every value) matches the scan
  // this replaces.
  const std::size_t day = trace.intervals();
  // Active occupancy = [wake, sleep) intersected with the home set (the
  // whole day, or [0, leave) plus [back, day) on work days).
  std::array<std::pair<std::size_t, std::size_t>, 2> active{};
  std::size_t actives = 0;
  if (!occ.away_all_day) {
    if (!occ.works_away) {
      active[actives++] = {occ.wake, occ.sleep};
    } else {
      active[actives++] = {occ.wake, std::min(occ.leave, occ.sleep)};
      active[actives++] = {std::max(occ.back, occ.wake), occ.sleep};
    }
  }
  // Merge touching/overlapping ranges (possible only for occupancy structs
  // built directly without the wake < leave < back < sleep ordering).
  if (actives == 2 && active[1].first <= active[0].second) {
    active[0].second = std::max(active[0].second, active[1].second);
    actives = 1;
  }
  // Split each active range at the dark-hours boundary (dawn < dusk), so
  // the resulting lit runs are maximal, disjoint and ordered.
  std::array<std::pair<std::size_t, std::size_t>, 4> lit{};
  std::size_t runs = 0;
  for (std::size_t i = 0; i < actives; ++i) {
    const std::size_t a = active[i].first;
    const std::size_t b = std::min(active[i].second, day);
    if (a >= b) continue;
    const std::size_t morning_end = std::min(b, dawn_);
    if (a < morning_end) lit[runs++] = {a, morning_end};
    const std::size_t evening_start = std::max(a, dusk_);
    if (evening_start < b) lit[runs++] = {evening_start, b};
  }
  double* const values = trace.data();
  const std::size_t stride = trace.stride();
  for (std::size_t i = 0; i < runs; ++i) {
    const std::size_t start = lit[i].first;
    const std::size_t len = lit[i].second - start;
    draws_.resize(len);
    rng.fill_uniform(0.7, 1.3, std::span<double>(draws_.data(), len));
    // Same per-interval arithmetic as add_clamped(); writes stay finite and
    // >= 0 as the lane contract requires.
    for (std::size_t j = 0; j < len; ++j) {
      double next = values[(start + j) * stride] + power_ * draws_[j];
      if (cap > 0.0) next = std::min(next, cap);
      values[(start + j) * stride] = next;
    }
    if (events != nullptr) {
      events->push_back({name(), start, len, power_});
    }
  }
}

Cooking::Cooking(double power) : Appliance("cooking"), power_(power) {
  RLBLH_REQUIRE(power > 0.0, "Cooking: power must be > 0");
}

void Cooking::generate(const Occupancy& occ, Rng& rng, TraceLane trace,
                       double cap,
                       std::vector<ApplianceEvent>* events) const {
  if (occ.away_all_day) return;
  const std::size_t day = trace.intervals();
  // Breakfast: short burst after wake.
  if (rng.bernoulli(0.8)) {
    const std::size_t start = jitter_time(occ.wake + 35, 12.0, rng, day);
    emit_run(start, jitter_len(9, 0.4, rng), power_ * rng.uniform(0.6, 1.0),
             trace, cap, events);
  }
  // Dinner: longer burst in the evening when someone is home.
  const std::size_t dinner_base = occ.works_away ? occ.back + 45 : 1110;
  if (rng.bernoulli(0.9)) {
    const std::size_t start = jitter_time(dinner_base, 25.0, rng, day);
    emit_run(start, jitter_len(28, 0.35, rng), power_ * rng.uniform(0.8, 1.0),
             trace, cap, events);
  }
}

Dishwasher::Dishwasher(double power, double daily_probability)
    : Appliance("dishwasher"), power_(power), prob_(daily_probability) {
  RLBLH_REQUIRE(power > 0.0, "Dishwasher: power must be > 0");
  RLBLH_REQUIRE(daily_probability >= 0.0 && daily_probability <= 1.0,
                "Dishwasher: probability must be in [0,1]");
}

void Dishwasher::generate(const Occupancy& occ, Rng& rng, TraceLane trace,
                          double cap,
                          std::vector<ApplianceEvent>* events) const {
  if (occ.away_all_day || !rng.bernoulli(prob_)) return;
  const std::size_t dinner_base = occ.works_away ? occ.back + 120 : 1200;
  const std::size_t start =
      jitter_time(dinner_base, 30.0, rng, trace.intervals());
  emit_run(start, jitter_len(55, 0.2, rng), power_, trace, cap, events);
}

Laundry::Laundry(double washer_power, double dryer_power,
                 double daily_probability)
    : Appliance("laundry"), washer_power_(washer_power),
      dryer_power_(dryer_power), prob_(daily_probability) {
  RLBLH_REQUIRE(washer_power > 0.0 && dryer_power > 0.0,
                "Laundry: powers must be > 0");
  RLBLH_REQUIRE(daily_probability >= 0.0 && daily_probability <= 1.0,
                "Laundry: probability must be in [0,1]");
}

void Laundry::generate(const Occupancy& occ, Rng& rng, TraceLane trace,
                       double cap,
                       std::vector<ApplianceEvent>* events) const {
  if (occ.away_all_day || !rng.bernoulli(prob_)) return;
  // Run while someone is home and awake: mornings on stay-home days,
  // evenings on work days.
  const std::size_t base = occ.works_away ? occ.back + 30 : occ.wake + 120;
  const std::size_t washer_start =
      jitter_time(base, 40.0, rng, trace.intervals());
  const std::size_t washer_len = jitter_len(38, 0.2, rng);
  emit_run(washer_start, washer_len, washer_power_, trace, cap, events);
  const std::size_t dryer_start =
      washer_start + washer_len + static_cast<std::size_t>(rng.uniform_int(2, 10));
  emit_run(dryer_start, jitter_len(45, 0.2, rng), dryer_power_, trace, cap,
           events);
}

EvCharger::EvCharger(double power, double daily_probability)
    : Appliance("ev_charger"), power_(power), prob_(daily_probability) {
  RLBLH_REQUIRE(power > 0.0, "EvCharger: power must be > 0");
  RLBLH_REQUIRE(daily_probability >= 0.0 && daily_probability <= 1.0,
                "EvCharger: probability must be in [0,1]");
}

void EvCharger::generate(const Occupancy& occ, Rng& rng, TraceLane trace,
                         double cap,
                         std::vector<ApplianceEvent>* events) const {
  // The car is only home to charge if someone came home.
  if (occ.away_all_day || !rng.bernoulli(prob_)) return;
  // Timer starts the session shortly after midnight, squarely off-peak.
  const std::size_t start = jitter_time(30, 40.0, rng, trace.intervals());
  emit_run(start, jitter_len(65, 0.15, rng), power_, trace, cap, events);
}

Electronics::Electronics(double standby_power, double active_power)
    : Appliance("electronics"), standby_power_(standby_power),
      active_power_(active_power) {
  RLBLH_REQUIRE(standby_power >= 0.0, "Electronics: standby must be >= 0");
  RLBLH_REQUIRE(active_power >= standby_power,
                "Electronics: active power must be >= standby");
}

void Electronics::generate(const Occupancy& occ, Rng& rng, TraceLane trace,
                           double cap,
                           std::vector<ApplianceEvent>* events) const {
  // Standby floor across the whole day (not an "event" — no edge signature).
  trace.add_clamped_run(0, trace.intervals(), standby_power_, cap);
  // Evening entertainment block while active.
  if (occ.away_all_day) return;
  const std::size_t evening_base = occ.works_away ? occ.back + 15 : 1080;
  const std::size_t start =
      jitter_time(evening_base, 20.0, rng, trace.intervals());
  const std::size_t len = jitter_len(150, 0.3, rng);
  emit_run(start, len, active_power_ - standby_power_, trace, cap, events);
}

}  // namespace rlblh
