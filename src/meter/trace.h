// Day-long minute-resolution energy traces.
//
// The paper's experiments run on minute-level usage profiles x_n,
// n = 1..n_M = 1440, bounded by x_M = 0.08 kWh (Section VII-A). DayTrace is
// that series plus validation and the aggregate helpers the metrics need.
// TraceSource abstracts where days come from: the synthetic household model
// (our UMass "HomeC" substitute) or a CSV replay of real measurements.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "util/rng.h"

namespace rlblh {

/// Number of one-minute measurement intervals in a day (paper n_M).
inline constexpr std::size_t kIntervalsPerDay = 1440;

/// The paper's per-interval usage bound x_M in kWh.
inline constexpr double kDefaultUsageCap = 0.08;

/// One day of per-interval energy values (usage or meter readings), in kWh.
class DayTrace {
 public:
  /// An all-zero trace of the given length (>= 1).
  explicit DayTrace(std::size_t intervals = kIntervalsPerDay);

  /// Wraps an existing series; all values must be finite and >= 0.
  explicit DayTrace(std::vector<double> values);

  /// Number of measurement intervals.
  std::size_t intervals() const { return values_.size(); }

  /// Value at interval n (0-based). Requires n < intervals().
  double at(std::size_t n) const;

  /// Mutable access for generators. Requires n < intervals() and value >= 0.
  void set(std::size_t n, double value);

  /// Adds `value` (>= 0) to interval n, clamping the sum at `cap` when
  /// cap > 0. Used by appliance composition under the x_M bound.
  void add_clamped(std::size_t n, double value, double cap);

  /// Adds a constant `value` (>= 0) to every interval of [start, end),
  /// clamping each sum at `cap` when cap > 0. Identical per-interval math
  /// to add_clamped, validated once for the whole run. Requires
  /// start <= end <= intervals().
  void add_clamped_run(std::size_t start, std::size_t end, double value,
                       double cap);

  /// Resizes to `intervals` slots (>= 1) and zeroes every value, reusing
  /// the existing buffer when the length already matches. The in-place
  /// counterpart of constructing a fresh all-zero trace.
  void assign_zero(std::size_t intervals);

  /// Total energy of the day in kWh.
  double total() const;

  /// Largest per-interval value.
  double peak() const;

  /// Mean per-interval value.
  double mean() const;

  /// Read-only access to the raw series.
  const std::vector<double>& values() const { return values_; }

  /// Raw mutable access for trusted hot-path writers (the engine's reading
  /// fill, batched generators). Callers take over the class invariant:
  /// every value written must be finite and >= 0 — the checked set() path
  /// enforces the same contract one interval at a time.
  double* mutable_data() { return values_.data(); }

 private:
  std::vector<double> values_;
};

/// A stream of daily usage profiles.
class TraceSource {
 public:
  virtual ~TraceSource() = default;

  /// Produces the next day's usage profile.
  virtual DayTrace next_day() = 0;

  /// Produces the next day's profile into `out`, reusing its buffer when
  /// possible so a steady-state day loop allocates nothing. Semantically
  /// identical to `out = next_day()`; sources able to generate in place
  /// override this.
  virtual void next_day_into(DayTrace& out) { out = next_day(); }

  /// Number of intervals per produced day.
  virtual std::size_t intervals() const = 0;

  /// Upper bound x_M on every produced value, in kWh.
  virtual double usage_cap() const = 0;
};

/// Replays days from a CSV file (one column = usage kWh; rows are intervals,
/// days are concatenated). Wraps around when the file is exhausted.
/// Throws DataError when the file is malformed, empty, has values outside
/// [0, usage_cap], or its row count is not a multiple of intervals_per_day.
class CsvTraceSource final : public TraceSource {
 public:
  CsvTraceSource(const std::string& path, std::size_t intervals_per_day,
                 double usage_cap, bool has_header);

  DayTrace next_day() override;
  std::size_t intervals() const override { return intervals_; }
  double usage_cap() const override { return cap_; }

  /// Number of whole days available in the file.
  std::size_t day_count() const { return days_.size(); }

 private:
  std::size_t intervals_;
  double cap_;
  std::vector<DayTrace> days_;
  std::size_t next_ = 0;
};

/// Writes a sequence of day traces to CSV (single `usage_kwh` column).
void write_traces_csv(const std::string& path,
                      const std::vector<DayTrace>& days);

}  // namespace rlblh
