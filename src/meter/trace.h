// Day-long minute-resolution energy traces.
//
// The paper's experiments run on minute-level usage profiles x_n,
// n = 1..n_M = 1440, bounded by x_M = 0.08 kWh (Section VII-A). DayTrace is
// that series plus validation and the aggregate helpers the metrics need.
// TraceSource abstracts where days come from: the synthetic household model
// (our UMass "HomeC" substitute) or a CSV replay of real measurements.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "util/error.h"
#include "util/rng.h"

namespace rlblh {

/// Number of one-minute measurement intervals in a day (paper n_M).
inline constexpr std::size_t kIntervalsPerDay = 1440;

/// The paper's per-interval usage bound x_M in kWh.
inline constexpr double kDefaultUsageCap = 0.08;

class DayTrace;

/// A strided, non-owning view of one day's series inside a larger buffer:
/// interval n lives at data[n * stride]. The batch engine lays W households
/// out as structure-of-arrays lanes; a TraceLane is how one household's
/// generators write into its lane without knowing the layout. A DayTrace
/// converts implicitly to a stride-1 lane over its own buffer, so every
/// writer (appliance processes, household models, trace sources) has a
/// single code path for the scalar and the batched case — which is also
/// what makes lane k of a batch bit-identical to a scalar run: same code,
/// same expressions, only the destination addresses differ.
///
/// Writers take over DayTrace's invariant: every value written must be
/// finite and >= 0.
class TraceLane {
 public:
  /// Views `intervals` slots at data[0], data[stride], ... Requires a
  /// non-null base, stride >= 1 and intervals >= 1. Defined inline: the
  /// scalar engine builds one view per decision block, so the validation
  /// must fold into the caller rather than cost a call per block.
  TraceLane(double* data, std::size_t stride, std::size_t intervals)
      : data_(data), stride_(stride), intervals_(intervals) {
    RLBLH_REQUIRE(data != nullptr, "TraceLane: base pointer must be non-null");
    RLBLH_REQUIRE(stride >= 1, "TraceLane: stride must be >= 1");
    RLBLH_REQUIRE(intervals >= 1, "TraceLane: need at least one interval");
  }

  /// Stride-1 view over a whole DayTrace (implicit: lets existing DayTrace
  /// call sites reach the lane-based generator APIs unchanged).
  TraceLane(DayTrace& trace);  // NOLINT(google-explicit-constructor)

  /// Number of measurement intervals viewed.
  std::size_t intervals() const { return intervals_; }

  /// Distance in doubles between consecutive intervals.
  std::size_t stride() const { return stride_; }

  /// Base pointer (interval n is data()[n * stride()]).
  double* data() const { return data_; }

  /// Value slot for interval n. Requires n < intervals().
  double& operator[](std::size_t n) const { return data_[n * stride_]; }

  /// Zeroes every viewed slot.
  void fill_zero() const;

  /// Adds a constant `value` (>= 0) to every interval of [start, end),
  /// clamping each sum at `cap` when cap > 0. Bitwise the same per-interval
  /// arithmetic as DayTrace::add_clamped_run (which forwards here).
  /// Requires start <= end <= intervals().
  void add_clamped_run(std::size_t start, std::size_t end, double value,
                       double cap) const;

 private:
  double* data_;
  std::size_t stride_;
  std::size_t intervals_;
};

/// Read-only counterpart of TraceLane: a strided const view of one day's
/// series inside a larger buffer (interval n lives at data[n * stride]).
/// This is how consumers — observe_block, the usage statistics, the privacy
/// metrics — read one lane of the batch engine's interval-major SoA day
/// without a per-lane copy. A DayTrace, a TraceLane or a contiguous span
/// converts implicitly to a stride-1 view, so scalar call sites keep their
/// single code path (and the strided and contiguous reads share every
/// expression, which is what keeps batch lanes bitwise scalar-equal).
class ConstTraceLane {
 public:
  /// Views `intervals` slots at data[0], data[stride], ... Requires a
  /// non-null base, stride >= 1 and intervals >= 1. Inline for the same
  /// reason as TraceLane: one view is built per observe block on the
  /// scalar hot path.
  ConstTraceLane(const double* data, std::size_t stride,
                 std::size_t intervals)
      : data_(data), stride_(stride), intervals_(intervals) {}

  /// Stride-1 view over a whole DayTrace.
  ConstTraceLane(const DayTrace& trace);  // NOLINT(google-explicit-constructor)

  /// Stride-1 view over a contiguous span (nonempty).
  ConstTraceLane(std::span<const double> values)  // NOLINT
      : data_(values.data()), stride_(1), intervals_(values.size()) {
    RLBLH_REQUIRE(!values.empty(),
                  "ConstTraceLane: need at least one interval");
  }

  /// Read view of a mutable lane.
  ConstTraceLane(TraceLane lane)  // NOLINT(google-explicit-constructor)
      : data_(lane.data()), stride_(lane.stride()),
        intervals_(lane.intervals()) {}

  /// Number of measurement intervals viewed.
  std::size_t intervals() const { return intervals_; }

  /// Alias for intervals(); keeps span-shaped call sites readable.
  std::size_t size() const { return intervals_; }

  /// Distance in doubles between consecutive intervals.
  std::size_t stride() const { return stride_; }

  /// Base pointer (interval n is data()[n * stride()]).
  const double* data() const { return data_; }

  /// Value at interval n. Requires n < intervals().
  double operator[](std::size_t n) const { return data_[n * stride_]; }

 private:
  const double* data_;
  std::size_t stride_;
  std::size_t intervals_;
};

/// One day of per-interval energy values (usage or meter readings), in kWh.
class DayTrace {
 public:
  /// An all-zero trace of the given length (>= 1).
  explicit DayTrace(std::size_t intervals = kIntervalsPerDay);

  /// Wraps an existing series; all values must be finite and >= 0.
  explicit DayTrace(std::vector<double> values);

  /// Number of measurement intervals.
  std::size_t intervals() const { return values_.size(); }

  /// Value at interval n (0-based). Requires n < intervals().
  double at(std::size_t n) const;

  /// Mutable access for generators. Requires n < intervals() and value >= 0.
  void set(std::size_t n, double value);

  /// Adds `value` (>= 0) to interval n, clamping the sum at `cap` when
  /// cap > 0. Used by appliance composition under the x_M bound.
  void add_clamped(std::size_t n, double value, double cap);

  /// Adds a constant `value` (>= 0) to every interval of [start, end),
  /// clamping each sum at `cap` when cap > 0. Identical per-interval math
  /// to add_clamped, validated once for the whole run. Requires
  /// start <= end <= intervals().
  void add_clamped_run(std::size_t start, std::size_t end, double value,
                       double cap);

  /// Resizes to `intervals` slots (>= 1) and zeroes every value, reusing
  /// the existing buffer when the length already matches. The in-place
  /// counterpart of constructing a fresh all-zero trace.
  void assign_zero(std::size_t intervals);

  /// Total energy of the day in kWh.
  double total() const;

  /// Largest per-interval value.
  double peak() const;

  /// Mean per-interval value.
  double mean() const;

  /// Read-only access to the raw series.
  const std::vector<double>& values() const { return values_; }

  /// Raw mutable access for trusted hot-path writers (the engine's reading
  /// fill, batched generators). Callers take over the class invariant:
  /// every value written must be finite and >= 0 — the checked set() path
  /// enforces the same contract one interval at a time.
  double* mutable_data() { return values_.data(); }

 private:
  std::vector<double> values_;
};

/// A stream of daily usage profiles.
class TraceSource {
 public:
  virtual ~TraceSource() = default;

  /// Produces the next day's usage profile.
  virtual DayTrace next_day() = 0;

  /// Produces the next day's profile into `out`, reusing its buffer when
  /// possible so a steady-state day loop allocates nothing. Semantically
  /// identical to `out = next_day()`; sources able to generate in place
  /// override this.
  virtual void next_day_into(DayTrace& out) { out = next_day(); }

  /// Produces the next day's profile into a strided lane (the batch
  /// engine's SoA path). `out.intervals()` must equal intervals(). Draws
  /// and values are identical to next_day(); only the destination layout
  /// differs. The default materializes a DayTrace and copies — replay
  /// sources rarely run batched — while the synthetic household source
  /// overrides it to generate straight into the lane, allocation-free.
  virtual void next_day_into_lane(TraceLane out);

  /// Lane-native batch synthesis: produces the next day of every source in
  /// `sources` (index-aligned lanes, W = sources.size()) into one
  /// interval-major block — lane k's interval n lives at data[n * W + k],
  /// and every lane spans `intervals` slots. The batch engine calls this
  /// once per day on sources[0] after verifying all lanes share lane 0's
  /// dynamic type, so native overrides may static_cast the peers to their
  /// own concrete type. The default loops lanes through
  /// next_day_into_lane — same draws, same values, same per-lane store
  /// order — so overriding is purely a memory-access optimization: a
  /// lane-at-a-time pass over a W-wide day touches every cache line of the
  /// block once per lane, while a native override can tile the interval
  /// dimension and touch each line once.
  virtual void next_days_into_lanes(std::span<TraceSource* const> sources,
                                    double* data, std::size_t intervals);

  /// Number of intervals per produced day.
  virtual std::size_t intervals() const = 0;

  /// Upper bound x_M on every produced value, in kWh.
  virtual double usage_cap() const = 0;
};

/// Replays days from a CSV file (one column = usage kWh; rows are intervals,
/// days are concatenated). Wraps around when the file is exhausted.
/// Throws DataError when the file is malformed, empty, has values outside
/// [0, usage_cap], or its row count is not a multiple of intervals_per_day.
class CsvTraceSource final : public TraceSource {
 public:
  CsvTraceSource(const std::string& path, std::size_t intervals_per_day,
                 double usage_cap, bool has_header);

  DayTrace next_day() override;
  std::size_t intervals() const override { return intervals_; }
  double usage_cap() const override { return cap_; }

  /// Number of whole days available in the file.
  std::size_t day_count() const { return days_.size(); }

 private:
  std::size_t intervals_;
  double cap_;
  std::vector<DayTrace> days_;
  std::size_t next_ = 0;
};

/// Writes a sequence of day traces to CSV (single `usage_kwh` column).
void write_traces_csv(const std::string& path,
                      const std::vector<DayTrace>& days);

}  // namespace rlblh
