// Stochastic appliance models for the synthetic household substrate.
//
// The paper evaluates on usage profiles "generated following the statistics
// of real measurements" from the UMassTraceRepository HomeC home. That data
// set is not redistributable here, so this module provides the substitute
// documented in DESIGN.md: a library of appliance processes whose composition
// yields minute-level profiles with the same qualitative structure —
// high-frequency load signatures (compressor cycling, heating elements,
// cooking bursts) riding on a behavioural low-frequency envelope (occupancy,
// sleep, work hours). Each appliance writes its consumption into a shared
// DayTrace, clamped at the x_M usage cap, and can report its on-intervals as
// events so the NALM attack example has ground truth to detect.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "meter/trace.h"
#include "util/rng.h"

namespace rlblh {

/// The HVAC diurnal duty curve for a day of `intervals` slots: a pure
/// function of (n, intervals), tabulated once per distinct day length in a
/// process-wide cache and shared immutably. Fleet runs construct thousands
/// of household models with the same day geometry; sharing the table makes
/// that construction O(1) instead of 1440 cos() calls per model. Thread-safe.
std::shared_ptr<const std::vector<double>> hvac_diurnal_curve(
    std::size_t intervals);

/// One day's realized occupancy pattern, in measurement intervals (minutes).
struct Occupancy {
  bool away_all_day = false;  ///< vacancy day: nobody home at all
  std::size_t wake = 390;     ///< first interval someone is awake
  std::size_t leave = 480;    ///< interval the house empties (work day)
  std::size_t back = 1050;    ///< interval occupants return
  std::size_t sleep = 1380;   ///< interval everyone is asleep
  bool works_away = true;     ///< whether [leave, back) is actually empty

  /// True when someone is home (asleep counts as home).
  bool home(std::size_t n) const {
    if (away_all_day) return false;
    if (!works_away) return true;
    return n < leave || n >= back;
  }

  /// True when someone is home, awake and active.
  bool active(std::size_t n) const {
    return home(n) && n >= wake && n < sleep;
  }
};

/// Ground-truth record of one appliance activation, used by the NALM example
/// and by signature-detection tests.
struct ApplianceEvent {
  std::string appliance;      ///< model name, e.g. "dryer"
  std::size_t start = 0;      ///< first interval of the activation
  std::size_t duration = 0;   ///< number of intervals it stays on
  double power = 0.0;         ///< energy per interval while on (kWh/min)
};

/// Base class for all appliance processes.
class Appliance {
 public:
  explicit Appliance(std::string name) : name_(std::move(name)) {}
  virtual ~Appliance() = default;

  Appliance(const Appliance&) = delete;
  Appliance& operator=(const Appliance&) = delete;

  /// Model name (stable identifier used in events).
  const std::string& name() const { return name_; }

  /// Adds this appliance's consumption for one day into `trace` — a strided
  /// lane view, so the same generator serves a standalone DayTrace (which
  /// converts implicitly) and one SoA lane of the batch engine — clamping
  /// each interval at `cap` (kWh). When `events` is non-null, appends one
  /// record per contiguous activation.
  virtual void generate(const Occupancy& occ, Rng& rng, TraceLane trace,
                        double cap,
                        std::vector<ApplianceEvent>* events) const = 0;

 protected:
  /// Helper: writes a constant-power run of `duration` intervals starting at
  /// `start` (truncated at end of day), records it as an event.
  void emit_run(std::size_t start, std::size_t duration, double power,
                TraceLane trace, double cap,
                std::vector<ApplianceEvent>* events) const;

 private:
  std::string name_;
};

/// Refrigerator: always-on compressor duty cycle with jittered on/off phases.
/// Produces the canonical periodic high-frequency signature.
class Refrigerator final : public Appliance {
 public:
  /// power: kWh per interval while the compressor runs; on/off: nominal
  /// phase lengths in intervals (jittered ±25% per cycle).
  Refrigerator(double power = 0.0025, std::size_t on = 22, std::size_t off = 34);
  void generate(const Occupancy& occ, Rng& rng, TraceLane trace, double cap,
                std::vector<ApplianceEvent>* events) const override;

 private:
  double power_;
  std::size_t on_;
  std::size_t off_;
};

/// HVAC: thermostat cycling whose duty fraction follows a diurnal curve
/// (heavier in the afternoon), with setback when the house is empty.
class Hvac final : public Appliance {
 public:
  /// power: kWh per interval while running; base_duty/peak_duty: duty
  /// fraction at night / at the mid-afternoon peak; setback_factor: duty
  /// multiplier while nobody is home.
  Hvac(double power = 0.028, double base_duty = 0.10, double peak_duty = 0.32,
       double setback_factor = 0.45);
  void generate(const Occupancy& occ, Rng& rng, TraceLane trace, double cap,
                std::vector<ApplianceEvent>* events) const override;

 private:
  double power_;
  double base_duty_;
  double peak_duty_;
  double setback_;
  // Per-interval diurnal duty curve from the process-wide cache
  // (hvac_diurnal_curve); re-fetched only when the day length changes.
  mutable std::shared_ptr<const std::vector<double>> diurnal_;
};

/// Electric water heater: high-power recovery runs after morning and evening
/// hot-water draws, plus small standby reheats.
class WaterHeater final : public Appliance {
 public:
  explicit WaterHeater(double power = 0.05);
  void generate(const Occupancy& occ, Rng& rng, TraceLane trace, double cap,
                std::vector<ApplianceEvent>* events) const override;

 private:
  double power_;
};

/// Lighting: low power while occupants are active during dark hours.
class Lighting final : public Appliance {
 public:
  /// dawn/dusk: intervals before/after which lighting is needed.
  Lighting(double power = 0.0035, std::size_t dawn = 420, std::size_t dusk = 1080);
  void generate(const Occupancy& occ, Rng& rng, TraceLane trace, double cap,
                std::vector<ApplianceEvent>* events) const override;

 private:
  double power_;
  std::size_t dawn_;
  std::size_t dusk_;
  // Scratch for batched dimming draws, reused across days.
  mutable std::vector<double> draws_;
};

/// Cooking: short high-power bursts around breakfast and dinner when home.
class Cooking final : public Appliance {
 public:
  explicit Cooking(double power = 0.024);
  void generate(const Occupancy& occ, Rng& rng, TraceLane trace, double cap,
                std::vector<ApplianceEvent>* events) const override;

 private:
  double power_;
};

/// Dishwasher: one long medium-power run after dinner, with given probability.
class Dishwasher final : public Appliance {
 public:
  Dishwasher(double power = 0.018, double daily_probability = 0.6);
  void generate(const Occupancy& occ, Rng& rng, TraceLane trace, double cap,
                std::vector<ApplianceEvent>* events) const override;

 private:
  double power_;
  double prob_;
};

/// Laundry: washer run followed by a high-power dryer run, with given
/// probability per day. The dryer is the strongest single signature.
class Laundry final : public Appliance {
 public:
  Laundry(double washer_power = 0.008, double dryer_power = 0.05,
          double daily_probability = 0.35);
  void generate(const Occupancy& occ, Rng& rng, TraceLane trace, double cap,
                std::vector<ApplianceEvent>* events) const override;

 private:
  double washer_power_;
  double dryer_power_;
  double prob_;
};

/// EV charger: timer-based overnight charging session starting shortly after
/// midnight (off-peak), with given probability per day. A long, strong,
/// cheap-zone load typical of TOU households.
class EvCharger final : public Appliance {
 public:
  EvCharger(double power = 0.030, double daily_probability = 0.9);
  void generate(const Occupancy& occ, Rng& rng, TraceLane trace, double cap,
                std::vector<ApplianceEvent>* events) const override;

 private:
  double power_;
  double prob_;
};

/// Electronics: always-on standby floor plus evening entertainment load.
class Electronics final : public Appliance {
 public:
  Electronics(double standby_power = 0.0009, double active_power = 0.0030);
  void generate(const Occupancy& occ, Rng& rng, TraceLane trace, double cap,
                std::vector<ApplianceEvent>* events) const override;

 private:
  double standby_power_;
  double active_power_;
};

}  // namespace rlblh
