// Time-of-use (TOU) electricity pricing (paper Section II-A).
//
// A TouSchedule assigns a price rate r_n (cents per kWh) to every measurement
// interval n = 0..n_M-1 of a day. Builders cover the pricing policies the
// paper discusses:
//   * the SRP residential two-zone plan used in the evaluation
//     (7.04 c/kWh for n <= 1020, 21.09 c/kWh for n > 1020, 1-based),
//   * general multi-zone plans (off-peak / semi-peak / peak),
//   * hourly real-time pricing (RTP) with randomized rates, exercising the
//     claim that RL-BLH handles a rate that changes at every interval.
#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.h"

namespace rlblh {

/// One contiguous pricing zone: intervals [begin, end) at a flat rate.
struct PriceZone {
  std::size_t begin = 0;   ///< first measurement interval (0-based, inclusive)
  std::size_t end = 0;     ///< one past the last interval (exclusive)
  double rate = 0.0;       ///< cents per kWh
};

/// Per-interval price schedule for one day.
class TouSchedule {
 public:
  /// Builds a schedule from explicit per-interval rates (all >= 0, nonempty).
  explicit TouSchedule(std::vector<double> rates);

  /// Builds a schedule of `intervals` slots from contiguous zones. Zones must
  /// tile [0, intervals) exactly, in order, with non-negative rates.
  static TouSchedule from_zones(std::size_t intervals,
                                const std::vector<PriceZone>& zones);

  /// The paper's SRP residential plan over `intervals` one-minute slots:
  /// 7.04 c/kWh for the first 1020 intervals, 21.09 c/kWh afterwards.
  /// Requires intervals >= 1021 so that both zones are nonempty.
  static TouSchedule srp_plan(std::size_t intervals = 1440);

  /// A flat single-rate schedule (useful as a degenerate control).
  static TouSchedule flat(std::size_t intervals, double rate);

  /// Two-zone plan: `low_rate` for the first `low_until` intervals,
  /// `high_rate` for the rest.
  static TouSchedule two_zone(std::size_t intervals, std::size_t low_until,
                              double low_rate, double high_rate);

  /// Three-zone plan: off-peak [0, t1), semi-peak [t1, t2), peak [t2, end).
  static TouSchedule three_zone(std::size_t intervals, std::size_t t1,
                                std::size_t t2, double off_rate,
                                double semi_rate, double peak_rate);

  /// Hourly real-time pricing: each block of `block` intervals gets an
  /// independent rate drawn uniformly from [min_rate, max_rate], modulated by
  /// a diurnal factor that makes evening hours pricier (as RTP reflects
  /// generation cost). Deterministic given the RNG state.
  static TouSchedule hourly_rtp(std::size_t intervals, std::size_t block,
                                double min_rate, double max_rate, Rng& rng);

  /// Price rate for interval n (0-based). Requires n < intervals().
  double rate(std::size_t n) const;

  /// Number of measurement intervals in the day.
  std::size_t intervals() const { return rates_.size(); }

  /// Smallest rate of the day.
  double min_rate() const;

  /// Largest rate of the day.
  double max_rate() const;

  /// Mean rate of the day.
  double mean_rate() const;

  /// Cost in cents of a per-interval energy series (size must match).
  double cost(const std::vector<double>& energy_kwh) const;

  /// Read-only access to all rates.
  const std::vector<double>& rates() const { return rates_; }

  /// The schedule as maximal contiguous constant-rate segments, in order,
  /// tiling [0, intervals()) exactly. TOU plans have a handful of segments
  /// per day, so per-interval rate lookups in hot loops become per-segment
  /// constants. Precomputed at construction; segment rates are bitwise
  /// equal to the per-interval rates they cover.
  const std::vector<PriceZone>& segments() const { return segments_; }

 private:
  std::vector<double> rates_;
  std::vector<PriceZone> segments_;
};

/// The paper's theoretical savings ceiling for a two-zone plan:
/// (r_H - r_L) * b_M cents per day (Section II-A).
double two_zone_max_daily_savings(double low_rate, double high_rate,
                                  double battery_capacity_kwh);

}  // namespace rlblh
