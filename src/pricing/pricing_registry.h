// Named pricing-plan factory (the pricing slice of the scenario registry).
//
// Plans are selected by name in a scenario spec (`pricing=tou2`) and tuned
// through `pricing.*` parameters. Registered plans:
//
//   srp        — the paper's SRP residential two-zone plan (no parameters).
//   flat       — single rate; params: rate (c/kWh, default 11).
//   tou2       — two-zone; params: low_until (interval, default 1020),
//                low (default 7.04), high (default 21.09).
//                Alias: two-zone.
//   tou3       — three-zone; params: t1 (default 420), t2 (default 960),
//                off (default 6), semi (default 12), peak (default 24).
//                Alias: three-zone.
//   rtp        — hourly real-time pricing; params: seed (default 7),
//                block (default 60), min (default 5), max (default 25).
//
// All plans cover `intervals` slots (param, default kIntervalsPerDay).
// Schedules are immutable values; fleet scenarios sharing a plan can hold
// one TouSchedule by const reference.
#pragma once

#include <string>
#include <vector>

#include "core/registry.h"
#include "pricing/tou.h"

namespace rlblh {

/// Builds the named plan from its parameter slice. Unknown names or
/// parameters raise ConfigError.
TouSchedule make_pricing(const std::string& name, const SpecParams& params);

/// Registered primary plan names, sorted (for --list and error messages).
std::vector<std::string> pricing_names();

}  // namespace rlblh
