#include "pricing/pricing_registry.h"

namespace rlblh {

namespace {

/// Day length default shared with meter/trace.h's kIntervalsPerDay (not
/// included here: pricing must not depend on meter).
constexpr std::size_t kDefaultIntervals = 1440;

Registry<TouSchedule> build_registry() {
  Registry<TouSchedule> registry;
  registry.set_family("pricing plan");

  registry.add("srp", [](const SpecParams& params) {
    params.allow_only({"intervals"}, "pricing plan 'srp'");
    return TouSchedule::srp_plan(
        params.get_size("intervals", kDefaultIntervals));
  });

  registry.add("flat", [](const SpecParams& params) {
    params.allow_only({"intervals", "rate"}, "pricing plan 'flat'");
    return TouSchedule::flat(params.get_size("intervals", kDefaultIntervals),
                             params.get_double("rate", 11.0));
  });

  registry.add(
      "tou2",
      [](const SpecParams& params) {
        params.allow_only({"intervals", "low_until", "low", "high"},
                          "pricing plan 'tou2'");
        return TouSchedule::two_zone(
            params.get_size("intervals", kDefaultIntervals),
            params.get_size("low_until", 1020), params.get_double("low", 7.04),
            params.get_double("high", 21.09));
      },
      {"two-zone"});

  registry.add(
      "tou3",
      [](const SpecParams& params) {
        params.allow_only({"intervals", "t1", "t2", "off", "semi", "peak"},
                          "pricing plan 'tou3'");
        return TouSchedule::three_zone(
            params.get_size("intervals", kDefaultIntervals),
            params.get_size("t1", 420), params.get_size("t2", 960),
            params.get_double("off", 6.0), params.get_double("semi", 12.0),
            params.get_double("peak", 24.0));
      },
      {"three-zone"});

  registry.add("rtp", [](const SpecParams& params) {
    params.allow_only({"intervals", "seed", "block", "min", "max"},
                      "pricing plan 'rtp'");
    Rng rng(params.get_u64("seed", 7));
    return TouSchedule::hourly_rtp(
        params.get_size("intervals", kDefaultIntervals),
        params.get_size("block", 60), params.get_double("min", 5.0),
        params.get_double("max", 25.0), rng);
  });

  return registry;
}

const Registry<TouSchedule>& pricing_registry() {
  static const Registry<TouSchedule> registry = build_registry();
  return registry;
}

}  // namespace

TouSchedule make_pricing(const std::string& name, const SpecParams& params) {
  return pricing_registry().create(name, params);
}

std::vector<std::string> pricing_names() {
  return pricing_registry().names();
}

}  // namespace rlblh
