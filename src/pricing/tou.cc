#include "pricing/tou.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <numeric>

#include "util/error.h"

namespace rlblh {

TouSchedule::TouSchedule(std::vector<double> rates) : rates_(std::move(rates)) {
  RLBLH_REQUIRE(!rates_.empty(), "TouSchedule: need at least one interval");
  for (const double r : rates_) {
    RLBLH_REQUIRE(r >= 0.0, "TouSchedule: rates must be >= 0");
  }
  // Collapse the per-interval rates into maximal constant-rate runs (the
  // bitwise == keeps segment rates identical to the rates they replace).
  std::size_t begin = 0;
  for (std::size_t n = 1; n <= rates_.size(); ++n) {
    if (n == rates_.size() || rates_[n] != rates_[begin]) {
      segments_.push_back({begin, n, rates_[begin]});
      begin = n;
    }
  }
}

TouSchedule TouSchedule::from_zones(std::size_t intervals,
                                    const std::vector<PriceZone>& zones) {
  RLBLH_REQUIRE(!zones.empty(), "TouSchedule: need at least one zone");
  std::vector<double> rates(intervals, 0.0);
  std::size_t expected_begin = 0;
  for (const auto& zone : zones) {
    RLBLH_REQUIRE(zone.begin == expected_begin,
                  "TouSchedule: zones must tile the day contiguously");
    RLBLH_REQUIRE(zone.end > zone.begin && zone.end <= intervals,
                  "TouSchedule: zone bounds out of range");
    RLBLH_REQUIRE(zone.rate >= 0.0, "TouSchedule: rates must be >= 0");
    for (std::size_t n = zone.begin; n < zone.end; ++n) rates[n] = zone.rate;
    expected_begin = zone.end;
  }
  RLBLH_REQUIRE(expected_begin == intervals,
                "TouSchedule: zones must cover the whole day");
  return TouSchedule(std::move(rates));
}

TouSchedule TouSchedule::srp_plan(std::size_t intervals) {
  RLBLH_REQUIRE(intervals >= 1021,
                "TouSchedule::srp_plan: need at least 1021 intervals");
  return two_zone(intervals, 1020, 7.04, 21.09);
}

TouSchedule TouSchedule::flat(std::size_t intervals, double rate) {
  RLBLH_REQUIRE(intervals >= 1, "TouSchedule: need at least one interval");
  RLBLH_REQUIRE(rate >= 0.0, "TouSchedule: rates must be >= 0");
  return TouSchedule(std::vector<double>(intervals, rate));
}

TouSchedule TouSchedule::two_zone(std::size_t intervals, std::size_t low_until,
                                  double low_rate, double high_rate) {
  RLBLH_REQUIRE(low_until > 0 && low_until < intervals,
                "TouSchedule::two_zone: both zones must be nonempty");
  return from_zones(intervals, {{0, low_until, low_rate},
                                {low_until, intervals, high_rate}});
}

TouSchedule TouSchedule::three_zone(std::size_t intervals, std::size_t t1,
                                    std::size_t t2, double off_rate,
                                    double semi_rate, double peak_rate) {
  RLBLH_REQUIRE(t1 > 0 && t1 < t2 && t2 < intervals,
                "TouSchedule::three_zone: zones must all be nonempty");
  return from_zones(intervals, {{0, t1, off_rate},
                                {t1, t2, semi_rate},
                                {t2, intervals, peak_rate}});
}

TouSchedule TouSchedule::hourly_rtp(std::size_t intervals, std::size_t block,
                                    double min_rate, double max_rate,
                                    Rng& rng) {
  RLBLH_REQUIRE(intervals >= 1, "TouSchedule: need at least one interval");
  RLBLH_REQUIRE(block >= 1, "TouSchedule::hourly_rtp: block must be >= 1");
  RLBLH_REQUIRE(min_rate >= 0.0 && min_rate <= max_rate,
                "TouSchedule::hourly_rtp: need 0 <= min_rate <= max_rate");
  std::vector<double> rates(intervals, 0.0);
  for (std::size_t start = 0; start < intervals; start += block) {
    // Diurnal modulation: cheapest in the small hours, peak in the evening.
    const double phase =
        static_cast<double>(start) / static_cast<double>(intervals);
    const double diurnal =
        0.5 * (1.0 - std::cos(2.0 * std::numbers::pi * (phase - 0.2)));
    const double base = rng.uniform(min_rate, max_rate);
    const double rate =
        std::clamp(0.5 * base + 0.5 * (min_rate + diurnal * (max_rate - min_rate)),
                   min_rate, max_rate);
    const std::size_t end = std::min(start + block, intervals);
    for (std::size_t n = start; n < end; ++n) rates[n] = rate;
  }
  return TouSchedule(std::move(rates));
}

double TouSchedule::rate(std::size_t n) const {
  RLBLH_REQUIRE(n < rates_.size(), "TouSchedule::rate: interval out of range");
  return rates_[n];
}

double TouSchedule::min_rate() const {
  return *std::min_element(rates_.begin(), rates_.end());
}

double TouSchedule::max_rate() const {
  return *std::max_element(rates_.begin(), rates_.end());
}

double TouSchedule::mean_rate() const {
  return std::accumulate(rates_.begin(), rates_.end(), 0.0) /
         static_cast<double>(rates_.size());
}

double TouSchedule::cost(const std::vector<double>& energy_kwh) const {
  RLBLH_REQUIRE(energy_kwh.size() == rates_.size(),
                "TouSchedule::cost: series length must match schedule");
  double total = 0.0;
  for (std::size_t n = 0; n < rates_.size(); ++n) {
    total += rates_[n] * energy_kwh[n];
  }
  return total;
}

double two_zone_max_daily_savings(double low_rate, double high_rate,
                                  double battery_capacity_kwh) {
  RLBLH_REQUIRE(high_rate >= low_rate,
                "two_zone_max_daily_savings: high rate must be >= low rate");
  RLBLH_REQUIRE(battery_capacity_kwh >= 0.0,
                "two_zone_max_daily_savings: capacity must be >= 0");
  return (high_rate - low_rate) * battery_capacity_kwh;
}

}  // namespace rlblh
