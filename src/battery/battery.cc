#include "battery/battery.h"

#include <algorithm>

namespace rlblh {

Battery::Battery(double capacity_kwh, double initial_level_kwh,
                 double charge_efficiency, double discharge_efficiency)
    : capacity_(capacity_kwh), level_(initial_level_kwh),
      charge_eff_(charge_efficiency), discharge_eff_(discharge_efficiency) {
  RLBLH_REQUIRE(capacity_kwh > 0.0, "Battery: capacity must be > 0");
  RLBLH_REQUIRE(initial_level_kwh >= 0.0 && initial_level_kwh <= capacity_kwh,
                "Battery: initial level must be in [0, capacity]");
  RLBLH_REQUIRE(charge_efficiency > 0.0 && charge_efficiency <= 1.0,
                "Battery: charge efficiency must be in (0, 1]");
  RLBLH_REQUIRE(discharge_efficiency > 0.0 && discharge_efficiency <= 1.0,
                "Battery: discharge efficiency must be in (0, 1]");
}

BatteryStep Battery::step(double reading, double usage) {
  RLBLH_REQUIRE(reading >= 0.0, "Battery::step: reading must be >= 0");
  RLBLH_REQUIRE(usage >= 0.0, "Battery::step: usage must be >= 0");

  BatteryStep out;
  // Net transfer for the interval; charging and discharging happen
  // concurrently within a one-minute interval, so only the net flow matters.
  const double delta = charge_eff_ * reading - usage / discharge_eff_;
  double next = level_ + delta;
  if (next > capacity_) {
    out.wasted_charge = next - capacity_;
    next = capacity_;
    out.violated = true;
  } else if (next < 0.0) {
    // The battery cannot supply this much: the shortfall (in delivered
    // energy) comes straight from the grid.
    out.grid_extra = -next * discharge_eff_;
    next = 0.0;
    out.violated = true;
  }
  level_ = next;
  out.level_after = level_;
  if (out.violated) {
    ++violations_;
    wasted_ += out.wasted_charge;
    grid_extra_ += out.grid_extra;
  }
  return out;
}

void Battery::reset(double level_kwh) {
  RLBLH_REQUIRE(level_kwh >= 0.0 && level_kwh <= capacity_,
                "Battery::reset: level must be in [0, capacity]");
  level_ = level_kwh;
  violations_ = 0;
  wasted_ = 0.0;
  grid_extra_ = 0.0;
}

}  // namespace rlblh
