#include "battery/battery.h"

namespace rlblh {

Battery::Battery(double capacity_kwh, double initial_level_kwh,
                 double charge_efficiency, double discharge_efficiency)
    : capacity_(capacity_kwh), level_(initial_level_kwh),
      charge_eff_(charge_efficiency), discharge_eff_(discharge_efficiency) {
  RLBLH_REQUIRE(capacity_kwh > 0.0, "Battery: capacity must be > 0");
  RLBLH_REQUIRE(initial_level_kwh >= 0.0 && initial_level_kwh <= capacity_kwh,
                "Battery: initial level must be in [0, capacity]");
  RLBLH_REQUIRE(charge_efficiency > 0.0 && charge_efficiency <= 1.0,
                "Battery: charge efficiency must be in (0, 1]");
  RLBLH_REQUIRE(discharge_efficiency > 0.0 && discharge_efficiency <= 1.0,
                "Battery: discharge efficiency must be in (0, 1]");
}

void Battery::reset(double level_kwh) {
  RLBLH_REQUIRE(level_kwh >= 0.0 && level_kwh <= capacity_,
                "Battery::reset: level must be in [0, capacity]");
  level_ = level_kwh;
  violations_ = 0;
  wasted_ = 0.0;
  grid_extra_ = 0.0;
}

void Battery::restore(double level_kwh, std::size_t violations,
                      double wasted_charge_kwh, double grid_extra_kwh) {
  RLBLH_REQUIRE(level_kwh >= 0.0 && level_kwh <= capacity_,
                "Battery::restore: level must be in [0, capacity]");
  RLBLH_REQUIRE(wasted_charge_kwh >= 0.0 && grid_extra_kwh >= 0.0,
                "Battery::restore: accounting totals must be >= 0");
  level_ = level_kwh;
  violations_ = violations;
  wasted_ = wasted_charge_kwh;
  grid_extra_ = grid_extra_kwh;
}

void BatteryLanes::reset(std::size_t width, double capacity_kwh,
                         double initial_level_kwh, double charge_efficiency,
                         double discharge_efficiency) {
  RLBLH_REQUIRE(width >= 1, "BatteryLanes: need at least one lane");
  RLBLH_REQUIRE(capacity_kwh > 0.0, "BatteryLanes: capacity must be > 0");
  RLBLH_REQUIRE(
      initial_level_kwh >= 0.0 && initial_level_kwh <= capacity_kwh,
      "BatteryLanes: initial level must be in [0, capacity]");
  RLBLH_REQUIRE(charge_efficiency > 0.0 && charge_efficiency <= 1.0,
                "BatteryLanes: charge efficiency must be in (0, 1]");
  RLBLH_REQUIRE(discharge_efficiency > 0.0 && discharge_efficiency <= 1.0,
                "BatteryLanes: discharge efficiency must be in (0, 1]");
  capacity_ = capacity_kwh;
  charge_eff_ = charge_efficiency;
  discharge_eff_ = discharge_efficiency;
  levels_.assign(width, initial_level_kwh);
  violations_.assign(width, 0);
}

double BatteryLanes::level(std::size_t k) const {
  RLBLH_REQUIRE(k < levels_.size(), "BatteryLanes: lane out of range");
  return levels_[k];
}

std::size_t BatteryLanes::violation_count(std::size_t k) const {
  RLBLH_REQUIRE(k < violations_.size(), "BatteryLanes: lane out of range");
  return violations_[k];
}

}  // namespace rlblh
