// Rechargeable battery model (paper Section II).
//
// The battery is the buffer between the grid draw y_n (which charges it) and
// the appliance usage x_n (which it supplies):
//
//     b_{n+1} = b_n + eta_c * y_n - x_n / eta_d        (paper Eq. 1,
//                                                       footnote-2 losses)
//
// with 0 <= b_n <= b_M (Eq. 2). The lossless paper default is
// eta_c = eta_d = 1. RL-BLH's action constraints are designed so the bounds
// are never hit; the model still tracks what happens when a policy violates
// them: the infeasible part of the transfer is clipped (energy the battery
// cannot absorb is wasted, energy it cannot supply forces a direct grid
// draw), and a violation counter is incremented so tests and simulators can
// assert feasibility.
#pragma once

#include <cstddef>
#include <vector>

#include "util/error.h"

namespace rlblh {

/// Outcome of one branch-free lane step (see battery_lane_step).
struct BatteryLaneStep {
  double level_after = 0.0;  ///< battery level after the step (kWh)
  double grid_extra = 0.0;   ///< unmet usage served directly from grid (kWh)
  bool violated = false;     ///< true when either bound clipped the transfer
};

/// The arithmetic core of Battery::step as straight-line, branch-free
/// expressions — the form the batch engine's lane loop needs so W lanes
/// vectorize. Bit-identical to Battery::step for every input Battery::step
/// accepts (capacity > 0 makes the two clips mutually exclusive: a sum
/// above capacity cannot also be below zero, so the select chain below
/// reproduces the if/else-if exactly, including the sign of every zero —
/// battery_lanes_test pins this against the branching form). `reading` and
/// `usage` must be >= 0; the caller validates once per block, not per lane
/// step.
inline BatteryLaneStep battery_lane_step(double level, double reading,
                                         double usage, double capacity,
                                         double charge_eff,
                                         double discharge_eff) {
  BatteryLaneStep out;
  const double delta = charge_eff * reading - usage / discharge_eff;
  const double next = level + delta;
  const bool over = next > capacity;
  const bool under = next < 0.0;
  out.grid_extra = under ? -next * discharge_eff : 0.0;
  out.level_after = over ? capacity : (under ? 0.0 : next);
  out.violated = over || under;
  return out;
}

/// Structure-of-arrays battery state for W lockstep households sharing one
/// battery model (capacity, efficiencies, initial level) — the batch
/// engine's counterpart of constructing W identical Battery objects. Levels
/// and violation counters live in contiguous per-lane arrays; the engine
/// steps them with battery_lane_step so the whole lane dimension
/// vectorizes. Total wasted charge / grid extra are not tracked per lane
/// (no batch consumer reads them); per-day violation counts come from
/// differencing the counters around a day.
class BatteryLanes {
 public:
  BatteryLanes() = default;

  /// (Re)initializes `width` lanes, each with the given capacity (> 0),
  /// initial level in [0, capacity] and efficiencies in (0, 1] — the same
  /// validation as the Battery constructor. Buffers are reused when the
  /// width matches the previous run's.
  void reset(std::size_t width, double capacity_kwh, double initial_level_kwh,
             double charge_efficiency = 1.0, double discharge_efficiency = 1.0);

  /// Number of lanes (0 before the first reset).
  std::size_t width() const { return levels_.size(); }

  double capacity() const { return capacity_; }
  double charge_efficiency() const { return charge_eff_; }
  double discharge_efficiency() const { return discharge_eff_; }

  /// Per-lane state of charge, kWh; always within [0, capacity()].
  double* levels() { return levels_.data(); }
  const double* levels() const { return levels_.data(); }

  /// Per-lane count of clipped steps since reset.
  std::size_t* violations() { return violations_.data(); }
  const std::size_t* violations() const { return violations_.data(); }

  /// Lane k's level / violation count (bounds-checked conveniences).
  double level(std::size_t k) const;
  std::size_t violation_count(std::size_t k) const;

 private:
  double capacity_ = 0.0;
  double charge_eff_ = 1.0;
  double discharge_eff_ = 1.0;
  std::vector<double> levels_;
  std::vector<std::size_t> violations_;
};

/// Outcome of one measurement-interval battery step.
struct BatteryStep {
  double level_after = 0.0;     ///< battery level after the step (kWh)
  double grid_extra = 0.0;      ///< unmet usage served directly from grid (kWh)
  double wasted_charge = 0.0;   ///< charge clipped at capacity (kWh)
  bool violated = false;        ///< true when either clip occurred
};

/// State-of-charge model with capacity, optional round-trip losses, and
/// violation accounting.
class Battery {
 public:
  /// Creates a battery with the given capacity (kWh, > 0) and initial level
  /// in [0, capacity]. Efficiencies must be in (0, 1].
  explicit Battery(double capacity_kwh, double initial_level_kwh = 0.0,
                   double charge_efficiency = 1.0,
                   double discharge_efficiency = 1.0);

  /// Applies one measurement interval: grid draw `reading` charges the
  /// battery, appliance usage `usage` discharges it. Both must be >= 0.
  /// Returns the step outcome (including any clipping). Defined inline:
  /// this is the innermost call of the simulation hot loop.
  BatteryStep step(double reading, double usage) {
    RLBLH_REQUIRE(reading >= 0.0, "Battery::step: reading must be >= 0");
    RLBLH_REQUIRE(usage >= 0.0, "Battery::step: usage must be >= 0");

    BatteryStep out;
    // Net transfer for the interval; charging and discharging happen
    // concurrently within a one-minute interval, so only the net flow
    // matters.
    const double delta = charge_eff_ * reading - usage / discharge_eff_;
    double next = level_ + delta;
    if (next > capacity_) {
      out.wasted_charge = next - capacity_;
      next = capacity_;
      out.violated = true;
    } else if (next < 0.0) {
      // The battery cannot supply this much: the shortfall (in delivered
      // energy) comes straight from the grid.
      out.grid_extra = -next * discharge_eff_;
      next = 0.0;
      out.violated = true;
    }
    level_ = next;
    out.level_after = level_;
    if (out.violated) {
      ++violations_;
      wasted_ += out.wasted_charge;
      grid_extra_ += out.grid_extra;
    }
    return out;
  }

  /// Current state of charge in kWh; always within [0, capacity()].
  double level() const { return level_; }

  /// Usable capacity b_M in kWh.
  double capacity() const { return capacity_; }

  /// Charge efficiency eta_c in (0, 1].
  double charge_efficiency() const { return charge_eff_; }

  /// Discharge efficiency eta_d in (0, 1].
  double discharge_efficiency() const { return discharge_eff_; }

  /// Number of steps in which a bound was hit and clipping occurred.
  std::size_t violation_count() const { return violations_; }

  /// Total energy wasted at the full bound so far (kWh).
  double total_wasted_charge() const { return wasted_; }

  /// Total unmet usage served directly from the grid so far (kWh).
  double total_grid_extra() const { return grid_extra_; }

  /// Resets the state of charge (to a value in [0, capacity]) and clears the
  /// violation counters.
  void reset(double level_kwh);

  /// Restores a checkpointed state: level in [0, capacity] plus the
  /// cumulative violation accounting (all >= 0). The daemon's
  /// checkpoint/restore path uses this so a restarted battery is
  /// indistinguishable from one that never stopped.
  void restore(double level_kwh, std::size_t violations,
               double wasted_charge_kwh, double grid_extra_kwh);

 private:
  double capacity_;
  double level_;
  double charge_eff_;
  double discharge_eff_;
  std::size_t violations_ = 0;
  double wasted_ = 0.0;
  double grid_extra_ = 0.0;
};

}  // namespace rlblh
