// Rechargeable battery model (paper Section II).
//
// The battery is the buffer between the grid draw y_n (which charges it) and
// the appliance usage x_n (which it supplies):
//
//     b_{n+1} = b_n + eta_c * y_n - x_n / eta_d        (paper Eq. 1,
//                                                       footnote-2 losses)
//
// with 0 <= b_n <= b_M (Eq. 2). The lossless paper default is
// eta_c = eta_d = 1. RL-BLH's action constraints are designed so the bounds
// are never hit; the model still tracks what happens when a policy violates
// them: the infeasible part of the transfer is clipped (energy the battery
// cannot absorb is wasted, energy it cannot supply forces a direct grid
// draw), and a violation counter is incremented so tests and simulators can
// assert feasibility.
#pragma once

#include <cstddef>

#include "util/error.h"

namespace rlblh {

/// Outcome of one measurement-interval battery step.
struct BatteryStep {
  double level_after = 0.0;     ///< battery level after the step (kWh)
  double grid_extra = 0.0;      ///< unmet usage served directly from grid (kWh)
  double wasted_charge = 0.0;   ///< charge clipped at capacity (kWh)
  bool violated = false;        ///< true when either clip occurred
};

/// State-of-charge model with capacity, optional round-trip losses, and
/// violation accounting.
class Battery {
 public:
  /// Creates a battery with the given capacity (kWh, > 0) and initial level
  /// in [0, capacity]. Efficiencies must be in (0, 1].
  explicit Battery(double capacity_kwh, double initial_level_kwh = 0.0,
                   double charge_efficiency = 1.0,
                   double discharge_efficiency = 1.0);

  /// Applies one measurement interval: grid draw `reading` charges the
  /// battery, appliance usage `usage` discharges it. Both must be >= 0.
  /// Returns the step outcome (including any clipping). Defined inline:
  /// this is the innermost call of the simulation hot loop.
  BatteryStep step(double reading, double usage) {
    RLBLH_REQUIRE(reading >= 0.0, "Battery::step: reading must be >= 0");
    RLBLH_REQUIRE(usage >= 0.0, "Battery::step: usage must be >= 0");

    BatteryStep out;
    // Net transfer for the interval; charging and discharging happen
    // concurrently within a one-minute interval, so only the net flow
    // matters.
    const double delta = charge_eff_ * reading - usage / discharge_eff_;
    double next = level_ + delta;
    if (next > capacity_) {
      out.wasted_charge = next - capacity_;
      next = capacity_;
      out.violated = true;
    } else if (next < 0.0) {
      // The battery cannot supply this much: the shortfall (in delivered
      // energy) comes straight from the grid.
      out.grid_extra = -next * discharge_eff_;
      next = 0.0;
      out.violated = true;
    }
    level_ = next;
    out.level_after = level_;
    if (out.violated) {
      ++violations_;
      wasted_ += out.wasted_charge;
      grid_extra_ += out.grid_extra;
    }
    return out;
  }

  /// Current state of charge in kWh; always within [0, capacity()].
  double level() const { return level_; }

  /// Usable capacity b_M in kWh.
  double capacity() const { return capacity_; }

  /// Charge efficiency eta_c in (0, 1].
  double charge_efficiency() const { return charge_eff_; }

  /// Discharge efficiency eta_d in (0, 1].
  double discharge_efficiency() const { return discharge_eff_; }

  /// Number of steps in which a bound was hit and clipping occurred.
  std::size_t violation_count() const { return violations_; }

  /// Total energy wasted at the full bound so far (kWh).
  double total_wasted_charge() const { return wasted_; }

  /// Total unmet usage served directly from the grid so far (kWh).
  double total_grid_extra() const { return grid_extra_; }

  /// Resets the state of charge (to a value in [0, capacity]) and clears the
  /// violation counters.
  void reset(double level_kwh);

 private:
  double capacity_;
  double level_;
  double charge_eff_;
  double discharge_eff_;
  std::size_t violations_ = 0;
  double wasted_ = 0.0;
  double grid_extra_ = 0.0;
};

}  // namespace rlblh
